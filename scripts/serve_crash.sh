#!/usr/bin/env bash
# serve_crash.sh — the crash-recovery acceptance run, in three legs:
#
#   1. `chaos -live -live-blackout`: the in-process shape — every diner of a
#      live table killed at the same instant, the whole table restarted
#      after a gap, with the shared checkers requiring a clean convergence
#      era afterwards.
#
#   2. The networked service, kill -9'd for real: dineserve with a WAL
#      (-data-dir, -fsync always) under a self-healing dineload, killed
#      ungracefully mid-load, restarted on the same port from the same
#      directory. The load run must finish with zero errors and zero
#      double-grants, the restarted server must report recovery and a clean
#      ◇WX verdict on SIGINT, and `walinspect -verify` must prove the
#      persisted grant ledger safe.
#
#   3. Torn-tail recovery: garbage appended to the newest WAL segment, then
#      one more boot + load cycle. Recovery must truncate the tear (the
#      server reports the dropped byte count), serve normally, and leave a
#      verifiable directory behind.
#
#   4. The sharded service (-n 16 -tables 4), kill -9'd mid-load: each table
#      journals to its own <data-dir>/table-<i>/ ledger, the restart must
#      recover all four independently before accepting traffic, the drain
#      must produce four clean ◇WX verdicts, and `walinspect -verify` must
#      audit every shard's ledger.
#
# Used by `make serve-crash` and CI. CLIENTS/DURATION are overridable.
set -u

CLIENTS="${CLIENTS:-32}"
DURATION="${DURATION:-10s}"
BIN="${BIN:-bin}"
LOG="$(mktemp -d)"
DATA="$LOG/data"
trap 'rm -rf "$LOG"' EXIT

# --- helpers -----------------------------------------------------------------

# wait_addr LOGFILE: echo the first loopback address the server logs.
wait_addr() {
    local addr=""
    for _ in $(seq 100); do
        addr=$(grep -o '127\.0\.0\.1:[0-9]*' "$1" 2>/dev/null | head -1)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    echo "$addr"
}

fail() {
    echo "serve-crash: FAIL — $1" >&2
    shift
    for f in "$@"; do echo "--- $f ---" >&2; cat "$f" >&2; done
    exit 1
}

# --- leg 1: in-process blackout ----------------------------------------------

echo "serve-crash: leg 1 — in-process whole-table blackout"
"$BIN/chaos" -live -seeds 7 -sizes 5 -topologies ring \
    -live-duration 6s -live-blackout 1500ms+500ms
LIVE_EXIT=$?
if [ "$LIVE_EXIT" -ne 0 ]; then
    echo "serve-crash: FAIL — blackout campaign exited $LIVE_EXIT" >&2
    exit "$LIVE_EXIT"
fi

# --- leg 2: kill -9 the real server mid-load ---------------------------------

echo "serve-crash: leg 2 — dineserve with WAL, kill -9 mid-load"
"$BIN/dineserve" -addr 127.0.0.1:0 -lease 5s \
    -data-dir "$DATA" -fsync always -snap-records 1000 \
    >"$LOG/serve1.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR=$(wait_addr "$LOG/serve1.log")
[ -n "$ADDR" ] || fail "dineserve never started listening" "$LOG/serve1.log"
echo "serve-crash: dineserve up on $ADDR, $CLIENTS clients for $DURATION"

# Short op timeout: the outage must read as reconnect-and-replay, not as a
# stuck read. The client registry replay is what makes the kill safe to
# observe — every grant and release is durable before the client sees it.
# The 50ms hold keeps a few sessions granted at any instant, so the kill
# lands mid-critical-section and the restart exercises the regrant path.
"$BIN/dineload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" \
    -hold 50ms -watch=false -op-timeout 500ms >"$LOG/load.log" 2>&1 &
LOAD_PID=$!

sleep 3
echo "serve-crash: kill -9 $SERVE_PID"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
sleep 1

"$BIN/dineserve" -addr "$ADDR" -lease 5s \
    -data-dir "$DATA" -fsync always -snap-records 1000 \
    >"$LOG/serve2.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR2=$(wait_addr "$LOG/serve2.log")
[ -n "$ADDR2" ] || fail "restarted dineserve never came back on $ADDR" "$LOG/serve2.log"
grep -q "dineserve: recovered" "$LOG/serve2.log" \
    || fail "restarted server logged no recovery line" "$LOG/serve2.log"

wait "$LOAD_PID"
LOAD_EXIT=$?
cat "$LOG/load.log"
if [ "$LOAD_EXIT" -ne 0 ]; then
    fail "dineload exited $LOAD_EXIT across the crash" "$LOG/serve2.log"
fi
grep -q "double-grants: 0" "$LOG/load.log" \
    || fail "clients observed a double grant" "$LOG/load.log"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve2.log"
if [ "$SERVE_EXIT" -ne 0 ]; then
    fail "restarted dineserve exited $SERVE_EXIT (exclusion check or drain failed)"
fi
grep -q "exclusion check OK" "$LOG/serve2.log" \
    || fail "no exclusion verdict in the restarted server's log"

"$BIN/walinspect" -verify "$DATA" || fail "walinspect rejected the post-crash ledger"

# --- leg 3: torn WAL tail ----------------------------------------------------

echo "serve-crash: leg 3 — torn-tail recovery"
NEWEST=$(ls "$DATA"/wal-* 2>/dev/null | sort | tail -1)
[ -n "$NEWEST" ] || fail "no WAL segment to corrupt in $DATA"
printf 'TORNTORNTORNTORN garbage past the last valid frame' >> "$NEWEST"
echo "serve-crash: appended garbage to $(basename "$NEWEST")"

"$BIN/dineserve" -addr 127.0.0.1:0 -lease 5s \
    -data-dir "$DATA" -fsync always -snap-records 1000 \
    >"$LOG/serve3.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR3=$(wait_addr "$LOG/serve3.log")
[ -n "$ADDR3" ] || fail "dineserve refused to boot from the torn directory" "$LOG/serve3.log"
grep -q "torn tail [1-9]" "$LOG/serve3.log" \
    || fail "recovery did not report the torn tail" "$LOG/serve3.log"

"$BIN/dineload" -addr "$ADDR3" -clients 8 -duration 3s -watch=false \
    -op-timeout 500ms >"$LOG/load3.log" 2>&1
LOAD_EXIT=$?
cat "$LOG/load3.log"
[ "$LOAD_EXIT" -eq 0 ] || fail "post-tear dineload exited $LOAD_EXIT" "$LOG/serve3.log"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve3.log"
[ "$SERVE_EXIT" -eq 0 ] || fail "post-tear dineserve exited $SERVE_EXIT"
grep -q "exclusion check OK" "$LOG/serve3.log" \
    || fail "no exclusion verdict after torn-tail recovery"

"$BIN/walinspect" -verify "$DATA" || fail "walinspect rejected the post-tear ledger"

# --- leg 4: kill -9 the sharded server mid-load ------------------------------

echo "serve-crash: leg 4 — sharded dineserve (16 diners, 4 tables), kill -9 mid-load"
DATA4="$LOG/data4"
"$BIN/dineserve" -n 16 -tables 4 -addr 127.0.0.1:0 -lease 5s \
    -data-dir "$DATA4" -fsync always -snap-records 1000 \
    >"$LOG/serve4.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR4=$(wait_addr "$LOG/serve4.log")
[ -n "$ADDR4" ] || fail "sharded dineserve never started listening" "$LOG/serve4.log"
grep -q "16 diners over 4 tables" "$LOG/serve4.log" \
    || fail "sharded server did not announce its table count" "$LOG/serve4.log"
echo "serve-crash: sharded dineserve up on $ADDR4, $CLIENTS clients for $DURATION"

"$BIN/dineload" -addr "$ADDR4" -clients "$CLIENTS" -duration "$DURATION" \
    -hold 50ms -watch=false -op-timeout 500ms >"$LOG/load4.log" 2>&1 &
LOAD_PID=$!

sleep 3
echo "serve-crash: kill -9 $SERVE_PID"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null
sleep 1

"$BIN/dineserve" -n 16 -tables 4 -addr "$ADDR4" -lease 5s \
    -data-dir "$DATA4" -fsync always -snap-records 1000 \
    >"$LOG/serve5.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR5=$(wait_addr "$LOG/serve5.log")
[ -n "$ADDR5" ] || fail "restarted sharded dineserve never came back on $ADDR4" "$LOG/serve5.log"
# Every shard recovers its own ledger before the listener opens.
RECOVERED=$(grep -c "table [0-3]: recovered" "$LOG/serve5.log")
[ "$RECOVERED" -eq 4 ] \
    || fail "expected 4 per-table recovery lines, got $RECOVERED" "$LOG/serve5.log"

wait "$LOAD_PID"
LOAD_EXIT=$?
cat "$LOG/load4.log"
if [ "$LOAD_EXIT" -ne 0 ]; then
    fail "dineload exited $LOAD_EXIT across the sharded crash" "$LOG/serve5.log"
fi
grep -q "double-grants: 0" "$LOG/load4.log" \
    || fail "clients observed a double grant on the sharded server" "$LOG/load4.log"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve5.log"
if [ "$SERVE_EXIT" -ne 0 ]; then
    fail "restarted sharded dineserve exited $SERVE_EXIT (exclusion check or drain failed)"
fi
VERDICTS=$(grep -c "exclusion check OK" "$LOG/serve5.log")
[ "$VERDICTS" -eq 4 ] \
    || fail "expected 4 per-table exclusion verdicts, got $VERDICTS" "$LOG/serve5.log"

# The audit walks all four table-<i>/ ledgers; any dirty shard fails it.
"$BIN/walinspect" -verify "$DATA4" >"$LOG/inspect4.log" \
    || { cat "$LOG/inspect4.log"; fail "walinspect rejected a post-crash shard ledger"; }
grep -q "4 tables" "$LOG/inspect4.log" \
    || fail "walinspect did not audit the sharded layout" "$LOG/inspect4.log"

echo "serve-crash: OK"
