#!/usr/bin/env bash
# bench_serve.sh — the reproducible service benchmark run behind
# `make bench-serve`. Three layers land in one go-bench stream:
#
#   1. codec + writer + registry micro-benchmarks (internal/lockproto),
#      including the encoding/json baselines (BenchmarkWire*JSON) so the
#      artifact itself records the ≥2x allocs/op claim;
#   2. the in-process loopback service benchmarks (BenchmarkServeGrant,
#      BenchmarkServeChurn) — full pipeline, no persistence;
#   3. an end-to-end dineload run against a real dineserve on an ephemeral
#      port, folded in via dineload's -bench line (BenchmarkServeLoad).
#
# The combined stream goes through cmd/bench2json with the committed
# artifact as baseline, producing BENCH_serve.json with before/after deltas.
set -u

CLIENTS="${CLIENTS:-64}"
DURATION="${DURATION:-5s}"
BIN="${BIN:-bin}"
OUT="${OUT:-BENCH_serve.json}"
LOG="$(mktemp -d)"
trap 'rm -rf "$LOG"' EXIT

fail() { echo "bench-serve: $*" >&2; exit 1; }

echo "bench-serve: micro-benchmarks (codec, flush writer, sessions)"
go test -run '^$' -bench 'BenchmarkWire|BenchmarkFlushWriter|BenchmarkSessions' \
    -benchmem ./internal/lockproto >"$LOG/micro.txt" || fail "lockproto benchmarks failed"

echo "bench-serve: in-process service benchmarks (grant, sharded grant, churn)"
go test -run '^$' -bench 'BenchmarkServeGrant|BenchmarkServeChurn' \
    -benchmem ./internal/dinesvc >"$LOG/inproc.txt" || fail "dinesvc benchmarks failed"

echo "bench-serve: end-to-end load ($CLIENTS clients for $DURATION)"
"$BIN/dineserve" -addr 127.0.0.1:0 >"$LOG/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR=""
for _ in $(seq 100); do
    ADDR=$(grep -o '127\.0\.0\.1:[0-9]*' "$LOG/serve.log" 2>/dev/null | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { cat "$LOG/serve.log" >&2; fail "dineserve never started listening"; }

"$BIN/dineload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" -bench \
    >"$LOG/load.txt" || { cat "$LOG/load.txt" >&2; fail "dineload run failed"; }
cat "$LOG/load.txt"

kill -INT "$SERVE_PID"
wait "$SERVE_PID" || { cat "$LOG/serve.log" >&2; fail "dineserve exit (exclusion check or drain failed)"; }
grep -q "exclusion check OK" "$LOG/serve.log" || fail "no clean exclusion verdict"
grep "dineserve: wire events" "$LOG/serve.log" || true

cat "$LOG/micro.txt" "$LOG/inproc.txt" "$LOG/load.txt" \
    | go run ./cmd/bench2json -baseline "$OUT" -o "$OUT" || fail "bench2json failed"
echo "bench-serve: wrote $OUT"
