#!/usr/bin/env bash
# chaos_live.sh — the live chaos acceptance run, in two legs that share one
# fault-plan JSON (drops plus one full partition window):
#
#   1. `chaos -live`: an in-process live table (goroutines, wall-clock
#      timers) over the fault-injecting ChaosBus, with one crash/restart,
#      judged by the shared checkers. Exit 130 propagates if interrupted.
#
#   2. The networked service: dineserve with a scheduled diner crash/restart,
#      fronted by the chaosproxy applying the same plan (plus connection
#      resets) to the client/server TCP path, hammered by self-healing
#      dineload clients. Asserts a clean load run and a clean ◇WX verdict
#      from the server's own checker on SIGINT.
#
# The fault schedule is a function of SEED alone; same seed, same schedule.
# Used by `make chaos-live` and CI. SEED/CLIENTS/DURATION are overridable.
set -u

SEED="${SEED:-7}"
CLIENTS="${CLIENTS:-32}"
DURATION="${DURATION:-6s}"
BIN="${BIN:-bin}"
LOG="$(mktemp -d)"
trap 'rm -rf "$LOG"' EXIT

# One plan, both runtimes: 3% steady drops everywhere, and a full partition
# window over plan ticks [2000, 2500). Leg 1 runs 500µs ticks (window =
# 1.0s..1.25s of a 6s run); the proxy runs 1ms ticks (window = 2.0s..2.5s).
cat > "$LOG/plan.json" <<'EOF'
{"drop": 0.03, "windows": [{"start": 2000, "end": 2500, "drop": 1}]}
EOF

echo "chaos-live: leg 1 — in-process live campaign (seed $SEED)"
"$BIN/chaos" -live -seeds "$SEED" -sizes 5 -topologies ring \
    -live-duration "$DURATION" -liveplan "$LOG/plan.json"
LIVE_EXIT=$?
if [ "$LIVE_EXIT" -ne 0 ]; then
    echo "chaos-live: FAIL — live campaign exited $LIVE_EXIT" >&2
    exit "$LIVE_EXIT"
fi

echo "chaos-live: leg 2 — dineserve behind the chaos proxy"
"$BIN/dineserve" -addr 127.0.0.1:0 -lease 5s \
    -chaos-crash 2 -chaos-crash-at 2s -chaos-restart-after 500ms \
    >"$LOG/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR=""
for _ in $(seq 100); do
    ADDR=$(grep -o '127\.0\.0\.1:[0-9]*' "$LOG/serve.log" 2>/dev/null | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "chaos-live: dineserve never started listening" >&2
    cat "$LOG/serve.log" >&2
    exit 1
fi

"$BIN/chaosproxy" -listen 127.0.0.1:0 -upstream "$ADDR" \
    -plan "$LOG/plan.json" -seed "$SEED" -reset 0.002 \
    >"$LOG/proxy.log" 2>&1 &
PROXY_PID=$!
trap 'kill "$PROXY_PID" "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

PADDR=""
for _ in $(seq 100); do
    PADDR=$(grep -o '127\.0\.0\.1:[0-9]*' "$LOG/proxy.log" 2>/dev/null | head -1)
    [ -n "$PADDR" ] && break
    sleep 0.1
done
if [ -z "$PADDR" ]; then
    echo "chaos-live: chaosproxy never started listening" >&2
    cat "$LOG/proxy.log" >&2
    exit 1
fi
echo "chaos-live: proxy $PADDR -> server $ADDR, $CLIENTS clients for $DURATION"

# A dropped line over healthy TCP looks like a slow server; the short op
# timeout is what converts silent frame loss into reconnect-and-replay. It
# also bounds how long a dropped grant can stall the table: the granting
# diner holds its forks until the client releases, so every lost grant or
# release line freezes that diner (and its neighbours) for one op timeout.
"$BIN/dineload" -addr "$PADDR" -clients "$CLIENTS" -duration "$DURATION" \
    -watch=false -op-timeout 500ms
LOAD_EXIT=$?

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
kill -INT "$PROXY_PID" 2>/dev/null
wait "$PROXY_PID" 2>/dev/null
cat "$LOG/proxy.log"
cat "$LOG/serve.log"

if [ "$LOAD_EXIT" -ne 0 ]; then
    echo "chaos-live: FAIL — dineload exited $LOAD_EXIT" >&2
    exit 1
fi
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "chaos-live: FAIL — dineserve exited $SERVE_EXIT (exclusion check or drain failed)" >&2
    exit 1
fi
if ! grep -q "exclusion check OK" "$LOG/serve.log"; then
    echo "chaos-live: FAIL — no exclusion verdict in the server log" >&2
    exit 1
fi
if ! grep -q "diner 2 restarted" "$LOG/serve.log"; then
    echo "chaos-live: FAIL — the scheduled crash/restart never happened" >&2
    exit 1
fi
echo "chaos-live: OK"
