#!/usr/bin/env bash
# serve_smoke.sh — boot dineserve on an ephemeral loopback port, hammer it
# with a short dineload burst, then SIGINT the server and assert that (a) the
# load run saw no errors, (b) a mid-load /metrics scrape exposes the key
# series and shows the counters moving, (c) the session accounting conserves
# (granted + regranted == released + held) once the load stops, and (d) the
# server's ◇WX exclusion checker came back clean over the whole run.
#
# A second leg repeats the burst against a sharded server (-n 16 -tables 4):
# the /metrics series carry {table="i"} labels there, so the conservation
# sum runs across all four tables' series, and the drain must produce one
# clean exclusion verdict per table. Used by `make serve-smoke` and CI; set
# METRICS_OUT to keep the final JSON snapshot (CI uploads it as an artifact).
set -u

CLIENTS="${CLIENTS:-64}"
DURATION="${DURATION:-5s}"
BIN="${BIN:-bin}"
METRICS_OUT="${METRICS_OUT:-}"
LOG="$(mktemp -d)"
trap 'rm -rf "$LOG"' EXIT

# fetch URL > file, portable across curl/wget.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS -o "$2" "$1"
    else
        wget -q -O "$2" "$1"
    fi
}

"$BIN/dineserve" -addr 127.0.0.1:0 -metrics 127.0.0.1:0 >"$LOG/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

# Wait for the listen line and pull the actual addresses out of it. The
# metrics line prints first, so both greps anchor on their own line.
ADDR=""
METRICS_URL=""
for _ in $(seq 100); do
    ADDR=$(sed -n 's/^dineserve: listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG/serve.log" 2>/dev/null | head -1)
    METRICS_URL=$(sed -n 's#^dineserve: metrics on \(http://[0-9.:]*\)/metrics$#\1#p' "$LOG/serve.log" 2>/dev/null | head -1)
    [ -n "$ADDR" ] && [ -n "$METRICS_URL" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ] || [ -z "$METRICS_URL" ]; then
    echo "serve-smoke: dineserve never started listening (addr='$ADDR' metrics='$METRICS_URL')" >&2
    cat "$LOG/serve.log" >&2
    exit 1
fi
echo "serve-smoke: dineserve up on $ADDR (metrics $METRICS_URL), running $CLIENTS clients for $DURATION"

"$BIN/dineload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" -scrape "$METRICS_URL" &
LOAD_PID=$!

# Mid-load scrape: the key series must exist and the grant counter must be
# moving while traffic is in flight.
sleep 2
if ! fetch "$METRICS_URL/metrics" "$LOG/metrics_mid.txt"; then
    echo "serve-smoke: FAIL — mid-load /metrics scrape failed" >&2
    kill "$LOAD_PID" 2>/dev/null
    exit 1
fi
for series in \
    dineserve_sessions_granted_total \
    dineserve_sessions_held \
    dineserve_grant_latency_seconds_count \
    dineserve_wire_writes_total \
    dineserve_suspect_transitions_total \
    dineserve_rt_steps \
    dineserve_bus_delivered_total; do
    if ! grep -q "^$series " "$LOG/metrics_mid.txt"; then
        echo "serve-smoke: FAIL — series $series missing from mid-load scrape" >&2
        kill "$LOAD_PID" 2>/dev/null
        exit 1
    fi
done
MID_GRANTED=$(awk '$1=="dineserve_sessions_granted_total"{print $2}' "$LOG/metrics_mid.txt")
if [ "${MID_GRANTED:-0}" -le 0 ]; then
    echo "serve-smoke: FAIL — no grants visible mid-load (granted_total=$MID_GRANTED)" >&2
    kill "$LOAD_PID" 2>/dev/null
    exit 1
fi
echo "serve-smoke: mid-load scrape OK ($MID_GRANTED grants so far)"

wait "$LOAD_PID"
LOAD_EXIT=$?

# Conservation at drain: every grant is either released or still held. The
# counter pair and the gauge are updated adjacently but not atomically, so
# allow a couple of re-scrapes for an in-flight transition to settle.
CONSERVED=0
for _ in 1 2 3; do
    sleep 0.5
    fetch "$METRICS_URL/metrics" "$LOG/metrics_final.txt" || continue
    GRANTED=$(awk '$1=="dineserve_sessions_granted_total"{print $2}' "$LOG/metrics_final.txt")
    REGRANTED=$(awk '$1=="dineserve_sessions_regranted_total"{print $2}' "$LOG/metrics_final.txt")
    RELEASED=$(awk '$1=="dineserve_sessions_released_total"{print $2}' "$LOG/metrics_final.txt")
    HELD=$(awk '$1=="dineserve_sessions_held"{print $2}' "$LOG/metrics_final.txt")
    if [ "$((GRANTED + REGRANTED))" -eq "$((RELEASED + HELD))" ]; then
        CONSERVED=1
        break
    fi
done
if [ "$CONSERVED" -ne 1 ]; then
    echo "serve-smoke: FAIL — session accounting does not conserve: granted=$GRANTED regranted=$REGRANTED released=$RELEASED held=$HELD" >&2
    exit 1
fi
echo "serve-smoke: conservation OK (granted=$GRANTED regranted=$REGRANTED released=$RELEASED held=$HELD)"

fetch "$METRICS_URL/statusz" "$LOG/statusz.json" || true
if [ -n "$METRICS_OUT" ] && [ -s "$LOG/statusz.json" ]; then
    cp "$LOG/statusz.json" "$METRICS_OUT"
    echo "serve-smoke: metrics snapshot saved to $METRICS_OUT"
fi

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve.log"

if [ "$LOAD_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — dineload exited $LOAD_EXIT" >&2
    exit 1
fi
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — dineserve exited $SERVE_EXIT (exclusion check or drain failed)" >&2
    exit 1
fi
if ! grep -q "exclusion check OK" "$LOG/serve.log"; then
    echo "serve-smoke: FAIL — no exclusion verdict in the server log" >&2
    exit 1
fi
echo "serve-smoke: single-table leg OK"

# --- sharded leg: 16 diners over 4 tables ------------------------------------

echo "serve-smoke: sharded leg — 16 diners over 4 tables"
"$BIN/dineserve" -n 16 -tables 4 -addr 127.0.0.1:0 -metrics 127.0.0.1:0 \
    >"$LOG/serve4.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

ADDR=""
METRICS_URL=""
for _ in $(seq 100); do
    ADDR=$(sed -n 's/^dineserve: listening on \(127\.0\.0\.1:[0-9]*\).*/\1/p' "$LOG/serve4.log" 2>/dev/null | head -1)
    METRICS_URL=$(sed -n 's#^dineserve: metrics on \(http://[0-9.:]*\)/metrics$#\1#p' "$LOG/serve4.log" 2>/dev/null | head -1)
    [ -n "$ADDR" ] && [ -n "$METRICS_URL" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ] || [ -z "$METRICS_URL" ]; then
    echo "serve-smoke: sharded dineserve never started listening" >&2
    cat "$LOG/serve4.log" >&2
    exit 1
fi
grep -q "16 diners over 4 tables" "$LOG/serve4.log" || {
    echo "serve-smoke: FAIL — sharded server did not announce its table count" >&2
    cat "$LOG/serve4.log" >&2
    exit 1
}
echo "serve-smoke: sharded dineserve up on $ADDR (metrics $METRICS_URL)"

"$BIN/dineload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION" -scrape "$METRICS_URL" &
LOAD_PID=$!

# Mid-load scrape: the per-table series must exist for every table. The
# routing hash spreads 16 diners over all 4 tables, so each table's grant
# counter must be present (and the service-wide sum moving).
sleep 2
if ! fetch "$METRICS_URL/metrics" "$LOG/metrics_mid4.txt"; then
    echo "serve-smoke: FAIL — sharded mid-load /metrics scrape failed" >&2
    kill "$LOAD_PID" 2>/dev/null
    exit 1
fi
for i in 0 1 2 3; do
    if ! grep -q "^dineserve_sessions_granted_total{table=\"$i\"} " "$LOG/metrics_mid4.txt"; then
        echo "serve-smoke: FAIL — series dineserve_sessions_granted_total{table=\"$i\"} missing" >&2
        kill "$LOAD_PID" 2>/dev/null
        exit 1
    fi
done
MID_GRANTED=$(awk '$1 ~ /^dineserve_sessions_granted_total([{]|$)/ {s+=$2} END{print s+0}' "$LOG/metrics_mid4.txt")
if [ "${MID_GRANTED:-0}" -le 0 ]; then
    echo "serve-smoke: FAIL — no grants visible mid-load on the sharded server" >&2
    kill "$LOAD_PID" 2>/dev/null
    exit 1
fi
echo "serve-smoke: sharded mid-load scrape OK ($MID_GRANTED grants across 4 tables)"

wait "$LOAD_PID"
LOAD_EXIT=$?

# Conservation across the shard: the same invariant as the flat leg, with
# each quantity summed over its four labeled series.
CONSERVED=0
for _ in 1 2 3; do
    sleep 0.5
    fetch "$METRICS_URL/metrics" "$LOG/metrics_final4.txt" || continue
    GRANTED=$(awk '$1 ~ /^dineserve_sessions_granted_total([{]|$)/ {s+=$2} END{print s+0}' "$LOG/metrics_final4.txt")
    REGRANTED=$(awk '$1 ~ /^dineserve_sessions_regranted_total([{]|$)/ {s+=$2} END{print s+0}' "$LOG/metrics_final4.txt")
    RELEASED=$(awk '$1 ~ /^dineserve_sessions_released_total([{]|$)/ {s+=$2} END{print s+0}' "$LOG/metrics_final4.txt")
    HELD=$(awk '$1 ~ /^dineserve_sessions_held([{]|$)/ {s+=$2} END{print s+0}' "$LOG/metrics_final4.txt")
    if [ "$((GRANTED + REGRANTED))" -eq "$((RELEASED + HELD))" ]; then
        CONSERVED=1
        break
    fi
done
if [ "$CONSERVED" -ne 1 ]; then
    echo "serve-smoke: FAIL — sharded session accounting does not conserve: granted=$GRANTED regranted=$REGRANTED released=$RELEASED held=$HELD" >&2
    exit 1
fi
echo "serve-smoke: sharded conservation OK (granted=$GRANTED regranted=$REGRANTED released=$RELEASED held=$HELD)"

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve4.log"

if [ "$LOAD_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — sharded dineload exited $LOAD_EXIT" >&2
    exit 1
fi
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — sharded dineserve exited $SERVE_EXIT" >&2
    exit 1
fi
VERDICTS=$(grep -c "exclusion check OK" "$LOG/serve4.log")
if [ "$VERDICTS" -ne 4 ]; then
    echo "serve-smoke: FAIL — expected 4 per-table exclusion verdicts, got $VERDICTS" >&2
    exit 1
fi
echo "serve-smoke: OK"
