#!/usr/bin/env bash
# serve_smoke.sh — boot dineserve on an ephemeral loopback port, hammer it
# with a short dineload burst, then SIGINT the server and assert that (a) the
# load run saw no errors, and (b) the server's ◇WX exclusion checker came
# back clean over the whole run. Used by `make serve-smoke` and CI.
set -u

CLIENTS="${CLIENTS:-64}"
DURATION="${DURATION:-5s}"
BIN="${BIN:-bin}"
LOG="$(mktemp -d)"
trap 'rm -rf "$LOG"' EXIT

"$BIN/dineserve" -addr 127.0.0.1:0 >"$LOG/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$LOG"' EXIT

# Wait for the listen line and pull the actual address out of it.
ADDR=""
for _ in $(seq 100); do
    ADDR=$(grep -o '127\.0\.0\.1:[0-9]*' "$LOG/serve.log" 2>/dev/null | head -1)
    [ -n "$ADDR" ] && break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "serve-smoke: dineserve never started listening" >&2
    cat "$LOG/serve.log" >&2
    exit 1
fi
echo "serve-smoke: dineserve up on $ADDR, running $CLIENTS clients for $DURATION"

"$BIN/dineload" -addr "$ADDR" -clients "$CLIENTS" -duration "$DURATION"
LOAD_EXIT=$?

kill -INT "$SERVE_PID"
wait "$SERVE_PID"
SERVE_EXIT=$?
cat "$LOG/serve.log"

if [ "$LOAD_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — dineload exited $LOAD_EXIT" >&2
    exit 1
fi
if [ "$SERVE_EXIT" -ne 0 ]; then
    echo "serve-smoke: FAIL — dineserve exited $SERVE_EXIT (exclusion check or drain failed)" >&2
    exit 1
fi
if ! grep -q "exclusion check OK" "$LOG/serve.log"; then
    echo "serve-smoke: FAIL — no exclusion verdict in the server log" >&2
    exit 1
fi
echo "serve-smoke: OK"
