// Fair dining pipeline — the paper's secondary result as a running system:
//
//	black-box WF-◇WX dining  --reduction-->  ◇P  --[13] layer-->  eventually
//	                                                             2-fair dining
//
// A greedy diner shares an edge with a patient one. The plain black box
// never promises fairness (the greedy one may overtake arbitrarily); the
// fair layer, driven by the oracle *extracted from that very box*, bounds
// suffix overtaking by 2.
//
//	go run ./examples/fairdining
package main

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	g := graph.Pair(0, 1)
	drive := func(k *sim.Kernel, tbl dining.Table) {
		// Diner 0 barely thinks; diner 1 is slow to ask.
		dining.Drive(k, 0, tbl.Diner(0), dining.DriverConfig{ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 15})
		dining.Drive(k, 1, tbl.Diner(1), dining.DriverConfig{ThinkMin: 10, ThinkMax: 80, EatMin: 5, EatMax: 25})
	}
	const horizon = 60000

	// --- Plain black box. ---
	{
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(3), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		tbl := forks.New(k, g, "plain", native, forks.Config{})
		drive(k, tbl)
		end := k.Run(horizon)
		report(log, g, "plain", "plain WF-◇WX box", end)
	}

	// --- The pipeline. ---
	{
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(3), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		blackbox := forks.Factory(native, forks.Config{})
		extracted := core.NewExtractor(k, g.Nodes(), blackbox, "xp")    // step 1: reduction
		tbl := fairness.New(k, g, "fair", extracted, fairness.Config{}) // step 2: [13] layer
		drive(k, tbl)
		end := k.Run(horizon)
		report(log, g, "fair", "pipeline (extracted ◇P -> fair layer)", end)
	}
}

func report(log *trace.Log, g *graph.Graph, inst, label string, end sim.Time) {
	eat := log.Sessions("eating")
	m0 := len(eat[trace.SessionKey{Inst: inst, P: 0}])
	m1 := len(eat[trace.SessionKey{Inst: inst, P: 1}])
	over := checker.KFairness(log, g, inst, 2, end/2, end)
	worst := 0
	for _, o := range over {
		if o.Count > worst {
			worst = o.Count
		}
	}
	fmt.Printf("%s:\n", label)
	fmt.Printf("  meals: greedy=%d patient=%d\n", m0, m1)
	if len(over) == 0 {
		fmt.Printf("  suffix overtaking: within the 2-fairness bound\n\n")
	} else {
		fmt.Printf("  suffix overtaking: bound exceeded %d times (worst streak %d meals)\n\n", len(over), worst)
	}
}
