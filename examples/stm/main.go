// STM contention management (Sections 2–3 of the paper): an obstruction-
// free software transactional memory guarantees progress only to
// transactions that run in isolation. Under contention, a long transaction
// can abort forever while short rivals commit — obstruction freedom is not
// wait freedom. A wait-free ◇WX dining service used as a contention manager
// fixes this: clients ask the manager before attempting a transaction, and
// once the manager stops making scheduling mistakes every permitted attempt
// runs isolated and commits.
//
//	go run ./examples/stm
package main

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stm"
)

func main() {
	fmt.Println("scenario: one long transaction (40 ticks) vs two fast rivals (9 ticks), same object")
	fmt.Println()

	// --- Round 1: raw obstruction freedom. ---
	{
		k := sim.NewKernel(3, sim.WithSeed(11))
		store := stm.NewStore()
		victim := stm.NewClient(k, store, 0, stm.Config{Objs: []string{"acct"}, Length: 40})
		r1 := stm.NewClient(k, store, 1, stm.Config{Objs: []string{"acct"}, Length: 9})
		r2 := stm.NewClient(k, store, 2, stm.Config{Objs: []string{"acct"}, Length: 9})
		k.Run(30000)
		fmt.Println("without contention manager:")
		fmt.Println("  " + stm.Summary([]*stm.Client{victim, r1, r2}))
		fmt.Printf("  the long transaction starved: %d commits after %d attempts\n\n",
			victim.Stats().Commits, victim.Stats().Aborts+victim.Stats().Commits)
	}

	// --- Round 2: the same workload behind a dining-backed manager. ---
	{
		k := sim.NewKernel(3, sim.WithSeed(11),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
		store := stm.NewStore()
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		manager := forks.New(k, graph.Clique(3), "cm", oracle, forks.Config{})
		victim := stm.NewManagedClient(k, store, 0, manager.Diner(0), stm.Config{Objs: []string{"acct"}, Length: 40, Target: 10})
		r1 := stm.NewManagedClient(k, store, 1, manager.Diner(1), stm.Config{Objs: []string{"acct"}, Length: 9, Target: 40})
		r2 := stm.NewManagedClient(k, store, 2, manager.Diner(2), stm.Config{Objs: []string{"acct"}, Length: 9, Target: 40})
		k.Run(150000)
		fmt.Println("with wait-free ◇WX contention manager:")
		fmt.Println("  " + stm.Summary([]*stm.Client{victim, r1, r2}))
		st := victim.Stats()
		fmt.Printf("  the long transaction now commits (%d/%d), last at t=%d\n",
			st.Commits, 10, st.LastDone)
		fmt.Println("  manager mistakes only show up as (retried) aborts — recoverable, as Section 2 argues")
	}
}
