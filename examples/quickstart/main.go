// Quickstart: extract an eventually perfect failure detector (◇P) from a
// black-box wait-free dining service — the paper's reduction, end to end,
// in ~40 lines of wiring.
//
// Two processes run in a simulated asynchronous network that stabilizes at
// t=800. Process 0 monitors process 1 through two dining instances; halfway
// through the run process 1 crashes. Watch the extracted oracle's output
// flip from the initial suspicion, to trust (accuracy), to permanent
// suspicion after the crash (completeness).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	log := &trace.Log{}
	k := sim.NewKernel(2,
		sim.WithSeed(42),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}),
	)

	// The black box: any WF-◇WX dining solution will do. This one is the
	// fork algorithm driven by a heartbeat ◇P (the sufficiency direction).
	oracle := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	blackbox := forks.Factory(oracle, forks.Config{})

	// The reduction: process 0 monitors process 1.
	monitor := core.NewPairMonitor(k, 0, 1, blackbox, "extracted")

	// Sample the output as the run progresses.
	for _, at := range []sim.Time{100, 2000, 10000, 20000, 30000} {
		at := at
		k.After(0, at, func() {
			fmt.Printf("t=%-6d process 0 %s process 1\n", k.Now(), verdict(monitor))
		})
	}

	// Crash the monitored process mid-run.
	k.CrashAt(1, 15000)

	k.Run(35000)

	fmt.Println()
	fmt.Println("suspicion history of the extracted oracle:")
	for _, ch := range log.Suspicions()[trace.SuspicionKey{Inst: "extracted", P: 0, Peer: 1}] {
		what := "trusts"
		if ch.Suspect {
			what = "suspects"
		}
		fmt.Printf("  t=%-6d %s\n", ch.T, what)
	}
	fmt.Println("\n(1 crashed at t=15000; the suffix after the last transition is permanent suspicion)")
}

func verdict(m *core.PairMonitor) string {
	if m.Suspect() {
		return "suspects"
	}
	return "trusts  "
}
