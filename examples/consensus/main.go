// Consensus over the extracted oracle — the paper's equivalence chain as a
// running system:
//
//	WF-◇WX dining (black box)  --reduction-->  ◇P  -->  consensus + leader
//	                                                    election
//
// Three processes each propose a value; the oracle driving both the
// Chandra–Toueg consensus rounds and the leader election is the one
// extracted from a dining service by the witness/subject construction.
// Process 2 crashes mid-run; the survivors still agree and elect a live
// leader.
//
//	go run ./examples/consensus
package main

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/election"
	"repro/internal/sim"
)

func main() {
	procs := []sim.ProcID{0, 1, 2}
	k := sim.NewKernel(len(procs),
		sim.WithSeed(21),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}),
	)

	// Step 1: a black-box WF-◇WX dining service.
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	blackbox := forks.Factory(native, forks.Config{})

	// Step 2: extract ◇P from it (all ordered pairs).
	oracle := core.NewExtractor(k, procs, blackbox, "extracted")

	// Step 3: run consensus and leader election on the extracted oracle.
	cs := consensus.New(k, procs, "agree", oracle)
	el := election.New(k, procs, "lead", oracle, 0)
	for _, p := range procs {
		p := p
		cs.Propose(p, consensus.Value(1000+int64(p)))
		cs.OnDecide(p, func(v consensus.Value) {
			fmt.Printf("t=%-6d process %d decides %d (round %d)\n", k.Now(), p, v, cs.Round(p))
		})
	}

	k.CrashAt(2, 8000)
	k.Run(100000)

	fmt.Println()
	for _, p := range procs {
		if k.Crashed(p) {
			fmt.Printf("process %d crashed at t=%d\n", p, k.CrashTime(p))
			continue
		}
		v, ok := cs.Decided(p)
		fmt.Printf("process %d: decided=%v value=%d leader=p%d\n", p, ok, v, el.Leader(p))
	}
	if leader, err := el.Agreement(k); err == nil {
		fmt.Printf("\nstable leader among survivors: p%d\n", leader)
	} else {
		fmt.Println("\nelection disagreement:", err)
	}
}
