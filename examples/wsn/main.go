// WSN duty-cycle scheduling (Section 2 of the paper): a surveillance field
// is covered by redundant teams of battery-powered sensors. A wait-free
// ◇WX dining service on the conflict graph schedules which teammate is on
// duty. Scheduling mistakes burn battery on redundant coverage but never
// break surveillance; once the scheduler converges, exactly one teammate
// per zone is on duty, and when a sensor's battery dies (a crash in the
// model) wait-freedom hands its zone to a teammate.
//
//	go run ./examples/wsn
package main

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wsn"
)

func main() {
	// 4 zones x 3 sensors per zone x 5 cells per zone.
	field := wsn.NewTeamField(4, 3, 5)
	g := field.ConflictGraph()
	fmt.Printf("deployment: %d sensors, %d cells, conflict %v\n\n", len(field.Coverage), field.Cells, g)

	log := &trace.Log{}
	k := sim.NewKernel(g.N(),
		sim.WithSeed(7),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}),
	)
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	table := forks.New(k, g, "duty", oracle, forks.Config{})

	sensors := make(map[sim.ProcID]*wsn.Sensor)
	for _, p := range g.Nodes() {
		// Uneven batteries: the first teammate of each zone dies early, so
		// hand-offs are visible.
		battery := sim.Time(30000)
		if int(p)%3 == 0 {
			battery = 2500
		}
		sensors[p] = wsn.NewSensor(k, field, g, p, table.Diner(p), oracle, "wsn", wsn.SensorConfig{
			Battery: battery, Shift: 150, Sample: 30,
		})
	}

	const horizon = 25000
	end := k.Run(horizon)

	rep := wsn.Analyze(log.Records, field, "duty", end)
	fmt.Printf("duty ticks:               %d\n", rep.DutyTicks)
	fmt.Printf("redundant duty ticks:     %d (%.1f%% of duty)\n",
		rep.RedundantTicks, 100*float64(rep.RedundantTicks)/float64(max64(1, rep.DutyTicks)))
	fmt.Printf("coverage loss cell-ticks: %d (%.1f%% of field-time)\n",
		rep.CoverageLoss, 100*float64(rep.CoverageLoss)/float64(int64(field.Cells)*int64(end)))
	fmt.Printf("field lifespan:           t=%d (horizon %d)\n\n", rep.Lifespan, end)

	fmt.Println("sensor  zone  battery-left  crashed")
	for _, p := range g.Nodes() {
		crashed := "-"
		if k.Crashed(p) {
			crashed = fmt.Sprintf("t=%d (depleted)", k.CrashTime(p))
		}
		fmt.Printf("%6d  %4d  %12d  %s\n", p, int(p)/3, sensors[p].Battery(), crashed)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
