// Benchmarks regenerating every experiment in EXPERIMENTS.md (one bench per
// table/figure), plus micro-benchmarks of the simulation substrate. Run:
//
//	go test -bench=. -benchmem
//
// The E* benches fail the run if an experiment observes a property
// violation, so `go test -bench` doubles as the reproduction check.
package repro_test

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/experiment"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// requireOk fails the benchmark if the experiment reported violations.
func requireOk(b *testing.B, t *experiment.Table) {
	b.Helper()
	if !t.Ok() {
		b.Fatalf("%s failed:\n%s", t.ID, t.Render())
	}
}

func BenchmarkE1_Figure1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E1Figure1(int64(i)+1))
	}
}

func BenchmarkE2_StrongCompleteness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E2Completeness([]int64{int64(i) + 1}, []int{2, 3}))
	}
}

func BenchmarkE3_EventualAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E3Accuracy([]int64{int64(i) + 1}, []sim.Time{400, 1500}))
	}
}

func BenchmarkE4_Invariants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E4Invariants([]int64{int64(i) + 1}))
	}
}

func BenchmarkE5_Progress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E5Progress([]int64{int64(i) + 1}))
	}
}

func BenchmarkE6_FlawedConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E6Flawed(int64(i)+1, []sim.Time{10000, 20000}))
	}
}

func BenchmarkE7_EventualFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E7Fairness([]int64{int64(i) + 1}))
	}
}

func BenchmarkE8_TrustingExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E8Trusting([]int64{int64(i) + 1}))
	}
}

func BenchmarkE9_SufficiencySanity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E9Sufficiency([]int64{int64(i) + 1}))
	}
}

func BenchmarkE10_Applications(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E10Applications(int64(i)+1))
	}
}

func BenchmarkE11_Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E11Scaling(int64(i)+1, []int{2, 3, 4}))
	}
}

func BenchmarkE12_Downstream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E12Downstream([]int64{int64(i) + 1}))
	}
}

func BenchmarkE13_Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E13Ablations(int64(i)+1))
	}
}

func BenchmarkE14_Locality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E14Locality(int64(i)+1))
	}
}

func BenchmarkE15_RoundTrip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E15RoundTrip([]int64{int64(i) + 1}))
	}
}

func BenchmarkE16_ChaosSoak(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E16ChaosSoak(int64(i)+1))
	}
}

func BenchmarkE17_LossyLinks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		requireOk(b, experiment.E17LossyLinks(int64(i)+1))
	}
}

// BenchmarkCampaignParallel measures the parallel sweep runner on the
// 240-run DefaultLinkCampaign (at a reduced horizon so one iteration stays
// in whole seconds): the same campaign executes once sequentially and once
// at GOMAXPROCS workers, the reports are asserted identical, and the
// sequential/parallel wall-clock ratio lands in the "speedup" metric. On a
// single-CPU machine the expected speedup is ~1.0; the metric exists to
// track scaling on wider hardware in the bench trajectory.
func BenchmarkCampaignParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	var seqTotal, parTotal time.Duration
	for i := 0; i < b.N; i++ {
		c := chaos.DefaultLinkCampaign(6000)
		c.Parallel = 1
		t0 := time.Now()
		seq := c.Run()
		seqTotal += time.Since(t0)
		c.Parallel = workers
		t0 = time.Now()
		par := c.Run()
		parTotal += time.Since(t0)
		if seq.Render() != par.Render() {
			b.Fatalf("parallel report diverged from sequential:\nseq:\n%s\npar:\n%s",
				seq.Render(), par.Render())
		}
	}
	b.ReportMetric(seqTotal.Seconds()/parTotal.Seconds(), "speedup")
	b.ReportMetric(float64(workers), "workers")
}

// ---- Substrate micro-benchmarks ----

// BenchmarkKernelEvents measures raw event throughput: two processes
// ping-ponging a message.
func BenchmarkKernelEvents(b *testing.B) {
	k := sim.NewKernel(2, sim.WithDelay(sim.FixedDelay{D: 1}))
	count := 0
	k.Handle(0, "x", func(m sim.Message) { count++; k.Send(0, 1, "x", nil) })
	k.Handle(1, "x", func(m sim.Message) { count++; k.Send(1, 0, "x", nil) })
	k.Send(0, 1, "x", nil)
	b.ResetTimer()
	k.Run(sim.Time(b.N) * 2)
	b.ReportMetric(float64(count)/float64(b.N), "deliveries/op")
}

// BenchmarkKernelSteps measures guarded-action scheduling throughput.
func BenchmarkKernelSteps(b *testing.B) {
	k := sim.NewKernel(1, sim.WithStepJitter(1))
	n := 0
	k.AddAction(0, "inc", func() bool { return true }, func() { n++ })
	b.ResetTimer()
	k.Run(sim.Time(b.N))
	if n == 0 {
		b.Fatal("no steps")
	}
}

// BenchmarkForksTable measures dining throughput on a ring of 5 (meals
// completed per simulated 10k ticks).
func BenchmarkForksTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log := &trace.Log{}
		g := graph.Ring(5)
		k := sim.NewKernel(5, sim.WithSeed(int64(i)+1), sim.WithTracer(log),
			sim.WithDelay(sim.UniformDelay{Min: 1, Max: 8}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		tbl := forks.New(k, g, "fk", oracle, forks.Config{})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 5, ThinkMax: 30, EatMin: 3, EatMax: 10,
			})
		}
		end := k.Run(10000)
		meals := 0
		for _, ivs := range log.Sessions("eating") {
			meals += len(ivs)
		}
		if meals == 0 {
			b.Fatal("no meals")
		}
		b.ReportMetric(float64(meals), "meals/10kticks")
		_ = end
	}
}

// BenchmarkPairMonitor measures one full reduction run (30k ticks over the
// forks box) including trace collection.
func BenchmarkPairMonitor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(int64(i)+1), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		oracle := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		m := core.NewPairMonitor(k, 0, 1, forks.Factory(oracle, forks.Config{}), "xp")
		k.Run(30000)
		if m.Suspect() {
			b.Fatal("monitor did not converge")
		}
	}
}

// BenchmarkHeartbeatOracle measures the native ◇P alone at n=4.
func BenchmarkHeartbeatOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(4, sim.WithSeed(int64(i)+1),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		hb := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		k.Run(30000)
		if hb.Suspected(0, 1) {
			b.Fatal("did not converge")
		}
	}
}

// BenchmarkCheckerExclusion measures trace analysis over a dense run.
func BenchmarkCheckerExclusion(b *testing.B) {
	log := &trace.Log{}
	g := graph.Clique(4)
	k := sim.NewKernel(4, sim.WithSeed(1), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 8}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := forks.New(k, g, "fk", oracle, forks.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 5, ThinkMax: 30, EatMin: 3, EatMax: 10,
		})
	}
	end := k.Run(30000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := checker.Exclusion(log, g, "fk", end)
		_ = rep
	}
	b.ReportMetric(float64(log.Len()), "records")
}
