package transport

import "encoding/gob"

// RegisterWire registers the transport's envelope types for gob transit
// over a networked bus (internal/live's TCP bus), so a transport-wrapped
// system can span nodes. Call it once per process image before connecting;
// payload types carried inside dataMsg must be registered by their own
// packages (e.g. forks.RegisterWire).
func RegisterWire() {
	gob.Register(dataMsg{})
	gob.Register(ackMsg{})
}
