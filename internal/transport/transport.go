// Package transport restores the paper's reliable-channel axioms on top of
// the kernel's fair-lossy links (rt.LinkPlan): exactly-once delivery of
// every protocol message to every correct destination, with no protocol
// module changing a line.
//
// Mechanism — the classic simulation of reliable channels over fair-lossy
// links (cf. Aspnes's lecture notes; the retransmit-until-ack "stubborn
// link" plus sequence-number deduplication): Enable installs a rt.SendHook,
// so every protocol-level Send is intercepted and wrapped into a sequenced
// envelope on the transport's own wire port. Per ordered process pair the
// sender keeps the unacknowledged window and retransmits it with exponential
// backoff (capped), the receiver suppresses duplicates with a cumulative
// watermark plus a sparse out-of-order set, acks cumulatively, and hands
// each fresh payload to the handler the protocol registered for its original
// port (rt.Kernel.Dispatch). Because fair-lossy links deliver a message
// sent infinitely often infinitely often, and retransmission stops only on
// acknowledgement, every wrapped message reaches a correct destination
// exactly once — the channel contract internal/detector, internal/core and
// the dining boxes were written against. The transport is quiescent: once
// everything outstanding is acked, no further wire traffic is generated for
// it.
//
// All timing comes from kernel timers and all randomness from the kernel's
// seeded source (the transport itself uses none), so runs over the transport
// are exactly as deterministic and replayable as runs without it.
package transport

import (
	"sort"
	"sync"

	"repro/internal/rt"
)

// Config tunes retransmission. The zero value gives usable defaults.
type Config struct {
	// RTO is the initial retransmission timeout for a fresh window (default
	// 40 ticks — a little above one round trip under the default delay
	// policies, so acks usually win the race).
	RTO rt.Time
	// RTOMax caps the exponential backoff (default 640). The cap keeps a
	// retransmitting sender probing a silent peer at a bounded, non-zero
	// rate: messages to a crashed process are retransmitted forever (the
	// channel axiom only promises delivery to correct processes — nothing
	// here may guess at crashes), but never faster than once per RTOMax.
	RTOMax rt.Time
	// Window bounds how many unacked messages one retransmission burst
	// re-sends, oldest first (default 64). It bounds the burst a long-dead
	// destination can provoke; liveness is unaffected because acks always
	// advance the window from the oldest end.
	Window int
}

func (c *Config) defaults() {
	if c.RTO <= 0 {
		c.RTO = 40
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 640
	}
	if c.Window <= 0 {
		c.Window = 64
	}
}

// dataMsg is the wire envelope of one protocol message.
type dataMsg struct {
	Seq     int64
	Port    string // the protocol port the payload is addressed to
	Payload any
}

// ackMsg acknowledges receipt: everything up to Cum, plus Seq itself (which
// may be ahead of the watermark).
type ackMsg struct {
	Cum int64
	Seq int64
}

// flight is one unacknowledged envelope with its last transmission time.
type flight struct {
	env dataMsg
	at  rt.Time
}

// sender is the outbound state for one ordered pair (from -> to).
type sender struct {
	next    int64             // last assigned sequence number
	unacked map[int64]*flight // in flight, keyed by sequence number
	rto     rt.Time           // current backoff
	armed   bool              // retransmission timer pending
}

// receiver is the inbound state for one ordered pair (from -> to).
type receiver struct {
	cum   int64          // every seq <= cum has been delivered
	above map[int64]bool // delivered seqs beyond the watermark
}

// Reliable is the transport instance attached to one runtime.
//
// Concurrency: on the live runtime, sends, retransmission timers and acks
// for a pair (p → q) all execute as steps of p, and data receipt as steps of
// q, so each sender/receiver struct is touched by exactly one process's
// goroutine — the per-pair state needs no locking on either runtime. Only
// the two top-level maps are shared across processes; mu guards them.
type Reliable struct {
	k    rt.TransportRuntime
	name string
	cfg  Config
	mu   sync.Mutex
	out  map[[2]rt.ProcID]*sender
	in   map[[2]rt.ProcID]*receiver
}

// Enable attaches a reliable transport named name to k: it registers the
// wire ports name+"/data" and name+"/ack" at every process and installs the
// send hook. From this call on, every k.Send made by protocol code travels
// through the transport; the kernel's RawSend remains the unreliable
// underlay. Counters (all via k.Counter): "transport.sent" (protocol
// messages accepted), "transport.retransmit" (wire re-sends),
// "transport.delivered" (exactly-once handoffs), "transport.dup" (duplicate
// envelopes suppressed), "transport.acks" (acks sent).
func Enable(k rt.TransportRuntime, name string, cfg Config) *Reliable {
	cfg.defaults()
	t := &Reliable{
		k: k, name: name, cfg: cfg,
		out: make(map[[2]rt.ProcID]*sender),
		in:  make(map[[2]rt.ProcID]*receiver),
	}
	data, ack := name+"/data", name+"/ack"
	for i := 0; i < k.N(); i++ {
		p := rt.ProcID(i)
		k.Handle(p, data, func(m rt.Message) { t.onData(p, m) })
		k.Handle(p, ack, func(m rt.Message) { t.onAck(p, m) })
	}
	k.SetSendHook(func(m rt.Message) bool {
		t.send(m)
		return true
	})
	return t
}

// Name returns the transport's port namespace.
func (t *Reliable) Name() string { return t.name }

// send accepts one protocol message, assigns it a sequence number, ships the
// first copy, and arms retransmission.
func (t *Reliable) send(m rt.Message) {
	key := [2]rt.ProcID{m.From, m.To}
	s := t.sender(key)
	s.next++
	env := dataMsg{Seq: s.next, Port: m.Port, Payload: m.Payload}
	s.unacked[env.Seq] = &flight{env: env, at: t.k.Now()}
	t.k.Count("transport.sent", 1)
	t.k.RawSend(m.From, m.To, t.name+"/data", env)
	t.arm(key, s)
}

// arm schedules the retransmission check for this pair if none is pending.
// The timer lives at the sending process, so it dies with it.
func (t *Reliable) arm(key [2]rt.ProcID, s *sender) {
	if s.armed {
		return
	}
	s.armed = true
	t.k.After(key[0], s.rto, func() { t.fire(key, s) })
}

// fire is the retransmission timeout: re-send the oldest window of unacked
// envelopes that have gone a full RTO without an ack, back off exponentially
// up to the cap, and re-arm while anything is outstanding. An empty window
// disarms and resets the backoff — the quiescence point.
func (t *Reliable) fire(key [2]rt.ProcID, s *sender) {
	s.armed = false
	if len(s.unacked) == 0 {
		s.rto = t.cfg.RTO
		return
	}
	// Deterministic order: map iteration order must never leak into the
	// event schedule. Only envelopes whose last transmission is at least one
	// RTO old are eligible — a message sent the very tick the timer fires
	// has had no chance to be acked yet.
	now := t.k.Now()
	seqs := make([]int64, 0, len(s.unacked))
	for seq, f := range s.unacked {
		if now-f.at >= s.rto {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	if len(seqs) > t.cfg.Window {
		seqs = seqs[:t.cfg.Window]
	}
	for _, seq := range seqs {
		f := s.unacked[seq]
		f.at = now
		t.k.Count("transport.retransmit", 1)
		t.k.RawSend(key[0], key[1], t.name+"/data", f.env)
	}
	if len(seqs) > 0 {
		if s.rto *= 2; s.rto > t.cfg.RTOMax {
			s.rto = t.cfg.RTOMax
		}
	}
	t.arm(key, s)
}

// onData handles one wire envelope at the destination: ack it, suppress it
// if already seen, otherwise advance the watermark and hand the payload to
// the protocol handler registered for its original port.
func (t *Reliable) onData(p rt.ProcID, m rt.Message) {
	env := m.Payload.(dataMsg)
	key := [2]rt.ProcID{m.From, p}
	r := t.receiver(key)
	fresh := env.Seq > r.cum && !r.above[env.Seq]
	if fresh {
		r.above[env.Seq] = true
		for r.above[r.cum+1] {
			r.cum++
			delete(r.above, r.cum)
		}
	} else {
		t.k.Count("transport.dup", 1)
	}
	// Always ack, even duplicates: the first ack may have been lost.
	t.k.Count("transport.acks", 1)
	t.k.RawSend(p, m.From, t.name+"/ack", ackMsg{Cum: r.cum, Seq: env.Seq})
	if fresh {
		t.k.Count("transport.delivered", 1)
		t.k.Dispatch(rt.Message{From: m.From, To: p, Port: env.Port, Payload: env.Payload})
	}
}

// onAck clears acknowledged envelopes from the sender window. Progress
// resets the backoff; a drained window goes quiescent at the next fire.
func (t *Reliable) onAck(p rt.ProcID, m rt.Message) {
	a := m.Payload.(ackMsg)
	t.mu.Lock()
	s := t.out[[2]rt.ProcID{p, m.From}]
	t.mu.Unlock()
	if s == nil {
		return
	}
	before := len(s.unacked)
	for seq := range s.unacked {
		if seq <= a.Cum || seq == a.Seq {
			delete(s.unacked, seq)
		}
	}
	if len(s.unacked) < before {
		s.rto = t.cfg.RTO
	}
}

// Reset reinstalls p's outbound transport state after a crash-restart. Call
// it from the reboot hook of a live-runtime Restart, before any protocol
// module's reset (their resync messages must go out through a working
// sender), on p's own goroutine.
//
// Two things need repair. The dead incarnation's unacked windows are
// discarded: those messages are volatile state that died with the process,
// and replaying them could contradict the state its protocol modules rebuild
// on restart (a pre-crash fork transfer re-sent after the forks resync has
// minted a replacement would put two forks on one edge). And the armed flags
// are cleared: the crash killed the pending retransmission timers (timers of
// a dead incarnation never fire into the next one), so a stale armed=true
// would suppress re-arming forever — every first copy lost after the restart
// would then be lost for good. Sequence counters are deliberately kept, as
// the receiver watermarks at the peers survive the crash; restarting them at
// zero would make every new envelope look like a duplicate.
func (t *Reliable) Reset(p rt.ProcID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for key, s := range t.out {
		if key[0] != p {
			continue
		}
		s.unacked = make(map[int64]*flight)
		s.armed = false
		s.rto = t.cfg.RTO
	}
}

// Outstanding reports the number of unacknowledged envelopes from p to q —
// 0 for a quiescent pair (tests and metrics).
func (t *Reliable) Outstanding(p, q rt.ProcID) int {
	t.mu.Lock()
	s := t.out[[2]rt.ProcID{p, q}]
	t.mu.Unlock()
	if s != nil {
		return len(s.unacked)
	}
	return 0
}

// sender returns (creating if needed) the outbound state for key.
func (t *Reliable) sender(key [2]rt.ProcID) *sender {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.out[key]
	if s == nil {
		s = &sender{unacked: make(map[int64]*flight), rto: t.cfg.RTO}
		t.out[key] = s
	}
	return s
}

// receiver returns (creating if needed) the inbound state for key.
func (t *Reliable) receiver(key [2]rt.ProcID) *receiver {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.in[key]
	if r == nil {
		r = &receiver{above: make(map[int64]bool)}
		t.in[key] = r
	}
	return r
}
