package transport_test

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

// lossyKernel builds an n-process kernel under a harsh fair-lossy plan with
// the transport enabled.
func lossyKernel(t *testing.T, n int, seed int64, plan sim.LinkPlan) (*sim.Kernel, *transport.Reliable) {
	t.Helper()
	k := sim.NewKernel(n, sim.WithSeed(seed), sim.WithDelay(sim.UniformDelay{Min: 1, Max: 8}))
	rt := transport.Enable(k, "rt", transport.Config{})
	if err := plan.Apply(k); err != nil {
		t.Fatal(err)
	}
	return k, rt
}

// TestExactlyOnceUnderLossDupReorder is the package contract: every message
// sent to a correct process arrives exactly once, in spite of 30% loss,
// duplication, reordering, and a total-loss window.
func TestExactlyOnceUnderLossDupReorder(t *testing.T) {
	plan := sim.LinkPlan{
		Name: "harsh", Drop: 0.3, Dup: 0.2, ReorderMax: 12,
		Windows: []sim.LossyWindow{{Start: 500, End: 900, Drop: 1}},
	}
	for _, seed := range []int64{1, 2, 3} {
		k, rt := lossyKernel(t, 2, seed, plan)
		const msgs = 200
		got := make(map[int]int)
		k.Handle(1, "app", func(m sim.Message) { got[m.Payload.(int)]++ })
		k.Handle(0, "app", func(sim.Message) {})
		for i := 0; i < msgs; i++ {
			i := i
			k.After(0, sim.Time(1+i*5), func() { k.Send(0, 1, "app", i) })
		}
		k.Run(40000)
		for i := 0; i < msgs; i++ {
			if got[i] != 1 {
				t.Fatalf("seed %d: message %d delivered %d times, want exactly once", seed, i, got[i])
			}
		}
		if rt.Outstanding(0, 1) != 0 {
			t.Fatalf("seed %d: %d envelopes still unacked after the run", seed, rt.Outstanding(0, 1))
		}
		if k.Counter("transport.retransmit") == 0 {
			t.Fatalf("seed %d: 30%% loss provoked no retransmissions", seed)
		}
		if k.Counter("transport.delivered") != msgs {
			t.Fatalf("seed %d: transport.delivered=%d, want %d", seed, k.Counter("transport.delivered"), msgs)
		}
	}
}

// TestDuplicateSuppression: link-level duplicates are acked but not
// re-delivered.
func TestDuplicateSuppression(t *testing.T) {
	k, _ := lossyKernel(t, 2, 7, sim.LinkPlan{Name: "dupy", Dup: 0.5})
	delivered := 0
	k.Handle(1, "app", func(sim.Message) { delivered++ })
	const msgs = 100
	for i := 0; i < msgs; i++ {
		k.After(0, sim.Time(1+i*3), func() { k.Send(0, 1, "app", nil) })
	}
	k.Run(5000)
	if delivered != msgs {
		t.Fatalf("delivered %d, want %d", delivered, msgs)
	}
	if k.Counter("transport.dup") == 0 {
		t.Fatal("50% duplication suppressed no duplicates")
	}
}

// TestQuiescence: after everything is acked the transport generates no
// further wire traffic — retransmission is ack-driven, not periodic.
func TestQuiescence(t *testing.T) {
	k, rt := lossyKernel(t, 2, 5, sim.LinkPlan{Name: "mild", Drop: 0.2})
	k.Handle(1, "app", func(sim.Message) {})
	for i := 0; i < 50; i++ {
		k.After(0, sim.Time(1+i), func() { k.Send(0, 1, "app", nil) })
	}
	k.Run(20000)
	if rt.Outstanding(0, 1) != 0 {
		t.Fatalf("%d envelopes unacked at the horizon", rt.Outstanding(0, 1))
	}
	sent := k.Counter("msg.sent")
	// Quiescent: running the clock another long stretch moves no messages.
	k.Run(60000)
	if more := k.Counter("msg.sent") - sent; more != 0 {
		t.Fatalf("%d wire messages after quiescence", more)
	}
}

// TestCrashedDestinationBoundedProbing: a crashed destination is probed
// forever (the transport must not guess at crashes) but at the capped
// backoff rate, and only the retransmission window per burst.
func TestCrashedDestinationBoundedProbing(t *testing.T) {
	k := sim.NewKernel(2, sim.WithSeed(2), sim.WithDelay(sim.FixedDelay{D: 2}))
	transport.Enable(k, "rt", transport.Config{RTO: 20, RTOMax: 160, Window: 8})
	k.Handle(1, "app", func(sim.Message) {})
	k.CrashAt(1, 10)
	for i := 0; i < 40; i++ {
		k.After(0, sim.Time(20+i), func() { k.Send(0, 1, "app", nil) })
	}
	k.Run(20000)
	retx := k.Counter("transport.retransmit")
	if retx == 0 {
		t.Fatal("no probing of the silent destination")
	}
	// At the 160-tick cap with a window of 8, ~20000/160 bursts of ≤8:
	// generously bounded above; unbounded (per-message, uncapped) schemes
	// would be an order of magnitude past this.
	if retx > 1400 {
		t.Fatalf("%d retransmissions to a crashed destination; probing is not bounded", retx)
	}
	if k.Counter("msg.dropped.crash") == 0 {
		t.Fatal("no crash-drops recorded for the dead destination")
	}
}

// TestTransportDeterminism: two runs of the same seed produce identical
// counters — retransmission timing and map handling leak no nondeterminism.
func TestTransportDeterminism(t *testing.T) {
	run := func() map[string]int64 {
		k, _ := lossyKernel(t, 3, 42, sim.LinkPlan{Name: "harsh", Drop: 0.25, Dup: 0.1, ReorderMax: 9})
		for i := 0; i < 3; i++ {
			p := sim.ProcID(i)
			k.Handle(p, "app", func(m sim.Message) {
				// Each delivery triggers a reply, fanning traffic out.
				if m.Payload.(int) > 0 {
					k.Send(p, m.From, "app", m.Payload.(int)-1)
				}
			})
		}
		k.After(0, 1, func() { k.Send(0, 1, "app", 40); k.Send(0, 2, "app", 40) })
		k.Run(30000)
		return map[string]int64{
			"sent":  k.Counter("transport.sent"),
			"retx":  k.Counter("transport.retransmit"),
			"deliv": k.Counter("transport.delivered"),
			"dup":   k.Counter("transport.dup"),
			"wire":  k.Counter("msg.sent"),
		}
	}
	a, b := run(), run()
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("counter %s diverged across identical runs: %d vs %d", name, v, b[name])
		}
	}
	if a["deliv"] != a["sent"] {
		t.Fatalf("delivered %d of %d logical sends", a["deliv"], a["sent"])
	}
}

// TestReliableWithoutLinkFaults: over already-reliable links the transport
// is a pass-through with ack overhead and zero retransmissions after acks
// arrive in time.
func TestReliableWithoutLinkFaults(t *testing.T) {
	k := sim.NewKernel(2, sim.WithSeed(1), sim.WithDelay(sim.FixedDelay{D: 2}))
	transport.Enable(k, "rt", transport.Config{})
	n := 0
	k.Handle(1, "app", func(sim.Message) { n++ })
	for i := 0; i < 100; i++ {
		k.After(0, sim.Time(1+i*10), func() { k.Send(0, 1, "app", nil) })
	}
	k.Run(5000)
	if n != 100 {
		t.Fatalf("delivered %d of 100", n)
	}
	if retx := k.Counter("transport.retransmit"); retx != 0 {
		t.Fatalf("%d spurious retransmissions with a 2-tick RTT and 40-tick RTO", retx)
	}
}
