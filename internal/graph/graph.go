// Package graph provides undirected conflict graphs for dining philosophers
// instances: vertices are processes, edges are sets of shared resources
// contended by the two endpoint neighbors (Lynch's generalization of
// Dijkstra's ring).
package graph

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/rt"
)

// Graph is an undirected conflict graph over a subset of process ids. The
// zero value is an empty graph; use Add/AddEdge or a builder.
type Graph struct {
	nodes []rt.ProcID
	adj   map[rt.ProcID][]rt.ProcID
	edges [][2]rt.ProcID
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[rt.ProcID][]rt.ProcID)}
}

// Add inserts a vertex (idempotent).
func (g *Graph) Add(p rt.ProcID) {
	if g.adj == nil {
		g.adj = make(map[rt.ProcID][]rt.ProcID)
	}
	if _, ok := g.adj[p]; !ok {
		g.adj[p] = nil
		g.nodes = append(g.nodes, p)
		sort.Slice(g.nodes, func(i, j int) bool { return g.nodes[i] < g.nodes[j] })
	}
}

// AddEdge inserts the undirected edge (u, v), adding the vertices if needed.
// Self-loops and duplicate edges are rejected.
func (g *Graph) AddEdge(u, v rt.ProcID) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.Add(u)
	g.Add(v)
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	if u > v {
		u, v = v, u
	}
	g.edges = append(g.edges, [2]rt.ProcID{u, v})
	return nil
}

// Nodes returns the vertices in ascending order. The caller must not mutate
// the returned slice.
func (g *Graph) Nodes() []rt.ProcID { return g.nodes }

// Edges returns the edges with endpoints in ascending order. The caller must
// not mutate the returned slice.
func (g *Graph) Edges() [][2]rt.ProcID { return g.edges }

// Neighbors returns u's neighbors in ascending order. The caller must not
// mutate the returned slice.
func (g *Graph) Neighbors(u rt.ProcID) []rt.ProcID { return g.adj[u] }

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v rt.ProcID) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Has reports whether u is a vertex.
func (g *Graph) Has(u rt.ProcID) bool {
	_, ok := g.adj[u]
	return ok
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.nodes) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of u.
func (g *Graph) Degree(u rt.ProcID) int { return len(g.adj[u]) }

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for _, p := range g.nodes {
		if len(g.adj[p]) > d {
			d = len(g.adj[p])
		}
	}
	return d
}

// Connected reports whether the graph is connected (the empty graph is
// trivially connected).
func (g *Graph) Connected() bool {
	if len(g.nodes) <= 1 {
		return true
	}
	seen := map[rt.ProcID]bool{g.nodes[0]: true}
	stack := []rt.ProcID{g.nodes[0]}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return len(seen) == len(g.nodes)
}

// GreedyColoring returns a proper vertex coloring by first-fit in id order
// and the number of colors used. It is a scheduling-quality heuristic, not
// an optimal coloring.
func (g *Graph) GreedyColoring() (map[rt.ProcID]int, int) {
	colors := make(map[rt.ProcID]int, len(g.nodes))
	maxc := 0
	for _, u := range g.nodes {
		used := make(map[int]bool)
		for _, v := range g.adj[u] {
			if c, ok := colors[v]; ok {
				used[c] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[u] = c
		if c+1 > maxc {
			maxc = c + 1
		}
	}
	return colors, maxc
}

// Validate checks internal consistency (sorted unique adjacency, symmetric
// edges, edge list matching adjacency).
func (g *Graph) Validate() error {
	seen := make(map[[2]rt.ProcID]bool)
	for _, e := range g.edges {
		if e[0] >= e[1] {
			return fmt.Errorf("graph: unnormalized edge %v", e)
		}
		if seen[e] {
			return fmt.Errorf("graph: duplicate edge %v", e)
		}
		seen[e] = true
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			return fmt.Errorf("graph: asymmetric edge %v", e)
		}
	}
	total := 0
	for _, p := range g.nodes {
		ns := g.adj[p]
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				return fmt.Errorf("graph: adjacency of %d not sorted unique", p)
			}
		}
		total += len(ns)
	}
	if total != 2*len(g.edges) {
		return fmt.Errorf("graph: adjacency/edge mismatch: %d vs %d", total, 2*len(g.edges))
	}
	return nil
}

func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d)", g.N(), g.M())
}

func insertSorted(s []rt.ProcID, v rt.ProcID) []rt.ProcID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Pair returns the 2-vertex graph with the single edge (a, b) — the conflict
// graph of every dining instance used by the extraction algorithm.
func Pair(a, b rt.ProcID) *Graph {
	g := New()
	if err := g.AddEdge(a, b); err != nil {
		panic(err)
	}
	return g
}

// Ring returns the n-cycle over processes 0..n-1 (Dijkstra's original
// topology). n must be at least 3.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	g := New()
	for i := 0; i < n; i++ {
		mustEdge(g, rt.ProcID(i), rt.ProcID((i+1)%n))
	}
	return g
}

// Path returns the n-vertex path 0-1-...-(n-1). n must be at least 2.
func Path(n int) *Graph {
	if n < 2 {
		panic("graph: path needs n >= 2")
	}
	g := New()
	for i := 0; i+1 < n; i++ {
		mustEdge(g, rt.ProcID(i), rt.ProcID(i+1))
	}
	return g
}

// Clique returns the complete graph on 0..n-1 (the mutual-exclusion special
// case of dining). n must be at least 2.
func Clique(n int) *Graph {
	if n < 2 {
		panic("graph: clique needs n >= 2")
	}
	g := New()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustEdge(g, rt.ProcID(i), rt.ProcID(j))
		}
	}
	return g
}

// Star returns the star with center 0 and n-1 leaves. n must be at least 2.
func Star(n int) *Graph {
	if n < 2 {
		panic("graph: star needs n >= 2")
	}
	g := New()
	for i := 1; i < n; i++ {
		mustEdge(g, 0, rt.ProcID(i))
	}
	return g
}

// Grid returns the rows x cols grid graph, numbering vertices row-major.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		panic("graph: grid needs at least 2 vertices")
	}
	g := New()
	id := func(r, c int) rt.ProcID { return rt.ProcID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustEdge(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustEdge(g, id(r, c), id(r+1, c))
			}
		}
	}
	return g
}

// Random returns a connected Erdős–Rényi-style graph on 0..n-1: a random
// spanning tree plus each remaining edge independently with probability p.
func Random(n int, p float64, rng *rand.Rand) *Graph {
	if n < 2 {
		panic("graph: random needs n >= 2")
	}
	g := New()
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		u := rt.ProcID(perm[i])
		v := rt.ProcID(perm[rng.Intn(i)])
		mustEdge(g, u, v)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u, v := rt.ProcID(i), rt.ProcID(j)
			if !g.HasEdge(u, v) && rng.Float64() < p {
				mustEdge(g, u, v)
			}
		}
	}
	return g
}

func mustEdge(g *Graph, u, v rt.ProcID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}
