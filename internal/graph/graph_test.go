package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPair(t *testing.T) {
	g := Pair(3, 7)
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("pair: n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(3, 7) || !g.HasEdge(7, 3) {
		t.Fatal("pair edge missing or asymmetric")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilders(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
		maxD int
	}{
		{"ring5", Ring(5), 5, 5, 2},
		{"path4", Path(4), 4, 3, 2},
		{"clique4", Clique(4), 4, 6, 3},
		{"star6", Star(6), 6, 5, 5},
		{"grid23", Grid(2, 3), 6, 7, 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.g.N() != c.n || c.g.M() != c.m {
				t.Fatalf("n=%d m=%d, want %d %d", c.g.N(), c.g.M(), c.n, c.m)
			}
			if c.g.MaxDegree() != c.maxD {
				t.Fatalf("maxdeg=%d want %d", c.g.MaxDegree(), c.maxD)
			}
			if !c.g.Connected() {
				t.Fatal("builder graph should be connected")
			}
			if err := c.g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSelfLoopAndDuplicateRejected(t *testing.T) {
	g := New()
	if err := g.AddEdge(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 1); err == nil {
		t.Fatal("duplicate edge accepted")
	}
}

// TestRandomConnectedProperty: Random graphs are always connected, valid,
// and have at least the spanning-tree edge count.
func TestRandomConnectedProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8, pRaw uint8) bool {
		n := int(nRaw%8) + 2 // 2..9
		p := float64(pRaw) / 255
		g := Random(n, p, rand.New(rand.NewSource(seed)))
		return g.N() == n && g.M() >= n-1 && g.Connected() && g.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGreedyColoringProper: colorings never assign equal colors across an
// edge, on random graphs.
func TestGreedyColoringProper(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%10) + 2
		g := Random(n, 0.4, rand.New(rand.NewSource(seed)))
		colors, used := g.GreedyColoring()
		if used > g.MaxDegree()+1 {
			return false // first-fit bound
		}
		for _, e := range g.Edges() {
			if colors[e[0]] == colors[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsSortedAndImmutableView(t *testing.T) {
	g := Ring(6)
	for _, p := range g.Nodes() {
		ns := g.Neighbors(p)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("neighbors of %d not sorted: %v", p, ns)
			}
		}
	}
	if g.Degree(0) != 2 {
		t.Fatalf("ring degree: %d", g.Degree(0))
	}
}

func TestDisconnected(t *testing.T) {
	g := New()
	g.Add(0)
	g.Add(5)
	if g.Connected() {
		t.Fatal("two isolated vertices reported connected")
	}
	if g.Has(sim.ProcID(1)) {
		t.Fatal("phantom vertex")
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 3)
	// Corner, edge, center degrees.
	if g.Degree(0) != 2 || g.Degree(1) != 3 || g.Degree(4) != 4 {
		t.Fatalf("grid degrees: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(4))
	}
}
