// Package trap implements the adversarial-but-legal WF-◇WX dining service
// that Section 3 of the paper uses to break the ◇P-extraction of Guerraoui,
// Kapalka and Kouznetsov ([8]).
//
// The service mirrors the convergence behavior of the construction in [12]:
// it guarantees an exclusive suffix only after (1) a designated "mistake
// era" [0, MistakeUntil) has passed, and (2) every diner that entered its
// critical section during the mistake era has exited. Concretely, a
// centralized coordinator grants a hungry diner immediately during the
// mistake era; afterwards it grants p when either no live neighbor of p is
// eating, or every live eating neighbor of p has been eating continuously
// since the mistake era.
//
// Why this is a legal WF-◇WX black box: the dining problem only promises
// anything in runs where correct diners eat for finite time (Section 8 of
// the paper). In every such run the mistake-era eaters eventually exit (or
// crash), after which the coordinator enforces strict exclusion — so runs
// satisfy ◇WX — and grants remain prompt — so runs are wait-free. But a
// client that enters its critical section during the mistake era and never
// exits (exactly what the subject of the [8] construction does) keeps the
// escape clause open forever: its peer is granted, and suspects it, in-
// finitely often. The reduction of this paper survives the trap because its
// subjects' eating sessions are always finite while the witness is live.
package trap

import (
	"fmt"

	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Table is a trap dining instance.
type Table struct {
	name  string
	g     *graph.Graph
	mods  map[rt.ProcID]*stub
	coord *coordinator
}

// New builds a trap table over g with the coordinator at coord (not a
// vertex of g, never crashed) and the given mistake-era end.
func New(k rt.Runtime, g *graph.Graph, name string, coord rt.ProcID, mistakeUntil rt.Time) *Table {
	if g.Has(coord) {
		panic(fmt.Sprintf("trap: coordinator %d must not be a diner of %s", coord, name))
	}
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*stub)}
	t.coord = newCoordinator(k, g, name, coord, mistakeUntil)
	for _, p := range g.Nodes() {
		t.mods[p] = newStub(k, name, p, coord)
	}
	return t
}

// Factory returns a dining.Factory producing trap tables, allocating
// coordinators round-robin from coords.
func Factory(coords []rt.ProcID, mistakeUntil rt.Time) dining.Factory {
	next := 0
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		c := coords[next%len(coords)]
		next++
		return New(k, g, name, c, mistakeUntil)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("trap: %d is not a diner of %s", p, t.name))
	}
	return m
}

type stub struct {
	*dining.Core
	k     rt.Runtime
	self  rt.ProcID
	coord rt.ProcID
	name  string
	seq   int64 // hunger session number; brackets HUNGRY/EXIT pairs
}

func newStub(k rt.Runtime, name string, p, coord rt.ProcID) *stub {
	s := &stub{Core: dining.NewCore(k, p, name), k: k, self: p, coord: coord, name: name}
	k.Handle(p, name+"/eat", func(rt.Message) {
		if s.State() == dining.Hungry {
			s.Set(dining.Eating)
		}
	})
	k.AddAction(p, name+"/exit-done", func() bool { return s.State() == dining.Exiting }, func() {
		s.Set(dining.Thinking)
	})
	return s
}

// Hungry implements dining.Diner.
func (s *stub) Hungry() {
	s.Set(dining.Hungry)
	s.seq++
	s.k.Send(s.self, s.coord, s.name+"/hungry", s.seq)
}

// Exit implements dining.Diner.
func (s *stub) Exit() {
	s.Set(dining.Exiting)
	s.k.Send(s.self, s.coord, s.name+"/exit", s.seq)
}

type grantInfo struct {
	at  rt.Time // grant time (mistake-era grants keep the escape open)
	seq int64    // session number of the booking
}

type coordinator struct {
	k            rt.Runtime
	g            *graph.Graph
	name         string
	self         rt.ProcID
	mistakeUntil rt.Time
	hungry       []request
	eating       map[rt.ProcID]grantInfo
}

// request is one queued hunger (diner plus its session number).
type request struct {
	p   rt.ProcID
	seq int64
}

func newCoordinator(k rt.Runtime, g *graph.Graph, name string, self rt.ProcID, mistakeUntil rt.Time) *coordinator {
	c := &coordinator{
		k: k, g: g, name: name, self: self,
		mistakeUntil: mistakeUntil,
		eating:       make(map[rt.ProcID]grantInfo),
	}
	k.Handle(self, name+"/hungry", func(m rt.Message) {
		c.hungry = append(c.hungry, request{p: m.From, seq: m.Payload.(int64)})
	})
	k.Handle(self, name+"/exit", func(m rt.Message) {
		// A stale EXIT (overtaken by the next HUNGRY of the same diner)
		// must not unbook a newer session.
		if gi, ok := c.eating[m.From]; ok && gi.seq == m.Payload.(int64) {
			delete(c.eating, m.From)
		}
	})
	k.AddAction(self, name+"/grant", c.canGrant, c.grant)
	var poll func()
	poll = func() { k.After(self, 20, poll) }
	k.After(self, 20, poll)
	return c
}

// blocked: during the mistake era nothing blocks; afterwards p is blocked
// unless every live eating neighbor has been eating since the mistake era
// (the escape clause that makes this a trap).
func (c *coordinator) blocked(p rt.ProcID) bool {
	if c.k.Now() < c.mistakeUntil {
		return false
	}
	for _, q := range c.g.Neighbors(p) {
		gi, ok := c.eating[q]
		if !ok {
			continue
		}
		if c.k.Crashed(q) {
			delete(c.eating, q)
			continue
		}
		if gi.at >= c.mistakeUntil {
			return true // a post-era eater: strict exclusion applies
		}
		// q has eaten continuously since the mistake era: escape clause.
	}
	return false
}

func (c *coordinator) nextGrantable() int {
	for i, r := range c.hungry {
		if c.k.Crashed(r.p) || !c.blocked(r.p) {
			return i
		}
	}
	return -1
}

func (c *coordinator) canGrant() bool { return c.nextGrantable() >= 0 }

func (c *coordinator) grant() {
	i := c.nextGrantable()
	if i < 0 {
		return
	}
	r := c.hungry[i]
	c.hungry = append(c.hungry[:i], c.hungry[i+1:]...)
	if c.k.Crashed(r.p) {
		return
	}
	c.eating[r.p] = grantInfo{at: c.k.Now(), seq: r.seq}
	c.k.Send(c.self, r.p, c.name+"/eat", nil)
}
