package trap_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/dining"
	"repro/internal/dining/trap"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

const era = sim.Time(3000) // mistake era used throughout

func newRun(seed int64) (*sim.Kernel, *trace.Log, *trap.Table) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 12}))
	tbl := trap.New(k, g, "trap", 2, era)
	return k, log, tbl
}

// TestLegalWhenEatingIsFinite: with well-behaved diners (finite meals) the
// trap is a correct WF-◇WX service — violations confined to the era and
// its drain-out, no starvation.
func TestLegalWhenEatingIsFinite(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k, log, tbl := newRun(seed)
		g := tbl.Graph()
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 10, ThinkMax: 80, EatMin: 5, EatMax: 30,
			})
		}
		end := k.Run(30000)
		// Converged by: era end plus a generous drain-out margin.
		if _, err := checker.EventualWeakExclusion(log, g, "trap", era+2000, end); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if starved := checker.WaitFreedom(log, "trap", end-3000, end); len(starved) > 0 {
			t.Errorf("seed %d: %v", seed, starved)
		}
	}
}

// TestMistakeEraGrantsConcurrently: during the era, both neighbors can eat
// at once (that is what makes early mistakes possible).
func TestMistakeEraGrantsConcurrently(t *testing.T) {
	k, log, tbl := newRun(4)
	g := tbl.Graph()
	// Both diners hungry immediately with long meals inside the era.
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			FirstHunger: 5, ThinkMin: 5, ThinkMax: 10, EatMin: 200, EatMax: 400,
		})
	}
	k.Run(era)
	rep := checker.Exclusion(log, g, "trap", era)
	if len(rep.Violations) == 0 {
		t.Fatal("no concurrent grants during the mistake era; the trap would never trap anything")
	}
}

// TestEternalEaterKeepsEscapeOpen: the heart of the Section 3 counter-
// example — an era eater that never exits lets its neighbor eat (and thus a
// flawed monitor suspect) forever, while the service stays formally within
// its contract (the contract says nothing about runs with infinite eating).
func TestEternalEaterKeepsEscapeOpen(t *testing.T) {
	k, log, tbl := newRun(5)
	g := tbl.Graph()
	// Diner 1 grabs its critical section early and never exits.
	dining.Drive(k, 1, tbl.Diner(1), dining.DriverConfig{FirstHunger: 5, NeverExit: true})
	// Diner 0 keeps coming back.
	dining.Drive(k, 0, tbl.Diner(0), dining.DriverConfig{
		ThinkMin: 20, ThinkMax: 60, EatMin: 5, EatMax: 15,
	})
	end := k.Run(40000)
	// Diner 0 must keep eating deep into the post-era suffix.
	eats := log.Sessions("eating")[trace.SessionKey{Inst: "trap", P: 0}]
	late := 0
	for _, iv := range eats {
		if iv.Start > end*3/4 {
			late++
		}
	}
	if late < 3 {
		t.Fatalf("escape clause closed: only %d late meals for the witness-side diner", late)
	}
	// And those meals overlap the eternal eater: exclusion never converges.
	rep := checker.Exclusion(log, g, "trap", end)
	if rep.LastViolation < end*3/4 {
		t.Fatalf("violations stopped at %d (end %d); the trap failed to trap", rep.LastViolation, end)
	}
}

// TestPostEraStrictAmongFreshDiners: two diners that both start eating
// after the era are never scheduled together.
func TestPostEraStrictAmongFreshDiners(t *testing.T) {
	k, log, tbl := newRun(6)
	g := tbl.Graph()
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			FirstHunger: era + 100, ThinkMin: 5, ThinkMax: 30, EatMin: 10, EatMax: 40,
		})
	}
	end := k.Run(30000)
	if rep, err := checker.PerpetualWeakExclusion(log, g, "trap", end); err != nil {
		t.Fatalf("post-era diners overlapped: %v", rep.Violations)
	}
}
