package forks_test

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Example shows a complete wait-free dining run on a ring: five diners, a
// heartbeat ◇P, one mid-run crash — and the two dining guarantees checked
// from the trace.
func Example() {
	log := &trace.Log{}
	g := graph.Ring(5)
	k := sim.NewKernel(5,
		sim.WithSeed(1),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}),
	)
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	table := forks.New(k, g, "dinner", oracle, forks.Config{})

	for _, p := range g.Nodes() {
		dining.Drive(k, p, table.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
		})
	}
	k.CrashAt(2, 6000)
	end := k.Run(40000)

	_, wxErr := checker.EventualWeakExclusion(log, g, "dinner", end*2/3, end)
	starved := checker.WaitFreedom(log, "dinner", end-3000, end)
	fmt.Printf("eventual weak exclusion: %v\n", wxErr == nil)
	fmt.Printf("starved correct diners:  %d\n", len(starved))
	// Output:
	// eventual weak exclusion: true
	// starved correct diners:  0
}
