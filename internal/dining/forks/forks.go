// Package forks implements wait-free dining under eventual weak exclusion
// (WF-◇WX): the sufficiency-direction black box the paper cites as [12]
// (Pike, Song and Sastry), realized as a fork-token algorithm with a ◇P
// suspicion override.
//
// Safety skeleton: each edge of the conflict graph carries a single fork
// token; a diner needs the fork of every incident edge to eat, so two
// neighbors that both wait for real forks can never eat together.
//
// Priority: fork requests are ordered by the requester's current hunger
// session, stamped with a Lamport clock — the total order on (timestamp,
// id) decides every conflict. A holder yields a requested fork unless it is
// eating or it is hungry with the older claim; deferred requests are
// granted on exit. Requests are retransmitted while hungry, which makes the
// protocol insensitive to channel reordering. Because priority is derived
// from logical time rather than from persistent per-edge state, scheduling
// mistakes cannot corrupt it: the classical argument applies in every
// reachable configuration — the globally oldest hungry diner gets all its
// forks, eats, and re-timestamps behind everyone else, so no correct hungry
// diner starves. (A dirty/clean hygienic orientation, by contrast, can be
// driven into a precedence cycle by override mistakes, which is why this
// implementation orders by logical time.)
//
// Crash tolerance: a hungry diner also eats when every missing fork belongs
// to a neighbor its ◇P module currently suspects. False suspicions yield
// the finitely many scheduling mistakes that ◇WX permits; once the oracle
// converges, overrides involve only crashed neighbors, so live neighbors
// never eat together again (eventual weak exclusion) and crashed fork
// holders never block anyone (wait-freedom). Overrides never transfer fork
// ownership, so the one-fork-per-edge invariant survives every mistake.
package forks

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Config tunes the algorithm.
type Config struct {
	// Retry is the request retransmission period while hungry (default 25).
	Retry rt.Time
	// Seed overrides the initial fork placement: it reports whether p holds
	// the fork of edge {p, q} at module construction (nil: the lower id
	// holds). A durable server uses it to rebuild persisted ownership after
	// a restart.
	Seed func(p, q rt.ProcID) bool
	// OnFork observes every change of p's hold bit for edge {p, q},
	// including the initial placement. It runs on protocol goroutines and
	// must be fast and safe to call concurrently from different processes.
	OnFork func(p, q rt.ProcID, hold bool)
}

// Table is a fork-algorithm dining instance.
type Table struct {
	name string
	g    *graph.Graph
	mods map[rt.ProcID]*module
}

// New builds a WF-◇WX dining instance over g, consulting oracle (expected
// to satisfy the ◇P axioms) for the suspicion override.
func New(k rt.Runtime, g *graph.Graph, name string, oracle detector.Oracle, cfg Config) *Table {
	if cfg.Retry <= 0 {
		cfg.Retry = 25
	}
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*module)}
	for _, p := range g.Nodes() {
		t.mods[p] = newModule(k, g, name, p, oracle, cfg)
	}
	return t
}

// Factory returns a dining.Factory that builds fork tables bound to the
// given oracle — the black-box shape the reduction consumes.
func Factory(oracle detector.Oracle, cfg Config) dining.Factory {
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		return New(k, g, name, oracle, cfg)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("forks: %d is not a diner of %s", p, t.name))
	}
	return m
}

// HoldsFork reports whether p currently holds the fork of edge (p, q). At
// most one endpoint holds a given fork at any time (it may also be in
// transit); tests use this to verify fork conservation.
func (t *Table) HoldsFork(p, q rt.ProcID) bool {
	m, ok := t.mods[p]
	if !ok {
		return false
	}
	e, ok := m.edges[q]
	return ok && e.hold
}

// edge is per-neighbor fork state at one module.
type edge struct {
	hold   bool // we hold the fork of this edge
	wanted bool // the neighbor requested it while we could not yield
}

type reqMsg struct {
	TS int64 // requester's hunger-session Lamport timestamp
}

type forkMsg struct{}

// syncMsg is sent by a restarted diner to every neighbor: "my fork state is
// gone — do you hold the fork of our edge?" It is retransmitted until acked.
type syncMsg struct{}

// syncAckMsg answers a syncMsg with the responder's holding bit. The
// restarted diner mints a fresh fork for the edge iff Hold is false, which
// restores the one-fork-per-edge invariant (the old token either reached the
// neighbor before the restart or was dropped at the crashed process).
type syncAckMsg struct {
	Hold bool
}

type module struct {
	*dining.Core
	k      rt.Runtime
	self   rt.ProcID
	nbrs   []rt.ProcID
	edges  map[rt.ProcID]*edge
	view   detector.View
	cfg    Config
	prefix string

	clock    int64 // Lamport clock
	hungerTS int64 // timestamp of the current hunger session

	// resync holds the neighbors whose syncAck we still await after a Reset.
	// While an edge is pending here its fork is neither held nor mintable;
	// the suspicion override still applies, so a dead neighbor cannot wedge
	// the restarted diner.
	resync map[rt.ProcID]bool
}

func newModule(k rt.Runtime, g *graph.Graph, name string, p rt.ProcID, oracle detector.Oracle, cfg Config) *module {
	m := &module{
		Core:   dining.NewCore(k, p, name),
		k:      k,
		self:   p,
		nbrs:   g.Neighbors(p),
		edges:  make(map[rt.ProcID]*edge),
		view:   detector.View{Oracle: oracle, Self: p},
		cfg:    cfg,
		prefix: name,
	}
	for _, q := range m.nbrs {
		// Initial fork placement: the lower id holds (any assignment works;
		// priority comes from timestamps, not from placement) unless a Seed
		// — e.g. recovered durable state — says otherwise.
		m.edges[q] = &edge{}
		hold := p < q
		if cfg.Seed != nil {
			hold = cfg.Seed(p, q)
		}
		if hold {
			m.setHold(q, true)
		}
	}
	k.Handle(p, m.prefix+"/req", m.onReq)
	k.Handle(p, m.prefix+"/fork", m.onFork)
	k.Handle(p, m.prefix+"/sync", m.onSync)
	k.Handle(p, m.prefix+"/syncack", m.onSyncAck)
	k.AddAction(p, m.prefix+"/eat", m.canEat, m.eat)
	k.AddAction(p, m.prefix+"/exit-done", func() bool { return m.State() == dining.Exiting }, m.finishExit)
	return m
}

// Hungry implements dining.Diner: stamp the session and chase forks.
func (m *module) Hungry() {
	m.Set(dining.Hungry)
	m.clock++
	m.hungerTS = m.clock
	m.requestMissing()
	m.scheduleRetry()
}

// Exit implements dining.Diner.
func (m *module) Exit() { m.Set(dining.Exiting) }

// canEat: hungry, and every fork is either held or excused by suspicion of
// its holder's process.
func (m *module) canEat() bool {
	if m.State() != dining.Hungry {
		return false
	}
	for _, q := range m.nbrs {
		if !m.edges[q].hold && !m.view.Suspected(q) {
			return false
		}
	}
	return true
}

func (m *module) eat() { m.Set(dining.Eating) }

// finishExit grants every deferred request and returns to thinking.
func (m *module) finishExit() {
	for _, q := range m.nbrs {
		if e := m.edges[q]; e.wanted && e.hold {
			m.yield(q)
		}
	}
	m.Set(dining.Thinking)
}

// older reports whether claim (ts, p) precedes claim (ts2, q) in the global
// priority order.
func older(ts int64, p rt.ProcID, ts2 int64, q rt.ProcID) bool {
	if ts != ts2 {
		return ts < ts2
	}
	return p < q
}

// onReq decides a fork request: yield unless we are eating, or hungry with
// the older claim. A request for a fork we do not hold is remembered too:
// non-FIFO channels can deliver a request ahead of the fork it chases.
func (m *module) onReq(msg rt.Message) {
	q := msg.From
	e, ok := m.edges[q]
	if !ok {
		return
	}
	req := msg.Payload.(reqMsg)
	if req.TS > m.clock {
		m.clock = req.TS
	}
	if !e.hold {
		e.wanted = true
		return
	}
	switch m.State() {
	case dining.Eating, dining.Exiting:
		e.wanted = true
	case dining.Hungry:
		if older(m.hungerTS, m.self, req.TS, q) {
			e.wanted = true // our claim is older: they wait
		} else {
			m.yield(q)
		}
	default: // thinking: not competing, always yield
		m.yield(q)
	}
}

// setHold flips one edge's hold bit, notifying the OnFork observer on every
// real change. All hold mutations must go through here so a durable server
// sees a complete journal of fork ownership.
func (m *module) setHold(q rt.ProcID, hold bool) {
	e := m.edges[q]
	if e.hold == hold {
		return
	}
	e.hold = hold
	if m.cfg.OnFork != nil {
		m.cfg.OnFork(m.self, q, hold)
	}
}

// onFork records fork receipt (accepted in any state) and serves a deferred
// request if we are no longer competing.
func (m *module) onFork(msg rt.Message) {
	e, ok := m.edges[msg.From]
	if !ok {
		return
	}
	m.setHold(msg.From, true)
	// A real fork settles a pending resync of its edge: no need to mint.
	delete(m.resync, msg.From)
	if e.wanted && m.State() == dining.Thinking {
		m.yield(msg.From)
	}
}

// yield transfers the fork to q.
func (m *module) yield(q rt.ProcID) {
	e := m.edges[q]
	m.setHold(q, false)
	e.wanted = false
	m.k.Send(m.self, q, m.prefix+"/fork", forkMsg{})
	if m.State() == dining.Hungry {
		// We still compete: chase the fork we just gave up.
		m.k.Send(m.self, q, m.prefix+"/req", reqMsg{TS: m.hungerTS})
	}
}

// requestMissing asks for every fork we lack.
func (m *module) requestMissing() {
	for _, q := range m.nbrs {
		if !m.edges[q].hold {
			m.k.Send(m.self, q, m.prefix+"/req", reqMsg{TS: m.hungerTS})
		}
	}
}

// scheduleRetry retransmits requests periodically while hungry, making the
// protocol robust to reorderings; retries to crashed holders are dropped by
// the network (the suspicion override unblocks us instead).
func (m *module) scheduleRetry() {
	m.k.After(m.self, m.cfg.Retry, func() {
		if m.State() != dining.Hungry {
			return
		}
		m.requestMissing()
		m.scheduleRetry()
	})
}

// Reset reinstalls p's module state after a crash-restart: the diner returns
// to Thinking and every incident edge is resynchronized with its other
// endpoint via the sync/syncack handshake, which decides afresh who holds
// the edge's fork. Call it from the reboot hook of live.Runtime.Restart; the
// restart must happen strictly later than any message the dead incarnation
// had in flight (in practice: the crash->restart gap exceeds the bus's
// maximum delivery delay), otherwise a stale in-flight fork could coexist
// with a minted one.
func (t *Table) Reset(p rt.ProcID) {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("forks: %d is not a diner of %s", p, t.name))
	}
	m.Core.Reset()
	m.hungerTS = 0
	m.resync = make(map[rt.ProcID]bool)
	for _, q := range m.nbrs {
		e := m.edges[q]
		m.setHold(q, false)
		e.wanted = false
		m.resync[q] = true
		m.k.Send(m.self, q, m.prefix+"/sync", syncMsg{})
	}
	m.scheduleSyncRetry()
}

// onSync answers a restarted neighbor's state query. Any deferred-request
// memory for that neighbor is dropped — its hunger session died with it. If
// both endpoints are resyncing the same edge at once (both restarted), the
// lower id mints the fork immediately and the ack tells the higher id it
// lost the tie; the resync guard in onSyncAck discards the mirror-image ack.
func (m *module) onSync(msg rt.Message) {
	q := msg.From
	e, ok := m.edges[q]
	if !ok {
		return
	}
	e.wanted = false
	if m.resync[q] {
		delete(m.resync, q)
		if m.self < q {
			m.setHold(q, true)
		}
	}
	m.k.Send(m.self, q, m.prefix+"/syncack", syncAckMsg{Hold: e.hold})
}

// onSyncAck resolves one pending edge of a resync: mint the fork iff the
// neighbor does not hold it. Duplicate or stale acks are ignored via the
// pending set, so replayed frames cannot mint a second fork.
func (m *module) onSyncAck(msg rt.Message) {
	q := msg.From
	e, ok := m.edges[q]
	if !ok || !m.resync[q] {
		return
	}
	delete(m.resync, q)
	if !msg.Payload.(syncAckMsg).Hold {
		m.setHold(q, true)
		if e.wanted && m.State() == dining.Thinking {
			m.yield(q)
		}
	}
}

// scheduleSyncRetry retransmits outstanding sync queries until every edge is
// settled, so a resync survives message loss and a neighbor that is itself
// down for a while.
func (m *module) scheduleSyncRetry() {
	m.k.After(m.self, m.cfg.Retry, func() {
		if len(m.resync) == 0 {
			return
		}
		for q := range m.resync {
			m.k.Send(m.self, q, m.prefix+"/sync", syncMsg{})
		}
		m.scheduleSyncRetry()
	})
}
