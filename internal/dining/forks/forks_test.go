package forks_test

import (
	"fmt"
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run builds a kernel over g's nodes, attaches a forks table with a
// native heartbeat ◇P, drives every diner, applies crashes, and runs.
func run(t testing.TB, g *graph.Graph, seed int64, crashes map[sim.ProcID]sim.Time, horizon sim.Time) (*trace.Log, *forks.Table, sim.Time) {
	t.Helper()
	log := &trace.Log{}
	k := sim.NewKernel(g.N(), sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}))
	oracle := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	tbl := forks.New(k, g, "fk", oracle, forks.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
		})
	}
	for p, at := range crashes {
		k.CrashAt(p, at)
	}
	end := k.Run(horizon)
	return log, tbl, end
}

// TestCrashFreeExclusionAndProgress: with no crashes, the fork algorithm on a
// variety of topologies shows no late exclusion violations and no
// starvation.
func TestCrashFreeExclusionAndProgress(t *testing.T) {
	tops := map[string]*graph.Graph{
		"pair":    graph.Pair(0, 1),
		"ring5":   graph.Ring(5),
		"clique4": graph.Clique(4),
		"path6":   graph.Path(6),
		"star5":   graph.Star(5),
	}
	for name, g := range tops {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				log, _, end := run(t, g, seed, nil, 30000)
				if _, err := checker.EventualWeakExclusion(log, g, "fk", end/2, end); err != nil {
					t.Error(err)
				}
				if starved := checker.WaitFreedom(log, "fk", end-2000, end); len(starved) > 0 {
					t.Errorf("starvation: %v", starved)
				}
				// Everyone actually ate.
				eats := log.Sessions("eating")
				for _, p := range g.Nodes() {
					if len(eats[trace.SessionKey{Inst: "fk", P: p}]) == 0 {
						t.Errorf("diner %d never ate", p)
					}
				}
			})
		}
	}
}

// TestWaitFreedomUnderCrashes: E9's core claim — correct hungry diners keep
// eating no matter how many neighbors crash, including crashes of fork
// holders mid-protocol.
func TestWaitFreedomUnderCrashes(t *testing.T) {
	cases := []struct {
		name    string
		g       *graph.Graph
		crashes map[sim.ProcID]sim.Time
	}{
		{"pair-partner", graph.Pair(0, 1), map[sim.ProcID]sim.Time{1: 4000}},
		{"ring-two", graph.Ring(5), map[sim.ProcID]sim.Time{1: 3000, 3: 7000}},
		{"clique-majority", graph.Clique(4), map[sim.ProcID]sim.Time{0: 2500, 1: 5000, 2: 9000}},
		{"star-center", graph.Star(5), map[sim.ProcID]sim.Time{0: 3000}},
	}
	for _, c := range cases {
		for _, seed := range []int64{3, 4} {
			t.Run(fmt.Sprintf("%s/seed%d", c.name, seed), func(t *testing.T) {
				log, _, end := run(t, c.g, seed, c.crashes, 40000)
				if starved := checker.WaitFreedom(log, "fk", end-3000, end); len(starved) > 0 {
					t.Errorf("starvation: %v", starved)
				}
				// Survivors keep eating after the last crash.
				var lastCrash sim.Time
				for _, at := range c.crashes {
					if at > lastCrash {
						lastCrash = at
					}
				}
				eats := log.Sessions("eating")
				for _, p := range c.g.Nodes() {
					if _, crashed := c.crashes[p]; crashed {
						continue
					}
					late := 0
					for _, iv := range eats[trace.SessionKey{Inst: "fk", P: p}] {
						if iv.Start > lastCrash {
							late++
						}
					}
					if late == 0 {
						t.Errorf("correct diner %d stopped eating after crashes", p)
					}
				}
			})
		}
	}
}

// TestEventualWeakExclusionUnderCrashes: violations (suspicion mistakes)
// may happen but stop: none in the final third of a long run.
func TestEventualWeakExclusionUnderCrashes(t *testing.T) {
	g := graph.Ring(5)
	for _, seed := range []int64{5, 6, 7} {
		log, _, end := run(t, g, seed, map[sim.ProcID]sim.Time{2: 6000}, 45000)
		if _, err := checker.EventualWeakExclusion(log, g, "fk", end*2/3, end); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestForkConservation: at the end of any run, each edge's fork has at most
// one holder (it may be in transit).
func TestForkConservation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		g := graph.Clique(4)
		_, tbl, _ := run(t, g, seed, map[sim.ProcID]sim.Time{3: 5000}, 20000)
		for _, e := range g.Edges() {
			if tbl.HoldsFork(e[0], e[1]) && tbl.HoldsFork(e[1], e[0]) {
				t.Fatalf("seed %d: fork (%d,%d) duplicated", seed, e[0], e[1])
			}
		}
	}
}

// TestRandomGraphsSweep: broad randomized sweep across topologies, seeds
// and crash patterns; both dining guarantees must hold in every run.
func TestRandomGraphsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is long")
	}
	for seed := int64(10); seed < 16; seed++ {
		k := sim.NewKernel(1, sim.WithSeed(seed)) // rng host for topology
		n := 4 + k.Rand().Intn(3)
		g := graph.Random(n, 0.5, k.Rand())
		crashes := map[sim.ProcID]sim.Time{}
		if k.Rand().Intn(2) == 0 {
			crashes[sim.ProcID(k.Rand().Intn(n))] = sim.Time(2000 + k.Rand().Intn(6000))
		}
		log, _, end := run(t, g, seed, crashes, 40000)
		if _, err := checker.EventualWeakExclusion(log, g, "fk", end*2/3, end); err != nil {
			t.Errorf("seed %d (%v, crashes %v): %v", seed, g, crashes, err)
		}
		if starved := checker.WaitFreedom(log, "fk", end-3000, end); len(starved) > 0 {
			t.Errorf("seed %d: starvation %v", seed, starved)
		}
	}
}

// TestNoOracleNoWaitFreedom is the ablation that justifies the oracle: with
// a never-suspecting detector, a crashed fork holder starves its neighbor.
func TestNoOracleNoWaitFreedom(t *testing.T) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(1), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}))
	var mute detector.Scripted // suspects no one, ever
	tbl := forks.New(k, g, "fk", &mute, forks.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 5, EatMax: 20,
		})
	}
	k.CrashAt(1, 1000)
	end := k.Run(20000)
	starved := checker.WaitFreedom(log, "fk", end-5000, end)
	if len(starved) == 0 {
		t.Fatal("expected starvation without a failure detector; the fork algorithm would contradict [11]")
	}
}

// TestFactoryShape: the Factory closure builds independent tables.
func TestFactoryShape(t *testing.T) {
	k := sim.NewKernel(2, sim.WithSeed(1))
	var mute detector.Scripted
	f := forks.Factory(&mute, forks.Config{})
	t1 := f(k, graph.Pair(0, 1), "a")
	t2 := f(k, graph.Pair(0, 1), "b")
	if t1.Name() == t2.Name() {
		t.Fatal("factory reused the instance name")
	}
	if t1.Diner(0) == nil || t2.Diner(1) == nil {
		t.Fatal("diners missing")
	}
}
