package forks

import "encoding/gob"

// RegisterWire registers the table's message payload types for gob transit
// over a networked bus (internal/live's TCP bus). Call it once per process
// image before connecting nodes; it is idempotent within a process.
func RegisterWire() {
	gob.Register(reqMsg{})
	gob.Register(forkMsg{})
	gob.Register(syncMsg{})
	gob.Register(syncAckMsg{})
}
