package dining_test

import (
	"testing"

	"repro/internal/dining"
	"repro/internal/sim"
	"repro/internal/trace"
)

// fakeDiner is an in-process diner whose grants are driven by the test.
type fakeDiner struct {
	*dining.Core
}

func newFake(k *sim.Kernel, p sim.ProcID) *fakeDiner {
	return &fakeDiner{Core: dining.NewCore(k, p, "fake")}
}

func (f *fakeDiner) Hungry() { f.Set(dining.Hungry) }
func (f *fakeDiner) Exit()   { f.Set(dining.Exiting) }

func TestStateStrings(t *testing.T) {
	want := map[dining.State]string{
		dining.Thinking: "thinking",
		dining.Hungry:   "hungry",
		dining.Eating:   "eating",
		dining.Exiting:  "exiting",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d stringifies to %q", int(s), s.String())
		}
	}
	if dining.State(9).String() != "state(9)" {
		t.Errorf("out of range: %q", dining.State(9).String())
	}
}

func TestCoreTransitionsAndRecords(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(1, sim.WithTracer(log))
	c := dining.NewCore(k, 0, "tbl")
	if c.State() != dining.Thinking {
		t.Fatal("fresh core should think")
	}
	seen := []dining.State{}
	c.OnChange(func(s dining.State) { seen = append(seen, s) })
	ate := 0
	c.OnEat(func() { ate++ })
	k.After(0, 1, func() {
		c.Set(dining.Hungry)
		c.Set(dining.Eating)
		c.Set(dining.Exiting)
		c.Set(dining.Thinking)
	})
	k.Run(100)
	if ate != 1 {
		t.Fatalf("OnEat fired %d times", ate)
	}
	if len(seen) != 4 {
		t.Fatalf("OnChange fired %d times", len(seen))
	}
	if len(log.Records) != 4 {
		t.Fatalf("emitted %d records", len(log.Records))
	}
	if log.Records[2].Note != "exiting" || log.Records[2].Inst != "tbl" {
		t.Fatalf("bad record: %+v", log.Records[2])
	}
}

func TestIllegalTransitionPanics(t *testing.T) {
	cases := [][2]dining.State{
		{dining.Thinking, dining.Eating},
		{dining.Thinking, dining.Exiting},
		{dining.Hungry, dining.Thinking},
		{dining.Hungry, dining.Exiting},
		{dining.Eating, dining.Thinking},
		{dining.Eating, dining.Hungry},
		{dining.Exiting, dining.Eating},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("transition %v->%v did not panic", c[0], c[1])
				}
			}()
			k := sim.NewKernel(1)
			core := dining.NewCore(k, 0, "t")
			// Walk to the source state legally.
			walk := map[dining.State][]dining.State{
				dining.Thinking: {},
				dining.Hungry:   {dining.Hungry},
				dining.Eating:   {dining.Hungry, dining.Eating},
				dining.Exiting:  {dining.Hungry, dining.Eating, dining.Exiting},
			}
			for _, s := range walk[c[0]] {
				core.Set(s)
			}
			core.Set(c[1])
		}()
	}
}

// TestDrive: the synthetic client cycles a fake diner through the expected
// number of meals and stops.
func TestDrive(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(1, sim.WithTracer(log))
	f := newFake(k, 0)
	// Service side: grant immediately, complete exits immediately.
	k.AddAction(0, "grant", func() bool { return f.State() == dining.Hungry }, func() { f.Set(dining.Eating) })
	k.AddAction(0, "exitd", func() bool { return f.State() == dining.Exiting }, func() { f.Set(dining.Thinking) })
	dining.Drive(k, 0, f, dining.DriverConfig{
		ThinkMin: 5, ThinkMax: 10, EatMin: 3, EatMax: 6, Meals: 4,
	})
	k.Run(100000)
	eat := log.Sessions("eating")[trace.SessionKey{Inst: "fake", P: 0}]
	if len(eat) != 4 {
		t.Fatalf("drove %d meals, want 4", len(eat))
	}
	for _, iv := range eat {
		if !iv.Closed() {
			t.Fatal("driver left a meal open")
		}
		if d := iv.End - iv.Start; d < 3 {
			t.Fatalf("meal too short: %v", iv)
		}
	}
}

// TestDriveNeverExit: the NeverExit client eats once and stays.
func TestDriveNeverExit(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(1, sim.WithTracer(log))
	f := newFake(k, 0)
	k.AddAction(0, "grant", func() bool { return f.State() == dining.Hungry }, func() { f.Set(dining.Eating) })
	dining.Drive(k, 0, f, dining.DriverConfig{ThinkMin: 2, ThinkMax: 2, NeverExit: true})
	k.Run(5000)
	if f.State() != dining.Eating {
		t.Fatalf("never-exit client is %v, want eating", f.State())
	}
	eat := log.Sessions("eating")[trace.SessionKey{Inst: "fake", P: 0}]
	if len(eat) != 1 || eat[0].Closed() {
		t.Fatalf("sessions: %v", eat)
	}
}
