// Package dining defines the dining-philosophers service abstraction used
// throughout this repository: diner state machines, the Table service
// interface, and a client driver.
//
// A dining instance is an undirected conflict graph whose vertices are
// diners. Each diner is thinking, hungry, eating, or exiting. A correct
// dining solution schedules hungry-to-eating transitions subject to an
// exclusion criterion; this repository provides solutions for eventual weak
// exclusion (no two live neighbors eat simultaneously, after finitely many
// mistakes) and perpetual weak exclusion (never), both wait-free (every
// correct hungry diner eventually eats, provided correct diners eat for
// finite time).
package dining

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rt"
)

// State is a diner's phase.
type State int

// The four diner phases of the paper's dining model.
const (
	Thinking State = iota // executing independently
	Hungry                // requesting the shared resources
	Eating                // in the critical section
	Exiting               // relinquishing the shared resources
)

var stateNames = [...]string{"thinking", "hungry", "eating", "exiting"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// Diner is the local interface one process uses to participate in one dining
// instance. All methods must be called from within that process's own atomic
// steps (kernel action bodies, handlers, or timers).
type Diner interface {
	// Hungry requests the shared resources. Legal only when Thinking.
	Hungry()
	// Exit relinquishes the critical section. Legal only when Eating.
	Exit()
	// State returns the diner's current phase.
	State() State
	// OnEat registers a callback fired atomically when the diner transitions
	// to Eating. Multiple callbacks fire in registration order.
	OnEat(func())
	// OnChange registers a callback fired on every state transition.
	OnChange(func(State))
}

// Table is one dining-service instance over a conflict graph.
type Table interface {
	// Name returns the unique instance name (used to namespace ports and
	// trace records).
	Name() string
	// Graph returns the conflict graph.
	Graph() *graph.Graph
	// Diner returns the local participant interface for process p, which
	// must be a vertex of the conflict graph.
	Diner(p rt.ProcID) Diner
}

// Factory constructs a dining service instance wired into the kernel. The
// reduction of the paper treats the factory as a black box: it must produce
// a wait-free dining service (under eventual or perpetual weak exclusion
// depending on the factory), and nothing else about it is assumed.
type Factory func(k rt.Runtime, g *graph.Graph, name string) Table

// Core is the shared diner state-machine helper embedded by Table
// implementations. It validates transitions, emits trace records, and runs
// callbacks. The zero value is not usable; initialize with NewCore.
type Core struct {
	K        rt.Runtime
	P        rt.ProcID
	Inst     string
	state    State
	onEat    []func()
	onChange []func(State)
}

// NewCore returns a diner core in the Thinking state.
func NewCore(k rt.Runtime, p rt.ProcID, inst string) *Core {
	return &Core{K: k, P: p, Inst: inst}
}

// State returns the current phase.
func (c *Core) State() State { return c.state }

// OnEat registers an eating callback.
func (c *Core) OnEat(f func()) { c.onEat = append(c.onEat, f) }

// OnChange registers a transition callback.
func (c *Core) OnChange(f func(State)) { c.onChange = append(c.onChange, f) }

// legal transitions of the diner state machine.
var legal = map[[2]State]bool{
	{Thinking, Hungry}:  true, // client request
	{Hungry, Eating}:    true, // service grant
	{Eating, Exiting}:   true, // client release
	{Exiting, Thinking}: true, // service completes exit
}

// Set performs the transition to s, emitting a trace record and firing
// callbacks. It panics on an illegal transition: that is always an
// implementation bug, not a runtime condition.
func (c *Core) Set(s State) {
	if !legal[[2]State{c.state, s}] {
		panic(fmt.Sprintf("dining: illegal transition %v -> %v at %d (%s)", c.state, s, c.P, c.Inst))
	}
	c.state = s
	c.K.Emit(rt.Record{P: c.P, Kind: "state", Peer: -1, Inst: c.Inst, Note: s.String()})
	for _, f := range c.onChange {
		f(s)
	}
	if s == Eating {
		for _, f := range c.onEat {
			f()
		}
	}
}

// Reset forces the diner back to Thinking regardless of its current phase,
// bypassing the legal-transition check. It models a crash-recovery reboot:
// whatever phase the previous incarnation died in, the fresh one starts
// thinking. A state record is emitted and OnChange callbacks fire (so an
// attached Drive client re-schedules its next hunger), but OnEat does not.
func (c *Core) Reset() {
	c.state = Thinking
	c.K.Emit(rt.Record{P: c.P, Kind: "state", Peer: -1, Inst: c.Inst, Note: Thinking.String()})
	for _, f := range c.onChange {
		f(Thinking)
	}
}

// DriverConfig shapes the synthetic think/eat client behavior used by tests,
// examples and benchmarks.
type DriverConfig struct {
	ThinkMin, ThinkMax rt.Time // thinking duration before the next hunger
	EatMin, EatMax     rt.Time // eating duration before Exit
	Meals              int     // stop after this many meals; 0 = forever
	FirstHunger        rt.Time // delay before the first hunger (0 = ThinkMin..ThinkMax)
	NeverExit          bool    // enter the critical section once and stay (used by the Section-3 counterexample)
}

// Drive attaches a synthetic client to diner d at process p: it cycles
// thinking -> hungry -> eating -> exiting with randomized durations drawn
// from the kernel's deterministic random source.
func Drive(k rt.Runtime, p rt.ProcID, d Diner, cfg DriverConfig) {
	if cfg.ThinkMax < cfg.ThinkMin {
		cfg.ThinkMax = cfg.ThinkMin
	}
	if cfg.EatMax < cfg.EatMin {
		cfg.EatMax = cfg.EatMin
	}
	meals := 0
	var scheduleHunger func(after rt.Time)
	scheduleHunger = func(after rt.Time) {
		k.After(p, after, func() {
			if d.State() == Thinking {
				d.Hungry()
			}
		})
	}
	d.OnChange(func(s State) {
		switch s {
		case Eating:
			meals++
			if cfg.NeverExit {
				return
			}
			k.After(p, span(k, cfg.EatMin, cfg.EatMax), func() {
				if d.State() == Eating {
					d.Exit()
				}
			})
		case Thinking:
			if cfg.Meals > 0 && meals >= cfg.Meals {
				return
			}
			scheduleHunger(span(k, cfg.ThinkMin, cfg.ThinkMax))
		}
	})
	first := cfg.FirstHunger
	if first <= 0 {
		first = span(k, cfg.ThinkMin, cfg.ThinkMax)
	}
	scheduleHunger(first)
}

func span(k rt.Runtime, lo, hi rt.Time) rt.Time {
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return lo
	}
	return lo + rt.Time(k.Rand().Int63n(int64(hi-lo+1)))
}
