package perfect_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/dining"
	"repro/internal/dining/perfect"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// run drives every diner of g on a centralized table whose coordinator sits
// at process g.N() (one extra process).
func run(t testing.TB, g *graph.Graph, seed int64, crashes map[sim.ProcID]sim.Time, horizon sim.Time) (*trace.Log, sim.Time) {
	t.Helper()
	log := &trace.Log{}
	coord := sim.ProcID(g.N())
	k := sim.NewKernel(g.N()+1, sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 15}))
	tbl := perfect.New(k, g, "px", coord)
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 100, EatMin: 5, EatMax: 30,
		})
	}
	for p, at := range crashes {
		k.CrashAt(p, at)
	}
	end := k.Run(horizon)
	return log, end
}

// TestPerpetualExclusion: the centralized table never lets two live
// neighbors eat together — in any run, crash or not.
func TestPerpetualExclusion(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for name, g := range map[string]*graph.Graph{
			"pair":    graph.Pair(0, 1),
			"clique4": graph.Clique(4),
			"ring5":   graph.Ring(5),
		} {
			log, end := run(t, g, seed, map[sim.ProcID]sim.Time{0: 5000}, 30000)
			if _, err := checker.PerpetualWeakExclusion(log, g, "px", end); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
		}
	}
}

// TestWaitFree: correct diners never starve, even when an eater crashes in
// its critical section (the coordinator releases it).
func TestWaitFree(t *testing.T) {
	g := graph.Clique(4)
	for _, seed := range []int64{4, 5} {
		log, end := run(t, g, seed, map[sim.ProcID]sim.Time{1: 4000, 2: 8000}, 40000)
		if starved := checker.WaitFreedom(log, "px", end-3000, end); len(starved) > 0 {
			t.Errorf("seed %d: %v", seed, starved)
		}
	}
}

// TestCrashWhileEatingReleasesNeighbors: a diner that dies mid-meal must
// not block its neighbors forever.
func TestCrashWhileEatingReleasesNeighbors(t *testing.T) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(3, sim.WithSeed(9), sim.WithTracer(log))
	tbl := perfect.New(k, g, "px", 2)
	// Diner 0 eats and never exits; we crash it mid-meal.
	d0 := tbl.Diner(0)
	dining.Drive(k, 0, d0, dining.DriverConfig{ThinkMin: 1, ThinkMax: 1, NeverExit: true})
	dining.Drive(k, 1, tbl.Diner(1), dining.DriverConfig{ThinkMin: 10, ThinkMax: 50, EatMin: 5, EatMax: 10})
	k.CrashAt(0, 500)
	end := k.Run(20000)
	if starved := checker.WaitFreedom(log, "px", end-5000, end); len(starved) > 0 {
		t.Fatalf("neighbor starved behind a dead eater: %v", starved)
	}
	eats := log.Sessions("eating")[trace.SessionKey{Inst: "px", P: 1}]
	if len(eats) == 0 {
		t.Fatal("neighbor never ate")
	}
}

// TestCoordinatorMustBeExternal: using a diner as coordinator is a
// programming error.
func TestCoordinatorMustBeExternal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := sim.NewKernel(2)
	perfect.New(k, graph.Pair(0, 1), "px", 1)
}

// TestFactoryRoundRobin: the factory cycles through coordinators.
func TestFactoryRoundRobin(t *testing.T) {
	k := sim.NewKernel(4)
	f := perfect.Factory([]sim.ProcID{2, 3})
	t1 := f(k, graph.Pair(0, 1), "a")
	t2 := f(k, graph.Pair(0, 1), "b")
	if t1.Name() != "a" || t2.Name() != "b" {
		t.Fatal("names mangled")
	}
}
