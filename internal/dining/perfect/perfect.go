// Package perfect provides an idealized centralized dining service used as
// a differential-testing baseline and as the perpetual weak exclusion (ℙWX)
// black box for the Section 9 experiment.
//
// A dedicated coordinator process serializes scheduling: diners send HUNGRY
// and EXIT notifications; the coordinator grants EAT to a hungry diner only
// when none of its live neighbors is eating in the coordinator's books.
// Because the eating set is updated at grant time (before the grant message
// is even sent), two live neighbors are never booked simultaneously, so the
// service satisfies perpetual weak exclusion. Crashed eaters are released
// using the fault schedule — the oracle power (trusting accuracy) that the
// paper shows ℙWX requires and that partially synchronous message passing
// cannot supply; see DESIGN.md's substitution table.
//
// The coordinator process itself is assumed reliable (it is a specification
// device, not a protocol under test); experiments never crash it.
package perfect

import (
	"fmt"
	"sort"

	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Table is a centralized dining instance.
type Table struct {
	name  string
	g     *graph.Graph
	mods  map[rt.ProcID]*stub
	coord *coordinator
}

// New builds a centralized ℙWX wait-free dining instance over g whose
// coordinator runs at process coord (which must not be a vertex of g and
// must never crash).
func New(k rt.Runtime, g *graph.Graph, name string, coord rt.ProcID) *Table {
	if g.Has(coord) {
		panic(fmt.Sprintf("perfect: coordinator %d must not be a diner of %s", coord, name))
	}
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*stub)}
	t.coord = newCoordinator(k, g, name, coord)
	for _, p := range g.Nodes() {
		t.mods[p] = newStub(k, name, p, coord)
	}
	return t
}

// Factory returns a dining.Factory producing centralized tables whose
// coordinators are allocated round-robin from coords.
func Factory(coords []rt.ProcID) dining.Factory {
	next := 0
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		c := coords[next%len(coords)]
		next++
		return New(k, g, name, c)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("perfect: %d is not a diner of %s", p, t.name))
	}
	return m
}

// stub is the diner-side module: it reflects coordinator grants into the
// local state machine.
type stub struct {
	*dining.Core
	k     rt.Runtime
	self  rt.ProcID
	coord rt.ProcID
	name  string
	seq   int64 // hunger session number; brackets HUNGRY/EXIT pairs
}

func newStub(k rt.Runtime, name string, p, coord rt.ProcID) *stub {
	s := &stub{Core: dining.NewCore(k, p, name), k: k, self: p, coord: coord, name: name}
	k.Handle(p, name+"/eat", func(rt.Message) {
		if s.State() == dining.Hungry {
			s.Set(dining.Eating)
		}
	})
	k.AddAction(p, name+"/exit-done", func() bool { return s.State() == dining.Exiting }, func() {
		s.Set(dining.Thinking)
	})
	return s
}

// Hungry implements dining.Diner.
func (s *stub) Hungry() {
	s.Set(dining.Hungry)
	s.seq++
	s.k.Send(s.self, s.coord, s.name+"/hungry", s.seq)
}

// Exit implements dining.Diner.
func (s *stub) Exit() {
	s.Set(dining.Exiting)
	s.k.Send(s.self, s.coord, s.name+"/exit", s.seq)
}

// request is one queued hunger (diner plus its session number).
type request struct {
	p   rt.ProcID
	seq int64
}

// coordinator is the service-side scheduler.
type coordinator struct {
	k      rt.Runtime
	g      *graph.Graph
	name   string
	self   rt.ProcID
	hungry []request            // FIFO arrival order
	eating map[rt.ProcID]int64 // eater -> session number of the booking
}

func newCoordinator(k rt.Runtime, g *graph.Graph, name string, self rt.ProcID) *coordinator {
	c := &coordinator{k: k, g: g, name: name, self: self, eating: make(map[rt.ProcID]int64)}
	k.Handle(self, name+"/hungry", func(m rt.Message) {
		c.hungry = append(c.hungry, request{p: m.From, seq: m.Payload.(int64)})
	})
	k.Handle(self, name+"/exit", func(m rt.Message) {
		// A stale EXIT (overtaken by the next HUNGRY of the same diner)
		// must not unbook a newer session.
		if c.eating[m.From] == m.Payload.(int64) {
			delete(c.eating, m.From)
		}
	})
	k.AddAction(self, name+"/grant", c.canGrant, c.grant)
	// Periodic poll so that a crash of an eater (which sends no EXIT) cannot
	// leave the coordinator idle with blocked hungry diners forever.
	var poll func()
	poll = func() { k.After(self, 20, poll) }
	k.After(self, 20, poll)
	return c
}

// blocked reports whether granting p now would book two live neighbors.
// Crashed diners are released from the books lazily here (the fault
// schedule stands in for the trusting oracle, per the package comment).
func (c *coordinator) blocked(p rt.ProcID) bool {
	for _, q := range c.g.Neighbors(p) {
		if _, ok := c.eating[q]; ok {
			if c.k.Crashed(q) {
				delete(c.eating, q)
				continue
			}
			return true
		}
	}
	return false
}

func (c *coordinator) nextGrantable() int {
	for i, r := range c.hungry {
		if c.k.Crashed(r.p) || !c.blocked(r.p) {
			return i
		}
	}
	return -1
}

func (c *coordinator) canGrant() bool { return c.nextGrantable() >= 0 }

func (c *coordinator) grant() {
	i := c.nextGrantable()
	if i < 0 {
		return
	}
	r := c.hungry[i]
	c.hungry = append(c.hungry[:i], c.hungry[i+1:]...)
	if c.k.Crashed(r.p) {
		return // drop requests of crashed diners
	}
	c.eating[r.p] = r.seq
	c.k.Send(c.self, r.p, c.name+"/eat", nil)
}

// Eaters returns the coordinator's current books, sorted (for tests).
func (t *Table) Eaters() []rt.ProcID {
	out := make([]rt.ProcID, 0, len(t.coord.eating))
	for p := range t.coord.eating {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
