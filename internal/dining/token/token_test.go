package token_test

import (
	"fmt"
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/token"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func run(t testing.TB, g *graph.Graph, seed int64, crashes map[sim.ProcID]sim.Time, horizon sim.Time) (*trace.Log, sim.Time) {
	t.Helper()
	log := &trace.Log{}
	k := sim.NewKernel(g.N(), sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := token.New(k, g, "tk", oracle, token.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 100, EatMin: 5, EatMax: 30,
		})
	}
	for p, at := range crashes {
		k.CrashAt(p, at)
	}
	end := k.Run(horizon)
	return log, end
}

// TestTokenCrashFree: exclusion with no late violations and no starvation
// on several topologies.
func TestTokenCrashFree(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"pair":    graph.Pair(0, 1),
		"ring5":   graph.Ring(5),
		"clique4": graph.Clique(4),
	} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				log, end := run(t, g, seed, nil, 40000)
				if _, err := checker.EventualWeakExclusion(log, g, "tk", end*2/3, end); err != nil {
					t.Error(err)
				}
				if starved := checker.WaitFreedom(log, "tk", end-4000, end); len(starved) > 0 {
					t.Errorf("starvation: %v", starved)
				}
			})
		}
	}
}

// TestTokenSurvivesHolderCrash: the holder dies with the token mid-meal;
// regeneration keeps the survivors eating, and violations still stop.
func TestTokenSurvivesHolderCrash(t *testing.T) {
	for _, seed := range []int64{3, 4} {
		g := graph.Ring(4)
		log, end := run(t, g, seed, map[sim.ProcID]sim.Time{1: 5000, 2: 11000}, 60000)
		if starved := checker.WaitFreedom(log, "tk", end-5000, end); len(starved) > 0 {
			t.Errorf("seed %d: starvation after holder crashes: %v", seed, starved)
		}
		if _, err := checker.EventualWeakExclusion(log, g, "tk", end*3/4, end); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Regeneration actually happened (the crash was felt).
		regens := 0
		for _, r := range log.Records {
			if r.Kind == "mark" && r.Inst == "tk" {
				regens++
			}
		}
		if regens == 0 {
			t.Errorf("seed %d: no regeneration despite a crashed holder", seed)
		}
	}
}

// TestTokenDuplicatesAreTransient: force a spurious regeneration with a
// tiny initial timeout; duplicates must cause only early violations and
// the adaptive doubling must silence regeneration in the suffix.
func TestTokenDuplicatesAreTransient(t *testing.T) {
	log := &trace.Log{}
	g := graph.Ring(4)
	k := sim.NewKernel(4, sim.WithSeed(5), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 400, PreMax: 80, PostMax: 8}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := token.New(k, g, "tk", oracle, token.Config{Timeout: 30, Check: 10})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 5, ThinkMax: 40, EatMin: 5, EatMax: 25,
		})
	}
	end := k.Run(60000)
	var lastRegen sim.Time
	regens := 0
	for _, r := range log.Records {
		if r.Kind == "mark" && r.Inst == "tk" {
			regens++
			lastRegen = r.T
		}
	}
	if regens == 0 {
		t.Fatal("tiny timeout never triggered a spurious regeneration; the scenario is toothless")
	}
	if lastRegen > end*3/4 {
		t.Fatalf("still regenerating at t=%d (of %d); timeouts did not adapt", lastRegen, end)
	}
	if _, err := checker.EventualWeakExclusion(log, g, "tk", end*3/4, end); err != nil {
		t.Fatal(err)
	}
	if starved := checker.WaitFreedom(log, "tk", end-5000, end); len(starved) > 0 {
		t.Fatalf("starvation: %v", starved)
	}
}
