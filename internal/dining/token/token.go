// Package token implements wait-free dining under eventual weak exclusion
// with a circulating token — a third, qualitatively different WF-◇WX black
// box for exercising the reduction's black-box universality.
//
// A single token visits the diners in id order (global mutual exclusion,
// which implies the local kind on every conflict graph). The holder eats if
// hungry, then forwards the token to the next live-looking diner. Crash
// tolerance is by regeneration: a hungry diner that has not seen the token
// for an adaptive timeout regenerates it with a higher epoch. Spurious
// regenerations (the token was merely slow) create duplicate tokens, whose
// concurrent holders may eat together — exactly the finitely many
// scheduling mistakes ◇WX permits. Duplicates die on contact: any process
// that has seen epoch e destroys tokens with epoch < e, and each piece of
// evidence of duplication (destroying an older token, or receiving one
// while holding) doubles the local regeneration timeout, so regeneration
// eventually stops being spurious and the single surviving token yields an
// exclusive suffix.
//
// The timeout-regeneration mechanism is this box's encapsulation of the
// very temporal assumptions the paper proves equivalent to ◇P: the box
// consults its oracle only to skip crashed diners when forwarding, while
// recovery from a *lost* token (crashed holder) rides on the adaptive
// timeout — either way, eventual weak exclusion plus wait-freedom emerge
// from eventually-reliable timing, which is the thesis of the paper made
// concrete a second way.
package token

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Config tunes the token box.
type Config struct {
	// Timeout is the initial token-absence timeout before a hungry diner
	// regenerates (default 400; it doubles on every duplication observed).
	Timeout rt.Time
	// Check is the regeneration check period (default 50).
	Check rt.Time
}

// Table is a token dining instance.
type Table struct {
	name string
	g    *graph.Graph
	mods map[rt.ProcID]*module
}

// New builds a token WF-◇WX dining instance over g. oracle (◇P class) is
// used to skip crashed diners when forwarding.
func New(k rt.Runtime, g *graph.Graph, name string, oracle detector.Oracle, cfg Config) *Table {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 400
	}
	if cfg.Check <= 0 {
		cfg.Check = 50
	}
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*module)}
	nodes := g.Nodes()
	for i, p := range nodes {
		t.mods[p] = newModule(k, name, p, nodes, i, oracle, cfg)
	}
	return t
}

// Factory returns a dining.Factory building token tables bound to oracle.
func Factory(oracle detector.Oracle, cfg Config) dining.Factory {
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		return New(k, g, name, oracle, cfg)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("token: %d is not a diner of %s", p, t.name))
	}
	return m
}

// epoch totally orders tokens: (counter, minter id) lexicographically.
// Distinct minters can never produce equal epochs, so duplicate tokens are
// always comparable and the loser dies on first contact with any process
// that has seen the winner.
type epoch struct {
	C int64
	M rt.ProcID
}

func (e epoch) less(o epoch) bool {
	if e.C != o.C {
		return e.C < o.C
	}
	return e.M < o.M
}

type tokenMsg struct {
	Epoch epoch
}

type module struct {
	*dining.Core
	k      rt.Runtime
	self   rt.ProcID
	ring   []rt.ProcID // all diners in id order
	idx    int          // our position in ring
	view   detector.View
	cfg    Config
	prefix string

	hasToken  bool
	cur       epoch    // epoch of the held token
	maxSeen   epoch    // highest epoch ever seen
	lastSeen  rt.Time // when the token last visited us
	timeout   rt.Time // adaptive regeneration timeout
	eatingNow bool     // we eat with the token and forward on exit
}

func newModule(k rt.Runtime, name string, p rt.ProcID, ring []rt.ProcID, idx int, oracle detector.Oracle, cfg Config) *module {
	m := &module{
		Core:    dining.NewCore(k, p, name),
		k:       k,
		self:    p,
		ring:    ring,
		idx:     idx,
		view:    detector.View{Oracle: oracle, Self: p},
		cfg:     cfg,
		prefix:  name,
		timeout: cfg.Timeout,
		// The lowest-id diner starts with the token.
		hasToken: idx == 0,
		cur:      epoch{C: 1, M: ring[0]},
		maxSeen:  epoch{C: 1, M: ring[0]},
	}
	k.Handle(p, name+"/token", m.onToken)
	k.AddAction(p, name+"/eat", m.canEat, m.eat)
	k.AddAction(p, name+"/forward", m.canForward, m.forward)
	k.AddAction(p, name+"/exit-done", func() bool { return m.State() == dining.Exiting }, m.finishExit)
	var check func()
	check = func() {
		m.maybeRegenerate()
		k.After(p, cfg.Check, check)
	}
	k.After(p, 1+rt.Time(idx)%cfg.Check, check)
	return m
}

// Hungry implements dining.Diner.
func (m *module) Hungry() {
	m.Set(dining.Hungry)
	m.lastSeen = m.k.Now() // restart the clock for this hunger
}

// Exit implements dining.Diner.
func (m *module) Exit() { m.Set(dining.Exiting) }

// canEat: hold a current token while hungry.
func (m *module) canEat() bool {
	return m.State() == dining.Hungry && m.hasToken
}

func (m *module) eat() {
	m.eatingNow = true
	m.Set(dining.Eating)
}

// canForward: hold the token while not competing for it.
func (m *module) canForward() bool {
	return m.hasToken && m.State() != dining.Hungry && m.State() != dining.Eating && !m.eatingNow
}

// forward passes the token to the next diner the oracle considers live.
func (m *module) forward() {
	if !m.hasToken {
		return
	}
	n := len(m.ring)
	for off := 1; off <= n; off++ {
		q := m.ring[(m.idx+off)%n]
		if q == m.self {
			return // everyone else looks dead: keep the token
		}
		if !m.view.Suspected(q) {
			m.hasToken = false
			m.k.Send(m.self, q, m.prefix+"/token", tokenMsg{Epoch: m.cur})
			return
		}
	}
}

func (m *module) finishExit() {
	m.eatingNow = false
	m.Set(dining.Thinking)
	// The forward action's guard is enabled now; the kernel will run it.
}

func (m *module) onToken(msg rt.Message) {
	tok := msg.Payload.(tokenMsg)
	if tok.Epoch.less(m.maxSeen) {
		// A duplicate from a stale epoch: destroy it, and learn that
		// regeneration has been trigger-happy.
		m.timeout *= 2
		return
	}
	if m.maxSeen.less(tok.Epoch) {
		m.maxSeen = tok.Epoch
	}
	if m.hasToken {
		// Two tokens met here: keep the newer, learn.
		m.timeout *= 2
		if !m.cur.less(tok.Epoch) {
			return
		}
	}
	m.hasToken = true
	m.cur = tok.Epoch
	m.lastSeen = m.k.Now()
}

// maybeRegenerate fires when hungry and token-starved for the adaptive
// timeout: mint a fresh, higher epoch.
func (m *module) maybeRegenerate() {
	if m.State() != dining.Hungry || m.hasToken {
		return
	}
	if m.k.Now()-m.lastSeen < m.timeout {
		return
	}
	// Pay for the mint upfront: each regeneration doubles our own timeout,
	// so a process can only mint finitely often unless tokens keep being
	// really lost (crashes, which are finite). This is what bounds the
	// scheduling mistakes even when the minter never meets its duplicate.
	m.timeout *= 2
	m.maxSeen = epoch{C: m.maxSeen.C + 1, M: m.self}
	m.cur = m.maxSeen
	m.hasToken = true
	m.lastSeen = m.k.Now()
	m.k.Emit(rt.Record{P: m.self, Kind: "mark", Peer: -1, Inst: m.prefix,
		Note: fmt.Sprintf("regenerate epoch=%d.%d", m.cur.C, m.cur.M)})
}
