package checker

import (
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// LocalityReport relates starvation to conflict-graph distance from the
// crashed processes — the "failure locality" measure of Choy and Singh that
// the paper invokes when citing [11] (◇P achieves crash-locality-1 dining
// under perpetual exclusion, and wait-freedom is exactly failure locality
// 0).
type LocalityReport struct {
	// Starved maps each starved correct process to its hop distance from
	// the nearest crashed process (-1 if no crash happened).
	Starved map[sim.ProcID]int
	// Locality is the largest distance observed among starved processes
	// (0 means only neighbors of crashed processes starved is FALSE — see
	// definition: locality d means every starved process is within d hops;
	// wait-freedom is locality "none starve", reported as -1).
	Locality int
}

// FailureLocality computes the report for one dining instance: which
// correct diners starved (hungry at the end of the run, having been hungry
// since grace) and how far each is from a crashed process.
func FailureLocality(l *trace.Log, g *graph.Graph, inst string, grace, horizon sim.Time) LocalityReport {
	rep := LocalityReport{Starved: make(map[sim.ProcID]int), Locality: -1}
	crash := l.CrashTimes()
	var crashed []sim.ProcID
	for p := range crash {
		if g.Has(p) {
			crashed = append(crashed, p)
		}
	}
	dist := bfsDistances(g, crashed)
	for _, s := range WaitFreedom(l, inst, grace, horizon) {
		d, ok := dist[s.P]
		if !ok {
			d = -1
		}
		rep.Starved[s.P] = d
		if d > rep.Locality {
			rep.Locality = d
		}
	}
	return rep
}

// bfsDistances returns hop distances from the nearest source.
func bfsDistances(g *graph.Graph, sources []sim.ProcID) map[sim.ProcID]int {
	dist := make(map[sim.ProcID]int)
	queue := make([]sim.ProcID, 0, len(sources))
	for _, s := range sources {
		dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
