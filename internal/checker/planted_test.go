package checker

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestPlantedOverlapsAreFound is a property test of the exclusion checker
// itself: build a random non-overlapping eating schedule per edge, then
// plant a known number of overlapping session pairs; the checker must
// report exactly the planted count.
func TestPlantedOverlapsAreFound(t *testing.T) {
	prop := func(seed int64, plantRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		planted := int(plantRaw % 4)
		g := graph.Pair(0, 1)
		l := &trace.Log{}
		cursor := sim.Time(10)
		// Clean prefix: alternating, disjoint sessions.
		for i := 0; i < 5; i++ {
			for _, p := range []sim.ProcID{0, 1} {
				dur := sim.Time(5 + rng.Intn(20))
				l.Trace(sim.Record{T: cursor, P: p, Kind: trace.KindState, Inst: "t", Note: "eating", Peer: -1})
				l.Trace(sim.Record{T: cursor + dur, P: p, Kind: trace.KindState, Inst: "t", Note: "exiting", Peer: -1})
				cursor += dur + sim.Time(1+rng.Intn(10))
			}
		}
		// Planted overlaps: both eat in the same window.
		for i := 0; i < planted; i++ {
			l.Trace(sim.Record{T: cursor, P: 0, Kind: trace.KindState, Inst: "t", Note: "eating", Peer: -1})
			l.Trace(sim.Record{T: cursor + 2, P: 1, Kind: trace.KindState, Inst: "t", Note: "eating", Peer: -1})
			l.Trace(sim.Record{T: cursor + 10, P: 0, Kind: trace.KindState, Inst: "t", Note: "exiting", Peer: -1})
			l.Trace(sim.Record{T: cursor + 12, P: 1, Kind: trace.KindState, Inst: "t", Note: "exiting", Peer: -1})
			cursor += 20 + sim.Time(rng.Intn(10))
		}
		rep := Exclusion(l, g, "t", cursor+100)
		return len(rep.Violations) == planted
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlantedStarvationIsFound: random served hunger plus a known set of
// starved diners; WaitFreedom reports exactly the starved ones.
func TestPlantedStarvationIsFound(t *testing.T) {
	prop := func(seed int64, starveMask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := &trace.Log{}
		wantStarved := map[sim.ProcID]bool{}
		for p := sim.ProcID(0); p < 5; p++ {
			at := sim.Time(10 + rng.Intn(50))
			l.Trace(sim.Record{T: at, P: p, Kind: trace.KindState, Inst: "t", Note: "hungry", Peer: -1})
			if starveMask&(1<<p) != 0 {
				wantStarved[p] = true
				continue // never served
			}
			l.Trace(sim.Record{T: at + sim.Time(5+rng.Intn(20)), P: p, Kind: trace.KindState, Inst: "t", Note: "eating", Peer: -1})
		}
		got := WaitFreedom(l, "t", 500, 1000)
		if len(got) != len(wantStarved) {
			return false
		}
		for _, s := range got {
			if !wantStarved[s.P] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlantedOvertakingIsFound: the k-fairness checker counts exactly the
// sessions planted inside the victim's hunger.
func TestPlantedOvertakingIsFound(t *testing.T) {
	prop := func(mealsRaw, kRaw uint8) bool {
		meals := int(mealsRaw%6) + 1 // 1..6 eater meals during the hunger
		k := int(kRaw%4) + 1         // bound 1..4
		g := graph.Pair(0, 1)
		l := &trace.Log{}
		l.Trace(sim.Record{T: 10, P: 1, Kind: trace.KindState, Inst: "t", Note: "hungry", Peer: -1})
		cur := sim.Time(20)
		for i := 0; i < meals; i++ {
			l.Trace(sim.Record{T: cur, P: 0, Kind: trace.KindState, Inst: "t", Note: "eating", Peer: -1})
			l.Trace(sim.Record{T: cur + 5, P: 0, Kind: trace.KindState, Inst: "t", Note: "exiting", Peer: -1})
			cur += 10
		}
		over := KFairness(l, g, "t", k, 0, 1000)
		want := meals - k
		if want < 0 {
			want = 0
		}
		// One Overtake record per meal beyond the bound.
		return len(over) == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPlantedSuspicionFlapsAreCounted: MistakeCount equals the planted
// number of suspect transitions.
func TestPlantedSuspicionFlapsAreCounted(t *testing.T) {
	prop := func(flapsRaw uint8) bool {
		flaps := int(flapsRaw % 20)
		l := &trace.Log{}
		at := sim.Time(1)
		for i := 0; i < flaps; i++ {
			l.Trace(sim.Record{T: at, P: 0, Kind: trace.KindSuspect, Inst: "o", Peer: 1})
			l.Trace(sim.Record{T: at + 3, P: 0, Kind: trace.KindTrust, Inst: "o", Peer: 1})
			at += 10
		}
		return MistakeCount(l, "o", 0, 1, false) == flaps
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
