package checker

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMeasureQoSDetection(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(100, 1, trace.KindCrash, "", "", -1))
	l.Trace(rec(150, 0, trace.KindSuspect, "o", "", 1))
	q := MeasureQoS(l, "o", [][2]sim.ProcID{{0, 1}}, false, 1000)
	if q.DetectionTime != 50 {
		t.Fatalf("detection=%d want 50", q.DetectionTime)
	}
	if q.MistakeCount != 0 {
		t.Fatalf("mistakes=%d want 0", q.MistakeCount)
	}
	// Accuracy: wrong only between t=100 (crash) and t=150 (suspicion):
	// ~3 of 64 samples (step ~15).
	if q.QueryAccurate < 0.9 {
		t.Fatalf("accuracy=%.3f too low", q.QueryAccurate)
	}
}

func TestMeasureQoSMistakes(t *testing.T) {
	l := &trace.Log{}
	// False suspicion [200, 260) of a live target; initial trust.
	l.Trace(rec(200, 0, trace.KindSuspect, "o", "", 1))
	l.Trace(rec(260, 0, trace.KindTrust, "o", "", 1))
	q := MeasureQoS(l, "o", [][2]sim.ProcID{{0, 1}}, false, 1000)
	if q.MistakeCount != 1 || q.MistakeDurationTotal != 60 || q.MistakeDurationMax != 60 {
		t.Fatalf("got %+v", q)
	}
}

func TestMeasureQoSInitialSuspicion(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(40, 0, trace.KindTrust, "o", "", 1))
	q := MeasureQoS(l, "o", [][2]sim.ProcID{{0, 1}}, true, 1000)
	if q.MistakeCount != 1 || q.MistakeDurationTotal != 40 {
		t.Fatalf("initial suspicion not measured: %+v", q)
	}
}

func TestMeasureQoSSuspicionOfDeadIsNotMistake(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(100, 1, trace.KindCrash, "", "", -1))
	// Suspicion starting before the crash is a mistake only until t=100.
	l.Trace(rec(80, 0, trace.KindSuspect, "o", "", 1))
	q := MeasureQoS(l, "o", [][2]sim.ProcID{{0, 1}}, false, 1000)
	if q.MistakeDurationTotal != 20 {
		t.Fatalf("dur=%d want 20 (mistake ends at the crash)", q.MistakeDurationTotal)
	}
}

func TestMeasureQoSIgnoresCrashedMonitor(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(50, 0, trace.KindCrash, "", "", -1))
	l.Trace(rec(30, 0, trace.KindSuspect, "o", "", 1))
	q := MeasureQoS(l, "o", [][2]sim.ProcID{{0, 1}}, false, 1000)
	if q.MistakeCount != 0 {
		t.Fatalf("crashed monitor's output counted: %+v", q)
	}
}

func TestFailureLocality(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	l := &trace.Log{}
	l.Trace(rec(100, 0, trace.KindCrash, "", "", -1))
	// 1 (distance 1) and 3 (distance 3) starve.
	l.Trace(rec(200, 1, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(200, 3, trace.KindState, "t", "hungry", -1))
	rep := FailureLocality(l, g, "t", 900, 1000)
	if rep.Starved[1] != 1 || rep.Starved[3] != 3 {
		t.Fatalf("distances: %v", rep.Starved)
	}
	if rep.Locality != 3 {
		t.Fatalf("locality=%d want 3", rep.Locality)
	}
	// No starvation at all: locality -1 (wait-free).
	l2 := &trace.Log{}
	l2.Trace(rec(100, 0, trace.KindCrash, "", "", -1))
	rep2 := FailureLocality(l2, g, "t", 900, 1000)
	if rep2.Locality != -1 || len(rep2.Starved) != 0 {
		t.Fatalf("expected wait-free verdict, got %+v", rep2)
	}
}
