// Package checker validates runs against the formal properties of the
// paper: weak-exclusion safety (eventual and perpetual), wait-freedom,
// eventual k-fairness, and the failure-detector class axioms (strong
// completeness, eventual strong accuracy, trusting accuracy). All checks
// work purely on trace records, so they validate what actually happened in
// a run rather than internal protocol state.
package checker

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Violation is one witnessed overlap of two live neighbors' eating sessions
// within a single dining instance.
type Violation struct {
	Inst string
	A, B sim.ProcID
	T    sim.Time // start of the overlap
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %d and %d eating together from t=%d", v.Inst, v.A, v.B, v.T)
}

// ExclusionReport summarizes the exclusion behavior of one run.
type ExclusionReport struct {
	Violations    []Violation
	LastViolation sim.Time // end of the last violating overlap (Never if none)
}

// Exclusion finds every overlap of live neighbors' eating sessions in the
// given dining instance. Periods during which either endpoint was dead (its
// crash not yet followed by a recover) are subtracted from each overlap:
// both exclusion criteria only constrain live neighbors, but a recovered
// process is live again, so its post-recovery sessions count in full.
// horizon is the run end (for still-open sessions).
func Exclusion(l *trace.Log, g *graph.Graph, inst string, horizon sim.Time) ExclusionReport {
	eat := l.Sessions("eating")
	dead := l.DeadIntervals()
	var rep ExclusionReport
	rep.LastViolation = sim.Never
	for _, e := range g.Edges() {
		a, b := e[0], e[1]
		as := eat[trace.SessionKey{Inst: inst, P: a}]
		bs := eat[trace.SessionKey{Inst: inst, P: b}]
		downtime := append(append([]trace.Interval(nil), dead[a]...), dead[b]...)
		for _, ia := range as {
			for _, ib := range bs {
				if !ia.Overlaps(ib, horizon) {
					continue
				}
				lo := max(ia.Start, ib.Start)
				hi := endOr(ia.End, horizon)
				if e2 := endOr(ib.End, horizon); e2 < hi {
					hi = e2
				}
				for _, seg := range subtractDead(lo, hi, downtime) {
					rep.Violations = append(rep.Violations, Violation{Inst: inst, A: a, B: b, T: seg.Start})
					if seg.End > rep.LastViolation {
						rep.LastViolation = seg.End
					}
				}
			}
		}
	}
	sort.Slice(rep.Violations, func(i, j int) bool { return rep.Violations[i].T < rep.Violations[j].T })
	return rep
}

// subtractDead removes every dead period from [lo, hi) and returns the
// surviving sub-intervals in time order. An open dead interval (End ==
// sim.Never) extends past hi.
func subtractDead(lo, hi sim.Time, dead []trace.Interval) []trace.Interval {
	segs := []trace.Interval{{Start: lo, End: hi}}
	for _, d := range dead {
		dEnd := d.End
		if dEnd == sim.Never {
			dEnd = hi
		}
		var next []trace.Interval
		for _, s := range segs {
			if d.Start >= s.End || dEnd <= s.Start {
				next = append(next, s)
				continue
			}
			if d.Start > s.Start {
				next = append(next, trace.Interval{Start: s.Start, End: d.Start})
			}
			if dEnd < s.End {
				next = append(next, trace.Interval{Start: dEnd, End: s.End})
			}
		}
		segs = next
	}
	return segs
}

// EventualWeakExclusion checks ◇WX: finitely many violations, all ending
// before the suffix [convergedBy, horizon]. It returns the report and an
// error describing the first post-convergence violation, if any. Callers
// pick convergedBy (e.g. a margin past GST and oracle convergence) so the
// check is meaningful: a run with violations right up to the horizon fails.
func EventualWeakExclusion(l *trace.Log, g *graph.Graph, inst string, convergedBy, horizon sim.Time) (ExclusionReport, error) {
	rep := Exclusion(l, g, inst, horizon)
	if rep.LastViolation != sim.Never && rep.LastViolation > convergedBy {
		return rep, fmt.Errorf("checker: %s: exclusion violation persists past t=%d (last at t=%d)",
			inst, convergedBy, rep.LastViolation)
	}
	return rep, nil
}

// PerpetualWeakExclusion checks ℙWX: no violations at all.
func PerpetualWeakExclusion(l *trace.Log, g *graph.Graph, inst string, horizon sim.Time) (ExclusionReport, error) {
	rep := Exclusion(l, g, inst, horizon)
	if len(rep.Violations) > 0 {
		return rep, fmt.Errorf("checker: %s: %d perpetual-exclusion violations, first: %v",
			inst, len(rep.Violations), rep.Violations[0])
	}
	return rep, nil
}

// Starvation describes a correct diner left hungry at the end of a run.
type Starvation struct {
	Inst  string
	P     sim.ProcID
	Since sim.Time
}

func (s Starvation) String() string {
	return fmt.Sprintf("%s: %d hungry since t=%d without eating", s.Inst, s.P, s.Since)
}

// WaitFreedom checks that every hunger session of a correct (never-crashed)
// process ends in an eating session. A hunger session still open at the
// horizon counts as starvation only if it began before grace (hunger that
// started very late in the run has legitimately not been served yet).
func WaitFreedom(l *trace.Log, inst string, grace, horizon sim.Time) []Starvation {
	hungry := l.Sessions("hungry")
	crash := l.CrashTimes()
	var out []Starvation
	keys := make([]trace.SessionKey, 0, len(hungry))
	for k := range hungry {
		if k.Inst == inst {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].P < keys[j].P })
	for _, k := range keys {
		if _, crashed := crash[k.P]; crashed {
			continue // only correct processes are owed progress
		}
		for _, iv := range hungry[k] {
			if iv.Closed() {
				continue // hunger ended; the state machine only permits hungry->eating
			}
			if iv.Start <= grace {
				out = append(out, Starvation{Inst: k.Inst, P: k.P, Since: iv.Start})
			}
		}
	}
	return out
}

// Overtake records one process exceeding the k-fairness bound against a
// continuously hungry correct neighbor.
type Overtake struct {
	Inst   string
	Eater  sim.ProcID
	Victim sim.ProcID
	Count  int
	T      sim.Time // when the bound was exceeded
}

func (o Overtake) String() string {
	return fmt.Sprintf("%s: %d ate %d times while neighbor %d stayed hungry (t=%d)",
		o.Inst, o.Eater, o.Count, o.Victim, o.T)
}

// KFairness checks eventual k-fairness over the suffix [from, horizon]: no
// process completes more than k eating sessions that both start and end
// inside a single hunger session of a live correct neighbor, counting only
// sessions starting after from. It returns every overtake beyond the bound.
func KFairness(l *trace.Log, g *graph.Graph, inst string, k int, from, horizon sim.Time) []Overtake {
	eat := l.Sessions("eating")
	hungry := l.Sessions("hungry")
	crash := l.CrashTimes()
	var out []Overtake
	for _, victim := range g.Nodes() {
		if _, crashed := crash[victim]; crashed {
			continue
		}
		for _, hv := range hungry[trace.SessionKey{Inst: inst, P: victim}] {
			hStart := hv.Start
			hEnd := endOr(hv.End, horizon)
			if hStart < from {
				hStart = from
			}
			if hStart >= hEnd {
				continue
			}
			for _, eater := range g.Neighbors(victim) {
				n := 0
				for _, ev := range eat[trace.SessionKey{Inst: inst, P: eater}] {
					if ev.Start >= hStart && ev.Closed() && ev.End <= hEnd {
						n++
						if n > k {
							out = append(out, Overtake{Inst: inst, Eater: eater, Victim: victim, Count: n, T: ev.End})
						}
					}
				}
			}
		}
	}
	return out
}

func endOr(t, horizon sim.Time) sim.Time {
	if t == sim.Never {
		return horizon
	}
	return t
}

// ResponseStats summarizes hungry-to-eating latency for one dining
// instance: how long diners waited for their critical sections.
type ResponseStats struct {
	Served int // completed hungry->eating transitions measured
	Min    sim.Time
	Max    sim.Time
	Mean   float64
	P99    sim.Time
}

// ResponseTimes computes latency statistics over every hunger session that
// ended (in eating) at or after `from`. Open sessions are not counted; use
// WaitFreedom to flag those.
func ResponseTimes(l *trace.Log, inst string, from sim.Time) ResponseStats {
	hungry := l.Sessions("hungry")
	var lats []sim.Time
	for key, ivs := range hungry {
		if key.Inst != inst {
			continue
		}
		for _, iv := range ivs {
			if iv.Closed() && iv.End >= from {
				lats = append(lats, iv.End-iv.Start)
			}
		}
	}
	var st ResponseStats
	st.Served = len(lats)
	if st.Served == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	st.Min, st.Max = lats[0], lats[len(lats)-1]
	var sum int64
	for _, v := range lats {
		sum += int64(v)
	}
	st.Mean = float64(sum) / float64(len(lats))
	st.P99 = lats[(len(lats)*99)/100]
	return st
}
