package checker

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/trace"
)

// OracleReport summarizes how one failure-detector instance behaved in a
// run, per (monitor, target) pair and in aggregate.
type OracleReport struct {
	Inst string
	// Mistakes counts false suspicions: suspect transitions of a pair whose
	// target was live at the time, plus the initial suspicion if the target
	// never crashed (oracles in this repository suspect initially).
	Mistakes int
	// Convergence is the last time any correct monitor's output about a
	// correct target changed to trust after a false suspicion (Never if the
	// oracle never made a mistake).
	Convergence sim.Time
	// DetectionLatency maps each crashed process to the worst-case time from
	// its crash until every correct monitor permanently suspected it.
	DetectionLatency map[sim.ProcID]sim.Time
	// Pairs is the per-(monitor, target) evidence examined.
	Pairs []PairEvidence
}

// PairEvidence is the suspicion history of one ordered (monitor, target)
// pair together with the verdicts derived from it.
type PairEvidence struct {
	P, Q         sim.ProcID
	Changes      []trace.SuspicionChange
	FinalSuspect bool
	QCrashed     bool
	QCrashTime   sim.Time
}

// AllPairs returns every ordered pair (p, q), p != q, over procs — the
// monitor set of a full extractor.
func AllPairs(procs []sim.ProcID) [][2]sim.ProcID {
	var out [][2]sim.ProcID
	for _, p := range procs {
		for _, q := range procs {
			if p != q {
				out = append(out, [2]sim.ProcID{p, q})
			}
		}
	}
	return out
}

// oracleHistory assembles per-pair evidence for one oracle instance over the
// given ordered (monitor, target) pairs. initialSuspect is the module output
// before the first recorded change.
func oracleHistory(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool) []PairEvidence {
	sus := l.Suspicions()
	crash := l.CrashTimes()
	var out []PairEvidence
	for _, pq := range pairs {
		p, q := pq[0], pq[1]
		ev := PairEvidence{P: p, Q: q, FinalSuspect: initialSuspect}
		ev.Changes = sus[trace.SuspicionKey{Inst: inst, P: p, Peer: q}]
		if len(ev.Changes) > 0 {
			ev.FinalSuspect = ev.Changes[len(ev.Changes)-1].Suspect
		}
		if ct, ok := crash[q]; ok {
			ev.QCrashed, ev.QCrashTime = true, ct
		} else {
			ev.QCrashTime = sim.Never
		}
		out = append(out, ev)
	}
	return out
}

// correct reports whether p never crashed in the run.
func correct(l *trace.Log, p sim.ProcID) bool {
	_, crashed := l.CrashTimes()[p]
	return !crashed
}

// StrongCompleteness checks that every crashed process is eventually and
// permanently suspected by every correct monitor: for each such pair, the
// final output is suspect and no trust transition happens after stableBy.
// It returns the report and the first failing pair, if any.
func StrongCompleteness(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool, stableBy sim.Time) (OracleReport, error) {
	rep := newReport(l, inst, pairs, initialSuspect)
	for _, ev := range rep.Pairs {
		if !correct(l, ev.P) || !ev.QCrashed {
			continue
		}
		if !ev.FinalSuspect {
			return rep, fmt.Errorf("checker: %s: %d never permanently suspected crashed %d", inst, ev.P, ev.Q)
		}
		for _, c := range ev.Changes {
			if !c.Suspect && c.T > stableBy {
				return rep, fmt.Errorf("checker: %s: %d trusted crashed %d at t=%d (past stability bound %d)",
					inst, ev.P, ev.Q, c.T, stableBy)
			}
		}
	}
	return rep, nil
}

// EventualStrongAccuracy checks that no correct monitor suspects a correct
// target after convergedBy: every correct-correct pair's history has no
// suspect transition after convergedBy and ends in trust.
func EventualStrongAccuracy(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool, convergedBy sim.Time) (OracleReport, error) {
	rep := newReport(l, inst, pairs, initialSuspect)
	for _, ev := range rep.Pairs {
		if !correct(l, ev.P) || ev.QCrashed {
			continue
		}
		if ev.FinalSuspect {
			return rep, fmt.Errorf("checker: %s: correct %d still suspects correct %d at end of run", inst, ev.P, ev.Q)
		}
		for _, c := range ev.Changes {
			if c.Suspect && c.T > convergedBy {
				return rep, fmt.Errorf("checker: %s: correct %d suspected correct %d at t=%d (past convergence bound %d)",
					inst, ev.P, ev.Q, c.T, convergedBy)
			}
		}
	}
	return rep, nil
}

// TrustingAccuracy checks the trusting oracle T's accuracy axioms: (a) every
// correct monitor eventually and permanently trusts every correct target
// (trust by convergedBy with no later suspicion), and (b) whenever a monitor
// stops trusting a target — a trust-to-suspect transition — the target had
// already crashed.
func TrustingAccuracy(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool, convergedBy sim.Time) (OracleReport, error) {
	rep := newReport(l, inst, pairs, initialSuspect)
	for _, ev := range rep.Pairs {
		if !correct(l, ev.P) {
			continue
		}
		// (b) trust withdrawal implies a prior crash, for every target.
		trusted := !initialSuspect
		for _, c := range ev.Changes {
			if c.Suspect && trusted {
				if !ev.QCrashed || ev.QCrashTime > c.T {
					return rep, fmt.Errorf("checker: %s: %d withdrew trust from live %d at t=%d (violates trusting accuracy)",
						inst, ev.P, ev.Q, c.T)
				}
			}
			trusted = !c.Suspect
		}
		// (a) eventual permanent trust of correct targets.
		if !ev.QCrashed {
			if ev.FinalSuspect {
				return rep, fmt.Errorf("checker: %s: %d never trusted correct %d", inst, ev.P, ev.Q)
			}
			for _, c := range ev.Changes {
				if c.Suspect && c.T > convergedBy {
					return rep, fmt.Errorf("checker: %s: %d suspected correct %d at t=%d (past bound %d)",
						inst, ev.P, ev.Q, c.T, convergedBy)
				}
			}
		}
	}
	return rep, nil
}

// newReport builds the aggregate OracleReport (mistakes, convergence time,
// detection latencies) for one oracle instance.
func newReport(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool) OracleReport {
	rep := OracleReport{
		Inst:             inst,
		Convergence:      sim.Never,
		DetectionLatency: make(map[sim.ProcID]sim.Time),
	}
	rep.Pairs = oracleHistory(l, inst, pairs, initialSuspect)
	for _, ev := range rep.Pairs {
		if !correct(l, ev.P) {
			continue
		}
		if !ev.QCrashed {
			if initialSuspect {
				rep.Mistakes++ // the initial suspicion of a correct target
			}
			for _, c := range ev.Changes {
				if c.Suspect {
					rep.Mistakes++
				} else if c.T > rep.Convergence {
					rep.Convergence = c.T
				}
			}
			continue
		}
		// Detection latency: time of the last transition to (permanent)
		// suspicion, relative to the crash.
		if ev.FinalSuspect {
			when := sim.Time(0) // suspected from the start
			for _, c := range ev.Changes {
				if c.Suspect {
					when = c.T
				}
			}
			lat := when - ev.QCrashTime
			if lat < 0 {
				lat = 0
			}
			if cur, ok := rep.DetectionLatency[ev.Q]; !ok || lat > cur {
				rep.DetectionLatency[ev.Q] = lat
			}
		}
	}
	return rep
}

// MistakeCount returns the number of suspect transitions recorded for the
// ordered pair (p, q) in instance inst (plus one if initialSuspect), which
// is the "how often was q suspected by p" metric used in the Section 3
// counterexample experiment.
func MistakeCount(l *trace.Log, inst string, p, q sim.ProcID, initialSuspect bool) int {
	n := 0
	if initialSuspect {
		n++
	}
	for _, c := range l.Suspicions()[trace.SuspicionKey{Inst: inst, P: p, Peer: q}] {
		if c.Suspect {
			n++
		}
	}
	return n
}

// SortedLatencies renders detection latencies deterministically for reports.
func SortedLatencies(m map[sim.ProcID]sim.Time) string {
	ids := make([]sim.ProcID, 0, len(m))
	for p := range m {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	s := ""
	for i, p := range ids {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", p, m[p])
	}
	return s
}
