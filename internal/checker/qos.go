package checker

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// QoS quantifies a failure detector's quality of service in the style of
// Chen, Toueg and Aguilera: how fast it detects real crashes, how often it
// is wrong about live processes, and how long its mistakes last. All values
// are computed from the trace of one run.
type QoS struct {
	Inst string
	// DetectionTime is the worst time from a crash to the *final* (stable)
	// suspicion across correct monitors (Never if nothing crashed).
	DetectionTime sim.Time
	// MistakeCount is the number of false suspicions of live targets by
	// correct monitors (the initial mandated suspicion included when
	// initialSuspect is set).
	MistakeCount int
	// MistakeDurationTotal sums the lengths of all false-suspicion
	// intervals (an initial suspicion counts from time 0).
	MistakeDurationTotal sim.Time
	// MistakeDurationMax is the longest single false-suspicion interval.
	MistakeDurationMax sim.Time
	// QueryAccurate reports, over the sampled grid, the fraction of
	// (instant, pair) samples at which the output was correct (suspect iff
	// crashed).
	QueryAccurate float64
}

func (q QoS) String() string {
	det := "n/a"
	if q.DetectionTime != sim.Never {
		det = fmt.Sprintf("%d", q.DetectionTime)
	}
	return fmt.Sprintf("%s: detect=%s mistakes=%d dur(total=%d max=%d) accuracy=%.4f",
		q.Inst, det, q.MistakeCount, q.MistakeDurationTotal, q.MistakeDurationMax, q.QueryAccurate)
}

// MeasureQoS computes QoS for one oracle instance over the given ordered
// pairs. initialSuspect is the module output before its first recorded
// change; horizon closes still-open intervals.
func MeasureQoS(l *trace.Log, inst string, pairs [][2]sim.ProcID, initialSuspect bool, horizon sim.Time) QoS {
	q := QoS{Inst: inst, DetectionTime: sim.Never}
	crash := l.CrashTimes()
	sus := l.Suspicions()

	samples, correctSamples := 0, 0
	for _, pq := range pairs {
		p, t := pq[0], pq[1]
		if _, monitorCrashed := crash[p]; monitorCrashed {
			continue
		}
		changes := sus[trace.SuspicionKey{Inst: inst, P: p, Peer: t}]
		targetCrash, targetCrashed := crash[t]

		// Walk the output intervals.
		cur := initialSuspect
		curStart := sim.Time(0)
		flush := func(end sim.Time) {
			// Interval [curStart, end) with output cur.
			if cur {
				// False-suspicion portion: while the target was live.
				liveEnd := end
				if targetCrashed && targetCrash < liveEnd {
					liveEnd = targetCrash
				}
				if liveEnd > curStart {
					d := liveEnd - curStart
					q.MistakeCount++
					q.MistakeDurationTotal += d
					if d > q.MistakeDurationMax {
						q.MistakeDurationMax = d
					}
				}
			}
		}
		for _, c := range changes {
			flush(c.T)
			cur = c.Suspect
			curStart = c.T
		}
		flush(horizon)

		// Stable detection time: the last transition to suspicion, if the
		// final output is suspect and the target crashed.
		if targetCrashed && cur {
			when := sim.Time(0)
			for _, c := range changes {
				if c.Suspect {
					when = c.T
				}
			}
			lat := when - targetCrash
			if lat < 0 {
				lat = 0
			}
			if q.DetectionTime == sim.Never || lat > q.DetectionTime {
				q.DetectionTime = lat
			}
		}

		// Query accuracy over a sampling grid.
		const grid = 64
		step := horizon / grid
		if step < 1 {
			step = 1
		}
		out := initialSuspect
		ci := 0
		for at := sim.Time(0); at < horizon; at += step {
			for ci < len(changes) && changes[ci].T <= at {
				out = changes[ci].Suspect
				ci++
			}
			truth := targetCrashed && at >= targetCrash
			samples++
			if out == truth {
				correctSamples++
			}
		}
	}
	if samples > 0 {
		q.QueryAccurate = float64(correctSamples) / float64(samples)
	}
	return q
}
