package checker

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func rec(t sim.Time, p sim.ProcID, kind, inst, note string, peer sim.ProcID) sim.Record {
	return sim.Record{T: t, P: p, Kind: kind, Inst: inst, Note: note, Peer: peer}
}

func eatAt(l *trace.Log, inst string, p sim.ProcID, from, to sim.Time) {
	l.Trace(rec(from, p, trace.KindState, inst, "eating", -1))
	if to != sim.Never {
		l.Trace(rec(to, p, trace.KindState, inst, "exiting", -1))
	}
}

func TestExclusionDetectsOverlap(t *testing.T) {
	l := &trace.Log{}
	g := graph.Pair(0, 1)
	eatAt(l, "t", 0, 10, 30)
	eatAt(l, "t", 1, 20, 40) // overlaps [20,30)
	rep := Exclusion(l, g, "t", 1000)
	if len(rep.Violations) != 1 {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Violations[0].T != 20 || rep.LastViolation != 30 {
		t.Fatalf("overlap window wrong: %+v", rep)
	}
}

func TestExclusionIgnoresNonNeighbors(t *testing.T) {
	l := &trace.Log{}
	g := graph.Path(3) // 0-1-2: 0 and 2 are not neighbors
	eatAt(l, "t", 0, 10, 30)
	eatAt(l, "t", 2, 15, 25)
	if rep := Exclusion(l, g, "t", 1000); len(rep.Violations) != 0 {
		t.Fatalf("non-neighbors flagged: %v", rep.Violations)
	}
}

func TestExclusionTrimsCrashedEater(t *testing.T) {
	l := &trace.Log{}
	g := graph.Pair(0, 1)
	eatAt(l, "t", 0, 10, sim.Never) // 0 eats "forever" but crashes at 15
	l.Trace(rec(15, 0, trace.KindCrash, "", "", -1))
	eatAt(l, "t", 1, 20, 40) // only overlaps the dead period
	if rep := Exclusion(l, g, "t", 1000); len(rep.Violations) != 0 {
		t.Fatalf("dead eater counted as live: %v", rep.Violations)
	}
	// But an overlap before the crash still counts.
	l2 := &trace.Log{}
	eatAt(l2, "t", 0, 10, sim.Never)
	l2.Trace(rec(25, 0, trace.KindCrash, "", "", -1))
	eatAt(l2, "t", 1, 20, 40) // [20,25) live overlap
	if rep := Exclusion(l2, g, "t", 1000); len(rep.Violations) != 1 {
		t.Fatalf("live-window overlap missed: %v", rep.Violations)
	}
}

func TestEventualVsPerpetual(t *testing.T) {
	l := &trace.Log{}
	g := graph.Pair(0, 1)
	eatAt(l, "t", 0, 10, 30)
	eatAt(l, "t", 1, 20, 40)
	if _, err := EventualWeakExclusion(l, g, "t", 500, 1000); err != nil {
		t.Fatalf("early violation should be tolerated by ◇WX: %v", err)
	}
	if _, err := EventualWeakExclusion(l, g, "t", 15, 1000); err == nil {
		t.Fatal("violation after convergence bound not flagged")
	}
	if _, err := PerpetualWeakExclusion(l, g, "t", 1000); err == nil {
		t.Fatal("ℙWX must reject any violation")
	}
}

func TestWaitFreedom(t *testing.T) {
	l := &trace.Log{}
	// 0: hungry then eats — fine. 1: hungry forever — starved. 2: hungry
	// late — within grace. 3: hungry forever but crashed — not owed.
	l.Trace(rec(10, 0, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(20, 0, trace.KindState, "t", "eating", -1))
	l.Trace(rec(30, 1, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(960, 2, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(40, 3, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(50, 3, trace.KindCrash, "", "", -1))
	starved := WaitFreedom(l, "t", 900, 1000)
	if len(starved) != 1 || starved[0].P != 1 {
		t.Fatalf("starvation report: %v", starved)
	}
}

func TestKFairness(t *testing.T) {
	l := &trace.Log{}
	g := graph.Pair(0, 1)
	// 1 hungry the whole time; 0 eats three closed sessions inside it.
	l.Trace(rec(10, 1, trace.KindState, "t", "hungry", -1))
	eatAt(l, "t", 0, 20, 30)
	eatAt(l, "t", 0, 40, 50)
	eatAt(l, "t", 0, 60, 70)
	over := KFairness(l, g, "t", 2, 0, 1000)
	if len(over) != 1 || over[0].Count != 3 || over[0].Eater != 0 || over[0].Victim != 1 {
		t.Fatalf("overtakes: %v", over)
	}
	// With k=3 nothing is flagged.
	if over := KFairness(l, g, "t", 3, 0, 1000); len(over) != 0 {
		t.Fatalf("k=3 flagged: %v", over)
	}
	// Only sessions after `from` count: suffix semantics.
	if over := KFairness(l, g, "t", 2, 45, 1000); len(over) != 0 {
		t.Fatalf("suffix filter broken: %v", over)
	}
}

func TestKFairnessIgnoresCrashedVictim(t *testing.T) {
	l := &trace.Log{}
	g := graph.Pair(0, 1)
	l.Trace(rec(10, 1, trace.KindState, "t", "hungry", -1))
	l.Trace(rec(15, 1, trace.KindCrash, "", "", -1))
	eatAt(l, "t", 0, 20, 30)
	eatAt(l, "t", 0, 40, 50)
	eatAt(l, "t", 0, 60, 70)
	if over := KFairness(l, g, "t", 2, 0, 1000); len(over) != 0 {
		t.Fatalf("crashed victim counted: %v", over)
	}
}

func TestStrongCompletenessChecker(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(100, 1, trace.KindCrash, "", "", -1))
	// Monitor 0 suspects 1 at 150 and holds: pass.
	l.Trace(rec(150, 0, trace.KindSuspect, "o", "", 1))
	if _, err := StrongCompleteness(l, "o", [][2]sim.ProcID{{0, 1}}, false, 500); err != nil {
		t.Fatal(err)
	}
	// A trust after the stability bound: fail.
	l.Trace(rec(600, 0, trace.KindTrust, "o", "", 1))
	l.Trace(rec(700, 0, trace.KindSuspect, "o", "", 1))
	if _, err := StrongCompleteness(l, "o", [][2]sim.ProcID{{0, 1}}, false, 500); err == nil {
		t.Fatal("late trust of crashed target not flagged")
	}
}

func TestEventualStrongAccuracyChecker(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(50, 0, trace.KindSuspect, "o", "", 1))
	l.Trace(rec(80, 0, trace.KindTrust, "o", "", 1))
	if rep, err := EventualStrongAccuracy(l, "o", [][2]sim.ProcID{{0, 1}}, true, 100); err != nil {
		t.Fatal(err)
	} else if rep.Mistakes != 2 { // initial suspicion + one false suspicion
		t.Fatalf("mistakes=%d want 2", rep.Mistakes)
	}
	l.Trace(rec(900, 0, trace.KindSuspect, "o", "", 1))
	if _, err := EventualStrongAccuracy(l, "o", [][2]sim.ProcID{{0, 1}}, true, 100); err == nil {
		t.Fatal("late suspicion accepted")
	}
}

func TestTrustingAccuracyChecker(t *testing.T) {
	// Withdrawing trust from a live target is the T violation.
	l := &trace.Log{}
	l.Trace(rec(50, 0, trace.KindTrust, "o", "", 1))
	l.Trace(rec(80, 0, trace.KindSuspect, "o", "", 1))
	l.Trace(rec(90, 0, trace.KindTrust, "o", "", 1))
	if _, err := TrustingAccuracy(l, "o", [][2]sim.ProcID{{0, 1}}, true, 100); err == nil {
		t.Fatal("trust withdrawal from live target accepted")
	}
	// Withdrawal after the target's crash is fine.
	l2 := &trace.Log{}
	l2.Trace(rec(50, 0, trace.KindTrust, "o", "", 1))
	l2.Trace(rec(70, 1, trace.KindCrash, "", "", -1))
	l2.Trace(rec(80, 0, trace.KindSuspect, "o", "", 1))
	if _, err := TrustingAccuracy(l2, "o", [][2]sim.ProcID{{0, 1}}, true, 100); err != nil {
		t.Fatal(err)
	}
	// Never trusting a correct target is a violation of axiom (a).
	l3 := &trace.Log{}
	l3.Trace(rec(10, 0, trace.KindSuspect, "o", "", 1))
	if _, err := TrustingAccuracy(l3, "o", [][2]sim.ProcID{{0, 1}}, true, 100); err == nil {
		t.Fatal("permanent distrust of correct target accepted")
	}
}

func TestDetectionLatency(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(100, 1, trace.KindCrash, "", "", -1))
	l.Trace(rec(160, 0, trace.KindSuspect, "o", "", 1))
	rep, err := StrongCompleteness(l, "o", [][2]sim.ProcID{{0, 1}}, false, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DetectionLatency[1] != 60 {
		t.Fatalf("latency=%d want 60", rep.DetectionLatency[1])
	}
}

func TestMistakeCount(t *testing.T) {
	l := &trace.Log{}
	l.Trace(rec(10, 0, trace.KindSuspect, "o", "", 1))
	l.Trace(rec(20, 0, trace.KindTrust, "o", "", 1))
	l.Trace(rec(30, 0, trace.KindSuspect, "o", "", 1))
	if n := MistakeCount(l, "o", 0, 1, true); n != 3 {
		t.Fatalf("count=%d want 3", n)
	}
	if n := MistakeCount(l, "o", 0, 1, false); n != 2 {
		t.Fatalf("count=%d want 2", n)
	}
}

func TestResponseTimes(t *testing.T) {
	l := &trace.Log{}
	// Three served hunger sessions with latencies 10, 20, 30; one open.
	for i, lat := range []sim.Time{10, 20, 30} {
		start := sim.Time(100 * (i + 1))
		l.Trace(rec(start, sim.ProcID(i), trace.KindState, "t", "hungry", -1))
		l.Trace(rec(start+lat, sim.ProcID(i), trace.KindState, "t", "eating", -1))
	}
	l.Trace(rec(900, 3, trace.KindState, "t", "hungry", -1))
	st := ResponseTimes(l, "t", 0)
	if st.Served != 3 || st.Min != 10 || st.Max != 30 || st.Mean != 20 {
		t.Fatalf("stats: %+v", st)
	}
	// Suffix filter: only the last session counts.
	st = ResponseTimes(l, "t", 310)
	if st.Served != 1 || st.Min != 30 {
		t.Fatalf("suffix stats: %+v", st)
	}
	// Empty result is well-formed.
	if st := ResponseTimes(l, "other", 0); st.Served != 0 {
		t.Fatalf("phantom stats: %+v", st)
	}
}
