package explore_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func forksFactory(oracle detector.Oracle) dining.Factory {
	return forks.Factory(oracle, forks.Config{})
}

// TestPrefixDelaySequence: the policy consumes its assignment in order and
// falls back to the tail.
func TestPrefixDelaySequence(t *testing.T) {
	p := &explore.PrefixDelay{
		Choices:    []sim.Time{1, 40},
		Assignment: []int{1, 0, 1},
		Tail:       5,
	}
	want := []sim.Time{40, 1, 40, 5, 5}
	for i, w := range want {
		if got := p.Delay(nil, 0, 1, 0); got != w {
			t.Fatalf("delay %d = %d, want %d", i, got, w)
		}
	}
}

// TestExhaustiveCountsAndOrder: the explorer enumerates exactly
// |choices|^prefix assignments.
func TestExhaustiveCountsAndOrder(t *testing.T) {
	var seen [][]int
	sc := func(pol sim.DelayPolicy) error {
		pd := pol.(*explore.PrefixDelay)
		seen = append(seen, pd.Assignment)
		return nil
	}
	res := explore.Exhaustive(sc, 3, []sim.Time{1, 2}, 1)
	if res.Runs != 8 || !res.Ok() {
		t.Fatalf("runs=%d ok=%v", res.Runs, res.Ok())
	}
	if fmt.Sprint(seen[0]) != "[0 0 0]" || fmt.Sprint(seen[7]) != "[1 1 1]" {
		t.Fatalf("order wrong: first %v last %v", seen[0], seen[7])
	}
}

// TestExplorerFindsPlantedRace: a deliberately racy mini-protocol — two
// processes that both "win" when their claim message arrives before the
// rival's — must be caught by exhaustive exploration of the first two
// delays.
func TestExplorerFindsPlantedRace(t *testing.T) {
	sc := func(pol sim.DelayPolicy) error {
		k := sim.NewKernel(3, sim.WithSeed(1), sim.WithDelay(pol), sim.WithStepJitter(1))
		winners := 0
		decided := false
		k.Handle(2, "claim", func(m sim.Message) {
			// Buggy arbiter: grants to whoever arrives while it has not
			// "decided", but forgets to set decided until a timer fires.
			if !decided {
				winners++
			}
		})
		k.After(2, 3, func() { decided = true })
		k.Send(0, 2, "claim", nil)
		k.Send(1, 2, "claim", nil)
		k.Run(100)
		if winners > 1 {
			return errors.New("two winners")
		}
		return nil
	}
	res := explore.Exhaustive(sc, 2, []sim.Time{1, 10}, 2)
	if res.Ok() {
		t.Fatal("explorer missed the planted race")
	}
	// And the failing assignment is the one delivering both claims early.
	found := false
	for _, f := range res.Failures {
		if fmt.Sprint(f.Assignment) == "[0 0]" {
			found = true
		}
	}
	if !found {
		t.Fatalf("unexpected failing assignments: %v", res.Failures)
	}
}

// TestReductionInvariantsExhaustive: the paper's configuration invariants
// hold under EVERY assignment of the first 9 message delays of a pair-
// monitor run (2^9 = 512 complete runs) — enumeration, not sampling.
func TestReductionInvariantsExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is long")
	}
	sc := func(pol sim.DelayPolicy) error {
		k := sim.NewKernel(2, sim.WithSeed(1), sim.WithDelay(pol))
		oracle := detector.Perfect{K: k}
		m := core.NewPairMonitor(k, 0, 1, forksFactory(oracle), "xp")
		var firstViolation error
		m.WatchInvariants(17, 1<<62, func(at sim.Time, what string) {
			if firstViolation == nil {
				firstViolation = fmt.Errorf("t=%d: %s", at, what)
			}
		})
		k.Run(4000)
		if firstViolation != nil {
			return firstViolation
		}
		if m.Suspect() {
			return errors.New("suspecting a correct subject")
		}
		return nil
	}
	res := explore.Exhaustive(sc, 9, []sim.Time{1, 35}, 3)
	if !res.Ok() {
		t.Fatalf("invariant violations under %d explored schedules: %v", res.Runs, res.Failures[0])
	}
	if res.Runs != 512 {
		t.Fatalf("runs=%d want 512", res.Runs)
	}
}

// TestCentralTableExclusionExhaustive: the centralized ℙWX table keeps
// perpetual exclusion under every early ordering of its HUNGRY/EAT/EXIT
// traffic — the regression class of the stale-EXIT race found during
// development.
func TestCentralTableExclusionExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration is long")
	}
	sc := func(pol sim.DelayPolicy) error {
		log := &trace.Log{}
		g := graph.Pair(0, 1)
		k := sim.NewKernel(3, sim.WithSeed(1), sim.WithTracer(log), sim.WithDelay(pol))
		tbl := perfect.New(k, g, "px", 2)
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				FirstHunger: 2, ThinkMin: 2, ThinkMax: 4, EatMin: 2, EatMax: 5,
			})
		}
		end := k.Run(3000)
		if _, err := checker.PerpetualWeakExclusion(log, g, "px", end); err != nil {
			return err
		}
		return nil
	}
	res := explore.Exhaustive(sc, 10, []sim.Time{1, 30}, 2)
	if !res.Ok() {
		t.Fatalf("exclusion violated under %d explored schedules: %v", res.Runs, res.Failures[0])
	}
}

// TestSampledLongPrefix: the probabilistic companion covers a prefix too
// long to enumerate.
func TestSampledLongPrefix(t *testing.T) {
	sc := func(pol sim.DelayPolicy) error {
		k := sim.NewKernel(2, sim.WithSeed(2), sim.WithDelay(pol))
		got := 0
		k.Handle(1, "x", func(sim.Message) { got++ })
		for i := 0; i < 64; i++ {
			k.Send(0, 1, "x", nil)
		}
		k.Run(10000)
		if got != 64 {
			return fmt.Errorf("lost messages: %d", got)
		}
		return nil
	}
	res := explore.Sampled(sc, 64, []sim.Time{1, 10, 100}, 2, 200, 7)
	if !res.Ok() || res.Runs != 200 {
		t.Fatalf("sampled: %+v", res)
	}
}
