// Package explore provides bounded-exhaustive schedule exploration: it
// re-runs a scenario under *every* assignment of delays to the first K
// messages, systematically covering the early interleavings where
// distributed races concentrate (both non-trivial bugs found while building
// this repository — a stale-EXIT unbooking race and the earned-trust
// admission race — manifested within the first few exchanges of a run).
//
// Random schedule sampling (seeds) and coverage-guided fuzzing explore the
// same space probabilistically; exploration makes a small prefix of it a
// *proof by enumeration*: if no assignment of the first K delays violates
// the property, no adversary confined to that prefix can either.
package explore

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// PrefixDelay assigns the i-th message sent in the run the delay Choices
// [Assignment's i-th digit]; messages beyond the prefix use Tail. It is the
// enumerable counterpart of sim.BytesDelay.
type PrefixDelay struct {
	Choices    []sim.Time // the delay alphabet, e.g. {1, 40}
	Assignment []int      // digit per early message, each < len(Choices)
	Tail       sim.Time   // delay for messages after the prefix (default 2)
	pos        int
}

// Delay implements sim.DelayPolicy. PrefixDelay is stateful: use a fresh
// instance per run.
func (p *PrefixDelay) Delay(_ *rand.Rand, _, _ sim.ProcID, _ sim.Time) sim.Time {
	if p.pos < len(p.Assignment) {
		d := p.Choices[p.Assignment[p.pos]]
		p.pos++
		if d < 1 {
			d = 1
		}
		return d
	}
	p.pos++
	if p.Tail < 1 {
		return 2
	}
	return p.Tail
}

// Scenario builds and runs one complete simulation under the given delay
// policy and returns nil if every property held, or a describing error.
// The scenario must construct its own kernel (exploration replays it from
// scratch for every assignment) and must be deterministic given the policy.
type Scenario func(policy sim.DelayPolicy) error

// Failure records one violating assignment.
type Failure struct {
	Assignment []int
	Err        error
}

func (f Failure) String() string {
	return fmt.Sprintf("assignment %v: %v", f.Assignment, f.Err)
}

// Result summarizes an exploration.
type Result struct {
	Runs     int
	Failures []Failure
}

// Ok reports whether every explored schedule satisfied the scenario.
func (r Result) Ok() bool { return len(r.Failures) == 0 }

// Exhaustive runs the scenario under every assignment of the first prefix
// messages' delays drawn from choices — |choices|^prefix runs — and returns
// all failures (capped at 10 to keep reports readable). Exploration order
// is lexicographic, so results are reproducible.
func Exhaustive(sc Scenario, prefix int, choices []sim.Time, tail sim.Time) Result {
	if prefix < 0 || len(choices) == 0 {
		panic("explore: need a non-negative prefix and a non-empty alphabet")
	}
	var res Result
	assignment := make([]int, prefix)
	for {
		res.Runs++
		pol := &PrefixDelay{
			Choices:    choices,
			Assignment: append([]int(nil), assignment...),
			Tail:       tail,
		}
		if err := sc(pol); err != nil {
			if len(res.Failures) < 10 {
				res.Failures = append(res.Failures, Failure{
					Assignment: append([]int(nil), assignment...),
					Err:        err,
				})
			}
		}
		// Next assignment (odometer increment).
		i := prefix - 1
		for ; i >= 0; i-- {
			assignment[i]++
			if assignment[i] < len(choices) {
				break
			}
			assignment[i] = 0
		}
		if i < 0 {
			return res
		}
	}
}

// Sampled runs the scenario under n random assignments over a longer prefix
// — the probabilistic companion for prefixes too long to enumerate.
func Sampled(sc Scenario, prefix int, choices []sim.Time, tail sim.Time, n int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	var res Result
	for i := 0; i < n; i++ {
		assignment := make([]int, prefix)
		for j := range assignment {
			assignment[j] = rng.Intn(len(choices))
		}
		res.Runs++
		pol := &PrefixDelay{Choices: choices, Assignment: assignment, Tail: tail}
		if err := sc(pol); err != nil {
			if len(res.Failures) < 10 {
				res.Failures = append(res.Failures, Failure{Assignment: assignment, Err: err})
			}
		}
	}
	return res
}
