// Package livechaos ports the simulator's link adversary to wall-clock
// execution: a fault-injecting Bus for in-process live runtimes and a TCP
// proxy for networked deployments, both driven by the same sim.LinkPlan that
// drives the deterministic chaos campaigns. The *schedule* of faults —
// partition windows, per-link overrides, drop/dup probabilities — is derived
// purely from the plan and the seed, so replaying a seed replays the same
// adversary even though wall-clock interleaving is not reproducible.
package livechaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/live"
	"repro/internal/rt"
	"repro/internal/sim"
)

// BusConfig shapes a ChaosBus.
type BusConfig struct {
	// N is the number of processes the plan is validated against.
	N int
	// Plan is the link adversary, with the exact semantics of the
	// simulator's LinkPlan: baseline drop/dup, per-link overrides, bounded
	// reorder, and timed lossy windows (partitions). Window times are in
	// ticks from the bus clock's zero point (see ResetClock).
	Plan sim.LinkPlan
	// Seed roots the per-direction random streams (default 1). Every
	// directed link draws from its own stream, so one link's traffic volume
	// cannot perturb another link's fault sequence.
	Seed int64
	// Tick is the wall-clock duration of one plan tick (default 1ms). Use
	// the same tick as the live runtime so window times line up with
	// protocol time.
	Tick time.Duration
}

// ChaosBus wraps a live.Bus and filters every Send through a sim.LinkPlan:
// messages are dropped, duplicated, or delayed (bounded reorder) exactly as
// the simulator's linkArrive would, but in real time. It supersedes
// live.LossyBus, which only knows uniform drops.
type ChaosBus struct {
	inner live.Bus
	plan  sim.LinkPlan
	seed  int64
	tick  time.Duration

	mu      sync.Mutex
	start   time.Time
	streams map[[2]rt.ProcID]*rand.Rand
	closed  bool

	dropped     int64
	duped       int64
	delayed     int64
	partitioned int64 // drops attributable to an active lossy window
}

// NewChaosBus validates cfg.Plan and wraps inner. The plan clock starts
// ticking immediately; call ResetClock after the runtime starts to align
// window times with runtime time.
func NewChaosBus(inner live.Bus, cfg BusConfig) (*ChaosBus, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("livechaos: BusConfig.N must be positive")
	}
	if err := cfg.Plan.Validate(cfg.N); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	return &ChaosBus{
		inner:   inner,
		plan:    cfg.Plan,
		seed:    cfg.Seed,
		tick:    cfg.Tick,
		start:   time.Now(),
		streams: make(map[[2]rt.ProcID]*rand.Rand),
	}, nil
}

// ResetClock re-zeroes the plan clock: window [Start, End) eras are measured
// in ticks from the most recent ResetClock (or construction).
func (b *ChaosBus) ResetClock() {
	b.mu.Lock()
	b.start = time.Now()
	b.mu.Unlock()
}

// Bind implements live.Bus.
func (b *ChaosBus) Bind(deliver func(rt.Message)) { b.inner.Bind(deliver) }

// now returns the plan clock in ticks. Caller holds b.mu.
func (b *ChaosBus) now() sim.Time { return sim.Time(time.Since(b.start) / b.tick) }

// stream returns the seeded random stream of one directed link. Caller
// holds b.mu.
func (b *ChaosBus) stream(from, to rt.ProcID) *rand.Rand {
	key := [2]rt.ProcID{from, to}
	rng, ok := b.streams[key]
	if !ok {
		rng = rand.New(rand.NewSource(b.seed + int64(from)*1_000_003 + int64(to)*7_919))
		b.streams[key] = rng
	}
	return rng
}

// Send implements live.Bus: the message runs the plan's gauntlet in the
// simulator's order — reorder delay drawn at send, drop decided at arrival,
// duplication only for messages that survived the drop. The fixed draw order
// makes a direction's fault sequence a pure function of the seed and that
// direction's message count.
func (b *ChaosBus) Send(m rt.Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	now := b.now()
	rng := b.stream(m.From, m.To)
	var extra time.Duration
	if b.plan.ReorderMax > 0 {
		extra = time.Duration(rng.Int63n(int64(b.plan.ReorderMax)+1)) * b.tick
		if extra > 0 {
			b.delayed++
		}
	}
	if p := b.plan.DropProb(m.From, m.To, now); p > 0 && rng.Float64() < p {
		b.dropped++
		if b.plan.InWindow(m.From, m.To, now) {
			b.partitioned++
		}
		b.mu.Unlock()
		return
	}
	dup := false
	var dupExtra time.Duration
	if p := b.plan.DupProb(m.From, m.To); p > 0 && rng.Float64() < p {
		dup = true
		b.duped++
		// Mirror the simulator: a duplicate is a second, independent delivery
		// of the same wire message a little later, never duplicated again.
		dupExtra = time.Duration(1+rng.Int63n(8)) * b.tick
	}
	b.mu.Unlock()
	b.forward(m, extra)
	if dup {
		b.forward(m, extra+dupExtra)
	}
}

// forward ships m on the inner bus after the adversary's extra delay.
func (b *ChaosBus) forward(m rt.Message, extra time.Duration) {
	if extra <= 0 {
		b.inner.Send(m)
		return
	}
	time.AfterFunc(extra, func() {
		b.mu.Lock()
		closed := b.closed
		b.mu.Unlock()
		if !closed {
			b.inner.Send(m)
		}
	})
}

// Stats reports the bus's perturbation counters.
func (b *ChaosBus) Stats() (dropped, duped, delayed int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped, b.duped, b.delayed
}

// BusStats implements live.StatsSource, folding in the inner bus's delivery
// count when it keeps one; Dropped includes the partition-window share,
// which Partitioned breaks out separately.
func (b *ChaosBus) BusStats() live.BusStats {
	b.mu.Lock()
	st := live.BusStats{Dropped: b.dropped, Duped: b.duped, Delayed: b.delayed}
	b.mu.Unlock()
	if src, ok := b.inner.(live.StatsSource); ok {
		st.Delivered = src.BusStats().Delivered
	}
	return st
}

// Partitioned reports how many of the dropped messages were eaten while
// their link sat inside an active lossy window — the partition share of the
// loss, which a convergence dashboard wants separated from steady-state
// noise.
func (b *ChaosBus) Partitioned() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.partitioned
}

// Close implements live.Bus.
func (b *ChaosBus) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return b.inner.Close()
}
