package livechaos

import (
	"bufio"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

// sinkBus records every message that reaches it.
type sinkBus struct {
	mu  sync.Mutex
	got []rt.Message
}

func (s *sinkBus) Bind(func(rt.Message)) {}
func (s *sinkBus) Send(m rt.Message) {
	s.mu.Lock()
	s.got = append(s.got, m)
	s.mu.Unlock()
}
func (s *sinkBus) Close() error { return nil }

func (s *sinkBus) payloads() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, 0, len(s.got))
	for _, m := range s.got {
		out = append(out, m.Payload.(int))
	}
	return out
}

// TestChaosBusDeterministicDrops feeds the same per-direction message
// sequence through two buses with the same seed: the surviving subsequences
// must be identical — the fault schedule is a function of the seed alone.
func TestChaosBusDeterministicDrops(t *testing.T) {
	run := func() []int {
		sink := &sinkBus{}
		b, err := NewChaosBus(sink, BusConfig{N: 2, Seed: 7, Plan: sim.LinkPlan{Name: "t", Drop: 0.4}})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			b.Send(rt.Message{From: rt.ProcID(i % 2), To: rt.ProcID(1 - i%2), Port: "x", Payload: i})
		}
		dropped, _, _ := b.Stats()
		if dropped == 0 {
			t.Fatal("a 40% drop plan dropped nothing")
		}
		return sink.payloads()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestChaosBusPartitionWindow checks that an active lossy window with a Side
// kills exactly the cross-partition links, like the simulator's.
func TestChaosBusPartitionWindow(t *testing.T) {
	sink := &sinkBus{}
	plan := sim.LinkPlan{Name: "t", Windows: []sim.LossyWindow{
		{Start: 0, End: 1 << 40, Drop: 1, Side: []sim.ProcID{0}},
	}}
	b, err := NewChaosBus(sink, BusConfig{N: 3, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	b.Send(rt.Message{From: 0, To: 1, Port: "x", Payload: 1}) // crosses: dropped
	b.Send(rt.Message{From: 2, To: 0, Port: "x", Payload: 2}) // crosses: dropped
	b.Send(rt.Message{From: 1, To: 2, Port: "x", Payload: 3}) // same side: passes
	got := sink.payloads()
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("partition window delivered %v, want [3]", got)
	}
}

// TestChaosBusDupAndDelay checks duplication and bounded-reorder delay.
func TestChaosBusDupAndDelay(t *testing.T) {
	sink := &sinkBus{}
	plan := sim.LinkPlan{Name: "t", Dup: 1, ReorderMax: 3}
	b, err := NewChaosBus(sink, BusConfig{N: 2, Plan: plan, Tick: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Send(rt.Message{From: 0, To: 1, Port: "x", Payload: i})
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if len(sink.payloads()) == 20 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := len(sink.payloads()); got != 20 {
		t.Fatalf("dup=1 delivered %d copies of 10 messages, want 20", got)
	}
}

// echoServer accepts connections and echoes lines back.
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					line := append(append([]byte(nil), sc.Bytes()...), '\n')
					if _, err := c.Write(line); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln.Addr().String(), func() { ln.Close() }
}

// TestProxyPassThrough: with an empty plan the proxy is a transparent relay.
func TestProxyPassThrough(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(ProxyConfig{Listen: "127.0.0.1:0", Upstream: up})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	sc := bufio.NewScanner(c)
	for _, msg := range []string{"one", "two", "three"} {
		if _, err := c.Write([]byte(msg + "\n")); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no echo for %q", msg)
		}
		if sc.Text() != msg {
			t.Fatalf("echo %q, want %q", sc.Text(), msg)
		}
	}
}

// TestProxyDupOneDirection: duplicating only the client->server link makes
// every request echo exactly twice.
func TestProxyDupOneDirection(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	plan := sim.LinkPlan{Name: "t", Links: []sim.LinkFault{{From: 0, To: 1, Dup: 1}}}
	p, err := NewProxy(ProxyConfig{Listen: "127.0.0.1:0", Upstream: up, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("ping\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(c)
	for i := 0; i < 2; i++ {
		if !sc.Scan() {
			t.Fatalf("echo %d missing", i)
		}
		if sc.Text() != "ping" {
			t.Fatalf("echo %d = %q, want ping", i, sc.Text())
		}
	}
}

// TestProxyPartitionWindow: during a full-drop window nothing crosses; after
// it ends, traffic flows again.
func TestProxyPartitionWindow(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	// Window in ticks of 1ms: dead for the first 300ms of the proxy's life.
	plan := sim.LinkPlan{Name: "t", Windows: []sim.LossyWindow{{Start: 0, End: 300, Drop: 1}}}
	p, err := NewProxy(ProxyConfig{Listen: "127.0.0.1:0", Upstream: up, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("early\n")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := bufio.NewReader(c).ReadString('\n'); err == nil {
		t.Fatal("line crossed an active full-drop partition window")
	}
	time.Sleep(400 * time.Millisecond) // window over
	if _, err := c.Write([]byte("late\n")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := bufio.NewReader(c).ReadString('\n')
	if err != nil {
		t.Fatalf("post-window line lost: %v", err)
	}
	if line != "late\n" {
		t.Fatalf("post-window echo %q, want late", line)
	}
	if d, _, _ := p.Stats(); d == 0 {
		t.Error("window dropped nothing")
	}
}

// TestProxyReset: with ResetProb 1 the first line kills the connection; a
// reconnect gets a fresh pair.
func TestProxyReset(t *testing.T) {
	up, stop := echoServer(t)
	defer stop()
	p, err := NewProxy(ProxyConfig{Listen: "127.0.0.1:0", Upstream: up, ResetProb: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("doomed\n"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := bufio.NewReader(c).ReadString('\n'); err == nil {
		t.Fatal("connection survived a certain reset")
	}
	c.Close()
	if _, _, resets := p.Stats(); resets == 0 {
		t.Error("reset counter is zero")
	}
	// The proxy keeps accepting after a reset.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
}
