package livechaos

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// ProxyConfig shapes a fault-injecting TCP proxy.
type ProxyConfig struct {
	// Listen is the address to accept client connections on (e.g.
	// "127.0.0.1:0").
	Listen string
	// Upstream is the server address every accepted connection is forwarded
	// to.
	Upstream string
	// Plan is the link adversary, interpreted over the two-node link the
	// proxy sits on: process 0 is the client side, process 1 the server
	// side, so client->server traffic runs link 0->1 and replies run 1->0.
	// A LossyWindow with Side [0] (or [1]) partitions the two for its era.
	// ReorderMax acts as head-of-line delay: TCP preserves order, so the
	// adversary can stall a direction but not reorder within it.
	Plan sim.LinkPlan
	// Seed roots the per-connection, per-direction random streams
	// (default 1).
	Seed int64
	// Tick is the wall-clock duration of one plan tick (default 1ms).
	Tick time.Duration
	// ResetProb is a per-forwarded-line probability of killing the
	// connection pair mid-stream — the transport-level fault (RST) that the
	// plan's message-level model cannot express. Clients are expected to
	// reconnect and replay idempotently.
	ResetProb float64
	// MaxLine bounds one protocol line (default 1MB).
	MaxLine int
}

// Proxy is a line-aware fault-injecting TCP relay for JSON-lines protocols
// (lockproto): it drops, duplicates and delays whole lines, never corrupting
// a frame, and can reset connections. It is the out-of-process counterpart
// of ChaosBus, usable in front of an unmodified dineserve.
type Proxy struct {
	cfg   ProxyConfig
	ln    net.Listener
	start time.Time

	closed  atomic.Bool
	wg      sync.WaitGroup
	connSeq atomic.Int64

	dropped atomic.Int64
	duped   atomic.Int64
	resets  atomic.Int64
}

// NewProxy validates the plan, binds the listener, and starts accepting.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if err := cfg.Plan.Validate(2); err != nil {
		return nil, err
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.MaxLine <= 0 {
		cfg.MaxLine = 1 << 20
	}
	if cfg.ResetProb < 0 || cfg.ResetProb >= 1 {
		return nil, fmt.Errorf("livechaos: proxy reset probability %v outside [0, 1)", cfg.ResetProb)
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, start: time.Now()}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's bound listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats reports (lines dropped, lines duplicated, connections reset).
func (p *Proxy) Stats() (dropped, duped, resets int64) {
	return p.dropped.Load(), p.duped.Load(), p.resets.Load()
}

// Close stops accepting and waits for the relay goroutines to drain.
func (p *Proxy) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := p.ln.Close()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		id := p.connSeq.Add(1)
		p.wg.Add(1)
		go p.relay(conn, id)
	}
}

// relay connects one accepted client to the upstream and pumps both
// directions through the adversary until either side closes or a reset
// fires.
func (p *Proxy) relay(client net.Conn, id int64) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.cfg.Upstream)
	if err != nil {
		client.Close()
		return
	}
	// kill closes both legs; the losing pump's read fails and it exits.
	var once sync.Once
	kill := func() {
		once.Do(func() {
			client.Close()
			upstream.Close()
		})
	}
	var pumps sync.WaitGroup
	pumps.Add(2)
	go p.pump(&pumps, client, upstream, 0, 1, id, kill)
	go p.pump(&pumps, upstream, client, 1, 0, id, kill)
	pumps.Wait()
	kill()
}

// pump relays lines src -> dst as link from->to of the plan.
func (p *Proxy) pump(wg *sync.WaitGroup, src, dst net.Conn, from, to sim.ProcID, id int64, kill func()) {
	defer wg.Done()
	// Each (connection, direction) draws from its own stream so the fault
	// sequence per direction depends only on the seed, the connection index
	// and that direction's line count.
	rng := rand.New(rand.NewSource(p.cfg.Seed + id*65_537 + int64(from)*1_000_003 + int64(to)*7_919))
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 0, 64*1024), p.cfg.MaxLine)
	for sc.Scan() {
		line := append([]byte(nil), sc.Bytes()...)
		line = append(line, '\n')
		now := sim.Time(time.Since(p.start) / p.cfg.Tick)
		if p.cfg.ResetProb > 0 && rng.Float64() < p.cfg.ResetProb {
			p.resets.Add(1)
			kill()
			return
		}
		if p.cfg.Plan.ReorderMax > 0 {
			if extra := rng.Int63n(int64(p.cfg.Plan.ReorderMax) + 1); extra > 0 {
				time.Sleep(time.Duration(extra) * p.cfg.Tick)
			}
		}
		if prob := p.cfg.Plan.DropProb(from, to, now); prob > 0 && rng.Float64() < prob {
			p.dropped.Add(1)
			continue
		}
		copies := 1
		if prob := p.cfg.Plan.DupProb(from, to); prob > 0 && rng.Float64() < prob {
			p.duped.Add(1)
			copies = 2
		}
		for i := 0; i < copies; i++ {
			if _, err := dst.Write(line); err != nil {
				kill()
				return
			}
		}
	}
	kill()
}
