// Package par provides the bounded worker pool shared by the repo's sweep
// layers: chaos campaigns (internal/chaos) and experiment fan-out
// (internal/experiment) both execute many independent single-threaded
// sim.Kernel runs, which is embarrassingly parallel — each run owns its
// kernel, RNG, and trace log, and nothing is shared between runs.
//
// The determinism contract of the sequential sweeps is preserved by
// construction: jobs may finish in any wall-clock order, but results are
// handed to the consumer strictly in index order, so aggregation, progress
// callbacks, and rendered output are byte-identical to a sequential sweep.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n if positive, else
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// MapOrdered runs job(0..n-1) on up to `workers` goroutines (0 means
// GOMAXPROCS) and calls consume(i, result) strictly in index order, as soon
// as each prefix of results is complete. consume runs on the calling
// goroutine, so it needs no synchronization of its own. With one worker (or
// one job) everything runs inline on the caller, sequentially.
//
// A panic in job is re-raised on the calling goroutine, at the panicking
// job's position in consumption order — the same observable behavior as the
// sequential path, so callers need one recovery strategy, not two.
func MapOrdered[T any](workers, n int, job func(int) T, consume func(int, T)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			consume(i, job(i))
		}
		return
	}

	call := func(i int) (r T, panicked any) {
		defer func() {
			if p := recover(); p != nil {
				panicked = p
			}
		}()
		r = job(i)
		return
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		results = make([]T, n)
		panics  = make([]any, n)
		done    = make([]bool, n)
		next    atomic.Int64 // next job index to claim
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				r, pv := call(i)
				mu.Lock()
				results[i] = r
				panics[i] = pv
				done[i] = true
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		for !done[i] {
			cond.Wait()
		}
		r, pv := results[i], panics[i]
		var zero T
		results[i] = zero // release the result as soon as it is consumed
		mu.Unlock()
		if pv != nil {
			next.Store(int64(n)) // stop workers from claiming further jobs
			panic(pv)
		}
		consume(i, r)
	}
	wg.Wait()
}

// Map runs job(0..n-1) on up to `workers` goroutines (0 means GOMAXPROCS)
// and returns the results in index order.
func Map[T any](workers, n int, job func(int) T) []T {
	out := make([]T, n)
	MapOrdered(workers, n, job, func(i int, v T) { out[i] = v })
	return out
}
