package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-1); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-1) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

// TestMapOrder: results land in index order regardless of worker count.
func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		out := Map(workers, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestMapOrderedConsumeSequence: consume is called strictly 0..n-1 on the
// caller's goroutine even when jobs complete out of order.
func TestMapOrderedConsumeSequence(t *testing.T) {
	const n = 200
	want := 0
	MapOrdered(8, n, func(i int) int {
		// Later indices do less work, so they tend to finish first.
		spin := (n - i) * 50
		s := 0
		for j := 0; j < spin; j++ {
			s += j
		}
		_ = s
		return i
	}, func(i, v int) {
		if i != want || v != want {
			t.Fatalf("consume(%d, %d), want index %d", i, v, want)
		}
		want++
	})
	if want != n {
		t.Fatalf("consumed %d of %d results", want, n)
	}
}

// TestMapRunsEveryJobOnce: each index is claimed exactly once.
func TestMapRunsEveryJobOnce(t *testing.T) {
	const n = 500
	var counts [n]atomic.Int32
	Map(16, n, func(i int) struct{} {
		counts[i].Add(1)
		return struct{}{}
	})
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if out := Map(4, 0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("Map over 0 jobs returned %v", out)
	}
	if out := Map(4, 1, func(i int) int { return 41 + i }); len(out) != 1 || out[0] != 41 {
		t.Fatalf("Map over 1 job returned %v", out)
	}
}

// TestMapOrderedWorkerNormalization: zero and negative worker counts mean
// GOMAXPROCS, not zero goroutines — the sweep must still run every job and
// consume in order.
func TestMapOrderedWorkerNormalization(t *testing.T) {
	for _, workers := range []int{0, -1, -8} {
		var ran atomic.Int32
		want := 0
		MapOrdered(workers, 50, func(i int) int {
			ran.Add(1)
			return i
		}, func(i, v int) {
			if i != want || v != want {
				t.Fatalf("workers=%d: consume(%d, %d), want index %d", workers, i, v, want)
			}
			want++
		})
		if ran.Load() != 50 || want != 50 {
			t.Fatalf("workers=%d: ran %d jobs, consumed %d, want 50", workers, ran.Load(), want)
		}
	}
}

// TestMapOrderedPanicPropagates: a panic inside a worker goroutine must
// surface on the calling goroutine with the original panic value, at the
// panicking job's position in consumption order — matching the sequential
// path, where the panic interrupts the consume loop directly.
func TestMapOrderedPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			consumed := 0
			defer func() {
				pv := recover()
				if pv != "job 3 exploded" {
					t.Fatalf("workers=%d: recovered %v, want the job's panic value", workers, pv)
				}
				if consumed != 3 {
					t.Fatalf("workers=%d: consumed %d results before the panic, want 3", workers, consumed)
				}
			}()
			MapOrdered(workers, 16, func(i int) int {
				if i == 3 {
					panic("job 3 exploded")
				}
				return i
			}, func(i, v int) { consumed++ })
			t.Fatalf("workers=%d: MapOrdered returned instead of panicking", workers)
		}()
	}
}
