package dinesvc

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"
)

// benchBaseline mirrors the slice of BENCH_serve.json this test needs.
type benchBaseline struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func baselineMetric(t *testing.T, name, metric string) (float64, bool) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Logf("no baseline: %v", err)
		return 0, false
	}
	var bl benchBaseline
	if err := json.Unmarshal(raw, &bl); err != nil {
		t.Fatalf("BENCH_serve.json: %v", err)
	}
	for _, b := range bl.Benchmarks {
		if b.Name == name {
			v, ok := b.Metrics[metric]
			return v, ok
		}
	}
	return 0, false
}

// idleAllocRate measures the booted server's background allocation rate
// (allocs per nanosecond of wall time): heartbeat rounds, runtime timers,
// janitor ticks — everything that allocates without any request in flight.
// The benchmark below uses it to separate "the op got slower, so more
// background landed in its window" from "the request path itself allocates
// more".
func idleAllocRate(t *testing.T) float64 {
	t.Helper()
	res := testing.Benchmark(func(b *testing.B) {
		_, stop := benchServer(b, 3, 1)
		defer stop()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			time.Sleep(50 * time.Millisecond)
		}
		b.StopTimer()
	})
	rate := float64(res.AllocsPerOp()) / float64(50*time.Millisecond)
	t.Logf("idle server background: %.3f allocs/ms", rate*1e6)
	return rate
}

// TestServeGrantMetricsAllocs pins the observability tax on the request hot
// path: the instrumented grant cycle must allocate no more per op than the
// pre-metrics baseline recorded in BENCH_serve.json. Counters are sharded
// atomics behind preallocated handles, histogram observation is a bucket
// index plus three atomic adds — none of it should touch the heap. The
// dinesvc extraction and the table router are covered by the same pin: the
// routed single-table path must cost what the monolithic server cost. ns/op
// is deliberately not asserted here (CI machines vary); the ≤5% ns/op check
// runs offline against `go test -bench` output.
func TestServeGrantMetricsAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full server; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race runtime allocates; the baseline is a production build")
	}
	want, ok := baselineMetric(t, "ServeGrant", "allocs/op")
	if !ok {
		t.Skip("no ServeGrant baseline in BENCH_serve.json")
	}
	baseNs, haveNs := baselineMetric(t, "ServeGrant", "ns/op")
	// AllocsPerOp charges the whole process: the server's heartbeat and
	// timer traffic allocates with wall time, not per op, so an op
	// stretched by a loaded machine (e.g. `go test ./...` running every
	// package in parallel) attributes more background allocations to
	// itself. Compensate explicitly: measure the idle server's background
	// rate, and allow each attempt exactly that rate times how much slower
	// than the recorded baseline its ops ran — nothing more. On an
	// unloaded machine the stretch is ~0 and the pin stays exact, while a
	// systematic allocation added by the instruments floors every attempt
	// above its allowance regardless of load.
	bgRate := idleAllocRate(t)
	const attempts = 5
	type att struct{ allocs, allowed, ns int64 }
	var worst att
	for a := 0; a < attempts; a++ {
		res := testing.Benchmark(func(b *testing.B) {
			addr, stop := benchServer(b, 3, 1)
			defer stop()
			cl := dialBench(b, addr)
			defer cl.c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.session(b, 0, fmt.Sprintf("m%d-%d", a, i))
			}
			b.StopTimer()
		})
		allowed := want
		if haveNs {
			if stretch := float64(res.NsPerOp()) - baseNs; stretch > 0 {
				allowed += bgRate * stretch
			}
		}
		t.Logf("attempt %d: ServeGrant with metrics: %d allocs/op (baseline %.0f, load-allowance %.1f), %d ns/op",
			a, res.AllocsPerOp(), want, allowed, res.NsPerOp())
		if float64(res.AllocsPerOp()) <= math.Ceil(allowed) {
			return
		}
		worst = att{allocs: res.AllocsPerOp(), allowed: int64(math.Ceil(allowed)), ns: res.NsPerOp()}
	}
	t.Fatalf("metrics added allocations on the grant path: last attempt %d allocs/op at %d ns/op, allowance %d (baseline %.0f)",
		worst.allocs, worst.ns, worst.allowed, want)
}
