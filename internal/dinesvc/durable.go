package dinesvc

import (
	"sync"
	"sync/atomic"

	"repro/internal/lockproto"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/wal"
)

// durable is the bridge between one in-memory table and its WAL: the
// session registry's journal hook, the fork table's ownership observer, and
// the janitor's snapshot trigger all land here. A nil *durable is the
// non-persistent table; every method tolerates it, so call sites need no
// guards.
//
// A WAL write error is fatal by design: a table that kept granting after
// losing its log would silently drop the very guarantees DataDir was asked
// to provide. What fatal means is the embedder's choice (Config.Fatalf —
// the dineserve binary exits, the library default panics).
type durable struct {
	store    *wal.Store
	sessions *lockproto.Sessions
	// snapEvery bounds replay work: once this many records accumulate, the
	// next janitor pass cuts a snapshot and prunes old segments.
	snapEvery int64
	recsSince atomic.Int64

	fatalf func(format string, args ...any)

	mu    sync.Mutex
	forks map[[2]int]bool // directed (p,q) -> p's hold bit for edge {p,q}
	// clock is the table-tick watermark snapshots are stamped with; the
	// janitor refreshes it each pass so a recovered clock never runs
	// backwards past a snapshot cut.
	clock int64

	// Group-commit barrier state (see barrier): one leader syncs on behalf
	// of every caller that arrived while the previous round was in flight.
	bmu      sync.Mutex
	bcond    *sync.Cond
	syncing  bool
	syncedTo wal.LSN

	// Registry handles, wired by instrument() before traffic starts.
	// nil-safe, so a durable built in a test without metrics still works.
	records *metrics.Counter // journal records appended
	calls   *metrics.Counter // barrier invocations (grants + releases)
	rounds  *metrics.Counter // leader syncs actually issued
}

func newDurable(store *wal.Store, sessions *lockproto.Sessions, snapEvery int64,
	fatalf func(format string, args ...any)) *durable {
	d := &durable{
		store:     store,
		sessions:  sessions,
		snapEvery: snapEvery,
		fatalf:    fatalf,
		forks:     make(map[[2]int]bool),
	}
	d.bcond = sync.NewCond(&d.bmu)
	return d
}

// instrument wires the durability counters into the table's registry slice.
// Called before the listener opens; a durable left uninstrumented just
// counts nothing.
func (d *durable) instrument(m *tableMetrics) {
	if d == nil {
		return
	}
	d.records, d.calls, d.rounds = m.walRecords, m.walBarriers, m.walSyncRounds
}

func (d *durable) fatal(err error) {
	d.fatalf("wal: %v", err)
}

// append journals one record (buffered; durability comes from barrier or
// the store's fsync policy).
func (d *durable) append(rec lockproto.Rec) {
	if d == nil {
		return
	}
	if _, err := d.store.Append(rec.Encode()); err != nil {
		d.fatal(err)
	}
	d.records.Inc()
	d.recsSince.Add(1)
}

// journal is the Sessions journal hook; it runs under the registry lock, so
// WAL order is registry apply order.
func (d *durable) journal(rec lockproto.Rec) { d.append(rec) }

// barrier blocks until everything appended so far is durable (or written,
// under the weaker fsync policies). The grant and release paths call it
// before acknowledging the client, so an acknowledged transition is never
// lost to a crash.
//
// Barriers group-commit: the first caller of a round becomes the leader,
// re-reads the append watermark (picking up every record journaled while it
// waited for the lock) and issues one Sync for all of it; callers that
// arrive mid-round just wait for a round that covers their own watermark.
// Under a grant storm N diner managers acknowledge N grants on one or two
// fsyncs instead of N — the durability ordering is unchanged (each caller
// still returns only once its own records are on disk), only the fsync
// count drops. barrierCalls/syncRounds expose the amortization ratio.
func (d *durable) barrier() {
	if d == nil {
		return
	}
	d.calls.Inc()
	lsn := d.store.Appended()
	d.bmu.Lock()
	for d.syncedTo < lsn {
		if d.syncing {
			// A leader is mid-round; it may have read its target before our
			// records landed, so wait and re-check rather than assume.
			d.bcond.Wait()
			continue
		}
		d.syncing = true
		d.bmu.Unlock()
		target := d.store.Appended() // cover everyone queued behind us too
		err := d.store.Sync(target)
		d.bmu.Lock()
		d.syncing = false
		if target > d.syncedTo {
			d.syncedTo = target
		}
		d.bcond.Broadcast()
		if err != nil {
			d.bmu.Unlock()
			d.fatal(err)
		}
		d.rounds.Inc()
	}
	d.bmu.Unlock()
}

// onFork is the forks.Config observer: mirror the hold bit and journal the
// move. Runs on protocol goroutines. p and q are the table's local proc
// ids — each table's WAL describes its own conflict graph, and the
// diner→table assignment (lockproto.TableOf) is pinned, so local ids are
// stable across restarts.
func (d *durable) onFork(p, q rt.ProcID, hold bool) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.forks[[2]int{int(p), int(q)}] = hold
	d.mu.Unlock()
	d.append(lockproto.Rec{K: lockproto.RecFork, P: int(p), Q: int(q), H: hold})
}

// tick journals the clock watermark and cuts a snapshot if enough records
// accumulated. Called from the table's janitor, once per pass.
func (d *durable) tick(now int64) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.clock = now
	d.mu.Unlock()
	d.append(lockproto.Rec{K: lockproto.RecTick, T: now})
	if d.recsSince.Load() < d.snapEvery {
		return
	}
	d.recsSince.Store(0)
	if err := d.store.Snapshot(d.buildSnapshot); err != nil {
		d.fatal(err)
	}
}

// buildSnapshot serializes the full table state. The wal package calls it
// after rotating, so records already in the new segment may be re-described
// here — lockproto.Replay is idempotent against exactly that overlap.
func (d *durable) buildSnapshot() []byte {
	d.mu.Lock()
	st := lockproto.State{Watermark: d.clock}
	for pq, hold := range d.forks {
		st.Forks = append(st.Forks, lockproto.ForkState{P: pq[0], Q: pq[1], Hold: hold})
	}
	d.mu.Unlock()
	st.Sessions = d.sessions.SnapshotState()
	return st.Encode()
}

// close flushes and closes the store at the end of a drain.
func (d *durable) close() error {
	if d == nil {
		return nil
	}
	return d.store.Close()
}
