package dinesvc

import (
	"sync"

	"repro/internal/lockproto"
	"repro/internal/metrics"
	"repro/internal/rt"
)

// suspectFeed is an rt.Tracer that mirrors the extraction oracle's
// suspect/trust records into per-subscriber channels, and keeps the current
// suspicion matrix so a new watcher starts from a consistent snapshot.
// Record delivery is already serialized by the runtime's emit lock; the
// feed's own mutex makes snapshot-plus-subscribe atomic against it.
//
// The oracle runs over one table's runtime, whose proc ids are table-local;
// the feed translates them through globals so the watch stream speaks the
// same diner ids clients acquire with. A single-table service passes the
// identity mapping.
type suspectFeed struct {
	inst    string
	globals []int // local proc id → global diner id

	// Churn counters, assigned once by newTable before the runtime starts
	// (nil-safe: a feed built outside a table just skips them).
	suspects *metrics.Counter
	trusts   *metrics.Counter
	droppedC *metrics.Counter

	mu      sync.Mutex
	cur     map[[2]int]bool
	subs    map[int]chan lockproto.Event
	nextID  int
	dropped int64 // events not delivered to slow watchers
}

func newSuspectFeed(inst string, globals []int) *suspectFeed {
	return &suspectFeed{
		inst:    inst,
		globals: globals,
		cur:     make(map[[2]int]bool),
		subs:    make(map[int]chan lockproto.Event),
	}
}

// global maps a table-local proc id to the global diner id clients see.
func (f *suspectFeed) global(p int) int {
	if p >= 0 && p < len(f.globals) {
		return f.globals[p]
	}
	return p
}

// Trace implements rt.Tracer.
func (f *suspectFeed) Trace(r rt.Record) {
	if r.Inst != f.inst || (r.Kind != "suspect" && r.Kind != "trust") {
		return
	}
	ev := lockproto.Event{
		Ev: lockproto.EvSuspect,
		Of: f.global(int(r.P)), Peer: f.global(int(r.Peer)),
		Suspect: r.Kind == "suspect",
		T:       int64(r.T),
	}
	if ev.Suspect {
		f.suspects.Inc()
	} else {
		f.trusts.Inc()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.Suspect {
		f.cur[[2]int{ev.Of, ev.Peer}] = true
	} else {
		delete(f.cur, [2]int{ev.Of, ev.Peer})
	}
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			f.dropped++
			f.droppedC.Inc()
		}
	}
}

// subscribe returns the current suspicion matrix as events, a channel that
// will carry every subsequent change, and a cancel function.
func (f *suspectFeed) subscribe() ([]lockproto.Event, <-chan lockproto.Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	snapshot := make([]lockproto.Event, 0, len(f.cur))
	for pq := range f.cur {
		snapshot = append(snapshot, lockproto.Event{
			Ev: lockproto.EvSuspect, Of: pq[0], Peer: pq[1], Suspect: true,
		})
	}
	id := f.nextID
	f.nextID++
	ch := make(chan lockproto.Event, 256)
	f.subs[id] = ch
	cancel := func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}
	return snapshot, ch, cancel
}

// multiTracer fans one record stream out to several tracers.
type multiTracer []rt.Tracer

// Trace implements rt.Tracer.
func (m multiTracer) Trace(r rt.Record) {
	for _, t := range m {
		t.Trace(r)
	}
}
