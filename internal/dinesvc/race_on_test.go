//go:build race

package dinesvc

// raceEnabled reports whether the race detector is compiled in; the
// allocation-delta test skips under it because the race runtime itself
// allocates on paths the production build does not.
const raceEnabled = true
