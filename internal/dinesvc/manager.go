package dinesvc

import (
	"sync/atomic"
	"time"

	"repro/internal/dining"
	"repro/internal/lockproto"
	"repro/internal/rt"
)

// dinerMgr serializes sessions onto one diner: pop an acquire, make the
// diner hungry, wait for the dining layer's grant, hand the critical section
// to the client, and exit when the client releases, disappears past its
// lease, or released while still queued. All diner calls go through Invoke,
// so they are steps of the diner's process.
//
// The manager lives on a table: p is the diner's local proc id on that
// table's runtime, while the sessions it serves carry the global diner id
// (ses.key.Diner) — the id clients speak and the registry records.
type dinerMgr struct {
	t      *Table
	p      rt.ProcID // table-local proc id
	d      dining.Diner
	queue  chan *session
	grant  chan struct{} // pulsed by OnChange(Eating)
	idle   chan struct{} // pulsed by OnChange(Thinking)
	eating atomic.Bool   // mirrors the diner's state, set in OnChange
}

// hungry best-effort requests the critical section; refused while the diner
// process is crashed (a chaos restart re-triggers via the idle pulse).
func (m *dinerMgr) hungry() {
	m.t.r.Invoke(m.p, func() {
		if m.d.State() == dining.Thinking {
			m.d.Hungry()
		}
	})
}

// exitCS best-effort leaves the critical section.
func (m *dinerMgr) exitCS() {
	m.t.r.Invoke(m.p, func() {
		if m.d.State() == dining.Eating {
			m.d.Exit()
		}
	})
}

// waitIdle blocks until the diner is back to thinking (or the service
// stops). Returns false on stop.
func (m *dinerMgr) waitIdle() bool {
	for {
		select {
		case <-m.idle:
			if !m.eating.Load() {
				return true
			}
		case <-m.t.svc.stop:
			return false
		}
	}
}

func (m *dinerMgr) run() {
	t := m.t
	for {
		var ses *session
		select {
		case ses = <-m.queue:
		case <-t.svc.stop:
			return
		}
		// Stale pulses from a previous cycle (or a chaos restart) must not
		// satisfy this session's waits.
		drainPulse(m.grant)
		drainPulse(m.idle)
		m.hungry()
		// Wait for the dining layer's grant. A crash/restart of the diner's
		// process knocks it back to Thinking (pulsing idle); re-request
		// instead of wedging forever.
	grantWait:
		for {
			select {
			case <-m.grant:
				if m.eating.Load() {
					break grantWait
				}
				// Stale pulse (crash hit right after the transition): the
				// restart's idle pulse will re-trigger hungry below.
			case <-m.idle:
				m.hungry()
			case <-t.svc.stop:
				t.inFlight.Add(-1)
				return
			}
		}
		if ses.regrant {
			// Recovered grant: the registry already shows this session in
			// the critical section — the crash just evicted it from the
			// dining layer, which we have now re-won. No second registry
			// transition, no second grant journal record.
			t.m.regranted.Inc()
			t.m.held.Add(1)
			select {
			case <-ses.release:
				// Released (or janitor-expired) while we were re-winning:
				// fall through to the exit without re-announcing the grant,
				// so the client never sees EvGranted after its release.
			default:
				ses.markGranted(lockproto.Event{
					Ev: lockproto.EvGranted, Diner: ses.key.Diner, ID: ses.key.ID, T: t.now(),
				})
			}
		} else if !t.sessions.Grant(ses.key, t.now()) {
			// Released or expired while queued: hand the section straight
			// back without ever exposing it.
			m.exitCS()
			if !m.waitIdle() {
				t.inFlight.Add(-1)
				return
			}
			t.dropSession(ses.key)
			t.inFlight.Add(-1)
			continue
		} else {
			// The grant record must be on disk before the client can act on
			// the grant — an acknowledged critical section that a crash
			// forgets would be re-granted on recovery.
			t.dur.barrier()
			t.m.granted.Inc()
			t.m.held.Add(1)
			t.m.grantLat.ObserveDuration(time.Since(ses.start))
			ses.markGranted(lockproto.Event{
				Ev: lockproto.EvGranted, Diner: ses.key.Diner, ID: ses.key.ID, T: t.now(),
			})
		}
		select {
		case <-ses.release:
		case <-t.svc.stop:
			t.inFlight.Add(-1)
			return
		}
		m.exitCS()
		if !m.waitIdle() {
			t.inFlight.Add(-1)
			return
		}
		t.m.released.Inc()
		t.m.held.Add(-1)
		// Same durability rule as the grant: the release record must not be
		// lost once the client has seen the ack, or recovery would resurrect
		// a finished session.
		t.dur.barrier()
		ses.notify(lockproto.Event{
			Ev: lockproto.EvReleased, Diner: ses.key.Diner, ID: ses.key.ID, T: t.now(),
		})
		t.dropSession(ses.key)
		t.inFlight.Add(-1)
	}
}

func pulse(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func drainPulse(ch chan struct{}) {
	select {
	case <-ch:
	default:
	}
}
