// Package dinesvc is the embeddable service kernel behind the dineserve
// binary: wait-free dining under eventual weak exclusion (◇WX), exposed as
// a networked lock/session service. It hosts N diners arbitrated by the
// forks algorithm over a heartbeat ◇P on the live runtime, optionally runs
// the paper's ◇P extraction alongside (feeding the watch stream), journals
// every session transition to a crash-consistent WAL, and validates each
// run's trace with the ◇WX checker at drain.
//
// The kernel is layered in two:
//
//   - Table is one independent dining table: runtime + conflict graph +
//     forks + session registry + suspect feed + janitor + WAL, recovered
//     and audited in isolation.
//   - Service owns the shared edges: the listener and accept loop, the
//     key→table router (the pinned lockproto.TableOf hash of the diner
//     id), drain/verdict fan-in, and the metrics registry every table's
//     labeled instruments land in.
//
// A Config with Tables=1 is byte-compatible with the historical
// single-table server: same wire format, same flat WAL layout, same metric
// names, same log lines. Tables=N splits the diners over N tables, each
// with its own WAL directory (<data-dir>/table-<i>/) and its own ◇WX
// verdict; nothing is shared between tables but the process.
package dinesvc

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checker"
	"repro/internal/lockproto"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/wal"
)

// ErrUsage wraps configuration errors a caller should treat as bad input
// (the binary exits 2) rather than a runtime failure (exit 1).
var ErrUsage = errors.New("invalid configuration")

// Config describes a service. Zero values take the documented defaults.
type Config struct {
	// N is the total diner count, ids 0..N-1 (min 2).
	N int
	// Tables shards the diners over this many independent dining tables
	// via lockproto.TableOf (default 1; max N).
	Tables int
	// Topology is the per-table conflict graph: "ring" (default) or
	// "clique". Tables too small for the named topology densify: two
	// diners conflict pairwise, one diner has no conflicts.
	Topology string
	// Tick is the wall-clock duration of one protocol tick (default 1ms).
	Tick time.Duration
	// HBTimeout is the initial heartbeat suspicion timeout in ticks
	// (default 600).
	HBTimeout int
	// Extract runs the ◇P extraction alongside each served table, feeding
	// the watch stream.
	Extract bool
	// Lease is how long a disconnected client's session survives before
	// forced release (0: forever).
	Lease time.Duration
	// MaxInflight bounds accepted-but-unfinished sessions service-wide;
	// beyond it new acquires are shed with "overloaded" (0: unlimited).
	MaxInflight int64
	// FlushBatch / FlushDelay tune each connection's coalescing writer
	// (zero: lockproto defaults).
	FlushBatch int
	FlushDelay time.Duration

	// DataDir enables persistence: the WAL+snapshot directory (flat for
	// one table, table-<i>/ subdirectories for more). Empty disables.
	DataDir string
	// Fsync is the WAL durability policy: "always" (default), "interval",
	// or "never".
	Fsync string
	// FsyncInterval is the background fsync cadence under Fsync="interval"
	// (default 50ms).
	FsyncInterval time.Duration
	// SnapRecords cuts a snapshot after this many WAL records per table
	// (default 4096).
	SnapRecords int64

	// Registry receives every instrument (default: a fresh registry,
	// reachable via Service.Registry).
	Registry *metrics.Registry
	// Logf receives one-line progress messages without trailing newline
	// (default: discard). The dineserve binary prefixes them "dineserve: ".
	Logf func(format string, args ...any)
	// Fatalf handles unrecoverable mid-run faults, e.g. a WAL write error
	// (default: panic). The binary prints and exits 1. Must not return
	// normally.
	Fatalf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Tables <= 0 {
		c.Tables = 1
	}
	if c.Topology == "" {
		c.Topology = "ring"
	}
	if c.Tick <= 0 {
		c.Tick = time.Millisecond
	}
	if c.HBTimeout <= 0 {
		c.HBTimeout = 600
	}
	if c.Fsync == "" {
		c.Fsync = "always"
	}
	if c.FsyncInterval <= 0 {
		c.FsyncInterval = 50 * time.Millisecond
	}
	if c.SnapRecords <= 0 {
		c.SnapRecords = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Fatalf == nil {
		c.Fatalf = func(format string, args ...any) {
			panic("dinesvc: " + fmt.Sprintf(format, args...))
		}
	}
	return c
}

// Service is a booted dining-lock service: the shard array plus everything
// the shards share — the listener, the connection set, the diner→table
// router, and the stop/drain machinery.
type Service struct {
	cfg        Config
	reg        *metrics.Registry
	m          *svcMetrics
	leaseTicks int64

	tables  []*Table
	tableOf []int // global diner id → table index
	localOf []int // global diner id → local proc id on its table

	ln       net.Listener
	stop     chan struct{}
	draining atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	logf   func(format string, args ...any)
	fatalf func(format string, args ...any)
}

// New validates cfg, recovers every table's WAL (refusing to boot from a
// ledger that proves a safety violation), and builds the full runtime stack
// for each table. Nothing serves or steps yet — call Listen.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: need at least 2 diners", ErrUsage)
	}
	if cfg.Tables > cfg.N {
		return nil, fmt.Errorf("%w: %d tables for %d diners", ErrUsage, cfg.Tables, cfg.N)
	}
	if cfg.Topology != "ring" && cfg.Topology != "clique" {
		return nil, fmt.Errorf("%w: unknown topology %q", ErrUsage, cfg.Topology)
	}
	var pol wal.Policy
	if cfg.DataDir != "" {
		var err error
		if pol, err = wal.ParsePolicy(cfg.Fsync); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrUsage, err)
		}
		// The on-disk layout is part of the data's meaning: a flat directory
		// was written by one table, table-<i>/ subdirectories by exactly
		// that many. Refusing a mismatched Tables value here beats silently
		// recovering a fraction of the history.
		layout, err := wal.DetectLayout(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		if layout != 0 && layout != cfg.Tables {
			return nil, fmt.Errorf("data dir %s was written with %d table(s), refusing to open it with %d",
				cfg.DataDir, layout, cfg.Tables)
		}
	}

	reg := cfg.Registry
	if reg == nil {
		reg = metrics.New()
	}
	s := &Service{
		cfg:    cfg,
		reg:    reg,
		stop:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		logf:   cfg.Logf,
		fatalf: cfg.Fatalf,
	}
	if cfg.Lease > 0 {
		s.leaseTicks = int64(cfg.Lease / cfg.Tick)
	}
	s.m = newSvcMetrics(reg)
	s.m.observeService(s)

	// Partition the diners: tableOf/localOf are the routing tables every
	// request consults, globals[i] the reverse map each table translates
	// its trace through.
	s.tableOf = make([]int, cfg.N)
	s.localOf = make([]int, cfg.N)
	globals := make([][]int, cfg.Tables)
	for d := 0; d < cfg.N; d++ {
		ti := lockproto.TableOf(d, cfg.Tables)
		s.tableOf[d] = ti
		s.localOf[d] = len(globals[ti])
		globals[ti] = append(globals[ti], d)
	}

	for i := 0; i < cfg.Tables; i++ {
		t, err := newTable(s, i, globals[i], pol)
		if err != nil {
			for _, prev := range s.tables {
				prev.dur.close()
			}
			return nil, err
		}
		s.tables = append(s.tables, t)
	}
	return s, nil
}

// Registry exposes the instrument registry (for an HTTP exposition handler
// or a test scrape).
func (s *Service) Registry() *metrics.Registry { return s.reg }

// Tables exposes the shard array (read-only use).
func (s *Service) Tables() []*Table { return append([]*Table(nil), s.tables...) }

// tableFor routes a global diner id to its table.
func (s *Service) tableFor(diner int) *Table { return s.tables[s.tableOf[diner]] }

// namerFor renders one table's instrument names: bare for a single-table
// service (the historical inventory), labeled {table="i"} when sharded.
func (s *Service) namerFor(idx int) func(string) string {
	if s.cfg.Tables <= 1 {
		return func(base string) string { return base }
	}
	label := strconv.Itoa(idx)
	return func(base string) string { return metrics.WithLabels(base, "table", label) }
}

// now is the service clock for table-agnostic responses (OpInfo): the first
// hosted table's clock.
func (s *Service) now() int64 {
	for _, t := range s.tables {
		if t.r != nil {
			return t.now()
		}
	}
	return 0
}

// inFlightTotal sums accepted-but-unfinished sessions across tables — the
// shedding bound and the drain loop both want the service-wide number.
func (s *Service) inFlightTotal() int64 {
	var n int64
	for _, t := range s.tables {
		n += t.inFlight.Load()
	}
	return n
}

// Listen resumes every table's recovered sessions, starts the runtimes,
// managers, and janitors, opens the listener, and begins accepting. The
// resume happens strictly before the first accept, so a reconnecting client
// always finds its session already queued.
func (s *Service) Listen(addr string) (net.Listener, error) {
	for _, t := range s.tables {
		if t.recovered != nil && len(t.recovered.Live) > 0 {
			t.resume(t.recovered.Live)
		}
		if t.r != nil {
			t.r.Start()
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	for _, t := range s.tables {
		for _, m := range t.mgrs {
			go m.run()
		}
		if t.r != nil {
			go t.janitor()
		}
	}
	go s.accept()
	if s.cfg.Tables > 1 {
		s.logf("listening on %s (%d diners over %d tables, %s)", ln.Addr(), s.cfg.N, s.cfg.Tables, s.cfg.Topology)
	} else {
		s.logf("listening on %s (%d diners, %s)", ln.Addr(), s.cfg.N, s.cfg.Topology)
	}
	return ln, nil
}

// Addr is the bound listen address (nil before Listen).
func (s *Service) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Service) accept() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: we are draining
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		go s.handleConn(c)
	}
}

// ChaosCrash schedules a one-shot crash/restart of one diner's process (on
// whichever table hosts it) after the given delay — the live-runtime chaos
// leg of the crash scripts.
func (s *Service) ChaosCrash(diner int, at, restartAfter time.Duration) error {
	if diner < 0 || diner >= s.cfg.N {
		return fmt.Errorf("%w: no such diner %d", ErrUsage, diner)
	}
	t := s.tableFor(diner)
	p := rt.ProcID(s.localOf[diner])
	go func() {
		select {
		case <-time.After(at):
		case <-s.stop:
			return
		}
		s.logf("chaos — crashing diner %d", diner)
		t.r.Crash(p)
		time.Sleep(restartAfter)
		if t.r.Restart(p, func() {
			t.tbl.Reset(p)
			t.hb.Reset(p)
		}) {
			s.logf("chaos — diner %d restarted", diner)
		}
	}()
	return nil
}

// Drain stops accepting work, waits (bounded) for in-flight sessions to
// finish, then tears down connections, managers, runtimes, and WALs. Each
// table's end-of-run clock is recorded for Verdict.
func (s *Service) Drain(timeout time.Duration) {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for s.inFlightTotal() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if left := s.inFlightTotal(); left > 0 {
		s.logf("drain timeout with %d sessions in flight", left)
	}
	close(s.stop)
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	for _, t := range s.tables {
		if t.r != nil {
			t.end = t.r.Now()
			t.r.Stop()
		}
		if err := t.dur.close(); err != nil {
			s.logf("%swal close: %v", t.logPrefix(), err)
		}
	}
}

// Summary logs the run's exit-time telemetry. It reads the same registry a
// metrics scrape serves, so the final numbers and a mid-run scrape can
// never disagree.
func (s *Service) Summary() {
	var granted, regranted, released, expired, shed, steps, msgs int64
	var barriers, rounds int64
	for _, t := range s.tables {
		granted += t.m.granted.Value()
		regranted += t.m.regranted.Value()
		released += t.m.released.Value()
		expired += t.m.expired.Value()
		shed += t.m.shed.Value()
		barriers += t.m.walBarriers.Value()
		rounds += t.m.walSyncRounds.Value()
		if t.r != nil {
			steps += t.r.Counter("steps")
			msgs += t.r.Counter("msg.delivered")
		}
	}
	s.logf("granted=%d regranted=%d released=%d expired=%d shed=%d steps=%d msgs=%d",
		granted, regranted, released, expired, shed, steps, msgs)
	if ev := s.m.wireEvents.Value(); ev > 0 {
		s.logf("wire events=%d writes=%d (%.1f events/write)",
			ev, s.m.wireWrites.Value(), float64(ev)/float64(max64(s.m.wireWrites.Value(), 1)))
	}
	if barriers > 0 {
		s.logf("durability barriers=%d fsync-rounds=%d (%.1f barriers/fsync)",
			barriers, rounds, float64(barriers)/float64(max64(rounds, 1)))
	}
}

// Verdict runs the ◇WX checker over every table's trace: the service's
// whole life is the run, and exclusion mistakes must have stopped by its
// midpoint. With no crashes and sane timeouts there are normally no
// violations at all. The first failing table's error is returned; passing
// tables log their verdict lines either way. Call after Drain.
func (s *Service) Verdict() error {
	var firstErr error
	for _, t := range s.tables {
		if t.r == nil {
			continue
		}
		rep, err := checker.EventualWeakExclusion(t.log, t.g, tableInst, t.end/2, t.end)
		if err != nil {
			err = fmt.Errorf("%s%v (%d violations)", t.errPrefix(), err, len(rep.Violations))
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		s.logf("%sexclusion check OK — %d violations, all before t=%d (run end t=%d)",
			t.logPrefix(), len(rep.Violations), t.end/2, t.end)
	}
	return firstErr
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
