package dinesvc

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/lockproto"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wal"
)

const (
	tableInst = "dine" // served dining table's trace instance
	extInst   = "ex"   // extraction oracle's trace instance
	queueCap  = 1024   // pending acquires per diner before "busy"
)

// Table is one independent dining table: its own live runtime hosting the
// diners assigned to it, its own conflict graph and forks arbitration over
// a heartbeat ◇P, its own session registry, suspect feed, lease janitor,
// and (when the service is durable) its own WAL recovered in isolation.
// Tables share nothing but the listener and the accept loop; a stalled
// fsync or a grant storm on one table never blocks another.
//
// Diner ids are global on the wire and in the registry (lockproto.Key);
// each table maps them to local proc ids 0..k-1 on its runtime via the
// pinned lockproto.TableOf assignment.
type Table struct {
	idx     int
	svc     *Service
	globals []int // local proc id → global diner id

	g    *graph.Graph
	r    *live.Runtime // nil for a table no diner hashes to
	bus  *live.ChanBus
	log  *trace.Log
	feed *suspectFeed
	hb   *detector.Heartbeat
	tbl  *forks.Table
	mgrs []*dinerMgr // indexed by local proc id

	sessions *lockproto.Sessions
	dur      *durable // nil: no persistence
	// clockBase offsets the runtime's tick clock so table time resumes
	// from the recovered watermark instead of restarting at zero — the
	// lease arithmetic (lastSeen vs now) only works if time never rewinds.
	clockBase int64
	recovered *lockproto.Recovered

	byKey    sessionTable
	inFlight atomic.Int64 // sessions accepted but not yet finished

	m *tableMetrics

	// end is the runtime clock at drain, recorded before Stop so the ◇WX
	// verdict judges exactly the served run.
	end rt.Time
}

// Index reports the table's position in the service's shard array.
func (t *Table) Index() int { return t.idx }

// Diners lists the global diner ids this table hosts, in local proc order.
func (t *Table) Diners() []int { return append([]int(nil), t.globals...) }

// now is the table clock: runtime ticks offset by the recovered watermark.
func (t *Table) now() int64 {
	if t.r == nil {
		return t.clockBase
	}
	return t.clockBase + int64(t.r.Now())
}

// mgrFor returns the manager serving a global diner id hosted here.
func (t *Table) mgrFor(diner int) *dinerMgr { return t.mgrs[t.svc.localOf[diner]] }

func (t *Table) dropSession(k lockproto.Key) { t.byKey.del(k) }

// topoGraph builds one table's conflict graph over its local proc ids. The
// named topologies need minimum sizes (a ring needs 3 nodes, a clique 2),
// so small shards degrade to the densest graph that exists at their size:
// two diners conflict pairwise under either topology, and a lone diner has
// no conflicts at all (its fork set is empty, so it eats freely — exactly
// the dining semantics of an isolated vertex).
func topoGraph(topology string, k int) (*graph.Graph, error) {
	if k == 1 {
		g := graph.New()
		g.Add(0)
		return g, nil
	}
	switch topology {
	case "ring":
		if k == 2 {
			return graph.Pair(0, 1), nil
		}
		return graph.Ring(k), nil
	case "clique":
		return graph.Clique(k), nil
	}
	return nil, fmt.Errorf("%w: unknown topology %q", ErrUsage, topology)
}

// newTable boots one shard: WAL recovery first (the ledger decides the
// session registry, fork seeding, and clock base everything else builds
// on), then the runtime stack. The table does not start serving — Listen
// resumes recovered sessions and starts the runtime once every table has
// booted, so a recovery error on table 3 never leaves tables 0–2 accepting
// traffic.
func newTable(svc *Service, idx int, globals []int, pol wal.Policy) (*Table, error) {
	cfg := &svc.cfg
	t := &Table{idx: idx, svc: svc, globals: globals}
	t.m = newTableMetrics(svc.reg, svc.namerFor(idx))
	t.byKey.init()

	leaseTicks := svc.leaseTicks
	t.sessions = lockproto.NewSessions(leaseTicks)

	if cfg.DataDir != "" {
		dir := cfg.DataDir
		if cfg.Tables > 1 {
			dir = wal.TableDir(cfg.DataDir, idx)
		}
		store, walRec, err := wal.Open(dir, wal.Options{
			Policy: pol, Interval: cfg.FsyncInterval,
			OnSync: func(records int64, d time.Duration) {
				t.m.walFsyncs.Inc()
				t.m.walFsyncLat.ObserveDuration(d)
				if records > 0 {
					t.m.walBatch.Observe(records)
				}
			},
		})
		if err != nil {
			return nil, fmt.Errorf("%swal: %v", t.errPrefix(), err)
		}
		recovered, err := lockproto.Replay(leaseTicks, walRec.Snapshot, walRec.Records)
		if err != nil {
			store.Close()
			return nil, fmt.Errorf("%swal replay: %v", t.errPrefix(), err)
		}
		if len(recovered.Violations) > 0 {
			// The ledger proves the pre-crash run broke safety; refusing to
			// serve from it beats laundering the violation into a new run.
			store.Close()
			return nil, fmt.Errorf("%sledger violation: %s", t.errPrefix(), recovered.Violations[0])
		}
		t.recovered = recovered
		t.sessions = recovered.Sessions
		t.clockBase = recovered.Watermark
		t.sessions.ResetBindings(t.clockBase)
		nGranted := 0
		for _, rs := range recovered.Live {
			if rs.Granted {
				nGranted++
			}
		}
		svc.logf("%srecovered %d live sessions (%d granted), %d fork edges, watermark t=%d, torn tail %d bytes",
			t.logPrefix(), len(recovered.Live), nGranted, len(recovered.Forks), t.clockBase, walRec.TornBytes)
		t.dur = newDurable(store, t.sessions, cfg.SnapRecords, svc.fatalf)
		t.dur.instrument(t.m)
		t.sessions.SetJournal(t.dur.journal)
	}

	k := len(globals)
	if k == 0 {
		// No diner hashes here (possible when tables is close to n). The
		// table still owns its WAL directory — the on-disk layout stays
		// contiguous — but hosts no runtime and never sees traffic.
		return t, nil
	}

	g, err := topoGraph(cfg.Topology, k)
	if err != nil {
		t.dur.close()
		return nil, err
	}
	t.g = g
	t.log = &trace.Log{}
	t.feed = newSuspectFeed(extInst, globals)
	t.feed.suspects, t.feed.trusts, t.feed.droppedC = t.m.suspects, t.m.trusts, t.m.watchDropped
	// Name the bus explicitly (live.New would default to the same one) so
	// its delivery counters can be sampled by the registry.
	t.bus = live.NewChanBus()
	t.r = live.New(live.Config{
		N:      k,
		Tick:   cfg.Tick,
		Tracer: multiTracer{t.log, t.feed},
		Bus:    t.bus,
	})
	t.m.observeRuntime(t.r)
	t.m.observeBus(t.bus)
	t.m.observeTable(t)
	t.hb = detector.NewHeartbeat(t.r, "hb", detector.HeartbeatConfig{
		Interval: 20, Check: 10,
		Timeout: rt.Time(cfg.HBTimeout), Bump: rt.Time(cfg.HBTimeout) / 2,
	})
	tableCfg := forks.Config{}
	if t.dur != nil {
		tableCfg.OnFork = t.dur.onFork
		if t.recovered != nil && len(t.recovered.Forks) > 0 {
			forkSeed := t.recovered.Forks
			tableCfg.Seed = func(p, q rt.ProcID) bool {
				e := lockproto.Edge{P: int(p), Q: int(q)}
				lower := true
				if e.P > e.Q {
					e.P, e.Q, lower = e.Q, e.P, false
				}
				lowerHolds, ok := forkSeed[e]
				if !ok {
					return p < q // edge never journaled: default placement
				}
				return lowerHolds == lower
			}
		}
	}
	t.tbl = forks.New(t.r, g, tableInst, t.hb, tableCfg)
	if cfg.Extract {
		procs := make([]rt.ProcID, k)
		for i := range procs {
			procs[i] = rt.ProcID(i)
		}
		core.NewExtractor(t.r, procs, forks.Factory(t.hb, forks.Config{}), extInst)
	}

	for _, p := range g.Nodes() {
		m := &dinerMgr{
			t:     t,
			p:     p,
			d:     t.tbl.Diner(p),
			queue: make(chan *session, queueCap),
			grant: make(chan struct{}, 1),
			idle:  make(chan struct{}, 1),
		}
		// Registered before Start: both callbacks run on p's goroutine. The
		// eating flag lets the manager distinguish a real grant from a stale
		// pulse left behind by a chaos crash/restart.
		m.d.OnChange(func(st dining.State) {
			m.eating.Store(st == dining.Eating)
			switch st {
			case dining.Eating:
				pulse(m.grant)
			case dining.Thinking:
				pulse(m.idle)
			}
		})
		t.mgrs = append(t.mgrs, m)
	}
	return t, nil
}

// logPrefix tags per-table log lines in a sharded service; a single-table
// service keeps the historical untagged lines.
func (t *Table) logPrefix() string {
	if t.svc.cfg.Tables <= 1 {
		return ""
	}
	return fmt.Sprintf("table %d: ", t.idx)
}

// errPrefix is logPrefix for error text.
func (t *Table) errPrefix() string { return t.logPrefix() }

// resume re-enqueues the sessions a crash left in flight, in their original
// acquire order. Granted ones carry the regrant flag: they already own the
// critical section in the registry, so their manager re-wins the dining
// layer's grant without a second registry transition (and without a second
// grant journal record). Must run before the listener accepts traffic, so a
// reconnecting client always finds its session already queued.
func (t *Table) resume(live []lockproto.RecoveredSession) int {
	granted := 0
	for _, rs := range live {
		d := rs.Key.Diner
		if d < 0 || d >= t.svc.cfg.N || t.svc.tableOf[d] != t.idx {
			// The ledger was written under a different diner count or table
			// assignment than this boot; shed the foreign session rather
			// than wedge (or mis-route) the boot.
			t.svc.logf("%sdropping recovered session for diner %d: not hosted by this table", t.logPrefix(), d)
			t.dropSession(rs.Key)
			t.sessions.Abort(rs.Key)
			continue
		}
		ses := newSession(rs.Key)
		ses.regrant = rs.Granted
		if rs.Granted {
			granted++
		}
		t.byKey.put(rs.Key, ses)
		t.inFlight.Add(1)
		select {
		case t.mgrFor(d).queue <- ses:
		default:
			// A queue this full can only come from a corrupt ledger; shed
			// the session rather than wedge the boot.
			t.inFlight.Add(-1)
			t.dropSession(rs.Key)
			t.sessions.Abort(rs.Key)
		}
	}
	return granted
}

// janitor periodically expires detached sessions whose lease ran out. A
// granted one gets its critical section forcibly released — the dining
// service stays wait-free even when clients die silently.
func (t *Table) janitor() {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-t.svc.stop:
			return
		}
		now := t.now()
		t.dur.tick(now)
		for _, e := range t.sessions.Expire(now) {
			t.m.expired.Inc()
			if ses := t.byKey.get(e.Key); ses != nil && e.WasGranted {
				ses.finishRelease()
			}
		}
	}
}
