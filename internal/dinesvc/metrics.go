package dinesvc

import (
	"repro/internal/live"
	"repro/internal/metrics"
)

// The instrument inventory keeps the dineserve_ name prefix — dinesvc is the
// embeddable kernel of that service, and every dashboard, smoke script, and
// scrape assertion built against the binary keys on these exact series
// names. Instruments are always live; whether an HTTP listener exposes them
// is the embedder's business.
//
// The inventory splits along the sharding boundary:
//
//   - svcMetrics is per process: the outbound wire is per connection and
//     connections are shared by every table, so the coalescing counters
//     cannot be attributed to one table.
//   - tableMetrics is per table, built through a naming function. A
//     single-table service names its instruments bare (byte-identical to the
//     pre-sharding inventory); a sharded one names them through
//     metrics.WithLabels(name, "table", i), so N tables expose N labeled
//     series under one metric family.

// svcMetrics is the service-wide instrument set.
type svcMetrics struct {
	reg *metrics.Registry

	// Outbound wire (per-connection FlushWriter coalescing).
	wireWrites *metrics.Counter
	wireEvents *metrics.Counter
	wireBytes  *metrics.Counter
}

func newSvcMetrics(reg *metrics.Registry) *svcMetrics {
	m := &svcMetrics{reg: reg}
	m.wireWrites = reg.Counter("dineserve_wire_writes_total",
		"socket writes across all connections")
	m.wireEvents = reg.Counter("dineserve_wire_events_total",
		"events those writes carried (coalescing ratio = events/writes)")
	m.wireBytes = reg.Counter("dineserve_wire_bytes_total",
		"bytes written to client sockets")
	return m
}

// observeService registers the scrape-time gauges over shared service state.
func (m *svcMetrics) observeService(s *Service) {
	m.reg.GaugeFunc("dineserve_connections",
		"open client connections",
		func() int64 {
			s.connMu.Lock()
			n := len(s.conns)
			s.connMu.Unlock()
			return int64(n)
		})
}

// tableMetrics is one table's instrument set — every counter, gauge, and
// histogram a dining table maintains, registered once at boot and updated
// through preallocated handles so the request hot path stays at 0 extra
// allocs/op (pinned by TestServeGrantMetricsAllocs).
//
// Naming scheme: dineserve_<subsystem>_<what>[_<unit>][_total], rendered
// through the table's naming function. Counters end in _total; histograms
// carry their exposition unit (_seconds scaled from the raw microsecond
// observations, _records unscaled); gauges are bare nouns.
type tableMetrics struct {
	reg  *metrics.Registry
	name func(string) string

	// Session lifecycle (the dining-lock service proper).
	granted   *metrics.Counter
	regranted *metrics.Counter
	released  *metrics.Counter
	expired   *metrics.Counter
	shed      *metrics.Counter
	held      *metrics.Gauge // sessions currently in the critical section
	grantLat  *metrics.Hist  // acquire received → grant sent, server-side

	// ◇P extraction watch stream (suspect churn: transitions per direction).
	suspects     *metrics.Counter
	trusts       *metrics.Counter
	watchDropped *metrics.Counter

	// Durability (WAL + group-commit barrier).
	walRecords    *metrics.Counter
	walFsyncs     *metrics.Counter
	walBarriers   *metrics.Counter
	walSyncRounds *metrics.Counter
	walFsyncLat   *metrics.Hist
	walBatch      *metrics.Hist
}

func newTableMetrics(reg *metrics.Registry, name func(string) string) *tableMetrics {
	m := &tableMetrics{reg: reg, name: name}

	m.granted = reg.Counter(name("dineserve_sessions_granted_total"),
		"sessions granted the critical section")
	m.regranted = reg.Counter(name("dineserve_sessions_regranted_total"),
		"recovered grants re-entered after a restart")
	m.released = reg.Counter(name("dineserve_sessions_released_total"),
		"granted sessions that exited the critical section")
	m.expired = reg.Counter(name("dineserve_sessions_expired_total"),
		"sessions reclaimed by the lease janitor")
	m.shed = reg.Counter(name("dineserve_sessions_shed_total"),
		"acquires refused with overloaded")
	m.held = reg.Gauge(name("dineserve_sessions_held"),
		"sessions currently holding the critical section")
	m.grantLat = reg.Histogram(name("dineserve_grant_latency_seconds"),
		"server-side acquire-to-grant latency", 1e-6)

	m.suspects = reg.Counter(name("dineserve_suspect_transitions_total"),
		"trust->suspect transitions on the extraction watch stream")
	m.trusts = reg.Counter(name("dineserve_trust_transitions_total"),
		"suspect->trust transitions on the extraction watch stream")
	m.watchDropped = reg.Counter(name("dineserve_watch_dropped_total"),
		"watch events not delivered to slow subscribers")

	m.walRecords = reg.Counter(name("dineserve_wal_records_total"),
		"journal records appended to the WAL")
	m.walFsyncs = reg.Counter(name("dineserve_wal_fsyncs_total"),
		"fsyncs the WAL store issued")
	m.walBarriers = reg.Counter(name("dineserve_wal_barriers_total"),
		"durability barriers (grant and release acknowledgements)")
	m.walSyncRounds = reg.Counter(name("dineserve_wal_sync_rounds_total"),
		"barrier leader rounds (barriers/rounds = group-commit amortization)")
	m.walFsyncLat = reg.Histogram(name("dineserve_wal_fsync_seconds"),
		"WAL fsync latency", 1e-6)
	m.walBatch = reg.Histogram(name("dineserve_wal_batch_records"),
		"records made durable per fsync (group-commit batch size)", 1)

	return m
}

// observeTable registers the gauges that sample one table's state at scrape
// time (nothing to maintain on the hot path).
func (m *tableMetrics) observeTable(t *Table) {
	m.reg.GaugeFunc(m.name("dineserve_sessions_inflight"),
		"sessions accepted but not yet finished",
		func() int64 { return t.inFlight.Load() })
}

// observeRuntime samples the table runtime's own counters (protocol steps,
// bus-level message accounting) as gauges.
func (m *tableMetrics) observeRuntime(r *live.Runtime) {
	sample := func(name string) func() int64 {
		return func() int64 { return r.Counter(name) }
	}
	m.reg.GaugeFunc(m.name("dineserve_rt_steps"), "protocol action steps executed", sample("steps"))
	m.reg.GaugeFunc(m.name("dineserve_rt_msgs_sent"), "protocol messages sent", sample("msg.sent"))
	m.reg.GaugeFunc(m.name("dineserve_rt_msgs_delivered"), "protocol messages delivered", sample("msg.delivered"))
	m.reg.GaugeFunc(m.name("dineserve_rt_msgs_dropped"), "protocol messages dropped (crashed destination)", sample("msg.dropped"))
}

// observeBus samples the bus's delivery counters when the bus keeps them
// (every bundled bus does; a custom Bus without StatsSource just exposes
// nothing).
func (m *tableMetrics) observeBus(bus live.Bus) {
	src, ok := bus.(live.StatsSource)
	if !ok {
		return
	}
	m.reg.GaugeFunc(m.name("dineserve_bus_delivered_total"), "messages the bus handed to delivery",
		func() int64 { return src.BusStats().Delivered })
	m.reg.GaugeFunc(m.name("dineserve_bus_dropped_total"), "messages the bus ate",
		func() int64 { return src.BusStats().Dropped })
	m.reg.GaugeFunc(m.name("dineserve_bus_duped_total"), "duplicate deliveries a fault plan injected",
		func() int64 { return src.BusStats().Duped })
	m.reg.GaugeFunc(m.name("dineserve_bus_delayed_total"), "deliveries a fault plan held back",
		func() int64 { return src.BusStats().Delayed })
}
