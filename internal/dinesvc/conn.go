package dinesvc

import (
	"net"
	"sync"
	"time"

	"repro/internal/lockproto"
)

// sessionTable shards the key→*session map the same way the lockproto
// registry shards its records: by diner, so the table lookup on the acquire
// and release hot paths never serializes independent diners behind one
// mutex.
type sessionTable struct {
	shards [16]struct {
		mu sync.Mutex
		m  map[lockproto.Key]*session
		_  [24]byte // keep neighbouring locks off one cache line
	}
}

func (t *sessionTable) shard(k lockproto.Key) (*sync.Mutex, map[lockproto.Key]*session) {
	sh := &t.shards[uint(k.Diner)%uint(len(t.shards))]
	return &sh.mu, sh.m
}

// init allocates the shard maps; newTable calls it before any traffic.
func (t *sessionTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[lockproto.Key]*session)
	}
}

func (t *sessionTable) get(k lockproto.Key) *session {
	mu, m := t.shard(k)
	mu.Lock()
	ses := m[k]
	mu.Unlock()
	return ses
}

func (t *sessionTable) put(k lockproto.Key, ses *session) {
	mu, m := t.shard(k)
	mu.Lock()
	m[k] = ses
	mu.Unlock()
}

func (t *sessionTable) del(k lockproto.Key) {
	mu, m := t.shard(k)
	mu.Lock()
	delete(m, k)
	mu.Unlock()
}

// session is one acquire from registry entry to release, owned by a
// dinerMgr after being enqueued. Its connection binding is mutable: the
// client may vanish and re-attach from a new connection mid-session.
type session struct {
	key lockproto.Key
	// regrant marks a session recovered from the WAL in granted state; its
	// manager re-wins the dining-layer grant but must not re-run the
	// registry transition. Set before enqueue, read-only afterwards.
	regrant bool
	// start stamps the acquire's arrival; the server-side grant-latency
	// histogram observes start→grant-sent. Recovered sessions carry their
	// resume time instead, which is why regrants are not observed.
	start   time.Time
	release chan struct{}
	relOnce sync.Once

	mu      sync.Mutex
	conn    *jconn // nil while detached
	granted bool
	grantEv lockproto.Event
}

func newSession(k lockproto.Key) *session {
	return &session{key: k, start: time.Now(), release: make(chan struct{})}
}

// finishRelease signals the manager to free the critical section (or to
// unwind, if it has not granted yet). Idempotent: the client's release and
// the janitor's expiry may race.
func (s *session) finishRelease() { s.relOnce.Do(func() { close(s.release) }) }

// attach binds the session to a connection; if the grant was already issued
// the (possibly lost) notification is re-sent on the new connection.
func (s *session) attach(jc *jconn) {
	s.mu.Lock()
	s.conn = jc
	resend := s.granted
	ev := s.grantEv
	s.mu.Unlock()
	if resend {
		jc.send(ev)
	}
}

// detach unbinds the session if it is still bound to jc (a newer connection
// may have taken over).
func (s *session) detach(jc *jconn) {
	s.mu.Lock()
	if s.conn == jc {
		s.conn = nil
	}
	s.mu.Unlock()
}

// markGranted records and sends the grant notification.
func (s *session) markGranted(ev lockproto.Event) {
	s.mu.Lock()
	s.granted = true
	s.grantEv = ev
	jc := s.conn
	s.mu.Unlock()
	if jc != nil {
		jc.send(ev)
	}
}

// notify sends ev if a connection is attached.
func (s *session) notify(ev lockproto.Event) {
	s.mu.Lock()
	jc := s.conn
	s.mu.Unlock()
	if jc != nil {
		jc.send(ev)
	}
}

// jconn is one client connection's outbound half: a coalescing flush
// writer over the socket. Writes from the connection reader, the diner
// managers, and the watch forwarder serialize on the writer's internal
// lock; a burst of events (grant acks interleaved with the suspect stream)
// rides one socket Write instead of one per event.
type jconn struct {
	c  net.Conn
	fw *lockproto.FlushWriter
}

func (j *jconn) send(ev lockproto.Event) bool { return j.fw.Send(&ev) }

// handleConn is the per-connection request loop. A connection is a service
// resource shared by every table: each request routes to the table hosting
// its diner, so one client can hold sessions on several tables over one
// socket.
func (s *Service) handleConn(c net.Conn) {
	jc := &jconn{c: c, fw: lockproto.NewFlushWriter(c, s.cfg.FlushBatch, s.cfg.FlushDelay)}
	// Each socket write lands in the registry as it happens, so the
	// coalescing ratio is scrapeable mid-run instead of only accumulating
	// at connection teardown.
	jc.fw.OnFlush(func(events, bytes int64) {
		s.m.wireWrites.Inc()
		s.m.wireEvents.Add(events)
		s.m.wireBytes.Add(bytes)
	})
	attached := make(map[lockproto.Key]*session)
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		// Flush anything still coalescing (the close drains), then drop the
		// socket.
		jc.fw.Close()
		c.Close()
		// Detach, don't abandon: the sessions stay in flight so the client
		// can reconnect and resume them; the lease clock starts now.
		for k, ses := range attached {
			t := s.tableFor(k.Diner)
			ses.detach(jc)
			t.sessions.Detach(k, t.now())
		}
	}()
	gone := make(chan struct{})
	defer close(gone) // cancels the watch forwarders

	fail := func(req lockproto.Request, msg string) {
		jc.send(lockproto.Event{Ev: lockproto.EvError, Diner: req.Diner, ID: req.ID, Msg: msg})
	}

	rr := lockproto.NewRequestReader(c)
	for {
		var req lockproto.Request
		if err := rr.Read(&req); err != nil {
			return
		}
		switch req.Op {
		case lockproto.OpInfo:
			ev := lockproto.Event{Ev: lockproto.EvInfo, Diners: s.cfg.N, T: s.now()}
			if s.cfg.Tables > 1 {
				// Omitted for a single table, so the info line stays
				// byte-identical to the pre-sharding wire format.
				ev.Tables = s.cfg.Tables
			}
			jc.send(ev)

		case lockproto.OpAcquire:
			if req.Diner < 0 || req.Diner >= s.cfg.N {
				fail(req, "no such diner")
				continue
			}
			if s.draining.Load() {
				fail(req, "draining")
				continue
			}
			t := s.tableFor(req.Diner)
			key := lockproto.Key{Diner: req.Diner, ID: req.ID}
			now := t.now()
			switch t.sessions.Acquire(key, now) {
			case lockproto.AcquireNew:
				if s.cfg.MaxInflight > 0 && s.inFlightTotal() >= s.cfg.MaxInflight {
					t.sessions.Abort(key)
					t.m.shed.Inc()
					fail(req, "overloaded")
					continue
				}
				ses := newSession(key)
				t.byKey.put(key, ses)
				t.sessions.Attach(key, now)
				ses.attach(jc)
				attached[key] = ses
				t.inFlight.Add(1)
				select {
				case t.mgrFor(req.Diner).queue <- ses:
				default:
					t.inFlight.Add(-1)
					ses.detach(jc)
					delete(attached, key)
					t.dropSession(key)
					t.sessions.Abort(key)
					fail(req, "busy")
				}

			case lockproto.AcquirePending, lockproto.AcquireGranted:
				// Replay after a reconnect: re-attach. attach re-sends the
				// grant notification if it was already issued; the critical
				// section itself is never granted twice. The registry counts
				// bindings, so this Attach and the dying connection's deferred
				// Detach land safely in either order.
				ses := t.byKey.get(key)
				if ses == nil {
					// Completed between the registry check and here.
					fail(req, "session expired")
					continue
				}
				if attached[key] == nil {
					t.sessions.Attach(key, now)
				}
				ses.attach(jc)
				attached[key] = ses

			case lockproto.AcquireDone:
				fail(req, "session expired")
			}

		case lockproto.OpRelease:
			if req.Diner < 0 || req.Diner >= s.cfg.N {
				fail(req, "unknown session")
				continue
			}
			t := s.tableFor(req.Diner)
			key := lockproto.Key{Diner: req.Diner, ID: req.ID}
			switch t.sessions.Release(key, t.now()) {
			case lockproto.ReleaseGranted:
				if ses := t.byKey.get(key); ses != nil {
					ses.finishRelease() // the manager sends EvReleased after the exit
				}
			case lockproto.ReleasePending:
				// Released before the grant: the manager unwinds silently
				// when the grant arrives; acknowledge the client now (the
				// release record first — an acked release must survive a
				// crash).
				t.dur.barrier()
				jc.send(lockproto.Event{Ev: lockproto.EvReleased, Diner: req.Diner, ID: req.ID, T: t.now()})
			case lockproto.ReleaseDone:
				// Replayed release (the first ack was lost): re-acknowledge.
				jc.send(lockproto.Event{Ev: lockproto.EvReleased, Diner: req.Diner, ID: req.ID, T: t.now()})
			case lockproto.ReleaseUnknown:
				fail(req, "unknown session")
			}

		case lockproto.OpWatch:
			// One watch subscribes to every table's feed: the snapshots
			// arrive first (each internally consistent), then one forwarder
			// per table streams its changes, all coalescing onto this
			// connection's writer.
			for _, t := range s.tables {
				if t.feed == nil {
					continue
				}
				snapshot, ch, cancel := t.feed.subscribe()
				for _, ev := range snapshot {
					jc.send(ev)
				}
				go func(ch <-chan lockproto.Event, cancel func()) {
					defer cancel()
					for {
						select {
						case ev := <-ch:
							if !jc.send(ev) {
								return
							}
						case <-gone:
							return
						case <-s.stop:
							return
						}
					}
				}(ch, cancel)
			}

		default:
			fail(req, "unknown op")
		}
	}
}
