package dinesvc

import (
	"testing"
	"time"

	"repro/internal/lockproto"
)

// TestVanishedClientDoesNotLeakDrain is the regression test for the
// handleConn teardown audit: a client that disconnects *between* receiving
// its grant and acknowledging the release exercises the detach path while
// the manager still owns the session. The connection teardown must detach —
// not abandon — the session: it stays in flight on the lease clock, the
// janitor force-releases it when the lease runs out, and a subsequent drain
// completes with zero sessions in flight and conserved accounting. Before
// the audit this was the suspected leak shape (a detached-but-granted
// session wedging Drain until its timeout).
func TestVanishedClientDoesNotLeakDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full server; skipped in -short")
	}
	svc, err := New(Config{
		N: 3, Topology: "ring",
		Tick: time.Millisecond, HBTimeout: 2000,
		Lease: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	cl := dialBench(t, ln.Addr().String())
	if err := lockproto.WriteRequest(cl.c, &lockproto.Request{Op: lockproto.OpAcquire, Diner: 0, ID: "leak"}); err != nil {
		t.Fatal(err)
	}
	cl.await(t, lockproto.EvGranted, "leak")
	// Vanish while holding the critical section: no release, no close
	// handshake — the deferred teardown in handleConn is all that runs.
	cl.c.Close()

	// The janitor must reclaim the session once the lease expires; poll well
	// past lease + janitor cadence before calling it a leak.
	deadline := time.Now().Add(5 * time.Second)
	for svc.inFlightTotal() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if left := svc.inFlightTotal(); left != 0 {
		t.Fatalf("vanished client leaked %d in-flight sessions past its lease", left)
	}

	svc.Drain(2 * time.Second)

	tbl := svc.tableFor(0)
	granted := tbl.m.granted.Value()
	regranted := tbl.m.regranted.Value()
	released := tbl.m.released.Value()
	expired := tbl.m.expired.Value()
	held := tbl.m.held.Value()
	if granted != 1 || expired != 1 {
		t.Fatalf("granted=%d expired=%d, want 1/1 (the janitor must have reclaimed the grant)",
			granted, expired)
	}
	// The smoke scripts' conservation invariant: every grant is eventually
	// released, nothing is held after drain.
	if held != 0 || granted+regranted != released+held {
		t.Fatalf("accounting leak: granted=%d regranted=%d released=%d held=%d",
			granted, regranted, released, held)
	}
	if err := svc.Verdict(); err != nil {
		t.Fatalf("verdict after forced release: %v", err)
	}
}
