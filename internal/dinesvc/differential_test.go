package dinesvc

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/lockproto"
	"repro/internal/wal"
)

// diffOp is one step of the seeded differential workload.
type diffOp struct {
	diner int
	id    string
}

// diffWorkload builds a deterministic session sequence: `rounds` seeded
// permutations of all n diners, every session a full acquire→release cycle.
// Both service shapes under test replay exactly this sequence.
func diffWorkload(n, rounds int, seed int64) []diffOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []diffOp
	for r := 0; r < rounds; r++ {
		for _, d := range rng.Perm(n) {
			ops = append(ops, diffOp{diner: d, id: fmt.Sprintf("r%d-d%d", r, d)})
		}
	}
	return ops
}

// sessionLedger reads the session records (acquire/grant/release plus the
// expire/abort kinds a clean run must not contain) out of one or more WAL
// directories, keyed by session. A key lives entirely in one shard, so
// merging the per-shard maps loses no ordering.
func sessionLedger(t *testing.T, dirs []string) map[lockproto.Key][]string {
	t.Helper()
	led := make(map[lockproto.Key][]string)
	for _, dir := range dirs {
		rep, err := wal.Inspect(dir)
		if err != nil {
			t.Fatalf("inspect %s: %v", dir, err)
		}
		if !rep.Valid() {
			t.Fatalf("%s: %d torn bytes after a clean drain", dir, rep.TornBytes)
		}
		if rep.Snapshot != nil {
			// A snapshot would summarize away the record-level history this
			// comparison is about; the workload is sized to stay below the
			// snapshot threshold.
			t.Fatalf("%s: unexpected snapshot (workload outgrew SnapRecords?)", dir)
		}
		for _, raw := range rep.Records {
			var r lockproto.Rec
			if err := json.Unmarshal(raw, &r); err != nil {
				t.Fatalf("%s: bad record %q: %v", dir, raw, err)
			}
			switch r.K {
			case lockproto.RecAcquire, lockproto.RecGrant, lockproto.RecRelease,
				lockproto.RecExpire, lockproto.RecAbort:
				k := lockproto.Key{Diner: r.D, ID: r.I}
				led[k] = append(led[k], r.K)
			}
		}
	}
	return led
}

// TestShardedDifferential is the sharding refactor's equivalence oracle: the
// same seeded workload runs once through a single-table service and once
// through a four-table one, and the two must be observably identical — every
// session granted and released in the same per-key order, both ◇WX verdicts
// clean, and the sharded run's ledgers landing exactly where the pinned
// diner→table hash says they must.
func TestShardedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("boots two full services; skipped in -short")
	}
	const n, rounds = 16, 3
	ops := diffWorkload(n, rounds, 42)

	run := func(tables int, dataDir string) {
		svc, err := New(Config{
			N: n, Tables: tables, Topology: "ring",
			Tick: 200 * time.Microsecond, HBTimeout: 2000,
			DataDir: dataDir,
		})
		if err != nil {
			t.Fatalf("tables=%d: %v", tables, err)
		}
		ln, err := svc.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("tables=%d: %v", tables, err)
		}
		cl := dialBench(t, ln.Addr().String())
		for _, op := range ops {
			cl.session(t, op.diner, op.id)
		}
		cl.c.Close()
		svc.Drain(10 * time.Second)
		if err := svc.Verdict(); err != nil {
			t.Fatalf("tables=%d verdict: %v", tables, err)
		}
	}

	flatDir := filepath.Join(t.TempDir(), "flat")
	shardDir := filepath.Join(t.TempDir(), "shard")
	run(1, flatDir)
	run(4, shardDir)

	flat := sessionLedger(t, []string{flatDir})
	shards, err := wal.TableDirs(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 4 {
		t.Fatalf("sharded run left %d table dirs, want 4", len(shards))
	}
	sharded := sessionLedger(t, shards)

	// Every shard's ledger holds only the diners the pinned hash routes to it.
	for i, td := range shards {
		for k := range sessionLedger(t, []string{td}) {
			if got := lockproto.TableOf(k.Diner, 4); got != i {
				t.Fatalf("session %v journaled in table-%d, but TableOf routes diner %d to table-%d",
					k, i, k.Diner, got)
			}
		}
	}

	// The complete workload ran, every session's ledger is the clean
	// acquire→grant→release triple, and the sharded run recorded exactly the
	// single-table history.
	if len(flat) != n*rounds {
		t.Fatalf("flat run journaled %d sessions, want %d", len(flat), n*rounds)
	}
	want := []string{lockproto.RecAcquire, lockproto.RecGrant, lockproto.RecRelease}
	for k, seq := range flat {
		if !reflect.DeepEqual(seq, want) {
			t.Fatalf("flat ledger for %v = %v, want %v", k, seq, want)
		}
	}
	if !reflect.DeepEqual(flat, sharded) {
		var keys []string
		for k, seq := range sharded {
			if !reflect.DeepEqual(flat[k], seq) {
				keys = append(keys, fmt.Sprintf("%v: flat %v vs sharded %v", k, flat[k], seq))
			}
		}
		for k := range flat {
			if _, ok := sharded[k]; !ok {
				keys = append(keys, fmt.Sprintf("%v: missing from sharded run", k))
			}
		}
		sort.Strings(keys)
		t.Fatalf("ledgers diverge (%d flat vs %d sharded sessions):\n%s",
			len(flat), len(sharded), joinLines(keys))
	}
}

func joinLines(ss []string) string {
	out := ""
	for _, s := range ss {
		out += "  " + s + "\n"
	}
	return out
}
