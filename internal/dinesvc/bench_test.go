package dinesvc

import (
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lockproto"
)

// This file is the in-process half of the service benchmark suite: a real
// service (live runtime, forks table, heartbeat detector, TCP listener on a
// loopback ephemeral port) driven by real protocol clients, with no
// persistence and no extractor so the measured path is exactly the request
// pipeline — codec, session registry, diner manager, flush writer. The
// numbers include the dining layer's grant latency, which is tick-paced, so
// they measure the service overhead *around* a fixed protocol core; the
// end-to-end load numbers come from `make bench-serve` driving the
// dineserve binary over dineload.

// benchServer boots a servable table set on an ephemeral port and returns
// its address plus a shutdown func. It takes testing.TB so the differential
// and regression tests drive the same client/server plumbing the benchmarks
// measure.
func benchServer(b testing.TB, n, tables int) (string, func()) {
	b.Helper()
	svc, err := New(Config{
		N: n, Tables: tables, Topology: "ring",
		Tick: 200 * time.Microsecond, HBTimeout: 2000,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := svc.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	return ln.Addr().String(), func() {
		svc.Drain(5 * time.Second)
	}
}

// benchClient is one protocol client over the wire codec.
type benchClient struct {
	c  net.Conn
	er *lockproto.EventReader
}

func dialBench(b testing.TB, addr string) *benchClient {
	b.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	return &benchClient{c: c, er: lockproto.NewEventReader(c)}
}

// session runs one full acquire→grant→release→ack cycle.
func (cl *benchClient) session(b testing.TB, diner int, id string) {
	if err := lockproto.WriteRequest(cl.c, &lockproto.Request{Op: lockproto.OpAcquire, Diner: diner, ID: id}); err != nil {
		b.Fatal(err)
	}
	cl.await(b, lockproto.EvGranted, id)
	if err := lockproto.WriteRequest(cl.c, &lockproto.Request{Op: lockproto.OpRelease, Diner: diner, ID: id}); err != nil {
		b.Fatal(err)
	}
	cl.await(b, lockproto.EvReleased, id)
}

func (cl *benchClient) await(b testing.TB, ev, id string) {
	for {
		var e lockproto.Event
		if err := cl.er.Read(&e); err != nil {
			b.Fatal(err)
		}
		if e.Ev == lockproto.EvError {
			b.Fatalf("server error for %s: %s", id, e.Msg)
		}
		if e.Ev == ev && e.ID == id {
			return
		}
	}
}

// BenchmarkServeGrant measures the sequential end-to-end session round trip
// on an uncontended diner: acquire → grant → release → ack, one client.
func BenchmarkServeGrant(b *testing.B) {
	addr, stop := benchServer(b, 3, 1)
	defer stop()
	cl := dialBench(b, addr)
	defer cl.c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.session(b, 0, fmt.Sprintf("g-%d", i))
	}
	b.StopTimer()
}

// BenchmarkServeGrantTables4 is the same round trip through a sharded
// service: 16 diners over 4 tables, the client pinned to one diner. The
// router adds a hash and two slice lookups per request; the number should
// sit within noise of the single-table run.
func BenchmarkServeGrantTables4(b *testing.B) {
	addr, stop := benchServer(b, 16, 4)
	defer stop()
	cl := dialBench(b, addr)
	defer cl.c.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl.session(b, 0, fmt.Sprintf("g-%d", i))
	}
	b.StopTimer()
}

// BenchmarkServeChurn measures concurrent session throughput: many clients
// churning sessions across all diners of a ring, the contention shape the
// sharded registry and the coalesced writes exist for.
func BenchmarkServeChurn(b *testing.B) {
	const n = 8
	addr, stop := benchServer(b, n, 1)
	defer stop()
	var cid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := cid.Add(1)
		cl := dialBench(b, addr)
		defer cl.c.Close()
		// Spread clients over diners; even/odd neighbours of a ring contend
		// on forks, so this exercises real dining-layer arbitration too.
		diner := int(id) % n
		for i := 0; pb.Next(); i++ {
			cl.session(b, diner, fmt.Sprintf("c%d-%d", id, i))
		}
	})
	b.StopTimer()
}
