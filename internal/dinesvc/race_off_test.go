//go:build !race

package dinesvc

const raceEnabled = false
