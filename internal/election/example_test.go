package election_test

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/election"
	"repro/internal/sim"
)

// Example elects a stable leader among four processes and fails over when
// the leader crashes.
func Example() {
	k := sim.NewKernel(4,
		sim.WithSeed(3),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}),
	)
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	e := election.New(k, procs(4), "lead", oracle, 0)

	k.CrashAt(0, 10000) // the initial leader dies
	k.After(1, 8000, func() {
		fmt.Printf("t=%d leader at p1: p%d\n", k.Now(), e.Leader(1))
	})
	k.Run(40000)

	leader, err := e.Agreement(k)
	fmt.Printf("t=%d leader agreed by survivors: p%d (err=%v)\n", k.Now(), leader, err)
	// Output:
	// t=8000 leader at p1: p0
	// t=40000 leader agreed by survivors: p1 (err=<nil>)
}
