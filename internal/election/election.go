// Package election implements stable leader election from an eventually
// perfect failure detector — the second application the paper's
// introduction cites for ◇P (Aguilera et al., [1]).
//
// Each process continuously elects the smallest-id process its local ◇P
// module does not suspect (itself included). Once the oracle converges —
// crashed processes permanently suspected, correct ones permanently
// trusted — every correct process elects the same leader: the smallest-id
// correct process. The leader is *stable*: it changes only finitely often
// in any run. Plugging in the oracle extracted by the reduction closes the
// paper's chain "WF-◇WX ⇒ ◇P ⇒ stable leader election" executably
// (experiment E12).
package election

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/sim"
)

// Election runs one leader-election module at every participant.
type Election struct {
	name  string
	procs []sim.ProcID
	mods  map[sim.ProcID]*module
}

type module struct {
	self    sim.ProcID
	leader  sim.ProcID
	changes int
	lastAt  sim.Time
}

// New installs election modules at procs, consulting oracle (◇P class) and
// re-evaluating every interval ticks (default 20). Leader changes are
// emitted as "mark" records with Note "leader=<id>".
func New(k *sim.Kernel, procs []sim.ProcID, name string, oracle detector.Oracle, interval sim.Time) *Election {
	if interval <= 0 {
		interval = 20
	}
	e := &Election{name: name, procs: procs, mods: make(map[sim.ProcID]*module)}
	for _, p := range procs {
		p := p
		m := &module{self: p, leader: -1, lastAt: sim.Never}
		e.mods[p] = m
		view := detector.View{Oracle: oracle, Self: p}
		var tick func()
		tick = func() {
			l := sim.ProcID(-1)
			for _, q := range procs {
				if q == p || !view.Suspected(q) {
					l = q
					break
				}
			}
			if l != m.leader {
				m.leader = l
				m.changes++
				m.lastAt = k.Now()
				k.Emit(sim.Record{P: p, Kind: "mark", Peer: l, Inst: name, Note: fmt.Sprintf("leader=%d", l)})
			}
			k.After(p, interval, tick)
		}
		k.After(p, 1+sim.Time(p)%interval, tick)
	}
	return e
}

// Leader returns p's current leader (-1 if p suspects everyone including
// itself, which cannot happen for live p since it never suspects itself).
func (e *Election) Leader(p sim.ProcID) sim.ProcID { return e.mods[p].leader }

// Changes returns how many times p's leader changed (stability metric).
func (e *Election) Changes(p sim.ProcID) int { return e.mods[p].changes }

// LastChange returns when p's leader last changed (sim.Never if never).
func (e *Election) LastChange(p sim.ProcID) sim.Time { return e.mods[p].lastAt }

// Agreement checks the post-run verdict: every correct process elects the
// same correct leader. It returns that leader or an error.
func (e *Election) Agreement(k *sim.Kernel) (sim.ProcID, error) {
	leader := sim.ProcID(-1)
	for _, p := range e.procs {
		if k.Crashed(p) {
			continue
		}
		l := e.mods[p].leader
		if l < 0 {
			return -1, fmt.Errorf("election: %d has no leader", p)
		}
		if k.Crashed(l) {
			return -1, fmt.Errorf("election: %d elected crashed %d", p, l)
		}
		if leader == -1 {
			leader = l
		} else if leader != l {
			return -1, fmt.Errorf("election: %d elected %d but others elected %d", p, l, leader)
		}
	}
	if leader == -1 {
		return -1, fmt.Errorf("election: no correct processes")
	}
	return leader, nil
}
