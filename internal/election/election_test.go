package election_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/election"
	"repro/internal/sim"
)

func procs(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i)
	}
	return out
}

// TestStableLeaderCrashFree: all processes converge on process 0 and the
// leader stops changing.
func TestStableLeaderCrashFree(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k := sim.NewKernel(4, sim.WithSeed(seed),
			sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		e := election.New(k, procs(4), "lead", oracle, 0)
		end := k.Run(30000)
		leader, err := e.Agreement(k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if leader != 0 {
			t.Fatalf("seed %d: leader %d, want 0 (min correct)", seed, leader)
		}
		for _, p := range procs(4) {
			if last := e.LastChange(p); last != sim.Never && last > end*3/4 {
				t.Fatalf("seed %d: leader at %d still changing at t=%d", seed, p, last)
			}
		}
	}
}

// TestLeaderFailover: when the leader crashes, every survivor elects the
// next-smallest correct process.
func TestLeaderFailover(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		k := sim.NewKernel(4, sim.WithSeed(seed),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		e := election.New(k, procs(4), "lead", oracle, 0)
		k.CrashAt(0, 5000)
		k.CrashAt(1, 9000)
		k.Run(40000)
		leader, err := e.Agreement(k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if leader != 2 {
			t.Fatalf("seed %d: leader %d, want 2 after 0 and 1 crashed", seed, leader)
		}
	}
}

// TestLeaderChangesAreFinite: stability — across the run, each process
// changes its mind only a few times (bounded by oracle mistakes + crashes).
func TestLeaderChangesAreFinite(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(6),
		sim.WithDelay(sim.GSTDelay{GST: 2000, PreMax: 300, PostMax: 8}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{Timeout: 40, Bump: 60})
	e := election.New(k, procs(3), "lead", oracle, 0)
	k.CrashAt(2, 10000)
	end := k.Run(60000)
	for _, p := range procs(3)[:2] {
		if e.Changes(p) > 40 {
			t.Fatalf("leader at %d changed %d times; not stable", p, e.Changes(p))
		}
		if last := e.LastChange(p); last != sim.Never && last > end*3/4 {
			t.Fatalf("leader at %d still flapping at t=%d", p, last)
		}
	}
}

// TestElectionOverExtractedOracle: the full chain — dining box ->
// reduction -> extracted ◇P -> stable leader election, with a crash.
func TestElectionOverExtractedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack test is long")
	}
	k := sim.NewKernel(3, sim.WithSeed(7),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	extracted := core.NewExtractor(k, procs(3), forks.Factory(native, forks.Config{}), "xp")
	e := election.New(k, procs(3), "lead", extracted, 0)
	k.CrashAt(0, 8000)
	k.Run(80000)
	leader, err := e.Agreement(k)
	if err != nil {
		t.Fatal(err)
	}
	if leader != 1 {
		t.Fatalf("leader %d, want 1 after 0 crashed", leader)
	}
}
