package sim

import "container/heap"

// event is an internal kernel event: a message delivery, a process step, a
// timer expiry, or a crash. Events are totally ordered by (at, seq).
type event struct {
	at  Time
	seq int64
	fn  func()
}

// eventQueue is a binary min-heap of events ordered by (at, seq). The
// zero value is an empty queue ready to use.
type eventQueue struct {
	items []*event
}

func (q *eventQueue) Len() int { return len(q.items) }

func (q *eventQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) Swap(i, j int) { q.items[i], q.items[j] = q.items[j], q.items[i] }

// Push implements heap.Interface.
func (q *eventQueue) Push(x any) { q.items = append(q.items, x.(*event)) }

// Pop implements heap.Interface.
func (q *eventQueue) Pop() any {
	old := q.items
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	q.items = old[:n-1]
	return it
}

func (q *eventQueue) push(e *event) { heap.Push(q, e) }

func (q *eventQueue) pop() *event { return heap.Pop(q).(*event) }

func (q *eventQueue) peek() *event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0]
}
