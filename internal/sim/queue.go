package sim

// event is an internal kernel event: a message delivery, a process step, a
// timer expiry, or a generic scheduled closure. Events are totally ordered by
// (at, seq); seq is unique per event, so the order is strict and the queue
// needs no secondary tie-break.
//
// Events are stored by value. Typed variants (kind + inline fields) exist so
// the hot paths — message arrival, process steps, timers — carry their
// payload inline instead of in a captured closure: a steady-state send or
// wake allocates nothing. evFunc remains the general escape hatch for cold
// paths (crash schedules, test hooks).
type event struct {
	at   Time
	seq  int64
	kind evKind
	p    ProcID  // evStep, evTimer: the process concerned
	msg  Message // evArrive, evDeliver: the message in transit
	fn   func()  // evFunc: arbitrary thunk; evTimer: the timer body
}

type evKind uint8

const (
	evFunc    evKind = iota // run fn()
	evArrive                // message reaches the link adversary (linkArrive)
	evDeliver               // message delivery bypassing the adversary (dup copies)
	evStep                  // scheduled guarded-action step of process p
	evTimer                 // After timer at p: skip if crashed, else fn() + wake
)

// eventQueue is an index-based 4-ary min-heap of events ordered by (at, seq).
// The zero value is an empty queue ready to use.
//
// Design notes (see DESIGN.md "Performance"): a 4-ary layout halves the tree
// depth of a binary heap, and sift-down — the expensive direction, paid on
// every pop — touches 4 children per level that sit in one or two cache
// lines. Storing events by value removes the per-event pointer allocation
// and the interface boxing that container/heap imposes; the slice's spare
// capacity is the free list, so after warm-up a steady-state push recycles a
// slot vacated by an earlier pop and the queue stops allocating entirely.
type eventQueue struct {
	items []event
}

func (q *eventQueue) Len() int { return len(q.items) }

func less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push inserts e, sifting it up from the new leaf.
func (q *eventQueue) push(e event) {
	q.items = append(q.items, e)
	it := q.items
	i := len(it) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !less(&e, &it[parent]) {
			break
		}
		it[i] = it[parent]
		i = parent
	}
	it[i] = e
}

// pop removes and returns the minimum event. The vacated tail slot is zeroed
// so the queue does not retain message payloads or closures beyond their
// lifetime (the slot itself stays in the slice's capacity for reuse).
func (q *eventQueue) pop() event {
	it := q.items
	top := it[0]
	n := len(it) - 1
	last := it[n]
	it[n] = event{}
	q.items = it[:n]
	if n > 0 {
		q.siftDown(last)
	}
	return top
}

// siftDown places e (the displaced last element) starting from the root.
func (q *eventQueue) siftDown(e event) {
	it := q.items
	n := len(it)
	i := 0
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		// Select the minimum of the up-to-4 children.
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if less(&it[j], &it[m]) {
				m = j
			}
		}
		if !less(&it[m], &e) {
			break
		}
		it[i] = it[m]
		i = m
	}
	it[i] = e
}

// peekAt returns the minimum event's time without removing it; ok is false
// on an empty queue.
func (q *eventQueue) peekAt() (at Time, ok bool) {
	if len(q.items) == 0 {
		return 0, false
	}
	return q.items[0].at, true
}
