package sim

import "math/rand"

// DelayPolicy decides the in-transit delay of each message. Returning a
// value < 1 is treated as 1: delivery is always strictly in the future, so a
// process never receives a message in the same step that sent it.
//
// A policy models the (a)synchrony of the underlying system. The kernel
// guarantees reliable delivery regardless of policy; the policy only shapes
// timing, which is what the paper's "temporal uncertainty" is about.
type DelayPolicy interface {
	Delay(rng *rand.Rand, from, to ProcID, now Time) Time
}

// FixedDelay delivers every message after exactly D ticks. It models a
// synchronous network and is useful for focused unit tests.
type FixedDelay struct{ D Time }

// Delay implements DelayPolicy.
func (f FixedDelay) Delay(_ *rand.Rand, _, _ ProcID, _ Time) Time { return max(1, f.D) }

// UniformDelay delivers after a delay drawn uniformly from [Min, Max].
type UniformDelay struct{ Min, Max Time }

// Delay implements DelayPolicy.
func (u UniformDelay) Delay(rng *rand.Rand, _, _ ProcID, _ Time) Time {
	lo, hi := max(1, u.Min), max(1, u.Max)
	if hi <= lo {
		return lo
	}
	return lo + Time(rng.Int63n(int64(hi-lo+1)))
}

// GSTDelay models partial synchrony with an unknown Global Stabilization
// Time: before GST message delays are arbitrary up to PreMax (heavy-tailed,
// adversarially slow), from GST on they are bounded by PostMax. This is the
// classic model in which the eventually perfect failure detector is
// implementable but perpetual-accuracy oracles are not.
type GSTDelay struct {
	GST     Time // stabilization time; 0 means synchronous from the start
	PreMax  Time // worst-case delay before GST
	PostMax Time // delay bound after GST
}

// Delay implements DelayPolicy.
func (g GSTDelay) Delay(rng *rand.Rand, _, _ ProcID, now Time) Time {
	if now >= g.GST {
		return uniform(rng, 1, g.PostMax)
	}
	// Pre-GST: mostly moderate delays with occasional adversarial spikes, so
	// timeout-based detectors make real mistakes before converging.
	if rng.Intn(4) == 0 {
		return uniform(rng, g.PreMax/2+1, g.PreMax)
	}
	return uniform(rng, 1, g.PreMax/4+1)
}

// SkewDelay slows every message into (or out of) one victim process,
// modeling a process whose links are adversarially slow. Other traffic uses
// the Base policy.
type SkewDelay struct {
	Base   DelayPolicy
	Victim ProcID
	Factor Time // multiplier applied to the victim's delays
}

// Delay implements DelayPolicy.
func (s SkewDelay) Delay(rng *rand.Rand, from, to ProcID, now Time) Time {
	d := s.Base.Delay(rng, from, to, now)
	if from == s.Victim || to == s.Victim {
		d *= max(1, s.Factor)
	}
	return d
}

func uniform(rng *rand.Rand, lo, hi Time) Time {
	lo = max(1, lo)
	hi = max(lo, hi)
	if hi == lo {
		return lo
	}
	return lo + Time(rng.Int63n(int64(hi-lo+1)))
}

// PartitionDelay models a transient network partition in a reliable-channel
// world: messages crossing between the two sides before Heal are held back
// and delivered only after the partition heals (delay is finite, so
// reliability is preserved — the paper's channels never lose messages).
// Within a side, and after Heal, the Base policy applies. Partitions are
// the classic source of correlated false suspicions for timeout detectors.
type PartitionDelay struct {
	Base DelayPolicy
	Side map[ProcID]bool // the minority side; everyone else is majority
	Heal Time            // partition ends at this time
}

// Delay implements DelayPolicy.
func (p PartitionDelay) Delay(rng *rand.Rand, from, to ProcID, now Time) Time {
	if now < p.Heal && p.Side[from] != p.Side[to] {
		// Held until shortly after the heal, plus normal jitter.
		return (p.Heal - now) + p.Base.Delay(rng, from, to, p.Heal)
	}
	return p.Base.Delay(rng, from, to, now)
}

// BytesDelay derives every delay from a caller-supplied byte string, in
// round-robin order. It exists for schedule fuzzing: a fuzzer mutating the
// bytes explores message orderings directly, with full reproducibility.
// An empty or exhausted pattern behaves like FixedDelay{1}.
type BytesDelay struct {
	Pattern []byte
	Max     Time // delays are 1 + byte % Max (default 16)
	pos     int
}

// Delay implements DelayPolicy. BytesDelay is stateful: use one instance
// per kernel.
func (b *BytesDelay) Delay(_ *rand.Rand, _, _ ProcID, _ Time) Time {
	maxd := b.Max
	if maxd <= 0 {
		maxd = 16
	}
	if len(b.Pattern) == 0 {
		return 1
	}
	v := b.Pattern[b.pos%len(b.Pattern)]
	b.pos++
	return 1 + Time(v)%maxd
}
