package sim

import (
	"fmt"
	"sort"
	"strings"
)

// This file implements the fair-lossy link adversary. The base kernel models
// the paper's reliable channels; a LinkPlan weakens them to fair-lossy links:
// each message may be dropped (with probability < 1, so a message sent
// infinitely often is delivered infinitely often — the fair-loss axiom),
// duplicated, or delayed further (bounded reordering), and transient lossy
// windows model partitions whose loss rate may spike to 1 for a bounded era.
// All randomness is drawn from the kernel's seeded source, so a run under a
// LinkPlan is exactly as reproducible as one without. internal/transport
// restores the reliable-channel axioms on top of these links.

// LinkFault overrides the plan's baseline drop/duplication probabilities for
// one directed link. From or To may be -1 as a wildcard ("every sender",
// "every receiver").
type LinkFault struct {
	From ProcID  // sending process, or -1 for any
	To   ProcID  // receiving process, or -1 for any
	Drop float64 // drop probability for matching messages, in [0, 1)
	Dup  float64 // duplication probability for matching messages, in [0, 1]
}

func (f LinkFault) matches(from, to ProcID) bool {
	return (f.From == -1 || f.From == from) && (f.To == -1 || f.To == to)
}

// LossyWindow is a transient lossy era: during [Start, End) messages matching
// the window are dropped with the window's probability *in addition to* the
// steady-state loss. With Side non-empty only messages crossing between Side
// and its complement are affected — a transient lossy partition. Drop may be
// 1 here: the window is bounded, so fair-lossiness is preserved overall.
type LossyWindow struct {
	Start Time
	End   Time
	Drop  float64
	Side  []ProcID // one side of the partition; empty = every link
}

func (w LossyWindow) matches(from, to ProcID, now Time) bool {
	if now < w.Start || now >= w.End {
		return false
	}
	if len(w.Side) == 0 {
		return true
	}
	in := func(p ProcID) bool {
		for _, s := range w.Side {
			if s == p {
				return true
			}
		}
		return false
	}
	return in(from) != in(to)
}

// LinkPlan is a named, declarative description of the link adversary, the
// message-loss counterpart of FaultPlan. The zero value (and NoLinkFaults)
// is the reliable-channel world the paper assumes. Like FaultPlan, a plan is
// validated before installation so that a malformed plan in a sweep surfaces
// as a generator bug instead of silently distorting a run.
type LinkPlan struct {
	Name       string
	Drop       float64       // baseline drop probability per message, in [0, 1)
	Dup        float64       // baseline duplication probability, in [0, 1]
	ReorderMax Time          // extra per-message delay drawn from [0, ReorderMax]
	Links      []LinkFault   // per-link overrides (first match wins)
	Windows    []LossyWindow // transient lossy eras, pairwise disjoint in time
}

// NoLinkFaults is the empty plan: reliable channels.
func NoLinkFaults() LinkPlan { return LinkPlan{Name: "none"} }

// Enabled reports whether the plan perturbs any message at all.
func (lp LinkPlan) Enabled() bool {
	return lp.Drop > 0 || lp.Dup > 0 || lp.ReorderMax > 0 ||
		len(lp.Links) > 0 || len(lp.Windows) > 0
}

// Validate checks the plan against a system of n processes. Steady-state
// drop probabilities must lie in [0, 1) — a link that loses every message
// forever is not fair-lossy and would void every delivery guarantee, even
// the transport's. Duplication probabilities lie in [0, 1], reorder bounds
// are non-negative, link endpoints are -1 or in range, and lossy windows are
// well-formed and pairwise disjoint (overlapping windows would make the
// effective loss rate an accident of evaluation order).
func (lp LinkPlan) Validate(n int) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("sim: link plan %q: %s", lp.Name, fmt.Sprintf(format, args...))
	}
	if lp.Drop < 0 || lp.Drop >= 1 {
		return bad("baseline drop probability %v outside [0, 1)", lp.Drop)
	}
	if lp.Dup < 0 || lp.Dup > 1 {
		return bad("baseline duplication probability %v outside [0, 1]", lp.Dup)
	}
	if lp.ReorderMax < 0 {
		return bad("negative reorder bound %d", lp.ReorderMax)
	}
	for _, f := range lp.Links {
		if f.From < -1 || int(f.From) >= n || f.To < -1 || int(f.To) >= n {
			return bad("link %d->%d has endpoints outside -1..%d", f.From, f.To, n-1)
		}
		if f.Drop < 0 || f.Drop >= 1 {
			return bad("link %d->%d drop probability %v outside [0, 1)", f.From, f.To, f.Drop)
		}
		if f.Dup < 0 || f.Dup > 1 {
			return bad("link %d->%d duplication probability %v outside [0, 1]", f.From, f.To, f.Dup)
		}
	}
	ws := append([]LossyWindow(nil), lp.Windows...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
	for i, w := range ws {
		if w.Start < 0 || w.End <= w.Start {
			return bad("window [%d, %d) is not a valid era", w.Start, w.End)
		}
		if w.Drop < 0 || w.Drop > 1 {
			return bad("window [%d, %d) drop probability %v outside [0, 1]", w.Start, w.End, w.Drop)
		}
		for _, p := range w.Side {
			if p < 0 || int(p) >= n {
				return bad("window [%d, %d) side process %d out of range 0..%d", w.Start, w.End, p, n-1)
			}
		}
		if i > 0 && w.Start < ws[i-1].End {
			return bad("windows [%d, %d) and [%d, %d) overlap",
				ws[i-1].Start, ws[i-1].End, w.Start, w.End)
		}
	}
	return nil
}

// Apply validates the plan against k and installs it: from now on every
// delivery is filtered through the plan. Installing a second plan replaces
// the first.
func (lp LinkPlan) Apply(k *Kernel) error {
	if err := lp.Validate(k.N()); err != nil {
		return err
	}
	if lp.Enabled() {
		plan := lp
		k.links = &plan
	} else {
		k.links = nil
	}
	return nil
}

func (lp LinkPlan) String() string {
	var parts []string
	if lp.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", lp.Drop))
	}
	if lp.Dup > 0 {
		parts = append(parts, fmt.Sprintf("dup=%.2f", lp.Dup))
	}
	if lp.ReorderMax > 0 {
		parts = append(parts, fmt.Sprintf("reorder<=%d", lp.ReorderMax))
	}
	for _, f := range lp.Links {
		parts = append(parts, fmt.Sprintf("%d->%d{%.2f,%.2f}", f.From, f.To, f.Drop, f.Dup))
	}
	for _, w := range lp.Windows {
		parts = append(parts, fmt.Sprintf("[%d,%d)@%.2f", w.Start, w.End, w.Drop))
	}
	name := lp.Name
	if name == "" {
		name = "links"
	}
	return name + "{" + strings.Join(parts, ",") + "}"
}

// DropProb returns the effective drop probability for a message on link
// from->to at the given time: the first matching per-link override (else the
// baseline), plus any active lossy window, saturating below 1 only for the
// steady-state part (windows may reach 1). Exported so livechaos can apply
// the exact same plan semantics to wall-clock buses.
func (lp *LinkPlan) DropProb(from, to ProcID, now Time) float64 {
	p := lp.Drop
	for _, f := range lp.Links {
		if f.matches(from, to) {
			p = f.Drop
			break
		}
	}
	for _, w := range lp.Windows {
		if w.matches(from, to, now) {
			// Combine independently: lost if either the steady-state loss or
			// the window loss eats it.
			p = p + w.Drop - p*w.Drop
			break
		}
	}
	return p
}

// InWindow reports whether any lossy window of the plan covers link
// from->to at the given time — i.e. whether the link is currently inside a
// transient partition era. Exported so wall-clock consumers (livechaos) can
// attribute a drop to a partition window for their telemetry, with exactly
// the window semantics DropProb applies.
func (lp *LinkPlan) InWindow(from, to ProcID, now Time) bool {
	for _, w := range lp.Windows {
		if w.matches(from, to, now) {
			return true
		}
	}
	return false
}

// DupProb returns the duplication probability for link from->to.
func (lp *LinkPlan) DupProb(from, to ProcID) float64 {
	for _, f := range lp.Links {
		if f.matches(from, to) {
			return f.Dup
		}
	}
	return lp.Dup
}

// reorderExtra draws the adversary's extra in-transit delay for one message.
func (k *Kernel) reorderExtra() Time {
	if k.links == nil || k.links.ReorderMax <= 0 {
		return 0
	}
	return Time(k.rng.Int63n(int64(k.links.ReorderMax) + 1))
}

// linkArrive is the delivery-time firing point of the link adversary: the
// message is dropped or duplicated here, with counters and a trace event per
// perturbation, before the surviving copy reaches the normal delivery path.
func (k *Kernel) linkArrive(m Message) {
	lp := k.links
	if lp == nil {
		k.deliver(m)
		return
	}
	if p := lp.DropProb(m.From, m.To, k.now); p > 0 && k.rng.Float64() < p {
		k.inFlight--
		k.counters["link.dropped"]++
		k.counters["msg.dropped"]++
		k.counters["msg.dropped.link"]++
		k.Emit(Record{P: m.To, Kind: KindLink, Peer: m.From, Inst: portPrefix(m.Port), Note: "drop"})
		return
	}
	if p := lp.DupProb(m.From, m.To); p > 0 && k.rng.Float64() < p {
		// The duplicate is a second, independent delivery of the same wire
		// message a little later; it is not duplicated again.
		k.counters["link.duped"]++
		k.Emit(Record{P: m.To, Kind: KindLink, Peer: m.From, Inst: portPrefix(m.Port), Note: "dup"})
		extra := 1 + Time(k.rng.Int63n(8))
		k.inFlight++
		// evDeliver (not evArrive): the duplicate must bypass the adversary so
		// it is not dropped or duplicated again.
		k.scheduleEvent(k.now+extra, event{kind: evDeliver, msg: m})
	}
	k.deliver(m)
}
