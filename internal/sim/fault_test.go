package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFaultPlanShapes(t *testing.T) {
	if n := len(NoFaults().Crashes); n != 0 {
		t.Fatalf("NoFaults has %d crashes", n)
	}
	sp := SingleCrash(3, 100)
	if len(sp.Crashes) != 1 || sp.Crashes[0].P != 3 || sp.Crashes[0].At != 100 {
		t.Fatalf("SingleCrash: %v", sp)
	}
	st := StaggeredCrashes([]ProcID{1, 4}, 100, 50)
	if st.Crashes[0].At != 100 || st.Crashes[1].At != 150 {
		t.Fatalf("Staggered: %v", st)
	}
	ab := AllButOne(4, 2, 100, 10)
	if len(ab.Crashes) != 3 {
		t.Fatalf("AllButOne: %v", ab)
	}
	for _, c := range ab.Crashes {
		if c.P == 2 {
			t.Fatal("AllButOne crashed the survivor")
		}
	}
	correct := ab.Correct(4)
	if len(correct) != 1 || correct[0] != 2 {
		t.Fatalf("Correct: %v", correct)
	}
}

// TestMinorityCrashesProperty: the generated plan always crashes a strict
// minority, within the window, without duplicates.
func TestMinorityCrashesProperty(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 3 // 3..10
		rng := rand.New(rand.NewSource(seed))
		fp := MinorityCrashes(n, 100, 500, rng)
		if 2*len(fp.Crashes) >= n {
			return false // must be a strict minority
		}
		seen := map[ProcID]bool{}
		for _, c := range fp.Crashes {
			if c.At < 100 || c.At > 600 || seen[c.P] || int(c.P) >= n {
				return false
			}
			seen[c.P] = true
		}
		return len(fp.Crashes) >= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanApply(t *testing.T) {
	k := NewKernel(3)
	if err := StaggeredCrashes([]ProcID{0, 2}, 50, 100).Apply(k); err != nil {
		t.Fatal(err)
	}
	k.Run(1000)
	if !k.Crashed(0) || !k.Crashed(2) || k.Crashed(1) {
		t.Fatal("plan not applied")
	}
	if k.CrashTime(0) != 50 || k.CrashTime(2) != 150 {
		t.Fatalf("crash times: %d %d", k.CrashTime(0), k.CrashTime(2))
	}
}

// TestFaultPlanApplyRejectsMalformed: negative times, duplicate crashes and
// out-of-range processes are errors, and nothing is scheduled.
func TestFaultPlanApplyRejectsMalformed(t *testing.T) {
	cases := map[string]FaultPlan{
		"negative time": {Name: "bad", Crashes: []Crash{{P: 0, At: -5}}},
		"duplicate":     {Name: "bad", Crashes: []Crash{{P: 1, At: 10}, {P: 1, At: 20}}},
		"out of range":  {Name: "bad", Crashes: []Crash{{P: 7, At: 10}}},
		"negative proc": {Name: "bad", Crashes: []Crash{{P: -1, At: 10}}},
	}
	for name, fp := range cases {
		k := NewKernel(3)
		if err := fp.Apply(k); err == nil {
			t.Errorf("%s: plan %v accepted", name, fp)
		}
		k.Run(1000)
		for p := 0; p < 3; p++ {
			if k.Crashed(ProcID(p)) {
				t.Errorf("%s: crash of %d was scheduled despite the error", name, p)
			}
		}
	}
}

func TestRunUntil(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.AddAction(0, "inc", func() bool { return n < 100 }, func() { n++ })
	at, ok := k.RunUntil(100000, func() bool { return n >= 10 })
	if !ok || n != 10 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v", n, ok)
	}
	if at <= 0 {
		t.Fatal("no time elapsed")
	}
	// Condition never met: runs to quiescence (guard disables at 100).
	_, ok = k.RunUntil(100000, func() bool { return n > 1000 })
	if ok || n != 100 {
		t.Fatalf("RunUntil: n=%d ok=%v, want 100 false", n, ok)
	}
	// Immediate condition.
	if _, ok := k.RunUntil(100000, func() bool { return true }); !ok {
		t.Fatal("immediate condition missed")
	}
}

func TestFaultPlanString(t *testing.T) {
	if s := NoFaults().String(); s != "none{}" {
		t.Fatalf("got %q", s)
	}
	if s := SingleCrash(1, 20).String(); s != "single{1@20}" {
		t.Fatalf("got %q", s)
	}
}
