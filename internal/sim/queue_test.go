package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQueueOrdering: popping returns events in (time, seq) order regardless
// of push order (property-based).
func TestQueueOrdering(t *testing.T) {
	prop := func(times []int16) bool {
		var q eventQueue
		for i, tt := range times {
			q.push(event{at: Time(tt), seq: int64(i)})
		}
		var got []event
		for q.Len() > 0 {
			got = append(got, q.pop())
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at || (a.at == b.at && a.seq > b.seq) {
				return false
			}
		}
		return len(got) == len(times)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueStability: equal-time events pop in insertion (seq) order, which
// is what makes runs deterministic.
func TestQueueStability(t *testing.T) {
	var q eventQueue
	const n = 100
	for i := 0; i < n; i++ {
		q.push(event{at: 7, seq: int64(i)})
	}
	for i := 0; i < n; i++ {
		if e := q.pop(); e.seq != int64(i) {
			t.Fatalf("pop %d returned seq %d", i, e.seq)
		}
	}
}

// TestQueuePeek: peekAt returns the minimum time without removing anything.
func TestQueuePeek(t *testing.T) {
	var q eventQueue
	if _, ok := q.peekAt(); ok {
		t.Fatal("peekAt of empty queue should report !ok")
	}
	q.push(event{at: 5, seq: 1})
	q.push(event{at: 3, seq: 2})
	if at, ok := q.peekAt(); !ok || at != 3 {
		t.Fatalf("peekAt returned at=%d ok=%v, want 3 true", at, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("peekAt must not remove: len=%d", q.Len())
	}
}

// TestQueueMixedWorkload interleaves pushes and pops and checks global
// sortedness of the pop sequence against a reference sort.
func TestQueueMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var q eventQueue
	seq := int64(0)
	var popped []Time
	var pushed []Time
	for op := 0; op < 5000; op++ {
		if q.Len() == 0 || rng.Intn(3) > 0 {
			at := Time(rng.Intn(1000))
			seq++
			q.push(event{at: at, seq: seq})
			pushed = append(pushed, at)
		} else {
			popped = append(popped, q.pop().at)
		}
	}
	for q.Len() > 0 {
		popped = append(popped, q.pop().at)
	}
	sort.Slice(pushed, func(i, j int) bool { return pushed[i] < pushed[j] })
	if len(popped) != len(pushed) {
		t.Fatalf("lost events: %d vs %d", len(popped), len(pushed))
	}
	// The pop sequence is not globally sorted (pops interleave pushes), but
	// it must be a permutation of what was pushed.
	sorted := append([]Time(nil), popped...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := range sorted {
		if sorted[i] != pushed[i] {
			t.Fatalf("pop multiset differs at %d: %d vs %d", i, sorted[i], pushed[i])
		}
	}
}

// TestQueueNoSteadyStateAllocs: after warm-up, a push/pop cycle within the
// queue's high-water mark must not allocate — the slice's spare capacity is
// the event free list.
func TestQueueNoSteadyStateAllocs(t *testing.T) {
	var q eventQueue
	seq := int64(0)
	for i := 0; i < 64; i++ {
		seq++
		q.push(event{at: Time(i), seq: seq})
	}
	for q.Len() > 32 {
		q.pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		seq++
		q.push(event{at: Time(seq % 97), seq: seq})
		q.pop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocated %v times per run, want 0", allocs)
	}
}
