package sim

import (
	"testing"
)

func validLinkPlan() LinkPlan {
	return LinkPlan{
		Name: "good", Drop: 0.2, Dup: 0.1, ReorderMax: 8,
		Links:   []LinkFault{{From: 0, To: -1, Drop: 0.5, Dup: 0}},
		Windows: []LossyWindow{{Start: 100, End: 200, Drop: 1, Side: []ProcID{0}}, {Start: 300, End: 350, Drop: 0.5}},
	}
}

func TestLinkPlanValidate(t *testing.T) {
	if err := validLinkPlan().Validate(3); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := NoLinkFaults().Validate(3); err != nil {
		t.Fatalf("empty plan rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*LinkPlan)
	}{
		{"negative drop", func(p *LinkPlan) { p.Drop = -0.1 }},
		{"certain drop", func(p *LinkPlan) { p.Drop = 1 }},
		{"negative dup", func(p *LinkPlan) { p.Dup = -0.5 }},
		{"dup above one", func(p *LinkPlan) { p.Dup = 1.5 }},
		{"negative reorder", func(p *LinkPlan) { p.ReorderMax = -3 }},
		{"link from out of range", func(p *LinkPlan) { p.Links[0].From = 3 }},
		{"link to out of range", func(p *LinkPlan) { p.Links[0].To = -2 }},
		{"link drop certain", func(p *LinkPlan) { p.Links[0].Drop = 1 }},
		{"link dup negative", func(p *LinkPlan) { p.Links[0].Dup = -1 }},
		{"window inverted", func(p *LinkPlan) { p.Windows[0].End = p.Windows[0].Start }},
		{"window negative start", func(p *LinkPlan) { p.Windows[0].Start = -1 }},
		{"window drop above one", func(p *LinkPlan) { p.Windows[0].Drop = 1.01 }},
		{"window side out of range", func(p *LinkPlan) { p.Windows[0].Side = []ProcID{5} }},
		{"overlapping windows", func(p *LinkPlan) { p.Windows[1].Start = 150 }},
	}
	for _, tc := range cases {
		p := validLinkPlan()
		tc.mutate(&p)
		if err := p.Validate(3); err == nil {
			t.Errorf("%s: plan %v accepted", tc.name, p)
		}
	}
}

// TestLinkPlanApplyRejectsMalformed mirrors the FaultPlan contract: a
// malformed plan is an error and nothing is installed.
func TestLinkPlanApplyRejectsMalformed(t *testing.T) {
	k := NewKernel(2)
	bad := LinkPlan{Name: "bad", Drop: -1}
	if err := bad.Apply(k); err == nil {
		t.Fatal("malformed plan accepted")
	}
	if k.links != nil {
		t.Fatal("malformed plan was installed despite the error")
	}
}

// FuzzLinkPlanValidate cross-checks Validate against an independent
// statement of the rules: negative or super-unit probabilities, steady-state
// certain loss, out-of-range endpoints, malformed eras, and overlapping
// windows must be rejected; everything else must be accepted and then apply
// and run cleanly.
func FuzzLinkPlanValidate(f *testing.F) {
	f.Add(0.1, 0.1, int64(4), int8(0), int8(1), 0.3, int64(10), int64(20), int64(15), int64(30), 0.9)
	f.Add(-0.5, 0.0, int64(0), int8(-1), int8(-1), 0.0, int64(0), int64(0), int64(0), int64(0), 0.0)
	f.Add(0.99, 1.0, int64(100), int8(5), int8(2), 1.0, int64(5), int64(500), int64(400), int64(600), 1.0)
	f.Fuzz(func(t *testing.T, drop, dup float64, reorder int64, lFrom, lTo int8, lDrop float64,
		w1s, w1e, w2s, w2e int64, wDrop float64) {
		const n = 4
		plan := LinkPlan{
			Name: "fuzz", Drop: drop, Dup: dup, ReorderMax: Time(reorder),
			Links: []LinkFault{{From: ProcID(lFrom), To: ProcID(lTo), Drop: lDrop}},
			Windows: []LossyWindow{
				{Start: Time(w1s), End: Time(w1e), Drop: wDrop},
				{Start: Time(w2s), End: Time(w2e), Drop: wDrop, Side: []ProcID{0, 2}},
			},
		}
		probOK := func(p float64, allowOne bool) bool {
			if allowOne {
				return p >= 0 && p <= 1
			}
			return p >= 0 && p < 1
		}
		endpointOK := func(p ProcID) bool { return p >= -1 && int(p) < n }
		windowOK := func(w LossyWindow) bool {
			return w.Start >= 0 && w.End > w.Start && probOK(w.Drop, true)
		}
		lo, hi := plan.Windows[0], plan.Windows[1]
		if hi.Start < lo.Start {
			lo, hi = hi, lo
		}
		wantOK := probOK(drop, false) && probOK(dup, true) && reorder >= 0 &&
			endpointOK(plan.Links[0].From) && endpointOK(plan.Links[0].To) &&
			probOK(lDrop, false) && windowOK(plan.Windows[0]) && windowOK(plan.Windows[1]) &&
			hi.Start >= lo.End

		err := plan.Validate(n)
		if wantOK && err != nil {
			t.Fatalf("well-formed plan rejected: %v\nplan: %+v", err, plan)
		}
		if !wantOK && err == nil {
			t.Fatalf("malformed plan accepted: %+v", plan)
		}
		if err != nil {
			return
		}
		// An accepted plan must install and run without panicking.
		k := NewKernel(n, WithSeed(7))
		if err := plan.Apply(k); err != nil {
			t.Fatalf("validated plan failed to apply: %v", err)
		}
		for p := 0; p < n; p++ {
			p := ProcID(p)
			k.Handle(p, "m", func(Message) {})
		}
		k.After(0, 1, func() {
			for q := 1; q < n; q++ {
				k.Send(0, ProcID(q), "m", nil)
			}
		})
		k.Run(2000)
		sent := k.Counter("msg.sent")
		if got := k.Counter("msg.delivered") + k.Counter("msg.dropped") - k.Counter("link.duped"); got > sent {
			t.Fatalf("message accounting: delivered+dropped-duped=%d > sent=%d", got, sent)
		}
	})
}

// TestLinkDropAndCounterSplit: a lossy link loses roughly its share of
// messages, the legacy msg.dropped counter equals the sum of its split
// causes, and every perturbation leaves a trace record.
func TestLinkDropAndCounterSplit(t *testing.T) {
	k := NewKernel(3, WithSeed(5), WithDelay(FixedDelay{D: 2}))
	if err := (LinkPlan{Name: "lossy", Drop: 0.3, Dup: 0.2}).Apply(k); err != nil {
		t.Fatal(err)
	}
	var got int
	k.Handle(1, "m", func(Message) { got++ })
	k.Handle(2, "m", func(Message) {})
	const sends = 2000
	for i := 0; i < sends; i++ {
		k.After(0, Time(1+i), func() {
			k.Send(0, 1, "m", nil)
			k.Send(0, 2, "m", nil) // 2 crashes mid-run: crash-drops
		})
	}
	k.CrashAt(2, 100)
	k.Run(sends + 1000)

	if k.Counter("msg.dropped") != k.Counter("msg.dropped.crash")+k.Counter("msg.dropped.link") {
		t.Fatalf("msg.dropped=%d is not the sum of crash=%d and link=%d",
			k.Counter("msg.dropped"), k.Counter("msg.dropped.crash"), k.Counter("msg.dropped.link"))
	}
	if k.Counter("msg.dropped.crash") == 0 {
		t.Fatal("expected crash-drops on the link to the crashed process")
	}
	if k.Counter("link.dropped") != k.Counter("msg.dropped.link") {
		t.Fatalf("link.dropped=%d != msg.dropped.link=%d",
			k.Counter("link.dropped"), k.Counter("msg.dropped.link"))
	}
	frac := float64(k.Counter("link.dropped")) / float64(2*sends)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("drop fraction %.3f far from configured 0.3", frac)
	}
	if k.Counter("link.duped") == 0 {
		t.Fatal("no duplicates under a dup plan")
	}
	if got >= sends || got < sends/2 {
		t.Fatalf("receiver got %d of %d (dup adds, drop removes ~30%%)", got, sends)
	}
	var dropEvents, dupEvents int64
	for _, r := range k.Tail() {
		if r.Kind == KindLink {
			switch r.Note {
			case "drop":
				dropEvents++
			case "dup":
				dupEvents++
			}
		}
	}
	if dropEvents == 0 && dupEvents == 0 {
		t.Fatal("no link trace events in the kernel tail")
	}
}

// TestLossyWindowIsTransient: during the window messages between the sides
// are all lost; before and after they flow.
func TestLossyWindowIsTransient(t *testing.T) {
	k := NewKernel(2, WithSeed(3), WithDelay(FixedDelay{D: 1}))
	plan := LinkPlan{Name: "partition", Windows: []LossyWindow{{Start: 100, End: 200, Drop: 1, Side: []ProcID{0}}}}
	if err := plan.Apply(k); err != nil {
		t.Fatal(err)
	}
	var arrivals []Time
	k.Handle(1, "m", func(Message) { arrivals = append(arrivals, k.Now()) })
	for i := 0; i < 300; i++ {
		k.After(0, Time(1+i), func() { k.Send(0, 1, "m", nil) })
	}
	k.Run(400)
	var inWindow, outside int
	for _, at := range arrivals {
		if at >= 100 && at < 200 {
			inWindow++
		} else {
			outside++
		}
	}
	if inWindow != 0 {
		t.Fatalf("%d messages delivered inside the total-loss window", inWindow)
	}
	if outside < 150 {
		t.Fatalf("only %d messages delivered outside the window", outside)
	}
}

// TestReorderExtraBoundsDelay: the reorder adversary stretches in-transit
// times but never below the delay policy's own minimum.
func TestReorderExtraBoundsDelay(t *testing.T) {
	k := NewKernel(2, WithSeed(9), WithDelay(FixedDelay{D: 3}))
	if err := (LinkPlan{Name: "ro", ReorderMax: 10}).Apply(k); err != nil {
		t.Fatal(err)
	}
	sentAt := make(map[int]Time)
	var spread bool
	k.Handle(1, "m", func(m Message) {
		d := k.Now() - sentAt[m.Payload.(int)]
		if d < 3 || d > 13 {
			t.Errorf("in-transit time %d outside [3, 13]", d)
		}
		if d > 3 {
			spread = true
		}
	})
	for i := 0; i < 200; i++ {
		i := i
		k.After(0, Time(1+i), func() {
			sentAt[i] = k.Now()
			k.Send(0, 1, "m", i)
		})
	}
	k.Run(500)
	if !spread {
		t.Fatal("reorder adversary never stretched a delay")
	}
}

// TestNoLinkPlanIsByteIdentical: installing an empty plan changes nothing —
// the adversary must consume no randomness when disabled, preserving every
// existing seeded trace.
func TestNoLinkPlanIsByteIdentical(t *testing.T) {
	run := func(install bool) int64 {
		k := NewKernel(3, WithSeed(11))
		if install {
			if err := NoLinkFaults().Apply(k); err != nil {
				t.Fatal(err)
			}
		}
		k.Handle(1, "m", func(Message) {})
		for i := 0; i < 50; i++ {
			k.After(0, Time(1+i*3), func() { k.Send(0, 1, "m", nil) })
		}
		k.Run(1000)
		return int64(k.Rand().Int63())
	}
	if a, b := run(false), run(true); a != b {
		t.Fatal("empty link plan perturbed the deterministic run")
	}
}
