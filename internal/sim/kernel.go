package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// proc is the kernel-side bookkeeping for one process.
type proc struct {
	id          ProcID
	crashed     bool
	crashedAt   Time
	actions     []Action
	rot         int // rotation cursor for weakly fair action selection
	stepPending bool
	handlers    map[string]Handler
}

// Kernel is a deterministic discrete-event simulator of an asynchronous
// message-passing system. It is single-threaded: protocol code runs inside
// kernel callbacks and must not spawn goroutines or block.
type Kernel struct {
	now      Time
	seq      int64
	queue    eventQueue
	procs    []*proc
	rng      *rand.Rand
	delay    DelayPolicy
	stepMax  Time // next step scheduled within [1, stepMax] ticks
	tracer   Tracer
	inFlight int
	counters map[string]int64
	sentKeys map[string]string // port -> interned "msg.sent:<prefix>" counter key
	stopped  bool
	links    *LinkPlan // fair-lossy link adversary (nil = reliable channels)
	sendHook SendHook  // transport interposition (see SetSendHook)

	// Robustness hooks (see robust.go).
	triggers  []*trigger      // armed state-predicate crashes
	budget    Budget          // run budget; zero fields = unlimited
	exhausted *BudgetExceeded // set when the watchdog stops the run
	events    int64           // total events processed
	tail      []Record        // ring buffer of recent records
	tailLen   int64           // records ever emitted
}

// Option configures a Kernel at construction time.
type Option func(*Kernel)

// WithDelay sets the message delay policy (default UniformDelay{1, 8}).
func WithDelay(d DelayPolicy) Option { return func(k *Kernel) { k.delay = d } }

// WithSeed seeds the kernel's deterministic random source (default 1).
func WithSeed(seed int64) Option {
	return func(k *Kernel) { k.rng = rand.New(rand.NewSource(seed)) }
}

// WithTracer attaches a Tracer that receives every emitted Record.
func WithTracer(t Tracer) Option { return func(k *Kernel) { k.tracer = t } }

// WithStepJitter bounds the gap between consecutive steps of a live process
// (default 3). Larger values give the adversary coarser interleavings.
func WithStepJitter(maxGap Time) Option {
	return func(k *Kernel) { k.stepMax = max(1, maxGap) }
}

// NewKernel creates a kernel simulating n processes with ids 0..n-1.
func NewKernel(n int, opts ...Option) *Kernel {
	k := &Kernel{
		rng:      rand.New(rand.NewSource(1)),
		delay:    UniformDelay{Min: 1, Max: 8},
		stepMax:  3,
		counters: make(map[string]int64),
		sentKeys: make(map[string]string),
	}
	for i := 0; i < n; i++ {
		k.procs = append(k.procs, &proc{
			id:        ProcID(i),
			crashedAt: Never,
			handlers:  make(map[string]Handler),
		})
	}
	for _, o := range opts {
		o(k)
	}
	return k
}

// N returns the number of processes.
func (k *Kernel) N() int { return len(k.procs) }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source for protocol modules
// that need randomness (all randomness must come from here to keep runs
// reproducible).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Crashed reports whether p has crashed (ground truth; only fault-schedule
// aware oracles may consult this).
func (k *Kernel) Crashed(p ProcID) bool { return k.procs[p].crashed }

// CrashTime returns the time p crashed, or Never.
func (k *Kernel) CrashTime(p ProcID) Time { return k.procs[p].crashedAt }

// Live reports whether p has not crashed.
func (k *Kernel) Live(p ProcID) bool { return !k.procs[p].crashed }

// AddAction registers a guarded action at process p. Guards must be
// side-effect-free predicates over p's local state; bodies are atomic steps.
func (k *Kernel) AddAction(p ProcID, name string, guard func() bool, body func()) {
	pr := k.procs[p]
	pr.actions = append(pr.actions, Action{Name: name, Guard: guard, Body: body})
	k.wake(p)
}

// Handle registers the message handler for the given port at process p.
// Registering twice for the same port is a programming error.
func (k *Kernel) Handle(p ProcID, port string, h Handler) {
	pr := k.procs[p]
	if _, dup := pr.handlers[port]; dup {
		panic(fmt.Sprintf("sim: duplicate handler for port %q at process %d", port, p))
	}
	pr.handlers[port] = h
}

// SetSendHook installs (or, with nil, removes) a send interceptor. It exists
// for internal/transport: with a hook installed, every Send from protocol
// code can be transparently wrapped in a reliable-delivery envelope without
// the protocol modules changing at all. RawSend bypasses the hook, which is
// how the transport's own envelopes avoid being re-intercepted.
func (k *Kernel) SetSendHook(h SendHook) { k.sendHook = h }

// Send transmits a message on the simulated network. Over the default
// reliable non-FIFO channels delivery is scheduled according to the delay
// policy; under an installed LinkPlan the message may additionally be
// dropped, duplicated, or further delayed at delivery time. Messages to
// processes that have crashed by delivery time are dropped (the paper only
// guarantees delivery to correct processes). If a SendHook is installed and
// consumes the message, nothing is transmitted here — the hook's transport
// owns delivery from that point on.
func (k *Kernel) Send(from, to ProcID, port string, payload any) {
	m := Message{From: from, To: to, Port: port, Payload: payload}
	if k.sendHook != nil && k.sendHook(m) {
		return
	}
	k.RawSend(from, to, port, payload)
}

// RawSend transmits a message directly on the simulated links, bypassing any
// installed SendHook. Protocol code should use Send; RawSend exists for the
// transport layer underneath it.
func (k *Kernel) RawSend(from, to ProcID, port string, payload any) {
	k.counters["msg.sent"]++
	k.counters[k.sentKey(port)]++
	m := Message{From: from, To: to, Port: port, Payload: payload}
	d := k.delay.Delay(k.rng, from, to, k.now)
	if d < 1 {
		d = 1
	}
	d += k.reorderExtra()
	k.inFlight++
	k.scheduleEvent(k.now+d, event{kind: evArrive, msg: m})
}

// sentKey returns the interned "msg.sent:<prefix>" counter key for a port.
// Ports repeat across a run's lifetime (a system has a fixed set of channel
// names), so caching the concatenation makes steady-state sends allocate no
// counter strings at all.
func (k *Kernel) sentKey(port string) string {
	if key, ok := k.sentKeys[port]; ok {
		return key
	}
	key := "msg.sent:" + portPrefix(port)
	k.sentKeys[port] = key
	return key
}

// Dispatch synchronously invokes the handler registered for m.Port at m.To,
// as if the message had just been delivered by the network, and wakes the
// receiving process. Messages to crashed processes are dropped. It exists
// for the transport layer, which receives wire envelopes on its own port and
// hands the restored protocol message to the original handler.
func (k *Kernel) Dispatch(m Message) {
	pr := k.procs[m.To]
	if pr.crashed {
		k.counters["msg.dropped"]++
		k.counters["msg.dropped.crash"]++
		return
	}
	h, ok := pr.handlers[m.Port]
	if !ok {
		panic(fmt.Sprintf("sim: no handler for port %q at process %d", m.Port, m.To))
	}
	h(m)
	k.wake(m.To)
}

// After schedules fn to run at process p after d ticks (a local timer). The
// timer is discarded if p has crashed by then.
func (k *Kernel) After(p ProcID, d Time, fn func()) {
	if d < 1 {
		d = 1
	}
	k.scheduleEvent(k.now+d, event{kind: evTimer, p: p, fn: fn})
}

// CrashAt schedules process p to crash at time t: from t on it takes no
// steps, receives no messages, and fires no timers.
func (k *Kernel) CrashAt(p ProcID, t Time) {
	k.schedule(t, func() { k.crashNow(p, "") })
}

// crashNow crashes p immediately; why (may be empty) lands in the crash
// record's Note for diagnostics.
func (k *Kernel) crashNow(p ProcID, why string) {
	pr := k.procs[p]
	if pr.crashed {
		return
	}
	pr.crashed = true
	pr.crashedAt = k.now
	k.Emit(Record{P: p, Kind: "crash", Peer: -1, Note: why})
}

// Emit records a trace event, stamping it with the current time and a fresh
// sequence number. The record always enters the kernel's diagnostic tail
// (see Tail); it is forwarded to the Tracer only if one is attached.
func (k *Kernel) Emit(r Record) {
	r.T = k.now
	k.seq++
	r.Seq = k.seq
	if k.tail == nil {
		k.tail = make([]Record, tailCap)
	}
	k.tail[k.tailLen%int64(len(k.tail))] = r
	k.tailLen++
	if k.tracer != nil {
		k.tracer.Trace(r)
	}
}

// Counter returns a named kernel counter (e.g. "msg.sent", "msg.dropped",
// "steps", "msg.sent:dx"). "msg.dropped" is the sum of its two causes,
// "msg.dropped.crash" (receiver dead at delivery time) and
// "msg.dropped.link" (eaten by the link adversary).
func (k *Kernel) Counter(name string) int64 { return k.counters[name] }

// Count adds delta to a named kernel counter. It exists so layered modules
// (the transport, chiefly) can account into the same table that Counters
// reports and experiments read.
func (k *Kernel) Count(name string, delta int64) { k.counters[name] += delta }

// Counters returns a sorted snapshot of all counters.
func (k *Kernel) Counters() []string {
	names := make([]string, 0, len(k.counters))
	for n := range k.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = fmt.Sprintf("%s=%d", n, k.counters[n])
	}
	return out
}

// Run executes the simulation until virtual time exceeds horizon or no
// events remain (quiescence). It returns the time at which the run stopped.
func (k *Kernel) Run(horizon Time) Time {
	end, _ := k.runLoop(horizon, nil)
	return end
}

// runLoop is the shared event loop behind Run and RunUntil. After every
// event it runs the robustness hooks: armed crash triggers and the budget
// watchdog. cond (may be nil) is the RunUntil early-exit predicate.
func (k *Kernel) runLoop(horizon Time, cond func() bool) (Time, bool) {
	if cond != nil && cond() {
		return k.now, true
	}
	for k.queue.Len() > 0 {
		if next, _ := k.queue.peekAt(); next > horizon {
			k.now = horizon
			return k.now, false
		}
		e := k.queue.pop()
		k.now = e.at
		k.fire(&e)
		k.events++
		if len(k.triggers) > 0 {
			k.fireTriggers()
		}
		if k.exhausted == nil {
			k.checkBudget()
		}
		if cond != nil && cond() {
			return k.now, true
		}
		if k.stopped {
			break
		}
	}
	if cond == nil {
		return k.now, false
	}
	return k.now, cond()
}

// Stop aborts the run at the end of the current event (used by monitors that
// detected a terminal condition).
func (k *Kernel) Stop() { k.stopped = true }

// fire executes one popped event according to its kind. The typed variants
// carry their payload inline; only evFunc and evTimer indirect through a
// closure, and those are cold or caller-supplied respectively.
func (k *Kernel) fire(e *event) {
	switch e.kind {
	case evArrive:
		k.linkArrive(e.msg)
	case evDeliver:
		k.deliver(e.msg)
	case evStep:
		k.step(k.procs[e.p])
	case evTimer:
		if k.procs[e.p].crashed {
			return
		}
		e.fn()
		k.wake(e.p)
	default:
		e.fn()
	}
}

// schedule enqueues fn at absolute time t (clamped to be after now).
func (k *Kernel) schedule(t Time, fn func()) {
	k.scheduleEvent(t, event{kind: evFunc, fn: fn})
}

// scheduleEvent enqueues a pre-built event at absolute time t (clamped to be
// after now), stamping it with a fresh sequence number.
func (k *Kernel) scheduleEvent(t Time, e event) {
	if t <= k.now {
		t = k.now + 1
	}
	k.seq++
	e.at = t
	e.seq = k.seq
	k.queue.push(e)
}

func (k *Kernel) deliver(m Message) {
	k.inFlight--
	pr := k.procs[m.To]
	if pr.crashed {
		k.counters["msg.dropped"]++
		k.counters["msg.dropped.crash"]++
		return
	}
	h, ok := pr.handlers[m.Port]
	if !ok {
		panic(fmt.Sprintf("sim: no handler for port %q at process %d", m.Port, m.To))
	}
	k.counters["msg.delivered"]++
	h(m)
	k.wake(m.To)
}

// wake ensures a step event is pending for p, so its guards are re-examined.
func (k *Kernel) wake(p ProcID) {
	pr := k.procs[p]
	if pr.crashed || pr.stepPending {
		return
	}
	pr.stepPending = true
	gap := Time(1)
	if k.stepMax > 1 {
		gap = 1 + Time(k.rng.Int63n(int64(k.stepMax)))
	}
	k.scheduleEvent(k.now+gap, event{kind: evStep, p: pr.id})
}

// step executes at most one enabled action of pr, chosen by rotating through
// the action list (weak fairness), then reschedules if anything ran.
func (k *Kernel) step(pr *proc) {
	pr.stepPending = false
	if pr.crashed || len(pr.actions) == 0 {
		return
	}
	n := len(pr.actions)
	for i := 0; i < n; i++ {
		idx := (pr.rot + i) % n
		a := pr.actions[idx]
		if a.Guard() {
			pr.rot = idx + 1
			k.counters["steps"]++
			a.Body()
			k.wake(pr.id)
			return
		}
	}
	// No action enabled: go idle until a delivery, timer, or local change
	// wakes the process again.
}

func portPrefix(port string) string {
	for i := 0; i < len(port); i++ {
		if port[i] == '/' {
			return port[:i]
		}
	}
	return port
}
