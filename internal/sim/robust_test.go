package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestCrashWhen: a state-predicate crash fires the first time the predicate
// holds after an event, at the then-current virtual time.
func TestCrashWhen(t *testing.T) {
	k := NewKernel(2)
	n := 0
	k.AddAction(0, "inc", func() bool { return n < 50 }, func() { n++ })
	k.CrashWhen(0, "n reached 10", func() bool { return n >= 10 })
	k.Run(100000)
	if !k.Crashed(0) {
		t.Fatal("trigger never fired")
	}
	if n != 10 {
		t.Fatalf("crashed at n=%d, want 10 (the instant the predicate held)", n)
	}
	if k.Crashed(1) {
		t.Fatal("wrong process crashed")
	}
	if ct := k.CrashTime(0); ct <= 0 {
		t.Fatalf("bad crash time %d", ct)
	}
}

// TestCrashWhenEmitsRecordWithNote: the trigger's label reaches the crash
// trace record, and the trigger is one-shot.
func TestCrashWhenEmitsRecordWithNote(t *testing.T) {
	rec := &recorder{}
	k := NewKernel(1, WithTracer(rec))
	n := 0
	k.AddAction(0, "inc", func() bool { return n < 5 }, func() { n++ })
	k.CrashWhen(0, "test-trigger", func() bool { return n >= 2 })
	k.Run(10000)
	var crashes []Record
	for _, r := range rec.records {
		if r.Kind == "crash" {
			crashes = append(crashes, r)
		}
	}
	if len(crashes) != 1 {
		t.Fatalf("%d crash records, want 1", len(crashes))
	}
	if crashes[0].Note != "test-trigger" {
		t.Fatalf("crash note %q, want the trigger label", crashes[0].Note)
	}
}

type recorder struct{ records []Record }

func (r *recorder) Trace(rec Record) { r.records = append(r.records, rec) }

// TestWatchdogStepBudget: a livelocked action system (always enabled, no
// progress) is stopped by the step budget long before the horizon, with a
// structured diagnostic carrying the counters and the trace tail.
func TestWatchdogStepBudget(t *testing.T) {
	k := NewKernel(2)
	k.AddAction(0, "spin", func() bool { return true }, func() {
		k.Emit(Record{P: 0, Kind: "mark", Peer: -1, Note: "spinning"})
	})
	k.SetBudget(Budget{MaxSteps: 500})
	end, fail := k.RunProtected(1 << 40)
	if fail == nil || fail.Watchdog == nil {
		t.Fatal("watchdog did not fire on a livelocked run")
	}
	wd := fail.Watchdog
	if wd.Steps <= 500 || wd.At != end {
		t.Fatalf("diagnostic inconsistent: steps=%d at=%d end=%d", wd.Steps, wd.At, end)
	}
	if len(wd.Tail) == 0 {
		t.Fatal("diagnostic has no trace tail")
	}
	if !strings.Contains(wd.Tail[len(wd.Tail)-1].Note, "spinning") {
		t.Fatalf("tail does not show the livelocked activity: %+v", wd.Tail[len(wd.Tail)-1])
	}
	if !strings.Contains(wd.Diagnostic(), "livelock") {
		t.Fatalf("diagnostic text: %q", wd.Diagnostic())
	}
}

// TestWatchdogQueueBudget: runaway event amplification (each delivery sends
// two more messages) trips the queue budget.
func TestWatchdogQueueBudget(t *testing.T) {
	k := NewKernel(2)
	var amplify Handler
	amplify = func(m Message) {
		k.Send(m.To, m.From, "amp", nil)
		k.Send(m.To, m.From, "amp", nil)
	}
	k.Handle(0, "amp", amplify)
	k.Handle(1, "amp", amplify)
	k.Send(0, 1, "amp", nil)
	k.SetBudget(Budget{MaxQueue: 2000})
	_, fail := k.RunProtected(1 << 40)
	if fail == nil || fail.Watchdog == nil {
		t.Fatal("queue watchdog did not fire on exponential amplification")
	}
	if fail.Watchdog.QueueLen <= 2000 {
		t.Fatalf("queue length %d at breach, want > 2000", fail.Watchdog.QueueLen)
	}
}

// TestWatchdogQuietRun: a healthy run under a generous budget completes with
// no failure and Exhausted stays nil.
func TestWatchdogQuietRun(t *testing.T) {
	k := NewKernel(2)
	n := 0
	k.AddAction(0, "inc", func() bool { return n < 100 }, func() { n++ })
	k.SetBudget(Budget{MaxSteps: 10000, MaxEvents: 100000, MaxQueue: 1000})
	_, fail := k.RunProtected(1 << 30)
	if fail != nil {
		t.Fatalf("healthy run failed: %v", fail)
	}
	if k.Exhausted() != nil {
		t.Fatal("Exhausted set on a healthy run")
	}
	if n != 100 {
		t.Fatalf("run incomplete: n=%d", n)
	}
}

// TestRunProtectedRecoversPanic: a protocol panic becomes a structured
// failure with the stack and trace tail, not a test crash.
func TestRunProtectedRecoversPanic(t *testing.T) {
	k := NewKernel(1)
	k.After(0, 10, func() {
		k.Emit(Record{P: 0, Kind: "mark", Peer: -1, Note: "about to blow"})
		panic("planted protocol bug")
	})
	end, fail := k.RunProtected(1000)
	if fail == nil || fail.Panic == nil {
		t.Fatal("panic was not converted into a failure")
	}
	if got := fail.Error(); !strings.Contains(got, "planted protocol bug") {
		t.Fatalf("failure message %q does not carry the panic", got)
	}
	if !strings.Contains(fail.Stack, "robust_test") {
		t.Fatal("failure carries no useful stack")
	}
	if len(fail.Tail) == 0 || fail.Tail[len(fail.Tail)-1].Note != "about to blow" {
		t.Fatalf("failure tail missing context: %v", fail.Tail)
	}
	if end != 10 {
		t.Fatalf("failure at t=%d, want 10", end)
	}
}

// TestCrashDropsInFlight pins the DESIGN.md crash semantics: a message in
// flight to a process that crashes before delivery is dropped, counted, and
// its handler never runs.
func TestCrashDropsInFlight(t *testing.T) {
	k := NewKernel(2, WithDelay(FixedDelay{D: 10}))
	delivered := 0
	k.Handle(1, "ping", func(Message) { delivered++ })
	k.After(0, 1, func() { k.Send(0, 1, "ping", nil) })
	k.CrashAt(1, 5) // after the send (t=1), before delivery (t=11)
	k.Run(1000)
	if delivered != 0 {
		t.Fatal("handler ran at a crashed process")
	}
	if got := k.Counter("msg.dropped"); got != 1 {
		t.Fatalf("msg.dropped=%d, want 1", got)
	}
	if got := k.Counter("msg.delivered"); got != 0 {
		t.Fatalf("msg.delivered=%d, want 0", got)
	}
	// A timer pending at the crashed process is discarded too.
	fired := false
	k2 := NewKernel(1)
	k2.After(0, 50, func() { fired = true })
	k2.CrashAt(0, 10)
	k2.Run(1000)
	if fired {
		t.Fatal("timer fired at a crashed process")
	}
}

// TestTailRingBuffer: the diagnostic tail keeps the most recent records in
// order, capped at its capacity, even with no tracer attached.
func TestTailRingBuffer(t *testing.T) {
	k := NewKernel(1)
	if got := k.Tail(); len(got) != 0 {
		t.Fatalf("fresh kernel has tail %v", got)
	}
	total := tailCap + 17
	for i := 0; i < total; i++ {
		k.Emit(Record{P: 0, Kind: "mark", Peer: -1, Note: fmt.Sprintf("m%d", i)})
	}
	tail := k.Tail()
	if len(tail) != tailCap {
		t.Fatalf("tail length %d, want %d", len(tail), tailCap)
	}
	if tail[0].Note != fmt.Sprintf("m%d", total-tailCap) || tail[len(tail)-1].Note != fmt.Sprintf("m%d", total-1) {
		t.Fatalf("tail window wrong: first=%s last=%s", tail[0].Note, tail[len(tail)-1].Note)
	}
}
