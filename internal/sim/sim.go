// Package sim provides a deterministic discrete-event simulation kernel for
// asynchronous message-passing distributed systems with crash faults.
//
// The execution model follows the technical framework of Sastry, Pike and
// Welch (SPAA 2009/2010): a finite set of processes execute atomic steps; in
// each step a process may receive a message, make a state transition, and
// send messages. Processes are connected by reliable, non-FIFO channels:
// every message sent to a live process is eventually delivered, and messages
// are neither lost, duplicated, nor corrupted. (A LinkPlan — see link.go —
// optionally weakens the channels to fair-lossy links that drop, duplicate,
// and reorder; internal/transport rebuilds the reliable-channel axioms on
// top of them.) Message delay, relative
// process speed, and scheduling are controlled by a seeded adversary, so a
// run is fully reproducible from (program, fault schedule, delay policy,
// seed). A conceptual discrete global clock (virtual time) orders events but
// is inaccessible to protocol code except through explicit timers.
//
// Protocol code is written as guarded-command action systems, matching the
// paper's presentation: each process owns a set of actions, each with a
// Guard (a side-effect-free predicate over the process's local state) and a
// Body (the atomic state transition, which may send messages). The kernel
// guarantees weak fairness: an action whose guard is continuously enabled at
// a live process is eventually executed.
package sim

import "fmt"

// Time is discrete virtual time in ticks. The global clock is a modeling
// device only; protocol code must not branch on absolute times except via
// explicit timers (e.g. heartbeat intervals).
type Time int64

// ProcID identifies a process. Processes are numbered 0..N-1.
type ProcID int

// Never is a sentinel Time meaning "does not happen".
const Never Time = -1

// KindLink is the Record kind emitted by the fair-lossy link adversary when
// it perturbs a message (Note is "drop" or "dup", Peer the sender, Inst the
// port prefix of the affected message).
const KindLink = "link"

// Message is a single protocol message in transit between two processes.
// Port routes the message to the handler registered under the same name at
// the destination; composed protocols namespace their ports (for example
// "dx/3-1/0/fork").
type Message struct {
	From    ProcID
	To      ProcID
	Port    string
	Payload any
}

func (m Message) String() string {
	return fmt.Sprintf("%d->%d %s %v", m.From, m.To, m.Port, m.Payload)
}

// Record is a structured trace record emitted by the kernel and by protocol
// modules. Checkers reconstruct runs (eating intervals, suspicion history,
// crash times) purely from the record stream.
type Record struct {
	T    Time   // virtual time of the event
	Seq  int64  // global sequence number (total order tie-break)
	P    ProcID // process the event happened at
	Kind string // event kind, e.g. "state", "suspect", "trust", "crash"
	Peer ProcID // peer process, when relevant (else -1)
	Inst string // instance name (table, oracle, module), when relevant
	Note string // free-form detail, e.g. the new dining state
}

// Tracer receives every Record emitted during a run.
type Tracer interface {
	Trace(Record)
}

// Handler processes one delivered message as part of an atomic step.
type Handler func(Message)

// Action is one guarded command of a process's action system.
type Action struct {
	Name  string
	Guard func() bool
	Body  func()
}
