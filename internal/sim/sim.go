// Package sim provides a deterministic discrete-event simulation kernel for
// asynchronous message-passing distributed systems with crash faults.
//
// The execution model follows the technical framework of Sastry, Pike and
// Welch (SPAA 2009/2010): a finite set of processes execute atomic steps; in
// each step a process may receive a message, make a state transition, and
// send messages. Processes are connected by reliable, non-FIFO channels:
// every message sent to a live process is eventually delivered, and messages
// are neither lost, duplicated, nor corrupted. (A LinkPlan — see link.go —
// optionally weakens the channels to fair-lossy links that drop, duplicate,
// and reorder; internal/transport rebuilds the reliable-channel axioms on
// top of them.) Message delay, relative
// process speed, and scheduling are controlled by a seeded adversary, so a
// run is fully reproducible from (program, fault schedule, delay policy,
// seed). A conceptual discrete global clock (virtual time) orders events but
// is inaccessible to protocol code except through explicit timers.
//
// Protocol code is written as guarded-command action systems, matching the
// paper's presentation: each process owns a set of actions, each with a
// Guard (a side-effect-free predicate over the process's local state) and a
// Body (the atomic state transition, which may send messages). The kernel
// guarantees weak fairness: an action whose guard is continuously enabled at
// a live process is eventually executed.
//
// The model vocabulary (Time, ProcID, Message, Record, …) lives in
// internal/rt and is aliased here; the Kernel is one implementation of
// rt.Runtime, the interface protocol modules are written against. The other
// is internal/live, which executes the same protocol code in real time.
package sim

import "repro/internal/rt"

// Time is discrete virtual time in ticks. The global clock is a modeling
// device only; protocol code must not branch on absolute times except via
// explicit timers (e.g. heartbeat intervals).
type Time = rt.Time

// ProcID identifies a process. Processes are numbered 0..N-1.
type ProcID = rt.ProcID

// Never is a sentinel Time meaning "does not happen".
const Never = rt.Never

// KindLink is the Record kind emitted by the fair-lossy link adversary when
// it perturbs a message (Note is "drop" or "dup", Peer the sender, Inst the
// port prefix of the affected message).
const KindLink = "link"

// Message is a single protocol message in transit between two processes.
type Message = rt.Message

// Record is a structured trace record emitted by the kernel and by protocol
// modules. Checkers reconstruct runs (eating intervals, suspicion history,
// crash times) purely from the record stream.
type Record = rt.Record

// Tracer receives every Record emitted during a run.
type Tracer = rt.Tracer

// Handler processes one delivered message as part of an atomic step.
type Handler = rt.Handler

// SendHook intercepts protocol-level sends (see Kernel.SetSendHook).
type SendHook = rt.SendHook

// Action is one guarded command of a process's action system.
type Action struct {
	Name  string
	Guard func() bool
	Body  func()
}

// The Kernel is the simulation-side implementation of the protocol-facing
// runtime interfaces.
var (
	_ rt.Runtime          = (*Kernel)(nil)
	_ rt.TransportRuntime = (*Kernel)(nil)
)
