package sim

import (
	"fmt"
	"runtime/debug"
	"strings"
)

// This file holds the kernel's robustness hooks: state-predicate-triggered
// crashes, the step/event budget watchdog that converts livelock into a
// structured diagnostic, and panic recovery for running untrusted protocol
// boxes. They exist for the chaos campaign engine (internal/chaos), which
// needs an adversary that can strike at protocol-chosen worst moments and a
// harness that survives whatever the protocol under test does in response.

// tailCap bounds the kernel's always-on ring buffer of recent trace records,
// which diagnostics attach as the "what was happening" context.
const tailCap = 48

// trigger is one pending state-predicate crash.
type trigger struct {
	p    ProcID
	why  string
	pred func() bool
}

// CrashWhen arms a state-triggered crash: after every subsequent event, pred
// is evaluated, and the first time it returns true process p crashes on the
// spot (same semantics as CrashAt: no further steps, deliveries, or timers).
// pred must be a side-effect-free predicate over observable protocol state;
// why labels the crash record's Note for diagnostics. The trigger is
// one-shot and is discarded once fired or once p crashes for another reason.
//
// This is the adversary's scalpel: "crash the witness the instant it starts
// eating" is CrashWhen(w, "mid-eating", func() bool { return d.State() ==
// dining.Eating }) — no tuning of CrashAt times against a seed required.
func (k *Kernel) CrashWhen(p ProcID, why string, pred func() bool) {
	k.triggers = append(k.triggers, &trigger{p: p, why: why, pred: pred})
}

// fireTriggers evaluates armed triggers and crashes the processes whose
// predicates hold. Fired and obsolete triggers are removed.
func (k *Kernel) fireTriggers() {
	kept := k.triggers[:0]
	for _, tr := range k.triggers {
		if k.procs[tr.p].crashed {
			continue
		}
		if tr.pred() {
			k.crashNow(tr.p, tr.why)
			continue
		}
		kept = append(kept, tr)
	}
	k.triggers = kept
}

// Budget bounds a run's resource usage. Zero fields are unlimited. The
// watchdog exists because a horizon alone cannot distinguish "converged and
// quiet" from "livelocked at full speed": a protocol spinning through
// enabled actions or flooding the network burns its budget long before the
// horizon, and the kernel then stops the run with a diagnostic instead of
// grinding on.
type Budget struct {
	MaxSteps  int64 // protocol actions executed (the "steps" counter)
	MaxEvents int64 // total events processed (deliveries, timers, steps)
	MaxQueue  int   // pending event-queue length (runaway self-amplification)
}

// SetBudget installs (or replaces) the run budget. Exceeding it stops the
// run at the end of the offending event and records a BudgetExceeded
// diagnostic retrievable via Exhausted.
func (k *Kernel) SetBudget(b Budget) { k.budget = b }

// Exhausted returns the watchdog diagnostic if the budget was exceeded, else
// nil.
func (k *Kernel) Exhausted() *BudgetExceeded { return k.exhausted }

// BudgetExceeded is the watchdog's structured diagnostic: which limit broke,
// the counters at that moment, and the tail of the trace leading up to it.
type BudgetExceeded struct {
	Reason   string   // which limit was exceeded, with limit and actual
	Steps    int64    // protocol steps executed so far
	Events   int64    // events processed so far
	QueueLen int      // event-queue length at the breach
	At       Time     // virtual time of the breach
	Tail     []Record // recent trace records (up to tailCap), oldest first
}

// Error implements error.
func (b *BudgetExceeded) Error() string {
	return fmt.Sprintf("sim: watchdog at t=%d: %s (steps=%d events=%d queue=%d)",
		b.At, b.Reason, b.Steps, b.Events, b.QueueLen)
}

// Diagnostic renders the full report including the trace tail.
func (b *BudgetExceeded) Diagnostic() string {
	var s strings.Builder
	s.WriteString(b.Error())
	s.WriteString("\ntrace tail:")
	for _, r := range b.Tail {
		fmt.Fprintf(&s, "\n  t=%-6d p=%-3d %-8s peer=%-3d %s %s", r.T, r.P, r.Kind, r.Peer, r.Inst, r.Note)
	}
	return s.String()
}

// checkBudget stops the run with a diagnostic if any limit is exceeded.
func (k *Kernel) checkBudget() {
	var reason string
	switch {
	case k.budget.MaxSteps > 0 && k.counters["steps"] > k.budget.MaxSteps:
		reason = fmt.Sprintf("step budget exceeded (%d > %d): livelock suspected", k.counters["steps"], k.budget.MaxSteps)
	case k.budget.MaxEvents > 0 && k.events > k.budget.MaxEvents:
		reason = fmt.Sprintf("event budget exceeded (%d > %d): livelock suspected", k.events, k.budget.MaxEvents)
	case k.budget.MaxQueue > 0 && k.queue.Len() > k.budget.MaxQueue:
		reason = fmt.Sprintf("event queue exceeded %d entries (%d): runaway scheduling", k.budget.MaxQueue, k.queue.Len())
	default:
		return
	}
	k.exhausted = &BudgetExceeded{
		Reason:   reason,
		Steps:    k.counters["steps"],
		Events:   k.events,
		QueueLen: k.queue.Len(),
		At:       k.now,
		Tail:     k.Tail(),
	}
	k.stopped = true
}

// Tail returns the most recent trace records (up to tailCap), oldest first.
// The tail is recorded even when no Tracer is attached, so diagnostics always
// have context.
func (k *Kernel) Tail() []Record {
	if len(k.tail) == 0 {
		return nil
	}
	if k.tailLen < int64(len(k.tail)) {
		return append([]Record(nil), k.tail[:k.tailLen]...)
	}
	out := make([]Record, 0, len(k.tail))
	start := int(k.tailLen % int64(len(k.tail)))
	out = append(out, k.tail[start:]...)
	out = append(out, k.tail[:start]...)
	return out
}

// RunFailure describes why a protected run did not complete normally: a
// protocol panic (with stack), a watchdog budget breach, or both fields nil
// never occurs — RunProtected returns nil instead.
type RunFailure struct {
	Panic    any              // recovered panic value, if the run panicked
	Stack    string           // goroutine stack at the panic
	Watchdog *BudgetExceeded  // watchdog diagnostic, if the budget broke
	At       Time             // virtual time of the failure
	Tail     []Record         // recent trace records, oldest first
}

// Error implements error.
func (f *RunFailure) Error() string {
	if f.Panic != nil {
		return fmt.Sprintf("sim: protocol panic at t=%d: %v", f.At, f.Panic)
	}
	if f.Watchdog != nil {
		return f.Watchdog.Error()
	}
	return "sim: run failure"
}

// RunProtected executes the simulation like Run, but converts protocol
// panics and watchdog breaches into a structured RunFailure instead of
// crashing the caller. A nil failure means the run completed (quiescence or
// horizon). The kernel must not be reused after a panic: protocol state may
// be torn mid-step.
func (k *Kernel) RunProtected(horizon Time) (end Time, fail *RunFailure) {
	defer func() {
		if r := recover(); r != nil {
			end = k.now
			fail = &RunFailure{
				Panic: r,
				Stack: string(debug.Stack()),
				At:    k.now,
				Tail:  k.Tail(),
			}
		}
	}()
	end = k.Run(horizon)
	if k.exhausted != nil {
		fail = &RunFailure{Watchdog: k.exhausted, At: k.exhausted.At, Tail: k.exhausted.Tail}
	}
	return end, fail
}
