package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// Example shows the kernel's programming model: guarded actions, message
// handlers, timers, and a crash, all on deterministic virtual time.
func Example() {
	k := sim.NewKernel(2, sim.WithSeed(1), sim.WithDelay(sim.FixedDelay{D: 3}))

	// Process 1 echoes every ping.
	k.Handle(1, "ping", func(m sim.Message) {
		k.Send(1, m.From, "pong", m.Payload)
	})

	// Process 0 pings once per timer tick and counts echoes.
	echoes := 0
	k.Handle(0, "pong", func(sim.Message) { echoes++ })
	var tick func()
	tick = func() {
		k.Send(0, 1, "ping", echoes)
		k.After(0, 10, tick)
	}
	k.After(0, 1, tick)

	// Process 1 crashes mid-run: echoes stop, the run keeps going.
	k.CrashAt(1, 55)

	end := k.Run(100)
	fmt.Printf("end=%d echoes=%d crashed(1)=%v\n", end, echoes, k.Crashed(1))
	// Output:
	// end=100 echoes=6 crashed(1)=true
}
