package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Crash is one entry of a fault plan: process P crashes at time At.
type Crash struct {
	P  ProcID
	At Time
}

// FaultPlan is a named crash schedule. Plans make experiment sweeps
// declarative: generators below produce the standard shapes (none, single,
// staggered, minority, majority) and Apply installs them on a kernel.
type FaultPlan struct {
	Name    string
	Crashes []Crash
}

// Apply schedules every crash of the plan on k.
func (fp FaultPlan) Apply(k *Kernel) {
	for _, c := range fp.Crashes {
		k.CrashAt(c.P, c.At)
	}
}

// Faulty returns the set of processes the plan crashes.
func (fp FaultPlan) Faulty() map[ProcID]bool {
	out := make(map[ProcID]bool, len(fp.Crashes))
	for _, c := range fp.Crashes {
		out[c.P] = true
	}
	return out
}

// Correct returns the processes of 0..n-1 the plan never crashes, sorted.
func (fp FaultPlan) Correct(n int) []ProcID {
	faulty := fp.Faulty()
	var out []ProcID
	for i := 0; i < n; i++ {
		if !faulty[ProcID(i)] {
			out = append(out, ProcID(i))
		}
	}
	return out
}

func (fp FaultPlan) String() string {
	if len(fp.Crashes) == 0 {
		return fp.Name + "{}"
	}
	parts := make([]string, len(fp.Crashes))
	for i, c := range fp.Crashes {
		parts[i] = fmt.Sprintf("%d@%d", c.P, c.At)
	}
	return fp.Name + "{" + strings.Join(parts, ",") + "}"
}

// NoFaults is the empty plan.
func NoFaults() FaultPlan { return FaultPlan{Name: "none"} }

// SingleCrash crashes exactly p at t.
func SingleCrash(p ProcID, t Time) FaultPlan {
	return FaultPlan{Name: "single", Crashes: []Crash{{P: p, At: t}}}
}

// StaggeredCrashes crashes the given processes one by one, the first at
// start and each subsequent one gap ticks later.
func StaggeredCrashes(ps []ProcID, start, gap Time) FaultPlan {
	fp := FaultPlan{Name: "staggered"}
	at := start
	for _, p := range ps {
		fp.Crashes = append(fp.Crashes, Crash{P: p, At: at})
		at += gap
	}
	return fp
}

// MinorityCrashes crashes a random strict minority of 0..n-1 (at least one
// process if n > 2) at random times in [lo, hi]. Deterministic given rng.
func MinorityCrashes(n int, lo, hi Time, rng *rand.Rand) FaultPlan {
	maxF := (n - 1) / 2
	if maxF < 1 {
		return NoFaults()
	}
	f := 1 + rng.Intn(maxF)
	perm := rng.Perm(n)
	fp := FaultPlan{Name: "minority"}
	for i := 0; i < f; i++ {
		fp.Crashes = append(fp.Crashes, Crash{
			P:  ProcID(perm[i]),
			At: lo + Time(rng.Int63n(int64(max(1, hi-lo+1)))),
		})
	}
	sort.Slice(fp.Crashes, func(i, j int) bool { return fp.Crashes[i].At < fp.Crashes[j].At })
	return fp
}

// AllButOne crashes every process except survivor, staggered from start —
// the wait-freedom stress plan ("regardless of how many processes crash").
func AllButOne(n int, survivor ProcID, start, gap Time) FaultPlan {
	fp := FaultPlan{Name: "all-but-one"}
	at := start
	for i := 0; i < n; i++ {
		if ProcID(i) == survivor {
			continue
		}
		fp.Crashes = append(fp.Crashes, Crash{P: ProcID(i), At: at})
		at += gap
	}
	return fp
}

// RunUntil executes the simulation until cond returns true (checked after
// every event), the horizon passes, or the event queue drains. It returns
// the stop time and whether cond was met.
func (k *Kernel) RunUntil(horizon Time, cond func() bool) (Time, bool) {
	if cond() {
		return k.now, true
	}
	for k.queue.Len() > 0 {
		if next := k.queue.peek(); next.at > horizon {
			k.now = horizon
			return k.now, false
		}
		e := k.queue.pop()
		k.now = e.at
		e.fn()
		if cond() {
			return k.now, true
		}
		if k.stopped {
			break
		}
	}
	return k.now, cond()
}
