package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Crash is one entry of a fault plan: process P crashes at time At.
type Crash struct {
	P  ProcID
	At Time
}

// FaultPlan is a named crash schedule. Plans make experiment sweeps
// declarative: generators below produce the standard shapes (none, single,
// staggered, minority, majority) and Apply installs them on a kernel.
type FaultPlan struct {
	Name    string
	Crashes []Crash
}

// Apply validates the plan and schedules every crash on k. A plan with a
// negative crash time, a process outside 0..N-1, or two crashes of the same
// process is rejected with an error: double-scheduling a crash would
// silently distort which CrashAt wins, and a malformed plan in a sweep is a
// generator bug worth surfacing, not a run to quietly misexecute.
func (fp FaultPlan) Apply(k *Kernel) error {
	if err := fp.Validate(k.N()); err != nil {
		return err
	}
	for _, c := range fp.Crashes {
		k.CrashAt(c.P, c.At)
	}
	return nil
}

// Validate checks the plan against a system of n processes: crash times must
// be non-negative, processes in range, and no process may crash twice.
func (fp FaultPlan) Validate(n int) error {
	seen := make(map[ProcID]bool, len(fp.Crashes))
	for _, c := range fp.Crashes {
		if c.At < 0 {
			return fmt.Errorf("sim: fault plan %q: negative crash time %d for process %d", fp.Name, c.At, c.P)
		}
		if c.P < 0 || int(c.P) >= n {
			return fmt.Errorf("sim: fault plan %q: process %d out of range 0..%d", fp.Name, c.P, n-1)
		}
		if seen[c.P] {
			return fmt.Errorf("sim: fault plan %q: duplicate crash of process %d", fp.Name, c.P)
		}
		seen[c.P] = true
	}
	return nil
}

// Faulty returns the set of processes the plan crashes.
func (fp FaultPlan) Faulty() map[ProcID]bool {
	out := make(map[ProcID]bool, len(fp.Crashes))
	for _, c := range fp.Crashes {
		out[c.P] = true
	}
	return out
}

// Correct returns the processes of 0..n-1 the plan never crashes, sorted.
func (fp FaultPlan) Correct(n int) []ProcID {
	faulty := fp.Faulty()
	var out []ProcID
	for i := 0; i < n; i++ {
		if !faulty[ProcID(i)] {
			out = append(out, ProcID(i))
		}
	}
	return out
}

func (fp FaultPlan) String() string {
	if len(fp.Crashes) == 0 {
		return fp.Name + "{}"
	}
	parts := make([]string, len(fp.Crashes))
	for i, c := range fp.Crashes {
		parts[i] = fmt.Sprintf("%d@%d", c.P, c.At)
	}
	return fp.Name + "{" + strings.Join(parts, ",") + "}"
}

// NoFaults is the empty plan.
func NoFaults() FaultPlan { return FaultPlan{Name: "none"} }

// SingleCrash crashes exactly p at t.
func SingleCrash(p ProcID, t Time) FaultPlan {
	return FaultPlan{Name: "single", Crashes: []Crash{{P: p, At: t}}}
}

// StaggeredCrashes crashes the given processes one by one, the first at
// start and each subsequent one gap ticks later.
func StaggeredCrashes(ps []ProcID, start, gap Time) FaultPlan {
	fp := FaultPlan{Name: "staggered"}
	at := start
	for _, p := range ps {
		fp.Crashes = append(fp.Crashes, Crash{P: p, At: at})
		at += gap
	}
	return fp
}

// MinorityCrashes crashes a random strict minority of 0..n-1 (at least one
// process if n > 2) at random times in [lo, hi]. Deterministic given rng.
func MinorityCrashes(n int, lo, hi Time, rng *rand.Rand) FaultPlan {
	maxF := (n - 1) / 2
	if maxF < 1 {
		return NoFaults()
	}
	f := 1 + rng.Intn(maxF)
	perm := rng.Perm(n)
	fp := FaultPlan{Name: "minority"}
	for i := 0; i < f; i++ {
		fp.Crashes = append(fp.Crashes, Crash{
			P:  ProcID(perm[i]),
			At: lo + Time(rng.Int63n(int64(max(1, hi-lo+1)))),
		})
	}
	sort.Slice(fp.Crashes, func(i, j int) bool { return fp.Crashes[i].At < fp.Crashes[j].At })
	return fp
}

// AllButOne crashes every process except survivor, staggered from start —
// the wait-freedom stress plan ("regardless of how many processes crash").
func AllButOne(n int, survivor ProcID, start, gap Time) FaultPlan {
	fp := FaultPlan{Name: "all-but-one"}
	at := start
	for i := 0; i < n; i++ {
		if ProcID(i) == survivor {
			continue
		}
		fp.Crashes = append(fp.Crashes, Crash{P: ProcID(i), At: at})
		at += gap
	}
	return fp
}

// RunUntil executes the simulation until cond returns true (checked after
// every event), the horizon passes, or the event queue drains. It returns
// the stop time and whether cond was met.
func (k *Kernel) RunUntil(horizon Time, cond func() bool) (Time, bool) {
	return k.runLoop(horizon, cond)
}
