package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

// collect is a minimal Tracer.
type collect struct{ recs []Record }

func (c *collect) Trace(r Record) { c.recs = append(c.recs, r) }

// TestSendDeliver: a message sent is delivered exactly once to its handler.
func TestSendDeliver(t *testing.T) {
	k := NewKernel(2)
	got := 0
	k.Handle(1, "x", func(m Message) {
		got++
		if m.From != 0 || m.To != 1 || m.Payload.(int) != 42 {
			t.Fatalf("bad message: %v", m)
		}
	})
	k.Send(0, 1, "x", 42)
	k.Run(1000)
	if got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
	if k.Counter("msg.sent") != 1 || k.Counter("msg.delivered") != 1 {
		t.Fatalf("counters: %v", k.Counters())
	}
}

// TestDeliveryIsReliable: every one of many messages to a live process
// arrives, under every delay policy.
func TestDeliveryIsReliable(t *testing.T) {
	policies := map[string]DelayPolicy{
		"fixed":   FixedDelay{D: 3},
		"uniform": UniformDelay{Min: 1, Max: 50},
		"gst":     GSTDelay{GST: 500, PreMax: 200, PostMax: 5},
		"skew":    SkewDelay{Base: UniformDelay{Min: 1, Max: 10}, Victim: 1, Factor: 20},
	}
	for name, pol := range policies {
		t.Run(name, func(t *testing.T) {
			k := NewKernel(2, WithDelay(pol), WithSeed(9))
			got := 0
			k.Handle(1, "x", func(Message) { got++ })
			const n = 500
			for i := 0; i < n; i++ {
				k.Send(0, 1, "x", i)
			}
			k.Run(100000)
			if got != n {
				t.Fatalf("%s: delivered %d of %d", name, got, n)
			}
		})
	}
}

// TestNonFIFO: under the uniform policy, messages can overtake each other.
func TestNonFIFO(t *testing.T) {
	k := NewKernel(2, WithDelay(UniformDelay{Min: 1, Max: 100}), WithSeed(3))
	var order []int
	k.Handle(1, "x", func(m Message) { order = append(order, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		k.Send(0, 1, "x", i)
	}
	k.Run(100000)
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("50 messages with random delays arrived in FIFO order; channels should be non-FIFO")
	}
}

// TestCrashStopsEverything: a crashed process takes no steps, receives no
// messages, and fires no timers.
func TestCrashStopsEverything(t *testing.T) {
	k := NewKernel(2)
	steps, deliveries, timers := 0, 0, 0
	k.AddAction(1, "tick", func() bool { return true }, func() { steps++ })
	k.Handle(1, "x", func(Message) { deliveries++ })
	k.CrashAt(1, 100)
	k.After(1, 500, func() { timers++ })
	// A stream of messages across the crash boundary.
	var pump func()
	sent := 0
	pump = func() {
		if sent < 50 {
			sent++
			k.Send(0, 1, "x", sent)
			k.After(0, 10, pump)
		}
	}
	k.After(0, 1, pump)
	k.Run(2000)
	if !k.Crashed(1) || k.CrashTime(1) != 100 {
		t.Fatalf("crash not recorded: %v at %d", k.Crashed(1), k.CrashTime(1))
	}
	if timers != 0 {
		t.Fatal("timer fired at crashed process")
	}
	if deliveries == 0 {
		t.Fatal("no deliveries before the crash at all")
	}
	if deliveries >= 50 {
		t.Fatal("messages kept being delivered after the crash")
	}
	if k.Counter("msg.dropped") == 0 {
		t.Fatal("post-crash messages should be counted as dropped")
	}
	if steps == 0 {
		t.Fatal("process took no steps before crashing")
	}
}

// TestWeakFairness: two always-enabled actions both run (rotation), and a
// later-enabled action runs once its guard turns true.
func TestWeakFairness(t *testing.T) {
	k := NewKernel(1)
	a, b, c := 0, 0, 0
	gate := false
	k.AddAction(0, "a", func() bool { return true }, func() { a++ })
	k.AddAction(0, "b", func() bool { return true }, func() { b++ })
	k.AddAction(0, "c", func() bool { return gate }, func() { c++ })
	k.After(0, 500, func() { gate = true })
	k.Run(2000)
	if a == 0 || b == 0 {
		t.Fatalf("always-enabled actions starved: a=%d b=%d", a, b)
	}
	if c == 0 {
		t.Fatal("late-enabled action never ran")
	}
	if diff := a - b; diff < -2 || diff > 2 {
		t.Fatalf("rotation should balance executions: a=%d b=%d", a, b)
	}
}

// TestIdleQuiescence: with no enabled guards and no messages, the run ends
// before the horizon.
func TestIdleQuiescence(t *testing.T) {
	k := NewKernel(1)
	k.AddAction(0, "never", func() bool { return false }, func() {})
	end := k.Run(1_000_000)
	if end >= 1_000_000 {
		t.Fatalf("kernel did not quiesce: end=%d", end)
	}
}

// TestDeterminism: identical seeds give identical traces; different seeds
// give different schedules.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []Record {
		tr := &collect{}
		k := NewKernel(3, WithSeed(seed), WithTracer(tr), WithDelay(UniformDelay{Min: 1, Max: 20}))
		for i := 0; i < 3; i++ {
			p := ProcID(i)
			k.Handle(p, "x", func(m Message) {
				k.Emit(Record{P: p, Kind: "got", Peer: m.From})
				if k.Now() < 500 {
					k.Send(p, (p+1)%3, "x", nil)
				}
			})
		}
		k.Send(0, 1, "x", nil)
		k.Run(1000)
		return tr.recs
	}
	a, b, c := run(7), run(7), run(8)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different traces")
	}
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

// TestTimersOrdered: timers at one process fire in time order.
func TestTimersOrdered(t *testing.T) {
	k := NewKernel(1)
	var fired []Time
	for _, d := range []Time{50, 10, 30, 20, 40} {
		d := d
		k.After(0, d, func() { fired = append(fired, d) })
	}
	k.Run(100)
	want := []Time{10, 20, 30, 40, 50}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("timers fired as %v, want %v", fired, want)
	}
}

// TestDelayPolicies: property — every policy returns delays >= 1, and GST
// delays respect the post-GST bound.
func TestDelayPolicies(t *testing.T) {
	k := NewKernel(1, WithSeed(5))
	rng := k.Rand()
	gst := GSTDelay{GST: 100, PreMax: 500, PostMax: 7}
	prop := func(now int16, from, to uint8) bool {
		n := Time(now)
		if n < 0 {
			n = -n
		}
		for _, pol := range []DelayPolicy{FixedDelay{D: 0}, UniformDelay{Min: -3, Max: 9}, gst} {
			d := pol.Delay(rng, ProcID(from), ProcID(to), n)
			if d < 1 {
				return false
			}
		}
		if n >= 100 {
			if d := gst.Delay(rng, 0, 1, n); d > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestEmitStampsRecords: Emit fills T and Seq monotonically.
func TestEmitStampsRecords(t *testing.T) {
	tr := &collect{}
	k := NewKernel(1, WithTracer(tr))
	k.After(0, 10, func() { k.Emit(Record{P: 0, Kind: "a"}) })
	k.After(0, 20, func() { k.Emit(Record{P: 0, Kind: "b"}) })
	k.Run(100)
	if len(tr.recs) != 2 {
		t.Fatalf("got %d records", len(tr.recs))
	}
	if tr.recs[0].T != 10 || tr.recs[1].T != 20 {
		t.Fatalf("bad stamps: %v", tr.recs)
	}
	if tr.recs[0].Seq >= tr.recs[1].Seq {
		t.Fatal("sequence numbers not increasing")
	}
}

// TestStop aborts a run early.
func TestStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.AddAction(0, "inc", func() bool { return true }, func() {
		n++
		if n == 5 {
			k.Stop()
		}
	})
	k.Run(100000)
	if n != 5 {
		t.Fatalf("ran %d actions after Stop, want exactly 5", n)
	}
}

// TestDuplicateHandlerPanics: registering a port twice is a bug.
func TestDuplicateHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate handler")
		}
	}()
	k := NewKernel(1)
	k.Handle(0, "x", func(Message) {})
	k.Handle(0, "x", func(Message) {})
}

// TestHorizonStopsRun: the run does not execute events past the horizon.
func TestHorizonStopsRun(t *testing.T) {
	k := NewKernel(1)
	fired := false
	k.After(0, 500, func() { fired = true })
	end := k.Run(100)
	if fired {
		t.Fatal("event past horizon executed")
	}
	if end != 100 {
		t.Fatalf("end=%d, want horizon 100", end)
	}
}

// TestPortPrefixCounter: per-prefix counters accumulate.
func TestPortPrefixCounter(t *testing.T) {
	k := NewKernel(2)
	k.Handle(1, "dx/0/fork", func(Message) {})
	k.Handle(1, "dx/1/fork", func(Message) {})
	k.Handle(1, "hb", func(Message) {})
	k.Send(0, 1, "dx/0/fork", nil)
	k.Send(0, 1, "dx/1/fork", nil)
	k.Send(0, 1, "hb", nil)
	k.Run(1000)
	if k.Counter("msg.sent:dx") != 2 || k.Counter("msg.sent:hb") != 1 {
		t.Fatalf("prefix counters wrong: %v", k.Counters())
	}
}

// TestPartitionDelay: cross-side messages are delivered only after the
// heal; same-side traffic flows normally; nothing is lost.
func TestPartitionDelay(t *testing.T) {
	part := PartitionDelay{
		Base: FixedDelay{D: 2},
		Side: map[ProcID]bool{2: true},
		Heal: 500,
	}
	k := NewKernel(3, WithDelay(part), WithSeed(1))
	var crossAt, sameAt Time = -1, -1
	k.Handle(2, "x", func(Message) { crossAt = k.Now() })
	k.Handle(1, "x", func(Message) { sameAt = k.Now() })
	k.Send(0, 2, "x", nil) // crosses the partition
	k.Send(0, 1, "x", nil) // stays on the majority side
	k.Run(2000)
	if sameAt != 2 {
		t.Fatalf("same-side delivery at %d, want 2", sameAt)
	}
	if crossAt < 500 {
		t.Fatalf("cross-partition delivery at %d, before heal", crossAt)
	}
	if crossAt == -1 {
		t.Fatal("cross-partition message lost: channels must stay reliable")
	}
}
