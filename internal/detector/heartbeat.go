package detector

import (
	"fmt"

	"repro/internal/rt"
)

// HeartbeatConfig tunes the heartbeat implementation of ◇P.
type HeartbeatConfig struct {
	Interval rt.Time // heartbeat broadcast period (default 20)
	Check    rt.Time // suspicion check period (default 10)
	Timeout  rt.Time // initial per-peer timeout (default 60)
	Bump     rt.Time // timeout increase after each false suspicion (default 40)
}

func (c *HeartbeatConfig) defaults() {
	if c.Interval <= 0 {
		c.Interval = 20
	}
	if c.Check <= 0 {
		c.Check = 10
	}
	if c.Timeout <= 0 {
		c.Timeout = 60
	}
	if c.Bump <= 0 {
		c.Bump = 40
	}
}

// Heartbeat is a realistic implementation of the eventually perfect failure
// detector ◇P by adaptive timeouts: every process periodically broadcasts
// heartbeats; a monitor suspects a peer whose heartbeat is overdue and, upon
// discovering the suspicion was premature, trusts again and permanently
// enlarges that peer's timeout. Under a partially synchronous delay policy
// (rt.GSTDelay) every run converges: crashed processes are eventually and
// permanently suspected (strong completeness) and correct processes are
// eventually never suspected (eventual strong accuracy).
type Heartbeat struct {
	name string
	k    rt.Runtime
	mods []*hbModule
}

type hbModule struct {
	k        rt.Runtime
	name     string
	cfg      HeartbeatConfig
	port     string
	self     rt.ProcID
	n        int
	lastBeat map[rt.ProcID]rt.Time
	deadline map[rt.ProcID]rt.Time
	timeout  map[rt.ProcID]rt.Time
	suspects map[rt.ProcID]bool
}

// NewHeartbeat installs heartbeat ◇P modules at every process of k.
func NewHeartbeat(k rt.Runtime, name string, cfg HeartbeatConfig) *Heartbeat {
	cfg.defaults()
	h := &Heartbeat{name: name, k: k, mods: make([]*hbModule, k.N())}
	for i := 0; i < k.N(); i++ {
		p := rt.ProcID(i)
		m := &hbModule{
			k:    k,
			name: name,
			cfg:  cfg,
			port: fmt.Sprintf("%s/hb", name),
			self: p,
			n:    k.N(),
		}
		h.mods[i] = m
		m.init()
		k.Handle(p, m.port, m.onBeat)
		m.arm(1 + rt.Time(i)%cfg.Interval)
	}
	return h
}

// init (re)creates the module's mutable maps: everyone trusted, deadlines
// one full timeout from now.
func (m *hbModule) init() {
	m.lastBeat = make(map[rt.ProcID]rt.Time)
	m.deadline = make(map[rt.ProcID]rt.Time)
	m.timeout = make(map[rt.ProcID]rt.Time)
	m.suspects = make(map[rt.ProcID]bool)
	for j := 0; j < m.n; j++ {
		q := rt.ProcID(j)
		if q == m.self {
			continue
		}
		m.timeout[q] = m.cfg.Timeout
		m.deadline[q] = m.k.Now() + m.cfg.Timeout
	}
}

// arm starts the periodic broadcast and suspicion-check timer chains.
func (m *hbModule) arm(firstBeat rt.Time) {
	m.k.After(m.self, firstBeat, m.beat)
	m.k.After(m.self, m.cfg.Check, m.check)
}

func (m *hbModule) onBeat(msg rt.Message) {
	k := m.k
	m.lastBeat[msg.From] = k.Now()
	m.deadline[msg.From] = k.Now() + m.timeout[msg.From]
	if m.suspects[msg.From] {
		// Premature suspicion: trust again and learn.
		m.suspects[msg.From] = false
		m.timeout[msg.From] += m.cfg.Bump
		m.deadline[msg.From] = k.Now() + m.timeout[msg.From]
		emitChange(k, m.name, m.self, msg.From, false)
	}
}

// beat broadcasts one heartbeat round and reschedules itself.
func (m *hbModule) beat() {
	for j := 0; j < m.n; j++ {
		if rt.ProcID(j) != m.self {
			m.k.Send(m.self, rt.ProcID(j), m.port, nil)
		}
	}
	m.k.After(m.self, m.cfg.Interval, m.beat)
}

// check suspects every peer whose heartbeat is overdue and reschedules
// itself.
func (m *hbModule) check() {
	for j := 0; j < m.n; j++ {
		q := rt.ProcID(j)
		if q == m.self || m.suspects[q] {
			continue
		}
		if m.k.Now() > m.deadline[q] {
			m.suspects[q] = true
			emitChange(m.k, m.name, m.self, q, true)
		}
	}
	m.k.After(m.self, m.cfg.Check, m.check)
}

// Reset reinstalls p's monitor state after a crash-restart: every peer is
// trusted again (emitting trust records for peers the dead incarnation
// suspected, so the suspicion history in the trace stays well-bracketed),
// deadlines restart one full timeout from now, learned timeouts are
// forgotten, and the broadcast/check timer chains — whose previous
// incarnation died with the crash — are re-armed. Call it from the reboot
// hook of live.Runtime.Restart.
func (h *Heartbeat) Reset(p rt.ProcID) {
	m := h.mods[p]
	for q, s := range m.suspects {
		if s {
			emitChange(h.k, h.name, p, q, false)
		}
	}
	m.init()
	m.arm(1 + rt.Time(p)%m.cfg.Interval)
}

// Name implements Oracle.
func (h *Heartbeat) Name() string { return h.name }

// Suspected implements Oracle.
func (h *Heartbeat) Suspected(p, q rt.ProcID) bool { return h.mods[p].suspects[q] }

// Timeout exposes p's current adaptive timeout for q (for tests and
// metrics).
func (h *Heartbeat) Timeout(p, q rt.ProcID) rt.Time { return h.mods[p].timeout[q] }

// Trusting is a model-true implementation of the trusting failure detector
// T: a monitor suspects every peer until the first message arrives from it
// ("trust is earned"), then trusts it until it actually crashes (consulting
// the fault schedule — see the package comment for why this is legitimate).
// It satisfies exactly T's axioms: strong completeness, eventual permanent
// trust of correct processes, and trust withdrawal only upon a real crash.
type Trusting struct {
	name string
	k    rt.Runtime
	mods []*trustModule
}

type trustModule struct {
	heard    map[rt.ProcID]bool
	suspects map[rt.ProcID]bool
}

// NewTrusting installs model-true T modules at every process. Interval is
// the hello/check period (default 20).
func NewTrusting(k rt.Runtime, name string, interval rt.Time) *Trusting {
	if interval <= 0 {
		interval = 20
	}
	t := &Trusting{name: name, k: k, mods: make([]*trustModule, k.N())}
	for i := 0; i < k.N(); i++ {
		p := rt.ProcID(i)
		m := &trustModule{heard: make(map[rt.ProcID]bool), suspects: make(map[rt.ProcID]bool)}
		t.mods[i] = m
		for j := 0; j < k.N(); j++ {
			if j != i {
				m.suspects[rt.ProcID(j)] = true // initial distrust
			}
		}
		port := fmt.Sprintf("%s/hello", name)
		k.Handle(p, port, func(msg rt.Message) {
			m.heard[msg.From] = true
			if m.suspects[msg.From] && !k.Crashed(msg.From) {
				m.suspects[msg.From] = false
				emitChange(k, name, p, msg.From, false)
			}
		})
		var tick func()
		tick = func() {
			for j := 0; j < k.N(); j++ {
				q := rt.ProcID(j)
				if q == p {
					continue
				}
				k.Send(p, q, port, nil)
				if !m.suspects[q] && k.Crashed(q) {
					m.suspects[q] = true // trust withdrawn: q has really crashed
					emitChange(k, name, p, q, true)
				}
			}
			k.After(p, interval, tick)
		}
		k.After(p, 1+rt.Time(i)%interval, tick)
	}
	return t
}

// Name implements Oracle.
func (t *Trusting) Name() string { return t.name }

// Suspected implements Oracle.
func (t *Trusting) Suspected(p, q rt.ProcID) bool { return t.mods[p].suspects[q] }
