package detector

import (
	"fmt"

	"repro/internal/rt"
)

// PingbackConfig tunes the query-based ◇P implementation.
type PingbackConfig struct {
	Period  rt.Time // query period (default 25)
	Timeout rt.Time // initial round-trip timeout (default 60)
	Bump    rt.Time // timeout increase after each false suspicion (default 40)
}

func (c *PingbackConfig) defaults() {
	if c.Period <= 0 {
		c.Period = 25
	}
	if c.Timeout <= 0 {
		c.Timeout = 60
	}
	if c.Bump <= 0 {
		c.Bump = 40
	}
}

// Pingback is a pull-style implementation of ◇P: each monitor periodically
// sends PING to every peer and suspects a peer whose PONG for the current
// query is overdue; a late PONG rescinds the suspicion and permanently
// enlarges that peer's timeout. Compared to the push-style Heartbeat it
// costs twice the messages per probe but measures actual round-trips, so
// its timeouts adapt to the pair's real latency rather than to one-way
// delivery gaps. Under a GST delay policy it satisfies both ◇P axioms; the
// detector package tests check both implementations against the same
// checkers, and E13 compares their mistake/latency trade-offs.
type Pingback struct {
	name string
	k    rt.Runtime
	mods []*pbModule
}

type pbModule struct {
	self     rt.ProcID
	seq      map[rt.ProcID]int64    // current query number per peer
	sentAt   map[rt.ProcID]rt.Time // send time of the current query
	answered map[rt.ProcID]bool     // current query answered?
	timeout  map[rt.ProcID]rt.Time
	suspects map[rt.ProcID]bool
}

type pingMsg struct{ Seq int64 }
type pongMsg struct{ Seq int64 }

// NewPingback installs query-based ◇P modules at every process of k.
func NewPingback(k rt.Runtime, name string, cfg PingbackConfig) *Pingback {
	cfg.defaults()
	pb := &Pingback{name: name, k: k, mods: make([]*pbModule, k.N())}
	for i := 0; i < k.N(); i++ {
		p := rt.ProcID(i)
		m := &pbModule{
			self:     p,
			seq:      make(map[rt.ProcID]int64),
			sentAt:   make(map[rt.ProcID]rt.Time),
			answered: make(map[rt.ProcID]bool),
			timeout:  make(map[rt.ProcID]rt.Time),
			suspects: make(map[rt.ProcID]bool),
		}
		pb.mods[i] = m
		for j := 0; j < k.N(); j++ {
			if j != i {
				m.timeout[rt.ProcID(j)] = cfg.Timeout
				m.answered[rt.ProcID(j)] = true // nothing outstanding yet
			}
		}
		ping := fmt.Sprintf("%s/ping", name)
		pong := fmt.Sprintf("%s/pong", name)
		k.Handle(p, ping, func(msg rt.Message) {
			// Responder side: echo immediately (pure function of the query).
			k.Send(p, msg.From, pong, pongMsg{Seq: msg.Payload.(pingMsg).Seq})
		})
		k.Handle(p, pong, func(msg rt.Message) {
			q := msg.From
			if msg.Payload.(pongMsg).Seq != m.seq[q] {
				return // answer to an old query
			}
			m.answered[q] = true
			if m.suspects[q] {
				m.suspects[q] = false
				m.timeout[q] += cfg.Bump
				emitChange(k, name, p, q, false)
			}
		})
		var probe func()
		probe = func() {
			now := k.Now()
			for j := 0; j < k.N(); j++ {
				q := rt.ProcID(j)
				if q == p {
					continue
				}
				// Check the outstanding query first.
				if !m.answered[q] && !m.suspects[q] && now > m.sentAt[q]+m.timeout[q] {
					m.suspects[q] = true
					emitChange(k, name, p, q, true)
				}
				// Issue a fresh query when the previous one resolved or is
				// already counted as a suspicion (keep probing: a late pong
				// must be able to rescind).
				if m.answered[q] || m.suspects[q] {
					m.seq[q]++
					m.sentAt[q] = now
					m.answered[q] = false
					k.Send(p, q, ping, pingMsg{Seq: m.seq[q]})
				}
			}
			k.After(p, cfg.Period, probe)
		}
		k.After(p, 1+rt.Time(i)%cfg.Period, probe)
	}
	return pb
}

// Name implements Oracle.
func (pb *Pingback) Name() string { return pb.name }

// Suspected implements Oracle.
func (pb *Pingback) Suspected(p, q rt.ProcID) bool { return pb.mods[p].suspects[q] }

// Timeout exposes p's adaptive round-trip timeout for q.
func (pb *Pingback) Timeout(p, q rt.ProcID) rt.Time { return pb.mods[p].timeout[q] }
