package detector_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/sim"
	"repro/internal/trace"
)

func procs(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i)
	}
	return out
}

// TestPerfectMatchesGroundTruth: the model-true P suspects exactly the
// crashed, at every instant.
func TestPerfectMatchesGroundTruth(t *testing.T) {
	k := sim.NewKernel(3)
	p := detector.Perfect{K: k}
	k.CrashAt(2, 100)
	probe := func(when sim.Time, want bool) {
		k.After(0, when, func() {
			if p.Suspected(0, 2) != want {
				t.Errorf("at t=%d: Suspected(0,2)=%v want %v", k.Now(), !want, want)
			}
			if p.Suspected(0, 1) {
				t.Errorf("at t=%d: suspected correct process", k.Now())
			}
		})
	}
	probe(50, false)
	probe(150, true)
	k.Run(1000)
}

// TestHeartbeatCompleteness: under GST, crashed processes become
// permanently suspected by all correct monitors.
func TestHeartbeatCompleteness(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 100, PostMax: 6}))
		hb := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		k.CrashAt(1, 1500)
		horizon := k.Run(20000)
		if !hb.Suspected(0, 1) || !hb.Suspected(2, 1) {
			t.Fatalf("seed %d: crashed process not suspected", seed)
		}
		if _, err := checker.StrongCompleteness(log, "hb", checker.AllPairs(procs(3)), false, horizon*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestHeartbeatEventualAccuracy: all-correct runs converge — after the
// adaptive timeouts grow past the post-GST delay bound, no false suspicion
// recurs.
func TestHeartbeatEventualAccuracy(t *testing.T) {
	for _, seed := range []int64{4, 5, 6} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 2000, PreMax: 300, PostMax: 6}))
		hb := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		horizon := k.Run(30000)
		for _, p := range procs(3) {
			for _, q := range procs(3) {
				if p != q && hb.Suspected(p, q) {
					t.Fatalf("seed %d: %d still suspects %d", seed, p, q)
				}
			}
		}
		if _, err := checker.EventualStrongAccuracy(log, "hb", checker.AllPairs(procs(3)), false, horizon*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestHeartbeatMakesMistakesBeforeGST: with adversarial pre-GST delays the
// detector must actually suspect someone falsely at least once across
// seeds — otherwise the "eventually" in ◇P is not being exercised.
func TestHeartbeatMakesMistakesBeforeGST(t *testing.T) {
	mistakes := 0
	for seed := int64(1); seed <= 8; seed++ {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 3000, PreMax: 400, PostMax: 5}))
		detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{Timeout: 50, Bump: 60})
		k.Run(15000)
		rep, err := checker.EventualStrongAccuracy(log, "hb", checker.AllPairs(procs(2)), false, 12000)
		if err != nil {
			t.Fatalf("seed %d: did not converge: %v", seed, err)
		}
		mistakes += rep.Mistakes
	}
	if mistakes == 0 {
		t.Fatal("no false suspicions across 8 adversarial runs; pre-GST adversary too weak")
	}
}

// TestHeartbeatAdaptiveTimeoutGrows: each false suspicion bumps the
// timeout.
func TestHeartbeatAdaptiveTimeoutGrows(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(2, sim.WithSeed(2), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 3000, PreMax: 400, PostMax: 5}))
	hb := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{Timeout: 40, Bump: 50})
	k.Run(15000)
	rep, _ := checker.EventualStrongAccuracy(log, "hb", checker.AllPairs(procs(2)), false, 15000)
	if rep.Mistakes == 0 {
		t.Skip("this seed made no mistakes; growth not observable")
	}
	if hb.Timeout(0, 1) == 40 && hb.Timeout(1, 0) == 40 {
		t.Fatal("mistakes made but no timeout ever grew")
	}
}

// TestTrustingAxioms: the model-true T satisfies trusting accuracy and
// strong completeness on a run with a crash.
func TestTrustingAxioms(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.UniformDelay{Min: 1, Max: 30}))
		tr := detector.NewTrusting(k, "T", 20)
		k.CrashAt(2, 2000)
		horizon := k.Run(20000)
		if !tr.Suspected(0, 2) {
			t.Fatalf("seed %d: crashed process not suspected by T", seed)
		}
		if tr.Suspected(0, 1) || tr.Suspected(1, 0) {
			t.Fatalf("seed %d: T suspects a correct process at the end", seed)
		}
		if _, err := checker.TrustingAccuracy(log, "T", checker.AllPairs(procs(3)), true, horizon/2); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if _, err := checker.StrongCompleteness(log, "T", checker.AllPairs(procs(3)), true, horizon*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestScripted: the test oracle reflects Set calls.
func TestScripted(t *testing.T) {
	var s detector.Scripted
	if s.Suspected(0, 1) {
		t.Fatal("zero value should suspect no one")
	}
	s.Set(0, 1, true)
	if !s.Suspected(0, 1) || s.Suspected(1, 0) {
		t.Fatal("Set not directional")
	}
	s.Set(0, 1, false)
	if s.Suspected(0, 1) {
		t.Fatal("unset failed")
	}
}

// TestViewBindsSelf: View routes queries through the bound monitor.
func TestViewBindsSelf(t *testing.T) {
	var s detector.Scripted
	s.Set(3, 9, true)
	v := detector.View{Oracle: &s, Self: 3}
	if !v.Suspected(9) {
		t.Fatal("view lost binding")
	}
	w := detector.View{Oracle: &s, Self: 4}
	if w.Suspected(9) {
		t.Fatal("view leaked across monitors")
	}
}
