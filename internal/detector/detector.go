// Package detector provides unreliable failure detectors (Chandra–Toueg
// oracles) for the simulation kernel: the axiomatic class definitions, a
// realistic heartbeat implementation of the eventually perfect detector ◇P
// under partial synchrony, and "model-true" oracles for the stronger classes
// (P, T, S) that are fed by the fault schedule.
//
// The stronger oracles are deliberately schedule-fed: the whole point of the
// paper is that classes like T encapsulate more synchrony than partially
// synchronous systems provide, so a message-passing implementation of them
// cannot exist in the model where ◇P lives. The reductions under test only
// assume the class axioms, which the model-true oracles satisfy exactly.
package detector

import (
	"repro/internal/rt"
)

// Oracle is a queryable distributed failure detector: Suspected(p, q)
// reports the current output of p's local module about q. Implementations
// emit "suspect"/"trust" trace records on every output change so checkers
// can validate class axioms from the trace.
type Oracle interface {
	Name() string
	Suspected(p, q rt.ProcID) bool
}

// View binds an Oracle to one local module, which is how protocol code
// (e.g. the fork dining algorithm) consults its detector.
type View struct {
	Oracle Oracle
	Self   rt.ProcID
}

// Suspected reports whether the local module currently suspects q.
func (v View) Suspected(q rt.ProcID) bool { return v.Oracle.Suspected(v.Self, q) }

// Perfect is the model-true perfect failure detector P: it suspects exactly
// the crashed processes, instantaneously. P trivially satisfies the axioms
// of ◇P, T and S, so it also serves as the model-true instance of those
// classes where one is required as an assumption (never as a conclusion).
type Perfect struct {
	K rt.Runtime
}

// Name implements Oracle.
func (p Perfect) Name() string { return "P" }

// Suspected implements Oracle.
func (p Perfect) Suspected(_, q rt.ProcID) bool { return p.K.Crashed(q) }

// Scripted is a mutable oracle for unit tests: Set drives outputs directly.
// The zero value suspects no one.
type Scripted struct {
	m map[[2]rt.ProcID]bool
}

// Name implements Oracle.
func (s *Scripted) Name() string { return "scripted" }

// Suspected implements Oracle.
func (s *Scripted) Suspected(p, q rt.ProcID) bool { return s.m[[2]rt.ProcID{p, q}] }

// Set makes p's module output "suspect q" = v.
func (s *Scripted) Set(p, q rt.ProcID, v bool) {
	if s.m == nil {
		s.m = make(map[[2]rt.ProcID]bool)
	}
	s.m[[2]rt.ProcID{p, q}] = v
}

// emitChange emits the standard suspect/trust trace record.
func emitChange(k rt.Runtime, inst string, p, q rt.ProcID, suspect bool) {
	kind := "trust"
	if suspect {
		kind = "suspect"
	}
	k.Emit(rt.Record{P: p, Kind: kind, Peer: q, Inst: inst})
}
