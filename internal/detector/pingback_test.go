package detector_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestPingbackCompleteness mirrors the heartbeat test: crashed processes
// become permanently suspected.
func TestPingbackCompleteness(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 100, PostMax: 6}))
		pb := detector.NewPingback(k, "pb", detector.PingbackConfig{})
		k.CrashAt(1, 1500)
		horizon := k.Run(20000)
		if !pb.Suspected(0, 1) || !pb.Suspected(2, 1) {
			t.Fatalf("seed %d: crashed process not suspected", seed)
		}
		if _, err := checker.StrongCompleteness(log, "pb", checker.AllPairs(procs(3)), false, horizon*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPingbackEventualAccuracy: all-correct runs converge under partial
// synchrony.
func TestPingbackEventualAccuracy(t *testing.T) {
	for _, seed := range []int64{4, 5, 6} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 2000, PreMax: 300, PostMax: 6}))
		pb := detector.NewPingback(k, "pb", detector.PingbackConfig{})
		horizon := k.Run(30000)
		for _, p := range procs(3) {
			for _, q := range procs(3) {
				if p != q && pb.Suspected(p, q) {
					t.Fatalf("seed %d: %d still suspects %d", seed, p, q)
				}
			}
		}
		if _, err := checker.EventualStrongAccuracy(log, "pb", checker.AllPairs(procs(3)), false, horizon*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPingbackRescindsViaLatePong: a false suspicion is rescinded and
// enlarges the timeout.
func TestPingbackRescindsViaLatePong(t *testing.T) {
	falseSuspicions := 0
	for seed := int64(1); seed <= 8; seed++ {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 3000, PreMax: 400, PostMax: 5}))
		pb := detector.NewPingback(k, "pb", detector.PingbackConfig{Timeout: 50, Bump: 60})
		k.Run(15000)
		rep, err := checker.EventualStrongAccuracy(log, "pb", checker.AllPairs(procs(2)), false, 12000)
		if err != nil {
			t.Fatalf("seed %d: did not converge: %v", seed, err)
		}
		falseSuspicions += rep.Mistakes
		if rep.Mistakes > 0 && pb.Timeout(0, 1) == 50 && pb.Timeout(1, 0) == 50 {
			t.Fatalf("seed %d: mistakes made but no timeout grew", seed)
		}
	}
	if falseSuspicions == 0 {
		t.Fatal("adversary never caused a false suspicion across 8 runs")
	}
}

// TestPingbackVsHeartbeatSameRun: both implementations installed on the
// same kernel converge to the same verdicts about a crash.
func TestPingbackVsHeartbeatSameRun(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(9),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 80, PostMax: 6}))
	hb := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	pb := detector.NewPingback(k, "pb", detector.PingbackConfig{})
	k.CrashAt(2, 3000)
	k.Run(30000)
	for _, p := range procs(3)[:2] {
		for _, q := range procs(3) {
			if p == q {
				continue
			}
			if hb.Suspected(p, q) != pb.Suspected(p, q) {
				t.Fatalf("verdict mismatch at (%d,%d): hb=%v pb=%v",
					p, q, hb.Suspected(p, q), pb.Suspected(p, q))
			}
		}
	}
}
