// Package rt defines the execution-model vocabulary shared by every protocol
// module in this repository — processes, virtual time, messages, trace
// records, guarded actions — and the Runtime interface that abstracts over
// how protocol code is executed.
//
// Two runtimes implement the interface:
//
//   - internal/sim.Kernel: the deterministic single-threaded discrete-event
//     simulator. Virtual time is a modeling device, scheduling and delays
//     come from a seeded adversary, and a run is exactly reproducible from
//     (program, fault schedule, delay policy, seed). This is the runtime the
//     proofs, checkers, chaos campaigns and experiments use.
//
//   - internal/live.Runtime: the real-time runtime. Each process is a
//     goroutine with its own mailbox, timers are wall-clock, and messages
//     travel over a pluggable bus (in-process channels or length-prefixed
//     TCP). Runs are not reproducible — the scheduler is the operating
//     system — but the trace vocabulary is identical, so the same checkers
//     validate live runs.
//
// Protocol packages (internal/detector, internal/dining and its tables,
// internal/core) are written against Runtime only; they cannot tell which
// runtime is executing them. That is the point: the code whose properties
// were model-checked in the simulator is byte-for-byte the code that serves
// real traffic.
package rt

import (
	"fmt"
	"math/rand"
)

// Time is discrete time in ticks. In the simulator ticks are virtual and
// advanced by the event loop; in the live runtime one tick is a configured
// wall-clock duration. Protocol code must not branch on absolute times
// except via explicit timers (e.g. heartbeat intervals).
type Time int64

// ProcID identifies a process. Processes are numbered 0..N-1.
type ProcID int

// Never is a sentinel Time meaning "does not happen".
const Never Time = -1

// Message is a single protocol message in transit between two processes.
// Port routes the message to the handler registered under the same name at
// the destination; composed protocols namespace their ports (for example
// "dx/3-1/0/fork").
type Message struct {
	From    ProcID
	To      ProcID
	Port    string
	Payload any
}

func (m Message) String() string {
	return fmt.Sprintf("%d->%d %s %v", m.From, m.To, m.Port, m.Payload)
}

// Record is a structured trace record emitted by the runtime and by protocol
// modules. Checkers reconstruct runs (eating intervals, suspicion history,
// crash times) purely from the record stream.
type Record struct {
	T    Time   // time of the event, in ticks
	Seq  int64  // global sequence number (total order tie-break)
	P    ProcID // process the event happened at
	Kind string // event kind, e.g. "state", "suspect", "trust", "crash"
	Peer ProcID // peer process, when relevant (else -1)
	Inst string // instance name (table, oracle, module), when relevant
	Note string // free-form detail, e.g. the new dining state
}

// Tracer receives every Record emitted during a run.
type Tracer interface {
	Trace(Record)
}

// Handler processes one delivered message as part of an atomic step.
type Handler func(Message)

// Runtime is the execution substrate protocol modules are written against.
// It is the exact surface the protocol layer needs — registration of guarded
// actions and message handlers, sending, local timers, a clock, tracing, a
// random source, and crash ground truth — and nothing more; runtime-specific
// control (running the simulation, starting goroutines, fault injection)
// stays on the concrete types.
//
// Execution contract, common to all implementations:
//
//   - Steps of one process are serialized: at any process, at most one of
//     its action bodies, handlers, or timer callbacks runs at a time, so
//     process-local state needs no locking.
//   - Weak fairness: an action whose guard is continuously enabled at a
//     live process is eventually executed.
//   - Guards must be side-effect-free predicates over the process's local
//     state; bodies are atomic steps that may send messages.
//   - Channels are reliable but non-FIFO: every message sent to a correct
//     process is eventually delivered, possibly out of order.
type Runtime interface {
	// N returns the number of processes.
	N() int
	// Now returns the current time in ticks.
	Now() Time
	// Rand returns the runtime's random source. In the simulator this is
	// the seeded deterministic source (all protocol randomness must come
	// from here to keep runs reproducible); the live runtime returns a
	// concurrency-safe source.
	Rand() *rand.Rand
	// Crashed reports whether p has crashed (ground truth; only
	// fault-schedule-aware oracles may consult this).
	Crashed(p ProcID) bool
	// AddAction registers a guarded action at process p.
	AddAction(p ProcID, name string, guard func() bool, body func())
	// Handle registers the message handler for the given port at process p.
	// Registering twice for the same port is a programming error.
	Handle(p ProcID, port string, h Handler)
	// Send transmits a message to process `to`; the handler registered for
	// port at the destination receives it as an atomic step.
	Send(from, to ProcID, port string, payload any)
	// After schedules fn to run at process p after d ticks (a local timer).
	// The timer is discarded if p has crashed by then.
	After(p ProcID, d Time, fn func())
	// Emit records a trace event, stamping it with the current time and a
	// fresh sequence number.
	Emit(r Record)
}
