package rt

// SendHook intercepts protocol-level sends (see TransportRuntime). Returning
// true means the hook consumed the message and will arrange its delivery
// itself (typically by re-sending wrapped envelopes through RawSend);
// returning false lets the runtime transmit it directly.
type SendHook func(Message) bool

// TransportRuntime is the extended runtime surface a transport layer needs
// to interpose on a system's messaging: hooking protocol sends, shipping its
// own wire envelopes underneath the hook, handing restored messages to the
// handlers the protocol registered, and accounting. Both runtimes implement
// it (internal/sim over its simulated links, internal/live over its bus).
type TransportRuntime interface {
	Runtime
	// SetSendHook installs (or, with nil, removes) a send interceptor: every
	// protocol-level Send is offered to the hook before transmission.
	SetSendHook(h SendHook)
	// RawSend transmits directly on the underlying links/bus, bypassing any
	// installed SendHook.
	RawSend(from, to ProcID, port string, payload any)
	// Dispatch delivers m to the handler registered for m.Port at m.To, as
	// an atomic step of the destination process. In the simulator delivery
	// is synchronous; in the live runtime it is queued onto the
	// destination's mailbox.
	Dispatch(m Message)
	// Count adds delta to a named runtime counter (e.g. "transport.sent").
	Count(name string, delta int64)
}
