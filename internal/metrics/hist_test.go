package metrics

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestHistPercentiles checks the histogram's percentiles against exact
// order statistics on a log-uniform sample: each reported percentile must
// be ≥ the true one (buckets report upper bounds) and within one sub-bucket
// width (25%) of it, and the max must be exact.
func TestHistPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHist()
	var exact []time.Duration
	for i := 0; i < 20000; i++ {
		us := 1 << uint(rng.Intn(20)) // 1µs..~1s octaves
		d := time.Duration(us+rng.Intn(us)) * time.Microsecond
		h.ObserveDuration(d)
		exact = append(exact, d)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 95, 99} {
		got := h.PctDuration(p)
		want := exact[int(p/100*float64(len(exact)))]
		if got < want {
			t.Errorf("p%.0f: histogram %v under exact %v", p, got, want)
		}
		if float64(got) > float64(want)*1.25+float64(time.Microsecond) {
			t.Errorf("p%.0f: histogram %v over exact %v by more than a sub-bucket", p, got, want)
		}
	}
	if h.PctDuration(100) != exact[len(exact)-1] || h.MaxDuration() != exact[len(exact)-1] {
		t.Errorf("max: got %v/%v want %v", h.PctDuration(100), h.MaxDuration(), exact[len(exact)-1])
	}
}

// TestHistMerge: merging per-client histograms must equal one histogram fed
// every sample — same counts, count, sum, and max.
func TestHistMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	whole := NewHist()
	parts := make([]*Hist, 4)
	for i := range parts {
		parts[i] = NewHist()
	}
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1e6)) * time.Microsecond
		whole.ObserveDuration(d)
		parts[i%4].ObserveDuration(d)
	}
	merged := NewHist()
	for _, p := range parts {
		merged.Merge(p)
	}
	for i := 0; i < NumBuckets; i++ {
		if merged.counts[i].Load() != whole.counts[i].Load() {
			t.Fatalf("bucket %d diverged: merged %d whole %d", i, merged.counts[i].Load(), whole.counts[i].Load())
		}
	}
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() || merged.Max() != whole.Max() {
		t.Fatalf("merge diverged: count %d/%d sum %d/%d max %d/%d",
			merged.Count(), whole.Count(), merged.Sum(), whole.Sum(), merged.Max(), whole.Max())
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if merged.Pct(p) != whole.Pct(p) {
			t.Fatalf("p%.0f diverged: merged %d whole %d", p, merged.Pct(p), whole.Pct(p))
		}
	}
}

// TestHistEdges pins the degenerate inputs: zero samples, zero duration,
// and a value past the last octave must all stay in range.
func TestHistEdges(t *testing.T) {
	h := NewHist()
	if h.Pct(50) != 0 {
		t.Fatal("empty histogram must report 0")
	}
	h.ObserveDuration(0)
	h.ObserveDuration(300 * time.Hour) // beyond the last bucket: clamps, max still exact
	if h.PctDuration(100) != 300*time.Hour {
		t.Fatalf("max lost: %v", h.PctDuration(100))
	}
	if got := h.PctDuration(0); got <= 0 || got > 2*time.Microsecond {
		t.Fatalf("p0 of a 0s sample: %v", got)
	}
}

// TestHistNil: a nil histogram ignores writes and reads zero, the contract
// optional instrumentation hooks rely on.
func TestHistNil(t *testing.T) {
	var h *Hist
	h.Observe(5)
	h.Merge(NewHist())
	if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 || h.Pct(99) != 0 {
		t.Fatal("nil histogram must read zero")
	}
}

// TestBucketMonotone: the bucket mapping must be monotone in the value and
// every bucket's upper bound must actually bound its members.
func TestBucketMonotone(t *testing.T) {
	prev := 0
	for v := int64(1); v < 1<<22; v = v*5/4 + 1 {
		idx := bucketOf(v)
		if idx < prev {
			t.Fatalf("bucket regressed at %d: %d < %d", v, idx, prev)
		}
		if u := BucketUpper(idx); u < v {
			t.Fatalf("upper bound %d below member %d", u, v)
		}
		prev = idx
	}
}
