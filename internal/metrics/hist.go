package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Hist is a fixed-footprint log-scale histogram: 4 sub-buckets per
// power-of-two octave, from 1 up past 2^40, generalized from the latency
// histogram the load generator grew in PR 7 (cmd/dineload/hist.go). It
// replaces store-every-sample recorders — under a long run at high
// throughput those grow without bound and their end-of-run sort dominates
// shutdown; the histogram is a few KiB forever, merging is bucket addition,
// and percentiles come from a cumulative scan. Quantization error is
// bounded by the sub-bucket width (≤ ~19% of the value), far below
// run-to-run noise; the maximum is tracked exactly because tail spikes are
// the one thing quantization would hide.
//
// Values are dimensionless non-negative int64s; the common case of
// durations observes microseconds (ObserveDuration). All operations are
// lock-free and alloc-free, so a Hist is safe to share between writers and
// a concurrent scraper; like Counter, a nil *Hist ignores writes.
type Hist struct {
	counts [NumBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NumBuckets covers exponents 0..39 (1 to ~2^40) at 4 sub-buckets each —
// for microseconds, 1µs to ~18 hours.
const NumBuckets = 40 * 4

// NewHist returns an empty histogram. (A Hist must not be copied once used;
// hand out pointers.)
func NewHist() *Hist { return &Hist{} }

// bucketOf maps a value to its bucket: floor(log2(v)) picks the octave, the
// next two bits below the leading one pick the quarter. Values ≤ 0 land in
// the first bucket.
func bucketOf(v int64) int {
	u := uint64(v)
	if v <= 0 {
		u = 1
	}
	exp := uint(bits.Len64(u) - 1)
	var sub uint64
	if exp >= 2 {
		sub = (u >> (exp - 2)) & 3
	} else {
		sub = (u << (2 - exp)) & 3
	}
	idx := int(exp)*4 + int(sub)
	if idx >= NumBuckets {
		idx = NumBuckets - 1
	}
	return idx
}

// BucketUpper is the inclusive upper bound of a bucket, the value
// percentiles report: (5+sub)/4 × 2^exp — a pessimistic
// (never-underestimating) representative.
func BucketUpper(idx int) int64 {
	exp := uint(idx / 4)
	sub := uint64(idx % 4)
	return int64(((5 + sub) << exp) / 4)
}

// Observe records one value (lock-free, alloc-free).
func (h *Hist) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a duration as microseconds.
func (h *Hist) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h *Hist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values.
func (h *Hist) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the exact maximum observed value (0 if empty).
func (h *Hist) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Merge folds another histogram in (e.g. per-client results into a total).
// Not atomic as a whole: concurrent observes on o may be split across the
// two histograms, which every caller merging finished shards accepts.
func (h *Hist) Merge(o *Hist) {
	if h == nil || o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.n.Add(o.n.Load())
	h.sum.Add(o.sum.Load())
	for m := o.max.Load(); ; {
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			break
		}
	}
}

// Pct returns the p-th percentile (0–100) as the owning bucket's upper
// bound, clamped by the exact maximum; the exact maximum for p ≥ 100 or
// when the scan runs off the end. 0 if empty.
func (h *Hist) Pct(p float64) int64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	max := h.max.Load()
	rank := int64(p / 100 * float64(n))
	if rank >= n {
		return max
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			u := BucketUpper(i)
			if u > max {
				return max // the top bucket's bound can overshoot the real max
			}
			return u
		}
	}
	return max
}

// PctDuration is Pct for histograms observing microseconds.
func (h *Hist) PctDuration(p float64) time.Duration {
	return time.Duration(h.Pct(p)) * time.Microsecond
}

// MaxDuration is Max for histograms observing microseconds.
func (h *Hist) MaxDuration() time.Duration {
	return time.Duration(h.Max()) * time.Microsecond
}
