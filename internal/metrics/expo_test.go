package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte: series are
// sorted by name, histograms emit cumulative non-empty buckets with scaled
// le bounds plus +Inf/_sum/_count, floats render in Go 'g' form. A format
// drift here breaks every scraper pointed at /metrics, so it must be a
// deliberate change.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	// Register out of name order to prove exposition sorts.
	r.GaugeFunc("demo_sampled", "a sampled value", func() int64 { return 5 })
	h := r.Histogram("demo_lat_seconds", "grant latency", 1e-6)
	r.Counter("demo_grants_total", "sessions granted").Add(42)
	r.Gauge("demo_inflight", "sessions in flight").Set(7)
	h.Observe(1)
	h.Observe(100)
	h.Observe(1000000)

	const want = `# HELP demo_grants_total sessions granted
# TYPE demo_grants_total counter
demo_grants_total 42
# HELP demo_inflight sessions in flight
# TYPE demo_inflight gauge
demo_inflight 7
# HELP demo_lat_seconds grant latency
# TYPE demo_lat_seconds histogram
demo_lat_seconds_bucket{le="1e-06"} 1
demo_lat_seconds_bucket{le="0.000112"} 2
demo_lat_seconds_bucket{le="1.048576"} 3
demo_lat_seconds_bucket{le="+Inf"} 3
demo_lat_seconds_sum 1.000101
demo_lat_seconds_count 3
# HELP demo_sampled a sampled value
# TYPE demo_sampled gauge
demo_sampled 5
`
	var got strings.Builder
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestSnapshotJSONRoundTrip: the JSON view must decode back into the shared
// Snapshot type with values intact — the contract dineload's scrape relies
// on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(9)
	r.Gauge("b", "").Set(-2)
	h := r.Histogram("lat_seconds", "", 1e-6)
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i * 1000)) // 1ms..100ms in µs
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 9 || back.Gauges["b"] != -2 {
		t.Fatalf("scalar values lost: %+v", back)
	}
	hs := back.Hists["lat_seconds"]
	if hs.Count != 100 || hs.Max < 0.0999 || hs.Max > 0.1001 {
		t.Fatalf("hist count/max lost: %+v", hs)
	}
	if hs.P50 < 0.05 || hs.P50 > 0.0625 {
		t.Fatalf("p50 out of bucket range: %+v", hs)
	}
	if hs.P99 < 0.099 || hs.P99 > 0.125 {
		t.Fatalf("p99 out of bucket range: %+v", hs)
	}
}
