package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte-for-byte: series are
// sorted by name, histograms emit cumulative non-empty buckets with scaled
// le bounds plus +Inf/_sum/_count, floats render in Go 'g' form. A format
// drift here breaks every scraper pointed at /metrics, so it must be a
// deliberate change.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	// Register out of name order to prove exposition sorts.
	r.GaugeFunc("demo_sampled", "a sampled value", func() int64 { return 5 })
	h := r.Histogram("demo_lat_seconds", "grant latency", 1e-6)
	r.Counter("demo_grants_total", "sessions granted").Add(42)
	r.Gauge("demo_inflight", "sessions in flight").Set(7)
	h.Observe(1)
	h.Observe(100)
	h.Observe(1000000)

	const want = `# HELP demo_grants_total sessions granted
# TYPE demo_grants_total counter
demo_grants_total 42
# HELP demo_inflight sessions in flight
# TYPE demo_inflight gauge
demo_inflight 7
# HELP demo_lat_seconds grant latency
# TYPE demo_lat_seconds histogram
demo_lat_seconds_bucket{le="1e-06"} 1
demo_lat_seconds_bucket{le="0.000112"} 2
demo_lat_seconds_bucket{le="1.048576"} 3
demo_lat_seconds_bucket{le="+Inf"} 3
demo_lat_seconds_sum 1.000101
demo_lat_seconds_count 3
# HELP demo_sampled a sampled value
# TYPE demo_sampled gauge
demo_sampled 5
`
	var got strings.Builder
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestPrometheusLabeledGolden pins the labeled-series exposition: instruments
// registered via WithLabels under one base name share a single HELP/TYPE
// header, counters and gauges print their full labeled name, and a labeled
// histogram merges the instrument labels with le on every _bucket line while
// _sum/_count carry the labels alone. This is the format the sharded service
// exposes its per-table instrument sets in.
func TestPrometheusLabeledGolden(t *testing.T) {
	r := New()
	r.Counter(WithLabels("demo_grants_total", "table", "1"), "sessions granted").Add(5)
	r.Counter(WithLabels("demo_grants_total", "table", "0"), "sessions granted").Add(3)
	h := r.Histogram(WithLabels("demo_lat_seconds", "table", "0"), "grant latency", 1e-6)
	h.Observe(1)
	h.Observe(100)
	r.Gauge("demo_plain", "unlabeled neighbour").Set(2)

	const want = `# HELP demo_grants_total sessions granted
# TYPE demo_grants_total counter
demo_grants_total{table="0"} 3
demo_grants_total{table="1"} 5
# HELP demo_lat_seconds grant latency
# TYPE demo_lat_seconds histogram
demo_lat_seconds_bucket{table="0",le="1e-06"} 1
demo_lat_seconds_bucket{table="0",le="0.000112"} 2
demo_lat_seconds_bucket{table="0",le="+Inf"} 2
demo_lat_seconds_sum{table="0"} 0.000101
demo_lat_seconds_count{table="0"} 2
# HELP demo_plain unlabeled neighbour
# TYPE demo_plain gauge
demo_plain 2
`
	var got strings.Builder
	if err := r.WritePrometheus(&got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want {
		t.Fatalf("labeled exposition drifted:\n--- got ---\n%s--- want ---\n%s", got.String(), want)
	}
}

// TestWithLabels covers the name builder edge cases: no pairs, multiple
// pairs, value escaping, and the splitLabels inverse.
func TestWithLabels(t *testing.T) {
	if got := WithLabels("x_total"); got != "x_total" {
		t.Fatalf("no pairs: %q", got)
	}
	got := WithLabels("x_total", "table", "3", "role", "leader")
	if got != `x_total{table="3",role="leader"}` {
		t.Fatalf("two pairs: %q", got)
	}
	if b, l := splitLabels(got); b != "x_total" || l != `table="3",role="leader"` {
		t.Fatalf("splitLabels(%q) = %q, %q", got, b, l)
	}
	esc := WithLabels("x", "k", "a\"b\\c\nd")
	if esc != `x{k="a\"b\\c\nd"}` {
		t.Fatalf("escaping: %q", esc)
	}
	if b, l := splitLabels("plain"); b != "plain" || l != "" {
		t.Fatalf("splitLabels(plain) = %q, %q", b, l)
	}
}

// TestSnapshotJSONRoundTrip: the JSON view must decode back into the shared
// Snapshot type with values intact — the contract dineload's scrape relies
// on.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("a_total", "").Add(9)
	r.Gauge("b", "").Set(-2)
	h := r.Histogram("lat_seconds", "", 1e-6)
	for i := 1; i <= 100; i++ {
		h.Observe(int64(i * 1000)) // 1ms..100ms in µs
	}
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 9 || back.Gauges["b"] != -2 {
		t.Fatalf("scalar values lost: %+v", back)
	}
	hs := back.Hists["lat_seconds"]
	if hs.Count != 100 || hs.Max < 0.0999 || hs.Max > 0.1001 {
		t.Fatalf("hist count/max lost: %+v", hs)
	}
	if hs.P50 < 0.05 || hs.P50 > 0.0625 {
		t.Fatalf("p50 out of bucket range: %+v", hs)
	}
	if hs.P99 < 0.099 || hs.P99 > 0.125 {
		t.Fatalf("p99 out of bucket range: %+v", hs)
	}
}
