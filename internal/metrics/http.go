package metrics

import (
	"encoding/json"
	"net/http"
)

// Handler serves a registry over HTTP:
//
//	/metrics — Prometheus text exposition (curl-able, collector-compatible)
//	/statusz — JSON Snapshot (programmatic consumers, e.g. dineload's
//	           mid-run scrape)
//
// Scrapes are read-only and safe concurrently with writers, so the handler
// can sit on any mux — dineserve gives it a dedicated listener (-metrics) to
// keep observability traffic off the service port.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	return mux
}
