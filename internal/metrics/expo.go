package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// This file renders a registry two ways: the Prometheus text format
// (`/metrics`, scrape-compatible with any Prometheus-speaking collector) and
// a JSON snapshot (`/statusz`, consumed programmatically — e.g. dineload
// scraping the server mid-run for the client-vs-server latency comparison).
// Both walk the same sorted instrument list, so the two views always
// enumerate the same series.

// WritePrometheus renders every instrument in Prometheus text exposition
// format, sorted by name. Histograms emit cumulative non-empty buckets plus
// +Inf, _sum and _count, with bucket bounds and sum scaled into the
// registered unit.
func (r *Registry) WritePrometheus(w io.Writer) error {
	lastBase := ""
	for _, e := range r.sorted() {
		// Labeled series sharing one base name (e.g. per-table instruments
		// registered via WithLabels) sort adjacently and share one
		// HELP/TYPE header, as the exposition format requires.
		if e.base != lastBase {
			lastBase = e.base
			kind := "counter"
			switch e.kind {
			case KindGauge:
				kind = "gauge"
			case KindHist:
				kind = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", e.base, e.help, e.base, kind); err != nil {
				return err
			}
		}
		switch e.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.counter.Value()); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name, e.gaugeValue()); err != nil {
				return err
			}
		case KindHist:
			if err := writePromHist(w, e); err != nil {
				return err
			}
		}
	}
	return nil
}

// fmtFloat renders a float the shortest way that round-trips ("1e-06",
// "0.000112"), matching what Prometheus itself emits for le bounds.
func fmtFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func writePromHist(w io.Writer, e *entry) error {
	h := e.hist
	// A labeled histogram's sub-series carry the instrument labels merged
	// with le: base_bucket{table="0",le="1e-06"}; _sum and _count keep the
	// instrument labels alone.
	lblPrefix, suffix := "", ""
	if e.labels != "" {
		lblPrefix = e.labels + ","
		suffix = "{" + e.labels + "}"
	}
	var cum int64
	for i := 0; i < NumBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		le := float64(BucketUpper(i)) * e.scale
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", e.base, lblPrefix, fmtFloat(le), cum); err != nil {
			return err
		}
	}
	// The atomics are read individually, so count may run slightly ahead of
	// the bucket walk under concurrent observes; clamp +Inf to stay
	// cumulative-consistent within this scrape.
	count := h.Count()
	if count < cum {
		count = cum
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s_sum%s %s\n%s_count%s %d\n",
		e.base, lblPrefix, count, e.base, suffix, fmtFloat(float64(h.Sum())*e.scale), e.base, suffix, count)
	return err
}

// HistSnapshot is one histogram's JSON view: count plus scaled sum, exact
// max, and quantiles, so consumers get percentiles without reimplementing
// the bucket scan.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is the JSON view of a whole registry.
type Snapshot struct {
	Counters map[string]int64        `json:"counters"`
	Gauges   map[string]int64        `json:"gauges"`
	Hists    map[string]HistSnapshot `json:"hists"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64),
		Gauges:   make(map[string]int64),
		Hists:    make(map[string]HistSnapshot),
	}
	for _, e := range r.sorted() {
		switch e.kind {
		case KindCounter:
			s.Counters[e.name] = e.counter.Value()
		case KindGauge:
			s.Gauges[e.name] = e.gaugeValue()
		case KindHist:
			h := e.hist
			s.Hists[e.name] = HistSnapshot{
				Count: h.Count(),
				Sum:   float64(h.Sum()) * e.scale,
				Max:   float64(h.Max()) * e.scale,
				P50:   float64(h.Pct(50)) * e.scale,
				P95:   float64(h.Pct(95)) * e.scale,
				P99:   float64(h.Pct(99)) * e.scale,
			}
		}
	}
	return s
}
