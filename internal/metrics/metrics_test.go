package metrics

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterGaugeBasics pins the elementary semantics: counters sum their
// shards, gauges set and add, and nil handles are inert.
func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter: got %d want 42", c.Value())
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatal("re-registration must return the same handle")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge: got %d want 4", g.Value())
	}
	var nc *Counter
	nc.Add(5)
	var ng *Gauge
	ng.Set(5)
	if nc.Value() != 0 || ng.Value() != 0 {
		t.Fatal("nil instruments must be inert")
	}
}

// TestKindMismatchPanics: re-registering a name as a different kind is a
// wiring bug and must fail loudly.
func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x", "")
}

// TestRegistryStorm is the -race concurrency proof: parallel writers hammer
// a counter, a gauge, and a histogram while a scraper loops both exposition
// formats, and the final values must be exact.
func TestRegistryStorm(t *testing.T) {
	r := New()
	c := r.Counter("storm_total", "storm counter")
	g := r.Gauge("storm_gauge", "storm gauge")
	h := r.Histogram("storm_lat_seconds", "storm latency", 1e-6)
	r.GaugeFunc("storm_fn", "sampled", func() int64 { return c.Value() })

	const writers = 8
	const perWriter = 20000
	stop := make(chan struct{})
	var scrapes sync.WaitGroup
	scrapes.Add(1)
	go func() {
		defer scrapes.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.WritePrometheus(io.Discard); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			_ = r.Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(w*perWriter + i + 1))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapes.Wait()

	const total = writers * perWriter
	if c.Value() != total {
		t.Fatalf("counter lost updates: got %d want %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Fatalf("gauge lost updates: got %d want %d", g.Value(), total)
	}
	if h.Count() != total {
		t.Fatalf("histogram lost observations: got %d want %d", h.Count(), total)
	}
	if h.Max() != total {
		t.Fatalf("histogram max: got %d want %d", h.Max(), total)
	}
}

// TestHandler drives the HTTP faces through httptest-free plumbing: the
// Prometheus body must carry the series, the JSON body must decode back to
// the same values.
func TestHandlerViews(t *testing.T) {
	r := New()
	r.Counter("reqs_total", "requests").Add(3)
	r.Histogram("lat_seconds", "latency", 1e-6).ObserveDuration(5 * time.Millisecond)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reqs_total 3", "lat_seconds_count 1", `lat_seconds_bucket{le="+Inf"} 1`} {
		if !strings.Contains(prom.String(), want) {
			t.Fatalf("prometheus body missing %q:\n%s", want, prom.String())
		}
	}
	s := r.Snapshot()
	if s.Counters["reqs_total"] != 3 {
		t.Fatalf("snapshot counter: %+v", s)
	}
	hs := s.Hists["lat_seconds"]
	if hs.Count != 1 || hs.Max != 0.005 {
		t.Fatalf("snapshot hist: %+v", hs)
	}
}
