// Package metrics is the stack's dependency-free observability substrate: a
// registry of named instruments — sharded atomic counters, gauges, and a
// fixed-footprint log-scale histogram — with Prometheus-text and JSON
// exposition. The paper's guarantees are all *eventual* (wait-free dining,
// ◇P extraction quality under ◇WX), so in a live deployment they are only
// trustworthy if convergence is watchable: suspect churn settling, grant
// latency stabilizing, mistake eras closing. This package makes that cheap
// enough to leave on.
//
// Design rules, in priority order:
//
//  1. The hot path allocates nothing and takes no locks. Instruments are
//     handles obtained once at registration (the only map lookup); Add and
//     Observe are atomic operations on preallocated memory. The dineserve
//     request pipeline runs with every instrument live at 0 extra allocs/op
//     (pinned by TestServeGrantMetricsAllocs against BENCH_serve.json).
//  2. Writers never contend with each other more than the hardware requires.
//     Counters are sharded over cache-line-padded cells indexed by a hash of
//     the caller's stack address, so goroutines on different stacks update
//     different cache lines; Value folds the shards at read time, which is
//     the rare operation.
//  3. Scrapes are read-only and safely concurrent with writers: exposition
//     walks the instruments with atomic loads, so a scrape observes each
//     instrument near-atomically but the set of instruments exactly.
package metrics

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// counterShards is the number of padded cells per counter: a power of two
// small enough to keep a counter at half a KiB and large enough that a
// handful of hot writer goroutines rarely collide.
const counterShards = 8

// cell is one cache-line-padded shard. 64 bytes keeps neighbouring shards'
// values off one line on every current x86/arm server part.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// shardIndex hashes the caller's stack address to a shard. Distinct
// goroutines run on distinct stacks, so concurrent writers spread over the
// cells without any runtime support (no CPU id, no goroutine id); the
// Fibonacci multiplier mixes the low page bits into the top three.
func shardIndex() int {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	return int((uint64(p) * 0x9E3779B97F4A7C15) >> 61)
}

// Counter is a monotonically increasing sum, sharded for write scalability.
// The zero value is usable; a nil *Counter ignores writes and reads 0, so
// optional instrumentation hooks need no guards at the call site.
type Counter struct {
	shards [counterShards]cell
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (lock-free, alloc-free).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.shards[shardIndex()].v.Add(n)
}

// Value folds the shards. Concurrent Adds may or may not be included —
// exactly the torn-read contract every scrape accepts.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a settable instantaneous value. Set/Add are single atomics —
// gauges are written far less often than counters, so they are not sharded
// (sharding would break Set). Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
	_ [56]byte
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Kind classifies an instrument for exposition.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHist
)

// entry is one registered instrument.
type entry struct {
	name   string // full series name, labels included: base{k="v",...}
	base   string // metric family name (name up to the label braces)
	labels string // rendered label pairs without braces; "" if unlabeled
	help   string
	kind   Kind
	scale  float64 // exposition multiplier (histograms: raw value → unit)

	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64
	hist    *Hist
}

// WithLabels renders a series name with label pairs appended in Prometheus
// text form: WithLabels("x_total", "table", "3") → `x_total{table="3"}`.
// Registering several series that share a base name but differ in labels
// gives each its own instrument handle while exposition groups them under
// one HELP/TYPE header — the registration-time label support the sharded
// service uses for its per-table instrument sets. kv must alternate
// key, value; label values are escaped per the exposition format.
func WithLabels(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("metrics: WithLabels needs alternating key, value pairs")
	}
	b := []byte(name)
	b = append(b, '{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[i]...)
		b = append(b, '=', '"')
		for _, c := range []byte(kv[i+1]) {
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			default:
				b = append(b, c)
			}
		}
		b = append(b, '"')
	}
	return string(append(b, '}'))
}

// splitLabels breaks a full series name into its base and rendered labels.
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && len(name) > i+1 && name[len(name)-1] == '}' {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// Registry holds named instruments. Registration takes a lock and a map
// lookup; the returned handles never do. Instruments registered twice under
// one name return the same handle (a registry is process-wide state, and
// the second caller is almost always the same subsystem booting twice in a
// test), but re-registering a name as a different kind panics — that is a
// wiring bug, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	byName  map[string]*entry
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register installs e (or returns the existing entry for the name).
func (r *Registry) register(name, help string, kind Kind) (*entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic("metrics: " + name + " re-registered as a different kind")
		}
		return e, false
	}
	e := &entry{name: name, help: help, kind: kind, scale: 1}
	e.base, e.labels = splitLabels(name)
	r.byName[name] = e
	r.entries = append(r.entries, e)
	return e, true
}

// Counter registers (or finds) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	e, fresh := r.register(name, help, KindCounter)
	if fresh {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	e, fresh := r.register(name, help, KindGauge)
	if fresh {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// GaugeFunc registers a gauge whose value is sampled by fn at scrape time —
// for values some other subsystem already maintains (an inflight count, a
// runtime counter) that would be wasteful to mirror on the hot path.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	e, _ := r.register(name, help, KindGauge)
	e.gaugeFn = fn
}

// Histogram registers (or finds) a log-scale histogram. scale converts raw
// observed values into the exposition unit (e.g. 1e-6 for a histogram
// observing microseconds but named _seconds); scale <= 0 means 1.
func (r *Registry) Histogram(name, help string, scale float64) *Hist {
	e, fresh := r.register(name, help, KindHist)
	if fresh {
		if scale <= 0 {
			scale = 1
		}
		e.scale = scale
		e.hist = NewHist()
	}
	return e.hist
}

// sorted snapshots the entry list ordered by name, so exposition output is
// deterministic regardless of registration order.
func (r *Registry) sorted() []*entry {
	r.mu.Lock()
	es := make([]*entry, len(r.entries))
	copy(es, r.entries)
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// gaugeValue reads a gauge entry: the sampling fn wins if set.
func (e *entry) gaugeValue() int64 {
	if e.gaugeFn != nil {
		return e.gaugeFn()
	}
	return e.gauge.Value()
}
