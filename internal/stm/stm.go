// Package stm models the contention-management scenario of Sections 2–3 of
// the paper: an obstruction-free software transactional memory whose
// liveness is boosted to wait-freedom by a wait-free ◇WX contention manager
// (a dining service on the clients' conflict graph).
//
// The STM itself is the usual versioned-object model: a transaction
// snapshots the versions of the objects it touches, computes for a while,
// and commits if and only if no touched object changed underneath it —
// committing bumps every written object's version. A transaction that runs
// in isolation long enough therefore always succeeds (obstruction freedom),
// but under contention a client can abort forever while its rivals commit
// (no wait-freedom). The model collapses the shared store into one global
// structure because STM is a shared-memory abstraction; what this package
// exercises is the contention manager built on dining, not a cache
// coherence protocol (see DESIGN.md's substitution table).
//
// A managed client asks its contention manager for permission (Hungry),
// runs its transaction while eating, and exits on commit — or exits and
// retries on abort, so eating sessions stay finite as the dining contract
// requires. Scheduling mistakes of the manager (two conflicting clients
// permitted at once) only cause aborts, which are retried: exactly the
// paper's point that ◇WX mistakes are recoverable. Once the manager stops
// making mistakes, every permitted transaction runs in isolation and
// commits: every client with a pending transaction eventually commits, so
// the STM is now wait-free.
package stm

import (
	"fmt"
	"sort"

	"repro/internal/dining"
	"repro/internal/sim"
)

// Store is the versioned shared object store.
type Store struct {
	versions map[string]int64
	commits  int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{versions: make(map[string]int64)}
}

// Version returns the current version of an object (0 if never written).
func (s *Store) Version(obj string) int64 { return s.versions[obj] }

// Commits returns the total number of committed transactions.
func (s *Store) Commits() int64 { return s.commits }

// Tx is one transaction attempt.
type Tx struct {
	objs     []string
	snapshot map[string]int64
	store    *Store
}

// Begin starts a transaction over the given objects.
func (s *Store) Begin(objs []string) *Tx {
	tx := &Tx{objs: objs, snapshot: make(map[string]int64, len(objs)), store: s}
	for _, o := range objs {
		tx.snapshot[o] = s.versions[o]
	}
	return tx
}

// TryCommit validates the snapshot and, on success, bumps every object's
// version. It reports whether the transaction committed.
func (tx *Tx) TryCommit() bool {
	for _, o := range tx.objs {
		if tx.store.versions[o] != tx.snapshot[o] {
			return false
		}
	}
	for _, o := range tx.objs {
		tx.store.versions[o]++
	}
	tx.store.commits++
	return true
}

// ClientStats is the outcome of one client's workload.
type ClientStats struct {
	P        sim.ProcID
	Commits  int
	Aborts   int
	LastDone sim.Time // time of the last commit (Never if none)
}

// Client runs transactions of a fixed duration over a fixed object set.
type Client struct {
	k       *sim.Kernel
	store   *Store
	p       sim.ProcID
	objs    []string
	length  sim.Time
	target  int
	stats   ClientStats
	managed dining.Diner // nil for unmanaged clients
}

// Config describes one client's workload.
type Config struct {
	Objs   []string
	Length sim.Time // transaction duration in ticks
	Target int      // stop after this many commits (0 = run forever)
}

// NewClient attaches an unmanaged (obstruction-free only) client at p: it
// begins a new transaction as soon as the previous attempt finishes,
// retrying aborts immediately.
func NewClient(k *sim.Kernel, store *Store, p sim.ProcID, cfg Config) *Client {
	c := newClient(k, store, p, cfg)
	c.runUnmanaged()
	return c
}

// NewManagedClient attaches a client at p that asks diner d for permission
// before each attempt, exiting its critical section after every attempt
// (commit or abort) so that eating stays finite.
func NewManagedClient(k *sim.Kernel, store *Store, p sim.ProcID, d dining.Diner, cfg Config) *Client {
	c := newClient(k, store, p, cfg)
	c.managed = d
	d.OnEat(func() {
		c.attempt(func(committed bool) {
			d.Exit()
		})
	})
	d.OnChange(func(s dining.State) {
		if s == dining.Thinking && !c.done() {
			k.After(p, 1, func() {
				if d.State() == dining.Thinking && !c.done() {
					d.Hungry()
				}
			})
		}
	})
	k.After(p, 1+sim.Time(p), func() {
		if d.State() == dining.Thinking {
			d.Hungry()
		}
	})
	return c
}

func newClient(k *sim.Kernel, store *Store, p sim.ProcID, cfg Config) *Client {
	if cfg.Length <= 0 {
		cfg.Length = 10
	}
	return &Client{
		k: k, store: store, p: p,
		objs: cfg.Objs, length: cfg.Length, target: cfg.Target,
		stats: ClientStats{P: p, LastDone: sim.Never},
	}
}

func (c *Client) done() bool { return c.target > 0 && c.stats.Commits >= c.target }

func (c *Client) runUnmanaged() {
	c.k.After(c.p, 1+sim.Time(c.p), func() { c.loopUnmanaged() })
}

func (c *Client) loopUnmanaged() {
	if c.done() {
		return
	}
	c.attempt(func(bool) { c.loopUnmanaged() })
}

// attempt runs one transaction: snapshot now, validate after length ticks.
func (c *Client) attempt(then func(committed bool)) {
	tx := c.store.Begin(c.objs)
	c.k.After(c.p, c.length, func() {
		ok := tx.TryCommit()
		if ok {
			c.stats.Commits++
			c.stats.LastDone = c.k.Now()
			c.k.Emit(sim.Record{P: c.p, Kind: "mark", Peer: -1, Inst: "stm", Note: "commit"})
		} else {
			c.stats.Aborts++
			c.k.Emit(sim.Record{P: c.p, Kind: "mark", Peer: -1, Inst: "stm", Note: "abort"})
		}
		then(ok)
	})
}

// Stats returns the client's outcome so far.
func (c *Client) Stats() ClientStats { return c.stats }

// Summary renders a deterministic one-line report for a set of clients.
func Summary(clients []*Client) string {
	cs := make([]ClientStats, len(clients))
	for i, c := range clients {
		cs[i] = c.Stats()
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].P < cs[j].P })
	s := ""
	for i, st := range cs {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("p%d: %dc/%da", st.P, st.Commits, st.Aborts)
	}
	return s
}
