package stm_test

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stm"
)

func TestStoreVersioning(t *testing.T) {
	s := stm.NewStore()
	tx := s.Begin([]string{"a", "b"})
	if !tx.TryCommit() {
		t.Fatal("isolated commit failed")
	}
	if s.Version("a") != 1 || s.Version("b") != 1 || s.Commits() != 1 {
		t.Fatalf("versions a=%d b=%d commits=%d", s.Version("a"), s.Version("b"), s.Commits())
	}
	// A transaction that snapshotted before the commit must abort.
	stale := s.Begin([]string{"a"})
	fresh := s.Begin([]string{"a"})
	if !fresh.TryCommit() {
		t.Fatal("fresh commit failed")
	}
	if stale.TryCommit() {
		t.Fatal("stale snapshot committed")
	}
	// Disjoint objects never conflict.
	x := s.Begin([]string{"x"})
	y := s.Begin([]string{"y"})
	if !x.TryCommit() || !y.TryCommit() {
		t.Fatal("disjoint transactions aborted")
	}
}

// TestObstructionFreedomIsolation: a lone client always commits.
func TestObstructionFreedomIsolation(t *testing.T) {
	k := sim.NewKernel(1, sim.WithSeed(1))
	s := stm.NewStore()
	c := stm.NewClient(k, s, 0, stm.Config{Objs: []string{"o"}, Length: 10, Target: 20})
	k.Run(10000)
	st := c.Stats()
	if st.Commits != 20 || st.Aborts != 0 {
		t.Fatalf("isolated client: %dc/%da", st.Commits, st.Aborts)
	}
}

// TestUnmanagedContentionStarves: the adversarial workload of Section 2 —
// a long transaction surrounded by fast rivals on the same object aborts
// forever. Obstruction freedom gives it nothing.
func TestUnmanagedContentionStarves(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(2))
	s := stm.NewStore()
	victim := stm.NewClient(k, s, 0, stm.Config{Objs: []string{"o"}, Length: 40})
	stm.NewClient(k, s, 1, stm.Config{Objs: []string{"o"}, Length: 9})
	stm.NewClient(k, s, 2, stm.Config{Objs: []string{"o"}, Length: 9})
	k.Run(30000)
	st := victim.Stats()
	if st.Commits != 0 {
		t.Fatalf("victim committed %d times; the starvation scenario needs tuning", st.Commits)
	}
	if st.Aborts < 50 {
		t.Fatalf("victim only attempted %d aborts", st.Aborts)
	}
	if s.Commits() < 100 {
		t.Fatalf("rivals barely committed (%d); contention scenario broken", s.Commits())
	}
}

// TestContentionManagerBoostsToWaitFreedom: the same workload under a
// dining-backed contention manager — every client, including the long one,
// commits its target.
func TestContentionManagerBoostsToWaitFreedom(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(3),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
	s := stm.NewStore()
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	g := graph.Clique(3)
	cm := forks.New(k, g, "cm", oracle, forks.Config{})
	victim := stm.NewManagedClient(k, s, 0, cm.Diner(0), stm.Config{Objs: []string{"o"}, Length: 40, Target: 5})
	r1 := stm.NewManagedClient(k, s, 1, cm.Diner(1), stm.Config{Objs: []string{"o"}, Length: 9, Target: 20})
	r2 := stm.NewManagedClient(k, s, 2, cm.Diner(2), stm.Config{Objs: []string{"o"}, Length: 9, Target: 20})
	k.Run(100000)
	for _, c := range []*stm.Client{victim, r1, r2} {
		st := c.Stats()
		if st.LastDone == sim.Never {
			t.Fatalf("client %d never committed under the contention manager", st.P)
		}
	}
	if st := victim.Stats(); st.Commits < 5 {
		t.Fatalf("victim committed only %d of 5 under the manager", st.Commits)
	}
}

// TestManagerMistakesOnlyCauseAborts: pre-convergence concurrent grants
// abort somebody, but never corrupt the store (versions only move forward
// by committed transactions).
func TestManagerMistakesOnlyCauseAborts(t *testing.T) {
	k := sim.NewKernel(2, sim.WithSeed(4),
		sim.WithDelay(sim.GSTDelay{GST: 2000, PreMax: 200, PostMax: 6}))
	s := stm.NewStore()
	// A scripted oracle that wrongly suspects everyone early, then recants:
	// guaranteed manager mistakes.
	var scripted detector.Scripted
	scripted.Set(0, 1, true)
	scripted.Set(1, 0, true)
	k.After(0, 3000, func() { scripted.Set(0, 1, false) })
	k.After(1, 3000, func() { scripted.Set(1, 0, false) })
	g := graph.Pair(0, 1)
	cm := forks.New(k, g, "cm", &scripted, forks.Config{})
	c0 := stm.NewManagedClient(k, s, 0, cm.Diner(0), stm.Config{Objs: []string{"o"}, Length: 30, Target: 10})
	c1 := stm.NewManagedClient(k, s, 1, cm.Diner(1), stm.Config{Objs: []string{"o"}, Length: 30, Target: 10})
	k.Run(100000)
	if c0.Stats().Aborts+c1.Stats().Aborts == 0 {
		t.Log("note: no aborts despite forced mistakes (timing did not overlap)")
	}
	if c0.Stats().Commits < 10 || c1.Stats().Commits < 10 {
		t.Fatalf("clients did not reach targets: %s", stm.Summary([]*stm.Client{c0, c1}))
	}
	if got, want := s.Commits(), int64(c0.Stats().Commits+c1.Stats().Commits); got != want {
		t.Fatalf("store counted %d commits, clients %d", got, want)
	}
}
