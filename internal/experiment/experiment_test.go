package experiment_test

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/sim"
)

// TestAllExperimentsPass runs the full experiment suite at reduced
// parameters; every table must come back without property violations. This
// is the repository's one-shot reproduction check.
func TestAllExperimentsPass(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite is long")
	}
	seeds := []int64{1, 2}
	cases := []struct {
		id string
		fn func() *experiment.Table
	}{
		{"E1", func() *experiment.Table { return experiment.E1Figure1(1) }},
		{"E2", func() *experiment.Table { return experiment.E2Completeness(seeds, []int{2, 3}) }},
		{"E3", func() *experiment.Table { return experiment.E3Accuracy(seeds, []sim.Time{400, 1500}) }},
		{"E4", func() *experiment.Table { return experiment.E4Invariants(seeds) }},
		{"E5", func() *experiment.Table { return experiment.E5Progress(seeds) }},
		{"E6", func() *experiment.Table { return experiment.E6Flawed(1, []sim.Time{10000, 20000}) }},
		{"E7", func() *experiment.Table { return experiment.E7Fairness(seeds) }},
		{"E8", func() *experiment.Table { return experiment.E8Trusting(seeds[:1]) }},
		{"E9", func() *experiment.Table { return experiment.E9Sufficiency(seeds[:1]) }},
		{"E10", func() *experiment.Table { return experiment.E10Applications(1) }},
		{"E11", func() *experiment.Table { return experiment.E11Scaling(1, []int{2, 3}) }},
		{"E12", func() *experiment.Table { return experiment.E12Downstream(seeds[:1]) }},
		{"E13", func() *experiment.Table { return experiment.E13Ablations(1) }},
		{"E14", func() *experiment.Table { return experiment.E14Locality(1) }},
		{"E15", func() *experiment.Table { return experiment.E15RoundTrip(seeds[:1]) }},
		{"E16", func() *experiment.Table { return experiment.E16ChaosSoak(1) }},
	}
	for _, c := range cases {
		c := c
		t.Run(c.id, func(t *testing.T) {
			t.Parallel()
			tbl := c.fn()
			if !tbl.Ok() {
				t.Fatalf("experiment failed:\n%s", tbl.Render())
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
		})
	}
}

// TestTableRender checks the text rendering shape.
func TestTableRender(t *testing.T) {
	tbl := &experiment.Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "bbbb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"hello"},
	}
	out := tbl.Render()
	if !strings.Contains(out, "== EX: demo ==") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatalf("missing note:\n%s", out)
	}
	if !tbl.Ok() {
		t.Fatal("no failures recorded, Ok should hold")
	}
	tbl.Failures = append(tbl.Failures, "boom")
	if tbl.Ok() || !strings.Contains(tbl.Render(), "FAIL: boom") {
		t.Fatal("failure not rendered")
	}
}
