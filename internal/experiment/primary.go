package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E1Figure1 reproduces Figure 1: the witness and subject eating sessions of
// one pair monitor in the exclusive suffix, rendered as a timeline. The
// figure's two claims are asserted mechanically: (a) witnesses alternate
// and never overlap, (b) the subjects' sessions overlap pairwise so that
// some subject is always eating in the suffix.
func E1Figure1(seed int64) *Table {
	t := &Table{ID: "E1", Title: "Figure 1 — witness/subject sessions in the exclusive suffix"}
	r := NewRig(2, seed, 400)
	m := core.NewPairMonitor(r.K, 0, 1, r.Factory, "xp")
	end := r.K.Run(30000)

	eat := r.Log.Sessions("eating")
	rows := []trace.TimelineRow{
		{Label: "p.w0", Intervals: eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 0}]},
		{Label: "p.w1", Intervals: eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 0}]},
		{Label: "q.s0", Intervals: eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 1}]},
		{Label: "q.s1", Intervals: eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 1}]},
	}
	// Render a window of about a dozen witness periods at the end of the
	// run, so individual sessions and the subjects' hand-off overlap are
	// visible (a wider window blurs into solid bars).
	w0s := rows[0].Intervals
	t0, t1 := end*3/4, end
	if len(w0s) > 16 {
		period := (w0s[len(w0s)-1].Start - w0s[len(w0s)-16].Start) / 15
		t0 = end - 12*period
	}
	t.Notes = append(t.Notes, "timeline of eating sessions ('#'), window ["+itoa(int64(t0))+", "+itoa(int64(t1))+"):")
	t.Notes = append(t.Notes, "\n"+trace.Timeline(rows, t0, t1, 72))

	// (a) Witnesses never overlap (they share process p and alternate).
	w0, w1 := rows[0].Intervals, rows[1].Intervals
	for _, a := range w0 {
		for _, b := range w1 {
			if a.Overlaps(b, end) {
				t.Failures = append(t.Failures, fmt.Sprintf("witness sessions overlap: %v vs %v", a, b))
			}
		}
	}
	// (b) Subject coverage in the suffix: every sampled instant has an
	// eating subject.
	subjects := append(append([]trace.Interval{}, rows[2].Intervals...), rows[3].Intervals...)
	gaps := 0
	for tick := t0; tick < t1; tick += 61 {
		covered := false
		for _, iv := range subjects {
			endAt := iv.End
			if endAt == sim.Never {
				endAt = end
			}
			if iv.Start <= tick && tick < endAt {
				covered = true
				break
			}
		}
		if !covered {
			gaps++
		}
	}
	if gaps > 0 {
		t.Failures = append(t.Failures, fmt.Sprintf("%d sampled instants with no subject eating (hand-off broken)", gaps))
	}
	t.Columns = []string{"property", "result"}
	t.Rows = [][]string{
		{"witness sessions (w0/w1)", fmt.Sprintf("%d / %d", len(w0), len(w1))},
		{"subject sessions (s0/s1)", fmt.Sprintf("%d / %d", len(rows[2].Intervals), len(rows[3].Intervals))},
		{"witness overlaps", "0 required"},
		{"suffix instants w/o eating subject", itoa(int64(gaps))},
	}
	return t
}

// E2Completeness measures Theorem 1 over full extractors: every crashed
// process becomes permanently suspected by every correct process; the table
// reports worst-case detection latency per system size.
func E2Completeness(seeds []int64, sizes []int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "Theorem 1 — strong completeness of the extracted ◇P",
		Columns: []string{"n", "seed", "crashed", "worst detection latency", "verdict"},
	}
	t.collect(Sweep2(sizes, seeds, func(n int, seed int64) cellResult {
		r := NewRig(n, seed, 800)
		core.NewExtractor(r.K, Procs(n), r.Factory, "xp")
		crashed := sim.ProcID(n - 1)
		r.K.CrashAt(crashed, 5000)
		horizon := r.K.Run(60000)
		rep, err := checker.StrongCompleteness(r.Log, "xp", checker.AllPairs(Procs(n)), true, horizon*3/4)
		var c cellResult
		verdict := "ok"
		if err != nil {
			verdict = err.Error()
			c.failf("n=%d seed=%d: %v", n, seed, err)
		}
		worst := sim.Time(0)
		for _, lat := range rep.DetectionLatency {
			if lat > worst {
				worst = lat
			}
		}
		c.addRow(itoa(int64(n)), itoa(seed), fmt.Sprintf("p%d@5000", crashed),
			itoa(int64(worst)), verdict)
		return c
	}))
	return t
}

// E3Accuracy measures Theorem 2: in runs where the monitored pair is
// correct, the extracted oracle makes finitely many mistakes and converges;
// the table reports mistake counts and convergence times against harsher
// pre-GST adversaries.
func E3Accuracy(seeds []int64, gsts []sim.Time) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Theorem 2 — eventual strong accuracy of the extracted ◇P",
		Columns: []string{"GST", "seed", "mistakes", "converged at", "verdict"},
	}
	t.collect(Sweep2(gsts, seeds, func(gst sim.Time, seed int64) cellResult {
		r := NewRig(2, seed, gst)
		core.NewPairMonitor(r.K, 0, 1, r.Factory, "xp")
		horizon := r.K.Run(60000)
		rep, err := checker.EventualStrongAccuracy(r.Log, "xp", [][2]sim.ProcID{{0, 1}}, true, horizon*3/4)
		var c cellResult
		verdict := "ok"
		if err != nil {
			verdict = err.Error()
			c.failf("gst=%d seed=%d: %v", gst, seed, err)
		}
		conv := "never suspected falsely after start"
		if rep.Convergence != sim.Never {
			conv = itoa(int64(rep.Convergence))
		}
		c.addRow(itoa(int64(gst)), itoa(seed), itoa(int64(rep.Mistakes)), conv, verdict)
		return c
	}))
	t.Notes = append(t.Notes,
		"mistakes include the mandated initial suspicion; ◇P permits any finite count")
	return t
}

// E4Invariants arms the Lemma 2/3/4/9 monitors (plus the Lemma 8 suffix
// samples) on pair monitors across seeds and crash patterns; the paper's
// proofs require zero violations.
func E4Invariants(seeds []int64) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Lemmas 2, 3, 4, 8, 9 — configuration invariants of the reduction",
		Columns: []string{"seed", "scenario", "polls", "violations", "verdict"},
	}
	scenarios := []struct {
		name  string
		crash sim.Time // of the subject; Never = none
	}{
		{"correct pair", sim.Never},
		{"subject crashes", 7000},
	}
	for _, seed := range seeds {
		for _, sc := range scenarios {
			r := NewRig(2, seed, 800)
			m := core.NewPairMonitor(r.K, 0, 1, r.Factory, "xp")
			horizon := sim.Time(40000)
			var details []string
			count := m.WatchInvariants(37, horizon*3/4, func(at sim.Time, what string) {
				if len(details) < 5 {
					details = append(details, fmt.Sprintf("t=%d %s", at, what))
				}
			})
			if sc.crash != sim.Never {
				r.K.CrashAt(1, sc.crash)
			}
			r.K.Run(horizon)
			polls := int64(horizon) / 37
			verdict := "ok"
			if *count > 0 {
				verdict = details[0]
				t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %d violations (%v)", seed, sc.name, *count, details))
			}
			t.Rows = append(t.Rows, []string{itoa(seed), sc.name, itoa(polls), itoa(int64(*count)), verdict})
		}
	}
	return t
}

// E5Progress measures the counting lemmas: Lemma 5 (exactly one ping and
// one ack per subject eating session), Lemma 7/11 (subjects and witnesses
// eat infinitely often — proxied by large session counts over a long run),
// and Lemma 12 (witness alternation).
func E5Progress(seeds []int64) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Lemmas 5, 7, 11, 12 — ping/ack accounting and infinite progress",
		Columns: []string{"seed", "s-sessions", "pings(s0/s1)", "acks(s0/s1)", "w-sessions", "verdict"},
	}
	for _, seed := range seeds {
		r := NewRig(2, seed, 600)
		m := core.NewPairMonitor(r.K, 0, 1, r.Factory, "xp")
		end := r.K.Run(40000)
		eat := r.Log.Sessions("eating")
		var sSess, wSess [2]int
		for i := 0; i < 2; i++ {
			sSess[i] = len(eat[trace.SessionKey{Inst: m.Tables()[i].Name(), P: 1}])
			wSess[i] = len(eat[trace.SessionKey{Inst: m.Tables()[i].Name(), P: 0}])
		}
		st := m.Stats()
		verdict := "ok"
		fail := func(f string, args ...any) {
			verdict = fmt.Sprintf(f, args...)
			t.Failures = append(t.Failures, fmt.Sprintf("seed=%d: %s", seed, verdict))
		}
		for i := 0; i < 2; i++ {
			// Lemma 5: one ping and one ack per eating session. The final
			// session may still be open mid-handshake, hence the ±1.
			if d := st.PingsSent[i] - int64(sSess[i]); d < -1 || d > 1 {
				fail("instance %d: %d pings vs %d sessions", i, st.PingsSent[i], sSess[i])
			}
			if d := st.AcksRecv[i] - st.PingsSent[i]; d < -1 || d > 0 {
				fail("instance %d: %d acks recv vs %d pings sent", i, st.AcksRecv[i], st.PingsSent[i])
			}
			// Lemma 7/11 proxy: dozens of sessions in a long run.
			if sSess[i] < 10 || wSess[i] < 10 {
				fail("instance %d: too few sessions (s=%d w=%d)", i, sSess[i], wSess[i])
			}
		}
		// Lemma 12: witness session counts in the two instances differ by
		// at most one (strict alternation).
		if d := wSess[0] - wSess[1]; d < -1 || d > 1 {
			fail("witness alternation broken: %d vs %d sessions", wSess[0], wSess[1])
		}
		_ = end
		t.Rows = append(t.Rows, []string{
			itoa(seed),
			fmt.Sprintf("%d/%d", sSess[0], sSess[1]),
			fmt.Sprintf("%d/%d", st.PingsSent[0], st.PingsSent[1]),
			fmt.Sprintf("%d/%d", st.AcksRecv[0], st.AcksRecv[1]),
			fmt.Sprintf("%d/%d", wSess[0], wSess[1]),
			verdict,
		})
	}
	return t
}
