package experiment

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/sim"
)

// E12Downstream closes the paper's equivalence chain executably: the
// introduction notes that ◇P solves consensus [3] and stable leader
// election [1]; the reduction shows WF-◇WX yields ◇P. Here the oracle
// extracted from the dining black box drives both applications, with and
// without a crash, and the classic correctness properties are checked.
func E12Downstream(seeds []int64) *Table {
	t := &Table{
		ID:      "E12",
		Title:   "Downstream — consensus and leader election over the extracted ◇P",
		Columns: []string{"seed", "scenario", "consensus", "decision", "leader", "verdict"},
	}
	for _, seed := range seeds {
		for _, crash := range []bool{false, true} {
			r := NewRig(3, seed, 600)
			ps := Procs(3)
			ext := core.NewExtractor(r.K, ps, r.Factory, "xp")
			in := consensus.New(r.K, ps, "cs", ext)
			el := election.New(r.K, ps, "lead", ext, 0)
			proposals := make(map[sim.ProcID]consensus.Value)
			for _, p := range ps {
				proposals[p] = consensus.Value(100 + int64(p))
				in.Propose(p, proposals[p])
			}
			scenario := "correct"
			wantLeader := sim.ProcID(0)
			if crash {
				scenario = "p0 crash@8000"
				wantLeader = 1
				r.K.CrashAt(0, 8000)
			}
			r.K.Run(100000)

			verdict := "ok"
			consOut, decision := "agreed", ""
			var got *consensus.Value
			for _, p := range ps {
				if r.K.Crashed(p) {
					continue
				}
				v, ok := in.Decided(p)
				if !ok {
					consOut = fmt.Sprintf("p%d undecided", p)
					verdict = "consensus failed"
					t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: p%d never decided", seed, scenario, p))
					continue
				}
				if got == nil {
					got = &v
				} else if *got != v {
					consOut = "DISAGREEMENT"
					verdict = "consensus failed"
					t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: disagreement %d vs %d", seed, scenario, *got, v))
				}
			}
			if got != nil {
				decision = fmt.Sprintf("%d", *got)
				validity := false
				for _, v := range proposals {
					if v == *got {
						validity = true
					}
				}
				if !validity {
					verdict = "validity broken"
					t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: decided unproposed %d", seed, scenario, *got))
				}
			}
			leaderOut := "?"
			if l, err := el.Agreement(r.K); err != nil {
				leaderOut = err.Error()
				verdict = "election failed"
				t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %v", seed, scenario, err))
			} else {
				leaderOut = fmt.Sprintf("p%d", l)
				if l != wantLeader {
					verdict = "wrong leader"
					t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: leader %d, want %d", seed, scenario, l, wantLeader))
				}
			}
			t.Rows = append(t.Rows, []string{itoa(seed), scenario, consOut, decision, leaderOut, verdict})
		}
	}
	t.Notes = append(t.Notes,
		"oracle = reduction output over the forks black box; consensus needs a correct majority (n=3, ≤1 crash)")
	return t
}
