package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
)

// E15RoundTrip closes the paper's equivalence as one executable loop:
//
//	WF-◇WX box  --(necessity: the reduction)-->  ◇P
//	            <--(sufficiency: [12]'s construction)--
//
// An inner WF-◇WX dining box feeds the reduction; the *extracted* oracle
// then powers a fresh outer dining service, whose runs must again satisfy
// wait-freedom and eventual weak exclusion. The experiment thus witnesses
// both directions of "WF-◇WX ⇔ ◇P" in a single run, under crashes.
func E15RoundTrip(seeds []int64) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "Equivalence round trip — dining ⇒ ◇P ⇒ dining",
		Columns: []string{"seed", "scenario", "outer violations", "last violation", "starved", "verdict"},
	}
	for _, seed := range seeds {
		for _, crash := range []bool{false, true} {
			r := NewRig(3, seed, 600)
			ps := Procs(3)
			// Necessity direction: extract ◇P from the inner black box.
			extracted := core.NewExtractor(r.K, ps, r.Factory, "xp")
			// Sufficiency direction: a fresh dining service on a ring...
			// (3 processes: ring == clique == triangle)
			g := graph.Clique(3)
			outer := forks.New(r.K, g, "outer", extracted, forks.Config{})
			for _, p := range ps {
				dining.Drive(r.K, p, outer.Diner(p), dining.DriverConfig{
					ThinkMin: 10, ThinkMax: 100, EatMin: 5, EatMax: 30,
				})
			}
			scenario := "correct"
			if crash {
				scenario = "p2 crash@9000"
				r.K.CrashAt(2, 9000)
			}
			end := r.K.Run(80000)

			rep, err := checker.EventualWeakExclusion(r.Log, g, "outer", end*3/4, end)
			starved := checker.WaitFreedom(r.Log, "outer", end-5000, end)
			verdict := "ok"
			if err != nil {
				verdict = "late violation"
				t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %v", seed, scenario, err))
			}
			if len(starved) > 0 {
				verdict = "starvation"
				t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %v", seed, scenario, starved))
			}
			// And the extracted oracle itself must still be ◇P.
			pairs := checker.AllPairs(ps)
			if _, e := checker.EventualStrongAccuracy(r.Log, "xp", pairs, true, end*3/4); e != nil {
				verdict = "oracle accuracy"
				t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %v", seed, scenario, e))
			}
			if crash {
				if _, e := checker.StrongCompleteness(r.Log, "xp", pairs, true, end*3/4); e != nil {
					verdict = "oracle completeness"
					t.Failures = append(t.Failures, fmt.Sprintf("seed=%d %s: %v", seed, scenario, e))
				}
			}
			last := "none"
			if rep.LastViolation != sim.Never {
				last = itoa(int64(rep.LastViolation))
			}
			t.Rows = append(t.Rows, []string{
				itoa(seed), scenario,
				itoa(int64(len(rep.Violations))), last, itoa(int64(len(starved))), verdict,
			})
		}
	}
	t.Notes = append(t.Notes,
		"the outer dining service's only failure detector is the one the reduction extracted from the inner one")
	return t
}
