package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// E17LossyLinks measures the reduction over fair-lossy links: the ◇P
// extraction (pair monitor over forks) runs on the retransmitting reliable
// transport while the link adversary drops up to 30% of wire messages, with
// duplication and reordering on. The paper's channel axioms are restored by
// the transport, so Theorem 2 must keep holding — the extracted oracle
// converges at every loss rate — and the price is measured as wire-message
// overhead against a reliable-channel baseline without the transport.
//
// Asserted: finite extraction convergence (no post-convergence mistakes,
// convergence point within the run) at every swept loss rate, and total wire
// overhead at 10% loss within 3x the baseline message count.
func E17LossyLinks(seed int64) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "Extraction over fair-lossy links — convergence and retransmit overhead vs loss",
		Columns: []string{"loss", "dup", "reorder", "mistakes", "converged at", "wire msgs", "retransmits", "overhead", "verdict"},
	}
	const (
		horizon = 60000
		gst     = 800
	)

	type outcome struct {
		mistakes int64
		conv     sim.Time
		wire     int64
		retx     int64
		err      error
	}
	run := func(drop float64, withTransport bool) outcome {
		log := &trace.Log{}
		k := sim.NewKernel(2,
			sim.WithSeed(seed),
			sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: gst, PreMax: 120, PostMax: 8}),
		)
		if withTransport {
			transport.Enable(k, "rt", transport.Config{})
		}
		hb := detector.HeartbeatConfig{}
		if drop > 0 {
			// Lossy-deployment tuning: the oracle's timeout must dominate the
			// retransmission delay of a dropped heartbeat (cf. chaos.buildBox).
			hb = detector.HeartbeatConfig{Timeout: 240, Bump: 160}
			plan := sim.LinkPlan{Name: "e17", Drop: drop, Dup: 0.1, ReorderMax: 12}
			if err := plan.Apply(k); err != nil {
				return outcome{err: err}
			}
		}
		native := detector.NewHeartbeat(k, "native", hb)
		core.NewPairMonitor(k, 0, 1, forks.Factory(native, forks.Config{}), "xp")
		end := k.Run(horizon)
		rep, err := checker.EventualStrongAccuracy(log, "xp", [][2]sim.ProcID{{0, 1}}, true, end*3/4)
		return outcome{
			mistakes: int64(rep.Mistakes),
			conv:     rep.Convergence,
			wire:     k.Counter("msg.sent"),
			retx:     k.Counter("transport.retransmit"),
			err:      err,
		}
	}

	base := run(0, false)
	if base.err != nil {
		t.Failures = append(t.Failures, fmt.Sprintf("reliable baseline: %v", base.err))
	}
	t.Rows = append(t.Rows, []string{
		"0% (baseline)", "-", "-", itoa(base.mistakes), convStr(base.conv),
		itoa(base.wire), "-", "1.00x", verdictOf(base.err),
	})

	for _, drop := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
		o := run(drop, true)
		if o.err != nil {
			t.Failures = append(t.Failures, fmt.Sprintf("loss=%.2f: %v", drop, o.err))
		}
		overhead := float64(o.wire) / float64(base.wire)
		if drop == 0.10 && overhead > 3 {
			t.Failures = append(t.Failures, fmt.Sprintf(
				"wire overhead %.2fx at 10%% loss exceeds the 3x budget (%d vs %d messages)",
				overhead, o.wire, base.wire))
		}
		dup, ro := "0.10", "12"
		if drop == 0 {
			dup, ro = "0", "0"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", drop*100), dup, ro, itoa(o.mistakes), convStr(o.conv),
			itoa(o.wire), itoa(o.retx), fmt.Sprintf("%.2fx", overhead), verdictOf(o.err),
		})
	}
	t.Notes = append(t.Notes,
		"baseline row: reliable channels, no transport; all other rows run over internal/transport",
		"overhead is total wire messages (data+acks+retransmits+heartbeats) vs the baseline run",
		"convergence must be finite at every loss rate: the transport restores the channel axioms Theorem 2 assumes")
	return t
}

func convStr(c sim.Time) string {
	if c == sim.Never {
		return "never suspected falsely"
	}
	return itoa(int64(c))
}

func verdictOf(err error) string {
	if err != nil {
		return err.Error()
	}
	return "ok"
}
