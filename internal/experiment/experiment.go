// Package experiment regenerates the paper's evaluation artifacts. The
// paper is a theory result — its "evaluation" is Figure 1 plus the proof
// suite (Lemmas 1–12, Theorems 1–2) and the executable claims of Sections
// 2, 3 and 9 — so each experiment either renders the figure from a real run
// or measures a theorem-shaped property over many seeded adversarial runs.
// EXPERIMENTS.md records paper-claim vs. measured outcome per experiment.
//
// Each E* function is deterministic given its parameters and returns a
// Table that cmd/paperbench prints and bench_test.go asserts on.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Table is one rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Failures lists property violations; a faithful reproduction run has
	// none (except where the experiment demonstrates a violation on
	// purpose, which lands in Rows, not here).
	Failures []string
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, f := range t.Failures {
		fmt.Fprintf(&b, "FAIL: %s\n", f)
	}
	return b.String()
}

// Ok reports whether the experiment observed every property it asserts.
func (t *Table) Ok() bool { return len(t.Failures) == 0 }

// Rig bundles the common experimental setup: a kernel under a GST delay
// policy, a trace log, a native heartbeat ◇P, and the forks WF-◇WX factory
// powered by it.
type Rig struct {
	K       *sim.Kernel
	Log     *trace.Log
	Native  *detector.Heartbeat
	Factory dining.Factory
	GST     sim.Time
}

// NewRig builds the standard rig with n processes.
func NewRig(n int, seed int64, gst sim.Time) *Rig {
	log := &trace.Log{}
	k := sim.NewKernel(n,
		sim.WithSeed(seed),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: gst, PreMax: 120, PostMax: 8}),
	)
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	return &Rig{
		K:       k,
		Log:     log,
		Native:  native,
		Factory: forks.Factory(native, forks.Config{}),
		GST:     gst,
	}
}

// Procs returns process ids 0..n-1.
func Procs(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i)
	}
	return out
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

// WriteCSV emits the table (columns header + rows) as CSV for plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
