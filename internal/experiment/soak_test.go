package experiment_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/dining"
	"repro/internal/election"
	"repro/internal/experiment"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
)

// TestSoakFullStack runs every layer of the repository in one kernel for a
// long horizon: the dining black box, the full extractor over all ordered
// pairs, an eventually fair dining layer, consensus, and leader election —
// all driven by the extracted oracle — under staggered crashes. Every
// property that is supposed to hold must hold simultaneously.
func TestSoakFullStack(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is long")
	}
	const (
		n       = 4
		horizon = 120000
	)
	for _, seed := range []int64{1, 2} {
		r := experiment.NewRig(n, seed, 800)
		ps := experiment.Procs(n)

		// Layer 1+2: black box and extractor.
		ext := core.NewExtractor(r.K, ps, r.Factory, "xp")

		// Layer 3: fair dining on a clique, driven by the extracted oracle.
		g := graph.Clique(n)
		fair := fairness.New(r.K, g, "fair", ext, fairness.Config{})
		for _, p := range ps {
			dining.Drive(r.K, p, fair.Diner(p), dining.DriverConfig{
				ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
			})
		}

		// Layer 4: consensus + election over the extracted oracle.
		cs := consensus.New(r.K, ps, "cs", ext)
		el := election.New(r.K, ps, "lead", ext, 0)
		proposals := make(map[sim.ProcID]consensus.Value)
		for _, p := range ps {
			proposals[p] = consensus.Value(500 + int64(p))
			cs.Propose(p, proposals[p])
		}

		// One crash: the initial leader, mid-run (a majority must survive
		// for consensus).
		r.K.CrashAt(0, 20000)

		end := r.K.Run(horizon)

		// Oracle axioms.
		pairs := checker.AllPairs(ps)
		if _, err := checker.StrongCompleteness(r.Log, "xp", pairs, true, end*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if _, err := checker.EventualStrongAccuracy(r.Log, "xp", pairs, true, end*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		// Fair dining: wait-free, eventually exclusive, eventually 2-fair.
		if _, err := checker.EventualWeakExclusion(r.Log, g, "fair", end*3/4, end); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if starved := checker.WaitFreedom(r.Log, "fair", end-5000, end); len(starved) > 0 {
			t.Errorf("seed %d: %v", seed, starved)
		}
		if over := checker.KFairness(r.Log, g, "fair", 2, end*3/4, end); len(over) > 0 {
			t.Errorf("seed %d: overtaking %v", seed, over)
		}
		// Consensus: agreement + validity + termination for survivors.
		var dec *consensus.Value
		for _, p := range ps {
			if r.K.Crashed(p) {
				continue
			}
			v, ok := cs.Decided(p)
			if !ok {
				t.Errorf("seed %d: %d never decided", seed, p)
				continue
			}
			if dec == nil {
				dec = &v
			} else if *dec != v {
				t.Errorf("seed %d: disagreement %d vs %d", seed, *dec, v)
			}
		}
		// Election: survivors agree on the minimum correct process.
		if leader, err := el.Agreement(r.K); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		} else if leader != 1 {
			t.Errorf("seed %d: leader %d, want 1", seed, leader)
		}
	}
}

// TestSoakLongQuiet: a crash-free, low-activity run for a very long horizon
// — nothing leaks, nothing flaps, the converged state is truly stable.
func TestSoakLongQuiet(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test is long")
	}
	r := experiment.NewRig(2, 9, 500)
	m := core.NewPairMonitor(r.K, 0, 1, r.Factory, "xp")
	violations := 0
	m.WatchInvariants(101, 40000, func(at sim.Time, what string) {
		violations++
		t.Errorf("t=%d: %s", at, what)
	})
	end := r.K.Run(200000)
	if violations > 0 {
		t.Fatalf("%d invariant violations in a quiet run", violations)
	}
	if m.Suspect() {
		t.Fatal("suspecting a correct subject after 200k quiet ticks")
	}
	// No suspicion flapping in the converged 95% suffix.
	if _, err := checker.EventualStrongAccuracy(r.Log, "xp", [][2]sim.ProcID{{0, 1}}, true, end/20); err != nil {
		t.Error(err)
	}
}
