package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E13Ablations sweeps the design choices DESIGN.md calls out:
//
//	(a) the forks box's request retransmission period — liveness insurance
//	    priced in messages;
//	(b) the fairness layer's overtaking bound K — the service property the
//	    paper's secondary result fixes at 2;
//	(c) the native ◇P style feeding the black box (push heartbeats vs. pull
//	    pingbacks) — the reduction must be indifferent, at different costs.
func E13Ablations(seed int64) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "Ablations — retry period, fairness bound K, native oracle style",
		Columns: []string{"ablation", "setting", "metric", "value", "verdict"},
	}

	// ---- (a) retry period of the forks box ----
	for _, retry := range []sim.Time{10, 25, 100} {
		log := &trace.Log{}
		g := graph.Ring(5)
		k := sim.NewKernel(5, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		tbl := forks.New(k, g, "fk", oracle, forks.Config{Retry: retry})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 10, ThinkMax: 60, EatMin: 5, EatMax: 20,
			})
		}
		k.CrashAt(2, 6000)
		end := k.Run(30000)
		meals := 0
		for key, ivs := range log.Sessions("eating") {
			if key.Inst == "fk" {
				meals += len(ivs)
			}
		}
		starved := checker.WaitFreedom(log, "fk", end-3000, end)
		verdict := "ok"
		if len(starved) > 0 {
			verdict = "starvation"
			t.Failures = append(t.Failures, fmt.Sprintf("retry=%d: %v", retry, starved))
		}
		t.Rows = append(t.Rows,
			[]string{"retry", itoa(int64(retry)), "meals", itoa(int64(meals)), verdict},
			[]string{"retry", itoa(int64(retry)), "fork msgs", itoa(k.Counter("msg.sent:fk")), verdict},
		)
	}

	// ---- (b) fairness bound K ----
	for _, kBound := range []int{1, 2, 3} {
		log := &trace.Log{}
		g := graph.Pair(0, 1)
		kk := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		oracle := detector.NewHeartbeat(kk, "hb", detector.HeartbeatConfig{})
		tbl := fairness.New(kk, g, "fair", oracle, fairness.Config{K: kBound})
		dining.Drive(kk, 0, tbl.Diner(0), dining.DriverConfig{ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 15})
		dining.Drive(kk, 1, tbl.Diner(1), dining.DriverConfig{ThinkMin: 10, ThinkMax: 80, EatMin: 5, EatMax: 25})
		end := kk.Run(40000)
		over := checker.KFairness(log, g, "fair", kBound, end/2, end)
		greedy := len(log.Sessions("eating")[trace.SessionKey{Inst: "fair", P: 0}])
		verdict := "ok"
		if len(over) > 0 {
			verdict = fmt.Sprintf("%d overtakes beyond K", len(over))
			t.Failures = append(t.Failures, fmt.Sprintf("K=%d: %v", kBound, over[0]))
		}
		if starved := checker.WaitFreedom(log, "fair", end-4000, end); len(starved) > 0 {
			verdict = "starvation"
			t.Failures = append(t.Failures, fmt.Sprintf("K=%d: %v", kBound, starved))
		}
		t.Rows = append(t.Rows,
			[]string{"fairness K", itoa(int64(kBound)), "greedy meals", itoa(int64(greedy)), verdict},
			[]string{"fairness K", itoa(int64(kBound)), "suffix overtakes > K", itoa(int64(len(over))), verdict},
		)
	}

	// ---- (c) native oracle style under the reduction ----
	for _, style := range []string{"heartbeat", "pingback"} {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 100, PostMax: 8}))
		var oracle detector.Oracle
		if style == "heartbeat" {
			oracle = detector.NewHeartbeat(k, "nat", detector.HeartbeatConfig{})
		} else {
			oracle = detector.NewPingback(k, "nat", detector.PingbackConfig{})
		}
		core.NewPairMonitor(k, 0, 1, forks.Factory(oracle, forks.Config{}), "xp")
		end := k.Run(40000)
		rep, err := checker.EventualStrongAccuracy(log, "xp", [][2]sim.ProcID{{0, 1}}, true, end*3/4)
		verdict := "ok"
		if err != nil {
			verdict = err.Error()
			t.Failures = append(t.Failures, fmt.Sprintf("%s: %v", style, err))
		}
		conv := "immediate"
		if rep.Convergence != sim.Never {
			conv = itoa(int64(rep.Convergence))
		}
		t.Rows = append(t.Rows,
			[]string{"native oracle", style, "extracted mistakes", itoa(int64(rep.Mistakes)), verdict},
			[]string{"native oracle", style, "extracted convergence", conv, verdict},
			[]string{"native oracle", style, "oracle msgs", itoa(k.Counter("msg.sent:nat")), verdict},
		)
	}
	t.Notes = append(t.Notes,
		"(a) slower retries save messages, never liveness (retransmission is insurance, suspicion does the unblocking)",
		"(b) K trades greedy throughput for the fairness bound; K=2 is the paper's secondary-result setting",
		"(c) the reduction is indifferent to how the black box's own ◇P is built")
	return t
}
