package experiment

import (
	"fmt"

	"repro/internal/chaos"
)

// E16ChaosSoak runs the fault-injection campaign engine in both directions
// the paper's quantifiers demand:
//
//	(a) soundness of the services — every real dining box (forks, token,
//	    perfect, trap) survives a sweep of topologies and adversarial fault
//	    plans, including state-triggered crash-while-eating strikes, with
//	    zero property violations;
//	(b) sensitivity of the harness — the planted-bug forks mutant (its ◇P
//	    crash-tolerance override deleted) is caught by the same sweep, and
//	    the shrinker reduces the failure to a minimal replayable repro with
//	    at most two crashes.
//
// (b) is the experiment's control group: a checker suite that cannot catch
// a known-broken box proves nothing when it passes the real ones.
func E16ChaosSoak(seed int64) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "Chaos soak: compliant boxes clean, planted bug caught and shrunk",
		Columns: []string{"box", "runs", "violations", "verdict"},
	}

	// ---- (a) compliant sweep ----
	c := chaos.Campaign{
		Boxes:      []string{"forks", "token", "perfect", "trap"},
		Topologies: []string{"ring", "star"},
		Sizes:      []int{4, 5},
		Seeds:      []int64{seed, seed + 1},
		Horizon:    20000,
		Delays:     []chaos.DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Plans:      []string{"none", "eating", "minority"},
	}
	rep := c.Run()
	for _, box := range c.Boxes {
		st := rep.ByBox[box]
		verdict := "ok"
		if st.Failed > 0 {
			verdict = "VIOLATIONS"
		}
		t.Rows = append(t.Rows, []string{box, itoa(int64(st.Runs)), itoa(int64(st.Failed)), verdict})
	}
	for _, f := range rep.Failures {
		t.Failures = append(t.Failures, fmt.Sprintf("%s: [%s] %s", f.Spec.ID(), f.Category, f.First()))
	}

	// ---- (b) planted-bug control ----
	spec := chaos.Spec{
		Topology: "ring", N: 4, Box: "buggy", Seed: seed, Horizon: 20000,
		Delay:   chaos.DelaySpec{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8},
		Crashes: []chaos.CrashSpec{{P: 2, When: "eating"}},
	}
	res := chaos.Execute(spec)
	if !res.Failed() {
		t.Rows = append(t.Rows, []string{"buggy", "1", "0", "NOT CAUGHT"})
		t.Failures = append(t.Failures, "planted-bug box survived a crash-while-eating strike uncaught")
	} else {
		r, err := chaos.Shrink(spec)
		switch {
		case err != nil:
			t.Rows = append(t.Rows, []string{"buggy", "1", "1", "shrink failed"})
			t.Failures = append(t.Failures, fmt.Sprintf("shrink: %v", err))
		case len(r.Spec.Crashes) > 2:
			t.Rows = append(t.Rows, []string{"buggy", "1", "1", "repro too fat"})
			t.Failures = append(t.Failures, fmt.Sprintf("shrunk repro kept %d crashes, want ≤ 2", len(r.Spec.Crashes)))
		default:
			if _, err := r.Replay(); err != nil {
				t.Rows = append(t.Rows, []string{"buggy", "1", "1", "replay failed"})
				t.Failures = append(t.Failures, err.Error())
				break
			}
			t.Rows = append(t.Rows, []string{"buggy", "1", "1", "caught+shrunk"})
			t.Notes = append(t.Notes, fmt.Sprintf(
				"planted bug caught as [%s], shrunk %s -> %s in %d runs",
				r.Category, spec.ID(), r.Spec.ID(), r.ShrinkRuns))
		}
	}

	// A deliberately starved event budget demonstrates the watchdog: the run
	// terminates early with a structured diagnostic instead of spinning.
	wres := chaos.Execute(chaos.Spec{
		Topology: "ring", N: 4, Box: "forks", Seed: seed, Horizon: 20000,
		Delay:  chaos.DelaySpec{Kind: "fixed", Delay: 4},
		Budget: chaos.BudgetSpec{MaxEvents: 1500},
	})
	if wres.Category != chaos.CatWatchdog || wres.End >= 20000 {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"watchdog did not stop a budget-starved run (category %q, end %d)", wres.Category, wres.End))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"watchdog: budget-starved run stopped at t=%d of 20000 with diagnostic", wres.End))
	}
	return t
}
