package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/dining/token"
	"repro/internal/dining/trap"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E6Flawed is the Section 3 counterexample, measured: over the trap box the
// [8] construction's suspicion count of a *correct* process grows with the
// horizon, while this paper's reduction converges to a constant.
func E6Flawed(seed int64, horizons []sim.Time) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "Section 3 — [8]'s extraction vs. this paper's, over the trap box",
		Columns: []string{"horizon", "[8] suspicions of correct q", "reduction suspicions", "reduction final"},
	}
	const era = sim.Time(2500)
	var flawedCounts, ourCounts []int
	for _, h := range horizons {
		log := &trace.Log{}
		k := sim.NewKernel(6, sim.WithSeed(seed),
			sim.WithTracer(log), sim.WithDelay(sim.UniformDelay{Min: 1, Max: 12}))
		factory := trap.Factory([]sim.ProcID{2, 3, 4, 5}, era)
		core.NewFlawedMonitor(k, 0, 1, factory, "flawed", 25)
		m := core.NewPairMonitor(k, 0, 1, factory, "xp")
		k.Run(h)
		fl := checker.MistakeCount(log, "flawed", 0, 1, true)
		ours := checker.MistakeCount(log, "xp", 0, 1, true)
		flawedCounts = append(flawedCounts, fl)
		final := "trusts"
		if m.Suspect() {
			final = "suspects"
			t.Failures = append(t.Failures, fmt.Sprintf("horizon %d: reduction ends suspecting a correct process", h))
		}
		ourCounts = append(ourCounts, ours)
		t.Rows = append(t.Rows, []string{itoa(int64(h)), itoa(int64(fl)), itoa(int64(ours)), final})
	}
	// The flawed construction must keep suspecting (counts grow with the
	// horizon) while the reduction's finitely many mistakes stabilize: the
	// count at the last two horizons must be identical.
	for i := 1; i < len(flawedCounts); i++ {
		if flawedCounts[i] <= flawedCounts[i-1] {
			t.Failures = append(t.Failures, "flawed construction's suspicion count stopped growing; counterexample not reproduced")
		}
	}
	if n := len(ourCounts); n >= 2 && ourCounts[n-1] != ourCounts[n-2] {
		t.Failures = append(t.Failures, fmt.Sprintf(
			"reduction's mistake count still growing (%d -> %d); ◇P accuracy requires it to stabilize",
			ourCounts[n-2], ourCounts[n-1]))
	}

	// Second half of Section 3's analysis: the [8] construction is not
	// *unconditionally* wrong — over boxes where a never-exiting eater keeps
	// its resources (forks, token), it converges. Its flaw is that it fails
	// over SOME legal box, i.e. it is not black-box.
	h := horizons[len(horizons)-1]
	for _, boxName := range []string{"forks", "token"} {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 100, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		var factory dining.Factory
		if boxName == "forks" {
			factory = forks.Factory(native, forks.Config{})
		} else {
			factory = token.Factory(native, token.Config{})
		}
		fm := core.NewFlawedMonitor(k, 0, 1, factory, "flawed", 25)
		k.Run(h)
		n := checker.MistakeCount(log, "flawed", 0, 1, true)
		final := "trusts"
		if fm.Suspect() {
			final = "suspects"
			t.Failures = append(t.Failures, fmt.Sprintf(
				"[8] over %s ended suspecting a correct process; Section 3 expects convergence there", boxName))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("(over %s)", boxName), itoa(int64(n)), "n/a", final,
		})
	}
	t.Notes = append(t.Notes,
		"both processes are correct; the [8] subject never exits its critical section",
		"over the forks/token boxes the eternal eater keeps its resources and [8] converges: the flaw is non-universality")
	return t
}

// E7Fairness compares overtaking in the converged suffix: the plain forks
// box (no fairness guarantee) vs. the fairness layer driven by an oracle
// *extracted* from that same box — the paper's two-step secondary result.
func E7Fairness(seeds []int64) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "Eventual 2-fairness — plain WF-◇WX box vs. extracted-◇P fair layer",
		Columns: []string{"seed", "layer", "suffix overtakes beyond k=2", "starved", "verdict"},
	}
	g := graph.Pair(0, 1)
	drive := func(k *sim.Kernel, tbl dining.Table) {
		// Diner 0 is greedy; diner 1 is slow: maximal overtaking pressure.
		dining.Drive(k, 0, tbl.Diner(0), dining.DriverConfig{ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 15})
		dining.Drive(k, 1, tbl.Diner(1), dining.DriverConfig{ThinkMin: 10, ThinkMax: 80, EatMin: 5, EatMax: 25})
	}
	t.collect(Sweep(seeds, func(seed int64) cellResult {
		var c cellResult

		// Plain box.
		r := NewRig(2, seed, 600)
		plain := forks.New(r.K, g, "plain", r.Native, forks.Config{})
		drive(r.K, plain)
		end := r.K.Run(50000)
		overPlain := len(checker.KFairness(r.Log, g, "plain", 2, end/2, end))
		c.addRow(itoa(seed), "plain forks", itoa(int64(overPlain)), "0", "no bound promised")

		// Pipeline: black box -> extractor -> fair layer.
		r2 := NewRig(2, seed, 600)
		ext := core.NewExtractor(r2.K, g.Nodes(), r2.Factory, "xp")
		fair := fairness.New(r2.K, g, "fair", ext, fairness.Config{})
		drive(r2.K, fair)
		end2 := r2.K.Run(50000)
		overFair := len(checker.KFairness(r2.Log, g, "fair", 2, end2/2, end2))
		starved := len(checker.WaitFreedom(r2.Log, "fair", end2-4000, end2))
		verdict := "ok"
		if overFair > 0 {
			verdict = "2-fairness violated"
			c.failf("seed=%d: %d suffix overtakes beyond 2 in the fair layer", seed, overFair)
		}
		if starved > 0 {
			verdict = "starvation"
			c.failf("seed=%d: fair layer starved %d diners", seed, starved)
		}
		c.addRow(itoa(seed), "fair (extracted ◇P)", itoa(int64(overFair)), itoa(int64(starved)), verdict)
		return c
	}))
	return t
}

// E8Trusting is the Section 9 experiment: the reduction over wait-free ℙWX
// boxes yields an oracle with trusting accuracy (trust withdrawn only after
// a real crash) and strong completeness.
func E8Trusting(seeds []int64) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "Section 9 — reduction over ℙWX boxes extracts the trusting oracle T",
		Columns: []string{"box", "seed", "scenario", "trusting accuracy", "completeness"},
	}
	type flavor struct {
		name  string
		build func(k *sim.Kernel) dining.Factory
	}
	flavors := []flavor{
		{"mutex(T+S)", func(k *sim.Kernel) dining.Factory {
			// Model-true stand-in for [4]'s T+S composition (see the mutex
			// package comment): perpetually accurate + complete suspicion.
			return mutex.Factory(detector.Perfect{K: k})
		}},
		{"central", func(k *sim.Kernel) dining.Factory {
			return perfect.Factory([]sim.ProcID{2, 3})
		}},
	}
	for _, fl := range flavors {
		for _, seed := range seeds {
			for _, crash := range []bool{false, true} {
				log := &trace.Log{}
				k := sim.NewKernel(4, sim.WithSeed(seed), sim.WithTracer(log),
					sim.WithDelay(sim.UniformDelay{Min: 1, Max: 12}))
				m := core.NewPairMonitor(k, 0, 1, fl.build(k), "xT")
				scenario := "correct"
				if crash {
					scenario = "crash@8000"
					k.CrashAt(1, 8000)
				}
				end := k.Run(40000)
				acc, comp := "ok", "ok"
				if _, err := checker.TrustingAccuracy(log, "xT", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
					acc = err.Error()
					t.Failures = append(t.Failures, fmt.Sprintf("%s seed=%d %s: %v", fl.name, seed, scenario, err))
				}
				if crash {
					if _, err := checker.StrongCompleteness(log, "xT", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
						comp = err.Error()
						t.Failures = append(t.Failures, fmt.Sprintf("%s seed=%d %s: %v", fl.name, seed, scenario, err))
					}
					if !m.Suspect() {
						comp = "trusts crashed subject"
						t.Failures = append(t.Failures, fmt.Sprintf("%s seed=%d: trusts crashed subject", fl.name, seed))
					}
				} else {
					comp = "n/a"
					if m.Suspect() {
						acc = "still suspects correct subject"
						t.Failures = append(t.Failures, fmt.Sprintf("%s seed=%d: still suspects correct subject", fl.name, seed))
					}
				}
				t.Rows = append(t.Rows, []string{fl.name, itoa(seed), scenario, acc, comp})
			}
		}
	}
	t.Notes = append(t.Notes,
		"trusting accuracy = trust withdrawn only from crashed processes + eventual permanent trust of correct ones",
		"the ℙWX boxes internally need more than T (the paper's closing claim): see mutex.TestTrustAloneIsInsufficient")
	return t
}
