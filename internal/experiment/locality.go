package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// E14Locality measures two context claims around the main result:
//
//	(a) failure locality — the paper cites [11]: without an oracle a crash
//	    starves diners (failure locality ≥ 1, and chains can extend it),
//	    while the ◇P override makes dining wait-free (nobody starves,
//	    locality "none"). Measured on a path with a middle crash.
//	(b) detector QoS under a network partition — the kind of correlated
//	    temporal misbehavior ◇P is allowed to mis-handle finitely often:
//	    both native implementations make mistakes during the partition and
//	    converge after it heals.
func E14Locality(seed int64) *Table {
	t := &Table{
		ID:      "E14",
		Title:   "Failure locality (cf. [11]) and detector QoS under partition",
		Columns: []string{"section", "config", "metric", "value", "verdict"},
	}

	// ---- (a) failure locality on a path, middle crash ----
	for _, cfg := range []struct {
		name       string
		withOracle bool
	}{
		{"forks + ◇P", true},
		{"forks + no oracle", false},
	} {
		log := &trace.Log{}
		g := graph.Path(7)
		k := sim.NewKernel(7, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		var oracle detector.Oracle
		if cfg.withOracle {
			oracle = detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		} else {
			oracle = &detector.Scripted{} // suspects no one, ever
		}
		tbl := forks.New(k, g, "fk", oracle, forks.Config{})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 10, ThinkMax: 60, EatMin: 5, EatMax: 20,
			})
		}
		k.CrashAt(3, 4000) // the middle of the path
		end := k.Run(40000)
		rep := checker.FailureLocality(log, g, "fk", end-5000, end)
		verdict := "ok"
		if cfg.withOracle {
			if rep.Locality != -1 {
				verdict = "starvation despite oracle"
				t.Failures = append(t.Failures, fmt.Sprintf("%s: starved %v", cfg.name, rep.Starved))
			}
			t.Rows = append(t.Rows, []string{"locality", cfg.name, "starved diners", itoa(int64(len(rep.Starved))), verdict})
		} else {
			if len(rep.Starved) == 0 {
				verdict = "no starvation?!"
				t.Failures = append(t.Failures, cfg.name+": oracle-free dining did not starve anyone; the ablation lost its teeth")
			}
			t.Rows = append(t.Rows,
				[]string{"locality", cfg.name, "starved diners", itoa(int64(len(rep.Starved))), verdict},
				[]string{"locality", cfg.name, "failure locality", itoa(int64(rep.Locality)), verdict},
			)
		}
	}

	// ---- (b) detector QoS under a healed partition ----
	for _, style := range []string{"heartbeat", "pingback"} {
		log := &trace.Log{}
		part := sim.PartitionDelay{
			Base: sim.UniformDelay{Min: 1, Max: 8},
			Side: map[sim.ProcID]bool{2: true, 3: true},
			Heal: 3000,
		}
		k := sim.NewKernel(4, sim.WithSeed(seed), sim.WithTracer(log), sim.WithDelay(part))
		var oracle detector.Oracle
		if style == "heartbeat" {
			oracle = detector.NewHeartbeat(k, "det", detector.HeartbeatConfig{Timeout: 50, Bump: 60})
		} else {
			oracle = detector.NewPingback(k, "det", detector.PingbackConfig{Timeout: 50, Bump: 60})
		}
		_ = oracle
		end := k.Run(30000)
		pairs := checker.AllPairs(Procs(4))
		q := checker.MeasureQoS(log, "det", pairs, false, end)
		verdict := "ok"
		if q.MistakeCount == 0 {
			verdict = "partition unnoticed?!"
			t.Failures = append(t.Failures, style+": no mistakes during a 3000-tick partition")
		}
		if _, err := checker.EventualStrongAccuracy(log, "det", pairs, false, end*3/4); err != nil {
			verdict = "did not converge"
			t.Failures = append(t.Failures, fmt.Sprintf("%s: %v", style, err))
		}
		t.Rows = append(t.Rows,
			[]string{"partition QoS", style, "mistakes", itoa(int64(q.MistakeCount)), verdict},
			[]string{"partition QoS", style, "mistake dur (total/max)", fmt.Sprintf("%d/%d", q.MistakeDurationTotal, q.MistakeDurationMax), verdict},
			[]string{"partition QoS", style, "query accuracy", fmt.Sprintf("%.4f", q.QueryAccurate), verdict},
		)
	}
	t.Notes = append(t.Notes,
		"(a) wait-freedom is failure locality 'none'; stripping the oracle reproduces the starvation that motivates ◇P",
		"(b) a 3000-tick partition forces correlated false suspicions on both sides; ◇P permits them because they end")
	return t
}
