package experiment

import (
	"fmt"

	"repro/internal/par"
)

// Workers is the worker count experiment sweeps fan out over: 0 means
// runtime.GOMAXPROCS(0), 1 forces sequential execution. cmd/paperbench wires
// its -parallel flag here. Every cell of a sweep builds its own kernel, RNG,
// and trace log, and results come back in grid order, so the rendered tables
// are identical whatever the worker count.
var Workers int

// Sweep runs body over every cell of a one-dimensional parameter list (a
// seed sweep, typically) on the shared worker pool and returns the results
// in input order.
func Sweep[C, T any](cells []C, body func(C) T) []T {
	return par.Map(Workers, len(cells), func(i int) T { return body(cells[i]) })
}

// Sweep2 runs body over the cross product a×b in row-major order (a outer,
// b inner) — the shape of the seed/config grids the E* tables iterate — and
// returns the results in that order.
func Sweep2[A, B, T any](as []A, bs []B, body func(A, B) T) []T {
	cells := len(as) * len(bs)
	if len(bs) == 0 {
		cells = 0
	}
	return par.Map(Workers, cells, func(i int) T {
		return body(as[i/len(bs)], bs[i%len(bs)])
	})
}

// cellResult is one sweep cell's contribution to a Table: its rows plus any
// failure lines. Collecting through cellResult keeps the Table-building code
// sequential (and hence deterministic) while the runs themselves fan out.
type cellResult struct {
	rows  [][]string
	fails []string
}

func (c *cellResult) addRow(cells ...string) { c.rows = append(c.rows, cells) }

func (c *cellResult) failf(format string, args ...any) {
	c.fails = append(c.fails, fmt.Sprintf(format, args...))
}

// collect appends a slice of cell results to the table in sweep order.
func (t *Table) collect(cells []cellResult) {
	for _, c := range cells {
		t.Failures = append(t.Failures, c.fails...)
		t.Rows = append(t.Rows, c.rows...)
	}
}
