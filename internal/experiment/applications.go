package experiment

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/token"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/stm"
	"repro/internal/trace"
	"repro/internal/wsn"
)

// E9Sufficiency validates the black box itself (the sufficiency direction
// the paper cites as [12]): the forks algorithm with a heartbeat ◇P is
// wait-free and eventually weakly exclusive across topologies and crash
// patterns.
func E9Sufficiency(seeds []int64) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "[12] sanity — the compliant boxes are WF-◇WX across topologies and crashes",
		Columns: []string{"box", "topology", "seed", "crashes", "violations", "last violation", "starved", "p99 wait", "verdict"},
	}
	type scen struct {
		box     string
		name    string
		g       *graph.Graph
		crashes map[sim.ProcID]sim.Time
	}
	scens := []scen{
		{"forks", "pair", graph.Pair(0, 1), nil},
		{"forks", "ring5", graph.Ring(5), map[sim.ProcID]sim.Time{2: 6000}},
		{"forks", "clique4", graph.Clique(4), map[sim.ProcID]sim.Time{0: 3000, 3: 9000}},
		{"forks", "star5", graph.Star(5), map[sim.ProcID]sim.Time{0: 5000}},
		{"forks", "grid23", graph.Grid(2, 3), map[sim.ProcID]sim.Time{4: 7000}},
		{"token", "ring5", graph.Ring(5), map[sim.ProcID]sim.Time{2: 6000}},
		{"token", "clique4", graph.Clique(4), map[sim.ProcID]sim.Time{0: 3000, 3: 9000}},
	}
	for _, sc := range scens {
		for _, seed := range seeds {
			r := NewRig(sc.g.N(), seed, 800)
			var tbl dining.Table
			if sc.box == "token" {
				tbl = token.New(r.K, sc.g, "fk", r.Native, token.Config{})
			} else {
				tbl = forks.New(r.K, sc.g, "fk", r.Native, forks.Config{})
			}
			for _, p := range sc.g.Nodes() {
				dining.Drive(r.K, p, tbl.Diner(p), dining.DriverConfig{
					ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
				})
			}
			for p, at := range sc.crashes {
				r.K.CrashAt(p, at)
			}
			end := r.K.Run(45000)
			rep, err := checker.EventualWeakExclusion(r.Log, sc.g, "fk", end*2/3, end)
			starved := checker.WaitFreedom(r.Log, "fk", end-4000, end)
			verdict := "ok"
			if err != nil {
				verdict = "late violation"
				t.Failures = append(t.Failures, fmt.Sprintf("%s/%s seed=%d: %v", sc.box, sc.name, seed, err))
			}
			if len(starved) > 0 {
				verdict = "starvation"
				t.Failures = append(t.Failures, fmt.Sprintf("%s/%s seed=%d: %v", sc.box, sc.name, seed, starved))
			}
			last := "none"
			if rep.LastViolation != sim.Never {
				last = itoa(int64(rep.LastViolation))
			}
			resp := checker.ResponseTimes(r.Log, "fk", end/2)
			t.Rows = append(t.Rows, []string{
				sc.box, sc.name, itoa(seed), fmt.Sprintf("%d", len(sc.crashes)),
				itoa(int64(len(rep.Violations))), last, itoa(int64(len(starved))),
				itoa(int64(resp.P99)), verdict,
			})
		}
	}
	t.Notes = append(t.Notes, "violations before convergence are the mistakes ◇WX permits; none may persist")
	return t
}

// E10Applications runs the Section 2 motivating scenarios: WSN duty-cycle
// scheduling (redundancy is transient, coverage holds, depletion tolerated)
// and STM contention management (obstruction-free starvation fixed by the
// dining-backed manager).
func E10Applications(seed int64) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Section 2 — WSN duty cycling and STM contention management",
		Columns: []string{"scenario", "metric", "value", "verdict"},
	}

	// --- WSN ---
	{
		log := &trace.Log{}
		f := wsn.NewTeamField(3, 2, 4)
		g := f.ConflictGraph()
		k := sim.NewKernel(g.N(), sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		tbl := forks.New(k, g, "duty", oracle, forks.Config{})
		for _, p := range g.Nodes() {
			wsn.NewSensor(k, f, g, p, tbl.Diner(p), oracle, "wsn", wsn.SensorConfig{
				Battery: 20000, Shift: 150, Sample: 30,
			})
		}
		end := k.Run(30000)
		rep := wsn.Analyze(log.Records, f, "duty", end)
		// Redundancy in the converged second half must be far below the
		// first half's (mistake era) level, and small in absolute terms.
		frac := 0.0
		if rep.DutyTicks > 0 {
			frac = float64(rep.RedundantTicks) / float64(rep.DutyTicks)
		}
		lossFrac := float64(rep.CoverageLoss) / float64(int64(f.Cells)*int64(end))
		wsnVerdict := "ok"
		if frac > 0.3 {
			wsnVerdict = "redundancy did not converge"
			t.Failures = append(t.Failures, fmt.Sprintf("wsn: redundant duty fraction %.2f", frac))
		}
		if lossFrac > 0.25 {
			wsnVerdict = "coverage lost"
			t.Failures = append(t.Failures, fmt.Sprintf("wsn: coverage loss fraction %.2f", lossFrac))
		}
		t.Rows = append(t.Rows,
			[]string{"wsn", "duty ticks", itoa(rep.DutyTicks), wsnVerdict},
			[]string{"wsn", "redundant duty fraction", fmt.Sprintf("%.3f", frac), wsnVerdict},
			[]string{"wsn", "coverage loss fraction", fmt.Sprintf("%.3f", lossFrac), wsnVerdict},
			[]string{"wsn", "lifespan (ticks)", itoa(int64(rep.Lifespan)), wsnVerdict},
		)
	}

	// --- STM: unmanaged starvation ---
	var victimAborts int
	{
		k := sim.NewKernel(3, sim.WithSeed(seed))
		s := stm.NewStore()
		victim := stm.NewClient(k, s, 0, stm.Config{Objs: []string{"o"}, Length: 40})
		stm.NewClient(k, s, 1, stm.Config{Objs: []string{"o"}, Length: 9})
		stm.NewClient(k, s, 2, stm.Config{Objs: []string{"o"}, Length: 9})
		k.Run(30000)
		st := victim.Stats()
		victimAborts = st.Aborts
		verdict := "starves (expected)"
		if st.Commits != 0 {
			verdict = "victim committed?!"
			t.Failures = append(t.Failures, fmt.Sprintf("stm unmanaged: victim committed %d times", st.Commits))
		}
		t.Rows = append(t.Rows,
			[]string{"stm unmanaged", "victim commits", itoa(int64(st.Commits)), verdict},
			[]string{"stm unmanaged", "victim aborts", itoa(int64(st.Aborts)), verdict},
		)
	}

	// --- STM: managed wait-freedom ---
	{
		k := sim.NewKernel(3, sim.WithSeed(seed),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
		s := stm.NewStore()
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		cm := forks.New(k, graph.Clique(3), "cm", oracle, forks.Config{})
		victim := stm.NewManagedClient(k, s, 0, cm.Diner(0), stm.Config{Objs: []string{"o"}, Length: 40, Target: 5})
		stm.NewManagedClient(k, s, 1, cm.Diner(1), stm.Config{Objs: []string{"o"}, Length: 9, Target: 25})
		stm.NewManagedClient(k, s, 2, cm.Diner(2), stm.Config{Objs: []string{"o"}, Length: 9, Target: 25})
		k.Run(100000)
		st := victim.Stats()
		verdict := "ok"
		if st.Commits < 5 {
			verdict = "manager failed to boost"
			t.Failures = append(t.Failures, fmt.Sprintf("stm managed: victim committed %d of 5", st.Commits))
		}
		t.Rows = append(t.Rows,
			[]string{"stm managed", "victim commits", itoa(int64(st.Commits)), verdict},
			[]string{"stm managed", "victim aborts", itoa(int64(st.Aborts)), verdict},
		)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"the same long transaction aborts %d times and never commits without a manager", victimAborts))
	return t
}

// E11Scaling profiles the reduction: message and dining-session costs of
// the full extractor versus the native heartbeat ◇P, across system sizes.
func E11Scaling(seed int64, sizes []int) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "Scaling — extracted ◇P (over forks) vs native heartbeat ◇P",
		Columns: []string{"n", "pairs", "msgs/tick extracted", "msgs/tick native", "ratio", "accuracy", "completeness"},
	}
	const horizon = sim.Time(30000)
	for _, n := range sizes {
		// Extracted: the full reduction (messages counted under the oracle's
		// port prefix plus the dining instances').
		r := NewRig(n, seed, 600)
		core.NewExtractor(r.K, Procs(n), r.Factory, "xp")
		r.K.CrashAt(sim.ProcID(n-1), 9000)
		end := r.K.Run(horizon)
		extMsgs := r.K.Counter("msg.sent:xp")
		natMsgs := r.K.Counter("msg.sent:native")
		acc, comp := "ok", "ok"
		if _, err := checker.EventualStrongAccuracy(r.Log, "xp", checker.AllPairs(Procs(n)), true, end*3/4); err != nil {
			acc = "FAIL"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: %v", n, err))
		}
		if _, err := checker.StrongCompleteness(r.Log, "xp", checker.AllPairs(Procs(n)), true, end*3/4); err != nil {
			comp = "FAIL"
			t.Failures = append(t.Failures, fmt.Sprintf("n=%d: %v", n, err))
		}
		pairs := n * (n - 1)
		ratio := "inf"
		if natMsgs > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(extMsgs)/float64(natMsgs))
		}
		t.Rows = append(t.Rows, []string{
			itoa(int64(n)), itoa(int64(pairs)),
			fmt.Sprintf("%.2f", float64(extMsgs)/float64(end)),
			fmt.Sprintf("%.2f", float64(natMsgs)/float64(end)),
			ratio, acc, comp,
		})
	}
	t.Notes = append(t.Notes,
		"extracted ◇P runs 2·n·(n-1) dining instances; the reduction trades messages for black-box generality",
		"extracted message count covers ping/ack traffic plus the dining instances themselves (port prefix xp)")
	return t
}
