package mutex_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

func run(t testing.TB, n int, seed int64, oracleKind string, crashes map[sim.ProcID]sim.Time, horizon sim.Time) (*trace.Log, sim.Time, *graph.Graph) {
	t.Helper()
	log := &trace.Log{}
	k := sim.NewKernel(n, sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	var oracle detector.Oracle
	switch oracleKind {
	case "T":
		// Model-true stand-in for the T+S composition of [4]: perpetually
		// accurate suspicion (see the package comment).
		oracle = detector.Perfect{K: k}
	case "hb":
		oracle = detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{Timeout: 40, Bump: 50})
	default:
		t.Fatalf("unknown oracle %q", oracleKind)
	}
	g := graph.Clique(n)
	tbl := mutex.New(k, g, "mx", oracle)
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 90, EatMin: 5, EatMax: 30,
		})
	}
	for p, at := range crashes {
		k.CrashAt(p, at)
	}
	end := k.Run(horizon)
	return log, end, g
}

// TestPerpetualExclusionWithT: with a trusting oracle, no two live
// participants are ever in their critical sections together — in crash-free
// and crashy runs alike.
func TestPerpetualExclusionWithT(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		log, end, g := run(t, 3, seed, "T", nil, 30000)
		if _, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
			t.Errorf("seed %d (crash-free): %v", seed, err)
		}
		log, end, g = run(t, 3, seed, "T", map[sim.ProcID]sim.Time{1: 5000}, 30000)
		if _, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
			t.Errorf("seed %d (crash): %v", seed, err)
		}
	}
}

// TestWaitFreeWithT: crashes — including a crash inside the critical
// section — never starve correct participants.
func TestWaitFreeWithT(t *testing.T) {
	for _, seed := range []int64{4, 5} {
		log, end, _ := run(t, 4, seed, "T", map[sim.ProcID]sim.Time{0: 3000, 2: 9000}, 40000)
		if starved := checker.WaitFreedom(log, "mx", end-4000, end); len(starved) > 0 {
			t.Errorf("seed %d: %v", seed, starved)
		}
	}
}

// TestEventuallyPerfectIsInsufficient is the ablation behind the paper's
// Section 2 remark (citing [11]): run the same permission-based algorithm
// with ◇P instead of T and transient false suspicions admit two live
// processes into their critical sections — perpetual weak exclusion fails.
func TestEventuallyPerfectIsInsufficient(t *testing.T) {
	violated := false
	for seed := int64(1); seed <= 12 && !violated; seed++ {
		log, end, g := run(t, 3, seed, "hb", nil, 20000)
		if rep := checker.Exclusion(log, g, "mx", end); len(rep.Violations) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("◇P-driven FTME never violated ℙWX across 12 adversarial runs; the ablation lost its teeth")
	}
}

// TestMutexAsDiningTable: the package satisfies the dining.Table interface
// over non-clique graphs too (ask-all-neighbors semantics).
func TestMutexAsDiningTable(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(5, sim.WithSeed(7), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}))
	oracle := detector.Perfect{K: k}
	g := graph.Ring(5)
	tbl := mutex.New(k, g, "mx", oracle)
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 5, EatMax: 20,
		})
	}
	end := k.Run(30000)
	if _, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
		t.Error(err)
	}
	if starved := checker.WaitFreedom(log, "mx", end-3000, end); len(starved) > 0 {
		t.Errorf("starvation: %v", starved)
	}
	// Non-neighbors on the ring may legitimately overlap: check that
	// concurrency actually happens (this is local, not global, exclusion).
	eat := log.Sessions("eating")
	overlap := false
	for _, p := range g.Nodes() {
		for _, q := range g.Nodes() {
			if p >= q || g.HasEdge(p, q) {
				continue
			}
			for _, a := range eat[trace.SessionKey{Inst: "mx", P: p}] {
				for _, b := range eat[trace.SessionKey{Inst: "mx", P: q}] {
					if a.Overlaps(b, end) {
						overlap = true
					}
				}
			}
		}
	}
	if !overlap {
		t.Log("note: no non-neighbor concurrency observed (legal but unusual on a ring)")
	}
}
