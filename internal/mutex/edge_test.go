package mutex_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestDeferredGrantFlushesOnExit: a request that arrives while the holder
// eats is granted when the holder exits — the requester need not retry.
func TestDeferredGrantFlushesOnExit(t *testing.T) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(3), sim.WithTracer(log),
		sim.WithDelay(sim.FixedDelay{D: 2}))
	oracle := detector.Perfect{K: k}
	tbl := mutex.New(k, g, "mx", oracle)
	d0, d1 := tbl.Diner(0), tbl.Diner(1)
	// 0 enters its critical section and holds it for a long while; 1 asks
	// in the middle and must get in right after 0 exits.
	k.After(0, 10, func() { d0.Hungry() })
	d0.OnEat(func() { k.After(0, 500, func() { d0.Exit() }) })
	k.After(1, 100, func() { d1.Hungry() })
	var oneAte sim.Time = sim.Never
	d1.OnEat(func() {
		oneAte = k.Now()
		d1.Exit()
	})
	k.Run(5000)
	if oneAte == sim.Never {
		t.Fatal("deferred request never granted")
	}
	if oneAte < 500 {
		t.Fatalf("1 entered at t=%d while 0 still ate", oneAte)
	}
	if oneAte > 1000 {
		t.Fatalf("deferred grant took until t=%d; flush on exit broken", oneAte)
	}
}

// TestSimultaneousRequestsTieBreak: equal Lamport timestamps resolve by id;
// exactly one process wins the first entry and both eventually eat.
func TestSimultaneousRequestsTieBreak(t *testing.T) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(4), sim.WithTracer(log),
		sim.WithDelay(sim.FixedDelay{D: 2}))
	oracle := detector.Perfect{K: k}
	tbl := mutex.New(k, g, "mx", oracle)
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			FirstHunger: 10, ThinkMin: 5, ThinkMax: 10, EatMin: 5, EatMax: 10,
		})
	}
	end := k.Run(20000)
	if _, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
		t.Fatal(err)
	}
	eat := log.Sessions("eating")
	e0 := eat[trace.SessionKey{Inst: "mx", P: 0}]
	e1 := eat[trace.SessionKey{Inst: "mx", P: 1}]
	if len(e0) == 0 || len(e1) == 0 {
		t.Fatalf("both must eat: %d, %d", len(e0), len(e1))
	}
	if !(e0[0].Start < e1[0].Start) {
		t.Fatalf("tie must break toward the lower id: first meals at %d and %d", e0[0].Start, e1[0].Start)
	}
}

// TestStaleGrantIgnored: a grant for a previous request (late over a
// non-FIFO channel) must not admit a newer request prematurely. Exercised
// by hammering sessions over a highly reordering network and checking
// exclusion never breaks.
func TestStaleGrantIgnored(t *testing.T) {
	log := &trace.Log{}
	g := graph.Clique(3)
	k := sim.NewKernel(3, sim.WithSeed(5), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 60}))
	oracle := detector.Perfect{K: k}
	tbl := mutex.New(k, g, "mx", oracle)
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 1, ThinkMax: 4, EatMin: 1, EatMax: 3,
		})
	}
	end := k.Run(40000)
	if rep, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
		t.Fatalf("stale grants admitted a second eater: %v", rep.Violations[0])
	}
}

// TestTrustAloneIsInsufficient reproduces the paper's Section 9 closing
// claim: the trusting oracle T by itself cannot give wait-free mutual
// exclusion. With an earned-trust T (suspect until first contact — a legal
// T), participants that get hungry before trust forms are mutually
// "suspected" and the permission exemption admits two live eaters. This is
// a demonstration test: the violation is the expected outcome.
func TestTrustAloneIsInsufficient(t *testing.T) {
	violated := false
	for seed := int64(1); seed <= 6 && !violated; seed++ {
		log := &trace.Log{}
		g := graph.Clique(3)
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.UniformDelay{Min: 1, Max: 60}))
		oracle := detector.NewTrusting(k, "T", 20)
		tbl := mutex.New(k, g, "mx", oracle)
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				FirstHunger: 2, ThinkMin: 1, ThinkMax: 4, EatMin: 1, EatMax: 3,
			})
		}
		end := k.Run(40000)
		if rep := checker.Exclusion(log, g, "mx", end); len(rep.Violations) > 0 {
			violated = true
		}
	}
	if !violated {
		t.Fatal("earned-trust T never violated ℙWX across 6 eager runs; the Section 9 negative claim did not reproduce")
	}
}
