package mutex_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzMutexSchedules: perpetual weak exclusion of the FTME box must hold
// under arbitrary message schedules and crash times — safety may never
// depend on timing. Seed corpus runs under plain `go test`; explore the
// schedule space with `go test -fuzz=FuzzMutexSchedules`.
func FuzzMutexSchedules(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, int64(-1))
	f.Add([]byte{250, 1, 250, 1}, int64(900))
	f.Add([]byte{7}, int64(42))
	f.Fuzz(func(t *testing.T, pattern []byte, crashAt int64) {
		if len(pattern) > 4096 {
			t.Skip()
		}
		log := &trace.Log{}
		g := graph.Clique(3)
		k := sim.NewKernel(3, sim.WithSeed(1), sim.WithTracer(log),
			sim.WithDelay(&sim.BytesDelay{Pattern: pattern, Max: 48}))
		tbl := mutex.New(k, g, "mx", detector.Perfect{K: k})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				FirstHunger: 2, ThinkMin: 1, ThinkMax: 5, EatMin: 1, EatMax: 4,
			})
		}
		if crashAt > 0 {
			k.CrashAt(sim.ProcID(crashAt%3), sim.Time(crashAt%5000)+1)
		}
		end := k.Run(15000)
		if rep, err := checker.PerpetualWeakExclusion(log, g, "mx", end); err != nil {
			t.Fatalf("ℙWX violated under schedule %v: %v", pattern, rep.Violations[0])
		}
	})
}
