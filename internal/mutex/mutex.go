// Package mutex implements fault-tolerant mutual exclusion (FTME): a
// wait-free dining service under *perpetual* weak exclusion (ℙWX) on a
// clique conflict graph, in the style of Delporte-Gallet, Fauconnier,
// Guerraoui and Kouznetsov ([4] in the paper).
//
// The algorithm is permission-based (Ricart–Agrawala shaped) and uses a
// trusting failure detector T:
//
//   - A hungry process timestamps its request with a Lamport clock and asks
//     every other participant for permission.
//   - A participant grants immediately unless it is eating, or it is hungry
//     with an older (timestamp, id) request of its own; deferred grants are
//     sent on exit (or on losing priority).
//   - A hungry process enters its critical section once every other
//     participant has either granted this request or is suspected by T.
//
// Safety relies on the oracle's suspicions being *perpetually* accurate:
// a suspected process has really crashed, so skipping its permission never
// admits two live eaters; between live processes the classic
// Ricart–Agrawala argument applies (of two concurrent requests, exactly one
// has priority, and a process never grants while eating). Wait-freedom
// relies on strong completeness (crashed participants are eventually
// suspected) plus finite eating.
//
// The oracle requirement is exactly what [4]'s composition T+S buys where
// it matters; this repository's model-true stand-in is detector.Perfect
// (suspects exactly the crashed — see DESIGN.md's substitution table). Two
// negative results from the paper fall out of weakening it, and the tests
// demonstrate both:
//
//   - ◇P instead: transient false suspicions admit two live eaters — the
//     paper's remark (citing [11]) that ◇P cannot give wait-free ℙWX
//     (TestEventuallyPerfectIsInsufficient).
//   - an earned-trust T alone: a live participant that has not yet been
//     trusted is indistinguishable from one that crashed at birth, and
//     skipping it admits two live eaters — the paper's Section 9 closing
//     claim that T by itself is insufficient for wait-free mutual
//     exclusion (TestTrustAloneIsInsufficient).
package mutex

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Table is an FTME instance: a dining table over a clique.
type Table struct {
	name string
	g    *graph.Graph
	mods map[rt.ProcID]*module
}

// New builds an FTME instance over the participants in g (which must be a
// clique for mutual exclusion proper; any graph is accepted and treated as
// "ask all neighbors"). oracle is consulted as a trusting detector.
func New(k rt.Runtime, g *graph.Graph, name string, oracle detector.Oracle) *Table {
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*module)}
	for _, p := range g.Nodes() {
		t.mods[p] = newModule(k, g, name, p, oracle)
	}
	return t
}

// Factory returns a dining.Factory building FTME instances bound to oracle.
// The resulting factory is the wait-free ℙWX black box of the Section 9
// experiment.
func Factory(oracle detector.Oracle) dining.Factory {
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		return New(k, g, name, oracle)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("mutex: %d is not a participant of %s", p, t.name))
	}
	return m
}

type reqMsg struct {
	TS  int64
	Seq int64 // requester-local request number, echoed in grants
}

type grantMsg struct {
	Seq int64
}

type peerState struct {
	granted  bool    // granted my current request
	deferred *reqMsg // their request I owe a grant for
}

type module struct {
	*dining.Core
	k      rt.Runtime
	self   rt.ProcID
	nbrs   []rt.ProcID
	view   detector.View
	prefix string

	clock  int64 // Lamport clock
	reqTS  int64 // timestamp of my current request
	reqSeq int64 // sequence number of my current request
	peers  map[rt.ProcID]*peerState
}

func newModule(k rt.Runtime, g *graph.Graph, name string, p rt.ProcID, oracle detector.Oracle) *module {
	m := &module{
		Core:   dining.NewCore(k, p, name),
		k:      k,
		self:   p,
		nbrs:   g.Neighbors(p),
		view:   detector.View{Oracle: oracle, Self: p},
		prefix: name,
		peers:  make(map[rt.ProcID]*peerState),
	}
	for _, q := range m.nbrs {
		m.peers[q] = &peerState{}
	}
	k.Handle(p, name+"/req", m.onReq)
	k.Handle(p, name+"/grant", m.onGrant)
	k.AddAction(p, name+"/enter", m.canEnter, m.enter)
	k.AddAction(p, name+"/exit-done", func() bool { return m.State() == dining.Exiting }, m.finishExit)
	// Suspicion changes happen at detector timers of other modules; poll so
	// a crash of a peer cannot leave us blocked with no wake-up.
	var poll func()
	poll = func() { k.After(p, 15, poll) }
	k.After(p, 15, poll)
	return m
}

// Hungry implements dining.Diner: timestamp and broadcast the request.
func (m *module) Hungry() {
	m.Set(dining.Hungry)
	m.clock++
	m.reqTS = m.clock
	m.reqSeq++
	for _, q := range m.nbrs {
		m.peers[q].granted = false
		m.k.Send(m.self, q, m.prefix+"/req", reqMsg{TS: m.reqTS, Seq: m.reqSeq})
	}
}

// Exit implements dining.Diner.
func (m *module) Exit() {
	m.Set(dining.Exiting)
}

// precedes reports whether the request (ts, p) has priority over (ts2, q).
func precedes(ts int64, p rt.ProcID, ts2 int64, q rt.ProcID) bool {
	if ts != ts2 {
		return ts < ts2
	}
	return p < q
}

func (m *module) onReq(msg rt.Message) {
	req := msg.Payload.(reqMsg)
	if req.TS > m.clock {
		m.clock = req.TS
	}
	q := msg.From
	ps := m.peers[q]
	switch {
	case m.State() == dining.Eating || m.State() == dining.Exiting:
		// Defer until the critical section is fully released.
		ps.deferred = &req
	case m.State() == dining.Hungry && precedes(m.reqTS, m.self, req.TS, q):
		// My pending request is older: defer.
		ps.deferred = &req
	default:
		m.k.Send(m.self, q, m.prefix+"/grant", grantMsg{Seq: req.Seq})
	}
}

func (m *module) onGrant(msg rt.Message) {
	g := msg.Payload.(grantMsg)
	if m.State() != dining.Hungry || g.Seq != m.reqSeq {
		return // stale grant for an old request
	}
	m.peers[msg.From].granted = true
}

// canEnter: every peer granted or (trusting oracle) suspected.
func (m *module) canEnter() bool {
	if m.State() != dining.Hungry {
		return false
	}
	for _, q := range m.nbrs {
		if !m.peers[q].granted && !m.view.Suspected(q) {
			return false
		}
	}
	return true
}

func (m *module) enter() { m.Set(dining.Eating) }

func (m *module) finishExit() {
	for _, q := range m.nbrs {
		ps := m.peers[q]
		if ps.deferred != nil {
			m.k.Send(m.self, q, m.prefix+"/grant", grantMsg{Seq: ps.deferred.Seq})
			ps.deferred = nil
		}
	}
	m.Set(dining.Thinking)
}
