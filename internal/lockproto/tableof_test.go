package lockproto

import "testing"

// TestTableOfStable pins the diner→table assignment: it is part of the
// on-disk contract (a sharded data directory's WALs are only replayable
// under the assignment they were written with), so these exact values must
// never change.
func TestTableOfStable(t *testing.T) {
	want4 := []int{3, 1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1, 3, 3, 2, 1}
	for d, w := range want4 {
		if got := TableOf(d, 4); got != w {
			t.Fatalf("TableOf(%d, 4) = %d, want %d (assignment drifted — this breaks existing sharded data dirs)", d, got, w)
		}
	}
}

// TestTableOfRange: every diner lands on a valid table, tables<=1 always
// maps to 0, and the assignment covers all tables for a modest diner count
// (no table of a 16-diner / 4-table service sits empty).
func TestTableOfRange(t *testing.T) {
	for d := -3; d < 64; d++ {
		if got := TableOf(d, 1); got != 0 {
			t.Fatalf("TableOf(%d, 1) = %d, want 0", d, got)
		}
		if got := TableOf(d, 0); got != 0 {
			t.Fatalf("TableOf(%d, 0) = %d, want 0", d, got)
		}
		for _, tables := range []int{2, 3, 4, 7, 16} {
			if got := TableOf(d, tables); got < 0 || got >= tables {
				t.Fatalf("TableOf(%d, %d) = %d out of range", d, tables, got)
			}
		}
	}
	seen := make(map[int]int)
	for d := 0; d < 16; d++ {
		seen[TableOf(d, 4)]++
	}
	for i := 0; i < 4; i++ {
		if seen[i] == 0 {
			t.Fatalf("table %d hosts no diner of 16 over 4 tables: %v", i, seen)
		}
	}
}
