package lockproto

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"unicode/utf8"
)

// This file is the hot-path wire codec: a hand-rolled, append-based
// JSON-lines encoder/decoder for the protocol's small fixed message set
// (Request and Event). The generic encoding/json path costs reflection and
// several heap allocations per message on both sides of every request; the
// service's request pipeline replaces it with these routines, which append
// into reusable buffers and allocate nothing in the steady state.
//
// The wire format is unchanged, byte for byte. AppendRequest/AppendEvent
// produce exactly what json.Marshal produces for the same value — field
// order, omitempty behaviour, and Go's string escaping (short escapes for
// \b \f \n \r \t, \u00xx for other control bytes, HTML-escaped < > &,
// escaped U+2028/U+2029, and � for invalid UTF-8) — so old clients,
// chaosproxy, and `nc` sessions interoperate unmodified.
// FuzzWireCodecEquivalence holds both directions to the stdlib
// differentially.
//
// Decoding takes the same shape as the rest of the repo's hot paths: a fast
// path that handles the traffic the service actually sees (lowercase keys,
// plain-ASCII strings, integer literals) with zero allocations beyond the
// decoded strings, and a bail-out to encoding/json for everything unusual —
// escaped strings, non-ASCII, case-folded or unknown keys, floats, nested
// values — so semantics off the fast path are the stdlib's by construction.

// AppendRequest appends the JSON encoding of r (as json.Marshal would
// produce it, no trailing newline) to dst and returns the extended slice.
func AppendRequest(dst []byte, r *Request) []byte {
	dst = append(dst, `{"op":`...)
	dst = appendJSONString(dst, r.Op)
	if r.Diner != 0 {
		dst = append(dst, `,"diner":`...)
		dst = strconv.AppendInt(dst, int64(r.Diner), 10)
	}
	if r.ID != "" {
		dst = append(dst, `,"id":`...)
		dst = appendJSONString(dst, r.ID)
	}
	return append(dst, '}')
}

// AppendEvent appends the JSON encoding of e (as json.Marshal would produce
// it, no trailing newline) to dst and returns the extended slice.
func AppendEvent(dst []byte, e *Event) []byte {
	dst = append(dst, `{"ev":`...)
	dst = appendJSONString(dst, e.Ev)
	if e.Diner != 0 {
		dst = append(dst, `,"diner":`...)
		dst = strconv.AppendInt(dst, int64(e.Diner), 10)
	}
	if e.ID != "" {
		dst = append(dst, `,"id":`...)
		dst = appendJSONString(dst, e.ID)
	}
	if e.Of != 0 {
		dst = append(dst, `,"of":`...)
		dst = strconv.AppendInt(dst, int64(e.Of), 10)
	}
	if e.Peer != 0 {
		dst = append(dst, `,"peer":`...)
		dst = strconv.AppendInt(dst, int64(e.Peer), 10)
	}
	if e.Suspect {
		dst = append(dst, `,"suspect":true`...)
	}
	if e.Diners != 0 {
		dst = append(dst, `,"diners":`...)
		dst = strconv.AppendInt(dst, int64(e.Diners), 10)
	}
	if e.Tables != 0 {
		dst = append(dst, `,"tables":`...)
		dst = strconv.AppendInt(dst, int64(e.Tables), 10)
	}
	if e.T != 0 {
		dst = append(dst, `,"t":`...)
		dst = strconv.AppendInt(dst, e.T, 10)
	}
	if e.Msg != "" {
		dst = append(dst, `,"msg":`...)
		dst = appendJSONString(dst, e.Msg)
	}
	return append(dst, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with exactly the
// escaping encoding/json applies under its default (HTML-escaping) mode.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '"', '\\':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Other control bytes and the HTML trio < > &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// wireBufs recycles encode buffers across messages and connections.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// WriteRequest encodes r as one newline-terminated JSON line and writes it
// to w in a single Write call, allocating nothing in the steady state.
func WriteRequest(w io.Writer, r *Request) error {
	bp := wireBufs.Get().(*[]byte)
	buf := AppendRequest((*bp)[:0], r)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	*bp = buf
	wireBufs.Put(bp)
	return err
}

// WriteEvent encodes e as one newline-terminated JSON line and writes it to
// w in a single Write call, allocating nothing in the steady state.
func WriteEvent(w io.Writer, e *Event) error {
	bp := wireBufs.Get().(*[]byte)
	buf := AppendEvent((*bp)[:0], e)
	buf = append(buf, '\n')
	_, err := w.Write(buf)
	*bp = buf
	wireBufs.Put(bp)
	return err
}

// errFallback is the fast parser's internal "give up" signal: the input is
// outside the fast subset (or malformed), so the caller re-parses the same
// bytes with encoding/json and returns whatever it decides.
var errFallback = fmt.Errorf("lockproto: wire fast path bailed")

// DecodeRequest parses one JSON object (plus optional surrounding
// whitespace) into req with encoding/json semantics.
func DecodeRequest(data []byte, req *Request) error {
	if err := decodeRequestFast(data, req); err != errFallback {
		return err
	}
	return json.Unmarshal(data, req)
}

// DecodeEvent parses one JSON object (plus optional surrounding whitespace)
// into ev with encoding/json semantics.
func DecodeEvent(data []byte, ev *Event) error {
	if err := decodeEventFast(data, ev); err != errFallback {
		return err
	}
	return json.Unmarshal(data, ev)
}

func isJSONSpace(b byte) bool { return b == ' ' || b == '\t' || b == '\n' || b == '\r' }

// skipSpace returns the index of the first non-whitespace byte at or after i.
func skipSpace(data []byte, i int) int {
	for i < len(data) && isJSONSpace(data[i]) {
		i++
	}
	return i
}

// fastString scans a string literal starting at the opening quote at
// data[i]. It succeeds only for plain printable-ASCII contents — any escape
// sequence, control byte, or non-ASCII byte bails to the stdlib, which owns
// the full escaping/UTF-8-replacement semantics. Returns the contents and
// the index just past the closing quote.
func fastString(data []byte, i int) (s []byte, next int, err error) {
	i++ // opening quote
	start := i
	for i < len(data) {
		switch b := data[i]; {
		case b == '"':
			return data[start:i], i + 1, nil
		case b == '\\' || b < 0x20 || b >= utf8.RuneSelf:
			return nil, 0, errFallback
		default:
			i++
		}
	}
	return nil, 0, errFallback
}

// fastInt scans an integer literal starting at data[i]. Floats, exponents,
// and out-of-range values bail to the stdlib.
func fastInt(data []byte, i int) (v int64, next int, err error) {
	start := i
	if i < len(data) && data[i] == '-' {
		i++
	}
	digits := 0
	for i < len(data) && data[i] >= '0' && data[i] <= '9' {
		i++
		digits++
	}
	if digits == 0 || digits > 18 {
		return 0, 0, errFallback // not a plain int, or near the int64 edge
	}
	if i < len(data) && (data[i] == '.' || data[i] == 'e' || data[i] == 'E') {
		return 0, 0, errFallback
	}
	v, perr := strconv.ParseInt(string(data[start:i]), 10, 64)
	if perr != nil {
		return 0, 0, errFallback
	}
	return v, i, nil
}

// fastLiteral matches one of the fixed literals true/false/null at data[i].
func fastLiteral(data []byte, i int, lit string) (next int, err error) {
	if len(data)-i < len(lit) || string(data[i:i+len(lit)]) != lit {
		return 0, errFallback
	}
	return i + len(lit), nil
}

// fastStringValue parses a string (or null no-op) value into *sp.
func fastStringValue(data []byte, i int, sp *string) (int, error) {
	if data[i] == 'n' {
		return fastLiteral(data, i, "null")
	}
	if data[i] != '"' {
		return 0, errFallback
	}
	s, next, err := fastString(data, i)
	if err != nil {
		return 0, errFallback
	}
	*sp = string(s)
	return next, nil
}

// fastIntValue parses an int (or null no-op) value into *ip.
func fastIntValue(data []byte, i int, ip *int) (int, error) {
	if data[i] == 'n' {
		return fastLiteral(data, i, "null")
	}
	v, next, err := fastInt(data, i)
	if err != nil || int64(int(v)) != v {
		return 0, errFallback
	}
	*ip = int(v)
	return next, nil
}

// fastInt64Value parses an int64 (or null no-op) value into *ip.
func fastInt64Value(data []byte, i int, ip *int64) (int, error) {
	if data[i] == 'n' {
		return fastLiteral(data, i, "null")
	}
	v, next, err := fastInt(data, i)
	if err != nil {
		return 0, errFallback
	}
	*ip = v
	return next, nil
}

// fastBoolValue parses a bool (or null no-op) value into *bp.
func fastBoolValue(data []byte, i int, bp *bool) (int, error) {
	switch data[i] {
	case 'n':
		return fastLiteral(data, i, "null")
	case 't':
		next, err := fastLiteral(data, i, "true")
		if err == nil {
			*bp = true
		}
		return next, err
	case 'f':
		next, err := fastLiteral(data, i, "false")
		if err == nil {
			*bp = false
		}
		return next, err
	}
	return 0, errFallback
}

// objectShell drives the flat-object scan shared by both message types:
// open brace, key/value pairs handed to setField, close brace, nothing but
// whitespace after. setField dispatches on the key and returns the index
// past the value, or errFallback for unknown or case-folded keys, escaped
// or non-ASCII strings, floats, and nested values — anything the caller
// must defer to encoding/json for.
func objectShell(data []byte, setField func(key []byte, i int) (int, error)) error {
	i := skipSpace(data, 0)
	if i >= len(data) || data[i] != '{' {
		return errFallback
	}
	i = skipSpace(data, i+1)
	if i < len(data) && data[i] == '}' {
		i++
	} else {
		for {
			if i >= len(data) || data[i] != '"' {
				return errFallback
			}
			key, next, err := fastString(data, i)
			if err != nil {
				return errFallback
			}
			i = skipSpace(data, next)
			if i >= len(data) || data[i] != ':' {
				return errFallback
			}
			i = skipSpace(data, i+1)
			if i >= len(data) {
				return errFallback
			}
			if i, err = setField(key, i); err != nil {
				return errFallback
			}
			i = skipSpace(data, i)
			if i >= len(data) {
				return errFallback
			}
			if data[i] == ',' {
				i = skipSpace(data, i+1)
				continue
			}
			if data[i] == '}' {
				i++
				break
			}
			return errFallback
		}
	}
	if skipSpace(data, i) != len(data) {
		return errFallback // trailing bytes: let the stdlib judge them
	}
	return nil
}

func decodeRequestFast(data []byte, req *Request) error {
	return objectShell(data, func(key []byte, i int) (int, error) {
		switch string(key) { // compiled to a jump, no allocation
		case "op":
			return fastStringValue(data, i, &req.Op)
		case "diner":
			return fastIntValue(data, i, &req.Diner)
		case "id":
			return fastStringValue(data, i, &req.ID)
		}
		return 0, errFallback
	})
}

func decodeEventFast(data []byte, ev *Event) error {
	return objectShell(data, func(key []byte, i int) (int, error) {
		switch string(key) {
		case "ev":
			return fastStringValue(data, i, &ev.Ev)
		case "diner":
			return fastIntValue(data, i, &ev.Diner)
		case "id":
			return fastStringValue(data, i, &ev.ID)
		case "of":
			return fastIntValue(data, i, &ev.Of)
		case "peer":
			return fastIntValue(data, i, &ev.Peer)
		case "suspect":
			return fastBoolValue(data, i, &ev.Suspect)
		case "diners":
			return fastIntValue(data, i, &ev.Diners)
		case "tables":
			return fastIntValue(data, i, &ev.Tables)
		case "t":
			return fastInt64Value(data, i, &ev.T)
		case "msg":
			return fastStringValue(data, i, &ev.Msg)
		}
		return 0, errFallback
	})
}

// valueReader pulls one JSON value at a time off a byte stream into a
// reusable scratch buffer — the streaming half of the codec, replacing
// json.Decoder on connections. Like json.Decoder it does not require
// newline framing: it scans one balanced value (string-aware for objects)
// and leaves the rest of the stream untouched.
type valueReader struct {
	br      *bufio.Reader
	scratch []byte
}

func newValueReader(r io.Reader) *valueReader {
	return &valueReader{br: bufio.NewReaderSize(r, 4096)}
}

// next reads the next JSON value into the scratch buffer. The returned
// slice is valid until the following call.
func (vr *valueReader) next() ([]byte, error) {
	// Skip inter-value whitespace.
	var b byte
	var err error
	for {
		b, err = vr.br.ReadByte()
		if err != nil {
			return nil, err
		}
		if !isJSONSpace(b) {
			break
		}
	}
	buf := vr.scratch[:0]
	buf = append(buf, b)
	switch b {
	case '{', '[':
		depth := 1
		inStr, esc := false, false
		for depth > 0 {
			c, err := vr.br.ReadByte()
			if err != nil {
				vr.scratch = buf
				return nil, unexpectedEOF(err)
			}
			buf = append(buf, c)
			switch {
			case esc:
				esc = false
			case inStr:
				if c == '\\' {
					esc = true
				} else if c == '"' {
					inStr = false
				}
			case c == '"':
				inStr = true
			case c == '{' || c == '[':
				depth++
			case c == '}' || c == ']':
				depth--
			}
		}
	case '"':
		esc := false
		for {
			c, err := vr.br.ReadByte()
			if err != nil {
				vr.scratch = buf
				return nil, unexpectedEOF(err)
			}
			buf = append(buf, c)
			if esc {
				esc = false
			} else if c == '\\' {
				esc = true
			} else if c == '"' {
				break
			}
		}
	default:
		// Number or literal: read until a structural delimiter or space.
		for {
			c, err := vr.br.ReadByte()
			if err == io.EOF {
				break
			}
			if err != nil {
				vr.scratch = buf
				return nil, err
			}
			if isJSONSpace(c) || c == ',' || c == '}' || c == ']' {
				vr.br.UnreadByte()
				break
			}
			buf = append(buf, c)
		}
	}
	vr.scratch = buf
	return buf, nil
}

func unexpectedEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// RequestReader decodes a stream of client requests, replacing
// json.Decoder on the server's read side.
type RequestReader struct{ vr *valueReader }

// NewRequestReader wraps r (typically a net.Conn) in a buffered request
// decoder.
func NewRequestReader(r io.Reader) *RequestReader {
	return &RequestReader{vr: newValueReader(r)}
}

// Read decodes the next request into req. req is not zeroed first; pass a
// fresh value per message (as json.Decoder callers already do).
func (rr *RequestReader) Read(req *Request) error {
	data, err := rr.vr.next()
	if err != nil {
		return err
	}
	return DecodeRequest(data, req)
}

// EventReader decodes a stream of server events, replacing json.Decoder on
// the client's read side.
type EventReader struct{ vr *valueReader }

// NewEventReader wraps r (typically a net.Conn) in a buffered event
// decoder.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{vr: newValueReader(r)}
}

// Read decodes the next event into ev. ev is not zeroed first; pass a fresh
// value per message.
func (er *EventReader) Read(ev *Event) error {
	data, err := er.vr.next()
	if err != nil {
		return err
	}
	return DecodeEvent(data, ev)
}
