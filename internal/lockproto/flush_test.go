package lockproto

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// chunkRecorder records every Write call (the batch boundaries), with an
// optional per-write gate for deadline tests.
type chunkRecorder struct {
	mu     sync.Mutex
	chunks [][]byte
	wrote  chan struct{} // signaled (non-blocking) after every Write
}

func newChunkRecorder() *chunkRecorder {
	return &chunkRecorder{wrote: make(chan struct{}, 64)}
}

func (c *chunkRecorder) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.chunks = append(c.chunks, append([]byte(nil), p...))
	c.mu.Unlock()
	select {
	case c.wrote <- struct{}{}:
	default:
	}
	return len(p), nil
}

func (c *chunkRecorder) joined() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return bytes.Join(c.chunks, nil)
}

func (c *chunkRecorder) writeCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.chunks)
}

// TestFlushWriterDeadline is the flush-deadline bound: a single event on an
// otherwise idle connection must hit the wire within (roughly) MaxDelay,
// with no further Sends and no Close needed to push it out.
func TestFlushWriterDeadline(t *testing.T) {
	rec := newChunkRecorder()
	const delay = 5 * time.Millisecond
	fw := NewFlushWriter(rec, 1<<20, delay)
	defer fw.Close()

	start := time.Now()
	if !fw.Send(&Event{Ev: EvGranted, Diner: 1, ID: "solo"}) {
		t.Fatal("send refused")
	}
	select {
	case <-rec.wrote:
	case <-time.After(100 * delay):
		t.Fatalf("event still unwritten %v after Send; deadline was %v", time.Since(start), delay)
	}
	if got := rec.joined(); !bytes.Contains(got, []byte(`"solo"`)) {
		t.Fatalf("flushed bytes %q missing the event", got)
	}
}

// TestFlushWriterCoalesces: a burst sent inside one coalescing window must
// reach the socket in far fewer Write calls than events, in order, intact.
func TestFlushWriterCoalesces(t *testing.T) {
	rec := newChunkRecorder()
	fw := NewFlushWriter(rec, 1<<20, 20*time.Millisecond)
	const n = 200
	for i := 0; i < n; i++ {
		if !fw.Send(&Event{Ev: EvReleased, Diner: i % 5, ID: fmt.Sprintf("s%d", i)}) {
			t.Fatal("send refused")
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if w := rec.writeCount(); w >= n/4 {
		t.Fatalf("no coalescing: %d events took %d writes", n, w)
	}
	er := NewEventReader(bytes.NewReader(rec.joined()))
	for i := 0; i < n; i++ {
		var ev Event
		if err := er.Read(&ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if want := fmt.Sprintf("s%d", i); ev.ID != want {
			t.Fatalf("event %d out of order: got %q want %q", i, ev.ID, want)
		}
	}
	var extra Event
	if err := er.Read(&extra); err != io.EOF {
		t.Fatalf("trailing data after %d events: %v", n, err)
	}
}

// TestFlushWriterMaxBatch: a burst larger than MaxBatch flushes on the size
// bound without waiting out a long delay window.
func TestFlushWriterMaxBatch(t *testing.T) {
	rec := newChunkRecorder()
	fw := NewFlushWriter(rec, 256, time.Hour) // the timer must never be the trigger
	defer fw.Close()
	big := strings.Repeat("x", 100)
	start := time.Now()
	for i := 0; i < 8; i++ {
		fw.Send(&Event{Ev: EvGranted, ID: big})
	}
	select {
	case <-rec.wrote:
	case <-time.After(5 * time.Second):
		t.Fatalf("full buffer never flushed (waited %v)", time.Since(start))
	}
}

// errWriter fails every write after the first.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, fmt.Errorf("boom")
	}
	return len(p), nil
}

// TestFlushWriterErrorStops: after a write error, Send reports failure —
// the signal the watch forwarder uses to drop its subscription.
func TestFlushWriterErrorStops(t *testing.T) {
	fw := NewFlushWriter(&errWriter{}, 1<<20, time.Millisecond)
	fw.Send(&Event{Ev: EvGranted, ID: "a"})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !fw.Send(&Event{Ev: EvGranted, ID: "b"}) {
			if fw.Close() == nil {
				t.Fatal("Close lost the sticky write error")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("Send kept accepting events after the writer died")
}

// TestFlushWriterCloseDrains: events sent just before Close are written,
// and Send after Close is refused.
func TestFlushWriterCloseDrains(t *testing.T) {
	rec := newChunkRecorder()
	fw := NewFlushWriter(rec, 1<<20, time.Hour) // only Close can flush this
	for i := 0; i < 10; i++ {
		fw.Send(&Event{Ev: EvReleased, ID: fmt.Sprintf("c%d", i)})
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rec.joined(); !bytes.Contains(got, []byte(`"c9"`)) {
		t.Fatalf("Close lost buffered events: %q", got)
	}
	if fw.Send(&Event{Ev: EvReleased, ID: "late"}) {
		t.Fatal("Send accepted an event after Close")
	}
	if bytes.Contains(rec.joined(), []byte(`"late"`)) {
		t.Fatal("post-Close event reached the writer")
	}
}

func BenchmarkFlushWriterSend(b *testing.B) {
	b.ReportAllocs()
	fw := NewFlushWriter(io.Discard, 32<<10, 500*time.Microsecond)
	defer fw.Close()
	ev := Event{Ev: EvGranted, Diner: 3, ID: "a1b2c3-c12-345", T: 123456}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if !fw.Send(&ev) {
				b.Fatal("send refused")
			}
		}
	})
}
