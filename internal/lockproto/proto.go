// Package lockproto defines the client-facing wire protocol of the
// dineserve lock/session service: newline-delimited JSON objects over TCP,
// chosen so that a plain `nc` session is a usable client. Requests travel
// client→server, events server→client. The protocol is asynchronous on the
// server side — suspect-stream events may interleave with command replies on
// a watching connection — but replies to one connection's acquire/release
// requests arrive in request order.
package lockproto

// Request operations.
const (
	// OpAcquire asks for an eating session on a diner. The server replies
	// with EvGranted when the dining layer grants the critical section (or
	// EvError). ID names the session for the later release.
	OpAcquire = "acquire"
	// OpRelease ends a previously granted session (by Diner and ID).
	OpRelease = "release"
	// OpWatch subscribes this connection to the extracted ◇P suspect
	// stream: one EvSuspect per output change, preceded by a snapshot of
	// the current suspicion matrix.
	OpWatch = "watch"
	// OpInfo asks for service parameters (diner count).
	OpInfo = "info"
)

// Event kinds.
const (
	EvGranted  = "granted"  // session entered the critical section
	EvReleased = "released" // session exited and the diner is free again
	EvSuspect  = "suspect"  // ◇P output change (or snapshot entry): Of's module about Peer
	EvInfo     = "info"     // reply to OpInfo
	EvError    = "error"    // request failed; Msg explains
)

// Request is one client command.
type Request struct {
	Op    string `json:"op"`
	Diner int    `json:"diner,omitempty"`
	ID    string `json:"id,omitempty"`
}

// Event is one server message.
type Event struct {
	Ev    string `json:"ev"`
	Diner int    `json:"diner,omitempty"`
	ID    string `json:"id,omitempty"`

	// Suspect-stream fields: Of's ◇P module output about Peer changed to
	// Suspect at server time T.
	Of      int  `json:"of,omitempty"`
	Peer    int  `json:"peer,omitempty"`
	Suspect bool `json:"suspect,omitempty"`

	// Info fields.
	Diners int `json:"diners,omitempty"`

	T   int64  `json:"t,omitempty"` // server clock, in ticks
	Msg string `json:"msg,omitempty"`
}
