// Package lockproto defines the client-facing wire protocol of the
// dineserve lock/session service: newline-delimited JSON objects over TCP,
// chosen so that a plain `nc` session is a usable client. Requests travel
// client→server, events server→client. The protocol is asynchronous on the
// server side — suspect-stream events may interleave with command replies on
// a watching connection — but replies to one connection's acquire/release
// requests arrive in request order.
package lockproto

// Request operations.
const (
	// OpAcquire asks for an eating session on a diner. The server replies
	// with EvGranted when the dining layer grants the critical section (or
	// EvError). ID names the session for the later release.
	OpAcquire = "acquire"
	// OpRelease ends a previously granted session (by Diner and ID).
	OpRelease = "release"
	// OpWatch subscribes this connection to the extracted ◇P suspect
	// stream: one EvSuspect per output change, preceded by a snapshot of
	// the current suspicion matrix.
	OpWatch = "watch"
	// OpInfo asks for service parameters (diner count).
	OpInfo = "info"
)

// Event kinds.
const (
	EvGranted  = "granted"  // session entered the critical section
	EvReleased = "released" // session exited and the diner is free again
	EvSuspect  = "suspect"  // ◇P output change (or snapshot entry): Of's module about Peer
	EvInfo     = "info"     // reply to OpInfo
	EvError    = "error"    // request failed; Msg explains
)

// Request is one client command.
type Request struct {
	Op    string `json:"op"`
	Diner int    `json:"diner,omitempty"`
	ID    string `json:"id,omitempty"`
}

// Event is one server message.
type Event struct {
	Ev    string `json:"ev"`
	Diner int    `json:"diner,omitempty"`
	ID    string `json:"id,omitempty"`

	// Suspect-stream fields: Of's ◇P module output about Peer changed to
	// Suspect at server time T.
	Of      int  `json:"of,omitempty"`
	Peer    int  `json:"peer,omitempty"`
	Suspect bool `json:"suspect,omitempty"`

	// Info fields: total diner count, and how many independent dining
	// tables the process shards them over (0 is read as 1 by old servers'
	// omission — single-table).
	Diners int `json:"diners,omitempty"`
	Tables int `json:"tables,omitempty"`

	T   int64  `json:"t,omitempty"` // server clock, in ticks
	Msg string `json:"msg,omitempty"`
}

// TableOf maps a global diner id onto one of tables independent dining
// tables. It is the routing function shared by the server-side key router
// (internal/dinesvc) and by clients that want to attribute their sessions to
// shards (cmd/dineload), so it must be stable across processes and releases:
// a splitmix64 finalizer over the diner id, reduced mod tables. Changing it
// invalidates every sharded data directory's diner→table assignment.
func TableOf(diner, tables int) int {
	if tables <= 1 {
		return 0
	}
	x := uint64(int64(diner)) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(tables))
}
