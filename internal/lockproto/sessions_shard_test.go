package lockproto

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSessionsShardedRace hammers the sharded registry from many goroutines
// — full session lifecycles on every diner, concurrent janitor sweeps,
// snapshot captures, and a journal hook — and then audits the survivors.
// Run under -race (make race does) this is the data-race proof for the
// shard rewrite; the final audit is the semantic one: exactly one grant per
// key, every key accounted for.
func TestSessionsShardedRace(t *testing.T) {
	s := NewSessions(1) // tiny lease so Expire really reclaims
	var journaled atomic.Int64
	s.SetJournal(func(Rec) { journaled.Add(1) })

	const (
		workers  = 8
		perG     = 200
		diners   = 64 // several per shard
	)
	grants := make([]atomic.Int64, workers*perG)
	var clock atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				idx := g*perG + i
				k := Key{Diner: (g*31 + i) % diners, ID: fmt.Sprintf("g%d-%d", g, i)}
				now := clock.Add(1)
				if s.Acquire(k, now) != AcquireNew {
					t.Errorf("fresh key %v not AcquireNew", k)
					return
				}
				s.Attach(k, now)
				// Replayed acquire must classify as pending, never re-new.
				if res := s.Acquire(k, clock.Add(1)); res != AcquirePending {
					t.Errorf("replayed acquire on %v: %v", k, res)
					return
				}
				if s.Grant(k, clock.Add(1)) {
					grants[idx].Add(1)
				}
				if s.Grant(k, clock.Add(1)) { // second grant must be refused
					grants[idx].Add(1)
				}
				switch i % 3 {
				case 0:
					s.Release(k, clock.Add(1))
					s.Detach(k, clock.Add(1))
				case 1:
					s.Detach(k, clock.Add(1)) // detached: janitor bait
				default:
					s.Release(k, clock.Add(1))
					s.Release(k, clock.Add(1)) // idempotent replay
					s.Detach(k, clock.Add(1))
				}
			}
		}(g)
	}
	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() { // concurrent janitor + snapshot traffic
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Expire(clock.Add(2))
			_ = s.SnapshotState()
		}
	}()
	wg.Wait()
	close(stop)
	sweeps.Wait()

	for idx := range grants {
		if n := grants[idx].Load(); n > 1 {
			t.Fatalf("session %d granted %d times", idx, n)
		}
	}
	if journaled.Load() == 0 {
		t.Fatal("journal hook never fired")
	}
	// Negative diners (the Release path does not pre-validate) must map to a
	// shard, not panic.
	if res := s.Release(Key{Diner: -7, ID: "x"}, 1); res != ReleaseUnknown {
		t.Fatalf("negative-diner release: %v", res)
	}
	// Every key must still classify deterministically after the storm.
	done, pending, granted := 0, 0, 0
	for _, st := range s.SnapshotState() {
		switch st.Status {
		case "done":
			done++
		case "pending":
			pending++
		case "granted":
			granted++
		}
	}
	if done+pending+granted != workers*perG {
		t.Fatalf("snapshot lost sessions: %d+%d+%d != %d", done, pending, granted, workers*perG)
	}
}

// BenchmarkSessionsSharded measures registry throughput with every worker
// on its own diner — the contention shape the sharding exists for.
func BenchmarkSessionsSharded(b *testing.B) {
	b.ReportAllocs()
	s := NewSessions(0)
	var diner atomic.Int64
	var now atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		d := int(diner.Add(1))
		i := 0
		for pb.Next() {
			i++
			k := Key{Diner: d, ID: fmt.Sprintf("b-%d", i)}
			t := now.Add(1)
			s.Acquire(k, t)
			s.Attach(k, t)
			s.Grant(k, t)
			s.Release(k, t)
			s.Detach(k, t)
		}
	})
}
