package lockproto

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file makes the session registry durable: every mutating transition
// emits one Rec, the server's WAL persists them in mutation order, and
// Replay folds a snapshot plus a record suffix back into an equivalent
// registry after a crash.
//
// The replay contract is idempotency at the cut: the snapshot is built
// *after* the WAL rotates (see internal/wal), so the first few records of
// the new segment may describe transitions the snapshot already contains.
// Every record application below therefore tolerates finding its effect
// already in place. The one thing that is never tolerated — and is surfaced
// as a Violation instead of silently absorbed — is two grant *records* for
// the same key: a single append lands in exactly one segment, so a
// duplicated grant in the record chain means the live server really did
// hand out the critical section twice.

// Record kinds, one per mutating Sessions transition plus the two the
// server journals directly (clock ticks and fork-ownership moves).
const (
	RecAcquire = "acq"   // first sighting of a session
	RecGrant   = "grant" // session entered the critical section
	RecRelease = "rel"   // session completed
	RecAttach  = "att"   // a connection bound the session
	RecDetach  = "det"   // a connection unbound it
	RecExpire  = "exp"   // the janitor reclaimed it
	RecAbort   = "abort" // an unschedulable AcquireNew was unwound
	RecTick    = "tick"  // server clock watermark (no session payload)
	RecFork    = "fork"  // process P's hold bit for edge {P,Q} became H
)

// Rec is one journal record. Field names are compressed because every
// mutation writes one of these to disk.
type Rec struct {
	K string `json:"k"`
	D int    `json:"d,omitempty"` // session diner
	I string `json:"i,omitempty"` // session id
	T int64  `json:"t,omitempty"` // server tick of the transition
	P int    `json:"p,omitempty"` // fork edge endpoint (owner side)
	Q int    `json:"q,omitempty"` // fork edge endpoint (other side)
	H bool   `json:"h,omitempty"` // fork hold bit
}

// Encode marshals the record for the WAL.
func (r Rec) Encode() []byte {
	b, err := json.Marshal(r)
	if err != nil { // unreachable for this struct; keep the journal honest
		panic(err)
	}
	return b
}

// SessionState is one session in a snapshot.
type SessionState struct {
	Diner    int    `json:"d"`
	ID       string `json:"i"`
	Status   string `json:"s"` // "pending" | "granted" | "done"
	LastSeen int64  `json:"t"`
	Attached int    `json:"a,omitempty"`
}

// ForkState is one process's hold bit for one edge in a snapshot.
type ForkState struct {
	P    int  `json:"p"`
	Q    int  `json:"q"`
	Hold bool `json:"h"`
}

// State is a snapshot payload: the full registry at a clock watermark. The
// Sessions slice is in first-acquire order, which Replay preserves so that
// recovered sessions re-enter the dining layer in their original order.
type State struct {
	Watermark int64          `json:"w"`
	Sessions  []SessionState `json:"sessions,omitempty"`
	Forks     []ForkState    `json:"forks,omitempty"`
}

// Encode marshals the snapshot payload.
func (st State) Encode() []byte {
	b, err := json.Marshal(st)
	if err != nil {
		panic(err)
	}
	return b
}

// DecodeState unmarshals a snapshot payload.
func DecodeState(data []byte) (State, error) {
	var st State
	err := json.Unmarshal(data, &st)
	return st, err
}

func statusName(st sessionStatus) string {
	switch st {
	case statusPending:
		return "pending"
	case statusGranted:
		return "granted"
	default:
		return "done"
	}
}

func parseStatus(s string) (sessionStatus, error) {
	switch s {
	case "pending":
		return statusPending, nil
	case "granted":
		return statusGranted, nil
	case "done":
		return statusDone, nil
	}
	return 0, fmt.Errorf("unknown session status %q", s)
}

// RecoveredSession is one non-done session Replay found, in first-acquire
// order. Granted sessions must be re-queued through the dining layer before
// the server serves traffic (they hold the critical section).
type RecoveredSession struct {
	Key     Key
	Granted bool
}

// Edge identifies one fork edge, P < Q.
type Edge struct{ P, Q int }

// Recovered is the state Replay rebuilt.
type Recovered struct {
	Sessions  *Sessions
	Live      []RecoveredSession // non-done sessions, first-acquire order
	Forks     map[Edge]bool      // true: the lower endpoint holds the fork
	Watermark int64              // highest tick any snapshot or record saw
	Counts    map[string]int     // records applied, per kind
	// Violations are safety breaches the ledger itself proves — today only
	// double grants. A non-empty list means the pre-crash run was unsafe.
	Violations []string
}

// Replay folds a snapshot (nil for none) and the WAL records behind it into
// a fresh registry with the given lease. It returns an error only for
// undecodable input; safety breaches recorded in the ledger come back as
// Violations so callers can inspect a corrupt-but-parseable history.
//
// Callers restarting a server must follow up with
// Sessions.ResetBindings(Recovered.Watermark): the crash severed every
// connection, so attach counts are stale, and every surviving session gets
// a fresh lease from the watermark to re-attach.
func Replay(lease int64, snapshot []byte, records [][]byte) (*Recovered, error) {
	r := &Recovered{Forks: make(map[Edge]bool), Counts: make(map[string]int)}
	s := NewSessions(lease)
	grants := make(map[Key]int)
	holds := make(map[[2]int]bool) // directed: (p,q) -> p's hold bit for {p,q}
	var order []Key

	if snapshot != nil {
		st, err := DecodeState(snapshot)
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		r.Watermark = st.Watermark
		for _, ss := range st.Sessions {
			status, err := parseStatus(ss.Status)
			if err != nil {
				return nil, fmt.Errorf("snapshot session %d/%s: %w", ss.Diner, ss.ID, err)
			}
			k := Key{Diner: ss.Diner, ID: ss.ID}
			s.putRec(k, &sessionRec{status: status, attached: ss.Attached, lastSeen: ss.LastSeen, seq: s.nextSeq.Add(1) - 1})
			order = append(order, k)
		}
		for _, f := range st.Forks {
			holds[[2]int{f.P, f.Q}] = f.Hold
		}
	}

	for idx, raw := range records {
		var rec Rec
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("record %d: %w", idx+1, err)
		}
		r.Counts[rec.K]++
		if rec.T > r.Watermark {
			r.Watermark = rec.T
		}
		k := Key{Diner: rec.D, ID: rec.I}
		switch rec.K {
		case RecAcquire:
			if sr, ok := s.getRec(k); ok {
				// Snapshot-cut duplicate: the session is already here.
				if rec.T > sr.lastSeen {
					sr.lastSeen = rec.T
				}
			} else {
				s.putRec(k, &sessionRec{status: statusPending, lastSeen: rec.T, seq: s.nextSeq.Add(1) - 1})
				order = append(order, k)
			}
		case RecGrant:
			if grants[k]++; grants[k] > 1 {
				r.Violations = append(r.Violations,
					fmt.Sprintf("session %d/%s has %d grant records (double grant)", k.Diner, k.ID, grants[k]))
			}
			sr, ok := s.getRec(k)
			if !ok {
				r.Violations = append(r.Violations,
					fmt.Sprintf("grant record for unknown session %d/%s", k.Diner, k.ID))
				continue
			}
			if sr.status == statusPending {
				sr.status = statusGranted
			}
			if rec.T > sr.lastSeen {
				sr.lastSeen = rec.T
			}
		case RecRelease:
			if sr, ok := s.getRec(k); ok {
				sr.status = statusDone
				sr.lastSeen = rec.T
			}
		case RecExpire:
			if sr, ok := s.getRec(k); ok {
				sr.status = statusDone
				sr.lastSeen = rec.T
				// The live janitor only expires sessions with no bindings;
				// zeroing here erases any attach-count skew a snapshot-cut
				// duplicate left behind.
				sr.attached = 0
			}
		case RecAttach:
			if sr, ok := s.getRec(k); ok && sr.status != statusDone {
				sr.attached++
				sr.lastSeen = rec.T
			}
		case RecDetach:
			if sr, ok := s.getRec(k); ok && sr.status != statusDone {
				if sr.attached > 0 {
					sr.attached--
				}
				sr.lastSeen = rec.T
			}
		case RecAbort:
			if sr, ok := s.getRec(k); ok && sr.status == statusPending {
				s.delRec(k)
			}
		case RecTick:
			// Nothing beyond the watermark advance above.
		case RecFork:
			if rec.P != rec.Q {
				holds[[2]int{rec.P, rec.Q}] = rec.H
			}
		default:
			return nil, fmt.Errorf("record %d: unknown kind %q", idx+1, rec.K)
		}
	}

	seen := make(map[Key]bool)
	for _, k := range order {
		sr, ok := s.getRec(k)
		if !ok || sr.status == statusDone || seen[k] {
			continue
		}
		seen[k] = true
		r.Live = append(r.Live, RecoveredSession{Key: k, Granted: sr.status == statusGranted})
	}

	// Fold directional hold bits into one owner per edge. Exactly one side
	// holding is the steady state; neither holding means the fork was in
	// flight when the server died, and both holding can only come from a
	// corrupt history — either way the lower endpoint mints a fresh fork,
	// which preserves the one-fork-per-edge invariant.
	type edgeBits struct{ lo, hi bool }
	edges := make(map[Edge]*edgeBits)
	for dk, h := range holds {
		p, q := dk[0], dk[1]
		e, isLo := Edge{P: p, Q: q}, true
		if p > q {
			e, isLo = Edge{P: q, Q: p}, false
		}
		eb := edges[e]
		if eb == nil {
			eb = &edgeBits{}
			edges[e] = eb
		}
		if isLo {
			eb.lo = h
		} else {
			eb.hi = h
		}
	}
	for e, eb := range edges {
		r.Forks[e] = !(eb.hi && !eb.lo)
	}

	r.Sessions = s
	return r, nil
}

// SetJournal registers fn to observe every mutating transition, invoked
// synchronously under the mutated key's shard lock — a key's journal order
// is its apply order, by construction (see emit for the cross-shard
// contract). fn must be fast and must not call back into the registry.
func (s *Sessions) SetJournal(fn func(Rec)) {
	if fn == nil {
		s.journal.Store(nil)
		return
	}
	s.journal.Store(&fn)
}

// getRec, putRec, and delRec are replay-time map accessors: Replay owns the
// registry exclusively before any concurrency exists, so they skip the
// shard locks.
func (s *Sessions) getRec(k Key) (*sessionRec, bool) {
	rec, ok := s.shard(k).recs[k]
	return rec, ok
}

func (s *Sessions) putRec(k Key, rec *sessionRec) { s.shard(k).recs[k] = rec }

func (s *Sessions) delRec(k Key) { delete(s.shard(k).recs, k) }

// SnapshotState captures every session — tombstones included, they are the
// no-double-grant memory — in first-acquire order. Shards are captured one
// at a time; a mutation that lands in an already-captured shard is simply
// re-described by its WAL record in the fresh segment, which replay
// tolerates (the snapshot-cut idempotency contract).
func (s *Sessions) SnapshotState() []SessionState {
	type row struct {
		seq int64
		st  SessionState
	}
	var rows []row
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, rec := range sh.recs {
			rows = append(rows, row{seq: rec.seq, st: SessionState{
				Diner: k.Diner, ID: k.ID, Status: statusName(rec.status),
				LastSeen: rec.lastSeen, Attached: rec.attached,
			}})
		}
		sh.mu.Unlock()
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].seq < rows[j].seq })
	out := make([]SessionState, len(rows))
	for i, r := range rows {
		out[i] = r.st
	}
	return out
}

// ResetBindings is the post-recovery fixup: a crash severed every
// connection, so each surviving session's attach count drops to zero and
// its lease clock restarts at now (the recovered watermark). Without the
// re-stamp, sessions whose lastSeen predates the watermark by more than the
// lease would be mass-expired on the first janitor pass after restart —
// before their clients ever get a chance to reconnect.
func (s *Sessions) ResetBindings(now int64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.recs {
			if rec.status == statusDone {
				continue
			}
			rec.attached = 0
			rec.lastSeen = now
		}
		sh.mu.Unlock()
	}
}
