package lockproto

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

// The codec's contract is byte-compatibility: AppendRequest/AppendEvent
// must produce exactly json.Marshal's bytes, and DecodeRequest/DecodeEvent
// must accept and reject exactly what json.Unmarshal accepts and rejects.
// These tests (and FuzzWireCodecEquivalence) hold both directions to the
// stdlib differentially, so the hand-rolled fast path can never drift from
// the wire format old clients and chaosproxy speak.

func checkRequestCodec(t *testing.T, r Request) {
	t.Helper()
	want, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("stdlib marshal: %v", err)
	}
	got := AppendRequest(nil, &r)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendRequest(%+v)\n got %s\nwant %s", r, got, want)
	}
	var back Request
	if err := DecodeRequest(got, &back); err != nil {
		t.Fatalf("DecodeRequest(%s): %v", got, err)
	}
	if back != r {
		t.Fatalf("round trip %+v -> %+v", r, back)
	}
}

func checkEventCodec(t *testing.T, e Event) {
	t.Helper()
	want, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("stdlib marshal: %v", err)
	}
	got := AppendEvent(nil, &e)
	if !bytes.Equal(got, want) {
		t.Fatalf("AppendEvent(%+v)\n got %s\nwant %s", e, got, want)
	}
	var back Event
	if err := DecodeEvent(got, &back); err != nil {
		t.Fatalf("DecodeEvent(%s): %v", got, err)
	}
	if back != e {
		t.Fatalf("round trip %+v -> %+v", e, back)
	}
}

// nastyStrings exercises every escaping branch: short escapes, \u00xx
// control bytes, the HTML trio, U+2028/U+2029, multi-byte UTF-8, and
// invalid UTF-8 (which encodes as the literal \ufffd escape).
var nastyStrings = []string{
	"", "plain", "c12-0", `quote"back\slash`, "tab\tnl\ncr\rbs\bff\f",
	"ctl\x00\x01\x1f", "html<&>", "sep\u2028\u2029sep", "héllo wörld",
	"\xff\xfe bad utf8 \xc3", "mixed\x7f\u00e9\t<end>",
}

func TestWireEncodeMatchesStdlib(t *testing.T) {
	checkRequestCodec(t, Request{})
	checkEventCodec(t, Event{})
	for _, s := range nastyStrings {
		// Invalid UTF-8 does not survive a round trip (both codecs encode it
		// as U+FFFD), so only the encode half is compared for those.
		r := Request{Op: s, Diner: 3, ID: s}
		want, _ := json.Marshal(r)
		if got := AppendRequest(nil, &r); !bytes.Equal(got, want) {
			t.Fatalf("AppendRequest(%q)\n got %s\nwant %s", s, got, want)
		}
		e := Event{Ev: s, Msg: s, Diner: -2, T: 1 << 40}
		want, _ = json.Marshal(e)
		if got := AppendEvent(nil, &e); !bytes.Equal(got, want) {
			t.Fatalf("AppendEvent(%q)\n got %s\nwant %s", s, got, want)
		}
	}
	checkRequestCodec(t, Request{Op: OpAcquire, Diner: 4, ID: "ab12-c3-99"})
	checkRequestCodec(t, Request{Op: OpRelease, Diner: -1, ID: "x"})
	checkEventCodec(t, Event{Ev: EvGranted, Diner: 2, ID: "s", T: 12345})
	checkEventCodec(t, Event{Ev: EvSuspect, Of: 1, Peer: 3, Suspect: true, T: -9})
	checkEventCodec(t, Event{Ev: EvInfo, Diners: 5, T: 77})
	checkEventCodec(t, Event{Ev: EvInfo, Diners: 16, Tables: 4, T: 9})
	checkEventCodec(t, Event{Ev: EvError, Diner: 1, ID: "k", Msg: "overloaded"})
}

// TestWireDecodeStdlibQuirks pins the stdlib behaviours the fast path must
// not paper over: case-folded keys, duplicate keys, unknown fields, null,
// escaped strings, floats for int fields, and trailing garbage.
func TestWireDecodeStdlibQuirks(t *testing.T) {
	cases := []string{
		`{"OP":"acquire","DiNeR":2}`,            // case-insensitive match
		`{"op":"a","op":"b"}`,                   // duplicate key: last wins
		`{"op":"a","bogus":{"nested":[1,2]}}`,   // unknown nested field
		`{"op":"\u0061\ud83d\ude00","id":"\t"}`, // escapes
		`{"diner":1.5}`,                         // float into int: error
		`{"diner":1e2}`,                         // exponent into int: error
		`{"diner":null,"op":null,"id":"x"}`,     // null: no-op
		`  {"op":"a"}  `,                        // surrounding whitespace
		`{"op":"a"}junk`,                        // trailing garbage: error
		`{"op":123}`,                            // type mismatch: error
		`{"t":9223372036854775807}`,             // int64 max
		`{"t":9223372036854775808}`,             // int64 overflow: error
		`{"op":"ünïcode"}`,                      // non-ASCII string
		`{}`, `[]`, `null`, `42`, `"str"`, ``, `{`, `{"op"`, `{"op":}`,
	}
	for _, in := range cases {
		var fast, std Request
		fastErr := DecodeRequest([]byte(in), &fast)
		stdErr := json.Unmarshal([]byte(in), &std)
		if (fastErr == nil) != (stdErr == nil) {
			t.Fatalf("decode %q: fast err %v, stdlib err %v", in, fastErr, stdErr)
		}
		if fastErr == nil && fast != std {
			t.Fatalf("decode %q: fast %+v, stdlib %+v", in, fast, std)
		}
		var fe, se Event
		fastErr = DecodeEvent([]byte(in), &fe)
		stdErr = json.Unmarshal([]byte(in), &se)
		if (fastErr == nil) != (stdErr == nil) {
			t.Fatalf("decode event %q: fast err %v, stdlib err %v", in, fastErr, stdErr)
		}
		if fastErr == nil && fe != se {
			t.Fatalf("decode event %q: fast %+v, stdlib %+v", in, fe, se)
		}
	}
}

// TestWireFastPathIsUsed guards the perf property itself: the service's
// actual message shapes must decode without the stdlib bail-out, or the
// zero-alloc claim silently evaporates.
func TestWireFastPathIsUsed(t *testing.T) {
	var req Request
	if err := decodeRequestFast([]byte(`{"op":"acquire","diner":3,"id":"ab-c1-7"}`), &req); err != nil {
		t.Fatalf("fast path bailed on a canonical acquire: %v", err)
	}
	if req.Op != OpAcquire || req.Diner != 3 || req.ID != "ab-c1-7" {
		t.Fatalf("fast path misdecoded: %+v", req)
	}
	var ev Event
	if err := decodeEventFast([]byte(`{"ev":"suspect","of":1,"peer":2,"suspect":true,"t":99}`), &ev); err != nil {
		t.Fatalf("fast path bailed on a canonical suspect event: %v", err)
	}
	if !ev.Suspect || ev.Of != 1 || ev.Peer != 2 || ev.T != 99 {
		t.Fatalf("fast path misdecoded: %+v", ev)
	}
}

// TestWireStreamReader checks the streaming reader against json.Decoder's
// framing: values separated by newlines, by nothing, by runs of whitespace,
// and values whose bytes span the internal buffer.
func TestWireStreamReader(t *testing.T) {
	var src bytes.Buffer
	var want []Request
	enc := json.NewEncoder(&src)
	long := strings.Repeat("x", 9000) // bigger than the 4096-byte bufio buffer
	for i, id := range []string{"a", "b", long, "d"} {
		r := Request{Op: OpAcquire, Diner: i, ID: id}
		want = append(want, r)
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	src.WriteString(`  {"op":"info"}   {"op":"watch"}`) // no newline framing
	want = append(want, Request{Op: OpInfo}, Request{Op: OpWatch})

	rr := NewRequestReader(&src)
	for i, w := range want {
		var got Request
		if err := rr.Read(&got); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("read %d: got %+v want %+v", i, got, w)
		}
	}
	var extra Request
	if err := rr.Read(&extra); err != io.EOF {
		t.Fatalf("expected EOF after last value, got %v", err)
	}
}

// FuzzWireCodecEquivalence is the differential fuzz of the whole codec:
// encode equality on arbitrary field values, and decode equality (same
// accept/reject decision, same decoded struct) on arbitrary input bytes,
// for both message types.
func FuzzWireCodecEquivalence(f *testing.F) {
	f.Add([]byte(`{"op":"acquire","diner":3,"id":"s-1"}`), "acquire", 3, "id-1", "granted", int64(88), "msg")
	f.Add([]byte(`{"ev":"suspect","of":1,"peer":2,"suspect":true}`), "", 0, "", "", int64(0), "")
	f.Add([]byte(`{"OP":"x","bogus":[{"a":1}],"diner":2e3}`), "a\x00b", -1, "\xff", "<&>", int64(-5), "\u2028")
	f.Add([]byte(" {\"op\"\n:\t\"a\" , \"id\" : null } "), "", 1 << 30, "dup", "e", int64(1)<<62, "")
	f.Fuzz(func(t *testing.T, raw []byte, op string, diner int, id string, evs string, tt int64, msg string) {
		req := Request{Op: op, Diner: diner, ID: id}
		want, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("stdlib rejected a Request: %v", err)
		}
		if got := AppendRequest(nil, &req); !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch:\n got %s\nwant %s", got, want)
		}
		ev := Event{Ev: evs, Diner: diner, ID: id, Of: diner ^ 1, Peer: diner >> 1,
			Suspect: diner&1 == 0, Diners: diner, T: tt, Msg: msg}
		want, err = json.Marshal(ev)
		if err != nil {
			t.Fatalf("stdlib rejected an Event: %v", err)
		}
		if got := AppendEvent(nil, &ev); !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch:\n got %s\nwant %s", got, want)
		}

		var fastReq, stdReq Request
		fastErr := DecodeRequest(raw, &fastReq)
		stdErr := json.Unmarshal(raw, &stdReq)
		if (fastErr == nil) != (stdErr == nil) {
			t.Fatalf("decode %q: fast err %v, stdlib err %v", raw, fastErr, stdErr)
		}
		if fastErr == nil && fastReq != stdReq {
			t.Fatalf("decode %q: fast %+v, stdlib %+v", raw, fastReq, stdReq)
		}
		var fastEv, stdEv Event
		fastErr = DecodeEvent(raw, &fastEv)
		stdErr = json.Unmarshal(raw, &stdEv)
		if (fastErr == nil) != (stdErr == nil) {
			t.Fatalf("decode event %q: fast err %v, stdlib err %v", raw, fastErr, stdErr)
		}
		if fastErr == nil && fastEv != stdEv {
			t.Fatalf("decode event %q: fast %+v, stdlib %+v", raw, fastEv, stdEv)
		}
	})
}

// Benchmark pairs: the hand-rolled codec vs the encoding/json baseline on
// the protocol's hottest messages. BENCH_serve.json records both, so the
// allocs/op reduction is part of the tracked perf trajectory.

var benchEvent = Event{Ev: EvGranted, Diner: 3, ID: "a1b2c3-c12-345", T: 123456}
var benchReqLine = []byte(`{"op":"acquire","diner":3,"id":"a1b2c3-c12-345"}`)
var benchEvLine = []byte(`{"ev":"granted","diner":3,"id":"a1b2c3-c12-345","t":123456}`)

func BenchmarkWireEncodeEvent(b *testing.B) {
	b.ReportAllocs()
	var buf []byte
	for i := 0; i < b.N; i++ {
		buf = AppendEvent(buf[:0], &benchEvent)
	}
}

func BenchmarkWireEncodeEventJSON(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := json.Marshal(benchEvent); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeRequest(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var req Request
		if err := DecodeRequest(benchReqLine, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeRequestJSON(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var req Request
		if err := json.Unmarshal(benchReqLine, &req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeEvent(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ev Event
		if err := DecodeEvent(benchEvLine, &ev); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeEventJSON(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var ev Event
		if err := json.Unmarshal(benchEvLine, &ev); err != nil {
			b.Fatal(err)
		}
	}
}
