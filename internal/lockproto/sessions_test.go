package lockproto

import "testing"

func TestSessionsLifecycle(t *testing.T) {
	s := NewSessions(0)
	k := Key{Diner: 1, ID: "a"}
	if got := s.Acquire(k, 1); got != AcquireNew {
		t.Fatalf("first acquire = %v, want AcquireNew", got)
	}
	if got := s.Acquire(k, 2); got != AcquirePending {
		t.Fatalf("replayed acquire = %v, want AcquirePending", got)
	}
	if !s.Grant(k, 3) {
		t.Fatal("grant of pending session refused")
	}
	if got := s.Acquire(k, 4); got != AcquireGranted {
		t.Fatalf("post-grant acquire = %v, want AcquireGranted", got)
	}
	if s.Grant(k, 5) {
		t.Fatal("double grant")
	}
	if got := s.Release(k, 6); got != ReleaseGranted {
		t.Fatalf("release = %v, want ReleaseGranted", got)
	}
	if got := s.Release(k, 7); got != ReleaseDone {
		t.Fatalf("replayed release = %v, want ReleaseDone", got)
	}
	if got := s.Acquire(k, 8); got != AcquireDone {
		t.Fatalf("post-release acquire = %v, want AcquireDone", got)
	}
	if got := s.Release(Key{Diner: 9, ID: "x"}, 9); got != ReleaseUnknown {
		t.Fatalf("unknown release = %v, want ReleaseUnknown", got)
	}
}

func TestSessionsReleaseBeforeGrant(t *testing.T) {
	s := NewSessions(0)
	k := Key{Diner: 0, ID: "q"}
	s.Acquire(k, 1)
	if got := s.Release(k, 2); got != ReleasePending {
		t.Fatalf("release of pending = %v, want ReleasePending", got)
	}
	if s.Grant(k, 3) {
		t.Fatal("grant after pending release")
	}
}

func TestSessionsAbort(t *testing.T) {
	s := NewSessions(0)
	k := Key{Diner: 0, ID: "b"}
	s.Acquire(k, 1)
	s.Abort(k)
	if got := s.Acquire(k, 2); got != AcquireNew {
		t.Fatalf("acquire after abort = %v, want AcquireNew (id reusable)", got)
	}
	s.Grant(k, 3)
	s.Abort(k) // no-op: only pending sessions can be aborted
	if got := s.Acquire(k, 4); got != AcquireGranted {
		t.Fatalf("acquire after late abort = %v, want AcquireGranted", got)
	}
}

func TestSessionsLeaseExpiry(t *testing.T) {
	s := NewSessions(10)
	held := Key{Diner: 0, ID: "held"}
	queued := Key{Diner: 1, ID: "queued"}
	watched := Key{Diner: 2, ID: "watched"}
	s.Acquire(held, 0)
	s.Attach(held, 0)
	s.Grant(held, 0)
	s.Acquire(queued, 0)
	s.Attach(queued, 0)
	s.Acquire(watched, 0)
	s.Attach(watched, 0)
	s.Detach(held, 5)
	s.Detach(queued, 5)
	// watched stays attached: never expires.
	if got := s.Expire(10); len(got) != 0 {
		t.Fatalf("expired %v before the lease ran out", got)
	}
	got := s.Expire(16)
	if len(got) != 2 {
		t.Fatalf("expired %v, want the two detached sessions", got)
	}
	for _, e := range got {
		switch e.Key {
		case held:
			if !e.WasGranted {
				t.Error("held session not flagged WasGranted")
			}
		case queued:
			if e.WasGranted {
				t.Error("queued session flagged WasGranted")
			}
		default:
			t.Errorf("unexpected expiry %v", e)
		}
	}
	if again := s.Expire(100); len(again) != 0 {
		t.Fatalf("sessions expired twice: %v", again)
	}
	if got := s.Acquire(held, 20); got != AcquireDone {
		t.Fatalf("acquire of expired session = %v, want AcquireDone", got)
	}
	if got := s.Release(held, 21); got != ReleaseDone {
		t.Fatalf("release of expired session = %v, want ReleaseDone", got)
	}
	// Replaying the acquire before expiry refreshes the lease clock.
	saved := Key{Diner: 3, ID: "saved"}
	s.Acquire(saved, 30)
	s.Detach(saved, 30)
	s.Acquire(saved, 39) // replay inside the lease
	if got := s.Expire(45); len(got) != 0 {
		t.Fatalf("refreshed session expired: %v", got)
	}
}

// TestSessionsAttachCounting pins the reconnect race: a client's new
// connection re-attaches its session while the old connection's teardown is
// still pending. Bindings are counted, so the late teardown must not strand
// the session detached (the bug: a boolean flag let the old connection's
// detach overwrite the new attach, and the janitor expired a session whose
// client was connected and waiting).
func TestSessionsAttachCounting(t *testing.T) {
	s := NewSessions(10)
	k := Key{Diner: 0, ID: "r"}
	s.Acquire(k, 0)
	s.Attach(k, 0) // connection A
	s.Attach(k, 1) // connection B: the reconnect's replayed acquire
	s.Detach(k, 2) // A's deferred teardown lands after B took over
	if got := s.Expire(50); len(got) != 0 {
		t.Fatalf("session with a live binding expired: %v", got)
	}
	s.Detach(k, 60) // B goes too: now the lease clock really runs
	if got := s.Expire(65); len(got) != 0 {
		t.Fatalf("expired %v inside the lease", got)
	}
	if got := s.Expire(71); len(got) != 1 {
		t.Fatalf("fully detached session not expired: %v", got)
	}
	// Unpaired detaches clamp instead of corrupting the count.
	k2 := Key{Diner: 1, ID: "c"}
	s.Acquire(k2, 80)
	s.Detach(k2, 80)
	s.Detach(k2, 80)
	s.Attach(k2, 81)
	if got := s.Expire(200); len(got) != 0 {
		t.Fatalf("attached session expired after stray detaches: %v", got)
	}
}

// FuzzLockprotoDedup drives the registry with arbitrary interleavings of
// acquire/attach/grant/release/detach/expire over a small key space — the
// chaos a reconnecting client's replayed and duplicated frames produce — and
// checks the invariants the dining service's safety rests on:
//
//  1. Grant succeeds at most once per key, ever (a replayed acquire after a
//     release or expiry can never re-enter the critical section).
//  2. A done session is never reborn: once Acquire returns AcquireDone for
//     a key, it returns AcquireDone forever (Abort only unwinds pending).
//  3. Expire never reclaims the same session twice, and only ever reports
//     WasGranted for keys that were actually granted.
func FuzzLockprotoDedup(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 8, 16, 0, 16, 8})
	f.Add([]byte{0, 0, 8, 24, 32, 0, 8})
	f.Fuzz(func(t *testing.T, ops []byte) {
		s := NewSessions(4)
		granted := make(map[Key]int)
		done := make(map[Key]bool)
		now := int64(0)
		for _, b := range ops {
			op := int(b) % 7
			k := Key{Diner: int(b/8) % 2, ID: string(rune('a' + (b/16)%4))}
			now++
			switch op {
			case 0:
				r := s.Acquire(k, now)
				if done[k] && r != AcquireDone {
					t.Fatalf("done session %v reborn: acquire = %v", k, r)
				}
			case 1:
				if s.Grant(k, now) {
					granted[k]++
					if granted[k] > 1 {
						t.Fatalf("session %v granted %d times", k, granted[k])
					}
					if done[k] {
						t.Fatalf("done session %v granted", k)
					}
				}
			case 2:
				switch s.Release(k, now) {
				case ReleaseGranted, ReleasePending:
					done[k] = true
				}
			case 3:
				s.Detach(k, now)
			case 4:
				now += 3 // let leases run out
				for _, e := range s.Expire(now) {
					if done[e.Key] {
						t.Fatalf("session %v expired after completion", e.Key)
					}
					if e.WasGranted && granted[e.Key] == 0 {
						t.Fatalf("never-granted session %v expired as granted", e.Key)
					}
					done[e.Key] = true
				}
			case 5:
				s.Abort(k)
				if granted[k] > 0 && !done[k] {
					// Abort must not unwind a granted session.
					if got := s.Acquire(k, now); got != AcquireGranted {
						t.Fatalf("abort unwound granted session %v: acquire = %v", k, got)
					}
				}
			case 6:
				s.Attach(k, now)
			}
		}
	})
}
