package lockproto

import (
	"io"
	"sync"
	"time"
)

// FlushWriter coalesces a connection's outbound events into batched writes.
//
// The unbatched path pays one Write syscall per event; under load a single
// connection can receive bursts of events (grant + release acks interleaved
// with the suspect stream), and per-event writes make the kernel boundary
// the bottleneck. FlushWriter instead appends encoded events to a pending
// buffer and lets a per-connection flusher goroutine drain it: the first
// event of a burst opens a short coalescing window (MaxDelay), everything
// arriving inside the window rides the same Write, and a full buffer
// (MaxBatch) flushes immediately without waiting the window out. An idle
// connection costs nothing — the flusher blocks until the next event.
//
// Two bounds shape the batching, both enforced by tests:
//   - MaxBatch: once the pending buffer reaches this many bytes the flusher
//     is woken immediately, so a burst never accumulates unbounded memory.
//   - MaxDelay: no event sits in the buffer longer than (roughly) this —
//     the flush deadline. TestFlushWriterDeadline pins it.
//
// Send order is write order: events from the connection reader, the diner
// managers, and the watch forwarder serialize on the internal mutex exactly
// as they did on the old per-connection encoder mutex.
type FlushWriter struct {
	w        io.Writer
	maxBatch int
	maxDelay time.Duration

	mu     sync.Mutex
	buf    []byte
	err    error
	closed bool
	kick   chan struct{} // wakes the flusher: buffer went non-empty or full
	done   chan struct{} // flusher exited

	// flushes and flushedEvents count Write calls and events written, for
	// tests and for the server's batching telemetry.
	flushes       int64
	flushedEvents int64
	pendingEvents int64

	// onFlush, if set, observes every socket write as it happens — the
	// writer's registry hook, so coalescing telemetry is visible mid-run
	// instead of only when the connection's Stats are folded at close.
	onFlush func(events, bytes int64)
}

// NewFlushWriter starts a coalescing writer over w. maxBatch is the byte
// threshold that triggers an immediate flush (<=0: 32KiB); maxDelay is the
// longest an event may sit buffered before it is written (<=0: 500µs).
func NewFlushWriter(w io.Writer, maxBatch int, maxDelay time.Duration) *FlushWriter {
	if maxBatch <= 0 {
		maxBatch = 32 << 10
	}
	if maxDelay <= 0 {
		maxDelay = 500 * time.Microsecond
	}
	f := &FlushWriter{
		w:        w,
		maxBatch: maxBatch,
		maxDelay: maxDelay,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	go f.run()
	return f
}

// Send enqueues one event. It returns false once the writer has failed or
// been closed — the same contract the per-event encoder had, which the
// watch forwarder uses to stop.
func (f *FlushWriter) Send(ev *Event) bool {
	f.mu.Lock()
	if f.err != nil || f.closed {
		f.mu.Unlock()
		return false
	}
	f.buf = AppendEvent(f.buf, ev)
	f.buf = append(f.buf, '\n')
	f.pendingEvents++
	wake := len(f.buf) >= f.maxBatch || f.pendingEvents == 1
	f.mu.Unlock()
	if wake {
		select {
		case f.kick <- struct{}{}:
		default:
		}
	}
	return true
}

// run is the per-connection flusher: wait for the buffer to go non-empty,
// give the rest of a burst MaxDelay to pile in (cut short by a full
// buffer), then write everything in one call.
func (f *FlushWriter) run() {
	defer close(f.done)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	var scratch []byte
	for {
		f.mu.Lock()
		for len(f.buf) == 0 && !f.closed && f.err == nil {
			f.mu.Unlock()
			<-f.kick
			f.mu.Lock()
			if f.closed && len(f.buf) == 0 {
				f.mu.Unlock()
				return
			}
		}
		if f.err != nil || (f.closed && len(f.buf) == 0) {
			f.mu.Unlock()
			return
		}
		closed := f.closed
		full := len(f.buf) >= f.maxBatch
		f.mu.Unlock()

		// Coalescing window: only while the connection is live and the
		// buffer still has room — a closing or full writer drains now.
		if !closed && !full {
			timer.Reset(f.maxDelay)
			select {
			case <-timer.C:
			case <-f.kick: // buffer hit MaxBatch (or Close): flush early
				if !timer.Stop() {
					<-timer.C
				}
			}
		}

		f.mu.Lock()
		batch := f.buf
		events := f.pendingEvents
		f.buf = scratch[:0]
		f.pendingEvents = 0
		f.mu.Unlock()
		if len(batch) == 0 {
			continue
		}

		_, err := f.w.Write(batch)
		if err == nil {
			if hook := f.hook(); hook != nil {
				hook(events, int64(len(batch)))
			}
		}
		scratch = batch[:0]

		f.mu.Lock()
		f.flushes++
		f.flushedEvents += events
		if err != nil && f.err == nil {
			f.err = err
		}
		stop := f.err != nil || (f.closed && len(f.buf) == 0)
		f.mu.Unlock()
		if stop {
			return
		}
	}
}

// Close flushes anything still buffered and stops the flusher. Safe to call
// more than once; returns the writer's sticky error, if any.
func (f *FlushWriter) Close() error {
	f.mu.Lock()
	if !f.closed {
		f.closed = true
	}
	f.mu.Unlock()
	select {
	case f.kick <- struct{}{}:
	default:
	}
	<-f.done
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// OnFlush installs fn as the per-write observer: it is called once per
// successful socket write with the number of events and bytes the write
// carried. Install before traffic (fn is read under the writer's lock; a
// cheap atomic-counter hook is the intended shape).
func (f *FlushWriter) OnFlush(fn func(events, bytes int64)) {
	f.mu.Lock()
	f.onFlush = fn
	f.mu.Unlock()
}

// hook reads the observer under the lock.
func (f *FlushWriter) hook() func(events, bytes int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.onFlush
}

// Stats reports (write calls, events written) so far — the coalescing
// ratio is events/writes.
func (f *FlushWriter) Stats() (flushes, events int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flushes, f.flushedEvents
}
