package lockproto

import (
	"reflect"
	"strings"
	"testing"
)

// recorder captures the journal stream the way the server's WAL would:
// encoded, in emission order.
type recorder struct{ recs [][]byte }

func (r *recorder) hook(rec Rec) { r.recs = append(r.recs, rec.Encode()) }

func replayT(t *testing.T, lease int64, snap []byte, recs [][]byte) *Recovered {
	t.Helper()
	rec, err := Replay(lease, snap, recs)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return rec
}

// TestJournalReplayDifferential drives a live registry through a workload
// and checks that rebuilding from (a) the full record chain and (b) a
// mid-workload snapshot plus the record suffix both land on exactly the
// live registry's state.
func TestJournalReplayDifferential(t *testing.T) {
	live := NewSessions(10)
	j := &recorder{}
	live.SetJournal(j.hook)

	a := Key{Diner: 0, ID: "a"}
	b := Key{Diner: 1, ID: "b"}
	c := Key{Diner: 0, ID: "c"}
	d := Key{Diner: 2, ID: "d"}

	live.Acquire(a, 1)
	live.Attach(a, 1)
	live.Grant(a, 2)
	live.Acquire(b, 3)
	live.Attach(b, 3)
	live.Release(a, 4)
	live.Detach(a, 4)

	// Snapshot cut: everything before this line is in the snapshot, the
	// suffix must replay on top of it.
	cut := len(j.recs)
	snap := State{Watermark: 4, Sessions: live.SnapshotState()}.Encode()

	live.Acquire(c, 5)
	live.Abort(c)
	live.Acquire(c, 6) // id reusable after abort
	live.Attach(c, 6)
	live.Grant(b, 7)
	live.Acquire(d, 8)
	live.Attach(d, 8)
	live.Detach(b, 9)
	live.Expire(100) // reclaims the detached granted b

	want := live.SnapshotState()
	full := replayT(t, 10, nil, j.recs)
	incr := replayT(t, 10, snap, j.recs[cut:])
	for name, got := range map[string]*Recovered{"full": full, "incremental": incr} {
		if !reflect.DeepEqual(got.Sessions.SnapshotState(), want) {
			t.Errorf("%s replay state = %+v, want %+v", name, got.Sessions.SnapshotState(), want)
		}
		if len(got.Violations) != 0 {
			t.Errorf("%s replay flagged clean history: %v", name, got.Violations)
		}
		if got.Watermark != 100 {
			t.Errorf("%s replay watermark = %d, want 100", name, got.Watermark)
		}
		// Only c (pending) and d (pending) survive: a released, b expired.
		wantLive := []RecoveredSession{{Key: c}, {Key: d}}
		if !reflect.DeepEqual(got.Live, wantLive) {
			t.Errorf("%s replay live = %+v, want %+v", name, got.Live, wantLive)
		}
	}

	// Snapshot-cut duplication: replaying a record prefix the snapshot
	// already covers must be harmless (the wal package cuts snapshots after
	// rotating, so a few new-segment records can predate the cut). The only
	// skew duplication may cause is in attach counts, which the mandatory
	// post-recovery ResetBindings erases — so compare after that fixup.
	overlap := replayT(t, 10, snap, j.recs[cut-3:])
	if len(overlap.Violations) != 0 {
		t.Errorf("benign snapshot overlap flagged as violation: %v", overlap.Violations)
	}
	exact := replayT(t, 10, snap, j.recs[cut:])
	overlap.Sessions.ResetBindings(overlap.Watermark)
	exact.Sessions.ResetBindings(exact.Watermark)
	if got, want := overlap.Sessions.SnapshotState(), exact.Sessions.SnapshotState(); !reflect.DeepEqual(got, want) {
		t.Errorf("overlapping replay diverged after fixup: %+v, want %+v", got, want)
	}
	if !reflect.DeepEqual(overlap.Live, exact.Live) {
		t.Errorf("overlapping replay live = %+v, want %+v", overlap.Live, exact.Live)
	}
}

// TestRecoveryLeaseClock pins the lease-clock skew fix: the recovered
// watermark seeds the server clock, and ResetBindings re-stamps every
// surviving session there. Without both, a restart either mass-expires
// sessions whose lastSeen predates the crash by more than the lease, or —
// if the clock restarted at zero — makes now-lastSeen negative and the
// sessions immortal.
func TestRecoveryLeaseClock(t *testing.T) {
	const lease = 10
	live := NewSessions(lease)
	j := &recorder{}
	live.SetJournal(j.hook)

	holder := Key{Diner: 0, ID: "holder"}   // granted, attached at the crash
	waiter := Key{Diner: 1, ID: "waiter"}   // pending, attached at the crash
	drifter := Key{Diner: 2, ID: "drifter"} // granted, detached long before the crash
	gone := Key{Diner: 3, ID: "gone"}       // released: tombstone

	live.Acquire(holder, 1)
	live.Attach(holder, 1)
	live.Grant(holder, 2)
	live.Acquire(waiter, 3)
	live.Attach(waiter, 3)
	live.Acquire(drifter, 4)
	live.Attach(drifter, 4)
	live.Grant(drifter, 5)
	live.Detach(drifter, 6)
	live.Acquire(gone, 7)
	live.Release(gone, 8)

	// The server runs on to tick 500 — far beyond lastSeen+lease for every
	// session — then crashes. The watermark is the only record of that.
	j.hook(Rec{K: RecTick, T: 500})

	rec := replayT(t, lease, nil, j.recs)
	if rec.Watermark != 500 {
		t.Fatalf("watermark = %d, want 500", rec.Watermark)
	}
	s := rec.Sessions
	s.ResetBindings(rec.Watermark)

	// The fix, part 1: the first janitor pass after restart must not
	// mass-expire the survivors — every one has a full lease to reconnect.
	if got := s.Expire(rec.Watermark + 1); len(got) != 0 {
		t.Fatalf("mass expiry on restart: %v", got)
	}
	// The fix, part 2: the clock resumed from the watermark, so sessions
	// are not immortal either — unreconnected ones expire one lease later.
	got := s.Expire(rec.Watermark + lease + 1)
	if len(got) != 3 {
		t.Fatalf("expired %v after restart grace, want holder+waiter+drifter", got)
	}
	wasGranted := map[Key]bool{}
	for _, e := range got {
		wasGranted[e.Key] = e.WasGranted
	}
	if !wasGranted[holder] || wasGranted[waiter] || !wasGranted[drifter] {
		t.Fatalf("WasGranted flags wrong across recovery: %v", got)
	}

	// Re-run recovery, this time with a client that reconnects in time.
	rec = replayT(t, lease, nil, j.recs)
	s = rec.Sessions
	s.ResetBindings(rec.Watermark)
	// The crash severed all connections: ResetBindings must have cleared
	// holder's pre-crash attach count, or this Detach would leave a stale
	// binding pinning the session forever.
	if got := s.Acquire(holder, rec.Watermark+2); got != AcquireGranted {
		t.Fatalf("replayed acquire of recovered holder = %v, want AcquireGranted", got)
	}
	if s.Grant(holder, rec.Watermark+2) {
		t.Fatal("recovered granted session granted again")
	}
	s.Attach(holder, rec.Watermark+2)
	if got := s.Expire(rec.Watermark + 5 * lease); len(got) != 2 {
		t.Fatalf("expired %v, want only the two unreconnected sessions", got)
	}
	// Tombstones survive recovery: the completed session can never revive.
	if got := s.Acquire(gone, rec.Watermark+3); got != AcquireDone {
		t.Fatalf("acquire of recovered tombstone = %v, want AcquireDone", got)
	}
}

func TestReplayForkFolding(t *testing.T) {
	recs := [][]byte{
		// Edge {0,1}: 0 takes the fork, then yields it to 1.
		Rec{K: RecFork, P: 0, Q: 1, H: true}.Encode(),
		Rec{K: RecFork, P: 0, Q: 1, H: false}.Encode(),
		Rec{K: RecFork, P: 1, Q: 0, H: true}.Encode(),
		// Edge {1,2}: only the high side ever reported; it holds.
		Rec{K: RecFork, P: 2, Q: 1, H: true}.Encode(),
		// Edge {0,2}: in flight at the crash — neither side holds.
		Rec{K: RecFork, P: 0, Q: 2, H: false}.Encode(),
		Rec{K: RecFork, P: 2, Q: 0, H: false}.Encode(),
	}
	rec := replayT(t, 0, nil, recs)
	want := map[Edge]bool{
		{P: 0, Q: 1}: false, // 1 holds
		{P: 1, Q: 2}: false, // 2 holds
		{P: 0, Q: 2}: true,  // in flight: lower endpoint mints
	}
	if !reflect.DeepEqual(rec.Forks, want) {
		t.Fatalf("folded forks = %v, want %v", rec.Forks, want)
	}

	// Fork state round-trips through snapshots too.
	snap := State{Watermark: 9, Forks: []ForkState{{P: 1, Q: 0, Hold: true}}}.Encode()
	rec = replayT(t, 0, snap, nil)
	if want := map[Edge]bool{{P: 0, Q: 1}: false}; !reflect.DeepEqual(rec.Forks, want) {
		t.Fatalf("snapshot forks = %v, want %v", rec.Forks, want)
	}
}

// TestReplayDoubleGrantLedger: two grant records for one key is the
// ledger's proof of a double grant, and must surface as a Violation — while
// the benign single grant following a snapshot that already shows the
// session granted must not.
func TestReplayDoubleGrantLedger(t *testing.T) {
	k := Key{Diner: 4, ID: "dg"}
	bad := [][]byte{
		Rec{K: RecAcquire, D: k.Diner, I: k.ID, T: 1}.Encode(),
		Rec{K: RecGrant, D: k.Diner, I: k.ID, T: 2}.Encode(),
		Rec{K: RecGrant, D: k.Diner, I: k.ID, T: 3}.Encode(),
	}
	rec := replayT(t, 0, nil, bad)
	if len(rec.Violations) != 1 || !strings.Contains(rec.Violations[0], "double grant") {
		t.Fatalf("double grant not flagged: %v", rec.Violations)
	}

	snap := State{Watermark: 2, Sessions: []SessionState{
		{Diner: k.Diner, ID: k.ID, Status: "granted", LastSeen: 2},
	}}.Encode()
	benign := [][]byte{Rec{K: RecGrant, D: k.Diner, I: k.ID, T: 2}.Encode()}
	rec = replayT(t, 0, snap, benign)
	if len(rec.Violations) != 0 {
		t.Fatalf("snapshot-duplicated grant flagged as violation: %v", rec.Violations)
	}
	if len(rec.Live) != 1 || !rec.Live[0].Granted {
		t.Fatalf("live = %+v, want the granted session", rec.Live)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(0, []byte("{not json"), nil); err == nil {
		t.Error("garbage snapshot accepted")
	}
	if _, err := Replay(0, nil, [][]byte{[]byte("nope")}); err == nil {
		t.Error("garbage record accepted")
	}
	if _, err := Replay(0, nil, [][]byte{Rec{K: "mystery"}.Encode()}); err == nil {
		t.Error("unknown record kind accepted")
	}
	if _, err := Replay(0, []byte(`{"sessions":[{"d":0,"i":"x","s":"weird"}]}`), nil); err == nil {
		t.Error("unknown session status accepted")
	}
}
