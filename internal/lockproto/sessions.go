package lockproto

import (
	"sync"
	"sync/atomic"
)

// This file is the server-side session registry that makes the protocol
// safe to replay: clients reconnect after connection resets and re-send the
// requests of their current session (same Diner and ID), so every request
// must be idempotent. The registry is deterministic — no clocks, no
// goroutines; callers stamp every mutating call with their own notion of
// `now` (server ticks) — which is what makes it directly fuzzable.
//
// Concurrency. The registry is sharded by diner over a power-of-two shard
// array: a session's whole life happens under its diner's shard lock, so
// requests for independent diners never contend — the sharding that turned
// the old single registry mutex from a global serialization point into a
// per-diner one. Cross-shard state is two atomics (the acquire sequence and
// the journal hook); the janitor's Expire sweeps one shard at a time, so an
// expiry pass never stops the world either.

// Key identifies one session across connections.
type Key struct {
	Diner int
	ID    string
}

// AcquireResult classifies an acquire request against the registry.
type AcquireResult int

const (
	// AcquireNew: first sighting; the caller must schedule the session.
	AcquireNew AcquireResult = iota
	// AcquirePending: replay of an acquire still waiting for its grant; the
	// caller re-attaches the connection and waits.
	AcquirePending
	// AcquireGranted: replay of an acquire whose grant was already issued
	// (the original notification may have been lost with the connection);
	// the caller re-sends the grant event, but the critical section is NOT
	// re-entered — this is the no-double-grant guarantee.
	AcquireGranted
	// AcquireDone: replay of a session that already completed or expired;
	// it must not be resurrected.
	AcquireDone
)

// ReleaseResult classifies a release request.
type ReleaseResult int

const (
	// ReleaseGranted: the session held the critical section; the caller
	// must free it.
	ReleaseGranted ReleaseResult = iota
	// ReleasePending: released before the grant arrived; the caller must
	// unwind the queued work without ever handing out the section.
	ReleasePending
	// ReleaseDone: replay of a completed release; re-acknowledge only.
	ReleaseDone
	// ReleaseUnknown: never-seen session.
	ReleaseUnknown
)

type sessionStatus int

const (
	statusPending sessionStatus = iota
	statusGranted
	statusDone
)

type sessionRec struct {
	status   sessionStatus
	attached int   // live connection bindings; only 0 lets the lease run
	lastSeen int64 // lease clock: last registry touch
	seq      int64 // first-acquire order, preserved across snapshot/replay
}

// sessionShards is the shard count: power of two, sized so that even a
// clique of diners on a large host rarely maps two hot diners to one lock.
const sessionShards = 16

// sesShard is one lock's worth of the registry. Padded to a cache line so
// neighbouring shards' locks never false-share.
type sesShard struct {
	mu   sync.Mutex
	recs map[Key]*sessionRec
	_    [24]byte
}

// Sessions tracks every session of one server run, keyed (diner, id).
// Completed sessions leave tombstones, so a frame replayed arbitrarily late
// can never re-grant. Detached sessions (their connection died) expire after
// the lease; attached ones never do. Connection bindings are *counted*
// (Attach/Detach), not flagged: a reconnecting client's new binding and the
// old connection's teardown race in either order, and only a commutative
// count guarantees the session stays pinned while at least one connection
// holds it. Safe for concurrent use; see the sharding note above.
type Sessions struct {
	lease   int64 // ticks a detached session survives; 0 = forever
	nextSeq atomic.Int64
	journal atomic.Pointer[func(Rec)] // observes every mutation, under the shard lock
	shards  [sessionShards]sesShard
}

// shard maps a key to its shard. The uint cast makes hostile negative
// diners (which the Release path does not pre-validate) wrap instead of
// panic.
func (s *Sessions) shard(k Key) *sesShard {
	return &s.shards[uint(k.Diner)%sessionShards]
}

// emit forwards a mutation to the journal. Callers hold the key's shard
// lock, so the journal sees a key's records in exactly the order its
// mutations were applied; records of different shards interleave in
// whatever order the WAL serializes them, which replay tolerates (every
// cross-key ordering it relies on is forced by the caller's own
// happens-before, e.g. a grant barrier preceding the release that follows).
func (s *Sessions) emit(r Rec) {
	if fn := s.journal.Load(); fn != nil {
		(*fn)(r)
	}
}

// NewSessions returns a registry whose detached sessions expire after lease
// ticks (0: never).
func NewSessions(lease int64) *Sessions {
	s := &Sessions{lease: lease}
	for i := range s.shards {
		s.shards[i].recs = make(map[Key]*sessionRec)
	}
	return s
}

// Acquire classifies (and, if new, registers) an acquire request. Any
// non-done sighting refreshes the lease clock; binding the connection is the
// caller's separate, explicitly paired Attach.
func (s *Sessions) Acquire(k Key, now int64) AcquireResult {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.recs[k]
	if !ok {
		sh.recs[k] = &sessionRec{status: statusPending, lastSeen: now, seq: s.nextSeq.Add(1) - 1}
		s.emit(Rec{K: RecAcquire, D: k.Diner, I: k.ID, T: now})
		return AcquireNew
	}
	switch rec.status {
	case statusPending:
		rec.lastSeen = now
		return AcquirePending
	case statusGranted:
		rec.lastSeen = now
		return AcquireGranted
	default:
		return AcquireDone
	}
}

// Abort removes a session registered by AcquireNew that could not be
// scheduled after all (e.g. the diner's queue was full), so the client may
// retry the same id later.
func (s *Sessions) Abort(k Key) {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec, ok := sh.recs[k]; ok && rec.status == statusPending {
		delete(sh.recs, k)
		s.emit(Rec{K: RecAbort, D: k.Diner, I: k.ID})
	}
}

// Grant moves a pending session into the critical section. It returns false
// if the session is no longer pending — released or expired while queued —
// in which case the caller must hand the section straight back. Grant can
// return true at most once per key, ever.
func (s *Sessions) Grant(k Key, now int64) bool {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.recs[k]
	if !ok || rec.status != statusPending {
		return false
	}
	rec.status = statusGranted
	rec.lastSeen = now
	s.emit(Rec{K: RecGrant, D: k.Diner, I: k.ID, T: now})
	return true
}

// Release completes a session (idempotently: replays get ReleaseDone).
func (s *Sessions) Release(k Key, now int64) ReleaseResult {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.recs[k]
	if !ok {
		return ReleaseUnknown
	}
	switch rec.status {
	case statusGranted:
		rec.status = statusDone
		rec.lastSeen = now
		s.emit(Rec{K: RecRelease, D: k.Diner, I: k.ID, T: now})
		return ReleaseGranted
	case statusPending:
		rec.status = statusDone
		rec.lastSeen = now
		s.emit(Rec{K: RecRelease, D: k.Diner, I: k.ID, T: now})
		return ReleasePending
	default:
		return ReleaseDone
	}
}

// Attach binds one more live connection to the session; a session with at
// least one binding never expires. Every Attach must eventually be paired
// with exactly one Detach. No-op on done sessions.
func (s *Sessions) Attach(k Key, now int64) {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec, ok := sh.recs[k]; ok && rec.status != statusDone {
		rec.attached++
		rec.lastSeen = now
		s.emit(Rec{K: RecAttach, D: k.Diner, I: k.ID, T: now})
	}
}

// Detach releases one connection binding; when the last one goes, the lease
// clock starts (or restarts) at now. Unpaired calls clamp at zero rather
// than corrupt the count.
func (s *Sessions) Detach(k Key, now int64) {
	sh := s.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if rec, ok := sh.recs[k]; ok && rec.status != statusDone {
		if rec.attached > 0 {
			rec.attached--
		}
		rec.lastSeen = now
		s.emit(Rec{K: RecDetach, D: k.Diner, I: k.ID, T: now})
	}
}

// Expiry is one session reclaimed by Expire.
type Expiry struct {
	Key        Key
	WasGranted bool // it held the critical section; the caller must free it
}

// Expire marks every detached, non-done session idle for longer than the
// lease as done and returns them. A session is never returned twice, and an
// expired session behaves exactly like a released one afterwards: replayed
// acquires get AcquireDone, replayed releases get ReleaseDone. The sweep
// locks one shard at a time, so an expiry pass over a large registry never
// blocks the other shards' request traffic.
func (s *Sessions) Expire(now int64) []Expiry {
	if s.lease <= 0 {
		return nil
	}
	var out []Expiry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, rec := range sh.recs {
			if rec.status == statusDone || rec.attached > 0 || now-rec.lastSeen <= s.lease {
				continue
			}
			out = append(out, Expiry{Key: k, WasGranted: rec.status == statusGranted})
			rec.status = statusDone
			rec.lastSeen = now
			s.emit(Rec{K: RecExpire, D: k.Diner, I: k.ID, T: now})
		}
		sh.mu.Unlock()
	}
	return out
}
