package lockproto

import "sync"

// This file is the server-side session registry that makes the protocol
// safe to replay: clients reconnect after connection resets and re-send the
// requests of their current session (same Diner and ID), so every request
// must be idempotent. The registry is deterministic — no clocks, no
// goroutines; callers stamp every mutating call with their own notion of
// `now` (server ticks) — which is what makes it directly fuzzable.

// Key identifies one session across connections.
type Key struct {
	Diner int
	ID    string
}

// AcquireResult classifies an acquire request against the registry.
type AcquireResult int

const (
	// AcquireNew: first sighting; the caller must schedule the session.
	AcquireNew AcquireResult = iota
	// AcquirePending: replay of an acquire still waiting for its grant; the
	// caller re-attaches the connection and waits.
	AcquirePending
	// AcquireGranted: replay of an acquire whose grant was already issued
	// (the original notification may have been lost with the connection);
	// the caller re-sends the grant event, but the critical section is NOT
	// re-entered — this is the no-double-grant guarantee.
	AcquireGranted
	// AcquireDone: replay of a session that already completed or expired;
	// it must not be resurrected.
	AcquireDone
)

// ReleaseResult classifies a release request.
type ReleaseResult int

const (
	// ReleaseGranted: the session held the critical section; the caller
	// must free it.
	ReleaseGranted ReleaseResult = iota
	// ReleasePending: released before the grant arrived; the caller must
	// unwind the queued work without ever handing out the section.
	ReleasePending
	// ReleaseDone: replay of a completed release; re-acknowledge only.
	ReleaseDone
	// ReleaseUnknown: never-seen session.
	ReleaseUnknown
)

type sessionStatus int

const (
	statusPending sessionStatus = iota
	statusGranted
	statusDone
)

type sessionRec struct {
	status   sessionStatus
	attached int   // live connection bindings; only 0 lets the lease run
	lastSeen int64 // lease clock: last registry touch
	seq      int64 // first-acquire order, preserved across snapshot/replay
}

// Sessions tracks every session of one server run, keyed (diner, id).
// Completed sessions leave tombstones, so a frame replayed arbitrarily late
// can never re-grant. Detached sessions (their connection died) expire after
// the lease; attached ones never do. Connection bindings are *counted*
// (Attach/Detach), not flagged: a reconnecting client's new binding and the
// old connection's teardown race in either order, and only a commutative
// count guarantees the session stays pinned while at least one connection
// holds it. Safe for concurrent use.
type Sessions struct {
	lease int64 // ticks a detached session survives; 0 = forever

	mu      sync.Mutex
	recs    map[Key]*sessionRec
	nextSeq int64
	journal func(Rec) // observes every mutation, under mu; see SetJournal
}

// emit forwards a mutation to the journal. Callers hold s.mu, so the
// journal sees records in exactly the order mutations were applied.
func (s *Sessions) emit(r Rec) {
	if s.journal != nil {
		s.journal(r)
	}
}

// NewSessions returns a registry whose detached sessions expire after lease
// ticks (0: never).
func NewSessions(lease int64) *Sessions {
	return &Sessions{lease: lease, recs: make(map[Key]*sessionRec)}
}

// Acquire classifies (and, if new, registers) an acquire request. Any
// non-done sighting refreshes the lease clock; binding the connection is the
// caller's separate, explicitly paired Attach.
func (s *Sessions) Acquire(k Key, now int64) AcquireResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[k]
	if !ok {
		s.recs[k] = &sessionRec{status: statusPending, lastSeen: now, seq: s.nextSeq}
		s.nextSeq++
		s.emit(Rec{K: RecAcquire, D: k.Diner, I: k.ID, T: now})
		return AcquireNew
	}
	switch rec.status {
	case statusPending:
		rec.lastSeen = now
		return AcquirePending
	case statusGranted:
		rec.lastSeen = now
		return AcquireGranted
	default:
		return AcquireDone
	}
}

// Abort removes a session registered by AcquireNew that could not be
// scheduled after all (e.g. the diner's queue was full), so the client may
// retry the same id later.
func (s *Sessions) Abort(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[k]; ok && rec.status == statusPending {
		delete(s.recs, k)
		s.emit(Rec{K: RecAbort, D: k.Diner, I: k.ID})
	}
}

// Grant moves a pending session into the critical section. It returns false
// if the session is no longer pending — released or expired while queued —
// in which case the caller must hand the section straight back. Grant can
// return true at most once per key, ever.
func (s *Sessions) Grant(k Key, now int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[k]
	if !ok || rec.status != statusPending {
		return false
	}
	rec.status = statusGranted
	rec.lastSeen = now
	s.emit(Rec{K: RecGrant, D: k.Diner, I: k.ID, T: now})
	return true
}

// Release completes a session (idempotently: replays get ReleaseDone).
func (s *Sessions) Release(k Key, now int64) ReleaseResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.recs[k]
	if !ok {
		return ReleaseUnknown
	}
	switch rec.status {
	case statusGranted:
		rec.status = statusDone
		rec.lastSeen = now
		s.emit(Rec{K: RecRelease, D: k.Diner, I: k.ID, T: now})
		return ReleaseGranted
	case statusPending:
		rec.status = statusDone
		rec.lastSeen = now
		s.emit(Rec{K: RecRelease, D: k.Diner, I: k.ID, T: now})
		return ReleasePending
	default:
		return ReleaseDone
	}
}

// Attach binds one more live connection to the session; a session with at
// least one binding never expires. Every Attach must eventually be paired
// with exactly one Detach. No-op on done sessions.
func (s *Sessions) Attach(k Key, now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[k]; ok && rec.status != statusDone {
		rec.attached++
		rec.lastSeen = now
		s.emit(Rec{K: RecAttach, D: k.Diner, I: k.ID, T: now})
	}
}

// Detach releases one connection binding; when the last one goes, the lease
// clock starts (or restarts) at now. Unpaired calls clamp at zero rather
// than corrupt the count.
func (s *Sessions) Detach(k Key, now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[k]; ok && rec.status != statusDone {
		if rec.attached > 0 {
			rec.attached--
		}
		rec.lastSeen = now
		s.emit(Rec{K: RecDetach, D: k.Diner, I: k.ID, T: now})
	}
}

// Expiry is one session reclaimed by Expire.
type Expiry struct {
	Key        Key
	WasGranted bool // it held the critical section; the caller must free it
}

// Expire marks every detached, non-done session idle for longer than the
// lease as done and returns them. A session is never returned twice, and an
// expired session behaves exactly like a released one afterwards: replayed
// acquires get AcquireDone, replayed releases get ReleaseDone.
func (s *Sessions) Expire(now int64) []Expiry {
	if s.lease <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Expiry
	for k, rec := range s.recs {
		if rec.status == statusDone || rec.attached > 0 || now-rec.lastSeen <= s.lease {
			continue
		}
		out = append(out, Expiry{Key: k, WasGranted: rec.status == statusGranted})
		rec.status = statusDone
		rec.lastSeen = now
		s.emit(Rec{K: RecExpire, D: k.Diner, I: k.ID, T: now})
	}
	return out
}
