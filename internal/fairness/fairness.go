// Package fairness implements wait-free, eventually weakly exclusive dining
// with *eventual 2-fairness*, in the style of the construction the paper
// cites as [13] (Song and Pike): for every run there is a time after which
// no process eats more than twice while a correct neighbor stays hungry.
//
// Together with package core this realizes the paper's secondary result as
// a two-step pipeline: take any black-box WF-◇WX solution, extract ◇P from
// it with the reduction, and feed the extracted oracle to this layer to
// obtain a WF-◇WX solution with the strictly stronger eventual 2-fairness
// service property (see the E7 experiment and examples/fairdining).
//
// Mechanically the layer is the timestamp-priority fork algorithm of
// package forks plus an overtaking throttle. Every process announces its
// hunger (stamped with its Lamport hunger timestamp) and its meals to its
// neighbors. A hungry process defers to a neighbor q — refuses to start its
// (K+1)-th meal during q's current announced hunger — when q's hunger is
// older than its own. Deference follows the total order on (timestamp, id),
// so deference cycles, and hence deadlocks, are impossible; suspected
// neighbors are exempt, so crashes cannot block the throttle (wait-freedom
// survives). Before the oracle and the announcements stabilize the throttle
// can be wrong in both directions, which is fine: ◇WX and eventual
// 2-fairness both promise only a suffix.
package fairness

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// Config tunes the layer.
type Config struct {
	Retry rt.Time // request/announcement retransmission period (default 25)
	K     int      // overtaking bound (default 2, the paper's bound)
}

// Table is an eventually k-fair WF-◇WX dining instance.
type Table struct {
	name string
	g    *graph.Graph
	mods map[rt.ProcID]*module
}

// New builds the fair dining instance over g using oracle (any ◇P — native
// or extracted by the reduction).
func New(k rt.Runtime, g *graph.Graph, name string, oracle detector.Oracle, cfg Config) *Table {
	if cfg.Retry <= 0 {
		cfg.Retry = 25
	}
	if cfg.K <= 0 {
		cfg.K = 2
	}
	t := &Table{name: name, g: g, mods: make(map[rt.ProcID]*module)}
	for _, p := range g.Nodes() {
		t.mods[p] = newModule(k, g, name, p, oracle, cfg)
	}
	return t
}

// Factory returns a dining.Factory building fair tables bound to oracle.
func Factory(oracle detector.Oracle, cfg Config) dining.Factory {
	return func(k rt.Runtime, g *graph.Graph, name string) dining.Table {
		return New(k, g, name, oracle, cfg)
	}
}

// Name implements dining.Table.
func (t *Table) Name() string { return t.name }

// Graph implements dining.Table.
func (t *Table) Graph() *graph.Graph { return t.g }

// Diner implements dining.Table.
func (t *Table) Diner(p rt.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("fairness: %d is not a diner of %s", p, t.name))
	}
	return m
}

type edge struct {
	hold   bool
	wanted bool
	// Neighbor hunger bookkeeping for the throttle.
	nbrHungry   bool
	nbrHungerTS int64 // Lamport timestamp of the neighbor's current hunger
	endedTS     int64 // highest neighbor hunger session known to have ended
	mealsDuring int   // our meals completed during that hunger
}

type reqMsg struct{ TS int64 }
type forkMsg struct{}
type hungerMsg struct{ TS int64 }
type ateMsg struct{ TS int64 } // the hunger-session timestamp the meal concluded

type module struct {
	*dining.Core
	k      rt.Runtime
	self   rt.ProcID
	nbrs   []rt.ProcID
	edges  map[rt.ProcID]*edge
	view   detector.View
	cfg    Config
	prefix string

	clock    int64
	hungerTS int64
}

func newModule(k rt.Runtime, g *graph.Graph, name string, p rt.ProcID, oracle detector.Oracle, cfg Config) *module {
	m := &module{
		Core:   dining.NewCore(k, p, name),
		k:      k,
		self:   p,
		nbrs:   g.Neighbors(p),
		edges:  make(map[rt.ProcID]*edge),
		view:   detector.View{Oracle: oracle, Self: p},
		cfg:    cfg,
		prefix: name,
	}
	for _, q := range m.nbrs {
		m.edges[q] = &edge{hold: p < q}
	}
	k.Handle(p, name+"/req", m.onReq)
	k.Handle(p, name+"/fork", m.onFork)
	k.Handle(p, name+"/hunger", m.onHunger)
	k.Handle(p, name+"/ate", m.onAte)
	k.AddAction(p, name+"/eat", m.canEat, m.eat)
	k.AddAction(p, name+"/exit-done", func() bool { return m.State() == dining.Exiting }, m.finishExit)
	return m
}

// Hungry implements dining.Diner: stamp, announce, and chase forks.
func (m *module) Hungry() {
	m.Set(dining.Hungry)
	m.clock++
	m.hungerTS = m.clock
	for _, q := range m.nbrs {
		m.k.Send(m.self, q, m.prefix+"/hunger", hungerMsg{TS: m.hungerTS})
	}
	m.requestMissing()
	m.scheduleRetry()
}

// Exit implements dining.Diner.
func (m *module) Exit() { m.Set(dining.Exiting) }

// canEat: the fork condition plus the fairness throttle.
func (m *module) canEat() bool {
	if m.State() != dining.Hungry {
		return false
	}
	for _, q := range m.nbrs {
		e := m.edges[q]
		suspected := m.view.Suspected(q)
		if !e.hold && !suspected {
			return false
		}
		// Throttle: defer to an older hungry live neighbor we have already
		// overtaken K times. The (TS, id) total order makes deference
		// acyclic.
		if !suspected && e.nbrHungry && e.mealsDuring >= m.cfg.K &&
			older(e.nbrHungerTS, q, m.hungerTS, m.self) {
			return false
		}
	}
	return true
}

func older(ts int64, p rt.ProcID, ts2 int64, q rt.ProcID) bool {
	if ts != ts2 {
		return ts < ts2
	}
	return p < q
}

func (m *module) eat() { m.Set(dining.Eating) }

func (m *module) finishExit() {
	for _, q := range m.nbrs {
		e := m.edges[q]
		// This meal counts against every neighbor hungry throughout it.
		if e.nbrHungry {
			e.mealsDuring++
		}
		m.k.Send(m.self, q, m.prefix+"/ate", ateMsg{TS: m.hungerTS})
		if e.wanted && e.hold {
			m.yield(q)
		}
	}
	m.Set(dining.Thinking)
}

func (m *module) onHunger(msg rt.Message) {
	e := m.edges[msg.From]
	h := msg.Payload.(hungerMsg)
	if h.TS > m.clock {
		m.clock = h.TS
	}
	if h.TS <= e.endedTS {
		return // stale re-announcement of an already-concluded hunger
	}
	if !e.nbrHungry || h.TS > e.nbrHungerTS {
		e.nbrHungry = true
		e.nbrHungerTS = h.TS
		e.mealsDuring = 0
	}
}

func (m *module) onAte(msg rt.Message) {
	// The neighbor completed a meal, concluding the announced hunger
	// session with the given timestamp (it will announce any new one).
	e := m.edges[msg.From]
	a := msg.Payload.(ateMsg)
	if a.TS > e.endedTS {
		e.endedTS = a.TS
	}
	if e.nbrHungry && e.nbrHungerTS <= a.TS {
		e.nbrHungry = false
		e.mealsDuring = 0
	}
}

func (m *module) onReq(msg rt.Message) {
	q := msg.From
	e, ok := m.edges[q]
	if !ok {
		return
	}
	req := msg.Payload.(reqMsg)
	if req.TS > m.clock {
		m.clock = req.TS
	}
	if !e.hold {
		e.wanted = true
		return
	}
	switch m.State() {
	case dining.Eating, dining.Exiting:
		e.wanted = true
	case dining.Hungry:
		if older(m.hungerTS, m.self, req.TS, q) {
			e.wanted = true
		} else {
			m.yield(q)
		}
	default:
		m.yield(q)
	}
}

func (m *module) onFork(msg rt.Message) {
	e, ok := m.edges[msg.From]
	if !ok {
		return
	}
	e.hold = true
	if e.wanted && m.State() == dining.Thinking {
		m.yield(msg.From)
	}
}

func (m *module) yield(q rt.ProcID) {
	e := m.edges[q]
	e.hold = false
	e.wanted = false
	m.k.Send(m.self, q, m.prefix+"/fork", forkMsg{})
	if m.State() == dining.Hungry {
		m.k.Send(m.self, q, m.prefix+"/req", reqMsg{TS: m.hungerTS})
	}
}

func (m *module) requestMissing() {
	for _, q := range m.nbrs {
		if !m.edges[q].hold {
			m.k.Send(m.self, q, m.prefix+"/req", reqMsg{TS: m.hungerTS})
		}
	}
}

func (m *module) scheduleRetry() {
	m.k.After(m.self, m.cfg.Retry, func() {
		if m.State() != dining.Hungry {
			return
		}
		m.requestMissing()
		// Re-announce hunger so the throttle state survives message races.
		for _, q := range m.nbrs {
			m.k.Send(m.self, q, m.prefix+"/hunger", hungerMsg{TS: m.hungerTS})
		}
		m.scheduleRetry()
	})
}
