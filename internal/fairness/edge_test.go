package fairness_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestThrottleReleasedByCrash: a greedy diner throttled behind an older
// hungry neighbor must not starve when that neighbor crashes — suspicion
// exempts the dead from the fairness bound.
func TestThrottleReleasedByCrash(t *testing.T) {
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(11), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 400, PreMax: 50, PostMax: 6}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := fairness.New(k, g, "fair", oracle, fairness.Config{})
	// 1 gets hungry first (older claim) and then crashes while hungry;
	// 0 is greedy and would be throttled behind 1 forever without the
	// suspicion exemption.
	dining.Drive(k, 1, tbl.Diner(1), dining.DriverConfig{FirstHunger: 5, ThinkMin: 500, ThinkMax: 900, EatMin: 5, EatMax: 10})
	dining.Drive(k, 0, tbl.Diner(0), dining.DriverConfig{FirstHunger: 50, ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 10})
	k.CrashAt(1, 2000)
	end := k.Run(40000)
	if starved := checker.WaitFreedom(log, "fair", end-5000, end); len(starved) > 0 {
		t.Fatalf("greedy diner stuck behind a dead neighbor: %v", starved)
	}
	// And 0 keeps eating after the crash.
	late := 0
	for _, iv := range log.Sessions("eating")[trace.SessionKey{Inst: "fair", P: 0}] {
		if iv.Start > 10000 {
			late++
		}
	}
	if late < 10 {
		t.Fatalf("only %d meals after the crash", late)
	}
}

// TestFairLayerDeterminism: identical seeds give identical traces through
// the throttle bookkeeping.
func TestFairLayerDeterminism(t *testing.T) {
	run := func() int {
		log := &trace.Log{}
		g := graph.Ring(4)
		k := sim.NewKernel(4, sim.WithSeed(5), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 400, PreMax: 50, PostMax: 6}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		tbl := fairness.New(k, g, "fair", oracle, fairness.Config{})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 5, ThinkMax: 40, EatMin: 3, EatMax: 12,
			})
		}
		k.Run(20000)
		return log.Len()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic fair layer: %d vs %d records", a, b)
	}
}

// TestFairnessOnStar: the throttle composes with high-degree hubs — the
// center of a star with greedy leaves still eats (no deference deadlock).
func TestFairnessOnStar(t *testing.T) {
	log := &trace.Log{}
	g := graph.Star(5)
	k := sim.NewKernel(5, sim.WithSeed(6), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 400, PreMax: 50, PostMax: 6}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := fairness.New(k, g, "fair", oracle, fairness.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 1, ThinkMax: 5, EatMin: 3, EatMax: 10,
		})
	}
	end := k.Run(40000)
	if starved := checker.WaitFreedom(log, "fair", end-5000, end); len(starved) > 0 {
		t.Fatalf("starvation on star: %v", starved)
	}
	center := len(log.Sessions("eating")[trace.SessionKey{Inst: "fair", P: 0}])
	if center < 10 {
		t.Fatalf("hub ate only %d times", center)
	}
}
