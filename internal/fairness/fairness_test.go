package fairness_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

func run(t testing.TB, g *graph.Graph, seed int64, oracle func(*sim.Kernel) detector.Oracle, crashes map[sim.ProcID]sim.Time, horizon sim.Time, greedy bool) (*trace.Log, sim.Time) {
	t.Helper()
	log := &trace.Log{}
	k := sim.NewKernel(g.N(), sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	tbl := fairness.New(k, g, "fair", oracle(k), fairness.Config{})
	for _, p := range g.Nodes() {
		cfg := dining.DriverConfig{ThinkMin: 10, ThinkMax: 100, EatMin: 5, EatMax: 30}
		if greedy && p == 0 {
			// A greedy diner that barely thinks: the fairness pressure case.
			cfg = dining.DriverConfig{ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 15}
		}
		dining.Drive(k, p, tbl.Diner(p), cfg)
	}
	for p, at := range crashes {
		k.CrashAt(p, at)
	}
	end := k.Run(horizon)
	return log, end
}

func native(k *sim.Kernel) detector.Oracle {
	return detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
}

// TestStillWaitFreeAndEventuallyExclusive: the fairness layer must not lose
// the base dining guarantees.
func TestStillWaitFreeAndEventuallyExclusive(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for name, g := range map[string]*graph.Graph{
			"ring5":   graph.Ring(5),
			"clique4": graph.Clique(4),
		} {
			log, end := run(t, g, seed, native, map[sim.ProcID]sim.Time{1: 6000}, 40000, false)
			if _, err := checker.EventualWeakExclusion(log, g, "fair", end*2/3, end); err != nil {
				t.Errorf("%s seed %d: %v", name, seed, err)
			}
			if starved := checker.WaitFreedom(log, "fair", end-4000, end); len(starved) > 0 {
				t.Errorf("%s seed %d: %v", name, seed, starved)
			}
		}
	}
}

// TestEventual2Fairness: even against a greedy neighbor, no correct diner
// is overtaken more than twice in the converged suffix.
func TestEventual2Fairness(t *testing.T) {
	for _, seed := range []int64{3, 4, 5} {
		g := graph.Clique(3)
		log, end := run(t, g, seed, native, nil, 50000, true)
		if over := checker.KFairness(log, g, "fair", 2, end/2, end); len(over) > 0 {
			t.Errorf("seed %d: overtaking beyond 2 in the suffix: %v", seed, over)
		}
		if starved := checker.WaitFreedom(log, "fair", end-4000, end); len(starved) > 0 {
			t.Errorf("seed %d: %v", seed, starved)
		}
	}
}

// TestPipelineExtractedOracle is experiment E7, the paper's secondary
// result as a two-step construction: a black-box WF-◇WX solution (forks,
// powered by a native heartbeat ◇P) feeds the reduction; the *extracted*
// ◇P — not the native one — powers the eventually 2-fair dining layer.
func TestPipelineExtractedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is long")
	}
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(6), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	nat := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	blackbox := forks.Factory(nat, forks.Config{})
	ext := core.NewExtractor(k, g.Nodes(), blackbox, "xp")
	tbl := fairness.New(k, g, "fair", ext, fairness.Config{})
	for _, p := range g.Nodes() {
		cfg := dining.DriverConfig{ThinkMin: 10, ThinkMax: 80, EatMin: 5, EatMax: 25}
		if p == 0 {
			cfg = dining.DriverConfig{ThinkMin: 1, ThinkMax: 3, EatMin: 5, EatMax: 15}
		}
		dining.Drive(k, p, tbl.Diner(p), cfg)
	}
	end := k.Run(60000)
	if _, err := checker.EventualWeakExclusion(log, g, "fair", end*2/3, end); err != nil {
		t.Error(err)
	}
	if starved := checker.WaitFreedom(log, "fair", end-4000, end); len(starved) > 0 {
		t.Errorf("starvation: %v", starved)
	}
	if over := checker.KFairness(log, g, "fair", 2, end/2, end); len(over) > 0 {
		t.Errorf("overtaking: %v", over)
	}
}

// TestPipelineSurvivesCrash: the full pipeline with a crash — the extracted
// oracle must unblock the fair layer.
func TestPipelineSurvivesCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline test is long")
	}
	log := &trace.Log{}
	g := graph.Pair(0, 1)
	k := sim.NewKernel(2, sim.WithSeed(7), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	nat := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	ext := core.NewExtractor(k, g.Nodes(), forks.Factory(nat, forks.Config{}), "xp")
	tbl := fairness.New(k, g, "fair", ext, fairness.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 5, EatMax: 20,
		})
	}
	k.CrashAt(1, 8000)
	end := k.Run(60000)
	if starved := checker.WaitFreedom(log, "fair", end-5000, end); len(starved) > 0 {
		t.Errorf("survivor starved behind the crash: %v", starved)
	}
}
