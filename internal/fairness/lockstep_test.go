package fairness_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/fairness"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestEventualLockStep demonstrates the paper's remark that a 1-fair
// transformation turns WF-◇WX dining on a clique into an eventually
// lock-step scheduler: with K=1 and every diner perpetually re-hungry, the
// converged suffix schedules the diners as a repeating round-robin — each
// diner eats exactly once per "round" of n meals.
func TestEventualLockStep(t *testing.T) {
	const n = 3
	for _, seed := range []int64{1, 2} {
		log := &trace.Log{}
		g := graph.Clique(n)
		k := sim.NewKernel(n, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		tbl := fairness.New(k, g, "fair", oracle, fairness.Config{K: 1})
		for _, p := range g.Nodes() {
			// Perpetual contention: think for a single tick.
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 1, ThinkMax: 1, EatMin: 3, EatMax: 8,
			})
		}
		end := k.Run(50000)

		// 1-fairness in the suffix.
		if over := checker.KFairness(log, g, "fair", 1, end/2, end); len(over) > 0 {
			t.Fatalf("seed %d: 1-fairness violated in the suffix: %v", seed, over)
		}
		// Lock-step: order the suffix meals by start time; every window of
		// n consecutive meals contains every diner exactly once.
		type meal struct {
			p  sim.ProcID
			at sim.Time
		}
		var meals []meal
		eat := log.Sessions("eating")
		for _, p := range g.Nodes() {
			for _, iv := range eat[trace.SessionKey{Inst: "fair", P: p}] {
				if iv.Start >= end/2 && iv.Closed() {
					meals = append(meals, meal{p: p, at: iv.Start})
				}
			}
		}
		if len(meals) < 4*n {
			t.Fatalf("seed %d: only %d suffix meals", seed, len(meals))
		}
		for i := 1; i < len(meals); i++ {
			if meals[i].at < meals[i-1].at {
				// Sort by insertion is per-diner; merge-sort by time.
				for j := i; j > 0 && meals[j].at < meals[j-1].at; j-- {
					meals[j], meals[j-1] = meals[j-1], meals[j]
				}
			}
		}
		// Drop a possible partial round at each end, then check windows.
		for i := 0; i+n <= len(meals); i += n {
			seen := map[sim.ProcID]bool{}
			for _, m := range meals[i : i+n] {
				seen[m.p] = true
			}
			if len(seen) != n {
				t.Fatalf("seed %d: meals %d..%d are not a permutation round: %v",
					seed, i, i+n-1, meals[i:i+n])
			}
		}
	}
}
