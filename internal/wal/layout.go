package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the multi-table directory layout: a process that shards its
// service over N independent dining tables gives each table its own WAL
// generation directory under one parent data dir —
//
//	<data-dir>/table-0/   wal-*.log, snap-*.snap
//	<data-dir>/table-1/   ...
//
// so every table's log is recovered, rotated, snapshotted, and audited in
// isolation, by exactly the single-directory code above. A single-table
// service keeps the flat layout (segments directly under <data-dir>), which
// is what every pre-sharding data directory already looks like; the two
// layouts are mutually exclusive and DetectLayout refuses a directory that
// mixes them, so a -tables flag that disagrees with the on-disk history
// fails the boot instead of silently splitting it.

// tableDirPrefix names the per-table subdirectories.
const tableDirPrefix = "table-"

// TableDir returns the WAL directory of table i under parent.
func TableDir(parent string, i int) string {
	return filepath.Join(parent, tableDirPrefix+strconv.Itoa(i))
}

// TableDirs lists the table-<i> subdirectories of parent, sorted by table
// index. A missing parent or a parent with no table subdirectories returns
// nil (the flat single-table layout).
func TableDirs(parent string) ([]string, error) {
	entries, err := os.ReadDir(parent)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		n, ok := parseTableDir(e.Name())
		if !ok {
			continue
		}
		idx = append(idx, n)
	}
	sort.Ints(idx)
	var dirs []string
	for _, n := range idx {
		dirs = append(dirs, TableDir(parent, n))
	}
	return dirs, nil
}

// parseTableDir extracts the index from a table-<i> directory name.
func parseTableDir(name string) (int, bool) {
	if !strings.HasPrefix(name, tableDirPrefix) {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(tableDirPrefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// DetectLayout inspects parent and reports how many tables its on-disk
// state was written with: 1 for the flat layout, k for a
// table-0..table-(k-1) sharded layout, and 0 for a fresh or missing
// directory with no history at all (any table count may claim it). It
// errors on a directory that mixes flat WAL files with table
// subdirectories, or whose table indices are not contiguous from zero —
// both can only come from running mismatched -tables values over one data
// dir, and recovering either would silently drop part of the history.
func DetectLayout(parent string) (int, error) {
	entries, err := os.ReadDir(parent)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	flat := false
	tables := make(map[int]bool)
	for _, e := range entries {
		if e.IsDir() {
			if n, ok := parseTableDir(e.Name()); ok {
				tables[n] = true
			}
			continue
		}
		if _, _, ok := parseGen(e.Name()); ok {
			flat = true
		}
	}
	if len(tables) == 0 {
		if flat {
			return 1, nil
		}
		return 0, nil
	}
	if flat {
		return 0, fmt.Errorf("wal: %s mixes flat WAL segments with table-<i> subdirectories", parent)
	}
	for i := 0; i < len(tables); i++ {
		if !tables[i] {
			return 0, fmt.Errorf("wal: %s has %d table directories but table-%d is missing", parent, len(tables), i)
		}
	}
	return len(tables), nil
}
