package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SegmentInfo describes one file of a store directory as the inspector saw
// it.
type SegmentInfo struct {
	Name       string
	Records    int   // valid frames
	ValidBytes int64 // length of the valid prefix
	TotalBytes int64
	Torn       bool // bytes past the valid prefix exist
	Replayed   bool // recovery would use this file
}

// Report is the read-only analysis of a WAL+snapshot directory: what
// recovery would load, and where the corruption (if any) sits. Unlike Open,
// Inspect never mutates the directory — no truncation, no tmp cleanup.
type Report struct {
	Dir       string
	Gen       uint64 // snapshot generation recovery would choose
	Snapshot  []byte // its payload (nil if none)
	Records   [][]byte
	Snapshots []SegmentInfo
	Segments  []SegmentInfo
	TornBytes int64 // bytes recovery would drop
	Strays    []string
}

// Valid reports whether the directory is fully intact: every snapshot
// parses and no segment carries a torn tail.
func (r *Report) Valid() bool { return r.TornBytes == 0 }

// Render formats the report for humans.
func (r *Report) Render(verbose bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "wal: %s\n", r.Dir)
	for _, s := range r.Snapshots {
		fmt.Fprintf(&b, "  %s  %8d bytes  %s%s\n", s.Name, s.TotalBytes, mark(s), replayed(s))
	}
	for _, s := range r.Segments {
		fmt.Fprintf(&b, "  %s  %8d bytes  %5d records  %s%s\n",
			s.Name, s.TotalBytes, s.Records, mark(s), replayed(s))
		if s.Torn {
			fmt.Fprintf(&b, "    torn tail: last valid offset %d, %d bytes dropped\n",
				s.ValidBytes, s.TotalBytes-s.ValidBytes)
		}
	}
	for _, s := range r.Strays {
		fmt.Fprintf(&b, "  %s  (stray; ignored)\n", s)
	}
	snap := "none"
	if r.Snapshot != nil {
		snap = fmt.Sprintf("gen %d, %d bytes", r.Gen, len(r.Snapshot))
	}
	fmt.Fprintf(&b, "recovery: snapshot %s, %d records, %d torn bytes\n",
		snap, len(r.Records), r.TornBytes)
	if verbose {
		for i, rec := range r.Records {
			fmt.Fprintf(&b, "  #%d %s\n", i+1, string(rec))
		}
	}
	return b.String()
}

func mark(s SegmentInfo) string {
	if s.Torn {
		return "CORRUPT"
	}
	return "ok"
}

func replayed(s SegmentInfo) string {
	if s.Replayed {
		return ""
	}
	return " (not replayed)"
}

// Inspect analyzes dir without modifying it, applying exactly the selection
// rules Open uses: newest valid snapshot wins, segments at or after it are
// replayed in order, and everything past the first invalid frame is torn.
func Inspect(dir string) (*Report, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	r := &Report{Dir: dir}
	var snapGens, walGens []uint64
	for _, e := range entries {
		prefix, g, ok := parseGen(e.Name())
		if !ok {
			r.Strays = append(r.Strays, e.Name())
			continue
		}
		if prefix == "snap" {
			snapGens = append(snapGens, g)
		} else {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] < snapGens[j] })
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })

	chosen := uint64(0)
	haveSnap := false
	for _, g := range snapGens {
		data, err := os.ReadFile(filepath.Join(dir, snapName(g)))
		if err != nil {
			return nil, err
		}
		recs, valid := scanFrames(data)
		info := SegmentInfo{Name: snapName(g), TotalBytes: int64(len(data)), ValidBytes: valid,
			Records: len(recs), Torn: len(recs) == 0 || valid < int64(len(data))}
		if len(recs) > 0 && (!haveSnap || g > chosen) {
			chosen, haveSnap = g, true
			r.Snapshot = recs[0]
		}
		if info.Torn {
			r.TornBytes += int64(len(data)) - valid
		}
		r.Snapshots = append(r.Snapshots, info)
	}
	// Mark which snapshot wins (only the newest valid one is replayed).
	for i := range r.Snapshots {
		r.Snapshots[i].Replayed = haveSnap && r.Snapshots[i].Name == snapName(chosen) && !r.Snapshots[i].Torn
	}
	r.Gen = chosen

	corrupt := false
	for _, g := range walGens {
		data, err := os.ReadFile(filepath.Join(dir, walName(g)))
		if err != nil {
			return nil, err
		}
		recs, valid := scanFrames(data)
		info := SegmentInfo{Name: walName(g), TotalBytes: int64(len(data)), ValidBytes: valid,
			Records: len(recs), Torn: valid < int64(len(data))}
		if g >= chosen && !corrupt {
			info.Replayed = true
			r.Records = append(r.Records, recs...)
			if info.Torn {
				r.TornBytes += info.TotalBytes - valid
				corrupt = true
			}
		} else if g >= chosen {
			// Past the first corrupted segment: dropped wholesale.
			r.TornBytes += info.TotalBytes
		}
		r.Segments = append(r.Segments, info)
	}
	return r, nil
}
