package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the recovery path as a snapshot
// file and a WAL segment. Whatever the bytes, recovery must never panic,
// must keep only CRC-valid frames, and must leave the store appendable: a
// record appended after recovery must itself be recoverable, with every
// previously recovered record still in front of it.
func FuzzWALReplay(f *testing.F) {
	valid := appendFrame(appendFrame(nil, []byte(`{"k":"acq","d":1,"i":"s1","t":7}`)), []byte(`{"k":"grant","d":1,"i":"s1","t":9}`))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{}, valid)
	f.Add(appendFrame(nil, []byte("snapshot")), valid)
	f.Add(appendFrame(nil, []byte("snapshot")), append(append([]byte{}, valid...), 0xde, 0xad))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, []byte{0, 0, 0, 0})
	truncated := valid[:len(valid)-3]
	f.Add(truncated, truncated)

	f.Fuzz(func(t *testing.T, snap, seg []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName(1)), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, walName(1)), seg, 0o644); err != nil {
			t.Fatal(err)
		}

		rep, err := Inspect(dir)
		if err != nil {
			t.Fatalf("Inspect errored on fuzzed input: %v", err)
		}

		s, rec, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open errored on fuzzed input: %v", err)
		}
		if len(rec.Records) != len(rep.Records) {
			t.Fatalf("Open replayed %d records, Inspect %d", len(rec.Records), len(rep.Records))
		}
		// Every recovered record must be a CRC-valid frame of the input.
		snapRecs, _ := scanFrames(snap)
		if rec.Snapshot != nil {
			if len(snapRecs) == 0 || !bytes.Equal(rec.Snapshot, snapRecs[0]) {
				t.Fatalf("recovered snapshot %q not the input's first valid frame", rec.Snapshot)
			}
		} else if len(snapRecs) > 0 {
			t.Fatalf("valid snapshot frame not recovered")
		}
		segRecs, _ := scanFrames(seg)
		if len(rec.Records) > len(segRecs) {
			t.Fatalf("recovered %d records from a segment with %d valid frames", len(rec.Records), len(segRecs))
		}
		for i, r := range rec.Records {
			if !bytes.Equal(r, segRecs[i]) {
				t.Fatalf("record %d = %q, segment frame is %q", i, r, segRecs[i])
			}
		}

		// Recovery must stop at the last valid record and leave the segment
		// appendable: the marker must survive a second recovery, behind
		// exactly the records of the first.
		marker := []byte("post-recovery-marker")
		lsn, err := s.Append(marker)
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s.Sync(lsn); err != nil {
			t.Fatalf("sync after recovery: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}

		s2, rec2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("second Open: %v", err)
		}
		defer s2.Close()
		if len(rec2.Records) != len(rec.Records)+1 {
			t.Fatalf("second recovery has %d records, want %d", len(rec2.Records), len(rec.Records)+1)
		}
		for i, r := range rec.Records {
			if !bytes.Equal(rec2.Records[i], r) {
				t.Fatalf("record %d changed across recoveries", i)
			}
		}
		if !bytes.Equal(rec2.Records[len(rec2.Records)-1], marker) {
			t.Fatalf("marker lost: last record is %q", rec2.Records[len(rec2.Records)-1])
		}
		if rec2.TornBytes != 0 {
			t.Fatalf("second recovery reports %d torn bytes after truncation", rec2.TornBytes)
		}
	})
}
