package wal

import (
	"os"
	"path/filepath"
	"testing"
)

func TestTableDirLayout(t *testing.T) {
	parent := t.TempDir()
	if dirs, err := TableDirs(parent); err != nil || dirs != nil {
		t.Fatalf("empty parent: dirs=%v err=%v", dirs, err)
	}
	if n, err := DetectLayout(parent); err != nil || n != 0 {
		t.Fatalf("empty parent layout: n=%d err=%v", n, err)
	}
	if n, err := DetectLayout(filepath.Join(parent, "missing")); err != nil || n != 0 {
		t.Fatalf("missing parent layout: n=%d err=%v", n, err)
	}

	flat := t.TempDir()
	os.WriteFile(filepath.Join(flat, walName(1)), []byte{}, 0o644)
	if n, err := DetectLayout(flat); err != nil || n != 1 {
		t.Fatalf("flat layout: n=%d err=%v", n, err)
	}

	// Two tables, created out of order, plus an unrelated dir and file.
	for _, i := range []int{1, 0} {
		if err := os.MkdirAll(TableDir(parent, i), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	os.MkdirAll(filepath.Join(parent, "not-a-table"), 0o755)
	os.WriteFile(filepath.Join(parent, "notes.txt"), []byte("x"), 0o644)

	dirs, err := TableDirs(parent)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{TableDir(parent, 0), TableDir(parent, 1)}
	if len(dirs) != 2 || dirs[0] != want[0] || dirs[1] != want[1] {
		t.Fatalf("TableDirs = %v, want %v", dirs, want)
	}
	if n, err := DetectLayout(parent); err != nil || n != 2 {
		t.Fatalf("sharded layout: n=%d err=%v", n, err)
	}
}

func TestDetectLayoutRejectsMixedAndGapped(t *testing.T) {
	mixed := t.TempDir()
	os.MkdirAll(TableDir(mixed, 0), 0o755)
	os.WriteFile(filepath.Join(mixed, walName(1)), []byte{}, 0o644)
	if _, err := DetectLayout(mixed); err == nil {
		t.Fatal("mixed flat+sharded layout accepted")
	}

	gapped := t.TempDir()
	os.MkdirAll(TableDir(gapped, 0), 0o755)
	os.MkdirAll(TableDir(gapped, 2), 0o755)
	if _, err := DetectLayout(gapped); err == nil {
		t.Fatal("gapped table indices accepted")
	}
}
