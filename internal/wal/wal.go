// Package wal is the crash-consistency substrate of the networked dining
// service: a checksummed, length-prefixed write-ahead log plus a snapshot
// store, which together move the service layer from crash-stop to
// crash-recovery. Callers append small self-describing records (the package
// never interprets payloads), group-commit them with a policy-controlled
// fsync discipline, and periodically cut a snapshot that bounds replay work.
//
// Durability model. Append only buffers; a background flusher writes batches
// and — under PolicyAlways — fsyncs them, so N concurrent appenders waiting
// on Sync share one fsync (group commit). Sync(lsn) blocks until record lsn
// is durable under the active policy: written and fsynced (PolicyAlways), or
// merely written with fsync left to the background cadence (PolicyInterval)
// or to the operating system (PolicyNever).
//
// Crash model. A crashed writer may leave a torn tail: a partially written
// frame, or garbage past the last flush. Recovery walks frames until the
// first one that is truncated, oversized, or fails its CRC, replays the
// valid prefix, and truncates the segment there — it never panics and never
// trusts bytes past the first invalid frame. Snapshots commit atomically by
// write-to-temp, fsync, rename, fsync-directory; a crash mid-snapshot leaves
// the previous generation intact and recovery falls back to it.
//
// Replay contract. A snapshot is cut by rotating to a fresh segment first
// and building the payload second, so the payload reflects every record of
// the older segments — but may also reflect a few records of the new one
// (appended between the cut and the build). Replay must therefore be
// idempotent: applying a record to state that already includes it must be a
// no-op. All lockproto journal records have this property.
package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Policy selects the fsync discipline.
type Policy int

const (
	// PolicyAlways: Sync returns only after the record is fsynced. Appends
	// are still batched — concurrent waiters share one fsync.
	PolicyAlways Policy = iota
	// PolicyInterval: records are fsynced on a background cadence; Sync
	// waits only for the write. A crash loses at most Interval of records.
	PolicyInterval
	// PolicyNever: the store never fsyncs; the OS page cache decides. A
	// machine crash can lose anything not yet written back.
	PolicyNever
)

// ParsePolicy maps the -fsync flag vocabulary onto a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return PolicyAlways, nil
	case "interval":
		return PolicyInterval, nil
	case "never":
		return PolicyNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (always|interval|never)", s)
}

func (p Policy) String() string {
	switch p {
	case PolicyAlways:
		return "always"
	case PolicyInterval:
		return "interval"
	default:
		return "never"
	}
}

// Options shapes a store.
type Options struct {
	Policy Policy
	// Interval is the background fsync cadence under PolicyInterval
	// (default 50ms).
	Interval time.Duration
	// OnSync, if set, observes every fsync the store issues: how many
	// records the call made durable (the group-commit batch) and how long
	// the fsync took. It is the store's registry hook — callers wire it to
	// their metrics instruments instead of the store keeping ad-hoc
	// counters. Called from whichever goroutine synced, sometimes with
	// store locks held: it must be cheap, concurrency-safe, and must not
	// call back into the store.
	OnSync func(records int64, d time.Duration)
}

// LSN identifies a record by its 1-based append position. LSNs are global
// across segment rotations.
type LSN int64

// Recovered is what Open found on disk.
type Recovered struct {
	Snapshot []byte   // latest valid snapshot payload; nil if none
	Records  [][]byte // valid records after that snapshot, in append order
	Gen      uint64   // generation of the chosen snapshot
	// TornBytes counts bytes dropped as unusable: the invalid tail of the
	// segment where replay stopped, plus any later segments that had to be
	// discarded because they sat past a corrupted one.
	TornBytes int64
	Segments  int // wal segments replayed (fully or partially)
}

// Store is a write-ahead log plus snapshot directory. Safe for concurrent
// use.
type Store struct {
	dir  string
	opts Options

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	gen      uint64 // active segment generation
	nextGen  uint64 // next rotation's generation (monotonic over stray files)
	lastSnap uint64 // newest committed snapshot generation
	pending  []byte // frames appended but not yet handed to the flusher
	appended LSN
	written  LSN
	durable  LSN
	inflight int // file I/O operations outside mu (flusher, interval sync)
	rotating bool
	closed   bool
	err      error // sticky I/O error; the store is dead once set

	flushDone chan struct{}
	stopSync  chan struct{}
}

// Open recovers the durable state under dir (creating it if needed) and
// returns a store appending after the last valid record. The active
// segment's torn tail, if any, is truncated on the spot.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if opts.Interval <= 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var snapGens, walGens []uint64
	var maxGen uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name)) // uncommitted snapshot attempt
			continue
		}
		prefix, g, ok := parseGen(name)
		if !ok {
			continue
		}
		if g > maxGen {
			maxGen = g
		}
		if prefix == "snap" {
			snapGens = append(snapGens, g)
		} else {
			walGens = append(walGens, g)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] }) // newest first
	sort.Slice(walGens, func(i, j int) bool { return walGens[i] < walGens[j] })    // oldest first

	rec := &Recovered{}
	// The newest snapshot that validates wins; a corrupt one (torn write
	// that somehow survived the rename discipline, or external damage) is
	// skipped in favor of its predecessor and set aside under a .corrupt
	// name — preserved for forensics, but out of the recovery path so the
	// next boot converges to a clean directory.
	for _, g := range snapGens {
		path := filepath.Join(dir, snapName(g))
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		if recs, _ := scanFrames(data); len(recs) > 0 {
			rec.Snapshot = recs[0]
			rec.Gen = g
			break
		}
		rec.TornBytes += int64(len(data))
		os.Rename(path, path+".corrupt")
	}

	s := &Store{dir: dir, opts: opts, gen: rec.Gen, nextGen: maxGen + 1,
		lastSnap: rec.Gen, flushDone: make(chan struct{}), stopSync: make(chan struct{})}
	s.cond = sync.NewCond(&s.mu)

	// Replay every segment at or after the snapshot generation, in order.
	// Only the last segment may legitimately have a torn tail (a crash mid
	// append); an invalid frame in an earlier segment means external
	// corruption, and everything past it — including whole later segments —
	// is untrusted and dropped so the append order stays consistent.
	active := rec.Gen
	activeValid := int64(0)
	corrupt := false
	for _, g := range walGens {
		if g < rec.Gen {
			continue
		}
		path := filepath.Join(dir, walName(g))
		if corrupt {
			if fi, err := os.Stat(path); err == nil {
				rec.TornBytes += fi.Size()
			}
			os.Remove(path)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, err
		}
		recs, valid := scanFrames(data)
		rec.Records = append(rec.Records, recs...)
		rec.Segments++
		active, activeValid = g, valid
		if torn := int64(len(data)) - valid; torn > 0 {
			rec.TornBytes += torn
			corrupt = true
		}
	}

	// Open (or create) the active segment for append, truncated to its
	// valid prefix.
	f, err := os.OpenFile(filepath.Join(dir, walName(active)), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if err := f.Truncate(activeValid); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(activeValid, 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	s.f = f
	s.gen = active
	if active >= s.nextGen {
		s.nextGen = active + 1
	}
	s.appended = LSN(len(rec.Records))
	s.written, s.durable = s.appended, s.appended

	go s.flusher()
	if opts.Policy == PolicyInterval {
		go s.syncLoop()
	}
	return s, rec, nil
}

// Append buffers one record and returns its LSN. The write happens on the
// flusher's schedule; pair with Sync for durability.
func (s *Store) Append(payload []byte) (LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, fmt.Errorf("wal: append on closed store")
	}
	s.pending = appendFrame(s.pending, payload)
	s.appended++
	s.cond.Broadcast()
	return s.appended, nil
}

// Appended returns the LSN of the most recently appended record. Sync to it
// for a full barrier.
func (s *Store) Appended() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appended
}

// Sync blocks until record lsn is durable under the store's policy:
// fsynced for PolicyAlways, written for the others.
func (s *Store) Sync(lsn LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.err != nil {
			return s.err
		}
		mark := s.written
		if s.opts.Policy == PolicyAlways {
			mark = s.durable
		}
		if mark >= lsn {
			return nil
		}
		if s.closed {
			return fmt.Errorf("wal: store closed before record %d was synced", lsn)
		}
		s.cond.Wait()
	}
}

// flusher is the single writer: it drains the pending buffer in batches and
// — under PolicyAlways — fsyncs each batch, waking every Sync waiter at
// once. One fsync therefore commits every record appended while the
// previous one was in flight: group commit.
func (s *Store) flusher() {
	defer close(s.flushDone)
	for {
		s.mu.Lock()
		for (len(s.pending) == 0 || s.rotating) && !s.closed && s.err == nil {
			s.cond.Wait()
		}
		if s.err != nil || (s.closed && len(s.pending) == 0) {
			s.mu.Unlock()
			return
		}
		buf, target, f, prevDurable := s.pending, s.appended, s.f, s.durable
		s.pending = nil
		s.inflight++
		s.mu.Unlock()

		_, werr := f.Write(buf)
		var serr error
		if werr == nil && s.opts.Policy == PolicyAlways {
			t0 := time.Now()
			serr = f.Sync()
			if serr == nil {
				s.observeSync(target-prevDurable, time.Since(t0))
			}
		}

		s.mu.Lock()
		s.inflight--
		switch {
		case werr != nil:
			s.err = werr
		case serr != nil:
			s.written = target
			s.err = serr
		default:
			s.written = target
			if s.opts.Policy == PolicyAlways {
				s.durable = target
			}
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// syncLoop is the PolicyInterval background fsync cadence.
func (s *Store) syncLoop() {
	tick := time.NewTicker(s.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-tick.C:
		}
		s.mu.Lock()
		if s.closed || s.err != nil || s.durable == s.written || s.rotating {
			s.mu.Unlock()
			continue
		}
		f, target, prevDurable := s.f, s.written, s.durable
		s.inflight++
		s.mu.Unlock()
		t0 := time.Now()
		err := f.Sync()
		if err == nil {
			s.observeSync(target-prevDurable, time.Since(t0))
		}
		s.mu.Lock()
		s.inflight--
		if err == nil && target > s.durable {
			s.durable = target
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// rotate cuts the log to a fresh segment: pending records drain to the old
// file (fsynced unless PolicyNever), and every later append lands in the
// new one. Returns the new generation.
func (s *Store) rotate() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	if s.closed {
		return 0, fmt.Errorf("wal: rotate on closed store")
	}
	s.rotating = true
	defer func() {
		s.rotating = false
		s.cond.Broadcast()
	}()
	for s.inflight > 0 {
		s.cond.Wait()
	}
	// Drain what the flusher has not picked up; records appended during the
	// waits above are included — they precede the snapshot build that
	// follows a rotate, so the old segment plus the snapshot covers them.
	if len(s.pending) > 0 {
		if _, err := s.f.Write(s.pending); err != nil {
			s.err = err
			return 0, err
		}
		s.pending = nil
		s.written = s.appended
	}
	if s.opts.Policy != PolicyNever {
		prevDurable := s.durable
		t0 := time.Now()
		if err := s.f.Sync(); err != nil {
			s.err = err
			return 0, err
		}
		s.observeSync(s.written-prevDurable, time.Since(t0))
		s.durable = s.written
	}
	gen := s.nextGen
	f, err := os.OpenFile(filepath.Join(s.dir, walName(gen)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		s.err = err
		return 0, err
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		s.err = err
		return 0, err
	}
	s.f.Close()
	s.f = f
	s.gen = gen
	s.nextGen = gen + 1
	return gen, nil
}

// Snapshot cuts the log and installs a new snapshot generation: rotate to a
// fresh segment, then call build for the payload. Because the payload is
// built after the cut, it covers every record of the older segments (and
// possibly a few of the new one — see the package comment on replay
// idempotency). The snapshot commits atomically via rename; generations
// older than the previous snapshot are pruned afterwards.
func (s *Store) Snapshot(build func() []byte) error {
	gen, err := s.rotate()
	if err != nil {
		return err
	}
	payload := build()

	tmp := filepath.Join(s.dir, snapName(gen)+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return s.fail(err)
	}
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return s.fail(err)
	}
	if err := f.Close(); err != nil {
		return s.fail(err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapName(gen))); err != nil {
		return s.fail(err)
	}
	if err := syncDir(s.dir); err != nil {
		return s.fail(err)
	}

	s.mu.Lock()
	keep := s.lastSnap // retain one previous snapshot generation as a fallback
	s.lastSnap = gen
	s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil // pruning is best-effort; the snapshot is committed
	}
	for _, e := range entries {
		if _, g, ok := parseGen(e.Name()); ok && g < keep {
			os.Remove(filepath.Join(s.dir, e.Name()))
		}
	}
	return nil
}

// fail records a sticky error.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	return err
}

// Close drains pending records, fsyncs (unless PolicyNever), and closes the
// active segment. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		err := s.err
		s.mu.Unlock()
		return err
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.stopSync)
	<-s.flushDone

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil && s.opts.Policy != PolicyNever {
		prevDurable := s.durable
		t0 := time.Now()
		if err := s.f.Sync(); err != nil {
			s.err = err
		} else {
			s.observeSync(s.written-prevDurable, time.Since(t0))
			s.durable = s.written
		}
	}
	if cerr := s.f.Close(); cerr != nil && s.err == nil {
		s.err = cerr
	}
	s.cond.Broadcast()
	return s.err
}

// observeSync forwards one completed fsync to the OnSync hook, if any:
// records is the group-commit batch the call made durable (0 when the store
// re-synced an already-durable tail, e.g. at rotate or close).
func (s *Store) observeSync(records LSN, d time.Duration) {
	if s.opts.OnSync != nil {
		s.opts.OnSync(int64(records), d)
	}
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
