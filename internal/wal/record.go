package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk framing: every record — WAL entries and snapshot payloads alike —
// is one frame of
//
//	| length uint32 LE | crc32c(payload) uint32 LE | payload |
//
// The CRC is Castagnoli (the polynomial with hardware support on both amd64
// and arm64), computed over the payload only; the length field is validated
// by bounds instead. A reader walks frames until the bytes run out or a
// frame fails validation — everything from that point on is the torn tail a
// crashed writer may leave, and recovery truncates it rather than guess.

const (
	headerSize = 8
	// maxRecord bounds a single record. A length field beyond it is treated
	// as corruption, which stops a flipped length byte from swallowing the
	// rest of the segment as one giant bogus record.
	maxRecord = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendFrame appends the frame encoding of payload to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// frameSize is the encoded size of a payload of n bytes.
func frameSize(n int) int64 { return int64(headerSize + n) }

// scanFrames walks the frames of one segment and returns the decoded
// payloads plus the byte length of the valid prefix. Scanning stops — never
// errors — at the first frame that is truncated, oversized, or fails its
// CRC: that boundary is where recovery truncates. Payloads alias data.
func scanFrames(data []byte) (recs [][]byte, valid int64) {
	off := int64(0)
	for int64(len(data))-off >= headerSize {
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		if n > maxRecord || off+headerSize+n > int64(len(data)) {
			break
		}
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		payload := data[off+headerSize : off+headerSize+n]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		recs = append(recs, payload)
		off += headerSize + n
	}
	return recs, off
}

// segment file naming: wal-<gen> holds the records appended after snapshot
// generation <gen> was cut; snap-<gen> is that generation's snapshot (one
// frame). Generation numbers are zero-padded so lexical order is numeric
// order.

func walName(gen uint64) string  { return fmt.Sprintf("wal-%016d", gen) }
func snapName(gen uint64) string { return fmt.Sprintf("snap-%016d", gen) }

// parseGen extracts the generation from a wal-/snap- file name; ok is false
// for anything else (tmp files, strays).
func parseGen(name string) (prefix string, gen uint64, ok bool) {
	var g uint64
	if n, err := fmt.Sscanf(name, "wal-%016d", &g); err == nil && n == 1 && name == walName(g) {
		return "wal", g, true
	}
	if n, err := fmt.Sscanf(name, "snap-%016d", &g); err == nil && n == 1 && name == snapName(g) {
		return "snap", g, true
	}
	return "", 0, false
}
