package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	s, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s, rec
}

func appendT(t *testing.T, s *Store, payload string) LSN {
	t.Helper()
	lsn, err := s.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return lsn
}

func wantRecords(t *testing.T, got [][]byte, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d (%q)", len(got), len(want), want)
	}
	for i := range want {
		if string(got[i]) != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// activeSegment returns the path of the newest wal segment in dir.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	best := ""
	var bestGen uint64
	for _, e := range entries {
		if prefix, g, ok := parseGen(e.Name()); ok && prefix == "wal" && (best == "" || g > bestGen) {
			best, bestGen = e.Name(), g
		}
	}
	if best == "" {
		t.Fatal("no wal segment found")
	}
	return filepath.Join(dir, best)
}

func TestRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s, rec := openT(t, dir, Options{})
	if rec.Snapshot != nil || len(rec.Records) != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendT(t, s, "a")
	appendT(t, s, "b")
	lsn := appendT(t, s, "c")
	if err := s.Sync(lsn); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rec2 := openT(t, dir, Options{})
	defer s2.Close()
	wantRecords(t, rec2.Records, "a", "b", "c")
	if rec2.TornBytes != 0 {
		t.Errorf("clean log reports %d torn bytes", rec2.TornBytes)
	}
}

func TestTornTailTruncatedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "one")
	appendT(t, s, "two")
	s.Close()

	// A crashed writer's torn tail: garbage past the last complete frame.
	f, err := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()

	s2, rec := openT(t, dir, Options{})
	wantRecords(t, rec.Records, "one", "two")
	if rec.TornBytes != 5 {
		t.Errorf("TornBytes = %d, want 5", rec.TornBytes)
	}
	// The tail was truncated, so the segment must be cleanly appendable.
	appendT(t, s2, "three")
	s2.Close()

	s3, rec3 := openT(t, dir, Options{})
	defer s3.Close()
	wantRecords(t, rec3.Records, "one", "two", "three")
	if rec3.TornBytes != 0 {
		t.Errorf("second recovery still reports %d torn bytes", rec3.TornBytes)
	}
}

func TestMidFrameTruncation(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "first")
	appendT(t, s, "second")
	s.Close()

	path := activeSegment(t, dir)
	fi, _ := os.Stat(path)
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	wantRecords(t, rec.Records, "first")
	if rec.TornBytes == 0 {
		t.Error("truncated frame not reported as torn")
	}
}

func TestBitFlipStopsReplay(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "aaaa")
	appendT(t, s, "bbbb")
	appendT(t, s, "cccc")
	s.Close()

	path := activeSegment(t, dir)
	data, _ := os.ReadFile(path)
	data[int(frameSize(4))+headerSize+1] ^= 0x40 // payload byte of record 2
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	// Replay must stop at the damaged record: nothing past it is trusted.
	wantRecords(t, rec.Records, "aaaa")
	if want := 2 * frameSize(4); rec.TornBytes != want {
		t.Errorf("TornBytes = %d, want %d", rec.TornBytes, want)
	}
}

func TestSnapshotCutAndFallback(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "pre1")
	appendT(t, s, "pre2")
	if err := s.Snapshot(func() []byte { return []byte("SNAP1") }); err != nil {
		t.Fatal(err)
	}
	appendT(t, s, "post1")
	if err := s.Snapshot(func() []byte { return []byte("SNAP2") }); err != nil {
		t.Fatal(err)
	}
	appendT(t, s, "post2")
	s.Close()

	s2, rec := openT(t, dir, Options{})
	if string(rec.Snapshot) != "SNAP2" {
		t.Fatalf("snapshot = %q, want SNAP2", rec.Snapshot)
	}
	wantRecords(t, rec.Records, "post2")
	s2.Close()

	// Simulate a crash that destroyed the newest snapshot: recovery must
	// fall back to the previous generation and replay both segments.
	var snap2 string
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if prefix, g, ok := parseGen(e.Name()); ok && prefix == "snap" && g == rec.Gen {
			snap2 = e.Name()
		}
	}
	if snap2 == "" {
		t.Fatal("newest snapshot file not found")
	}
	if err := os.Remove(filepath.Join(dir, snap2)); err != nil {
		t.Fatal(err)
	}
	s3, rec3 := openT(t, dir, Options{})
	defer s3.Close()
	if string(rec3.Snapshot) != "SNAP1" {
		t.Fatalf("fallback snapshot = %q, want SNAP1", rec3.Snapshot)
	}
	wantRecords(t, rec3.Records, "post1", "post2")
}

func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "r1")
	if err := s.Snapshot(func() []byte { return []byte("GOOD") }); err != nil {
		t.Fatal(err)
	}
	appendT(t, s, "r2")
	if err := s.Snapshot(func() []byte { return []byte("BAD") }); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Damage the newest snapshot's payload so its CRC fails.
	entries, _ := os.ReadDir(dir)
	var newest string
	var newestGen uint64
	for _, e := range entries {
		if prefix, g, ok := parseGen(e.Name()); ok && prefix == "snap" && g >= newestGen {
			newest, newestGen = e.Name(), g
		}
	}
	path := filepath.Join(dir, newest)
	data, _ := os.ReadFile(path)
	data[headerSize] ^= 0xff
	os.WriteFile(path, data, 0o644)

	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	if string(rec.Snapshot) != "GOOD" {
		t.Fatalf("snapshot = %q, want the GOOD fallback", rec.Snapshot)
	}
	wantRecords(t, rec.Records, "r2")
	if rec.TornBytes == 0 {
		t.Error("corrupt snapshot not counted as torn bytes")
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Policy: PolicyAlways})
	const workers, each = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := s.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if err := s.Sync(lsn); err != nil {
					t.Errorf("sync: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Close()

	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	if len(rec.Records) != workers*each {
		t.Fatalf("recovered %d records, want %d", len(rec.Records), workers*each)
	}
	seen := make(map[string]bool)
	for _, r := range rec.Records {
		seen[string(r)] = true
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < each; i++ {
			if !seen[fmt.Sprintf("w%d-%d", w, i)] {
				t.Fatalf("record w%d-%d lost", w, i)
			}
		}
	}
}

func TestIntervalPolicySyncs(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{Policy: PolicyInterval, Interval: 5 * time.Millisecond})
	lsn := appendT(t, s, "x")
	if err := s.Sync(lsn); err != nil { // waits for the write only
		t.Fatal(err)
	}
	// The background cadence must advance durability without Close's help.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		d := s.durable
		s.mu.Unlock()
		if d >= lsn {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval fsync never advanced durability")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.Close()
}

func TestInspectMatchesRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := openT(t, dir, Options{})
	appendT(t, s, "k1")
	s.Snapshot(func() []byte { return []byte("S") })
	appendT(t, s, "k2")
	appendT(t, s, "k3")
	s.Close()
	// Torn tail on the active segment.
	f, _ := os.OpenFile(activeSegment(t, dir), os.O_WRONLY|os.O_APPEND, 0)
	f.Write(bytes.Repeat([]byte{0x7}, 11))
	f.Close()

	rep, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Valid() {
		t.Error("corrupted dir inspected as valid")
	}
	if string(rep.Snapshot) != "S" {
		t.Errorf("inspect snapshot = %q", rep.Snapshot)
	}
	wantRecords(t, rep.Records, "k2", "k3")
	if rep.TornBytes != 11 {
		t.Errorf("inspect TornBytes = %d, want 11", rep.TornBytes)
	}

	// Open must agree with Inspect on what survives.
	s2, rec := openT(t, dir, Options{})
	defer s2.Close()
	wantRecords(t, rec.Records, "k2", "k3")
	if rec.TornBytes != 11 {
		t.Errorf("recovery TornBytes = %d, want 11", rec.TornBytes)
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{"always": PolicyAlways, "interval": PolicyInterval, "never": PolicyNever} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Error("bogus policy accepted")
	}
}
