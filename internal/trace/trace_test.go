package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func rec(t sim.Time, p sim.ProcID, kind, inst, note string, peer sim.ProcID) sim.Record {
	return sim.Record{T: t, P: p, Kind: kind, Inst: inst, Note: note, Peer: peer}
}

func TestSessionsBasic(t *testing.T) {
	l := &Log{}
	l.Trace(rec(10, 1, KindState, "tbl", "hungry", -1))
	l.Trace(rec(20, 1, KindState, "tbl", "eating", -1))
	l.Trace(rec(30, 1, KindState, "tbl", "exiting", -1))
	l.Trace(rec(35, 1, KindState, "tbl", "thinking", -1))
	l.Trace(rec(50, 1, KindState, "tbl", "eating", -1)) // reopened, never closed

	eat := l.Sessions("eating")
	ivs := eat[SessionKey{Inst: "tbl", P: 1}]
	if len(ivs) != 2 {
		t.Fatalf("got %d eating sessions, want 2", len(ivs))
	}
	if ivs[0].Start != 20 || ivs[0].End != 30 {
		t.Fatalf("first session %v", ivs[0])
	}
	if ivs[1].Start != 50 || ivs[1].Closed() {
		t.Fatalf("second session should be open: %v", ivs[1])
	}

	hungry := l.Sessions("hungry")
	hiv := hungry[SessionKey{Inst: "tbl", P: 1}]
	if len(hiv) != 1 || hiv[0].Start != 10 || hiv[0].End != 20 {
		t.Fatalf("hungry sessions: %v", hiv)
	}
}

func TestSessionsSeparateInstances(t *testing.T) {
	l := &Log{}
	l.Trace(rec(10, 1, KindState, "a", "eating", -1))
	l.Trace(rec(20, 1, KindState, "b", "eating", -1))
	l.Trace(rec(30, 1, KindState, "a", "exiting", -1))
	eat := l.Sessions("eating")
	if len(eat[SessionKey{"a", 1}]) != 1 || len(eat[SessionKey{"b", 1}]) != 1 {
		t.Fatalf("instances mixed up: %v", eat)
	}
	if eat[SessionKey{"b", 1}][0].Closed() {
		t.Fatal("instance b session should still be open")
	}
}

func TestSuspicions(t *testing.T) {
	l := &Log{}
	l.Trace(rec(5, 0, KindSuspect, "xp", "", 1))
	l.Trace(rec(9, 0, KindTrust, "xp", "", 1))
	l.Trace(rec(12, 0, KindSuspect, "other", "", 1))
	s := l.Suspicions()
	ch := s[SuspicionKey{Inst: "xp", P: 0, Peer: 1}]
	if len(ch) != 2 || !ch[0].Suspect || ch[1].Suspect {
		t.Fatalf("changes: %v", ch)
	}
	if len(s[SuspicionKey{Inst: "other", P: 0, Peer: 1}]) != 1 {
		t.Fatal("other instance missing")
	}
}

func TestCrashTimesFirstWins(t *testing.T) {
	l := &Log{}
	l.Trace(rec(100, 2, KindCrash, "", "", -1))
	l.Trace(rec(200, 2, KindCrash, "", "", -1)) // duplicate must not override
	ct := l.CrashTimes()
	if ct[2] != 100 {
		t.Fatalf("crash time %d, want 100", ct[2])
	}
}

func TestOverlaps(t *testing.T) {
	h := sim.Time(1000)
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 10}, Interval{10, 20}, false}, // touching half-open
		{Interval{0, 10}, Interval{9, 20}, true},
		{Interval{0, sim.Never}, Interval{999, sim.Never}, true},
		{Interval{5, 6}, Interval{7, 8}, false},
		{Interval{7, 8}, Interval{5, 6}, false},
		{Interval{0, sim.Never}, Interval{0, 1}, true},
	}
	for i, c := range cases {
		if got := c.a.Overlaps(c.b, h); got != c.want {
			t.Errorf("case %d: %v vs %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a, h); got != c.want {
			t.Errorf("case %d: overlap not symmetric", i)
		}
	}
}

// TestOverlapsSymmetryProperty: overlap is symmetric for arbitrary
// intervals.
func TestOverlapsSymmetryProperty(t *testing.T) {
	prop := func(s1, e1, s2, e2 int16) bool {
		a := Interval{Start: sim.Time(s1), End: sim.Time(e1)}
		b := Interval{Start: sim.Time(s2), End: sim.Time(e2)}
		return a.Overlaps(b, 1<<14) == b.Overlaps(a, 1<<14)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestFilter(t *testing.T) {
	l := &Log{}
	l.Trace(rec(1, 0, "a", "i1", "", -1))
	l.Trace(rec(2, 1, "a", "i2", "", -1))
	l.Trace(rec(3, 0, "b", "i1", "", -1))
	if n := len(l.Filter(sim.Record{Kind: "a", P: -1, Peer: -1})); n != 2 {
		t.Fatalf("kind filter: %d", n)
	}
	if n := len(l.Filter(sim.Record{Kind: "", P: 0, Peer: -1})); n != 2 {
		t.Fatalf("proc filter: %d", n)
	}
	if n := len(l.Filter(sim.Record{Kind: "a", P: 0, Peer: -1, Inst: "i1"})); n != 1 {
		t.Fatalf("combined filter: %d", n)
	}
}

func TestInstances(t *testing.T) {
	l := &Log{}
	l.Trace(rec(1, 0, KindState, "b", "eating", -1))
	l.Trace(rec(2, 0, KindState, "a", "eating", -1))
	l.Trace(rec(3, 0, KindSuspect, "xp", "", 1))
	got := l.Instances(KindState)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("instances: %v", got)
	}
	if len(l.Instances("")) != 3 {
		t.Fatalf("all instances: %v", l.Instances(""))
	}
}

func TestTimelineRendersBars(t *testing.T) {
	rows := []TimelineRow{
		{Label: "w0", Intervals: []Interval{{Start: 0, End: 50}}},
		{Label: "s0", Intervals: []Interval{{Start: 50, End: sim.Never}}},
	}
	out := Timeline(rows, 0, 100, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("timeline lines: %d\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "#") || !strings.Contains(lines[1], "#") {
		t.Fatalf("missing bars:\n%s", out)
	}
	// w0's bar must be in the left half, s0's in the right half.
	if strings.Index(lines[0], "#") > strings.Index(lines[1], "#") {
		t.Fatalf("bars misplaced:\n%s", out)
	}
}
