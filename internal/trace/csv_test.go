package trace

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// TestCSVRoundTrip: write-then-read preserves every record, including ones
// with commas, quotes and unicode in free-form fields (property-based).
func TestCSVRoundTrip(t *testing.T) {
	prop := func(ts []int16, notes []string) bool {
		l := &Log{}
		for i, tt := range ts {
			note := ""
			if i < len(notes) {
				note = notes[i]
			}
			if strings.ContainsAny(note, "\r") {
				note = strings.ReplaceAll(note, "\r", "")
			}
			l.Trace(sim.Record{
				T: sim.Time(tt), Seq: int64(i), P: sim.ProcID(i % 5),
				Kind: "state", Peer: -1, Inst: "a,b\"c", Note: note,
			})
		}
		var buf bytes.Buffer
		if err := l.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return fmt.Sprint(got.Records) == fmt.Sprint(l.Records)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVEmpty(t *testing.T) {
	l := &Log{}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil || got.Len() != 0 {
		t.Fatalf("empty round trip: %v %d", err, got.Len())
	}
}

func TestCSVMalformed(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("t,seq,proc,kind,peer,inst,note\nx,0,0,k,0,i,n\n")); err == nil {
		t.Fatal("malformed time accepted")
	}
}

// TestSessionsProperties: for random state-change sequences, the extracted
// sessions per key are disjoint, ordered, and within the observed time
// range, and at most one is open.
func TestSessionsProperties(t *testing.T) {
	states := []string{"thinking", "hungry", "eating", "exiting"}
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%100) + 2
		l := &Log{}
		tm := sim.Time(0)
		for i := 0; i < n; i++ {
			tm += sim.Time(1 + rng.Intn(20))
			l.Trace(sim.Record{
				T: tm, Seq: int64(i), P: sim.ProcID(rng.Intn(3)),
				Kind: KindState, Peer: -1,
				Inst: []string{"a", "b"}[rng.Intn(2)],
				Note: states[rng.Intn(len(states))],
			})
		}
		for _, state := range states {
			for key, ivs := range l.Sessions(state) {
				_ = key
				open := 0
				for i, iv := range ivs {
					if !iv.Closed() {
						open++
						continue
					}
					if iv.End <= iv.Start {
						return false
					}
					if i > 0 && ivs[i-1].Closed() && ivs[i-1].End > iv.Start {
						return false // overlap or disorder
					}
				}
				if open > 1 {
					return false
				}
				if open == 1 && !ivs[len(ivs)-1].Closed() == false {
					return false // the open one must be last
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
