// Package trace collects and analyzes run traces. A Log implements
// sim.Tracer; checkers and experiment harnesses reconstruct dining sessions,
// suspicion histories and crash times from the record stream alone, so every
// verified property is a property of an actual run, not of internal state.
package trace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Well-known record kinds emitted by the protocol modules in this module.
const (
	KindState   = "state"   // dining state change: Inst=table, Note=state name
	KindSuspect = "suspect" // oracle output change: Inst=oracle, Peer=target
	KindTrust   = "trust"   // oracle output change: Inst=oracle, Peer=target
	KindCrash   = "crash"   // process crash (emitted by the kernel)
	KindRecover = "recover" // process restart after a crash (live runtime)
	KindMark    = "mark"    // free-form module annotations
)

// Log is an append-only run trace. The zero value is ready to use.
type Log struct {
	Records []sim.Record
}

// Trace implements sim.Tracer.
func (l *Log) Trace(r sim.Record) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.Records) }

// Filter returns the records matching every non-zero criterion of want:
// Kind (if non-empty), P (if >= 0), Peer (if >= 0), Inst (if non-empty).
func (l *Log) Filter(want sim.Record) []sim.Record {
	var out []sim.Record
	for _, r := range l.Records {
		if want.Kind != "" && r.Kind != want.Kind {
			continue
		}
		if want.P >= 0 && r.P != want.P {
			continue
		}
		if want.Peer >= 0 && r.Peer != want.Peer {
			continue
		}
		if want.Inst != "" && r.Inst != want.Inst {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Hash returns an order-sensitive FNV-1a digest of the full record stream.
// Two runs of the same (program, topology, fault plan, delay policy, seed)
// must produce equal hashes — the determinism contract the chaos engine's
// replayable repro artifacts depend on.
func (l *Log) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for _, r := range l.Records {
		word(int64(r.T))
		word(r.Seq)
		word(int64(r.P))
		word(int64(r.Peer))
		h.Write([]byte(r.Kind))
		h.Write([]byte{0})
		h.Write([]byte(r.Inst))
		h.Write([]byte{0})
		h.Write([]byte(r.Note))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// CrashTimes returns the first crash time of every process that ever
// crashed, whether or not it later recovered. Liveness checkers use this to
// exempt ever-crashed processes from progress obligations (conservative
// under recovery); safety checkers needing the full down-time structure use
// DeadIntervals instead.
func (l *Log) CrashTimes() map[sim.ProcID]sim.Time {
	out := make(map[sim.ProcID]sim.Time)
	for _, r := range l.Records {
		if r.Kind == KindCrash {
			if _, dup := out[r.P]; !dup {
				out[r.P] = r.T
			}
		}
	}
	return out
}

// DeadIntervals returns, per process, its down-time eras: each [crash,
// recover) pair becomes a closed interval, and a crash never followed by a
// recover yields an open interval (End == sim.Never).
func (l *Log) DeadIntervals() map[sim.ProcID][]Interval {
	open := make(map[sim.ProcID]sim.Time)
	out := make(map[sim.ProcID][]Interval)
	for _, r := range l.Records {
		switch r.Kind {
		case KindCrash:
			if _, isOpen := open[r.P]; !isOpen {
				open[r.P] = r.T
			}
		case KindRecover:
			if s, isOpen := open[r.P]; isOpen {
				delete(open, r.P)
				out[r.P] = append(out[r.P], Interval{Start: s, End: r.T})
			}
		}
	}
	for p, s := range open {
		out[p] = append(out[p], Interval{Start: s, End: sim.Never})
	}
	return out
}

// Interval is a half-open time interval [Start, End). End == sim.Never means
// the interval was still open when the run stopped.
type Interval struct {
	Start, End sim.Time
}

// Closed reports whether the interval ended before the run stopped.
func (iv Interval) Closed() bool { return iv.End != sim.Never }

// Overlaps reports whether two intervals intersect, treating open ends as
// extending to horizon.
func (iv Interval) Overlaps(other Interval, horizon sim.Time) bool {
	aEnd, bEnd := iv.End, other.End
	if aEnd == sim.Never {
		aEnd = horizon
	}
	if bEnd == sim.Never {
		bEnd = horizon
	}
	return iv.Start < bEnd && other.Start < aEnd
}

// SessionKey identifies one diner within one table instance.
type SessionKey struct {
	Inst string
	P    sim.ProcID
}

// Sessions extracts, for every (table instance, diner), its intervals in the
// given dining state (e.g. "eating" or "hungry"), in start-time order. A
// crash ends every open session of the crashed process: the dead incarnation
// is no longer in any dining phase, and a restarted one re-announces its
// state from scratch.
func (l *Log) Sessions(state string) map[SessionKey][]Interval {
	open := make(map[SessionKey]sim.Time)
	out := make(map[SessionKey][]Interval)
	for _, r := range l.Records {
		if r.Kind == KindCrash {
			for k, s := range open {
				if k.P == r.P {
					delete(open, k)
					out[k] = append(out[k], Interval{Start: s, End: r.T})
				}
			}
			continue
		}
		if r.Kind != KindState {
			continue
		}
		k := SessionKey{Inst: r.Inst, P: r.P}
		if r.Note == state {
			if _, isOpen := open[k]; !isOpen {
				open[k] = r.T
			}
			continue
		}
		if s, isOpen := open[k]; isOpen {
			delete(open, k)
			out[k] = append(out[k], Interval{Start: s, End: r.T})
		}
	}
	for k, s := range open {
		out[k] = append(out[k], Interval{Start: s, End: sim.Never})
	}
	return out
}

// SuspicionKey identifies one monitor-target pair of one oracle instance.
type SuspicionKey struct {
	Inst string
	P    sim.ProcID // the monitor
	Peer sim.ProcID // the monitored target
}

// SuspicionChange is one output transition of a failure detector module.
type SuspicionChange struct {
	T       sim.Time
	Suspect bool
}

// Suspicions extracts, for every (oracle instance, monitor, target), the
// time-ordered sequence of output changes.
func (l *Log) Suspicions() map[SuspicionKey][]SuspicionChange {
	out := make(map[SuspicionKey][]SuspicionChange)
	for _, r := range l.Records {
		if r.Kind != KindSuspect && r.Kind != KindTrust {
			continue
		}
		k := SuspicionKey{Inst: r.Inst, P: r.P, Peer: r.Peer}
		out[k] = append(out[k], SuspicionChange{T: r.T, Suspect: r.Kind == KindSuspect})
	}
	return out
}

// Instances returns the sorted set of instance names appearing in records of
// the given kind ("" for all kinds).
func (l *Log) Instances(kind string) []string {
	set := make(map[string]bool)
	for _, r := range l.Records {
		if kind != "" && r.Kind != kind {
			continue
		}
		if r.Inst != "" {
			set[r.Inst] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Timeline renders an ASCII Gantt chart of the given labeled interval rows
// between t0 and t1, with the given number of columns. It reproduces the
// shape of the paper's Figure 1 (witness/subject eating sessions and the
// subjects' overlap hand-off) from a real run.
func Timeline(rows []TimelineRow, t0, t1 sim.Time, cols int) string {
	if cols < 10 {
		cols = 10
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	span := float64(t1 - t0)
	var b strings.Builder
	width := 0
	for _, r := range rows {
		if len(r.Label) > width {
			width = len(r.Label)
		}
	}
	for _, r := range rows {
		cells := make([]byte, cols)
		for i := range cells {
			cells[i] = '.'
		}
		for _, iv := range r.Intervals {
			end := iv.End
			if end == sim.Never {
				end = t1
			}
			if end < t0 || iv.Start > t1 {
				continue
			}
			lo := int(float64(max(iv.Start, t0)-t0) / span * float64(cols))
			hi := int(float64(min(end, t1)-t0) / span * float64(cols))
			if hi >= cols {
				hi = cols - 1
			}
			for i := lo; i <= hi && i >= 0; i++ {
				cells[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|\n", width, r.Label, string(cells))
	}
	fmt.Fprintf(&b, "%-*s  t=%d%*s t=%d\n", width, "", t0, cols-len(fmt.Sprint(t0))-3, "", t1)
	return b.String()
}

// TimelineRow is one labeled row of a Timeline chart.
type TimelineRow struct {
	Label     string
	Intervals []Interval
}
