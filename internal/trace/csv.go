package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// WriteCSV streams the log's records as CSV (header + one row per record),
// for offline analysis or plotting. Columns: t, seq, proc, kind, peer,
// inst, note.
func (l *Log) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "seq", "proc", "kind", "peer", "inst", "note"}); err != nil {
		return err
	}
	for _, r := range l.Records {
		row := []string{
			strconv.FormatInt(int64(r.T), 10),
			strconv.FormatInt(r.Seq, 10),
			strconv.Itoa(int(r.P)),
			r.Kind,
			strconv.Itoa(int(r.Peer)),
			r.Inst,
			r.Note,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a log previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return &Log{}, nil
	}
	l := &Log{}
	for i, row := range rows[1:] {
		if len(row) != 7 {
			return nil, fmt.Errorf("trace: row %d has %d columns", i+2, len(row))
		}
		t, err1 := strconv.ParseInt(row[0], 10, 64)
		seq, err2 := strconv.ParseInt(row[1], 10, 64)
		p, err3 := strconv.Atoi(row[2])
		peer, err4 := strconv.Atoi(row[4])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, fmt.Errorf("trace: row %d has malformed numbers", i+2)
		}
		l.Records = append(l.Records, sim.Record{
			T: sim.Time(t), Seq: seq, P: sim.ProcID(p),
			Kind: row[3], Peer: sim.ProcID(peer), Inst: row[5], Note: row[6],
		})
	}
	return l, nil
}
