package chaos

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
)

// Repro is a minimized, replayable counterexample: the smallest spec the
// shrinker could find that still fails in the same category as the original
// run, serialized as a JSON artifact. TestReplayRepros replays every
// artifact under testdata/ and asserts the violation still reproduces, so a
// committed repro is a permanent regression test.
type Repro struct {
	Spec       Spec   `json:"spec"`
	Category   string `json:"category"`
	Violation  string `json:"violation"`
	ShrinkRuns int    `json:"shrink_runs"` // candidate executions the shrinker spent
}

// maxShrinkRuns caps the shrinker's total candidate executions; delta
// debugging is heuristic and a near-minimal repro beats an unbounded search.
const maxShrinkRuns = 200

// Shrink delta-debugs a failing spec to a minimal reproducer: drop crashes,
// shorten the horizon, simplify the delay policy, and bisect crash trigger
// times — accepting a candidate only if a fresh execution fails in the same
// category. It returns an error if the spec does not fail to begin with.
func Shrink(spec Spec) (*Repro, error) {
	base := Execute(spec)
	if !base.Failed() {
		return nil, fmt.Errorf("chaos: spec %s does not fail; nothing to shrink", spec.ID())
	}
	cat := base.Category
	cur := spec
	runs := 0
	// reproduces reports whether cand still fails in the original category,
	// within the run cap (a blown cap conservatively rejects the candidate).
	reproduces := func(cand Spec) bool {
		if runs >= maxShrinkRuns {
			return false
		}
		runs++
		return Execute(cand).Category == cat
	}

	for changed := true; changed && runs < maxShrinkRuns; {
		changed = false

		// 1. Drop crashes: all at once if possible, else one at a time.
		if len(cur.Crashes) > 0 {
			cand := cur
			cand.Crashes = nil
			if reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		for i := 0; i < len(cur.Crashes); i++ {
			cand := cur
			cand.Crashes = append(append([]CrashSpec{}, cur.Crashes[:i]...), cur.Crashes[i+1:]...)
			if reproduces(cand) {
				cur = cand
				changed = true
				i--
			}
		}

		// 1b. Minimize link faults: no links at all, then no transport, then
		// peel features off the surviving LinkSpec — windows one at a time,
		// duplication, reordering, and finally halve the drop rate while the
		// failure survives. A repro that still fails over reliable channels
		// should say so.
		if cur.Links != nil {
			cand := cur
			cand.Links = nil
			if reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		if cur.Links == nil && cur.Transport {
			cand := cur
			cand.Transport = false
			if reproduces(cand) {
				cur = cand
				changed = true
			}
		}
		if l := cur.Links; l != nil {
			for i := 0; i < len(l.Windows); i++ {
				cand := cur
				cl := *l
				cl.Windows = append(append([]WindowSpec{}, l.Windows[:i]...), l.Windows[i+1:]...)
				cand.Links = &cl
				if reproduces(cand) {
					cur = cand
					l = cur.Links
					changed = true
					i--
				}
			}
			for _, strip := range []func(*LinkSpec) bool{
				func(s *LinkSpec) bool { ok := s.Dup > 0; s.Dup = 0; return ok },
				func(s *LinkSpec) bool { ok := s.Reorder > 0; s.Reorder = 0; return ok },
				func(s *LinkSpec) bool { ok := s.Drop > 0.01; s.Drop /= 2; return ok },
			} {
				cl := *cur.Links
				cl.Windows = append([]WindowSpec{}, cur.Links.Windows...)
				if !strip(&cl) {
					continue
				}
				cand := cur
				cand.Links = &cl
				if reproduces(cand) {
					cur = cand
					changed = true
				}
			}
		}

		// 2. Shorten the horizon geometrically.
		for cur.Horizon/2 >= 1000 {
			cand := cur
			cand.Horizon = cur.Horizon / 2
			if !reproduces(cand) {
				break
			}
			cur = cand
			changed = true
		}

		// 3. Simplify the delay policy, simplest first. A failure that
		// survives under a fixed delay needs no temporal adversary at all.
		for _, d := range []DelaySpec{
			{Kind: "fixed", Delay: 4},
			{Kind: "uniform", Min: 1, Max: 8},
		} {
			if cur.Delay == d {
				break // already at (or below) this rung
			}
			cand := cur
			cand.Delay = d
			if reproduces(cand) {
				cur = cand
				changed = true
				break
			}
		}

		// 4. Bisect timed-crash trigger times toward 0 and drop state-trigger
		// skips: the earliest (simplest) strike that still reproduces.
		for i := range cur.Crashes {
			c := cur.Crashes[i]
			if c.When != "" {
				if c.Skip > 0 {
					cand := cur
					cand.Crashes = append([]CrashSpec{}, cur.Crashes...)
					cand.Crashes[i].Skip = 0
					if reproduces(cand) {
						cur = cand
						changed = true
					}
				}
				continue
			}
			lo, hi := sim.Time(0), c.At
			for lo < hi {
				mid := lo + (hi-lo)/2
				cand := cur
				cand.Crashes = append([]CrashSpec{}, cur.Crashes...)
				cand.Crashes[i].At = mid
				if reproduces(cand) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			if hi < c.At {
				cur.Crashes = append([]CrashSpec{}, cur.Crashes...)
				cur.Crashes[i].At = hi
				changed = true
			}
		}
	}

	final := Execute(cur)
	if final.Category != cat {
		// The cap interrupted mid-accept; fall back to the original, which
		// is known-failing.
		cur, final = spec, base
	}
	return &Repro{
		Spec:       cur,
		Category:   cat,
		Violation:  final.First(),
		ShrinkRuns: runs,
	}, nil
}

// Replay executes the repro's spec and checks it still fails in the
// recorded category, returning the fresh result.
func (r *Repro) Replay() (*Result, error) {
	res := Execute(r.Spec)
	if res.Category != r.Category {
		return res, fmt.Errorf("chaos: repro %s replayed to category %q, want %q",
			r.Spec.ID(), res.Category, r.Category)
	}
	return res, nil
}

// WriteFile serializes the repro as an indented JSON artifact.
func (r *Repro) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadRepro parses a repro artifact.
func LoadRepro(path string) (*Repro, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Repro
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("chaos: %s: %v", path, err)
	}
	return &r, nil
}
