package chaos

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/dining/token"
	"repro/internal/dining/trap"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Violation categories, ordered by severity. Category is the shrinker's
// equivalence notion: a candidate spec reproduces a failure iff it fails in
// the same category as the original.
const (
	CatPanic      = "panic"      // protocol code panicked mid-run
	CatWatchdog   = "watchdog"   // budget watchdog stopped a livelocked run
	CatExclusion  = "exclusion"  // weak-exclusion violation (perpetual or post-convergence)
	CatStarvation = "starvation" // a correct hungry diner never ate
)

// Result is the outcome of executing one Spec.
type Result struct {
	Spec       Spec
	End        sim.Time        // virtual time the run stopped at
	TraceHash  uint64          // deterministic digest of the full trace
	Category   string          // "" if the run satisfied every property
	Violations []string        // human-readable findings, worst first
	Failure    *sim.RunFailure // panic/watchdog detail, when Category warrants
	Log        *trace.Log      // full trace (nil-safe to ignore)
}

// Failed reports whether any checker or robustness hook flagged the run.
func (r *Result) Failed() bool { return r.Category != "" }

// First returns the headline violation.
func (r *Result) First() string {
	if len(r.Violations) == 0 {
		return ""
	}
	return r.Violations[0]
}

// Execute runs one spec end-to-end: build the system, arm the fault plan
// and the watchdog, run under panic recovery, then apply the checker suite
// appropriate to the box's advertised exclusion class. It never panics on
// protocol misbehavior — that comes back as a Result with Category set.
func Execute(spec Spec) *Result {
	res := &Result{Spec: spec}
	if err := spec.Validate(); err != nil {
		// An unexecutable spec is an engine-usage bug; surface it loudly but
		// structurally, so campaigns report it instead of crashing.
		res.Category = CatPanic
		res.Violations = []string{fmt.Sprintf("invalid spec: %v", err)}
		return res
	}

	g, _ := buildGraph(spec.Topology, spec.N)
	n := g.N()
	// Centralized boxes get a reliable coordinator process beyond the graph.
	extra := 0
	if spec.Box == "perfect" || spec.Box == "trap" {
		extra = 1
	}
	log := &trace.Log{}
	policy, _ := spec.Delay.Policy()
	k := sim.NewKernel(n+extra,
		sim.WithSeed(spec.Seed),
		sim.WithTracer(log),
		sim.WithDelay(policy),
	)
	res.Log = log

	// Network model, outermost first: the transport hook (so every protocol
	// send is wrapped) and then the link adversary underneath it. Both are
	// armed before the box exists, so no protocol message escapes either.
	if spec.Transport {
		transport.Enable(k, "rt", transport.Config{})
	}
	if spec.Links != nil {
		if err := spec.Links.Plan().Apply(k); err != nil {
			res.Category = CatPanic
			res.Violations = []string{err.Error()}
			return res
		}
	}

	tbl, err := buildBox(k, g, spec)
	if err != nil {
		res.Category = CatPanic
		res.Violations = []string{err.Error()}
		return res
	}
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 120, EatMin: 5, EatMax: 40,
		})
	}
	if err := armCrashes(k, tbl, spec); err != nil {
		res.Category = CatPanic
		res.Violations = []string{err.Error()}
		return res
	}
	k.SetBudget(spec.budget(n))

	end, fail := k.RunProtected(spec.Horizon)
	res.End = end
	res.TraceHash = log.Hash()
	if fail != nil {
		res.Failure = fail
		if fail.Panic != nil {
			res.Category = CatPanic
		} else {
			res.Category = CatWatchdog
		}
		res.Violations = append(res.Violations, fail.Error())
		return res
	}

	res.check(g, log, end)
	return res
}

// check applies the checker suite and fills Category/Violations. The
// exclusion criterion follows the box's contract: the perfect box promises
// perpetual weak exclusion, every other box only an exclusive suffix, so
// ◇WX is checked against a convergence point at 3/4 of the run — late
// enough for GST, oracle convergence, token-duplicate extinction, and the
// trap's mistake era on every sweep configuration the engine generates.
func (r *Result) check(g *graph.Graph, log *trace.Log, end sim.Time) {
	const inst = "dine"
	if r.Spec.Box == "perfect" {
		if _, err := checker.PerpetualWeakExclusion(log, g, inst, end); err != nil {
			r.Category = CatExclusion
			r.Violations = append(r.Violations, err.Error())
		}
	} else {
		convergedBy := end * 3 / 4
		if _, err := checker.EventualWeakExclusion(log, g, inst, convergedBy, end); err != nil {
			r.Category = CatExclusion
			r.Violations = append(r.Violations, err.Error())
		}
	}
	// Hunger that started in the final quarter has legitimately not been
	// served yet; anything older must have eaten.
	grace := end - end/4
	if starved := checker.WaitFreedom(log, inst, grace, end); len(starved) > 0 {
		if r.Category == "" {
			r.Category = CatStarvation
		}
		for _, s := range starved {
			r.Violations = append(r.Violations, s.String())
		}
	}
}

// buildBox constructs the dining service under test. The heartbeat-driven
// boxes share the oracle construction of cmd/dinersim.
func buildBox(k *sim.Kernel, g *graph.Graph, spec Spec) (dining.Table, error) {
	era := spec.Era
	if era <= 0 {
		era = spec.Horizon / 8
	}
	// Deployment tuning for lossy networks: the transport restores reliable
	// delivery but not timeliness — a dropped heartbeat arrives one
	// retransmission timeout (or a few, under a loss streak) late. The
	// oracle's partial-synchrony parameters must dominate that, or every
	// loss is a false suspicion that eats horizon converging away.
	hb := detector.HeartbeatConfig{}
	if spec.Links != nil {
		hb = detector.HeartbeatConfig{Timeout: 240, Bump: 160}
	}
	switch spec.Box {
	case "forks":
		oracle := detector.NewHeartbeat(k, "hb", hb)
		return forks.New(k, g, "dine", oracle, forks.Config{}), nil
	case "token":
		oracle := detector.NewHeartbeat(k, "hb", hb)
		return token.New(k, g, "dine", oracle, token.Config{}), nil
	case "perfect":
		return perfect.New(k, g, "dine", sim.ProcID(g.N())), nil
	case "trap":
		return trap.New(k, g, "dine", sim.ProcID(g.N()), era), nil
	case "buggy":
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		return newBuggyTable(k, g, "dine", oracle), nil
	}
	return nil, fmt.Errorf("chaos: unknown box %q", spec.Box)
}

// armCrashes installs the fault plan: timed crashes go through the validated
// sim.FaultPlan path; state-triggered crashes arm kernel predicates over the
// victim's diner state machine, with edge detection so Skip counts state
// *entries*, not polled samples.
func armCrashes(k *sim.Kernel, tbl dining.Table, spec Spec) error {
	plan := sim.FaultPlan{Name: "chaos"}
	for _, c := range spec.Crashes {
		if c.When == "" {
			plan.Crashes = append(plan.Crashes, sim.Crash{P: c.P, At: c.At})
			continue
		}
		target, ok := map[string]dining.State{
			"hungry":  dining.Hungry,
			"eating":  dining.Eating,
			"exiting": dining.Exiting,
		}[c.When]
		if !ok {
			return fmt.Errorf("chaos: crash %v: unknown trigger state %q", c, c.When)
		}
		d := tbl.Diner(c.P)
		skip := c.Skip
		was := false
		entries := 0
		k.CrashWhen(c.P, "chaos:"+c.When, func() bool {
			cur := d.State() == target
			if cur && !was {
				entries++
			}
			was = cur
			return cur && entries > skip
		})
	}
	return plan.Apply(k)
}

// budget derives the watchdog budget: explicit spec overrides win, the rest
// scale with system size and horizon, generously enough that every healthy
// sweep configuration fits with an order-of-magnitude margin while runaway
// event storms and queue explosions still trip long before wall-clock pain.
func (s Spec) budget(n int) sim.Budget {
	b := sim.Budget{
		MaxSteps:  s.Budget.MaxSteps,
		MaxEvents: s.Budget.MaxEvents,
		MaxQueue:  s.Budget.MaxQueue,
	}
	if b.MaxEvents == 0 {
		b.MaxEvents = 40 * int64(n+2) * int64(s.Horizon+1000)
	}
	if b.MaxSteps == 0 {
		b.MaxSteps = b.MaxEvents / 2
	}
	if b.MaxQueue == 0 {
		b.MaxQueue = 20000 + 500*n
	}
	return b
}
