// Package chaos is the campaign engine that hunts for property violations
// in the dining boxes: it sweeps (topology × box × fault plan × delay policy
// × seed) spaces, runs every configuration under the full checker suite with
// the kernel's robustness hooks armed (state-triggered crashes, budget
// watchdog, panic recovery), and delta-debugs any failing configuration down
// to a minimal reproducer serialized as a JSON artifact that tests replay
// deterministically.
//
// The engine treats every box as a black box, in the spirit of the paper's
// quantification over *any* WF-◇WX service: a run is described entirely by
// a declarative Spec (no code, no closures), so a failing Spec is a complete,
// shareable counterexample. The planted-bug box ("buggy", a forks mutant
// whose crash-tolerance override was dropped) keeps the engine honest:
// campaigns over it must catch and shrink a real wait-freedom violation,
// proving the pipeline can find what it claims to find.
package chaos

import (
	"encoding/json"
	"fmt"

	"repro/internal/graph"
	"repro/internal/sim"
)

// Spec is a fully declarative description of one chaos run. Two executions
// of the same Spec produce identical traces (see Execute), which is what
// makes shrunk specs replayable repro artifacts.
type Spec struct {
	Topology string      `json:"topology"`          // ring|clique|path|star|pair|grid
	N        int         `json:"n"`                 // number of diners (≥ 2)
	Box      string      `json:"box"`               // forks|token|perfect|trap|buggy
	Seed     int64       `json:"seed"`              // kernel seed
	Horizon  sim.Time    `json:"horizon"`           // virtual-time bound
	Delay    DelaySpec   `json:"delay"`             // message-delay policy
	Crashes  []CrashSpec `json:"crashes,omitempty"` // fault plan (time- or state-triggered)
	Era      sim.Time    `json:"era,omitempty"`     // trap box mistake era (default horizon/8)

	// Links, when non-nil, installs the fair-lossy link adversary; Transport
	// runs every box and oracle over the retransmitting reliable transport
	// (internal/transport), which is what keeps lossy runs within the
	// paper's channel axioms.
	Links     *LinkSpec `json:"links,omitempty"`
	Transport bool      `json:"transport,omitempty"`

	// Budget overrides the default watchdog budget (zero fields inherit the
	// defaults Execute derives from N and Horizon).
	Budget BudgetSpec `json:"budget,omitempty"`
}

// DelaySpec selects a sim.DelayPolicy declaratively.
type DelaySpec struct {
	Kind    string   `json:"kind"`              // fixed|uniform|gst
	Delay   sim.Time `json:"delay,omitempty"`   // fixed: the delay
	Min     sim.Time `json:"min,omitempty"`     // uniform: bounds
	Max     sim.Time `json:"max,omitempty"`     //
	GST     sim.Time `json:"gst,omitempty"`     // gst: stabilization time
	PreMax  sim.Time `json:"premax,omitempty"`  // gst: pre-GST worst case
	PostMax sim.Time `json:"postmax,omitempty"` // gst: post-GST bound
}

// Policy materializes the delay policy.
func (d DelaySpec) Policy() (sim.DelayPolicy, error) {
	switch d.Kind {
	case "fixed":
		return sim.FixedDelay{D: d.Delay}, nil
	case "uniform":
		return sim.UniformDelay{Min: d.Min, Max: d.Max}, nil
	case "gst":
		return sim.GSTDelay{GST: d.GST, PreMax: d.PreMax, PostMax: d.PostMax}, nil
	}
	return nil, fmt.Errorf("chaos: unknown delay kind %q", d.Kind)
}

func (d DelaySpec) String() string {
	switch d.Kind {
	case "fixed":
		return fmt.Sprintf("fixed(%d)", d.Delay)
	case "uniform":
		return fmt.Sprintf("uniform(%d..%d)", d.Min, d.Max)
	case "gst":
		return fmt.Sprintf("gst(%d,pre=%d,post=%d)", d.GST, d.PreMax, d.PostMax)
	}
	return d.Kind
}

// LinkSpec selects a sim.LinkPlan declaratively: steady-state loss,
// duplication, bounded reordering, and transient lossy windows.
type LinkSpec struct {
	Drop    float64      `json:"drop,omitempty"`    // per-message drop probability, [0, 1)
	Dup     float64      `json:"dup,omitempty"`     // duplication probability, [0, 1]
	Reorder sim.Time     `json:"reorder,omitempty"` // extra delay bound (reordering)
	Windows []WindowSpec `json:"windows,omitempty"` // transient lossy eras
}

// WindowSpec is one transient lossy era of a LinkSpec.
type WindowSpec struct {
	Start sim.Time     `json:"start"`
	End   sim.Time     `json:"end"`
	Drop  float64      `json:"drop"`
	Side  []sim.ProcID `json:"side,omitempty"` // partition side; empty = all links
}

// Plan materializes the sim.LinkPlan. A nil spec is the reliable-channel
// world.
func (l *LinkSpec) Plan() sim.LinkPlan {
	if l == nil {
		return sim.NoLinkFaults()
	}
	lp := sim.LinkPlan{Name: "chaos", Drop: l.Drop, Dup: l.Dup, ReorderMax: l.Reorder}
	for _, w := range l.Windows {
		lp.Windows = append(lp.Windows, sim.LossyWindow{Start: w.Start, End: w.End, Drop: w.Drop, Side: w.Side})
	}
	return lp
}

func (l *LinkSpec) String() string {
	if l == nil {
		return "reliable"
	}
	s := fmt.Sprintf("loss%.2f", l.Drop)
	if l.Dup > 0 {
		s += fmt.Sprintf("+dup%.2f", l.Dup)
	}
	if l.Reorder > 0 {
		s += fmt.Sprintf("+ro%d", l.Reorder)
	}
	if len(l.Windows) > 0 {
		s += fmt.Sprintf("+%dwin", len(l.Windows))
	}
	return s
}

// CrashSpec is one fault of a plan. With When empty it is a plain timed
// crash at At. With When set it is state-triggered: the process crashes the
// instant it enters the named dining state (via sim.Kernel.CrashWhen),
// skipping the first Skip entries — "crash the witness mid-eating-session"
// is {P: w, When: "eating"}.
type CrashSpec struct {
	P    sim.ProcID `json:"p"`
	At   sim.Time   `json:"at,omitempty"`
	When string     `json:"when,omitempty"` // hungry|eating|exiting
	Skip int        `json:"skip,omitempty"` // state entries to let pass first
}

func (c CrashSpec) String() string {
	if c.When == "" {
		return fmt.Sprintf("%d@%d", c.P, c.At)
	}
	if c.Skip > 0 {
		return fmt.Sprintf("%d@%s+%d", c.P, c.When, c.Skip)
	}
	return fmt.Sprintf("%d@%s", c.P, c.When)
}

// BudgetSpec is the serializable face of sim.Budget.
type BudgetSpec struct {
	MaxSteps  int64 `json:"max_steps,omitempty"`
	MaxEvents int64 `json:"max_events,omitempty"`
	MaxQueue  int   `json:"max_queue,omitempty"`
}

// Boxes lists the dining boxes the engine can build. The first four are the
// repository's real services; "buggy" is the planted-bug forks mutant.
func Boxes() []string { return []string{"forks", "token", "perfect", "trap", "buggy"} }

// Topologies lists the conflict-graph shapes the engine can build.
func Topologies() []string { return []string{"ring", "clique", "path", "star", "pair", "grid"} }

// Validate rejects specs the engine cannot execute, including malformed
// fault plans (satellite of the same rules sim.FaultPlan.Validate enforces).
func (s Spec) Validate() error {
	if s.N < 2 {
		return fmt.Errorf("chaos: n=%d, need at least 2 diners", s.N)
	}
	if s.Horizon < 100 {
		return fmt.Errorf("chaos: horizon %d too short", s.Horizon)
	}
	if _, err := buildGraph(s.Topology, s.N); err != nil {
		return err
	}
	if s.Topology == "pair" && s.N != 2 {
		return fmt.Errorf("chaos: pair topology requires n=2, got %d", s.N)
	}
	if !knownBox(s.Box) {
		return fmt.Errorf("chaos: unknown box %q", s.Box)
	}
	if _, err := s.Delay.Policy(); err != nil {
		return err
	}
	seen := make(map[sim.ProcID]bool, len(s.Crashes))
	for _, c := range s.Crashes {
		if c.P < 0 || int(c.P) >= s.N {
			return fmt.Errorf("chaos: crash %v: process out of range 0..%d", c, s.N-1)
		}
		if seen[c.P] {
			return fmt.Errorf("chaos: crash %v: duplicate crash of process %d", c, c.P)
		}
		seen[c.P] = true
		switch c.When {
		case "":
			if c.At < 0 {
				return fmt.Errorf("chaos: crash %v: negative crash time", c)
			}
		case "hungry", "eating", "exiting":
		default:
			return fmt.Errorf("chaos: crash %v: unknown trigger state %q", c, c.When)
		}
	}
	if s.Links != nil {
		plan := s.Links.Plan()
		if err := plan.Validate(s.N); err != nil {
			return err
		}
	}
	return nil
}

func knownBox(b string) bool {
	for _, k := range Boxes() {
		if k == b {
			return true
		}
	}
	return false
}

// ID is a short human-readable identity of the spec, used in reports and
// artifact file names.
func (s Spec) ID() string {
	crashes := ""
	for i, c := range s.Crashes {
		if i > 0 {
			crashes += ","
		}
		crashes += c.String()
	}
	if crashes == "" {
		crashes = "none"
	}
	id := fmt.Sprintf("%s/%s%d/seed%d/h%d/%s/%s", s.Box, s.Topology, s.N, s.Seed, s.Horizon, s.Delay, crashes)
	if s.Links != nil {
		id += "/" + s.Links.String()
	}
	if s.Transport {
		id += "/rt"
	}
	return id
}

// MarshalIndent renders the spec as the JSON stored in repro artifacts.
func (s Spec) MarshalIndent() ([]byte, error) { return json.MarshalIndent(s, "", "  ") }

// buildGraph materializes the conflict graph for a topology name.
func buildGraph(topology string, n int) (*graph.Graph, error) {
	switch topology {
	case "ring":
		return graph.Ring(n), nil
	case "clique":
		return graph.Clique(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "pair":
		return graph.Pair(0, 1), nil
	case "grid":
		r := 2
		for r*r < n {
			r++
		}
		return graph.Grid(r, (n+r-1)/r), nil
	}
	return nil, fmt.Errorf("chaos: unknown topology %q", topology)
}
