package chaos

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/par"
	"repro/internal/sim"
)

// Campaign describes a sweep over the cross product of boxes, topologies,
// sizes, seeds, delay policies, and fault-plan shapes. Every generated Spec
// is deterministic in the campaign parameters, so a campaign is itself
// replayable.
type Campaign struct {
	Boxes      []string    // dining boxes to exercise
	Topologies []string    // conflict-graph shapes
	Sizes      []int       // diner counts
	Seeds      []int64     // kernel seeds
	Horizon    sim.Time    // per-run virtual-time bound
	Delays     []DelaySpec // delay policies
	Plans      []string    // fault-plan shapes: none|single|eating|staggered|minority
	Links      []*LinkSpec // link-fault shapes (empty = reliable channels only)
	Transport  bool        // run every box over the reliable transport
	Shrink     bool        // delta-debug every failure down to a Repro

	// Parallel is the worker count for executing runs: 0 means
	// runtime.GOMAXPROCS(0), 1 forces sequential execution. Whatever the
	// worker count, the Report is deterministic: results are aggregated (and
	// Progress observed) in Specs() order.
	Parallel int

	// Progress, when set, observes every finished run (for CLI output). It is
	// always invoked serially, in Specs() order, on the Run caller's
	// goroutine.
	Progress func(*Result)

	// Interrupt, when non-nil and closed (or signaled), stops the campaign
	// early: runs not yet started are skipped, runs in flight complete
	// normally, and Run returns a partial Report with Skipped set. This is
	// how cmd/chaos turns Ctrl-C into a flushed partial report instead of a
	// dead process.
	Interrupt <-chan struct{}
}

// BoxStats aggregates one box's campaign outcomes.
type BoxStats struct {
	Runs   int
	Failed int
}

// Report is the outcome of a campaign.
type Report struct {
	Runs     int
	Skipped  int // runs not executed because the campaign was interrupted
	ByBox    map[string]*BoxStats
	Failures []*Result // failing results (traces stripped to bound memory)
	Repros   []*Repro  // shrunk counterexamples, when Shrink was on
}

// Interrupted reports whether the campaign stopped before sweeping every
// spec.
func (r *Report) Interrupted() bool { return r.Skipped > 0 }

// CompliantClean reports whether every box other than the planted-bug one
// came through the campaign without a violation.
func (r *Report) CompliantClean() bool {
	for box, st := range r.ByBox {
		if box != "buggy" && st.Failed > 0 {
			return false
		}
	}
	return true
}

// Render formats the per-box table plus failure headlines.
func (r *Report) Render() string {
	boxes := make([]string, 0, len(r.ByBox))
	for b := range r.ByBox {
		boxes = append(boxes, b)
	}
	sort.Strings(boxes)
	out := fmt.Sprintf("campaign: %d runs\n", r.Runs)
	if r.Skipped > 0 {
		out = fmt.Sprintf("campaign: %d runs (INTERRUPTED, %d skipped)\n", r.Runs, r.Skipped)
	}
	for _, b := range boxes {
		st := r.ByBox[b]
		out += fmt.Sprintf("  %-8s runs=%-4d violations=%d\n", b, st.Runs, st.Failed)
	}
	for _, f := range r.Failures {
		out += fmt.Sprintf("  FAIL [%s] %s: %s\n", f.Category, f.Spec.ID(), f.First())
	}
	return out
}

// Specs expands the campaign into its run list. An empty Links slice sweeps
// the single reliable-channel configuration, so campaigns written before the
// link dimension existed expand to exactly the same run list.
func (c Campaign) Specs() []Spec {
	links := c.Links
	if len(links) == 0 {
		links = []*LinkSpec{nil}
	}
	var out []Spec
	for _, box := range c.Boxes {
		for _, topo := range c.Topologies {
			for _, n := range c.Sizes {
				if topo == "pair" && n != 2 {
					continue
				}
				for _, seed := range c.Seeds {
					for _, d := range c.Delays {
						for _, plan := range c.Plans {
							for _, ls := range links {
								out = append(out, Spec{
									Topology:  topo,
									N:         n,
									Box:       box,
									Seed:      seed,
									Horizon:   c.Horizon,
									Delay:     d,
									Crashes:   planCrashes(plan, n, c.Horizon, seed),
									Links:     ls,
									Transport: c.Transport,
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// LinkShapes names the canonical link-fault configurations campaigns sweep.
// The horizon parameterizes the transient-partition window.
func LinkShapes(horizon sim.Time) map[string]*LinkSpec {
	if horizon <= 0 {
		horizon = 30000
	}
	return map[string]*LinkSpec{
		"none":    nil,
		"loss10":  {Drop: 0.10},
		"loss30":  {Drop: 0.30},
		"dup":     {Drop: 0.05, Dup: 0.25},
		"reorder": {Drop: 0.05, Reorder: 24},
		"flaky": {
			Drop: 0.10, Dup: 0.10, Reorder: 12,
			Windows: []WindowSpec{{Start: horizon / 8, End: horizon / 4, Drop: 1}},
		},
	}
}

// NamedLinkSpec resolves one LinkShapes entry by name.
func NamedLinkSpec(name string, horizon sim.Time) (*LinkSpec, error) {
	ls, ok := LinkShapes(horizon)[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown link shape %q", name)
	}
	return ls, nil
}

// planCrashes generates the fault plan of the given shape, deterministically
// from (plan, n, horizon, seed). Crashes strike inside the first half of the
// run so that convergence checks in the final quarter are meaningful.
func planCrashes(plan string, n int, horizon sim.Time, seed int64) []CrashSpec {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(n)*7919))
	window := func(lo, hi sim.Time) sim.Time {
		if hi <= lo {
			return lo
		}
		return lo + sim.Time(rng.Int63n(int64(hi-lo)))
	}
	switch plan {
	case "", "none":
		return nil
	case "single":
		return []CrashSpec{{
			P:  sim.ProcID(rng.Intn(n)),
			At: window(horizon/8, horizon/2),
		}}
	case "eating":
		// The state-triggered strike: kill a diner the instant it enters its
		// (Skip+1)-th eating session — mid-protocol, fork in hand.
		return []CrashSpec{{
			P:    sim.ProcID(rng.Intn(n)),
			When: "eating",
			Skip: rng.Intn(3),
		}}
	case "staggered":
		f := (n - 1) / 2
		if f < 1 {
			f = 1
		}
		perm := rng.Perm(n)
		var out []CrashSpec
		at := horizon / 10
		for i := 0; i < f; i++ {
			out = append(out, CrashSpec{P: sim.ProcID(perm[i]), At: at})
			at += horizon / 20
		}
		return out
	case "minority":
		fp := sim.MinorityCrashes(n, horizon/16, horizon/3, rng)
		var out []CrashSpec
		for _, cr := range fp.Crashes {
			out = append(out, CrashSpec{P: cr.P, At: cr.At})
		}
		return out
	}
	// Unknown shapes surface as invalid specs rather than being dropped
	// silently: give the spec an out-of-range crash so Execute flags it.
	return []CrashSpec{{P: -1, At: 0, When: "bad-plan:" + plan}}
}

// Run executes the whole campaign and aggregates. Individual runs are
// single-threaded by design, but independent of one another — each owns its
// kernel, RNG, and trace log — so they fan out over a Parallel-sized worker
// pool. The Report is identical to a sequential sweep's: each run is
// deterministic in its spec alone, a failing run's shrink search executes on
// the same worker that ran it (Shrink is a pure function of the spec), and
// aggregation consumes results strictly in Specs() order.
func (c Campaign) Run() *Report {
	specs := c.Specs()
	rep := &Report{ByBox: make(map[string]*BoxStats)}

	// outcome is everything a worker produces for one spec; the shrink runs
	// on the worker too, so the ordered consumer below does no heavy work.
	// A nil res means the run was skipped after an interrupt.
	type outcome struct {
		res   *Result
		repro *Repro
	}
	par.MapOrdered(c.Parallel, len(specs), func(i int) outcome {
		if c.Interrupt != nil {
			select {
			case <-c.Interrupt:
				return outcome{}
			default:
			}
		}
		o := outcome{res: Execute(specs[i])}
		if o.res.Failed() && c.Shrink {
			if r, err := Shrink(specs[i]); err == nil {
				o.repro = r
			}
		}
		return o
	}, func(i int, o outcome) {
		if o.res == nil {
			rep.Skipped++
			return
		}
		spec := specs[i]
		rep.Runs++
		st := rep.ByBox[spec.Box]
		if st == nil {
			st = &BoxStats{}
			rep.ByBox[spec.Box] = st
		}
		st.Runs++
		if o.res.Failed() {
			st.Failed++
			if o.repro != nil {
				rep.Repros = append(rep.Repros, o.repro)
			}
			o.res.Log = nil // keep the report's memory footprint bounded
			rep.Failures = append(rep.Failures, o.res)
		}
		if c.Progress != nil {
			c.Progress(o.res)
		}
	})
	return rep
}

// DefaultCampaign is the standard compliant-box soak: every real dining box
// under every fault-plan shape on the standard topologies. It is the
// configuration the acceptance test and cmd/chaos default to.
func DefaultCampaign(horizon sim.Time) Campaign {
	if horizon <= 0 {
		horizon = 30000
	}
	return Campaign{
		Boxes:      []string{"forks", "token", "perfect", "trap"},
		Topologies: []string{"ring", "clique", "star"},
		Sizes:      []int{4, 6},
		Seeds:      []int64{1, 2},
		Horizon:    horizon,
		Delays:     []DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Plans:      []string{"none", "single", "eating", "staggered", "minority"},
	}
}

// DefaultLinkCampaign is the lossy-network soak: every real dining box over
// the reliable transport, under every named non-trivial link shape crossed
// with crash plans — 4 boxes × 2 topologies × 1 size × 2 seeds × 3 crash
// plans × 5 link shapes = 240 runs. Loss reaches 30%, duplication and
// reordering are both exercised, and the flaky shape adds a transient total
// partition; the acceptance criterion is that all four boxes come through
// clean because the transport restores the channel axioms they assume.
func DefaultLinkCampaign(horizon sim.Time) Campaign {
	if horizon <= 0 {
		horizon = 30000
	}
	shapes := LinkShapes(horizon)
	return Campaign{
		Boxes:      []string{"forks", "token", "perfect", "trap"},
		Topologies: []string{"ring", "star"},
		Sizes:      []int{4},
		Seeds:      []int64{1, 2},
		Horizon:    horizon,
		Delays:     []DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Plans:      []string{"none", "single", "eating"},
		Links: []*LinkSpec{
			shapes["loss10"], shapes["loss30"], shapes["dup"],
			shapes["reorder"], shapes["flaky"],
		},
		Transport: true,
	}
}
