package chaos

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestSpecValidateRejectsBadLinks: link-fault validation flows through
// Spec.Validate via the sim plan's own rules.
func TestSpecValidateRejectsBadLinks(t *testing.T) {
	good := Spec{
		Topology: "ring", N: 4, Box: "forks", Seed: 1, Horizon: 5000,
		Delay: DelaySpec{Kind: "fixed", Delay: 4},
		Links: &LinkSpec{Drop: 0.2, Dup: 0.1, Reorder: 8,
			Windows: []WindowSpec{{Start: 100, End: 400, Drop: 1}}},
		Transport: true,
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid lossy spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*LinkSpec)
	}{
		{"certain steady drop", func(l *LinkSpec) { l.Drop = 1 }},
		{"negative drop", func(l *LinkSpec) { l.Drop = -0.2 }},
		{"dup above one", func(l *LinkSpec) { l.Dup = 1.5 }},
		{"negative reorder", func(l *LinkSpec) { l.Reorder = -4 }},
		{"inverted window", func(l *LinkSpec) { l.Windows[0].End = 50 }},
		{"window side out of range", func(l *LinkSpec) { l.Windows[0].Side = []sim.ProcID{9} }},
	}
	for _, tc := range cases {
		s := good
		l := *good.Links
		l.Windows = append([]WindowSpec{}, good.Links.Windows...)
		tc.mutate(&l)
		s.Links = &l
		if err := s.Validate(); err == nil {
			t.Errorf("%s: spec accepted", tc.name)
		}
	}
}

// TestLinkSpecJSONRoundTrip: lossy specs survive the repro-artifact format.
func TestLinkSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Topology: "star", N: 4, Box: "token", Seed: 9, Horizon: 12000,
		Delay: DelaySpec{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8},
		Links: &LinkSpec{Drop: 0.3, Dup: 0.1, Reorder: 16,
			Windows: []WindowSpec{{Start: 1000, End: 2000, Drop: 1, Side: []sim.ProcID{0}}}},
		Transport: true,
	}
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n  in:  %+v\n  out: %+v", s, back)
	}
	if !strings.Contains(s.ID(), "loss0.30") || !strings.Contains(s.ID(), "/rt") {
		t.Fatalf("spec ID %q does not describe its link faults and transport", s.ID())
	}
}

// TestNamedLinkSpecs: every canonical shape resolves and validates; unknown
// names error.
func TestNamedLinkSpecs(t *testing.T) {
	for name := range LinkShapes(30000) {
		ls, err := NamedLinkSpec(name, 30000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		s := Spec{Topology: "ring", N: 4, Box: "forks", Seed: 1, Horizon: 30000,
			Delay: DelaySpec{Kind: "fixed", Delay: 4}, Links: ls}
		if err := s.Validate(); err != nil {
			t.Errorf("shape %s yields invalid spec: %v", name, err)
		}
	}
	if _, err := NamedLinkSpec("hurricane", 30000); err == nil {
		t.Fatal("unknown link shape accepted")
	}
}

// TestLinkCampaignSpecsCrossProduct: the link dimension multiplies into the
// sweep, and the default lossy campaign is exactly the 240-run acceptance
// matrix with the transport on everywhere.
func TestLinkCampaignSpecsCrossProduct(t *testing.T) {
	c := DefaultLinkCampaign(0)
	specs := c.Specs()
	want := len(c.Boxes) * len(c.Topologies) * len(c.Sizes) * len(c.Seeds) *
		len(c.Delays) * len(c.Plans) * len(c.Links)
	if len(specs) != want {
		t.Fatalf("got %d specs, want %d", len(specs), want)
	}
	if len(specs) != 240 {
		t.Fatalf("default link campaign has %d runs, acceptance matrix is 240", len(specs))
	}
	maxDrop := 0.0
	var anyDup, anyReorder, anyWindow bool
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("campaign generated invalid spec %s: %v", s.ID(), err)
		}
		if !s.Transport {
			t.Fatalf("spec %s runs without the transport", s.ID())
		}
		if s.Links == nil {
			t.Fatalf("spec %s has no link faults in the lossy campaign", s.ID())
		}
		if s.Links.Drop > maxDrop {
			maxDrop = s.Links.Drop
		}
		anyDup = anyDup || s.Links.Dup > 0
		anyReorder = anyReorder || s.Links.Reorder > 0
		anyWindow = anyWindow || len(s.Links.Windows) > 0
	}
	if maxDrop < 0.3 {
		t.Errorf("campaign max loss %.2f, acceptance sweeps up to 30%%", maxDrop)
	}
	if !anyDup || !anyReorder || !anyWindow {
		t.Errorf("campaign misses a fault mode: dup=%v reorder=%v window=%v",
			anyDup, anyReorder, anyWindow)
	}
}

// TestExecuteDeterministicUnderLinks pins the determinism contract in the
// lossy world: identical specs — including a nontrivial LinkPlan and the
// transport — yield bit-identical trace hashes, so lossy counterexamples are
// exactly as replayable as reliable-channel ones.
func TestExecuteDeterministicUnderLinks(t *testing.T) {
	for _, box := range []string{"forks", "token"} {
		spec := Spec{
			Topology: "ring", N: 4, Box: box, Seed: 17, Horizon: 8000,
			Delay:   DelaySpec{Kind: "gst", GST: 400, PreMax: 90, PostMax: 8},
			Crashes: []CrashSpec{{P: 2, At: 1200}},
			Links: &LinkSpec{Drop: 0.2, Dup: 0.1, Reorder: 10,
				Windows: []WindowSpec{{Start: 1000, End: 1800, Drop: 1}}},
			Transport: true,
		}
		first := Execute(spec)
		if first.Log == nil || first.Log.Len() == 0 {
			t.Fatalf("%s: empty trace", box)
		}
		again := Execute(spec)
		if again.TraceHash != first.TraceHash {
			t.Errorf("%s: lossy trace hash diverged: %x != %x", box, again.TraceHash, first.TraceHash)
		}
		if again.End != first.End || again.Category != first.Category {
			t.Errorf("%s: lossy run diverged: end %d/%d, category %q/%q",
				box, again.End, first.End, again.Category, first.Category)
		}
	}
}

// TestLinkCampaignCompliantBoxesClean is the lossy acceptance run: all four
// real boxes over the transport survive the 240-run link-fault campaign —
// loss to 30%, duplication, reordering, and a transient total partition —
// with no property violation. This is the end-to-end witness that the
// transport restores the channel axioms the boxes were verified under.
func TestLinkCampaignCompliantBoxesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("240 lossy runs; skipped in -short")
	}
	rep := DefaultLinkCampaign(0).Run()
	if rep.Runs != 240 {
		t.Fatalf("campaign ran %d specs, acceptance matrix is 240", rep.Runs)
	}
	if !rep.CompliantClean() {
		t.Fatalf("compliant boxes violated properties under link faults:\n%s", rep.Render())
	}
	for _, box := range []string{"forks", "token", "perfect", "trap"} {
		st := rep.ByBox[box]
		if st == nil || st.Runs != 60 {
			t.Errorf("box %s ran %v specs, want 60", box, st)
		}
	}
}

// TestShrinkDropsIrrelevantLinkFaults: when a failure does not need the link
// adversary, the shrinker removes it (and then the transport), so the repro
// tells the truth about what triggers the bug.
func TestShrinkDropsIrrelevantLinkFaults(t *testing.T) {
	// The planted-bug box starves on a crash alone; mild link faults are noise.
	spec := Spec{
		Topology: "ring", N: 4, Box: "buggy", Seed: 2, Horizon: 30000,
		Delay:     DelaySpec{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8},
		Crashes:   []CrashSpec{{P: 1, When: "eating"}},
		Links:     &LinkSpec{Drop: 0.05},
		Transport: true,
	}
	base := Execute(spec)
	if !base.Failed() {
		t.Skipf("seed does not trigger the planted bug under links (category %q)", base.Category)
	}
	r, err := Shrink(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Links != nil {
		t.Errorf("repro %s kept link faults the failure does not need", r.Spec.ID())
	}
	if r.Spec.Links == nil && r.Spec.Transport {
		t.Errorf("repro %s kept the transport with no link faults under it", r.Spec.ID())
	}
	if _, err := r.Replay(); err != nil {
		t.Errorf("repro does not replay: %v", err)
	}
}
