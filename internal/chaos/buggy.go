package chaos

import (
	"fmt"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/sim"
)

// This file plants a bug for the campaign engine to catch: a mutated
// variant of the forks box (internal/dining/forks) whose crash-tolerance
// line has been dropped. The real algorithm lets a hungry diner eat when
// every missing fork belongs to a neighbor its ◇P module suspects — that
// override is the entire wait-freedom story under crashes. The mutant's
// canEat requires every fork to be physically held, full stop.
//
// The mutant is deliberately latent: in crash-free runs it is
// indistinguishable from the real box (the classical fork argument gives
// exclusion and liveness without any oracle), so a weak adversary never
// sees it. The bug manifests only when a crash strikes a fork holder at
// the wrong moment — a diner that dies mid-eating-session takes its forks
// to the grave and its correct hungry neighbors starve forever. That is
// exactly the strike the campaign's state-triggered "eating" fault plan
// engineers, and the shrinker must then discover that the crash is the one
// ingredient it cannot drop: shrunk repros keep a single crash (≤ 2 by the
// acceptance bar) and lose everything else.
//
// An earlier candidate mutation — the suspicion override *seizing* the
// forks it excuses — turned out to self-heal: the protocol's deferred-
// request bookkeeping makes the duplicated fork collapse back to one copy
// at the next exit, so violations never persist into the convergence
// suffix. The forks box is genuinely robust to that corruption; the chaos
// engine needs a bug that stays caught.

type buggyTable struct {
	name string
	g    *graph.Graph
	mods map[sim.ProcID]*buggyModule
}

func newBuggyTable(k *sim.Kernel, g *graph.Graph, name string, oracle detector.Oracle) *buggyTable {
	t := &buggyTable{name: name, g: g, mods: make(map[sim.ProcID]*buggyModule)}
	for _, p := range g.Nodes() {
		t.mods[p] = newBuggyModule(k, g, name, p, oracle)
	}
	return t
}

func (t *buggyTable) Name() string        { return t.name }
func (t *buggyTable) Graph() *graph.Graph { return t.g }
func (t *buggyTable) Diner(p sim.ProcID) dining.Diner {
	m, ok := t.mods[p]
	if !ok {
		panic(fmt.Sprintf("buggy: %d is not a diner of %s", p, t.name))
	}
	return m
}

type buggyEdge struct {
	hold   bool
	wanted bool
}

type buggyReq struct {
	TS int64
}

type buggyFork struct{}

type buggyModule struct {
	*dining.Core
	k      *sim.Kernel
	self   sim.ProcID
	nbrs   []sim.ProcID
	edges  map[sim.ProcID]*buggyEdge
	view   detector.View
	prefix string

	clock    int64
	hungerTS int64
}

const buggyRetry = 25

func newBuggyModule(k *sim.Kernel, g *graph.Graph, name string, p sim.ProcID, oracle detector.Oracle) *buggyModule {
	m := &buggyModule{
		Core:   dining.NewCore(k, p, name),
		k:      k,
		self:   p,
		nbrs:   g.Neighbors(p),
		edges:  make(map[sim.ProcID]*buggyEdge),
		view:   detector.View{Oracle: oracle, Self: p},
		prefix: name,
	}
	for _, q := range m.nbrs {
		m.edges[q] = &buggyEdge{hold: p < q}
	}
	k.Handle(p, m.prefix+"/req", m.onReq)
	k.Handle(p, m.prefix+"/fork", m.onFork)
	k.AddAction(p, m.prefix+"/eat", m.canEat, m.eat)
	k.AddAction(p, m.prefix+"/exit-done", func() bool { return m.State() == dining.Exiting }, m.finishExit)
	return m
}

func (m *buggyModule) Hungry() {
	m.Set(dining.Hungry)
	m.clock++
	m.hungerTS = m.clock
	m.requestMissing()
	m.scheduleRetry()
}

func (m *buggyModule) Exit() { m.Set(dining.Exiting) }

// canEat carries the planted bug: the real box also eats when every missing
// fork's holder is suspected (the ◇P override); the mutant demands physical
// possession, so a crashed holder blocks its neighbors forever.
func (m *buggyModule) canEat() bool {
	if m.State() != dining.Hungry {
		return false
	}
	for _, q := range m.nbrs {
		if !m.edges[q].hold { // BUG: `&& !m.view.Suspected(q)` dropped
			return false
		}
	}
	return true
}

func (m *buggyModule) eat() { m.Set(dining.Eating) }

func (m *buggyModule) finishExit() {
	for _, q := range m.nbrs {
		if e := m.edges[q]; e.wanted && e.hold {
			m.yield(q)
		}
	}
	m.Set(dining.Thinking)
}

func (m *buggyModule) onReq(msg sim.Message) {
	q := msg.From
	e, ok := m.edges[q]
	if !ok {
		return
	}
	req := msg.Payload.(buggyReq)
	if req.TS > m.clock {
		m.clock = req.TS
	}
	if !e.hold {
		e.wanted = true
		return
	}
	switch m.State() {
	case dining.Eating, dining.Exiting:
		e.wanted = true
	case dining.Hungry:
		if m.hungerTS < req.TS || (m.hungerTS == req.TS && m.self < q) {
			e.wanted = true
		} else {
			m.yield(q)
		}
	default:
		m.yield(q)
	}
}

func (m *buggyModule) onFork(msg sim.Message) {
	e, ok := m.edges[msg.From]
	if !ok {
		return
	}
	e.hold = true
	if e.wanted && m.State() == dining.Thinking {
		m.yield(msg.From)
	}
}

func (m *buggyModule) yield(q sim.ProcID) {
	e := m.edges[q]
	e.hold = false
	e.wanted = false
	m.k.Send(m.self, q, m.prefix+"/fork", buggyFork{})
	if m.State() == dining.Hungry {
		m.k.Send(m.self, q, m.prefix+"/req", buggyReq{TS: m.hungerTS})
	}
}

func (m *buggyModule) requestMissing() {
	for _, q := range m.nbrs {
		if !m.edges[q].hold {
			m.k.Send(m.self, q, m.prefix+"/req", buggyReq{TS: m.hungerTS})
		}
	}
}

func (m *buggyModule) scheduleRetry() {
	m.k.After(m.self, buggyRetry, func() {
		if m.State() != dining.Hungry {
			return
		}
		m.requestMissing()
		m.scheduleRetry()
	})
}
