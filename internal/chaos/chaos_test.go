package chaos

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{
		Topology: "ring", N: 4, Box: "forks", Seed: 1, Horizon: 5000,
		Delay: DelaySpec{Kind: "fixed", Delay: 4},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"too few diners", func(s *Spec) { s.N = 1 }, "at least 2"},
		{"short horizon", func(s *Spec) { s.Horizon = 50 }, "too short"},
		{"unknown topology", func(s *Spec) { s.Topology = "moebius" }, "unknown topology"},
		{"unknown box", func(s *Spec) { s.Box = "imaginary" }, "unknown box"},
		{"unknown delay", func(s *Spec) { s.Delay = DelaySpec{Kind: "warp"} }, "unknown delay"},
		{"pair size", func(s *Spec) { s.Topology = "pair"; s.N = 4 }, "requires n=2"},
		{"crash out of range", func(s *Spec) { s.Crashes = []CrashSpec{{P: 9, At: 10}} }, "out of range"},
		{"negative crash proc", func(s *Spec) { s.Crashes = []CrashSpec{{P: -1, At: 10}} }, "out of range"},
		{"negative crash time", func(s *Spec) { s.Crashes = []CrashSpec{{P: 1, At: -5}} }, "negative"},
		{"duplicate crash", func(s *Spec) {
			s.Crashes = []CrashSpec{{P: 1, At: 5}, {P: 1, At: 9}}
		}, "duplicate"},
		{"unknown trigger", func(s *Spec) {
			s.Crashes = []CrashSpec{{P: 1, When: "dreaming"}}
		}, "unknown trigger"},
	}
	for _, tc := range cases {
		s := good
		tc.mutate(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestInvalidSpecSurfacesAsResult(t *testing.T) {
	res := Execute(Spec{Topology: "ring", N: 1, Box: "forks", Horizon: 5000,
		Delay: DelaySpec{Kind: "fixed", Delay: 4}})
	if res.Category != CatPanic || res.First() == "" {
		t.Fatalf("invalid spec: got category %q, violations %v", res.Category, res.Violations)
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := Spec{
		Topology: "clique", N: 6, Box: "buggy", Seed: 7, Horizon: 9000,
		Delay:   DelaySpec{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8},
		Crashes: []CrashSpec{{P: 2, When: "eating", Skip: 1}, {P: 4, At: 300}},
	}
	data, err := s.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the spec:\n  in:  %+v\n  out: %+v", s, back)
	}
}

func TestPlanCrashesDeterministic(t *testing.T) {
	for _, plan := range []string{"none", "single", "eating", "staggered", "minority"} {
		a := planCrashes(plan, 6, 30000, 3)
		b := planCrashes(plan, 6, 30000, 3)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("plan %q not deterministic: %v vs %v", plan, a, b)
		}
		spec := Spec{Topology: "ring", N: 6, Box: "forks", Seed: 3, Horizon: 30000,
			Delay: DelaySpec{Kind: "fixed", Delay: 4}, Crashes: a}
		if err := spec.Validate(); err != nil {
			t.Errorf("plan %q generated invalid crashes: %v", plan, err)
		}
	}
}

func TestPlanCrashesUnknownShapePoisonsSpec(t *testing.T) {
	crashes := planCrashes("catastrophe", 4, 30000, 1)
	spec := Spec{Topology: "ring", N: 4, Box: "forks", Seed: 1, Horizon: 30000,
		Delay: DelaySpec{Kind: "fixed", Delay: 4}, Crashes: crashes}
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown plan shape should yield an invalid spec, got nil error")
	}
}

func TestCampaignSpecsCrossProduct(t *testing.T) {
	c := DefaultCampaign(0)
	specs := c.Specs()
	want := len(c.Boxes) * len(c.Topologies) * len(c.Sizes) * len(c.Seeds) * len(c.Delays) * len(c.Plans)
	if len(specs) != want {
		t.Fatalf("got %d specs, want %d", len(specs), want)
	}
	if len(specs) < 200 {
		t.Fatalf("default campaign has %d runs; the acceptance bar needs at least 200", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("campaign generated invalid spec %s: %v", s.ID(), err)
		}
	}
}
