package chaos

import (
	"reflect"
	"testing"
)

// parallelTestCampaign is a small but representative sweep: two boxes (one
// compliant, one planted-bug so the failure/shrink path is exercised), two
// fault plans, two seeds, a lossy link shape with the transport on.
func parallelTestCampaign() Campaign {
	shapes := LinkShapes(8000)
	return Campaign{
		Boxes:      []string{"forks", "buggy"},
		Topologies: []string{"ring"},
		Sizes:      []int{4},
		Seeds:      []int64{1, 2},
		Horizon:    8000,
		Delays:     []DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Plans:      []string{"none", "eating"},
		Links:      []*LinkSpec{nil, shapes["loss10"]},
		Transport:  true,
		Shrink:     true,
	}
}

// runWithHashes executes the campaign at the given worker count, additionally
// collecting every run's trace hash (and the Progress call order) through the
// serialized Progress callback.
func runWithHashes(c Campaign, workers int) (*Report, []string, []uint64) {
	c.Parallel = workers
	var order []string
	var hashes []uint64
	c.Progress = func(r *Result) {
		order = append(order, r.Spec.ID())
		hashes = append(hashes, r.TraceHash)
	}
	rep := c.Run()
	return rep, order, hashes
}

// TestCampaignParallelEquivalence: a campaign run on a multi-worker pool
// produces exactly the sequential report — same aggregates, same failures,
// same shrunk repros, same per-spec trace hashes, same Progress order.
func TestCampaignParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign in -short mode")
	}
	c := parallelTestCampaign()
	seqRep, seqOrder, seqHashes := runWithHashes(c, 1)
	parRep, parOrder, parHashes := runWithHashes(c, 4)

	if !reflect.DeepEqual(seqOrder, parOrder) {
		t.Fatalf("Progress order diverged:\nseq: %v\npar: %v", seqOrder, parOrder)
	}
	if !reflect.DeepEqual(seqHashes, parHashes) {
		t.Fatalf("per-spec trace hashes diverged:\nseq: %v\npar: %v", seqHashes, parHashes)
	}
	if seqRep.Runs != parRep.Runs {
		t.Fatalf("run counts differ: %d vs %d", seqRep.Runs, parRep.Runs)
	}
	if !reflect.DeepEqual(seqRep.ByBox, parRep.ByBox) {
		t.Fatalf("per-box aggregates differ:\nseq: %+v\npar: %+v", seqRep.ByBox, parRep.ByBox)
	}
	if len(seqRep.Failures) != len(parRep.Failures) {
		t.Fatalf("failure counts differ: %d vs %d", len(seqRep.Failures), len(parRep.Failures))
	}
	for i := range seqRep.Failures {
		a, b := seqRep.Failures[i], parRep.Failures[i]
		if a.Spec.ID() != b.Spec.ID() || a.Category != b.Category ||
			a.TraceHash != b.TraceHash || !reflect.DeepEqual(a.Violations, b.Violations) {
			t.Errorf("failure %d differs:\nseq: %s [%s] %x %v\npar: %s [%s] %x %v",
				i, a.Spec.ID(), a.Category, a.TraceHash, a.Violations,
				b.Spec.ID(), b.Category, b.TraceHash, b.Violations)
		}
	}
	if len(seqRep.Repros) != len(parRep.Repros) {
		t.Fatalf("repro counts differ: %d vs %d", len(seqRep.Repros), len(parRep.Repros))
	}
	for i := range seqRep.Repros {
		a, b := seqRep.Repros[i], parRep.Repros[i]
		if !reflect.DeepEqual(a, b) {
			t.Errorf("repro %d differs:\nseq: %+v\npar: %+v", i, a, b)
		}
	}
	if seqRep.Render() != parRep.Render() {
		t.Fatalf("rendered reports differ:\nseq:\n%s\npar:\n%s", seqRep.Render(), parRep.Render())
	}
}

// TestCampaignParallelWorkerCounts: the report is invariant across a range
// of worker counts, including more workers than runs.
func TestCampaignParallelWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run campaign in -short mode")
	}
	c := parallelTestCampaign()
	c.Shrink = false // shape-only check; shrink equivalence is covered above
	base, _, baseHashes := runWithHashes(c, 1)
	for _, workers := range []int{2, 3, 64} {
		rep, _, hashes := runWithHashes(c, workers)
		if !reflect.DeepEqual(baseHashes, hashes) {
			t.Errorf("workers=%d: trace hashes diverged", workers)
		}
		if rep.Render() != base.Render() {
			t.Errorf("workers=%d: rendered report diverged", workers)
		}
	}
}
