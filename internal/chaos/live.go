package chaos

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/live"
	"repro/internal/livechaos"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
)

// This file is the live-runtime face of the campaign engine: where Execute
// replays a Spec inside the deterministic simulator, RunLive subjects a real
// table — goroutines, wall-clock timers, a fault-injecting bus — to a seeded
// fault schedule and validates the resulting trace with the same checkers.
// The schedule (drop rates, partition windows, crash/restart times) is a
// pure function of the spec, so the same LiveSpec always injects the same
// faults; what the OS scheduler does around them is real nondeterminism,
// which is exactly the point of the exercise.

// LiveCrash is one crash/restart fault of a live schedule: process P is
// crashed At after the run starts and restarted RestartAfter later with
// fresh protocol state (forks resync plus heartbeat reset).
type LiveCrash struct {
	P            rt.ProcID     `json:"p"`
	At           time.Duration `json:"at"`
	RestartAfter time.Duration `json:"restart_after"`
}

// LiveBlackout is a whole-system crash: every process goes down together At
// after the run starts and the full table restarts RestartAfter later — the
// in-process analogue of kill -9 on a server hosting all diners, which is
// how the serve-crash harness exercises recovery end to end.
type LiveBlackout struct {
	At           time.Duration `json:"at"`
	RestartAfter time.Duration `json:"restart_after"`
}

// LiveSpec describes one live chaos run. Links reuses the declarative link
// shape of the simulator campaigns — the identical JSON drives sim.LinkPlan,
// livechaos.ChaosBus, and the livechaos TCP proxy.
type LiveSpec struct {
	Topology string        `json:"topology"`
	N        int           `json:"n"`
	Seed     int64         `json:"seed"`
	Tick     time.Duration `json:"tick,omitempty"`     // default 500µs
	Duration time.Duration `json:"duration,omitempty"` // default 4s
	Links    *LinkSpec     `json:"links,omitempty"`
	Crashes  []LiveCrash   `json:"crashes,omitempty"`
	Blackout *LiveBlackout `json:"blackout,omitempty"` // exclusive with Crashes
}

func (s *LiveSpec) withDefaults() LiveSpec {
	out := *s
	if out.Tick <= 0 {
		out.Tick = 500 * time.Microsecond
	}
	if out.Duration <= 0 {
		out.Duration = 4 * time.Second
	}
	return out
}

// Validate rejects live specs the driver cannot execute. All faults must
// finish in the first half of the run: the second half is the convergence
// era the ◇WX verdict is judged on.
func (s LiveSpec) Validate() error {
	sp := s.withDefaults()
	if sp.N < 2 {
		return fmt.Errorf("chaos: live spec n=%d, need at least 2 diners", sp.N)
	}
	if _, err := buildGraph(sp.Topology, sp.N); err != nil {
		return err
	}
	if sp.Links != nil {
		if err := sp.Links.Plan().Validate(sp.N); err != nil {
			return err
		}
		for _, w := range sp.Links.Windows {
			if time.Duration(w.End)*sp.Tick > sp.Duration/2 {
				return fmt.Errorf("chaos: live window ends at tick %d, past the run's half-point", w.End)
			}
		}
	}
	seen := make(map[rt.ProcID]bool)
	for _, c := range sp.Crashes {
		if c.P < 0 || int(c.P) >= sp.N {
			return fmt.Errorf("chaos: live crash of process %d out of range 0..%d", c.P, sp.N-1)
		}
		if seen[c.P] {
			return fmt.Errorf("chaos: duplicate live crash of process %d", c.P)
		}
		seen[c.P] = true
		if c.RestartAfter <= 0 {
			return fmt.Errorf("chaos: live crash of %d needs a positive restart gap", c.P)
		}
		if c.At+c.RestartAfter > sp.Duration/2 {
			return fmt.Errorf("chaos: live crash of %d recovers past the run's half-point", c.P)
		}
	}
	if b := sp.Blackout; b != nil {
		if len(sp.Crashes) > 0 {
			return fmt.Errorf("chaos: live blackout and per-process crashes are mutually exclusive")
		}
		if b.RestartAfter <= 0 {
			return fmt.Errorf("chaos: live blackout needs a positive restart gap")
		}
		if b.At+b.RestartAfter > sp.Duration/2 {
			return fmt.Errorf("chaos: live blackout recovers past the run's half-point")
		}
	}
	return nil
}

// ID is the spec's short identity for reports.
func (s LiveSpec) ID() string {
	sp := s.withDefaults()
	crashes := "none"
	if len(sp.Crashes) > 0 {
		parts := make([]string, len(sp.Crashes))
		for i, c := range sp.Crashes {
			parts[i] = fmt.Sprintf("%d@%v+%v", c.P, c.At, c.RestartAfter)
		}
		crashes = strings.Join(parts, ",")
	}
	if sp.Blackout != nil {
		crashes = fmt.Sprintf("blackout@%v+%v", sp.Blackout.At, sp.Blackout.RestartAfter)
	}
	return fmt.Sprintf("live/%s%d/seed%d/%v/%s/%s", sp.Topology, sp.N, sp.Seed, sp.Duration, sp.Links, crashes)
}

// LiveResult is the verdict of one live run.
type LiveResult struct {
	Spec        LiveSpec
	End         rt.Time // run length in ticks
	Meals       []int   // per-diner eating sessions
	Dropped     int64   // bus faults actually injected
	Duped       int64
	Recovered   int      // restarts that completed
	Failures    []string // empty = clean verdict
	Interrupted bool     // run cut short; verdict not rendered
}

// Failed reports whether any property check failed.
func (r *LiveResult) Failed() bool { return len(r.Failures) > 0 }

// First returns the first failure, or "ok".
func (r *LiveResult) First() string {
	if len(r.Failures) == 0 {
		return "ok"
	}
	return r.Failures[0]
}

// RunLive executes one live chaos run: a dining table on the live runtime
// over a fault-injecting ChaosBus, with the spec's crash/restart schedule
// applied, validated by the shared trace checkers. interrupt (may be nil)
// cuts the run short without a verdict.
func RunLive(spec LiveSpec, interrupt <-chan struct{}) (*LiveResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sp := spec.withDefaults()
	res := &LiveResult{Spec: spec}
	g, err := buildGraph(sp.Topology, sp.N)
	if err != nil {
		return nil, err
	}

	log := &trace.Log{}
	bus, err := livechaos.NewChaosBus(live.NewChanBus(), livechaos.BusConfig{
		N: sp.N, Plan: sp.Links.Plan(), Seed: sp.Seed, Tick: sp.Tick,
	})
	if err != nil {
		return nil, err
	}
	r := live.New(live.Config{N: sp.N, Tick: sp.Tick, Seed: sp.Seed, Tracer: log, Bus: bus})
	// The bus eats messages, so rebuild reliable channels the same way the
	// simulator campaigns do — with the retransmitting transport. Dropped
	// messages then cost one retransmission timeout, which the heartbeat
	// suspicion timeout must dominate.
	tr := transport.Enable(r, "rt", transport.Config{})
	hb := detector.NewHeartbeat(r, "hb", detector.HeartbeatConfig{
		Interval: 20, Check: 10, Timeout: 600, Bump: 300,
	})
	tbl := forks.New(r, g, "dine", hb, forks.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(r, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 10, EatMax: 30, FirstHunger: 30,
		})
	}
	r.Start()
	bus.ResetClock() // window ticks count from run start, not bus creation

	// The crash schedule. Each fault is its own timeline: crash, wait out
	// the gap (which must exceed the bus's max delay so no pre-crash message
	// is still in flight at restart), then restart with fresh state.
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		start := time.Now()
		if b := sp.Blackout; b != nil {
			// Whole-system crash: take every process down at once, wait out
			// the gap (long enough for all in-flight messages to die), then
			// restart the entire table with fresh protocol state — the same
			// shape a kill -9'd server presents its clients.
			if d := b.At - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-interrupt:
					return
				}
			}
			for _, p := range g.Nodes() {
				r.Crash(p)
			}
			select {
			case <-time.After(b.RestartAfter):
			case <-interrupt:
				return
			}
			for _, p := range g.Nodes() {
				p := p
				if r.Restart(p, func() {
					tr.Reset(p) // first: resync messages need a working sender
					tbl.Reset(p)
					hb.Reset(p)
				}) {
					res.Recovered++
				}
			}
			return
		}
		for _, c := range sp.Crashes {
			if d := c.At - time.Since(start); d > 0 {
				select {
				case <-time.After(d):
				case <-interrupt:
					return
				}
			}
			r.Crash(c.P)
			select {
			case <-time.After(c.RestartAfter):
			case <-interrupt:
				return
			}
			p := c.P
			if r.Restart(p, func() {
				tr.Reset(p) // first: resync messages need a working sender
				tbl.Reset(p)
				hb.Reset(p)
			}) {
				res.Recovered++
			}
		}
	}()

	select {
	case <-time.After(sp.Duration):
	case <-interrupt:
		res.Interrupted = true
	}
	<-crashDone
	end := r.Now()
	r.Stop()
	res.End = end
	res.Dropped, res.Duped, _ = bus.Stats()
	bus.Close()

	eat := log.Sessions("eating")
	res.Meals = make([]int, sp.N)
	for _, p := range g.Nodes() {
		res.Meals[p] = len(eat[trace.SessionKey{Inst: "dine", P: p}])
	}
	if res.Interrupted {
		return res, nil
	}

	// Verdicts. Faults end by the half-point (Validate enforces it), so the
	// run's second half is the convergence era: exclusion violations must
	// have stopped by then, and every diner — the restarted ones included —
	// must still be eating in it.
	wantRecovered := len(sp.Crashes)
	if sp.Blackout != nil {
		wantRecovered = sp.N
	}
	if res.Recovered != wantRecovered {
		res.Failures = append(res.Failures,
			fmt.Sprintf("restarts: %d of %d crashes recovered", res.Recovered, wantRecovered))
	}
	if _, err := checker.EventualWeakExclusion(log, g, "dine", end/2, end); err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("exclusion: %v", err))
	}
	for _, p := range g.Nodes() {
		late := 0
		for _, iv := range eat[trace.SessionKey{Inst: "dine", P: p}] {
			if iv.Start > end/2 {
				late++
			}
		}
		if late == 0 {
			res.Failures = append(res.Failures,
				fmt.Sprintf("starvation: diner %d never ate in the convergence era (%d meals total)", p, res.Meals[p]))
		}
	}
	if want := wantRecovered; want > 0 {
		if got := len(log.Filter(rt.Record{Kind: trace.KindRecover, P: -1, Peer: -1})); got != want {
			res.Failures = append(res.Failures, fmt.Sprintf("trace: %d recover records, want %d", got, want))
		}
	}
	return res, nil
}

// LiveCampaign runs a sequence of live specs, honoring the same interrupt
// contract as the simulator campaign: Ctrl-C finishes nothing mid-air, skips
// the rest, and the partial report says so.
type LiveCampaign struct {
	Specs     []LiveSpec
	Interrupt <-chan struct{}
	Progress  func(*LiveResult) // called per finished run; may be nil
}

// LiveReport aggregates a live campaign.
type LiveReport struct {
	Results []*LiveResult
	Errors  []error // specs that failed validation or setup
	Skipped int     // specs not run because of an interrupt
}

// Interrupted reports whether the campaign was cut short.
func (rep *LiveReport) Interrupted() bool {
	for _, r := range rep.Results {
		if r.Interrupted {
			return true
		}
	}
	return rep.Skipped > 0
}

// Clean reports whether every completed run passed every check and nothing
// failed to start.
func (rep *LiveReport) Clean() bool {
	if len(rep.Errors) > 0 {
		return false
	}
	for _, r := range rep.Results {
		if r.Failed() {
			return false
		}
	}
	return true
}

// Render formats the report.
func (rep *LiveReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "live chaos campaign: %d runs\n", len(rep.Results))
	for _, r := range rep.Results {
		status := "ok"
		switch {
		case r.Interrupted:
			status = "interrupted"
		case r.Failed():
			status = "FAIL " + strings.Join(r.Failures, "; ")
		}
		fmt.Fprintf(&b, "  %-60s %s\n", r.Spec.ID(), status)
		if !r.Interrupted {
			fmt.Fprintf(&b, "    t=%d meals=%v dropped=%d duped=%d recovered=%d\n",
				r.End, r.Meals, r.Dropped, r.Duped, r.Recovered)
		}
	}
	for _, err := range rep.Errors {
		fmt.Fprintf(&b, "  error: %v\n", err)
	}
	if rep.Skipped > 0 {
		fmt.Fprintf(&b, "  skipped: %d runs (interrupted)\n", rep.Skipped)
	}
	return b.String()
}

// Run executes the campaign sequentially. Live runs occupy wall-clock time
// and real cores; unlike simulator runs they are not worth parallelizing —
// co-scheduling two live tables just distorts both runs' timing.
func (c LiveCampaign) Run() *LiveReport {
	rep := &LiveReport{}
	for i, spec := range c.Specs {
		select {
		case <-c.Interrupt:
			rep.Skipped = len(c.Specs) - i
			return rep
		default:
		}
		res, err := RunLive(spec, c.Interrupt)
		if err != nil {
			rep.Errors = append(rep.Errors, err)
			continue
		}
		rep.Results = append(rep.Results, res)
		if c.Progress != nil {
			c.Progress(res)
		}
	}
	return rep
}
