package chaos

import (
	"strings"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/sim"
)

func TestLiveSpecValidate(t *testing.T) {
	good := LiveSpec{Topology: "ring", N: 5, Seed: 1,
		Crashes: []LiveCrash{{P: 2, At: time.Second, RestartAfter: 500 * time.Millisecond}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
	goodBlackout := LiveSpec{Topology: "ring", N: 5, Seed: 1,
		Blackout: &LiveBlackout{At: time.Second, RestartAfter: 500 * time.Millisecond}}
	if err := goodBlackout.Validate(); err != nil {
		t.Fatalf("good blackout spec rejected: %v", err)
	}
	if id := goodBlackout.ID(); !strings.Contains(id, "blackout@1s+500ms") {
		t.Errorf("blackout spec ID %q does not name the blackout", id)
	}
	bad := []LiveSpec{
		{Topology: "ring", N: 1},
		{Topology: "möbius", N: 5},
		{Topology: "ring", N: 5, Crashes: []LiveCrash{{P: 9, RestartAfter: time.Second}}},
		{Topology: "ring", N: 5, Crashes: []LiveCrash{{P: 1, At: time.Second}}}, // no gap
		{Topology: "ring", N: 5, Crashes: []LiveCrash{ // recovers after the half-point
			{P: 1, At: 3 * time.Second, RestartAfter: time.Second}}},
		{Topology: "ring", N: 5, Links: &LinkSpec{ // window past the half-point
			Windows: []WindowSpec{{Start: 0, End: 1 << 40, Drop: 1}}}},
		{Topology: "ring", N: 5, Crashes: []LiveCrash{ // duplicate crash
			{P: 1, At: time.Second, RestartAfter: 100 * time.Millisecond},
			{P: 1, At: time.Second, RestartAfter: 100 * time.Millisecond}}},
		{Topology: "ring", N: 5, // blackout and per-process crashes together
			Crashes:  []LiveCrash{{P: 1, At: time.Second, RestartAfter: 100 * time.Millisecond}},
			Blackout: &LiveBlackout{At: time.Second, RestartAfter: 100 * time.Millisecond}},
		{Topology: "ring", N: 5, // blackout without a restart gap
			Blackout: &LiveBlackout{At: time.Second}},
		{Topology: "ring", N: 5, // blackout recovering past the half-point
			Blackout: &LiveBlackout{At: 3 * time.Second, RestartAfter: time.Second}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

// TestRunLiveChaos is the in-process acceptance run: message drops, one
// partition window, and one crash/restart against a real live table, with
// the shared checkers rendering the verdict. Timing-sensitive by nature, so
// the schedule is kept gentle enough for a loaded CI machine.
func TestRunLiveChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("live chaos run occupies seconds of wall clock")
	}
	spec := LiveSpec{
		Topology: "ring", N: 5, Seed: 7,
		Tick:     500 * time.Microsecond,
		Duration: 6 * time.Second,
		Links: &LinkSpec{
			Drop: 0.10,
			Windows: []WindowSpec{
				// ~0.5s..1s into the run: one side of the ring is cut off.
				{Start: 1000, End: 2000, Drop: 1, Side: []sim.ProcID{0, 1}},
			},
		},
		Crashes: []LiveCrash{{P: 2, At: 1500 * time.Millisecond, RestartAfter: 500 * time.Millisecond}},
	}
	res, err := RunLive(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("live chaos run failed: %v", res.Failures)
	}
	if res.Dropped == 0 {
		t.Error("fault schedule dropped nothing")
	}
	if res.Recovered != 1 {
		t.Errorf("recovered = %d, want 1", res.Recovered)
	}
	for p, meals := range res.Meals {
		if meals == 0 {
			t.Errorf("diner %d never ate", p)
		}
	}
}

// TestRunLiveBlackout is the in-process shape of the serve-crash harness:
// every process dies at once mid-run, the whole table restarts after the
// gap, and the run must still converge — all diners eating again, exclusion
// clean in the second half, and one recover record per process.
func TestRunLiveBlackout(t *testing.T) {
	if testing.Short() {
		t.Skip("live blackout run occupies seconds of wall clock")
	}
	spec := LiveSpec{
		Topology: "ring", N: 5, Seed: 11,
		Tick:     500 * time.Microsecond,
		Duration: 6 * time.Second,
		Blackout: &LiveBlackout{At: 1500 * time.Millisecond, RestartAfter: 500 * time.Millisecond},
	}
	res, err := RunLive(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("live blackout run failed: %v", res.Failures)
	}
	if res.Recovered != spec.N {
		t.Errorf("recovered = %d, want %d (the whole table)", res.Recovered, spec.N)
	}
	for p, meals := range res.Meals {
		if meals == 0 {
			t.Errorf("diner %d never ate", p)
		}
	}
}

// TestLiveCampaignInterrupt: an interrupt closed before the campaign starts
// skips every spec and the report says so.
func TestLiveCampaignInterrupt(t *testing.T) {
	interrupt := make(chan struct{})
	close(interrupt)
	c := LiveCampaign{
		Specs:     []LiveSpec{{Topology: "ring", N: 5, Seed: 1}, {Topology: "ring", N: 5, Seed: 2}},
		Interrupt: interrupt,
	}
	rep := c.Run()
	if !rep.Interrupted() {
		t.Error("campaign not marked interrupted")
	}
	if rep.Skipped != 2 {
		t.Errorf("skipped = %d, want 2", rep.Skipped)
	}
	if rep.Clean() != true {
		t.Error("an interrupted-before-start campaign has no failures")
	}
	_ = rep.Render()
	_ = rt.ProcID(0)
}
