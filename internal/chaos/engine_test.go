package chaos

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestExecuteDeterministic pins the determinism contract the repro pipeline
// rests on: identical (topology, box, fault plan, delay policy, seed) must
// yield bit-identical traces, for every box in the registry.
func TestExecuteDeterministic(t *testing.T) {
	for _, box := range Boxes() {
		spec := Spec{
			Topology: "ring", N: 5, Box: box, Seed: 11, Horizon: 8000,
			Delay:   DelaySpec{Kind: "gst", GST: 400, PreMax: 90, PostMax: 8},
			Crashes: []CrashSpec{{P: 3, At: 900}},
		}
		first := Execute(spec)
		if first.Log == nil || first.Log.Len() == 0 {
			t.Fatalf("%s: empty trace", box)
		}
		for i := 0; i < 2; i++ {
			again := Execute(spec)
			if again.TraceHash != first.TraceHash {
				t.Errorf("%s: run %d trace hash %x != %x", box, i+2, again.TraceHash, first.TraceHash)
			}
			if again.End != first.End || again.Category != first.Category {
				t.Errorf("%s: run %d diverged: end %d/%d, category %q/%q",
					box, i+2, again.End, first.End, again.Category, first.Category)
			}
		}
	}
}

// TestSeedChangesTrace is the other half of the contract: the hash is
// actually sensitive to the schedule, not a constant.
func TestSeedChangesTrace(t *testing.T) {
	spec := Spec{
		Topology: "ring", N: 5, Box: "forks", Seed: 1, Horizon: 8000,
		Delay: DelaySpec{Kind: "uniform", Min: 1, Max: 9},
	}
	a := Execute(spec)
	spec.Seed = 2
	b := Execute(spec)
	if a.TraceHash == b.TraceHash {
		t.Fatal("different seeds produced identical trace hashes")
	}
}

// TestCampaignCompliantBoxesClean is the headline acceptance run: the default
// campaign sweeps all four real dining boxes across topologies, sizes, seeds,
// and fault-plan shapes (240 runs) and none of them may violate a property.
func TestCampaignCompliantBoxesClean(t *testing.T) {
	rep := DefaultCampaign(0).Run()
	if rep.Runs < 200 {
		t.Fatalf("campaign ran %d specs, acceptance needs at least 200", rep.Runs)
	}
	if !rep.CompliantClean() {
		t.Fatalf("compliant boxes violated properties:\n%s", rep.Render())
	}
	for _, box := range []string{"forks", "token", "perfect", "trap"} {
		st := rep.ByBox[box]
		if st == nil || st.Runs == 0 {
			t.Errorf("box %s was not exercised", box)
		}
	}
}

// TestBuggyBoxCaughtAndShrunk proves the engine catches real violations: the
// planted-bug box (forks minus its crash-tolerance override) must be flagged
// under the state-triggered fault plan, and the shrinker must reduce the
// failure to a replayable repro with at most 2 crashes.
func TestBuggyBoxCaughtAndShrunk(t *testing.T) {
	c := Campaign{
		Boxes:      []string{"buggy"},
		Topologies: []string{"ring", "clique", "star"},
		Sizes:      []int{4, 6},
		Seeds:      []int64{1, 2},
		Horizon:    30000,
		Delays:     []DelaySpec{{Kind: "gst", GST: 800, PreMax: 120, PostMax: 8}},
		Plans:      []string{"none", "single", "eating", "staggered", "minority"},
	}
	rep := c.Run()
	if len(rep.Failures) == 0 {
		t.Fatal("planted-bug box survived the campaign uncaught")
	}
	// The bug is latent: it needs a fault to manifest, so the crash-free runs
	// must stay clean — that is what makes it a chaos-engine test and not a
	// smoke-test catch.
	var stateTriggered, multiCrash *Result
	for _, f := range rep.Failures {
		if len(f.Spec.Crashes) == 0 {
			t.Errorf("crash-free run %s failed (%s); the planted bug should be fault-triggered",
				f.Spec.ID(), f.First())
		}
		if f.Category != CatStarvation {
			t.Errorf("run %s failed as %q, want %q", f.Spec.ID(), f.Category, CatStarvation)
		}
		if stateTriggered == nil && len(f.Spec.Crashes) == 1 && f.Spec.Crashes[0].When != "" {
			stateTriggered = f
		}
		if multiCrash == nil && len(f.Spec.Crashes) >= 2 {
			multiCrash = f
		}
	}
	if stateTriggered == nil {
		t.Fatal("no state-triggered (crash-when-eating) failure in the campaign")
	}
	if multiCrash == nil {
		t.Fatal("no multi-crash failure in the campaign")
	}
	// Shrink one failure of each flavor (shrinking all ~40 is just wall-clock):
	// the state-triggered strike must survive as-is, and the multi-crash plan
	// must collapse to the few crashes that matter.
	var repros []*Repro
	for _, f := range []*Result{stateTriggered, multiCrash} {
		r, err := Shrink(f.Spec)
		if err != nil {
			t.Fatal(err)
		}
		repros = append(repros, r)
	}
	for _, r := range repros {
		if len(r.Spec.Crashes) > 2 {
			t.Errorf("repro %s kept %d crashes, acceptance bar is ≤ 2", r.Spec.ID(), len(r.Spec.Crashes))
		}
		if len(r.Spec.Crashes) == 0 {
			t.Errorf("repro %s has no crashes, yet the bug needs a fault to fire", r.Spec.ID())
		}
		if r.Spec.Horizon >= 30000 {
			t.Errorf("repro %s did not shrink the horizon", r.Spec.ID())
		}
		if _, err := r.Replay(); err != nil {
			t.Errorf("repro does not replay: %v", err)
		}
	}
}

// TestShrinkRejectsHealthySpec pins the shrinker's precondition.
func TestShrinkRejectsHealthySpec(t *testing.T) {
	_, err := Shrink(Spec{
		Topology: "ring", N: 4, Box: "forks", Seed: 1, Horizon: 5000,
		Delay: DelaySpec{Kind: "fixed", Delay: 4},
	})
	if err == nil || !strings.Contains(err.Error(), "does not fail") {
		t.Fatalf("got %v, want does-not-fail error", err)
	}
}

// TestWatchdogStopsRunawayRun wires the budget watchdog end to end: a run
// whose event budget is deliberately starved must come back as a structured
// watchdog diagnostic with the trace tail attached — the chaos-level face of
// the kernel's livelock defense.
func TestWatchdogStopsRunawayRun(t *testing.T) {
	res := Execute(Spec{
		Topology: "ring", N: 5, Box: "forks", Seed: 1, Horizon: 30000,
		Delay:  DelaySpec{Kind: "fixed", Delay: 4},
		Budget: BudgetSpec{MaxEvents: 2000},
	})
	if res.Category != CatWatchdog {
		t.Fatalf("got category %q (%v), want %q", res.Category, res.First(), CatWatchdog)
	}
	if res.Failure == nil || res.Failure.Watchdog == nil {
		t.Fatal("watchdog result carries no structured failure")
	}
	w := res.Failure.Watchdog
	if w.Events < 2000 {
		t.Errorf("budget records %d events, expected at least the 2000 cap", w.Events)
	}
	if len(w.Tail) == 0 {
		t.Error("watchdog diagnostic has no trace tail")
	}
	diag := w.Diagnostic()
	for _, want := range []string{"events", "trace tail"} {
		if !strings.Contains(diag, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, diag)
		}
	}
	if res.End >= 30000 {
		t.Errorf("watchdog did not stop the run early (end=%d)", res.End)
	}
}

// TestReplayRepros replays every committed repro artifact under testdata/ and
// asserts the recorded violation still reproduces — shrunk counterexamples
// double as permanent regression tests.
func TestReplayRepros(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no repro artifacts committed under testdata/")
	}
	for _, path := range paths {
		r, err := LoadRepro(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res, err := r.Replay()
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		t.Logf("%s: %s replayed to [%s] %s", filepath.Base(path), r.Spec.ID(), res.Category, res.First())
	}
}
