// Package core implements the paper's primary contribution: the asynchronous
// reduction that extracts the eventually perfect failure detector ◇P from
// any black-box solution to wait-free dining under eventual weak exclusion
// (Algorithms 1 and 2 of Sastry, Pike and Welch), establishing that ◇P is
// the weakest failure detector for WF-◇WX.
//
// For each ordered pair (p, q) where p monitors q, the construction runs two
// independent two-diner dining instances DX₀ and DX₁ over the conflict graph
// K₂(p, q). Process p runs two witness threads w₀, w₁ (Alg. 1), one per
// instance; process q runs two subject threads s₀, s₁ (Alg. 2). The witness
// threads take turns dining; the subject threads coordinate a hand-off so
// that the start and end of each subject's eating session overlaps the other
// subject's session — in the exclusive suffix some subject is always eating,
// which throttles the witnesses: a witness cannot eat twice in its instance
// without its subject eating in between. Every subject eating session sends
// exactly one ping and exits only after p's ack. A witness that reaches its
// critical section trusts q exactly when a ping arrived since its last meal.
//
// If q crashes, wait-freedom lets the witnesses eat forever while pings have
// stopped: q is eventually permanently suspected (strong completeness). If
// q is correct, after the dining boxes stop making scheduling mistakes every
// witness meal is preceded by a fresh ping: q is eventually permanently
// trusted (eventual strong accuracy).
//
// The same construction applied to a wait-free perpetual weak exclusion box
// extracts the trusting oracle T (Section 9); package core exposes that as
// well, and also ships the non-black-box construction of [8] whose failure
// the paper demonstrates (see flawed.go).
package core

import (
	"fmt"

	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// PairMonitor is the reduction instance for one ordered pair: p (the
// witness process) monitors q (the subject process). Its output is the
// suspect bit of Alg. 1, initially true.
type PairMonitor struct {
	k    rt.Runtime
	p, q rt.ProcID
	inst string // oracle instance name used in trace records

	dx [2]dining.Table
	wd [2]dining.Diner // witness-side stubs, at p
	sd [2]dining.Diner // subject-side stubs, at q

	// Witness state (Alg. 1), local to p.
	switchVar int
	havePing  [2]bool
	suspect   bool

	// Subject state (Alg. 2), local to q.
	trigger int
	ping    [2]bool

	stats MessageStats // ping/ack accounting (verification device)
}

// NewPairMonitor wires the reduction for the ordered pair (p, q) on top of
// two fresh dining instances built by factory. inst names the extracted
// oracle in trace records; table instances are named inst/p-q/0 and
// inst/p-q/1.
func NewPairMonitor(k rt.Runtime, p, q rt.ProcID, factory dining.Factory, inst string) *PairMonitor {
	if p == q {
		panic("core: a process cannot monitor itself")
	}
	m := &PairMonitor{
		k: k, p: p, q: q, inst: inst,
		suspect: true,                // initially suspect q (Alg. 1)
		ping:    [2]bool{true, true}, // initially enabled (Alg. 2)
	}
	base := fmt.Sprintf("%s/%d-%d", inst, p, q)
	for i := 0; i < 2; i++ {
		g := graph.Pair(p, q)
		m.dx[i] = factory(k, g, fmt.Sprintf("%s/%d", base, i))
		m.wd[i] = m.dx[i].Diner(p)
		m.sd[i] = m.dx[i].Diner(q)
	}
	// Emit the initial suspicion so checkers see the paper's initial state.
	k.After(p, 1, func() {
		k.Emit(rt.Record{P: p, Kind: "suspect", Peer: q, Inst: inst})
	})

	for i := 0; i < 2; i++ {
		i := i
		// ---- Witness thread p.wᵢ (Alg. 1) ----
		// Action W_h: become hungry in DXᵢ when both witnesses think and it
		// is this witness's turn.
		k.AddAction(p, base+fmt.Sprintf("/W%d_h", i),
			func() bool {
				return m.wd[i].State() == dining.Thinking &&
					m.wd[1-i].State() == dining.Thinking &&
					m.switchVar == i
			},
			func() { m.wd[i].Hungry() })
		// Action W_x: upon eating, judge q by the ping bit, flip the turn,
		// and exit.
		k.AddAction(p, base+fmt.Sprintf("/W%d_x", i),
			func() bool { return m.wd[i].State() == dining.Eating },
			func() {
				m.setSuspect(!m.havePing[i])
				m.havePing[i] = false
				m.switchVar = 1 - i
				m.wd[i].Exit()
			})
		// Action W_p: acknowledge each ping.
		k.Handle(p, base+fmt.Sprintf("/ping%d", i), func(msg rt.Message) {
			m.stats.PingsRecv[i]++
			m.havePing[i] = true
			m.stats.AcksSent[i]++
			k.Send(p, q, base+fmt.Sprintf("/ack%d", i), nil)
		})

		// ---- Subject thread q.sᵢ (Alg. 2) ----
		// Action S_h: become hungry in DXᵢ when triggered.
		k.AddAction(q, base+fmt.Sprintf("/S%d_h", i),
			func() bool { return m.sd[i].State() == dining.Thinking && m.trigger == i },
			func() { m.sd[i].Hungry() })
		// Action S_p: while eating alone, send the single ping of this
		// session.
		k.AddAction(q, base+fmt.Sprintf("/S%d_p", i),
			func() bool {
				return m.sd[i].State() == dining.Eating &&
					m.sd[1-i].State() != dining.Eating &&
					m.ping[i]
			},
			func() {
				m.ping[i] = false
				m.stats.PingsSent[i]++
				k.Send(q, p, base+fmt.Sprintf("/ping%d", i), nil)
			})
		// Action S_a: the ack schedules the other subject.
		k.Handle(q, base+fmt.Sprintf("/ack%d", i), func(rt.Message) {
			m.stats.AcksRecv[i]++
			m.trigger = 1 - i
		})
		// Action S_x: exit only after the peer subject has started eating
		// (the hand-off that keeps some subject always eating).
		k.AddAction(q, base+fmt.Sprintf("/S%d_x", i),
			func() bool {
				return m.sd[i].State() == dining.Eating &&
					m.sd[1-i].State() == dining.Eating &&
					m.trigger == 1-i
			},
			func() {
				m.ping[i] = true
				m.sd[i].Exit()
			})
	}
	return m
}

// Suspect returns the current output of the monitor: does p suspect q?
func (m *PairMonitor) Suspect() bool { return m.suspect }

// Witness returns the monitoring process p.
func (m *PairMonitor) Witness() rt.ProcID { return m.p }

// Subject returns the monitored process q.
func (m *PairMonitor) Subject() rt.ProcID { return m.q }

// Tables returns the two underlying dining instances (for tests that
// inspect the black box).
func (m *PairMonitor) Tables() [2]dining.Table { return m.dx }

func (m *PairMonitor) setSuspect(v bool) {
	if v == m.suspect {
		return
	}
	m.suspect = v
	kind := "trust"
	if v {
		kind = "suspect"
	}
	m.k.Emit(rt.Record{P: m.p, Kind: kind, Peer: m.q, Inst: m.inst})
}

// Extractor assembles a complete failure-detector module set from pair
// monitors over every ordered pair of procs: the paper's reduction "for
// each ordered pair of processes". Over a WF-◇WX factory the result
// satisfies the ◇P axioms; over a wait-free ℙWX factory it satisfies the
// trusting oracle T's axioms (Section 9).
type Extractor struct {
	name     string
	monitors map[[2]rt.ProcID]*PairMonitor
}

// NewExtractor builds pair monitors for all ordered pairs of procs using
// the given black-box dining factory. name is the oracle instance name.
func NewExtractor(k rt.Runtime, procs []rt.ProcID, factory dining.Factory, name string) *Extractor {
	e := &Extractor{name: name, monitors: make(map[[2]rt.ProcID]*PairMonitor)}
	for _, p := range procs {
		for _, q := range procs {
			if p == q {
				continue
			}
			e.monitors[[2]rt.ProcID{p, q}] = NewPairMonitor(k, p, q, factory, name)
		}
	}
	return e
}

// Name implements detector.Oracle.
func (e *Extractor) Name() string { return e.name }

// Suspected implements detector.Oracle: the output of p's module about q.
// Pairs that are not monitored (e.g. p == q or q outside the monitored set)
// are reported unsuspected.
func (e *Extractor) Suspected(p, q rt.ProcID) bool {
	if m, ok := e.monitors[[2]rt.ProcID{p, q}]; ok {
		return m.Suspect()
	}
	return false
}

// Monitor returns the pair monitor for (p, q), or nil if the pair is not
// monitored.
func (e *Extractor) Monitor(p, q rt.ProcID) *PairMonitor {
	return e.monitors[[2]rt.ProcID{p, q}]
}
