package core

import (
	"fmt"

	"repro/internal/dining"
	"repro/internal/rt"
)

// MessageStats counts the reduction's own protocol messages for one pair
// monitor. Conservation (sent minus received) makes the in-transit count of
// Lemma 3 observable without opening the network.
type MessageStats struct {
	PingsSent [2]int64 // by the subject, per instance
	PingsRecv [2]int64 // by the witness, per instance
	AcksSent  [2]int64 // by the witness, per instance
	AcksRecv  [2]int64 // by the subject, per instance
}

// PingsInFlight returns the pings of instance i currently in transit.
func (s MessageStats) PingsInFlight(i int) int64 { return s.PingsSent[i] - s.PingsRecv[i] }

// AcksInFlight returns the acks of instance i currently in transit.
func (s MessageStats) AcksInFlight(i int) int64 { return s.AcksSent[i] - s.AcksRecv[i] }

// Stats returns the monitor's message accounting.
func (m *PairMonitor) Stats() MessageStats { return m.stats }

// WitnessState returns witness thread i's dining state (for experiment
// instrumentation).
func (m *PairMonitor) WitnessState(i int) dining.State { return m.wd[i].State() }

// SubjectState returns subject thread i's dining state.
func (m *PairMonitor) SubjectState(i int) dining.State { return m.sd[i].State() }

// SubjectEating reports whether some subject thread is eating — the body of
// Lemma 8's suffix invariant (s₀ eating ∨ s₁ eating).
func (m *PairMonitor) SubjectEating() bool {
	return m.sd[0].State() == dining.Eating || m.sd[1].State() == dining.Eating
}

// CheckInvariants evaluates the paper's always-invariants (they hold from
// the initial configuration, not merely eventually) in the monitor's current
// configuration and returns a description of each violated one:
//
//	Lemma 2: (sᵢ.state ≠ eating) ⇒ (pingᵢ = true)
//	Lemma 3: (sᵢ.state ≠ eating ∧ pingᵢ) ⇒ no ping/ack of instance i in transit
//	Lemma 4: (sᵢ.state = hungry) ⇒ (trigger = i)
//	Lemma 9: (w₀.state = thinking) ∨ (w₁.state = thinking)
//
// Lemma 8's invariant is a suffix property; sample SubjectEating instead.
// The checks read both endpoints' state atomically, which only the
// simulation harness can do — this is a verification device, not part of
// the algorithm.
func (m *PairMonitor) CheckInvariants() []string {
	var bad []string
	crashed := m.k.Crashed(m.p) || m.k.Crashed(m.q)
	if crashed {
		// After a crash the dead side's variables are frozen; the paper's
		// invariants quantify over live configurations.
		return nil
	}
	for i := 0; i < 2; i++ {
		if m.sd[i].State() != dining.Eating && !m.ping[i] {
			bad = append(bad, fmt.Sprintf("lemma2[i=%d]: subject not eating but ping disabled", i))
		}
		if m.sd[i].State() != dining.Eating && m.ping[i] {
			if m.stats.PingsInFlight(i) != 0 || m.stats.AcksInFlight(i) != 0 {
				bad = append(bad, fmt.Sprintf("lemma3[i=%d]: %d pings, %d acks in transit",
					i, m.stats.PingsInFlight(i), m.stats.AcksInFlight(i)))
			}
		}
		if m.sd[i].State() == dining.Hungry && m.trigger != i {
			bad = append(bad, fmt.Sprintf("lemma4[i=%d]: subject hungry but trigger=%d", i, m.trigger))
		}
	}
	if m.wd[0].State() != dining.Thinking && m.wd[1].State() != dining.Thinking {
		bad = append(bad, fmt.Sprintf("lemma9: witnesses simultaneously %v and %v",
			m.wd[0].State(), m.wd[1].State()))
	}
	return bad
}

// WatchInvariants polls CheckInvariants every interval ticks (attached to an
// arbitrary live process's timer wheel; the check itself is global) and
// reports each violation through the callback. It also samples Lemma 8's
// suffix invariant and reports, at each poll after `suffixFrom`, a violation
// if no subject is eating. Returns a counter that holds the total number of
// violations seen.
func (m *PairMonitor) WatchInvariants(interval, suffixFrom rt.Time, report func(at rt.Time, what string)) *int {
	count := new(int)
	var poll func()
	poll = func() {
		for _, what := range m.CheckInvariants() {
			*count++
			report(m.k.Now(), what)
		}
		if m.k.Now() >= suffixFrom && !m.k.Crashed(m.q) && !m.k.Crashed(m.p) && !m.SubjectEating() {
			*count++
			report(m.k.Now(), "lemma8-suffix: no subject eating")
		}
		m.k.After(m.p, interval, poll)
	}
	m.k.After(m.p, interval, poll)
	return count
}
