package core_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/trap"
	"repro/internal/sim"
	"repro/internal/trace"
)

const era = sim.Time(2500)

// trapRig: kernel with 2 protocol processes plus coordinator(s) at 2, 3;
// trap tables with the given mistake era.
func trapRig(seed int64) (*sim.Kernel, *trace.Log, dining.Factory) {
	log := &trace.Log{}
	k := sim.NewKernel(4, sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 12}))
	factory := trap.Factory([]sim.ProcID{2, 3}, era)
	return k, log, factory
}

// TestFlawedConstructionBreaksOverTrap is the executable Section 3
// counterexample: over the trap box — a legal WF-◇WX service — the [8]
// construction suspects a correct process infinitely often, violating
// eventual strong accuracy. The run is engineered exactly as in the paper:
// the subject q enters its critical section during the mistake era and
// never exits.
func TestFlawedConstructionBreaksOverTrap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k, log, factory := trapRig(seed)
		core.NewFlawedMonitor(k, 0, 1, factory, "flawed", 25)
		end := k.Run(50000)
		// Both processes are correct, yet p keeps suspecting q: suspicion
		// transitions continue into the last quarter of the run.
		n := checker.MistakeCount(log, "flawed", 0, 1, true)
		if n < 10 {
			t.Fatalf("seed %d: only %d suspicions; the counterexample did not bite", seed, n)
		}
		if _, err := checker.EventualStrongAccuracy(log, "flawed", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err == nil {
			t.Fatalf("seed %d: flawed construction unexpectedly satisfied ◇P accuracy over the trap", seed)
		}
	}
}

// TestOurReductionSurvivesTrap: the paper's own reduction over the same
// adversarial black box still implements ◇P — the subjects' eating
// sessions stay finite while the witness lives, so the escape clause
// closes.
func TestOurReductionSurvivesTrap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		k, log, factory := trapRig(seed)
		m := core.NewPairMonitor(k, 0, 1, factory, "xp")
		end := k.Run(50000)
		if m.Suspect() {
			t.Fatalf("seed %d: reduction still suspects correct subject", seed)
		}
		if _, err := checker.EventualStrongAccuracy(log, "xp", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestOurReductionSurvivesTrapWithCrash: completeness over the trap box.
func TestOurReductionSurvivesTrapWithCrash(t *testing.T) {
	k, log, factory := trapRig(4)
	m := core.NewPairMonitor(k, 0, 1, factory, "xp")
	k.CrashAt(1, 6000)
	end := k.Run(50000)
	if !m.Suspect() {
		t.Fatal("reduction trusts crashed subject")
	}
	if _, err := checker.StrongCompleteness(log, "xp", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
		t.Error(err)
	}
}

// TestFlawedConstructionWorksOverForks documents the other half of the
// Section 3 analysis: the [8] construction is *not universally* wrong — it
// converges over a box (like the fork algorithm) where a never-exiting
// eater simply keeps its forks and locks the witness out.
func TestFlawedConstructionWorksOverForks(t *testing.T) {
	for _, seed := range []int64{5, 6} {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 100, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		factory := forks.Factory(native, forks.Config{})
		fm := core.NewFlawedMonitor(k, 0, 1, factory, "flawed", 25)
		end := k.Run(50000)
		if fm.Suspect() {
			t.Fatalf("seed %d: flawed construction ended suspecting a correct subject over forks", seed)
		}
		if _, err := checker.EventualStrongAccuracy(log, "flawed", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
