package core_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
)

// rig is a small harness: a kernel with n processes, a trace log, a GST
// delay policy, and a native heartbeat ◇P powering the fork-algorithm black box.
type rig struct {
	k       *sim.Kernel
	log     *trace.Log
	native  *detector.Heartbeat
	factory dining.Factory
	gst     sim.Time
}

func newRig(t testing.TB, n int, seed int64, gst sim.Time) *rig {
	t.Helper()
	log := &trace.Log{}
	k := sim.NewKernel(n,
		sim.WithSeed(seed),
		sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: gst, PreMax: 120, PostMax: 8}),
	)
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	return &rig{
		k:       k,
		log:     log,
		native:  native,
		factory: forks.Factory(native, forks.Config{}),
		gst:     gst,
	}
}

func procs(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i)
	}
	return out
}

// TestPairMonitorAccuracy: with both processes correct, the extracted
// output converges to permanent trust (Theorem 2, one pair).
func TestPairMonitorAccuracy(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		r := newRig(t, 2, seed, 800)
		m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
		horizon := r.k.Run(40000)
		if m.Suspect() {
			t.Errorf("seed %d: witness still suspects correct subject at end of run", seed)
		}
		// No suspicion transitions in the last third of the run.
		convergedBy := horizon * 2 / 3
		if _, err := checker.EventualStrongAccuracy(r.log, "xp", [][2]sim.ProcID{{0, 1}}, true, convergedBy); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestPairMonitorCompleteness: if the subject crashes, the witness
// eventually and permanently suspects it (Theorem 1, one pair).
func TestPairMonitorCompleteness(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, crashAt := range []sim.Time{50, 2000, 9000} {
			r := newRig(t, 2, seed, 800)
			m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
			r.k.CrashAt(1, crashAt)
			horizon := r.k.Run(40000)
			if !m.Suspect() {
				t.Errorf("seed %d crashAt %d: witness trusts crashed subject at end of run", seed, crashAt)
			}
			if _, err := checker.StrongCompleteness(r.log, "xp", [][2]sim.ProcID{{0, 1}}, true, horizon*2/3); err != nil {
				t.Errorf("seed %d crashAt %d: %v", seed, crashAt, err)
			}
		}
	}
}

// TestPairMonitorWitnessCrash: if the witness crashes, the subject may eat
// forever (paper, Section 8) but nothing breaks: the run completes and the
// dining boxes stay consistent.
func TestPairMonitorWitnessCrash(t *testing.T) {
	r := newRig(t, 2, 7, 800)
	core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.CrashAt(0, 3000)
	r.k.Run(20000)
	// The subject's last state may legitimately be an eternal eating
	// session; we only require that no illegal transition panicked and that
	// the witness emitted nothing after its crash.
	for _, rec := range r.log.Records {
		if rec.P == 0 && rec.T > 3000 && rec.Kind != "crash" {
			t.Fatalf("crashed witness emitted %v at t=%d", rec.Kind, rec.T)
		}
	}
}

// TestExtractorIsEventuallyPerfect runs the full extractor (all ordered
// pairs) over three processes with one crash and validates both ◇P axioms —
// the paper's Theorems 1 and 2 together.
func TestExtractorIsEventuallyPerfect(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration test")
	}
	for _, seed := range []int64{11, 12} {
		r := newRig(t, 3, seed, 800)
		core.NewExtractor(r.k, procs(3), r.factory, "xp")
		r.k.CrashAt(2, 5000)
		horizon := r.k.Run(60000)
		if _, err := checker.StrongCompleteness(r.log, "xp", checker.AllPairs(procs(3)), true, horizon*3/4); err != nil {
			t.Errorf("seed %d: completeness: %v", seed, err)
		}
		if _, err := checker.EventualStrongAccuracy(r.log, "xp", checker.AllPairs(procs(3)), true, horizon*3/4); err != nil {
			t.Errorf("seed %d: accuracy: %v", seed, err)
		}
	}
}

// TestWitnessesAlternate checks Lemma 12's shape: between two consecutive
// eating sessions of witness wᵢ, witness w₁₋ᵢ eats exactly once.
func TestWitnessesAlternate(t *testing.T) {
	r := newRig(t, 2, 3, 400)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.Run(30000)
	eat := r.log.Sessions("eating")
	w0 := eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 0}]
	w1 := eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 0}]
	if len(w0) < 3 || len(w1) < 3 {
		t.Fatalf("witnesses did not eat often enough: %d and %d sessions", len(w0), len(w1))
	}
	// Interleaving: session k of w0 starts after session k-1 of w1 and
	// before session k of w1.
	for i := 1; i < len(w0) && i < len(w1); i++ {
		if !(w1[i-1].Start < w0[i].Start) {
			t.Fatalf("witness sessions not alternating at k=%d: w1[%d].Start=%d, w0[%d].Start=%d",
				i, i-1, w1[i-1].Start, i, w0[i].Start)
		}
		if !(w0[i-1].Start < w1[i-1].Start) {
			t.Fatalf("witness sessions not alternating at k=%d: w0 then w1 expected", i)
		}
	}
}

// TestSubjectHandoff checks the Lemma 8 suffix invariant on a real run: in
// the converged suffix, at any moment at least one subject is eating.
func TestSubjectHandoff(t *testing.T) {
	r := newRig(t, 2, 5, 400)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	horizon := r.k.Run(30000)
	eat := r.log.Sessions("eating")
	s0 := eat[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 1}]
	s1 := eat[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 1}]
	if len(s0) < 2 || len(s1) < 2 {
		t.Fatalf("subjects did not eat often enough: %d and %d sessions", len(s0), len(s1))
	}
	// From the second half of the run on, the union of subject sessions
	// covers every instant.
	from := horizon / 2
	all := append(append([]trace.Interval{}, s0...), s1...)
	for tick := from; tick < horizon; tick += 97 {
		covered := false
		for _, iv := range all {
			end := iv.End
			if end == sim.Never {
				end = horizon
			}
			if iv.Start <= tick && tick < end {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("no subject eating at t=%d (Lemma 8 suffix invariant)", tick)
		}
	}
}
