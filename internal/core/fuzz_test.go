package core_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FuzzPairMonitorSchedules drives the full reduction under fuzzer-chosen
// message schedules (every delay comes from the fuzz input) and checks that
// the paper's configuration invariants hold at every poll and that the
// oracle's verdict matches the crash schedule at the end. Under plain
// `go test` the seed corpus runs; under `go test -fuzz=FuzzPairMonitor`
// the schedule space is explored coverage-guided.
func FuzzPairMonitorSchedules(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, int64(-1))
	f.Add([]byte{0, 0, 0, 0}, int64(2000))
	f.Add([]byte{255, 1, 128, 7, 9, 200}, int64(500))
	f.Add([]byte{13, 247, 13, 247, 13}, int64(-1))
	f.Fuzz(func(t *testing.T, pattern []byte, crashAt int64) {
		if len(pattern) > 4096 {
			t.Skip()
		}
		log := &trace.Log{}
		k := sim.NewKernel(2,
			sim.WithSeed(1),
			sim.WithTracer(log),
			sim.WithDelay(&sim.BytesDelay{Pattern: pattern, Max: 32}),
		)
		// A cheap always-accurate oracle keeps the black box wait-free under
		// arbitrary schedules without needing GST tuning.
		oracle := detector.Perfect{K: k}
		m := core.NewPairMonitor(k, 0, 1, forks.Factory(oracle, forks.Config{}), "xp")
		violations := 0
		m.WatchInvariants(23, 1<<62, func(at sim.Time, what string) {
			violations++
			t.Errorf("invariant violated at t=%d: %s", at, what)
		})
		crashed := false
		if crashAt > 0 {
			crashed = true
			k.CrashAt(1, sim.Time(crashAt%8000)+1)
		}
		end := k.Run(20000)
		if violations > 0 {
			t.Fatalf("%d invariant violations under schedule %v", violations, pattern)
		}
		if crashed && !m.Suspect() {
			t.Fatalf("subject crashed but monitor trusts (end=%d)", end)
		}
		if !crashed && m.Suspect() {
			// With a perfect oracle the box makes no scheduling mistakes, so
			// the reduction must have converged to trust by t=20000.
			t.Fatalf("no crash but monitor suspects at end=%d", end)
		}
	})
}

// FuzzForksSchedules checks the dining black box alone under fuzzer-chosen
// schedules: fork conservation, no illegal state transitions (the state
// machine panics on them), and exclusion between trusting live diners.
func FuzzForksSchedules(f *testing.F) {
	f.Add([]byte{3, 1, 4, 1, 5, 9, 2, 6}, uint8(0))
	f.Add([]byte{0}, uint8(1))
	f.Add([]byte{200, 100, 50, 25, 12, 6, 3, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, pattern []byte, crashSel uint8) {
		if len(pattern) > 4096 {
			t.Skip()
		}
		log := &trace.Log{}
		g := graph.Ring(4)
		k := sim.NewKernel(4,
			sim.WithSeed(2),
			sim.WithTracer(log),
			sim.WithDelay(&sim.BytesDelay{Pattern: pattern, Max: 32}),
		)
		oracle := detector.Perfect{K: k}
		tbl := forks.New(k, g, "fk", oracle, forks.Config{})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 3, ThinkMax: 20, EatMin: 2, EatMax: 8,
			})
		}
		if crashSel%3 != 0 {
			k.CrashAt(sim.ProcID(crashSel%4), 3000)
		}
		end := k.Run(15000)
		for _, e := range g.Edges() {
			if tbl.HoldsFork(e[0], e[1]) && tbl.HoldsFork(e[1], e[0]) {
				t.Fatalf("fork (%d,%d) duplicated under schedule %v", e[0], e[1], pattern)
			}
		}
		// With a perfect oracle there are no suspicion mistakes, so the run
		// must be perpetually exclusive.
		if rep, err := checker.PerpetualWeakExclusion(log, g, "fk", end); err != nil {
			t.Fatalf("exclusion violated with a perfect oracle: %v", rep.Violations)
		}
	})
}
