package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestLemma1HungrySubjectsEat: every hunger session of a (correct) subject
// thread ends in eating — in trace terms, every closed hungry interval is
// immediately followed by an eating interval, and subjects accumulate many
// of them.
func TestLemma1HungrySubjectsEat(t *testing.T) {
	r := newRig(t, 2, 11, 500)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.Run(30000)
	for i := 0; i < 2; i++ {
		inst := m.Tables()[i].Name()
		hungry := r.log.Sessions("hungry")[trace.SessionKey{Inst: inst, P: 1}]
		eats := r.log.Sessions("eating")[trace.SessionKey{Inst: inst, P: 1}]
		if len(hungry) < 10 {
			t.Fatalf("instance %d: subject hungry only %d times", i, len(hungry))
		}
		// The diner state machine forces hungry->eating, so counting
		// suffices: eats == hungry or one fewer (final hunger may be open).
		if d := len(hungry) - len(eats); d < 0 || d > 1 {
			t.Fatalf("instance %d: %d hunger sessions but %d eating sessions", i, len(hungry), len(eats))
		}
	}
}

// TestLemma6SubjectEatingFinite: while both processes are live, every
// subject eating session ends (all intervals closed except possibly the
// final hand-off pair still in flight at the horizon).
func TestLemma6SubjectEatingFinite(t *testing.T) {
	r := newRig(t, 2, 12, 500)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	end := r.k.Run(30000)
	for i := 0; i < 2; i++ {
		inst := m.Tables()[i].Name()
		eats := r.log.Sessions("eating")[trace.SessionKey{Inst: inst, P: 1}]
		for j, iv := range eats {
			if !iv.Closed() && j < len(eats)-1 {
				t.Fatalf("instance %d: non-final eating session %d never closed", i, j)
			}
			if iv.Closed() && iv.End-iv.Start > end/4 {
				t.Fatalf("instance %d: eating session absurdly long: %v", i, iv)
			}
		}
	}
}

// TestLemma6CounterexampleWitnessCrash: the paper's Section 8 remark — if
// the witness crashes, a subject's session may legitimately never end. The
// final subject session stays open.
func TestLemma6CounterexampleWitnessCrash(t *testing.T) {
	r := newRig(t, 2, 13, 500)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.CrashAt(0, 5000)
	end := r.k.Run(40000)
	open := 0
	for i := 0; i < 2; i++ {
		inst := m.Tables()[i].Name()
		for _, iv := range r.log.Sessions("eating")[trace.SessionKey{Inst: inst, P: 1}] {
			if !iv.Closed() && end-iv.Start > 20000 {
				open++
			}
		}
	}
	if open == 0 {
		t.Fatal("expected an eternal subject session after the witness crash (Section 8)")
	}
}

// TestLemma10WitnessTurnTaking: if witness wᵢ eats, w₁₋ᵢ eats afterwards —
// strictly interleaved session starts, pairwise.
func TestLemma10WitnessTurnTaking(t *testing.T) {
	r := newRig(t, 2, 14, 500)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.Run(30000)
	w0 := r.log.Sessions("eating")[trace.SessionKey{Inst: m.Tables()[0].Name(), P: 0}]
	w1 := r.log.Sessions("eating")[trace.SessionKey{Inst: m.Tables()[1].Name(), P: 0}]
	if len(w0) < 5 || len(w1) < 5 {
		t.Fatalf("too few witness sessions: %d, %d", len(w0), len(w1))
	}
	// Merge starts and verify strict alternation w0,w1,w0,w1,...
	n := min(len(w0), len(w1))
	var last sim.Time = -1
	for i := 0; i < n; i++ {
		if !(w0[i].Start > last) {
			t.Fatalf("w0 session %d out of order", i)
		}
		last = w0[i].Start
		if !(w1[i].Start > last) {
			t.Fatalf("w1 session %d did not follow w0 session %d", i, i)
		}
		last = w1[i].Start
	}
}

// TestLemma5PingAccountingUnderCrash: after the subject crashes, pings stop
// but the accounting never goes negative or double-counts.
func TestLemma5PingAccountingUnderCrash(t *testing.T) {
	r := newRig(t, 2, 15, 500)
	m := core.NewPairMonitor(r.k, 0, 1, r.factory, "xp")
	r.k.CrashAt(1, 8000)
	r.k.Run(40000)
	st := m.Stats()
	for i := 0; i < 2; i++ {
		if st.PingsRecv[i] > st.PingsSent[i] {
			t.Fatalf("instance %d: received more pings than sent", i)
		}
		if st.AcksRecv[i] > st.AcksSent[i] {
			t.Fatalf("instance %d: received more acks than sent", i)
		}
		if st.AcksSent[i] != st.PingsRecv[i] {
			t.Fatalf("instance %d: %d acks sent for %d pings received", i, st.AcksSent[i], st.PingsRecv[i])
		}
	}
}
