package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
)

// ExampleNewPairMonitor shows the paper's reduction on one ordered pair:
// ◇P extracted from a black-box WF-◇WX dining service, with the output
// flipping to permanent suspicion after the monitored process crashes.
func ExampleNewPairMonitor() {
	k := sim.NewKernel(2,
		sim.WithSeed(42),
		sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 120, PostMax: 8}),
	)
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	blackbox := forks.Factory(native, forks.Config{})

	monitor := core.NewPairMonitor(k, 0, 1, blackbox, "extracted")
	k.CrashAt(1, 15000)

	k.After(0, 10000, func() {
		fmt.Printf("t=%d before the crash: suspect=%v\n", k.Now(), monitor.Suspect())
	})
	k.Run(35000)
	fmt.Printf("t=%d after the crash:  suspect=%v\n", k.Now(), monitor.Suspect())
	// Output:
	// t=10000 before the crash: suspect=false
	// t=35000 after the crash:  suspect=true
}

// ExampleNewExtractor assembles the full oracle (all ordered pairs) and
// queries it like any failure detector.
func ExampleNewExtractor() {
	k := sim.NewKernel(3,
		sim.WithSeed(7),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}),
	)
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	procs := []sim.ProcID{0, 1, 2}
	oracle := core.NewExtractor(k, procs, forks.Factory(native, forks.Config{}), "xp")

	k.CrashAt(2, 5000)
	k.Run(40000)

	for _, q := range procs[1:] {
		fmt.Printf("process 0 suspects %d: %v\n", q, oracle.Suspected(0, q))
	}
	// Output:
	// process 0 suspects 1: false
	// process 0 suspects 2: true
}
