package core

import (
	"fmt"

	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/rt"
)

// FlawedMonitor is the ◇P-extraction of Guerraoui, Kapalka and Kouznetsov
// ([8] in the paper) for one ordered pair (p, q), reproduced faithfully so
// that Section 3's counterexample can be demonstrated executably:
//
//   - q sends heartbeats to p at regular intervals, requests its critical
//     section once, and never exits it.
//   - p, upon a heartbeat, trusts q and becomes hungry; upon eating it
//     immediately exits, suspects q, and waits for the next heartbeat.
//
// The construction is correct over dining boxes that converge to exclusion
// even when a diner never exits (e.g. the forks box, where the eternal
// eater simply keeps its forks). It is *not* black-box: over the trap box —
// a legal WF-◇WX service that mirrors the convergence behavior of [12] —
// the never-exiting subject keeps the box's escape clause open, p eats and
// suspects q infinitely often, and the ◇P accuracy axiom fails. The paper's
// own reduction (PairMonitor) survives the same box because its subjects'
// eating sessions are always finite while the witness is live.
type FlawedMonitor struct {
	k    rt.Runtime
	p, q rt.ProcID
	inst string

	table dining.Table
	wd    dining.Diner // p's stub
	sd    dining.Diner // q's stub

	suspect   bool // p's output
	heartbeat rt.Time
}

// NewFlawedMonitor wires the [8] construction for (p, q) over one dining
// instance built by factory. heartbeat is q's send period.
func NewFlawedMonitor(k rt.Runtime, p, q rt.ProcID, factory dining.Factory, inst string, heartbeat rt.Time) *FlawedMonitor {
	if heartbeat <= 0 {
		heartbeat = 25
	}
	m := &FlawedMonitor{k: k, p: p, q: q, inst: inst, suspect: true, heartbeat: heartbeat}
	base := fmt.Sprintf("%s/%d-%d", inst, p, q)
	m.table = factory(k, graph.Pair(p, q), base+"/dx")
	m.wd = m.table.Diner(p)
	m.sd = m.table.Diner(q)

	k.After(p, 1, func() {
		k.Emit(rt.Record{P: p, Kind: "suspect", Peer: q, Inst: inst})
	})

	// ---- q's side: heartbeats forever, one hunger, never exit. ----
	var beat func()
	beat = func() {
		k.Send(q, p, base+"/hb", nil)
		k.After(q, m.heartbeat, beat)
	}
	k.After(q, 1, beat)
	k.AddAction(q, base+"/enter-cs",
		func() bool { return m.sd.State() == dining.Thinking },
		func() { m.sd.Hungry() })
	// Upon eating, q stays in its critical section forever: no exit action.

	// ---- p's side. ----
	wantHungry := false
	k.Handle(p, base+"/hb", func(rt.Message) {
		m.setSuspect(false) // trust on heartbeat
		wantHungry = true
	})
	k.AddAction(p, base+"/go-hungry",
		func() bool { return wantHungry && m.wd.State() == dining.Thinking },
		func() {
			wantHungry = false
			m.wd.Hungry()
		})
	k.AddAction(p, base+"/eat-and-suspect",
		func() bool { return m.wd.State() == dining.Eating },
		func() {
			m.setSuspect(true) // p reached its CS: it believes q is gone
			m.wd.Exit()
		})
	return m
}

// Suspect returns p's current output about q.
func (m *FlawedMonitor) Suspect() bool { return m.suspect }

// Table returns the underlying dining instance.
func (m *FlawedMonitor) Table() dining.Table { return m.table }

func (m *FlawedMonitor) setSuspect(v bool) {
	if v == m.suspect {
		return
	}
	m.suspect = v
	kind := "trust"
	if v {
		kind = "suspect"
	}
	m.k.Emit(rt.Record{P: m.p, Kind: kind, Peer: m.q, Inst: m.inst})
}
