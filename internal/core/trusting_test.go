package core_test

import (
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/perfect"
	"repro/internal/mutex"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pwxRig returns a kernel plus a wait-free perpetual-weak-exclusion factory
// of the requested flavor: "mutex" (distributed, T-driven permission
// algorithm) or "central" (idealized coordinator).
func pwxRig(seed int64, flavor string) (*sim.Kernel, *trace.Log, dining.Factory) {
	log := &trace.Log{}
	k := sim.NewKernel(4, sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 12}))
	var factory dining.Factory
	switch flavor {
	case "mutex":
		// Model-true stand-in for the T+S composition the FTME needs (see
		// the mutex package comment).
		factory = mutex.Factory(detector.Perfect{K: k})
	case "central":
		factory = perfect.Factory([]sim.ProcID{2, 3})
	default:
		panic(flavor)
	}
	return k, log, factory
}

// TestSection9ExtractsTrusting is experiment E8: the reduction applied to a
// wait-free ℙWX black box yields an oracle satisfying the trusting failure
// detector's axioms — strong completeness, eventual permanent trust of
// correct processes, and trust withdrawn only from crashed processes.
func TestSection9ExtractsTrusting(t *testing.T) {
	for _, flavor := range []string{"mutex", "central"} {
		for _, seed := range []int64{1, 2} {
			// Correct-subject run: trust must be gained and never withdrawn.
			k, log, factory := pwxRig(seed, flavor)
			m := core.NewPairMonitor(k, 0, 1, factory, "xT")
			end := k.Run(40000)
			if m.Suspect() {
				t.Errorf("%s seed %d: still suspects correct subject", flavor, seed)
			}
			if _, err := checker.TrustingAccuracy(log, "xT", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
				t.Errorf("%s seed %d: %v", flavor, seed, err)
			}

			// Crashing-subject run: completeness, and still no withdrawal
			// from a live process.
			k, log, factory = pwxRig(seed+10, flavor)
			m = core.NewPairMonitor(k, 0, 1, factory, "xT")
			k.CrashAt(1, 8000)
			end = k.Run(40000)
			if !m.Suspect() {
				t.Errorf("%s seed %d: trusts crashed subject", flavor, seed)
			}
			if _, err := checker.StrongCompleteness(log, "xT", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
				t.Errorf("%s seed %d: %v", flavor, seed, err)
			}
			if _, err := checker.TrustingAccuracy(log, "xT", [][2]sim.ProcID{{0, 1}}, true, end*3/4); err != nil {
				t.Errorf("%s seed %d (crash run): %v", flavor, seed, err)
			}
		}
	}
}

// TestTrustingExtractionNeverWithdrawsEarly zooms into axiom (b): across
// many seeds, the extracted oracle never performs a trust->suspect
// transition while the subject is alive. This is the property that
// distinguishes T from ◇P and that a ℙWX box (unlike a ◇WX box) buys.
func TestTrustingExtractionNeverWithdrawsEarly(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		k, log, factory := pwxRig(seed, "central")
		core.NewPairMonitor(k, 0, 1, factory, "xT")
		crashAt := sim.Time(3000 + 2000*seed)
		k.CrashAt(1, crashAt)
		k.Run(40000)
		sus := log.Suspicions()[trace.SuspicionKey{Inst: "xT", P: 0, Peer: 1}]
		trusted := false
		for _, c := range sus {
			if c.Suspect && trusted && c.T < crashAt {
				t.Fatalf("seed %d: trust withdrawn at t=%d before the crash at %d", seed, c.T, crashAt)
			}
			trusted = !c.Suspect
		}
	}
}
