package core_test

import (
	"fmt"
	"testing"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/dining/perfect"
	"repro/internal/dining/token"
	"repro/internal/dining/trap"
	"repro/internal/sim"
	"repro/internal/trace"
)

// boxes returns the four black-box families the reduction must be
// indifferent to: the distributed forks box, the circulating-token box, the
// adversarial trap box, and the idealized centralized box (ℙWX, hence also
// WF-◇WX).
func boxes(k *sim.Kernel, nProcs int) map[string]dining.Factory {
	coords := []sim.ProcID{sim.ProcID(nProcs), sim.ProcID(nProcs + 1)}
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	return map[string]dining.Factory{
		"forks":   forks.Factory(native, forks.Config{}),
		"token":   token.Factory(native, token.Config{}),
		"trap":    trap.Factory(coords, 2500),
		"central": perfect.Factory(coords),
	}
}

// TestDifferentialBoxes: the extracted oracle satisfies both ◇P axioms over
// every black box, with identical workload and crash schedule. This is the
// "black-box universality" that Section 3 shows [8] lacks.
func TestDifferentialBoxes(t *testing.T) {
	for _, boxName := range []string{"forks", "token", "trap", "central"} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("%s/seed%d", boxName, seed), func(t *testing.T) {
				log := &trace.Log{}
				k := sim.NewKernel(4, sim.WithSeed(seed), sim.WithTracer(log),
					sim.WithDelay(sim.GSTDelay{GST: 800, PreMax: 100, PostMax: 8}))
				factory := boxes(k, 2)[boxName]
				core.NewExtractor(k, []sim.ProcID{0, 1}, factory, "xp")
				k.CrashAt(1, 7000)
				end := k.Run(50000)
				pairs := [][2]sim.ProcID{{0, 1}, {1, 0}}
				if _, err := checker.StrongCompleteness(log, "xp", pairs, true, end*3/4); err != nil {
					t.Error(err)
				}
				if _, err := checker.EventualStrongAccuracy(log, "xp", pairs, true, end*3/4); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

// TestReductionDeterminism: the complete reduction stack produces a
// bit-identical trace from the same seed — the reproducibility claim of the
// kernel holds through every layer.
func TestReductionDeterminism(t *testing.T) {
	run := func() string {
		log := &trace.Log{}
		k := sim.NewKernel(2, sim.WithSeed(99), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		core.NewPairMonitor(k, 0, 1, forks.Factory(native, forks.Config{}), "xp")
		k.CrashAt(1, 5000)
		k.Run(20000)
		return fmt.Sprint(log.Records)
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same seed produced different reduction traces")
	}
}

// TestExtractorAllButOne: wait-freedom's promise is "regardless of how many
// processes crash"; with every process but one gone, the survivor's modules
// must converge to suspecting all of them.
func TestExtractorAllButOne(t *testing.T) {
	for _, seed := range []int64{3, 4} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		ext := core.NewExtractor(k, procs(3), forks.Factory(native, forks.Config{}), "xp")
		sim.AllButOne(3, 0, 4000, 2000).Apply(k)
		end := k.Run(50000)
		for _, q := range []sim.ProcID{1, 2} {
			if !ext.Suspected(0, q) {
				t.Errorf("seed %d: survivor does not suspect crashed %d", seed, q)
			}
		}
		if _, err := checker.StrongCompleteness(log, "xp", checker.AllPairs(procs(3)), true, end*3/4); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestExtractorSimultaneousCrashes: both members of some monitored pairs
// die at the same instant; nothing deadlocks and survivors converge.
func TestExtractorSimultaneousCrashes(t *testing.T) {
	log := &trace.Log{}
	k := sim.NewKernel(4, sim.WithSeed(5), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
	native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
	core.NewExtractor(k, procs(4), forks.Factory(native, forks.Config{}), "xp")
	k.CrashAt(2, 6000)
	k.CrashAt(3, 6000)
	end := k.Run(50000)
	if _, err := checker.StrongCompleteness(log, "xp", checker.AllPairs(procs(4)), true, end*3/4); err != nil {
		t.Error(err)
	}
	if _, err := checker.EventualStrongAccuracy(log, "xp", checker.AllPairs(procs(4)), true, end*3/4); err != nil {
		t.Error(err)
	}
}

// TestMonitorSelfPanics: monitoring yourself is a construction error.
func TestMonitorSelfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k := sim.NewKernel(2)
	var mute detector.Scripted
	core.NewPairMonitor(k, 1, 1, forks.Factory(&mute, forks.Config{}), "xp")
}

// TestExtractorUnmonitoredPairs: Suspected over pairs outside the monitor
// set answers false rather than inventing state.
func TestExtractorUnmonitoredPairs(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(1))
	var mute detector.Scripted
	ext := core.NewExtractor(k, []sim.ProcID{0, 1}, forks.Factory(&mute, forks.Config{}), "xp")
	if ext.Suspected(0, 2) || ext.Suspected(2, 0) || ext.Suspected(1, 1) {
		t.Fatal("unmonitored pairs should not be suspected")
	}
	if ext.Monitor(0, 2) != nil {
		t.Fatal("phantom monitor")
	}
	if ext.Monitor(0, 1) == nil || ext.Monitor(1, 0) == nil {
		t.Fatal("monitored pairs missing")
	}
}
