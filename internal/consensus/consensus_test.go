package consensus_test

import (
	"fmt"
	"testing"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
)

func procs(n int) []sim.ProcID {
	out := make([]sim.ProcID, n)
	for i := range out {
		out[i] = sim.ProcID(i)
	}
	return out
}

// checkRun validates agreement, validity and (for correct processes)
// termination on a finished run.
func checkRun(t *testing.T, k *sim.Kernel, in *consensus.Instance, ps []sim.ProcID, proposals map[sim.ProcID]consensus.Value) {
	t.Helper()
	valid := make(map[consensus.Value]bool)
	for _, v := range proposals {
		valid[v] = true
	}
	var decided *consensus.Value
	for _, p := range ps {
		v, ok := in.Decided(p)
		if k.Crashed(p) {
			continue // crashed processes owe nothing (but must not disagree if they did decide)
		}
		if !ok {
			t.Fatalf("correct process %d never decided", p)
		}
		if !valid[v] {
			t.Fatalf("process %d decided %d, which nobody proposed", p, v)
		}
		if decided == nil {
			decided = &v
		} else if *decided != v {
			t.Fatalf("disagreement: %d vs %d", *decided, v)
		}
	}
	if decided == nil {
		t.Fatal("nobody decided")
	}
}

// TestCrashFreeAgreement: distinct proposals, no crashes, several system
// sizes and seeds.
func TestCrashFreeAgreement(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		for _, seed := range []int64{1, 2, 3} {
			t.Run(fmt.Sprintf("n%d/seed%d", n, seed), func(t *testing.T) {
				k := sim.NewKernel(n, sim.WithSeed(seed),
					sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
				oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
				in := consensus.New(k, procs(n), "cs", oracle)
				proposals := make(map[sim.ProcID]consensus.Value)
				for _, p := range procs(n) {
					proposals[p] = consensus.Value(100 + int64(p))
					in.Propose(p, proposals[p])
				}
				k.Run(60000)
				checkRun(t, k, in, procs(n), proposals)
			})
		}
	}
}

// TestMinorityCrashes: up to ⌈n/2⌉-1 crashes, including the coordinator of
// round 1 and crashes mid-protocol.
func TestMinorityCrashes(t *testing.T) {
	cases := []struct {
		n       int
		crashes map[sim.ProcID]sim.Time
	}{
		{3, map[sim.ProcID]sim.Time{1: 50}},   // round-1 coordinator dies immediately
		{3, map[sim.ProcID]sim.Time{0: 3000}}, // a participant dies mid-run
		{5, map[sim.ProcID]sim.Time{1: 50, 2: 4000}},
		{5, map[sim.ProcID]sim.Time{0: 100, 4: 100}},
	}
	for ci, c := range cases {
		for _, seed := range []int64{4, 5} {
			t.Run(fmt.Sprintf("case%d/seed%d", ci, seed), func(t *testing.T) {
				k := sim.NewKernel(c.n, sim.WithSeed(seed),
					sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
				oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
				in := consensus.New(k, procs(c.n), "cs", oracle)
				proposals := make(map[sim.ProcID]consensus.Value)
				for _, p := range procs(c.n) {
					proposals[p] = consensus.Value(200 + int64(p))
					in.Propose(p, proposals[p])
				}
				for p, at := range c.crashes {
					k.CrashAt(p, at)
				}
				k.Run(80000)
				checkRun(t, k, in, procs(c.n), proposals)
			})
		}
	}
}

// TestUnanimousProposal: if everyone proposes v, the decision is v
// (validity pinned down).
func TestUnanimousProposal(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(6),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	in := consensus.New(k, procs(3), "cs", oracle)
	for _, p := range procs(3) {
		in.Propose(p, 7)
	}
	k.Run(40000)
	for _, p := range procs(3) {
		if v, ok := in.Decided(p); !ok || v != 7 {
			t.Fatalf("process %d: decided=%v v=%d, want 7", p, ok, v)
		}
	}
}

// TestLatePropose: a process that proposes late still decides, and does not
// break agreement.
func TestLatePropose(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(7),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	in := consensus.New(k, procs(3), "cs", oracle)
	in.Propose(0, 10)
	in.Propose(1, 11)
	k.After(2, 5000, func() { in.Propose(2, 12) })
	k.Run(60000)
	checkRun(t, k, in, procs(3), map[sim.ProcID]consensus.Value{0: 10, 1: 11, 2: 12})
}

// TestOnDecideFiresOnce: the callback runs exactly once per process.
func TestOnDecideFiresOnce(t *testing.T) {
	k := sim.NewKernel(3, sim.WithSeed(8),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	in := consensus.New(k, procs(3), "cs", oracle)
	fired := make(map[sim.ProcID]int)
	for _, p := range procs(3) {
		p := p
		in.OnDecide(p, func(consensus.Value) { fired[p]++ })
		in.Propose(p, consensus.Value(p))
	}
	k.Run(40000)
	for _, p := range procs(3) {
		if fired[p] != 1 {
			t.Fatalf("process %d: OnDecide fired %d times", p, fired[p])
		}
	}
}

// TestConsensusOverExtractedOracle is the full stack: dining black box ->
// reduction -> extracted ◇P -> consensus. The paper's chain "WF-◇WX is as
// strong as ◇P, and ◇P solves consensus" becomes executable.
func TestConsensusOverExtractedOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full-stack test is long")
	}
	for _, seed := range []int64{1, 2} {
		log := &trace.Log{}
		k := sim.NewKernel(3, sim.WithSeed(seed), sim.WithTracer(log),
			sim.WithDelay(sim.GSTDelay{GST: 600, PreMax: 80, PostMax: 8}))
		native := detector.NewHeartbeat(k, "native", detector.HeartbeatConfig{})
		blackbox := forks.Factory(native, forks.Config{})
		extracted := core.NewExtractor(k, procs(3), blackbox, "xp")
		in := consensus.New(k, procs(3), "cs", extracted)
		proposals := make(map[sim.ProcID]consensus.Value)
		for _, p := range procs(3) {
			proposals[p] = consensus.Value(300 + int64(p))
			in.Propose(p, proposals[p])
		}
		k.CrashAt(2, 8000)
		k.Run(100000)
		checkRun(t, k, in, procs(3), proposals)
	}
}

// TestAgreementSweep: randomized sweep over sizes, delays, proposals and a
// random minority crash; agreement and validity hold in every run.
func TestAgreementSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is long")
	}
	for seed := int64(10); seed < 22; seed++ {
		host := sim.NewKernel(1, sim.WithSeed(seed))
		n := 3 + host.Rand().Intn(3) // 3..5
		k := sim.NewKernel(n, sim.WithSeed(seed),
			sim.WithDelay(sim.GSTDelay{GST: sim.Time(200 + host.Rand().Intn(1500)), PreMax: 150, PostMax: 8}))
		oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
		in := consensus.New(k, procs(n), "cs", oracle)
		proposals := make(map[sim.ProcID]consensus.Value)
		for _, p := range procs(n) {
			proposals[p] = consensus.Value(host.Rand().Int63n(5))
			in.Propose(p, proposals[p])
		}
		crashable := (n - 1) / 2
		for i := 0; i < crashable && host.Rand().Intn(2) == 0; i++ {
			k.CrashAt(sim.ProcID(host.Rand().Intn(n)), sim.Time(100+host.Rand().Intn(8000)))
		}
		k.Run(100000)
		checkRun(t, k, in, procs(n), proposals)
	}
}
