package consensus_test

import (
	"testing"

	"repro/internal/consensus"
	"repro/internal/detector"
	"repro/internal/sim"
)

// FuzzConsensusSchedules: agreement and validity must hold under arbitrary
// message schedules and a minority crash; termination is additionally
// asserted because the perfect oracle removes all detector uncertainty
// (rounds with a live coordinator are never nacked spuriously). Seed corpus
// runs under plain `go test`.
func FuzzConsensusSchedules(f *testing.F) {
	f.Add([]byte{5, 4, 3, 2, 1}, int64(-1))
	f.Add([]byte{200, 200, 1, 1}, int64(77))
	f.Add([]byte{9, 90, 9, 90, 9, 90}, int64(2500))
	f.Fuzz(func(t *testing.T, pattern []byte, crashAt int64) {
		if len(pattern) > 4096 {
			t.Skip()
		}
		k := sim.NewKernel(3, sim.WithSeed(1),
			sim.WithDelay(&sim.BytesDelay{Pattern: pattern, Max: 48}))
		in := consensus.New(k, procs(3), "cs", detector.Perfect{K: k})
		for _, p := range procs(3) {
			in.Propose(p, consensus.Value(100+int64(p)))
		}
		if crashAt > 0 {
			k.CrashAt(sim.ProcID(crashAt%3), sim.Time(crashAt%4000)+1)
		}
		k.Run(60000)
		var dec *consensus.Value
		for _, p := range procs(3) {
			if k.Crashed(p) {
				continue
			}
			v, ok := in.Decided(p)
			if !ok {
				t.Fatalf("correct %d undecided under schedule %v", p, pattern)
			}
			if v < 100 || v > 102 {
				t.Fatalf("invalid decision %d", v)
			}
			if dec == nil {
				dec = &v
			} else if *dec != v {
				t.Fatalf("disagreement %d vs %d under schedule %v", *dec, v, pattern)
			}
		}
	})
}
