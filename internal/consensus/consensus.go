// Package consensus implements Chandra–Toueg rotating-coordinator consensus
// for crash-prone asynchronous message-passing systems equipped with an
// unreliable failure detector.
//
// The paper's introduction lists consensus as one of the problems ◇P is
// strong enough to solve; this package closes that loop downstream of the
// reduction: the oracle *extracted from a black-box dining service* can be
// plugged in here and a majority of correct processes then reaches
// agreement (experiment E12). The algorithm actually needs only ◇S (a
// weaker class that ◇P subsumes), so any oracle in this repository works.
//
// Protocol sketch (round r, coordinator c = r mod n):
//
//  1. estimate: everyone sends its current (estimate, stamp) to c.
//  2. propose: c picks the estimate with the freshest stamp among a
//     majority and broadcasts it as the round's proposal.
//  3. ack: a participant that receives the proposal adopts it (stamping it
//     with r) and acks; one whose detector suspects c nacks instead.
//  4. decide: if c gathers a majority of acks it decides and reliably
//     broadcasts the decision; a majority of nacks (or none of acks) moves
//     everyone to round r+1.
//
// Safety (agreement, validity) never depends on the detector; termination
// requires a majority of correct processes plus the detector's eventual
// accuracy — after convergence the first correct coordinator's round
// decides. Decisions spread by rebroadcast, so every correct process
// decides even if it was behind.
package consensus

import (
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/sim"
)

// Value is a proposed/decided value.
type Value int64

// Instance is one consensus instance over a fixed set of processes.
type Instance struct {
	name  string
	procs []sim.ProcID
	mods  map[sim.ProcID]*module
}

// New creates a consensus instance named name over procs (majority of which
// must stay correct for termination), consulting oracle for coordinator
// suspicion.
func New(k *sim.Kernel, procs []sim.ProcID, name string, oracle detector.Oracle) *Instance {
	if len(procs) < 2 {
		panic("consensus: need at least 2 processes")
	}
	in := &Instance{name: name, procs: procs, mods: make(map[sim.ProcID]*module)}
	for _, p := range procs {
		in.mods[p] = newModule(k, in, p, oracle)
	}
	return in
}

// Propose submits p's initial value. Must be called at most once per
// process, from within p's own steps (or before the run starts).
func (in *Instance) Propose(p sim.ProcID, v Value) {
	in.mods[p].propose(v)
}

// OnDecide registers a callback invoked (once) when p decides.
func (in *Instance) OnDecide(p sim.ProcID, f func(Value)) {
	m := in.mods[p]
	m.onDecide = append(m.onDecide, f)
}

// Decided reports whether p has decided, and the decision.
func (in *Instance) Decided(p sim.ProcID) (Value, bool) {
	m := in.mods[p]
	return m.decision, m.decided
}

// Round returns p's current round (for tests and metrics).
func (in *Instance) Round(p sim.ProcID) int64 { return in.mods[p].round }

type estimateMsg struct {
	Round int64
	Est   Value
	Stamp int64
}

type proposeMsg struct {
	Round int64
	Est   Value
}

type voteMsg struct {
	Round int64
	Ack   bool
}

type decideMsg struct {
	Val Value
}

// phase of a participant within its current round.
type phase int

const (
	phEstimate phase = iota // must send estimate to the coordinator
	phWait                  // waiting for the proposal or suspicion
)

type module struct {
	k    *sim.Kernel
	in   *Instance
	self sim.ProcID
	view detector.View

	proposed bool
	est      Value
	stamp    int64
	round    int64
	ph       phase

	// Coordinator state for rounds this process coordinates.
	estimates   map[int64]map[sim.ProcID]estimateMsg
	votes       map[int64]map[sim.ProcID]bool
	proposedVal map[int64]Value // value actually broadcast per round
	outcomeDone map[int64]bool

	// Buffered proposals by round (may arrive before we reach the round).
	proposals map[int64]Value

	decided  bool
	decision Value
	onDecide []func(Value)
}

func newModule(k *sim.Kernel, in *Instance, p sim.ProcID, oracle detector.Oracle) *module {
	m := &module{
		k: k, in: in, self: p,
		view:        detector.View{Oracle: oracle, Self: p},
		estimates:   make(map[int64]map[sim.ProcID]estimateMsg),
		votes:       make(map[int64]map[sim.ProcID]bool),
		proposedVal: make(map[int64]Value),
		outcomeDone: make(map[int64]bool),
		proposals:   make(map[int64]Value),
	}
	n := in.name
	k.Handle(p, n+"/est", m.onEstimate)
	k.Handle(p, n+"/prop", m.onPropose)
	k.Handle(p, n+"/vote", m.onVote)
	k.Handle(p, n+"/decide", m.onDecideMsg)

	k.AddAction(p, n+"/send-estimate", m.canSendEstimate, m.sendEstimate)
	k.AddAction(p, n+"/coord-propose", m.canPropose, m.doPropose)
	k.AddAction(p, n+"/handle-proposal", m.canHandleProposal, m.handleProposal)
	k.AddAction(p, n+"/suspect-coord", m.canSuspectCoord, m.nackCoord)
	k.AddAction(p, n+"/coord-outcome", m.canResolve, m.resolve)
	// The detector's convergence does not wake this process by itself;
	// poll so a suspicion can unblock phWait.
	var poll func()
	poll = func() { k.After(p, 15, poll) }
	k.After(p, 15, poll)
	return m
}

func (m *module) propose(v Value) {
	if m.proposed {
		return
	}
	m.proposed = true
	m.est = v
	m.round = 1
	m.ph = phEstimate
	m.k.Emit(sim.Record{P: m.self, Kind: "mark", Peer: -1, Inst: m.in.name, Note: fmt.Sprintf("propose=%d", v)})
	// Ensure the process wakes to evaluate its guards even if Propose was
	// called before the run started.
	m.k.After(m.self, 1, func() {})
}

// coordinator of round r.
func (m *module) coord(r int64) sim.ProcID {
	return m.in.procs[int(r)%len(m.in.procs)]
}

func (m *module) majority() int { return len(m.in.procs)/2 + 1 }

// ---- participant side ----

func (m *module) canSendEstimate() bool {
	return m.proposed && !m.decided && m.ph == phEstimate
}

func (m *module) sendEstimate() {
	m.ph = phWait
	m.k.Send(m.self, m.coord(m.round), m.in.name+"/est",
		estimateMsg{Round: m.round, Est: m.est, Stamp: m.stamp})
}

func (m *module) canHandleProposal() bool {
	if !m.proposed || m.decided || m.ph != phWait {
		return false
	}
	_, ok := m.proposals[m.round]
	return ok
}

func (m *module) handleProposal() {
	v := m.proposals[m.round]
	m.est = v
	m.stamp = m.round
	m.vote(true)
}

func (m *module) canSuspectCoord() bool {
	if !m.proposed || m.decided || m.ph != phWait {
		return false
	}
	if _, ok := m.proposals[m.round]; ok {
		return false // proposal is here; handle it instead
	}
	c := m.coord(m.round)
	return c != m.self && m.view.Suspected(c)
}

func (m *module) nackCoord() { m.vote(false) }

func (m *module) vote(ack bool) {
	m.k.Send(m.self, m.coord(m.round), m.in.name+"/vote", voteMsg{Round: m.round, Ack: ack})
	// Optimistically move on: the coordinator's outcome (a decision) will
	// reach us via the reliable decide broadcast if the round succeeded.
	m.round++
	m.ph = phEstimate
}

// ---- coordinator side ----

// proposableRounds returns, in ascending order, rounds this process
// coordinates that have a majority of estimates and no proposal yet. Sorted
// iteration keeps runs deterministic (map order is not).
func (m *module) proposableRounds() []int64 {
	var rs []int64
	for r, ests := range m.estimates {
		if _, sent := m.proposedVal[r]; !sent && m.coord(r) == m.self && len(ests) >= m.majority() {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return rs
}

func (m *module) canPropose() bool {
	return m.proposed && !m.decided && len(m.proposableRounds()) > 0
}

func (m *module) doPropose() {
	rs := m.proposableRounds()
	if len(rs) == 0 {
		return
	}
	r := rs[0]
	best := estimateMsg{Stamp: -1}
	// Deterministic tie-break: scan senders in id order.
	senders := make([]sim.ProcID, 0, len(m.estimates[r]))
	for q := range m.estimates[r] {
		senders = append(senders, q)
	}
	sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
	for _, q := range senders {
		if e := m.estimates[r][q]; e.Stamp > best.Stamp {
			best = e
		}
	}
	// Record the value actually proposed: late estimates must not be able
	// to change what this round can decide.
	m.proposedVal[r] = best.Est
	for _, q := range m.in.procs {
		m.k.Send(m.self, q, m.in.name+"/prop", proposeMsg{Round: r, Est: best.Est})
	}
}

// resolvableRounds returns, in ascending order, coordinated rounds whose
// vote tally has reached a verdict.
func (m *module) resolvableRounds() []int64 {
	var rs []int64
	for r, vs := range m.votes {
		if m.outcomeDone[r] || m.coord(r) != m.self {
			continue
		}
		acks := 0
		for _, a := range vs {
			if a {
				acks++
			}
		}
		if acks >= m.majority() || len(vs) >= m.majority() {
			rs = append(rs, r)
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
	return rs
}

func (m *module) canResolve() bool {
	return m.proposed && !m.decided && len(m.resolvableRounds()) > 0
}

func (m *module) resolve() {
	rs := m.resolvableRounds()
	if len(rs) == 0 {
		return
	}
	r := rs[0]
	vs := m.votes[r]
	acks := 0
	for _, a := range vs {
		if a {
			acks++
		}
	}
	val, sent := m.proposedVal[r]
	m.outcomeDone[r] = true
	if sent && acks >= m.majority() {
		// The proposal of round r was adopted by a majority; the locking
		// argument makes deciding it safe.
		m.broadcastDecide(val)
	}
	// Otherwise the round failed; participants have already moved on.
}

func (m *module) broadcastDecide(v Value) {
	for _, q := range m.in.procs {
		if q != m.self {
			m.k.Send(m.self, q, m.in.name+"/decide", decideMsg{Val: v})
		}
	}
	m.decide(v)
}

func (m *module) decide(v Value) {
	if m.decided {
		return
	}
	m.decided = true
	m.decision = v
	m.k.Emit(sim.Record{P: m.self, Kind: "mark", Peer: -1, Inst: m.in.name, Note: fmt.Sprintf("decide=%d", v)})
	for _, f := range m.onDecide {
		f(v)
	}
}

// ---- handlers ----

func (m *module) onEstimate(msg sim.Message) {
	e := msg.Payload.(estimateMsg)
	if m.estimates[e.Round] == nil {
		m.estimates[e.Round] = make(map[sim.ProcID]estimateMsg)
	}
	m.estimates[e.Round][msg.From] = e
}

func (m *module) onPropose(msg sim.Message) {
	p := msg.Payload.(proposeMsg)
	if _, dup := m.proposals[p.Round]; !dup {
		m.proposals[p.Round] = p.Est
	}
}

func (m *module) onVote(msg sim.Message) {
	v := msg.Payload.(voteMsg)
	if m.votes[v.Round] == nil {
		m.votes[v.Round] = make(map[sim.ProcID]bool)
	}
	m.votes[v.Round][msg.From] = v.Ack
}

func (m *module) onDecideMsg(msg sim.Message) {
	d := msg.Payload.(decideMsg)
	if !m.decided {
		// Relay once so the broadcast is reliable even if the original
		// sender crashed mid-broadcast.
		for _, q := range m.in.procs {
			if q != m.self && q != msg.From {
				m.k.Send(m.self, q, m.in.name+"/decide", d)
			}
		}
	}
	m.decide(d.Val)
}
