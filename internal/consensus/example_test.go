package consensus_test

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/detector"
	"repro/internal/sim"
)

// Example runs one consensus instance: three processes propose distinct
// values, one crashes, the survivors agree on a proposed value.
func Example() {
	k := sim.NewKernel(3,
		sim.WithSeed(6),
		sim.WithDelay(sim.UniformDelay{Min: 1, Max: 10}),
	)
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	procs := []sim.ProcID{0, 1, 2}
	in := consensus.New(k, procs, "agree", oracle)
	for _, p := range procs {
		in.Propose(p, consensus.Value(100+int64(p)))
	}
	k.CrashAt(2, 4000)
	k.Run(60000)

	v0, ok0 := in.Decided(0)
	v1, ok1 := in.Decided(1)
	fmt.Printf("survivors decided: %v %v\n", ok0, ok1)
	fmt.Printf("agreement: %v\n", v0 == v1)
	fmt.Printf("validity (decided a proposed value): %v\n", v0 >= 100 && v0 <= 102)
	// Output:
	// survivors decided: true true
	// agreement: true
	// validity (decided a proposed value): true
}
