package wsn_test

import (
	"testing"

	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wsn"
)

func TestTeamFieldGeometry(t *testing.T) {
	f := wsn.NewTeamField(3, 2, 4) // 3 zones, 2 sensors each, 12 cells
	if f.Cells != 12 || len(f.Coverage) != 6 {
		t.Fatalf("field: %+v", f)
	}
	// Every cell is covered by exactly two sensors (the team).
	for c := 0; c < f.Cells; c++ {
		n := 0
		for _, cells := range f.Coverage {
			for _, cc := range cells {
				if cc == c {
					n++
				}
			}
		}
		if n != 2 {
			t.Fatalf("cell %d covered by %d sensors, want 2", c, n)
		}
	}
	g := f.ConflictGraph()
	if g.N() != 6 || g.M() != 3 {
		t.Fatalf("conflict graph: %v", g)
	}
	// Teammates conflict; sensors of different zones do not.
	if !g.HasEdge(0, 1) || g.HasEdge(1, 2) {
		t.Fatal("conflict edges wrong")
	}
}

// runWSN wires a team field onto a forks dining table and runs it.
func runWSN(t testing.TB, seed int64, battery sim.Time, horizon sim.Time) (*trace.Log, *wsn.Field, sim.Time) {
	t.Helper()
	log := &trace.Log{}
	f := wsn.NewTeamField(3, 2, 4)
	g := f.ConflictGraph()
	k := sim.NewKernel(g.N(), sim.WithSeed(seed), sim.WithTracer(log),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}))
	oracle := detector.NewHeartbeat(k, "hb", detector.HeartbeatConfig{})
	tbl := forks.New(k, g, "duty", oracle, forks.Config{})
	for _, p := range g.Nodes() {
		wsn.NewSensor(k, f, g, p, tbl.Diner(p), oracle, "wsn", wsn.SensorConfig{
			Battery: battery, Shift: 150, Sample: 30,
		})
	}
	end := k.Run(horizon)
	return log, f, end
}

// TestCoverageIsMaintained: with ample battery, the field stays covered
// almost everywhere almost always (small transient gaps around handoffs are
// expected; sustained loss is a bug).
func TestCoverageIsMaintained(t *testing.T) {
	log, f, end := runWSN(t, 1, 1_000_000, 20000)
	rep := wsn.Analyze(log.Records, f, "duty", end)
	total := int64(f.Cells) * int64(end)
	if rep.CoverageLoss > total/4 {
		t.Fatalf("coverage loss %d of %d cell-ticks (>25%%)", rep.CoverageLoss, total)
	}
	if rep.DutyTicks == 0 {
		t.Fatal("no sensor ever went on duty")
	}
}

// TestRedundancyIsTransient: overlapping on-duty time (the scheduler's
// mistakes) exists at most briefly and the duty schedule converges to
// non-redundant coverage — the Section 2 story.
func TestRedundancyIsTransient(t *testing.T) {
	log, f, end := runWSN(t, 2, 1_000_000, 30000)
	full := wsn.Analyze(log.Records, f, "duty", end)
	if full.DutyTicks == 0 {
		t.Fatal("no duty at all")
	}
	frac := float64(full.RedundantTicks) / float64(full.DutyTicks)
	if frac > 0.5 {
		t.Fatalf("redundant duty fraction %.2f; scheduler is not excluding overlaps", frac)
	}
}

// TestDepletionCrashesSensor: a sensor whose battery runs out crashes, and
// the network keeps operating (wait-freedom of the scheduler lets the
// survivors take over).
func TestDepletionCrashesSensor(t *testing.T) {
	log, f, end := runWSN(t, 3, 400, 40000)
	crashes := log.CrashTimes()
	if len(crashes) == 0 {
		t.Fatal("no sensor depleted despite tiny batteries")
	}
	rep := wsn.Analyze(log.Records, f, "duty", end)
	if rep.Lifespan == 0 {
		t.Fatal("lifespan zero")
	}
	// Duty continued after the first depletion.
	var firstCrash sim.Time = rep.Lifespan
	for _, ct := range crashes {
		if ct < firstCrash {
			firstCrash = ct
		}
	}
	lateDuty := false
	for _, r := range log.Records {
		if r.Kind == "state" && r.Inst == "duty" && r.Note == "eating" && r.T > firstCrash {
			lateDuty = true
		}
	}
	if !lateDuty {
		t.Fatal("no sensor went on duty after the first depletion")
	}
}

// TestAnalyzeCounting: Analyze on a handcrafted trace produces the expected
// numbers.
func TestAnalyzeCounting(t *testing.T) {
	f := &wsn.Field{Cells: 2, Coverage: map[sim.ProcID][]int{0: {0, 1}, 1: {1}}}
	recs := []sim.Record{
		{T: 0, P: 0, Kind: "state", Inst: "duty", Note: "eating", Peer: -1},
		{T: 100, P: 1, Kind: "state", Inst: "duty", Note: "eating", Peer: -1},
		{T: 200, P: 0, Kind: "state", Inst: "duty", Note: "exiting", Peer: -1},
		{T: 300, P: 1, Kind: "state", Inst: "duty", Note: "exiting", Peer: -1},
	}
	rep := wsn.Analyze(recs, f, "duty", 400)
	// Overlap [100,200): both redundant there (they share cell 1).
	if rep.RedundantTicks != 200 {
		t.Fatalf("redundant=%d want 200", rep.RedundantTicks)
	}
	// Duty: 0 for [0,200), 1 for [100,300) = 400 sensor-ticks.
	if rep.DutyTicks != 400 {
		t.Fatalf("duty=%d want 400", rep.DutyTicks)
	}
	// Cell 0 uncovered in [200,400) (only sensor 0 covers it): 200. Cell 1
	// uncovered in [300,400): 100.
	if rep.CoverageLoss != 300 {
		t.Fatalf("loss=%d want 300", rep.CoverageLoss)
	}
	if rep.Lifespan != 400 {
		t.Fatalf("lifespan=%d want 400 (no cell ever uncoverable)", rep.Lifespan)
	}
}
