// Package wsn models the duty-cycle scheduling scenario that motivates
// eventual weak exclusion in Section 2 of the paper: a wireless sensor
// network must keep a surveillance field covered while nodes sleep as much
// as possible to conserve their finite batteries.
//
// The shared resources are coverage cells; two sensors whose coverage areas
// overlap are neighbors in the conflict graph. A sensor volunteering for
// duty is hungry, a sensor on duty is eating. Scheduling mistakes — two
// overlapping sensors on duty simultaneously — only burn battery on
// redundant coverage (a performance cost), never break surveillance (a
// correctness property): exactly the class of applications for which ◇WX
// suffices where ℙWX is unimplementable.
//
// Battery is consumed while on duty; a depleted sensor crashes (power
// exhaustion is the fault model: every node is eventually faulty, which is
// why the scheduler must be wait-free). Sensors learn which of their cells
// are covered from ON/OFF broadcasts of their conflict-graph neighbors and
// volunteer whenever some cell of theirs appears uncovered.
package wsn

import (
	"fmt"
	"sort"

	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/graph"
	"repro/internal/sim"
)

// Field is the static deployment: which cells each sensor covers.
type Field struct {
	Cells    int
	Coverage map[sim.ProcID][]int // sensor -> covered cells, sorted
}

// NewTeamField deploys zones*perZone sensors over zones*cellsPerZone cells:
// zone z consists of cells [z*cellsPerZone, (z+1)*cellsPerZone) and is
// covered by the team of perZone interchangeable sensors z*perZone ..
// z*perZone+perZone-1. One on-duty sensor per team covers the whole field;
// teammates are redundant alternatives, which is exactly the node redundancy
// the paper's WSN scenario exploits: exclusion among teammates maximizes
// lifespan, and scheduling mistakes merely burn battery on double coverage.
func NewTeamField(zones, perZone, cellsPerZone int) *Field {
	if zones < 1 || perZone < 2 || cellsPerZone < 1 {
		panic("wsn: need zones >= 1, perZone >= 2, cellsPerZone >= 1")
	}
	f := &Field{Cells: zones * cellsPerZone, Coverage: make(map[sim.ProcID][]int, zones*perZone)}
	for z := 0; z < zones; z++ {
		var cv []int
		for c := z * cellsPerZone; c < (z+1)*cellsPerZone; c++ {
			cv = append(cv, c)
		}
		for r := 0; r < perZone; r++ {
			f.Coverage[sim.ProcID(z*perZone+r)] = cv
		}
	}
	return f
}

// ConflictGraph returns the graph with an edge between every two sensors
// that share a cell.
func (f *Field) ConflictGraph() *graph.Graph {
	g := graph.New()
	ids := f.sensors()
	for _, p := range ids {
		g.Add(p)
	}
	for i, p := range ids {
		for _, q := range ids[i+1:] {
			if sharesCell(f.Coverage[p], f.Coverage[q]) {
				if err := g.AddEdge(p, q); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func (f *Field) sensors() []sim.ProcID {
	ids := make([]sim.ProcID, 0, len(f.Coverage))
	for p := range f.Coverage {
		ids = append(ids, p)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func sharesCell(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// SensorConfig tunes sensor behavior.
type SensorConfig struct {
	Battery sim.Time // total on-duty ticks before depletion (required)
	Shift   sim.Time // length of one duty shift (default 150)
	Sample  sim.Time // period of the local coverage check (default 30)
}

// Sensor is one node's duty-cycling logic on top of a dining service.
type Sensor struct {
	k       *sim.Kernel
	f       *Field
	self    sim.ProcID
	d       dining.Diner
	view    detector.View
	nbrs    []sim.ProcID
	nbrOn   map[sim.ProcID]bool
	battery sim.Time
	cfg     SensorConfig
	name    string
}

// NewSensor attaches the duty-cycle logic for sensor p to diner d. oracle
// (a ◇P) tells the sensor which neighbors to stop counting on for coverage.
func NewSensor(k *sim.Kernel, f *Field, g *graph.Graph, p sim.ProcID, d dining.Diner, oracle detector.Oracle, name string, cfg SensorConfig) *Sensor {
	if cfg.Shift <= 0 {
		cfg.Shift = 150
	}
	if cfg.Sample <= 0 {
		cfg.Sample = 30
	}
	if cfg.Battery <= 0 {
		panic("wsn: battery required")
	}
	s := &Sensor{
		k: k, f: f, self: p, d: d,
		view:    detector.View{Oracle: oracle, Self: p},
		nbrs:    g.Neighbors(p),
		nbrOn:   make(map[sim.ProcID]bool),
		battery: cfg.Battery,
		cfg:     cfg,
		name:    name,
	}
	k.Handle(p, name+fmt.Sprintf("/duty/%d", p), s.onDutyMsg)
	d.OnChange(func(st dining.State) {
		on := st == dining.Eating
		if st == dining.Eating || st == dining.Exiting {
			s.broadcast(on)
		}
		if on {
			s.startShift()
		}
	})
	var sample func()
	sample = func() {
		s.sample()
		k.After(p, cfg.Sample, sample)
	}
	k.After(p, 1+sim.Time(p)%cfg.Sample, sample)
	return s
}

// Battery returns the remaining duty budget.
func (s *Sensor) Battery() sim.Time { return s.battery }

func (s *Sensor) broadcast(on bool) {
	for _, q := range s.nbrs {
		s.k.Send(s.self, q, s.name+fmt.Sprintf("/duty/%d", q), on)
	}
}

func (s *Sensor) onDutyMsg(m sim.Message) {
	s.nbrOn[m.From] = m.Payload.(bool)
}

// covered reports whether every cell of ours is covered by a neighbor we
// believe to be on duty and do not suspect of having crashed.
func (s *Sensor) covered() bool {
	for _, c := range s.f.Coverage[s.self] {
		ok := false
		for _, q := range s.nbrs {
			if s.nbrOn[q] && !s.view.Suspected(q) && contains(s.f.Coverage[q], c) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func contains(cells []int, c int) bool {
	i := sort.SearchInts(cells, c)
	return i < len(cells) && cells[i] == c
}

// sample is the periodic local decision: volunteer when some of our cells
// look uncovered.
func (s *Sensor) sample() {
	if s.battery <= 0 {
		return
	}
	if s.d.State() == dining.Thinking && !s.covered() {
		s.d.Hungry()
	}
}

// startShift burns battery each tick while on duty and ends the shift (or
// the sensor) when the shift or the battery runs out. A sensor extends its
// shift while no teammate has taken over, up to a hard cap of four shifts —
// eating must stay finite for the dining contract, so a sole survivor duty-
// cycles in long stretches with brief hand-off gaps instead of squatting.
func (s *Sensor) startShift() {
	shiftEnd := s.k.Now() + s.cfg.Shift
	hardEnd := s.k.Now() + 4*s.cfg.Shift
	var tick func()
	tick = func() {
		if s.d.State() != dining.Eating {
			return
		}
		s.battery--
		if s.battery <= 0 {
			// Power depletion: the node is gone.
			s.k.CrashAt(s.self, s.k.Now()+1)
			return
		}
		if s.k.Now() >= hardEnd || (s.k.Now() >= shiftEnd && s.covered()) {
			s.d.Exit()
			return
		}
		s.k.After(s.self, 1, tick)
	}
	s.k.After(s.self, 1, tick)
}

// Report is the outcome of a WSN run, computed from the trace.
type Report struct {
	RedundantTicks int64    // sensor-duty ticks spent while an overlapping neighbor was also on duty
	DutyTicks      int64    // total sensor-duty ticks
	CoverageLoss   int64    // cell-ticks where a coverable cell had no on-duty cover
	Lifespan       sim.Time // first time some cell became uncoverable (all its sensors dead); horizon if never
}

// Analyze computes the report by replaying on-duty intervals from the trace
// log against the field geometry, sampling every tick.
func Analyze(records []sim.Record, f *Field, inst string, horizon sim.Time) Report {
	type span struct {
		p          sim.ProcID
		start, end sim.Time
	}
	var spans []span
	open := make(map[sim.ProcID]sim.Time)
	crash := make(map[sim.ProcID]sim.Time)
	for _, r := range records {
		switch {
		case r.Kind == "crash":
			if _, ok := crash[r.P]; !ok {
				crash[r.P] = r.T
			}
			if st, ok := open[r.P]; ok {
				spans = append(spans, span{r.P, st, r.T})
				delete(open, r.P)
			}
		case r.Kind == "state" && r.Inst == inst && r.Note == "eating":
			open[r.P] = r.T
		case r.Kind == "state" && r.Inst == inst && r.Note != "eating":
			if st, ok := open[r.P]; ok {
				spans = append(spans, span{r.P, st, r.T})
				delete(open, r.P)
			}
		}
	}
	for p, st := range open {
		spans = append(spans, span{p, st, horizon})
	}

	var rep Report
	rep.Lifespan = horizon
	// Sample coarsely (every 10 ticks) for tractability; durations are long
	// relative to the sampling period.
	const step = 10
	for t := sim.Time(0); t < horizon; t += step {
		onDuty := make(map[sim.ProcID]bool)
		for _, sp := range spans {
			if sp.start <= t && t < sp.end {
				onDuty[sp.p] = true
			}
		}
		for p := range onDuty {
			rep.DutyTicks += step
		redundant:
			for q := range onDuty {
				if q != p && sharesCell(f.Coverage[p], f.Coverage[q]) {
					rep.RedundantTicks += step
					break redundant
				}
			}
		}
		for c := 0; c < f.Cells; c++ {
			coverable, covered := false, false
			for p, cells := range f.Coverage {
				if !contains(cells, c) {
					continue
				}
				if ct, dead := crash[p]; !dead || ct > t {
					coverable = true
					if onDuty[p] {
						covered = true
					}
				}
			}
			if !coverable && rep.Lifespan == horizon {
				rep.Lifespan = t
			}
			if coverable && !covered {
				rep.CoverageLoss += step
			}
		}
	}
	return rep
}
