package live

import (
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
)

// liveHB is a heartbeat configuration with timeouts generous enough that a
// CI scheduler stall does not register as a false suspicion.
var liveHB = detector.HeartbeatConfig{Interval: 20, Check: 10, Timeout: 400, Bump: 200}

// buildDining wires a forks table with a heartbeat oracle and synthetic
// drivers onto any runtime — the same code path the simulator tests use.
func buildDining(k rt.Runtime, g *graph.Graph, hb detector.HeartbeatConfig) dining.Table {
	oracle := detector.NewHeartbeat(k, "hb", hb)
	tbl := forks.New(k, g, "dine", oracle, forks.Config{})
	for _, p := range g.Nodes() {
		dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 2, EatMax: 10, FirstHunger: 30,
		})
	}
	return tbl
}

// TestForksDiningLive runs the WF-◇WX forks table on the live runtime over
// the in-process bus: a ring of five diners, one mid-run crash. The run's
// trace is validated by the same checkers the simulator uses.
func TestForksDiningLive(t *testing.T) {
	log := &trace.Log{}
	g := graph.Ring(5)
	r := New(Config{N: 5, Tick: 500 * time.Microsecond, Tracer: log})
	buildDining(r, g, liveHB)
	r.Start()

	time.Sleep(800 * time.Millisecond)
	r.Crash(2)
	time.Sleep(1700 * time.Millisecond)
	end := r.Now()
	r.Stop()

	eat := log.Sessions("eating")
	for _, p := range g.Nodes() {
		meals := len(eat[trace.SessionKey{Inst: "dine", P: p}])
		if p == 2 {
			continue
		}
		if meals < 2 {
			t.Errorf("correct diner %d ate only %d meals", p, meals)
		}
	}
	// The crashed diner's neighbors must keep eating after the crash
	// (wait-freedom via the suspicion override).
	crashT := log.CrashTimes()[2]
	for _, q := range g.Neighbors(2) {
		after := 0
		for _, iv := range eat[trace.SessionKey{Inst: "dine", P: q}] {
			if iv.Start > crashT {
				after++
			}
		}
		if after == 0 {
			t.Errorf("neighbor %d never ate after the crash of 2 at t=%d", q, crashT)
		}
	}
	if _, err := checker.EventualWeakExclusion(log, g, "dine", end/2, end); err != nil {
		t.Errorf("live run violates eventual weak exclusion: %v", err)
	}
	if r.Counter("msg.delivered") == 0 {
		t.Error("no messages delivered")
	}
}

// TestTransportOverLossyBus layers the reliable transport on a live bus
// that eats 25%% of all messages: the same retransmission code that rebuilds
// reliable channels over the simulator's fair-lossy links does it over a
// real lossy medium, and the dining table above it stays live and safe.
func TestTransportOverLossyBus(t *testing.T) {
	log := &trace.Log{}
	g := graph.Ring(4)
	bus := NewLossyBus(NewChanBus(), 0.25, 42)
	r := New(Config{N: 4, Tick: 500 * time.Microsecond, Tracer: log, Bus: bus})
	transport.Enable(r, "rt", transport.Config{})
	// On a lossy bus a dropped heartbeat arrives one retransmission timeout
	// late; the oracle timeout must dominate that.
	hb := detector.HeartbeatConfig{Interval: 20, Check: 10, Timeout: 600, Bump: 300}
	buildDining(r, g, hb)
	r.Start()

	time.Sleep(2 * time.Second)
	end := r.Now()
	r.Stop()

	if bus.Dropped() == 0 {
		t.Fatal("lossy bus dropped nothing; the test exercised no loss")
	}
	eat := log.Sessions("eating")
	for _, p := range g.Nodes() {
		if meals := len(eat[trace.SessionKey{Inst: "dine", P: p}]); meals < 1 {
			t.Errorf("diner %d starved over the lossy bus (%d meals)", p, meals)
		}
	}
	if _, err := checker.EventualWeakExclusion(log, g, "dine", end/2, end); err != nil {
		t.Errorf("lossy-bus run violates eventual weak exclusion: %v", err)
	}
	if r.Counter("transport.retransmit") == 0 {
		t.Error("transport never retransmitted despite losses")
	}
}

// TestTCPBusSplitRing splits a ring of four across two runtimes connected
// by loopback TCP: node A hosts diners 0 and 1, node B hosts 2 and 3. Both
// nodes run identical wiring; the bus routes edge traffic between them.
func TestTCPBusSplitRing(t *testing.T) {
	forks.RegisterWire()
	transport.RegisterWire()
	g := graph.Ring(4)

	busA := NewTCPBus([]rt.ProcID{0, 1})
	addr, err := busA.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	busB := NewTCPBus([]rt.ProcID{2, 3})
	if err := busB.Dial(addr.String(), []rt.ProcID{0, 1}); err != nil {
		t.Fatal(err)
	}

	logA, logB := &trace.Log{}, &trace.Log{}
	tick := time.Millisecond
	nodeA := New(Config{N: 4, Tick: tick, Tracer: logA, Bus: busA, Local: []rt.ProcID{0, 1}})
	nodeB := New(Config{N: 4, Tick: tick, Tracer: logB, Bus: busB, Local: []rt.ProcID{2, 3}})
	// The transport gives exactly-once delivery even for frames sent before
	// the listener has learned its return routes.
	transport.Enable(nodeA, "rt", transport.Config{})
	transport.Enable(nodeB, "rt", transport.Config{})
	buildDining(nodeA, g, liveHB)
	buildDining(nodeB, g, liveHB)
	nodeA.Start()
	nodeB.Start()

	time.Sleep(2 * time.Second)
	nodeA.Stop()
	nodeB.Stop()

	eatA, eatB := logA.Sessions("eating"), logB.Sessions("eating")
	for _, p := range []rt.ProcID{0, 1} {
		if meals := len(eatA[trace.SessionKey{Inst: "dine", P: p}]); meals < 1 {
			t.Errorf("node A diner %d starved (%d meals)", p, meals)
		}
	}
	for _, p := range []rt.ProcID{2, 3} {
		if meals := len(eatB[trace.SessionKey{Inst: "dine", P: p}]); meals < 1 {
			t.Errorf("node B diner %d starved (%d meals)", p, meals)
		}
	}
}

// TestInvokeSerializes checks that Invoke runs on the target's goroutine,
// serialized with its steps, and is refused after a crash.
func TestInvokeSerializes(t *testing.T) {
	r := New(Config{N: 2, Tick: time.Millisecond})
	sum := 0
	r.AddAction(0, "noop", func() bool { return false }, func() {})
	r.Start()
	done := make(chan struct{})
	for i := 0; i < 100; i++ {
		r.Invoke(0, func() { sum++ })
	}
	r.Invoke(0, func() { close(done) })
	<-done
	if sum != 100 {
		t.Fatalf("sum = %d, want 100 (jobs lost or reordered)", sum)
	}
	r.Crash(1)
	if r.Invoke(1, func() {}) {
		t.Error("Invoke accepted at a crashed process")
	}
	if !r.Crashed(1) || r.Crashed(0) {
		t.Error("Crashed() ground truth wrong")
	}
	r.Stop()
	if r.Invoke(0, func() {}) {
		t.Error("Invoke accepted after Stop")
	}
}

// TestDuplicateHandlerPanics mirrors the simulator's registration contract.
func TestDuplicateHandlerPanics(t *testing.T) {
	r := New(Config{N: 1})
	r.Handle(0, "x", func(rt.Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Handle did not panic")
		}
	}()
	r.Handle(0, "x", func(rt.Message) {})
}
