package live

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// Bus carries inter-process messages for a live runtime. The runtime calls
// Send for every outbound message; the bus routes it — directly back into
// this runtime for local destinations, over the wire for remote ones — and
// hands inbound messages to the delivery sink installed with Bind.
//
// Delivery guarantees are the bus's own: the channel bus is reliable, the
// TCP bus is reliable per connection but drops messages for unreachable
// peers, and a LossyBus deliberately isn't — layer internal/transport on the
// runtime (transport.Enable) to rebuild reliable channels above a lossy bus.
type Bus interface {
	// Bind installs the local delivery sink. The runtime calls it once,
	// before Start; the bus must not invoke deliver before Bind returns.
	Bind(deliver func(rt.Message))
	// Send routes one message. It must not block indefinitely; messages
	// that cannot be routed are dropped (fair-lossy semantics).
	Send(m rt.Message)
	// Close releases bus resources; subsequent Sends are dropped.
	Close() error
}

// BusStats is the delivery-counter view a bus can expose for observability:
// how many messages it handed onward, ate, duplicated, or delayed. Buses
// that keep these counters implement StatsSource; consumers (dineserve's
// metrics registry) sample them at scrape time, so the counters must be
// cheap enough to maintain on every Send.
type BusStats struct {
	Delivered int64 // messages handed to the delivery sink / inner bus
	Dropped   int64 // messages eaten (loss, unroutable peer, encode failure)
	Duped     int64 // extra deliveries injected by a fault plan
	Delayed   int64 // deliveries the fault plan held back before forwarding
}

// StatsSource is implemented by buses that maintain BusStats counters.
type StatsSource interface {
	BusStats() BusStats
}

// ChanBus is the in-process bus: every process is local, and Send hands the
// message straight to the runtime's delivery sink (which enqueues it on the
// destination's mailbox — the channel hop every real message takes).
type ChanBus struct {
	mu        sync.RWMutex
	deliver   func(rt.Message)
	closed    bool
	delivered atomic.Int64
}

// NewChanBus returns the in-process bus.
func NewChanBus() *ChanBus { return &ChanBus{} }

// Bind implements Bus.
func (b *ChanBus) Bind(deliver func(rt.Message)) {
	b.mu.Lock()
	b.deliver = deliver
	b.mu.Unlock()
}

// Send implements Bus.
func (b *ChanBus) Send(m rt.Message) {
	b.mu.RLock()
	deliver, closed := b.deliver, b.closed
	b.mu.RUnlock()
	if closed || deliver == nil {
		return
	}
	b.delivered.Add(1)
	deliver(m)
}

// BusStats implements StatsSource.
func (b *ChanBus) BusStats() BusStats {
	return BusStats{Delivered: b.delivered.Load()}
}

// Close implements Bus.
func (b *ChanBus) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

// LossyBus wraps another bus and perturbs each message independently: drop
// with probability Drop, duplicate with probability Dup, and delay by a
// uniform draw from [0, DelayMax] — a per-direction-seeded miniature of the
// simulator's fair-lossy LinkPlan, used to exercise the reliable transport
// over a real scheduler.
//
// Deprecated: use livechaos.ChaosBus, which takes a full sim.LinkPlan
// (per-link overrides, timed partition windows) so the same plan JSON drives
// the simulator and the live runtime. LossyBus remains for tests that want a
// uniform-loss bus with no plan machinery.
type LossyBus struct {
	Inner    Bus
	Drop     float64
	Dup      float64       // duplication probability (duplicate sent immediately after)
	DelayMax time.Duration // extra per-message delay drawn from [0, DelayMax]

	seed int64

	mu      sync.Mutex
	streams map[[2]rt.ProcID]*rand.Rand
	closed  bool

	dropped int64
}

// NewLossyBus wraps inner; drop is the per-message drop probability. Each
// directed link draws from its own stream seeded from seed, so one link's
// traffic volume cannot perturb another link's fault sequence.
func NewLossyBus(inner Bus, drop float64, seed int64) *LossyBus {
	return &LossyBus{Inner: inner, Drop: drop, seed: seed, streams: make(map[[2]rt.ProcID]*rand.Rand)}
}

// Bind implements Bus.
func (b *LossyBus) Bind(deliver func(rt.Message)) { b.Inner.Bind(deliver) }

// Send implements Bus.
func (b *LossyBus) Send(m rt.Message) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	key := [2]rt.ProcID{m.From, m.To}
	rng, ok := b.streams[key]
	if !ok {
		rng = rand.New(rand.NewSource(b.seed + int64(m.From)*1_000_003 + int64(m.To)*7_919))
		b.streams[key] = rng
	}
	var extra time.Duration
	if b.DelayMax > 0 {
		extra = time.Duration(rng.Int63n(int64(b.DelayMax) + 1))
	}
	if rng.Float64() < b.Drop {
		b.dropped++
		b.mu.Unlock()
		return
	}
	copies := 1
	if b.Dup > 0 && rng.Float64() < b.Dup {
		copies = 2
	}
	b.mu.Unlock()
	send := func() {
		for i := 0; i < copies; i++ {
			b.Inner.Send(m)
		}
	}
	if extra > 0 {
		time.AfterFunc(extra, func() {
			b.mu.Lock()
			closed := b.closed
			b.mu.Unlock()
			if !closed {
				send()
			}
		})
		return
	}
	send()
}

// Dropped returns how many messages the bus has eaten.
func (b *LossyBus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// BusStats implements StatsSource; inner-bus delivery counts fold in when
// the inner bus keeps them.
func (b *LossyBus) BusStats() BusStats {
	st := BusStats{Dropped: b.Dropped()}
	if src, ok := b.Inner.(StatsSource); ok {
		st.Delivered = src.BusStats().Delivered
	}
	return st
}

// Close implements Bus.
func (b *LossyBus) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return b.Inner.Close()
}
