package live

import (
	"math/rand"
	"sync"

	"repro/internal/rt"
)

// Bus carries inter-process messages for a live runtime. The runtime calls
// Send for every outbound message; the bus routes it — directly back into
// this runtime for local destinations, over the wire for remote ones — and
// hands inbound messages to the delivery sink installed with Bind.
//
// Delivery guarantees are the bus's own: the channel bus is reliable, the
// TCP bus is reliable per connection but drops messages for unreachable
// peers, and a LossyBus deliberately isn't — layer internal/transport on the
// runtime (transport.Enable) to rebuild reliable channels above a lossy bus.
type Bus interface {
	// Bind installs the local delivery sink. The runtime calls it once,
	// before Start; the bus must not invoke deliver before Bind returns.
	Bind(deliver func(rt.Message))
	// Send routes one message. It must not block indefinitely; messages
	// that cannot be routed are dropped (fair-lossy semantics).
	Send(m rt.Message)
	// Close releases bus resources; subsequent Sends are dropped.
	Close() error
}

// ChanBus is the in-process bus: every process is local, and Send hands the
// message straight to the runtime's delivery sink (which enqueues it on the
// destination's mailbox — the channel hop every real message takes).
type ChanBus struct {
	mu      sync.RWMutex
	deliver func(rt.Message)
	closed  bool
}

// NewChanBus returns the in-process bus.
func NewChanBus() *ChanBus { return &ChanBus{} }

// Bind implements Bus.
func (b *ChanBus) Bind(deliver func(rt.Message)) {
	b.mu.Lock()
	b.deliver = deliver
	b.mu.Unlock()
}

// Send implements Bus.
func (b *ChanBus) Send(m rt.Message) {
	b.mu.RLock()
	deliver, closed := b.deliver, b.closed
	b.mu.RUnlock()
	if closed || deliver == nil {
		return
	}
	deliver(m)
}

// Close implements Bus.
func (b *ChanBus) Close() error {
	b.mu.Lock()
	b.closed = true
	b.mu.Unlock()
	return nil
}

// LossyBus wraps another bus and drops each message independently with
// probability Drop — the live analogue of the simulator's fair-lossy
// LinkPlan, used to exercise the reliable transport over a real scheduler.
type LossyBus struct {
	Inner Bus
	Drop  float64

	mu  sync.Mutex
	rng *rand.Rand

	dropped int64
}

// NewLossyBus wraps inner; drop is the per-message drop probability.
func NewLossyBus(inner Bus, drop float64, seed int64) *LossyBus {
	return &LossyBus{Inner: inner, Drop: drop, rng: rand.New(rand.NewSource(seed))}
}

// Bind implements Bus.
func (b *LossyBus) Bind(deliver func(rt.Message)) { b.Inner.Bind(deliver) }

// Send implements Bus.
func (b *LossyBus) Send(m rt.Message) {
	b.mu.Lock()
	drop := b.rng.Float64() < b.Drop
	if drop {
		b.dropped++
	}
	b.mu.Unlock()
	if drop {
		return
	}
	b.Inner.Send(m)
}

// Dropped returns how many messages the bus has eaten.
func (b *LossyBus) Dropped() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Close implements Bus.
func (b *LossyBus) Close() error { return b.Inner.Close() }
