package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"repro/internal/rt"
)

// Wire format: every frame is a 4-byte big-endian body length followed by
// the body. A protocol-message body is the gob encoding of envelope; the
// payload travels as a nested gob so that a nil payload (heartbeats) needs
// no special casing and the outer envelope stays schema-stable. The same
// framing carries the dineserve client protocol (JSON bodies) — framing and
// body codec are deliberately independent layers.

// MaxFrame bounds a frame body. Oversized frames are rejected on both ends:
// a corrupt or adversarial length prefix must not provoke a huge allocation.
const MaxFrame = 1 << 20

// ErrFrameTooBig is returned for a frame whose declared length exceeds
// MaxFrame (or is zero on decode of an envelope frame).
var ErrFrameTooBig = errors.New("live: frame exceeds MaxFrame")

// envelope is the wire form of one rt.Message.
type envelope struct {
	From, To int32
	Port     string
	Payload  []byte // nested gob of the payload, empty for nil
}

// RegisterPayload makes a payload type transmissible over the wire codec
// (a thin wrapper over gob.Register, so callers need not import gob).
// Protocol packages with unexported payload types register them themselves —
// see forks.RegisterWire.
func RegisterPayload(v any) { gob.Register(v) }

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame, rejecting oversized lengths
// before allocating. A truncated stream surfaces as io.ErrUnexpectedEOF
// (or io.EOF at a clean frame boundary).
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}

// EncodeMessage encodes one protocol message into a frame body. Non-nil
// payload types must have been registered (RegisterPayload).
func EncodeMessage(m rt.Message) ([]byte, error) {
	env := envelope{From: int32(m.From), To: int32(m.To), Port: m.Port}
	if m.Payload != nil {
		var pb bytes.Buffer
		payload := m.Payload
		if err := gob.NewEncoder(&pb).Encode(&payload); err != nil {
			return nil, fmt.Errorf("live: encode payload for port %q: %w", m.Port, err)
		}
		env.Payload = pb.Bytes()
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return nil, fmt.Errorf("live: encode envelope: %w", err)
	}
	if buf.Len() > MaxFrame {
		return nil, ErrFrameTooBig
	}
	return buf.Bytes(), nil
}

// DecodeMessage decodes a frame body produced by EncodeMessage. It never
// panics on malformed input: errors come back as errors.
func DecodeMessage(body []byte) (rt.Message, error) {
	if len(body) > MaxFrame {
		return rt.Message{}, ErrFrameTooBig
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return rt.Message{}, fmt.Errorf("live: decode envelope: %w", err)
	}
	m := rt.Message{From: rt.ProcID(env.From), To: rt.ProcID(env.To), Port: env.Port}
	if len(env.Payload) > 0 {
		var payload any
		if err := gob.NewDecoder(bytes.NewReader(env.Payload)).Decode(&payload); err != nil {
			return rt.Message{}, fmt.Errorf("live: decode payload for port %q: %w", env.Port, err)
		}
		m.Payload = payload
	}
	return m, nil
}
