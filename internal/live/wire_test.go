package live

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"io"
	"strings"
	"testing"

	"repro/internal/rt"
)

func init() { gob.Register(map[string]int64{}) }

func TestWireRoundTrip(t *testing.T) {
	msgs := []rt.Message{
		{From: 0, To: 1, Port: "hb/hb", Payload: nil},
		{From: 3, To: 0, Port: "dine/req", Payload: "session-12"},
		{From: 7, To: 2, Port: "x/y/z", Payload: int64(-42)},
		{From: 1, To: 1, Port: "", Payload: map[string]int64{"cum": 9}},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		body, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("encode %v: %v", m, err)
		}
		if err := WriteFrame(&buf, body); err != nil {
			t.Fatalf("write %v: %v", m, err)
		}
	}
	for _, want := range msgs {
		body, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read frame: %v", err)
		}
		got, err := DecodeMessage(body)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.From != want.From || got.To != want.To || got.Port != want.Port {
			t.Errorf("round trip: got %v, want %v", got, want)
		}
		switch w := want.Payload.(type) {
		case nil:
			if got.Payload != nil {
				t.Errorf("payload: got %v, want nil", got.Payload)
			}
		case map[string]int64:
			g, ok := got.Payload.(map[string]int64)
			if !ok || g["cum"] != w["cum"] {
				t.Errorf("payload: got %#v, want %#v", got.Payload, w)
			}
		default:
			if got.Payload != want.Payload {
				t.Errorf("payload: got %#v, want %#v", got.Payload, want.Payload)
			}
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("after last frame: err = %v, want io.EOF", err)
	}
}

func TestWireRejectsOversizedFrame(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); err != ErrFrameTooBig {
		t.Errorf("oversized length: err = %v, want ErrFrameTooBig", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); err != ErrFrameTooBig {
		t.Errorf("oversized write: err = %v, want ErrFrameTooBig", err)
	}
	if _, err := EncodeMessage(rt.Message{Port: strings.Repeat("p", MaxFrame+16)}); err == nil {
		t.Error("EncodeMessage accepted a message larger than MaxFrame")
	}
}

func TestWireRejectsTruncatedFrame(t *testing.T) {
	body, err := EncodeMessage(rt.Message{From: 1, To: 2, Port: "p"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, body); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes went undetected", cut)
		}
	}
}

// FuzzWireCodec fuzzes both directions of the codec: arbitrary messages
// must round-trip exactly, and arbitrary bytes fed to the frame reader and
// envelope decoder must produce errors, never panics or giant allocations.
func FuzzWireCodec(f *testing.F) {
	f.Add(int32(0), int32(1), "dine/req", []byte("hello"), false)
	f.Add(int32(3), int32(2), "", []byte{}, true)
	f.Add(int32(-1), int32(9), "hb/hb", []byte{0xff, 0x00, 0x01}, false)
	f.Fuzz(func(t *testing.T, from, to int32, port string, raw []byte, nilPayload bool) {
		// Direction 1: encode → frame → unframe → decode must round-trip.
		m := rt.Message{From: rt.ProcID(from), To: rt.ProcID(to), Port: port}
		if !nilPayload {
			m.Payload = string(raw)
		}
		body, err := EncodeMessage(m)
		if err == nil {
			var buf bytes.Buffer
			if err := WriteFrame(&buf, body); err != nil {
				t.Fatalf("WriteFrame after successful encode: %v", err)
			}
			got, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("ReadFrame of own frame: %v", err)
			}
			dm, err := DecodeMessage(got)
			if err != nil {
				t.Fatalf("DecodeMessage of own encoding: %v", err)
			}
			if dm.From != m.From || dm.To != m.To || dm.Port != m.Port {
				t.Fatalf("round trip: got %v, want %v", dm, m)
			}
			if !nilPayload && dm.Payload != m.Payload {
				t.Fatalf("payload round trip: got %#v, want %#v", dm.Payload, m.Payload)
			}
		}

		// Direction 2: raw as a wire stream — must never panic; errors ok.
		if _, err := ReadFrame(bytes.NewReader(raw)); err == nil {
			// A successful read of a valid frame is fine.
			_ = err
		}
		_, _ = DecodeMessage(raw)
	})
}
