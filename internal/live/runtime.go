// Package live executes protocol code in real time: each process is a
// goroutine with its own mailbox, timers are wall-clock, and messages travel
// over a pluggable Bus (in-process channels, or length-prefixed TCP frames
// between runtimes on different machines).
//
// Runtime implements rt.Runtime — the same interface the discrete-event
// simulator (internal/sim) implements — so the dining tables, failure
// detectors, and the paper's extraction run unmodified on both. What changes
// is the determinism contract: the simulator replays a run exactly from its
// seed, while here the scheduler is the operating system and the network is
// real, so runs are not reproducible. The trace vocabulary is identical,
// which is what keeps the checkers (internal/checker) runtime-agnostic: a
// live run's record stream is validated by exactly the code that validates
// simulated runs.
//
// Execution model. Every local process runs a loop that interleaves mailbox
// jobs (message deliveries, timer callbacks, injected client calls) with
// guarded-action steps, one action per iteration chosen by rotating through
// the action list — the same weak-fairness discipline as the simulator's
// step scheduler. All of a process's handlers, timer callbacks, and action
// bodies execute on its own goroutine, so process-local protocol state needs
// no locking, exactly as in the simulator.
package live

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rt"
)

// Config shapes a live runtime.
type Config struct {
	// N is the number of processes in the system (across all nodes).
	N int
	// Tick is the wall-clock duration of one rt.Time tick (default 1ms).
	// Protocol timer constants (heartbeat intervals, retry periods) are in
	// ticks, so Tick scales the whole system's tempo.
	Tick time.Duration
	// StepEvery is the minimum wall-clock spacing between consecutive
	// guarded-action steps of one process (default: one Tick). Message and
	// timer handling is never paced. Pacing carries the simulator's rule
	// that a step occupies time into real time: without it, a permanently
	// enabled action cycle — e.g. the extraction's witness threads dining
	// forever past a subject's crash — busy-spins its goroutine and starves
	// everything else of CPU.
	StepEvery time.Duration
	// Seed seeds the runtime's random source (default 1). Unlike the
	// simulator, seeding does not make runs reproducible — it only makes
	// the randomness well-defined.
	Seed int64
	// Tracer receives every emitted record; may be nil. Trace calls are
	// serialized by the runtime, so a plain *trace.Log works.
	Tracer rt.Tracer
	// Bus carries inter-process messages. Nil means the in-process channel
	// bus (all processes local to this runtime).
	Bus Bus
	// Local lists the processes this runtime hosts (nil = all N). In a
	// multi-node deployment each node builds the full protocol wiring but
	// starts goroutines only for its local processes; the bus routes
	// messages addressed to remote processes.
	Local []rt.ProcID
}

// process is the runtime-side bookkeeping for one process.
type process struct {
	id       rt.ProcID
	local    bool
	handlers map[string]rt.Handler
	actions  []action
	rot      int // rotation cursor for weakly fair action selection

	mu      sync.Mutex
	queue   []func() // pending jobs: deliveries, timers, injected calls
	notify  chan struct{}
	crashed atomic.Bool

	// gen is the incarnation counter: bumped by Crash, so timers scheduled
	// by a previous incarnation are dropped instead of firing into the state
	// of a restarted process.
	gen atomic.Int64
	// loopDone is closed when the current incarnation's loop goroutine
	// returns; Restart waits on it so two loops never share one mailbox.
	loopDone chan struct{}

	nextStep time.Time // earliest wall time for the next action step
}

type action struct {
	name  string
	guard func() bool
	body  func()
}

// Runtime is the real-time implementation of rt.Runtime (and of
// rt.TransportRuntime, so internal/transport's retransmission layer can be
// enabled over an unreliable bus).
type Runtime struct {
	cfg       Config
	tick      time.Duration
	stepEvery time.Duration
	procs     []*process
	bus       Bus

	start   time.Time
	started atomic.Bool
	stop    chan struct{}
	stopped atomic.Bool
	wg      sync.WaitGroup
	// lifeMu orders goroutine spawns (Restart) against shutdown (Stop), so
	// wg.Add never races wg.Wait.
	lifeMu sync.Mutex

	emitMu sync.Mutex
	seq    int64
	tracer rt.Tracer

	rng *rand.Rand // over a locked source: safe for concurrent draws

	cntMu    sync.Mutex
	counters map[string]int64

	sendHook atomic.Value // of rt.SendHook
}

var (
	_ rt.Runtime          = (*Runtime)(nil)
	_ rt.TransportRuntime = (*Runtime)(nil)
)

// lockedSource is a goroutine-safe rand.Source64.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Int63()
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.src.Uint64()
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.src.Seed(seed)
}

// New creates a live runtime for cfg.N processes. Wire up protocol modules
// (which call Handle/AddAction) between New and Start.
func New(cfg Config) *Runtime {
	if cfg.N <= 0 {
		panic("live: Config.N must be positive")
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Millisecond
	}
	if cfg.StepEvery <= 0 {
		cfg.StepEvery = cfg.Tick
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	r := &Runtime{
		cfg:       cfg,
		tick:      cfg.Tick,
		stepEvery: cfg.StepEvery,
		bus:       cfg.Bus,
		tracer:    cfg.Tracer,
		stop:      make(chan struct{}),
		counters:  make(map[string]int64),
		rng:       rand.New(&lockedSource{src: rand.NewSource(seed).(rand.Source64)}),
		start:     time.Now(),
	}
	if r.bus == nil {
		r.bus = NewChanBus()
	}
	local := make(map[rt.ProcID]bool, cfg.N)
	if cfg.Local == nil {
		for i := 0; i < cfg.N; i++ {
			local[rt.ProcID(i)] = true
		}
	} else {
		for _, p := range cfg.Local {
			local[p] = true
		}
	}
	for i := 0; i < cfg.N; i++ {
		p := rt.ProcID(i)
		r.procs = append(r.procs, &process{
			id:       p,
			local:    local[p],
			handlers: make(map[string]rt.Handler),
			notify:   make(chan struct{}, 1),
		})
	}
	r.bus.Bind(r.inject)
	return r
}

// Start launches one goroutine per local process. Registration
// (Handle/AddAction) must be complete before Start.
func (r *Runtime) Start() {
	if !r.started.CompareAndSwap(false, true) {
		panic("live: Start called twice")
	}
	r.start = time.Now()
	for _, pr := range r.procs {
		if !pr.local {
			continue
		}
		r.spawn(pr)
	}
}

// spawn launches one incarnation of pr's loop goroutine. Callers must hold
// lifeMu or be the single Start caller.
func (r *Runtime) spawn(pr *process) {
	done := make(chan struct{})
	pr.loopDone = done
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(done)
		r.loop(pr)
	}()
}

// Stop shuts the runtime down: process loops exit after finishing their
// current step, pending timers become no-ops, and the bus is closed. Stop
// blocks until every process goroutine has returned. It is idempotent.
func (r *Runtime) Stop() {
	if !r.stopped.CompareAndSwap(false, true) {
		return
	}
	close(r.stop)
	// Taking lifeMu here orders any in-flight Restart spawn before the wait.
	r.lifeMu.Lock()
	r.lifeMu.Unlock()
	r.wg.Wait()
	r.bus.Close()
}

// N implements rt.Runtime.
func (r *Runtime) N() int { return len(r.procs) }

// Now implements rt.Runtime: wall-clock ticks since Start.
func (r *Runtime) Now() rt.Time { return rt.Time(time.Since(r.start) / r.tick) }

// Rand implements rt.Runtime. The returned source is safe for concurrent
// use by all processes.
func (r *Runtime) Rand() *rand.Rand { return r.rng }

// Crashed implements rt.Runtime: whether p was administratively crashed
// with Crash. (A live runtime has no other crash ground truth.)
func (r *Runtime) Crashed(p rt.ProcID) bool { return r.procs[p].crashed.Load() }

// AddAction implements rt.Runtime. Must be called before Start.
func (r *Runtime) AddAction(p rt.ProcID, name string, guard func() bool, body func()) {
	r.mustWire("AddAction")
	pr := r.procs[p]
	pr.actions = append(pr.actions, action{name: name, guard: guard, body: body})
}

// Handle implements rt.Runtime. Must be called before Start.
func (r *Runtime) Handle(p rt.ProcID, port string, h rt.Handler) {
	r.mustWire("Handle")
	pr := r.procs[p]
	if _, dup := pr.handlers[port]; dup {
		panic(fmt.Sprintf("live: duplicate handler for port %q at process %d", port, p))
	}
	pr.handlers[port] = h
}

func (r *Runtime) mustWire(what string) {
	if r.started.Load() {
		panic("live: " + what + " after Start")
	}
}

// Send implements rt.Runtime: the message is routed by the bus, unless a
// transport send hook consumes it first.
func (r *Runtime) Send(from, to rt.ProcID, port string, payload any) {
	m := rt.Message{From: from, To: to, Port: port, Payload: payload}
	if h, ok := r.sendHook.Load().(rt.SendHook); ok && h != nil && h(m) {
		return
	}
	r.RawSend(from, to, port, payload)
}

// RawSend implements rt.TransportRuntime: ship directly on the bus,
// bypassing any send hook.
func (r *Runtime) RawSend(from, to rt.ProcID, port string, payload any) {
	if r.stopped.Load() {
		return
	}
	r.Count("msg.sent", 1)
	r.bus.Send(rt.Message{From: from, To: to, Port: port, Payload: payload})
}

// SetSendHook implements rt.TransportRuntime.
func (r *Runtime) SetSendHook(h rt.SendHook) { r.sendHook.Store(h) }

// Dispatch implements rt.TransportRuntime: deliver m to the handler
// registered for its port at m.To, as that process's own atomic step.
// Unlike the simulator's synchronous Dispatch, delivery is asynchronous —
// the handler runs on the destination's goroutine — which is the only
// execution order a real system has anyway.
func (r *Runtime) Dispatch(m rt.Message) { r.inject(m) }

// inject is the bus's local delivery sink: run the registered handler at
// the destination as one of its steps.
func (r *Runtime) inject(m rt.Message) {
	pr := r.procs[m.To]
	if !pr.local {
		return // not hosted here; the bus should not have delivered it
	}
	if pr.crashed.Load() {
		r.Count("msg.dropped", 1)
		return
	}
	h, ok := pr.handlers[m.Port]
	if !ok {
		panic(fmt.Sprintf("live: no handler for port %q at process %d", m.Port, m.To))
	}
	r.Count("msg.delivered", 1)
	r.enqueue(pr, func() { h(m) })
}

// After implements rt.Runtime: fn runs at process p after d ticks of wall
// time, as one of p's steps. Timers at non-local or crashed processes are
// dropped, and a timer scheduled by one incarnation never fires into a later
// one: the incarnation counter is captured at scheduling time and checked at
// fire time, so a crash permanently retires every timer armed before it.
func (r *Runtime) After(p rt.ProcID, d rt.Time, fn func()) {
	pr := r.procs[p]
	if !pr.local {
		return
	}
	if d < 1 {
		d = 1
	}
	gen := pr.gen.Load()
	time.AfterFunc(time.Duration(d)*r.tick, func() {
		if r.stopped.Load() || pr.crashed.Load() || pr.gen.Load() != gen {
			return
		}
		r.enqueue(pr, fn)
	})
}

// Invoke runs fn at process p as one of its atomic steps — the bridge for
// external callers (servers, tests) into the process's serialized world. It
// reports whether the call was accepted (false: crashed or stopped).
func (r *Runtime) Invoke(p rt.ProcID, fn func()) bool {
	pr := r.procs[p]
	if !pr.local || pr.crashed.Load() || r.stopped.Load() {
		return false
	}
	r.enqueue(pr, fn)
	return true
}

// Crash administratively crashes p: its loop exits, and pending or future
// messages, timers and invocations addressed to it are dropped. Used by
// fault-injection tests and by operators; it emits the same "crash" trace
// record as the simulator's fault schedule.
func (r *Runtime) Crash(p rt.ProcID) {
	pr := r.procs[p]
	if pr.crashed.Swap(true) {
		return
	}
	// Retire every timer of the dead incarnation; Restart starts a new one.
	pr.gen.Add(1)
	r.Emit(rt.Record{P: p, Kind: "crash", Peer: -1})
	wake(pr)
	// Guards elsewhere may consult Crashed (schedule-fed oracles): give
	// every process a chance to re-examine its guards.
	for _, other := range r.procs {
		if other.local && !other.crashed.Load() {
			wake(other)
		}
	}
}

// Restart revives an administratively crashed process: the dead
// incarnation's mailbox is discarded (its timers already died with the
// generation bump in Crash), a "recover" trace record is emitted, reboot —
// typically a closure resetting the process's protocol modules to fresh
// state, e.g. forks.Table.Reset plus detector.Heartbeat.Reset — runs as the
// first step of the new incarnation, and a fresh loop goroutine is spawned.
// Handlers and actions registered before Start stay registered: a restart
// reuses the wiring but not the state.
//
// Restart returns false (and does nothing) if p is not hosted here, is not
// crashed, or the runtime is stopped or not yet started.
//
// Semantics note: the runtime drops messages addressed to a crashed process,
// but a fault-injecting bus may still hold pre-crash messages in a delay
// queue. Protocol-level resynchronization (the forks sync handshake) is
// correct provided the crash→restart gap exceeds the bus's maximum delay, so
// the old incarnation's traffic has drained before the new one rejoins —
// the live analogue of the simulator's bounded-reorder axiom.
func (r *Runtime) Restart(p rt.ProcID, reboot func()) bool {
	pr := r.procs[p]
	if !pr.local || !r.started.Load() || r.stopped.Load() || !pr.crashed.Load() {
		return false
	}
	// The old loop exits promptly after Crash (it rechecks crashed between
	// jobs); wait so two incarnations never consume one mailbox.
	<-pr.loopDone
	pr.mu.Lock()
	pr.queue = nil
	pr.mu.Unlock()
	pr.nextStep = time.Time{}
	r.lifeMu.Lock()
	defer r.lifeMu.Unlock()
	if r.stopped.Load() {
		return false
	}
	// Enqueue reboot before clearing the crashed flag: deliveries are dropped
	// while crashed, so reboot is guaranteed to be the new incarnation's first
	// job — no message ever reaches the stale pre-reset protocol state.
	if reboot != nil {
		r.enqueue(pr, reboot)
	}
	pr.crashed.Store(false)
	r.Emit(rt.Record{P: p, Kind: "recover", Peer: -1})
	r.spawn(pr)
	// Oracles and guards may consult Crashed: let everyone re-examine.
	for _, other := range r.procs {
		if other.local && !other.crashed.Load() {
			wake(other)
		}
	}
	return true
}

// Emit implements rt.Runtime. Records are stamped and forwarded to the
// tracer under one lock, so tracers need no synchronization of their own.
func (r *Runtime) Emit(rec rt.Record) {
	r.emitMu.Lock()
	defer r.emitMu.Unlock()
	rec.T = r.Now()
	r.seq++
	rec.Seq = r.seq
	if r.tracer != nil {
		r.tracer.Trace(rec)
	}
}

// Count implements rt.TransportRuntime: add delta to a named counter.
func (r *Runtime) Count(name string, delta int64) {
	r.cntMu.Lock()
	r.counters[name] += delta
	r.cntMu.Unlock()
}

// Counter returns a named counter's current value.
func (r *Runtime) Counter(name string) int64 {
	r.cntMu.Lock()
	defer r.cntMu.Unlock()
	return r.counters[name]
}

// enqueue appends one job to pr's mailbox and nudges its loop. The mailbox
// is unbounded: backpressure would let two processes sending to each other
// deadlock, and protocol traffic here is self-limiting (request/grant
// cycles, periodic heartbeats).
func (r *Runtime) enqueue(pr *process, job func()) {
	pr.mu.Lock()
	pr.queue = append(pr.queue, job)
	pr.mu.Unlock()
	wake(pr)
}

func wake(pr *process) {
	select {
	case pr.notify <- struct{}{}:
	default:
	}
}

func (pr *process) dequeue() func() {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if len(pr.queue) == 0 {
		return nil
	}
	job := pr.queue[0]
	pr.queue[0] = nil
	pr.queue = pr.queue[1:]
	return job
}

// loop is the per-process scheduler: one mailbox job and at most one enabled
// action per iteration, blocking when neither exists. Interleaving jobs with
// action steps keeps a message flood from starving the action system, and
// the rotation cursor in stepOnce gives weak fairness across actions.
//
// Action steps are paced: at most one per stepEvery of wall time. Jobs are
// never paced. A process whose guards stay permanently enabled therefore
// settles at the step rate instead of spinning its CPU — which matters
// doubly on small machines, where a spinning process starves its peers'
// timer deliveries and manufactures false suspicions.
func (r *Runtime) loop(pr *process) {
	pacer := time.NewTimer(time.Hour)
	if !pacer.Stop() {
		<-pacer.C
	}
	defer pacer.Stop()
	for {
		if r.stopped.Load() || pr.crashed.Load() {
			return
		}
		ran := false
		if job := pr.dequeue(); job != nil {
			job()
			ran = true
		}
		pace := time.Duration(-1)
		if !pr.crashed.Load() {
			if now := time.Now(); now.Before(pr.nextStep) {
				if pr.anyEnabled() {
					pace = pr.nextStep.Sub(now)
				}
			} else if r.stepOnce(pr) {
				ran = true
				pr.nextStep = now.Add(r.stepEvery)
			}
		}
		if ran {
			continue
		}
		if pace < 0 {
			// Nothing to do until a job or the stop signal arrives.
			select {
			case <-pr.notify:
			case <-r.stop:
				return
			}
			continue
		}
		// An action is enabled but paced out: sleep until the step clock
		// allows it, or until a job arrives in the meantime.
		pacer.Reset(pace)
		select {
		case <-pr.notify:
			if !pacer.Stop() {
				select {
				case <-pacer.C:
				default:
				}
			}
		case <-pacer.C:
		case <-r.stop:
			return
		}
	}
}

// anyEnabled reports whether some guard of pr currently holds. Guards are
// pure, so speculative evaluation is safe; only pr's own goroutine calls
// this.
func (pr *process) anyEnabled() bool {
	for _, a := range pr.actions {
		if a.guard() {
			return true
		}
	}
	return false
}

// stepOnce executes at most one enabled action of pr, chosen by rotating
// through the action list — the same weak-fairness rule as the simulator.
func (r *Runtime) stepOnce(pr *process) bool {
	n := len(pr.actions)
	for i := 0; i < n; i++ {
		idx := (pr.rot + i) % n
		a := pr.actions[idx]
		if a.guard() {
			pr.rot = idx + 1
			r.Count("steps", 1)
			a.body()
			return true
		}
	}
	return false
}
