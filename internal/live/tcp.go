package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/rt"
)

// TCPBus routes messages between live runtimes on different nodes over
// length-prefixed TCP connections (the wire codec in wire.go). Each node
// hosts a subset of the system's processes; messages to local processes are
// delivered in-process, messages to a process homed on a peer travel over
// that peer's connection, and every connection is read for inbound frames
// regardless of who dialed whom.
//
// Connection loss makes the affected routes fair-lossy (sends are dropped
// until re-registered); protocols in this repository tolerate that by
// design — retransmitting requests, periodic heartbeats — and the reliable
// transport can be layered on top for exactly-once delivery besides.
type TCPBus struct {
	mu      sync.Mutex
	deliver func(rt.Message)
	local   map[rt.ProcID]bool
	routes  map[rt.ProcID]*peerConn
	conns   []*peerConn
	ln      net.Listener
	closed  bool
	wg      sync.WaitGroup

	delivered atomic.Int64 // frames handed to the local delivery sink
	dropped   atomic.Int64 // sends eaten: unroutable peer, encode or write failure
}

// peerConn is one TCP connection with serialized frame writes.
type peerConn struct {
	c  net.Conn
	mu sync.Mutex
}

func (pc *peerConn) writeFrame(body []byte) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return WriteFrame(pc.c, body)
}

// NewTCPBus returns a bus for a node hosting the given local processes.
func NewTCPBus(local []rt.ProcID) *TCPBus {
	b := &TCPBus{
		local:  make(map[rt.ProcID]bool, len(local)),
		routes: make(map[rt.ProcID]*peerConn),
	}
	for _, p := range local {
		b.local[p] = true
	}
	return b
}

// Bind implements Bus.
func (b *TCPBus) Bind(deliver func(rt.Message)) {
	b.mu.Lock()
	b.deliver = deliver
	b.mu.Unlock()
}

// Listen accepts peer connections on addr (e.g. "127.0.0.1:0") and serves
// inbound frames from them. It returns the bound address for peers to Dial.
func (b *TCPBus) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.ln = ln
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			b.addConn(c, nil)
		}
	}()
	return ln.Addr(), nil
}

// Dial connects to a peer node and routes messages addressed to the given
// processes over that connection.
func (b *TCPBus) Dial(addr string, procs []rt.ProcID) error {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	b.addConn(c, procs)
	return nil
}

// addConn registers a connection, optionally as the route for procs, and
// starts its read loop. A frame arriving for a process homed here is
// delivered; its sender's connection also becomes the return route for the
// frame's source process, so listeners learn routes from traffic and need
// no static peer table.
func (b *TCPBus) addConn(c net.Conn, procs []rt.ProcID) {
	pc := &peerConn{c: c}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		c.Close()
		return
	}
	b.conns = append(b.conns, pc)
	for _, p := range procs {
		b.routes[p] = pc
	}
	b.mu.Unlock()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		b.readLoop(pc)
	}()
}

func (b *TCPBus) readLoop(pc *peerConn) {
	for {
		body, err := ReadFrame(pc.c)
		if err != nil {
			pc.c.Close()
			return
		}
		m, err := DecodeMessage(body)
		if err != nil {
			continue // malformed frame: drop, keep the connection
		}
		b.mu.Lock()
		if _, known := b.routes[m.From]; !known && !b.local[m.From] {
			b.routes[m.From] = pc // learned return route
		}
		deliver, isLocal := b.deliver, b.local[m.To]
		b.mu.Unlock()
		if isLocal && deliver != nil {
			b.delivered.Add(1)
			deliver(m)
		}
	}
}

// Send implements Bus: local destinations deliver in-process, remote ones
// are framed onto their route's connection. Unroutable or unencodable
// messages are dropped (fair-lossy).
func (b *TCPBus) Send(m rt.Message) {
	b.mu.Lock()
	deliver, isLocal, route, closed := b.deliver, b.local[m.To], b.routes[m.To], b.closed
	b.mu.Unlock()
	if closed {
		return
	}
	if isLocal {
		if deliver != nil {
			b.delivered.Add(1)
			deliver(m)
		}
		return
	}
	if route == nil {
		b.dropped.Add(1)
		return
	}
	body, err := EncodeMessage(m)
	if err != nil {
		b.dropped.Add(1)
		return
	}
	if err := route.writeFrame(body); err != nil {
		b.dropped.Add(1)
		route.c.Close()
	}
}

// BusStats implements StatsSource.
func (b *TCPBus) BusStats() BusStats {
	return BusStats{Delivered: b.delivered.Load(), Dropped: b.dropped.Load()}
}

// Close implements Bus.
func (b *TCPBus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	ln, conns := b.ln, b.conns
	b.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, pc := range conns {
		pc.c.Close()
	}
	b.wg.Wait()
	return nil
}

// String aids debugging.
func (b *TCPBus) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return fmt.Sprintf("tcpbus(local=%d routes=%d conns=%d)", len(b.local), len(b.routes), len(b.conns))
}
