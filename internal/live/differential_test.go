package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The differential scenario: four processes, the full ◇P extraction (every
// ordered pair monitored via two-diner WF-◇WX boxes), one subject crashing
// mid-run. buildExtraction is runtime-agnostic — the very same call tree
// executes inside the discrete-event kernel and across live goroutines —
// and validateExtraction applies the same checker invariants to both trace
// streams. What the paper proves about the construction must hold however
// it is scheduled; this test checks that it does.

const (
	diffProcs   = 4
	diffCrash   = rt.ProcID(1)
	diffHorizon = rt.Time(8000)
	diffCrashAt = diffHorizon * 2 / 5
)

func buildExtraction(k rt.Runtime, hb detector.HeartbeatConfig) *core.Extractor {
	oracle := detector.NewHeartbeat(k, "hb", hb)
	procs := make([]rt.ProcID, diffProcs)
	for i := range procs {
		procs[i] = rt.ProcID(i)
	}
	return core.NewExtractor(k, procs, forks.Factory(oracle, forks.Config{}), "ex")
}

// validateExtraction asserts the run satisfies the extracted oracle's ◇P
// axioms and the dining boxes' eventual weak exclusion — purely from the
// record stream, so it cannot tell (and must not care) which runtime
// produced it.
func validateExtraction(t *testing.T, which string, l *trace.Log, horizon rt.Time) {
	t.Helper()
	procs := make([]rt.ProcID, diffProcs)
	for i := range procs {
		procs[i] = rt.ProcID(i)
	}
	bound := horizon * 3 / 4
	if _, err := checker.StrongCompleteness(l, "ex", checker.AllPairs(procs), true, bound); err != nil {
		t.Errorf("%s: strong completeness: %v", which, err)
	}
	if _, err := checker.EventualStrongAccuracy(l, "ex", checker.AllPairs(procs), true, bound); err != nil {
		t.Errorf("%s: eventual strong accuracy: %v", which, err)
	}
	// Every two-diner box under the extraction must itself satisfy ◇WX.
	boxes := 0
	for _, inst := range l.Instances(trace.KindState) {
		var p, q, i int
		if _, err := fmt.Sscanf(inst, "ex/%d-%d/%d", &p, &q, &i); err != nil {
			continue
		}
		boxes++
		g := graph.Pair(rt.ProcID(p), rt.ProcID(q))
		if _, err := checker.EventualWeakExclusion(l, g, inst, bound, horizon); err != nil {
			t.Errorf("%s: box %s: %v", which, inst, err)
		}
	}
	if want := diffProcs * (diffProcs - 1) * 2; boxes != want {
		t.Errorf("%s: saw %d extraction boxes, want %d", which, boxes, want)
	}
	if len(l.CrashTimes()) != 1 {
		t.Errorf("%s: expected exactly one crash record, got %v", which, l.CrashTimes())
	}
}

// TestDifferentialExtraction drives the identical extraction scenario on
// the simulation kernel and on the in-process live runtime and validates
// both trace streams with the same (runtime-agnostic) checkers.
func TestDifferentialExtraction(t *testing.T) {
	// Simulated: deterministic, partially synchronous after GST.
	simLog := &trace.Log{}
	k := sim.NewKernel(diffProcs,
		sim.WithSeed(9),
		sim.WithTracer(simLog),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}),
	)
	buildExtraction(k, detector.HeartbeatConfig{})
	k.CrashAt(diffCrash, diffCrashAt)
	simEnd := k.Run(diffHorizon)
	validateExtraction(t, "sim", simLog, simEnd)

	// Live: same construction, real goroutines and wall-clock timers.
	liveLog := &trace.Log{}
	tick := 500 * time.Microsecond
	r := New(Config{N: diffProcs, Tick: tick, Tracer: liveLog})
	buildExtraction(r, liveHB)
	r.Start()
	time.Sleep(time.Duration(diffCrashAt) * tick)
	r.Crash(diffCrash)
	time.Sleep(time.Duration(diffHorizon-diffCrashAt) * tick)
	liveEnd := r.Now()
	r.Stop()
	validateExtraction(t, "live", liveLog, liveEnd)
}

// TestDifferentialBlackoutDining is the crash-recovery differential: the
// identical dining construction runs once on the simulator with no faults —
// the reference behavior — and once on the live runtime through a
// whole-table blackout (every process killed at the same instant, the full
// table restarted after a gap: the in-process shape of kill -9 on a
// dineserve hosting all diners). The same checker verdicts judge both trace
// streams; in the convergence era the recovered run must be
// indistinguishable from the clean one.
func TestDifferentialBlackoutDining(t *testing.T) {
	if testing.Short() {
		t.Skip("live blackout leg occupies seconds of wall clock")
	}
	const blkProcs = 4
	g := graph.Ring(blkProcs)

	buildTable := func(k rt.Runtime, hb detector.HeartbeatConfig) (*forks.Table, *detector.Heartbeat) {
		oracle := detector.NewHeartbeat(k, "hb", hb)
		tbl := forks.New(k, g, "dine", oracle, forks.Config{})
		for _, p := range g.Nodes() {
			dining.Drive(k, p, tbl.Diner(p), dining.DriverConfig{
				ThinkMin: 10, ThinkMax: 60, EatMin: 10, EatMax: 30, FirstHunger: 30,
			})
		}
		return tbl, oracle
	}
	// The runtime-agnostic verdicts: a clean ◇WX report on the second half
	// and every diner eating in it. Both legs must pass both.
	validate := func(which string, l *trace.Log, end rt.Time) {
		t.Helper()
		from := end / 2
		if _, err := checker.EventualWeakExclusion(l, g, "dine", from, end); err != nil {
			t.Errorf("%s: eventual weak exclusion: %v", which, err)
		}
		eat := l.Sessions("eating")
		for _, p := range g.Nodes() {
			late := 0
			for _, iv := range eat[trace.SessionKey{Inst: "dine", P: p}] {
				if iv.Start > from {
					late++
				}
			}
			if late == 0 {
				t.Errorf("%s: diner %d never ate in the convergence era", which, p)
			}
		}
	}

	// Simulated reference: deterministic, partially synchronous, no faults.
	simLog := &trace.Log{}
	k := sim.NewKernel(blkProcs,
		sim.WithSeed(23),
		sim.WithTracer(simLog),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}),
	)
	buildTable(k, detector.HeartbeatConfig{})
	simEnd := k.Run(diffHorizon)
	validate("sim", simLog, simEnd)

	// Live subject: the same table, killed whole and restarted whole.
	liveLog := &trace.Log{}
	tick := 500 * time.Microsecond
	r := New(Config{N: blkProcs, Tick: tick, Tracer: liveLog})
	tbl, oracle := buildTable(r, liveHB)
	r.Start()
	time.Sleep(1500 * time.Millisecond)
	for _, p := range g.Nodes() {
		r.Crash(p)
	}
	time.Sleep(400 * time.Millisecond)
	for _, p := range g.Nodes() {
		p := p
		if !r.Restart(p, func() {
			tbl.Reset(p)
			oracle.Reset(p)
		}) {
			t.Fatalf("Restart(%d) refused", p)
		}
	}
	time.Sleep(2500 * time.Millisecond)
	liveEnd := r.Now()
	r.Stop()

	// The blackout bracket must be fully recorded: one closed dead interval
	// and one recover record per process, and every diner must have eaten
	// before the lights went out (the blackout interrupted real work).
	dead := liveLog.DeadIntervals()
	eat := liveLog.Sessions("eating")
	for _, p := range g.Nodes() {
		if len(dead[p]) != 1 || !dead[p][0].Closed() {
			t.Fatalf("dead intervals of %d = %v, want one closed interval", p, dead[p])
		}
		early := 0
		for _, iv := range eat[trace.SessionKey{Inst: "dine", P: p}] {
			if iv.Start < dead[p][0].Start {
				early++
			}
		}
		if early == 0 {
			t.Errorf("diner %d never ate before the blackout", p)
		}
		if n := len(liveLog.Filter(rt.Record{Kind: trace.KindRecover, P: p, Peer: -1})); n != 1 {
			t.Errorf("recover records for %d = %d, want 1", p, n)
		}
	}
	// Fork conservation after the full-table resync: no edge double-held.
	for _, e := range g.Edges() {
		if tbl.HoldsFork(e[0], e[1]) && tbl.HoldsFork(e[1], e[0]) {
			t.Errorf("edge %d-%d has two fork holders after the blackout", e[0], e[1])
		}
	}
	validate("live", liveLog, liveEnd)
}
