package live

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/rt"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The differential scenario: four processes, the full ◇P extraction (every
// ordered pair monitored via two-diner WF-◇WX boxes), one subject crashing
// mid-run. buildExtraction is runtime-agnostic — the very same call tree
// executes inside the discrete-event kernel and across live goroutines —
// and validateExtraction applies the same checker invariants to both trace
// streams. What the paper proves about the construction must hold however
// it is scheduled; this test checks that it does.

const (
	diffProcs   = 4
	diffCrash   = rt.ProcID(1)
	diffHorizon = rt.Time(8000)
	diffCrashAt = diffHorizon * 2 / 5
)

func buildExtraction(k rt.Runtime, hb detector.HeartbeatConfig) *core.Extractor {
	oracle := detector.NewHeartbeat(k, "hb", hb)
	procs := make([]rt.ProcID, diffProcs)
	for i := range procs {
		procs[i] = rt.ProcID(i)
	}
	return core.NewExtractor(k, procs, forks.Factory(oracle, forks.Config{}), "ex")
}

// validateExtraction asserts the run satisfies the extracted oracle's ◇P
// axioms and the dining boxes' eventual weak exclusion — purely from the
// record stream, so it cannot tell (and must not care) which runtime
// produced it.
func validateExtraction(t *testing.T, which string, l *trace.Log, horizon rt.Time) {
	t.Helper()
	procs := make([]rt.ProcID, diffProcs)
	for i := range procs {
		procs[i] = rt.ProcID(i)
	}
	bound := horizon * 3 / 4
	if _, err := checker.StrongCompleteness(l, "ex", checker.AllPairs(procs), true, bound); err != nil {
		t.Errorf("%s: strong completeness: %v", which, err)
	}
	if _, err := checker.EventualStrongAccuracy(l, "ex", checker.AllPairs(procs), true, bound); err != nil {
		t.Errorf("%s: eventual strong accuracy: %v", which, err)
	}
	// Every two-diner box under the extraction must itself satisfy ◇WX.
	boxes := 0
	for _, inst := range l.Instances(trace.KindState) {
		var p, q, i int
		if _, err := fmt.Sscanf(inst, "ex/%d-%d/%d", &p, &q, &i); err != nil {
			continue
		}
		boxes++
		g := graph.Pair(rt.ProcID(p), rt.ProcID(q))
		if _, err := checker.EventualWeakExclusion(l, g, inst, bound, horizon); err != nil {
			t.Errorf("%s: box %s: %v", which, inst, err)
		}
	}
	if want := diffProcs * (diffProcs - 1) * 2; boxes != want {
		t.Errorf("%s: saw %d extraction boxes, want %d", which, boxes, want)
	}
	if len(l.CrashTimes()) != 1 {
		t.Errorf("%s: expected exactly one crash record, got %v", which, l.CrashTimes())
	}
}

// TestDifferentialExtraction drives the identical extraction scenario on
// the simulation kernel and on the in-process live runtime and validates
// both trace streams with the same (runtime-agnostic) checkers.
func TestDifferentialExtraction(t *testing.T) {
	// Simulated: deterministic, partially synchronous after GST.
	simLog := &trace.Log{}
	k := sim.NewKernel(diffProcs,
		sim.WithSeed(9),
		sim.WithTracer(simLog),
		sim.WithDelay(sim.GSTDelay{GST: 500, PreMax: 60, PostMax: 6}),
	)
	buildExtraction(k, detector.HeartbeatConfig{})
	k.CrashAt(diffCrash, diffCrashAt)
	simEnd := k.Run(diffHorizon)
	validateExtraction(t, "sim", simLog, simEnd)

	// Live: same construction, real goroutines and wall-clock timers.
	liveLog := &trace.Log{}
	tick := 500 * time.Microsecond
	r := New(Config{N: diffProcs, Tick: tick, Tracer: liveLog})
	buildExtraction(r, liveHB)
	r.Start()
	time.Sleep(time.Duration(diffCrashAt) * tick)
	r.Crash(diffCrash)
	time.Sleep(time.Duration(diffHorizon-diffCrashAt) * tick)
	liveEnd := r.Now()
	r.Stop()
	validateExtraction(t, "live", liveLog, liveEnd)
}
