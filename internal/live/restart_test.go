package live

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/checker"
	"repro/internal/detector"
	"repro/internal/dining"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
)

// TestRestartMechanics exercises the runtime-level restart contract without
// protocol machinery: a timer armed by the dead incarnation never fires into
// the new one, the mailbox is discarded, and the reboot hook runs first.
func TestRestartMechanics(t *testing.T) {
	r := New(Config{N: 1, Tick: time.Millisecond})
	events := make(chan string, 16)
	r.AddAction(0, "noop", func() bool { return false }, func() {})
	r.Start()

	if r.Restart(0, nil) {
		t.Fatal("Restart accepted for a live process")
	}
	r.Invoke(0, func() {
		// Armed by the first incarnation, due well after the restart below;
		// the generation check must retire it instead of letting it fire
		// into the second incarnation.
		r.After(0, 60, func() { events <- "stale-timer" })
	})
	time.Sleep(20 * time.Millisecond)
	r.Crash(0)
	if r.Invoke(0, func() { events <- "dead-invoke" }) {
		t.Error("Invoke accepted at a crashed process")
	}
	time.Sleep(20 * time.Millisecond)
	if !r.Restart(0, func() { events <- "reboot" }) {
		t.Fatal("Restart refused for a crashed process")
	}
	r.Invoke(0, func() { events <- "post-restart" })
	r.Invoke(0, func() {
		r.After(0, 5, func() { events <- "fresh-timer" })
	})

	want := []string{"reboot", "post-restart", "fresh-timer"}
	for _, w := range want {
		select {
		case got := <-events:
			if got != w {
				t.Fatalf("event %q, want %q", got, w)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for %q", w)
		}
	}
	select {
	case got := <-events:
		t.Fatalf("unexpected event %q after restart sequence", got)
	case <-time.After(150 * time.Millisecond):
	}
	r.Stop()
}

// gateBus drops 0→1 transport data while closed; everything else passes.
type gateBus struct {
	inner  Bus
	closed atomic.Bool
}

func (b *gateBus) Bind(deliver func(rt.Message)) { b.inner.Bind(deliver) }
func (b *gateBus) Close() error                  { return b.inner.Close() }
func (b *gateBus) Send(m rt.Message) {
	if b.closed.Load() && m.From == 0 && m.Port == "rt/data" {
		return
	}
	b.inner.Send(m)
}

// TestTransportResetAfterRestart is the regression test for the armed-flag
// leak: a crash kills a pending retransmission timer but used to leave the
// sender marked armed, so after a restart no message lost on first copy was
// ever re-sent. The sequence drops a message's first transmission across a
// crash/restart, and requires (a) the dead incarnation's window is NOT
// replayed, and (b) retransmission works again for messages of the new one.
func TestTransportResetAfterRestart(t *testing.T) {
	bus := &gateBus{inner: NewChanBus()}
	r := New(Config{N: 2, Tick: time.Millisecond, Bus: bus})
	tr := transport.Enable(r, "rt", transport.Config{RTO: 20})
	got := make(chan string, 16)
	r.Handle(1, "t", func(m rt.Message) { got <- m.Payload.(string) })
	r.Start()
	defer r.Stop()

	recv := func(want string) {
		t.Helper()
		select {
		case g := <-got:
			if g != want {
				t.Fatalf("received %q, want %q", g, want)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("timed out waiting for %q", want)
		}
	}

	r.Invoke(0, func() { r.Send(0, 1, "t", "a") })
	recv("a") // baseline: transport delivers

	bus.closed.Store(true)
	r.Invoke(0, func() { r.Send(0, 1, "t", "b") }) // first copy dropped
	time.Sleep(10 * time.Millisecond)              // armed, timer pending
	r.Crash(0)                                     // timer killed; armed leaks
	time.Sleep(50 * time.Millisecond)
	if !r.Restart(0, func() { tr.Reset(0) }) {
		t.Fatal("Restart refused")
	}
	// "b" died with the incarnation: its window was discarded, so it must
	// not surface even after the gate opens.
	r.Invoke(0, func() { r.Send(0, 1, "t", "c") }) // first copy dropped too
	time.Sleep(10 * time.Millisecond)
	bus.closed.Store(false)
	recv("c") // only retransmission can deliver this
	// Sender state is process-serial, so read the window on 0's goroutine.
	outstanding := func() int {
		ch := make(chan int, 1)
		r.Invoke(0, func() { ch <- tr.Outstanding(0, 1) })
		select {
		case n := <-ch:
			return n
		case <-time.After(3 * time.Second):
			t.Fatal("timed out reading the outstanding window")
			return -1
		}
	}
	if n := outstanding(); n != 0 {
		// c acked; b's flight is gone. Give the ack a moment if needed.
		time.Sleep(100 * time.Millisecond)
		if n = outstanding(); n != 0 {
			t.Errorf("outstanding window = %d, want 0 (dead incarnation's flights discarded)", n)
		}
	}
	select {
	case g := <-got:
		t.Fatalf("dead incarnation's message %q was replayed", g)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestCrashRestartDining is the differential test of the issue: a diner
// crashes mid-critical-section, restarts with fresh protocol state (forks
// resync handshake plus heartbeat reset), rejoins the table, and the shared
// checkers — the same ones that validate simulator runs — report a clean
// ◇WX verdict on the live trace. Fork conservation is re-checked at the end:
// the restart must not have minted a duplicate fork.
func TestCrashRestartDining(t *testing.T) {
	log := &trace.Log{}
	g := graph.Ring(5)
	r := New(Config{N: 5, Tick: 500 * time.Microsecond, Tracer: log})
	oracle := detector.NewHeartbeat(r, "hb", liveHB)
	tbl := forks.New(r, g, "dine", oracle, forks.Config{})
	eating2 := make(chan struct{}, 1)
	tbl.Diner(2).OnEat(func() {
		select {
		case eating2 <- struct{}{}:
		default:
		}
	})
	for _, p := range g.Nodes() {
		dining.Drive(r, p, tbl.Diner(p), dining.DriverConfig{
			ThinkMin: 10, ThinkMax: 60, EatMin: 10, EatMax: 30, FirstHunger: 30,
		})
	}
	r.Start()

	// Crash 2 the moment it reports a critical section: the crash lands
	// mid-eating (or at worst just after), the hardest spot for safety.
	select {
	case <-eating2:
	case <-time.After(5 * time.Second):
		t.Fatal("diner 2 never entered the critical section")
	}
	r.Crash(2)
	time.Sleep(400 * time.Millisecond)
	if !r.Restart(2, func() {
		tbl.Reset(2)
		oracle.Reset(2)
	}) {
		t.Fatal("Restart(2) refused")
	}
	time.Sleep(2 * time.Second)
	end := r.Now()
	r.Stop()

	// The trace must show the full crash/recover bracket.
	dead := log.DeadIntervals()
	if len(dead[2]) != 1 || !dead[2][0].Closed() {
		t.Fatalf("dead intervals of 2 = %v, want one closed interval", dead[2])
	}
	recoverT := dead[2][0].End

	// The restarted diner rejoins and eats again.
	eat := log.Sessions("eating")
	after := 0
	for _, iv := range eat[trace.SessionKey{Inst: "dine", P: 2}] {
		if iv.Start > recoverT {
			after++
		}
	}
	if after == 0 {
		t.Error("diner 2 never ate after its restart")
	}
	// Everyone else kept eating throughout.
	for _, p := range g.Nodes() {
		if p == 2 {
			continue
		}
		if meals := len(eat[trace.SessionKey{Inst: "dine", P: p}]); meals < 2 {
			t.Errorf("diner %d ate only %d meals", p, meals)
		}
	}
	// The shared safety checker, on the live trace, across the restart.
	if _, err := checker.EventualWeakExclusion(log, g, "dine", end/2, end); err != nil {
		t.Errorf("crash-restart run violates eventual weak exclusion: %v", err)
	}
	// Fork conservation after resync: no edge with two holders.
	for _, e := range g.Edges() {
		if tbl.HoldsFork(e[0], e[1]) && tbl.HoldsFork(e[1], e[0]) {
			t.Errorf("edge %d-%d has two fork holders after restart", e[0], e[1])
		}
	}
	if n := len(log.Filter(rt.Record{Kind: trace.KindRecover, P: 2, Peer: -1})); n != 1 {
		t.Errorf("recover records for 2 = %d, want 1", n)
	}
}
