// Package repro is an executable reproduction of "The Weakest Failure
// Detector for Wait-Free Dining under Eventual Weak Exclusion" (Sastry,
// Pike, Welch; SPAA 2009, corrigendum SPAA 2010): the eventually perfect
// failure detector ◇P is the weakest oracle solving wait-free dining
// philosophers under eventual weak exclusion.
//
// The root package holds only the experiment benchmarks (bench_test.go);
// the system lives under internal/ (see README.md and DESIGN.md), with
// runnable entry points in cmd/ and examples/.
package repro
