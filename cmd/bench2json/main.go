// Command bench2json converts `go test -bench` output on stdin into a
// machine-readable JSON document, the unit of the repo's performance
// trajectory: `make bench` regenerates BENCH_kernel.json and
// BENCH_experiments.json, CI archives them per commit, and each fresh run
// embeds the previously committed file (via -baseline) so every artifact
// carries its own before/after deltas.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | bench2json -o BENCH.json -baseline BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result: its name (with the Benchmark
// prefix and -cpu suffix stripped) and every reported metric, standard
// (ns/op, B/op, allocs/op) and custom (deliveries/op, speedup, ...) alike.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the serialized trajectory point.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Baseline is the prior trajectory point this run is compared against
	// (the previously committed artifact, or a hand-recorded seed baseline).
	Baseline *Doc `json:"baseline,omitempty"`
	// Deltas maps "bench.metric" to new/old ratios for every metric present
	// in both this run and the baseline (e.g. "KernelEvents.allocs/op": 0).
	Deltas map[string]float64 `json:"deltas,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "prior JSON artifact to embed and diff against (missing file is not an error)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if raw, err := os.ReadFile(*baseline); err == nil {
			var base Doc
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintln(os.Stderr, "bench2json: baseline:", err)
				os.Exit(1)
			}
			base.Baseline = nil // keep one generation of history, not a chain
			base.Deltas = nil
			doc.Baseline = &base
			doc.Deltas = deltas(doc, &base)
		}
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parse reads `go test -bench` text: header lines (goos/goarch/cpu/pkg) and
// benchmark result lines of the form
//
//	BenchmarkName-8   123456   78.9 ns/op   2.0 deliveries/op   0 B/op   0 allocs/op
//
// Unrecognized lines (PASS, ok, test log output) are skipped.
func parse(r *os.File) (*Doc, error) {
	doc := &Doc{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{
			Name:       trimName(fields[0]),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad metric value %q in %q", fields[i], line)
			}
			b.Metrics[fields[i+1]] = v
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines on stdin")
	}
	return doc, nil
}

// trimName strips the Benchmark prefix and the -GOMAXPROCS suffix.
func trimName(s string) string {
	s = strings.TrimPrefix(s, "Benchmark")
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		if _, err := strconv.Atoi(s[i+1:]); err == nil {
			s = s[:i]
		}
	}
	return s
}

// deltas computes new/old ratios for every (bench, metric) present in both
// documents. A zero baseline value with a zero new value ratios to 1; a zero
// baseline with a non-zero new value is omitted (the ratio is undefined).
func deltas(cur, base *Doc) map[string]float64 {
	prior := make(map[string]map[string]float64, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		prior[b.Name] = b.Metrics
	}
	out := make(map[string]float64)
	for _, b := range cur.Benchmarks {
		pm, ok := prior[b.Name]
		if !ok {
			continue
		}
		for metric, v := range b.Metrics {
			pv, ok := pm[metric]
			if !ok {
				continue
			}
			switch {
			case pv != 0:
				out[b.Name+"."+metric] = v / pv
			case v == 0:
				out[b.Name+"."+metric] = 1
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
