package main

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dining"
	"repro/internal/live"
	"repro/internal/lockproto"
	"repro/internal/rt"
)

const (
	tableInst = "dine" // served dining table's trace instance
	extInst   = "ex"   // extraction oracle's trace instance
	queueCap  = 1024   // pending acquires per diner before "busy"
)

// server is the TCP front end: it owns the listener, connection handlers,
// and one manager goroutine per diner. Protocol state stays inside the live
// runtime; the server talks to it only through rt.Invoke and the diner
// callbacks, so nothing here races with protocol steps.
type server struct {
	r    *live.Runtime
	feed *suspectFeed
	mgrs []*dinerMgr

	ln       net.Listener
	stop     chan struct{}
	draining atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	inFlight atomic.Int64 // sessions accepted but not yet finished
	granted  atomic.Int64
	released atomic.Int64
}

func newServer(r *live.Runtime, tbl dining.Table, feed *suspectFeed) *server {
	s := &server{
		r:     r,
		feed:  feed,
		stop:  make(chan struct{}),
		conns: make(map[net.Conn]struct{}),
	}
	for _, p := range tbl.Graph().Nodes() {
		m := &dinerMgr{
			srv:   s,
			p:     p,
			d:     tbl.Diner(p),
			queue: make(chan *session, queueCap),
			grant: make(chan struct{}, 1),
			idle:  make(chan struct{}, 1),
		}
		// Registered before Start: both callbacks run on p's goroutine.
		m.d.OnChange(func(st dining.State) {
			switch st {
			case dining.Eating:
				pulse(m.grant)
			case dining.Thinking:
				pulse(m.idle)
			}
		})
		s.mgrs = append(s.mgrs, m)
	}
	return s
}

func pulse(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func (s *server) listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	for _, m := range s.mgrs {
		go m.run()
	}
	return ln, nil
}

func (s *server) accept() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: we are draining
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		go s.handleConn(c)
	}
}

// drain stops accepting work and waits (bounded) for in-flight sessions to
// finish, then tears down connections and managers.
func (s *server) drain(timeout time.Duration) {
	s.draining.Store(true)
	s.ln.Close()
	deadline := time.Now().Add(timeout)
	for s.inFlight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if left := s.inFlight.Load(); left > 0 {
		fmt.Printf("dineserve: drain timeout with %d sessions in flight\n", left)
	}
	close(s.stop)
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// jconn serializes writes from the connection reader, the diner managers,
// and the watch forwarder onto one socket.
type jconn struct {
	mu  sync.Mutex
	c   net.Conn
	enc *json.Encoder
}

func (j *jconn) send(ev lockproto.Event) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.enc.Encode(ev) == nil
}

func (s *server) handleConn(c net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		c.Close()
	}()
	jc := &jconn{c: c, enc: json.NewEncoder(c)}
	gone := make(chan struct{})
	defer close(gone) // cancels queued sessions and the watch forwarder
	held := make(map[string]*session)

	fail := func(req lockproto.Request, msg string) {
		jc.send(lockproto.Event{Ev: lockproto.EvError, Diner: req.Diner, ID: req.ID, Msg: msg})
	}

	dec := json.NewDecoder(c)
	for {
		var req lockproto.Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		switch req.Op {
		case lockproto.OpInfo:
			jc.send(lockproto.Event{Ev: lockproto.EvInfo, Diners: len(s.mgrs), T: int64(s.r.Now())})

		case lockproto.OpAcquire:
			if req.Diner < 0 || req.Diner >= len(s.mgrs) {
				fail(req, "no such diner")
				continue
			}
			if s.draining.Load() {
				fail(req, "draining")
				continue
			}
			key := fmt.Sprintf("%d/%s", req.Diner, req.ID)
			if _, dup := held[key]; dup {
				fail(req, "session id already in use")
				continue
			}
			ses := &session{
				id:      req.ID,
				diner:   req.Diner,
				gone:    gone,
				release: make(chan struct{}),
				send:    jc.send,
			}
			s.inFlight.Add(1)
			select {
			case s.mgrs[req.Diner].queue <- ses:
				held[key] = ses
			default:
				s.inFlight.Add(-1)
				fail(req, "busy")
			}

		case lockproto.OpRelease:
			key := fmt.Sprintf("%d/%s", req.Diner, req.ID)
			ses, ok := held[key]
			if !ok {
				fail(req, "unknown session")
				continue
			}
			delete(held, key)
			close(ses.release)

		case lockproto.OpWatch:
			snapshot, ch, cancel := s.feed.subscribe()
			for _, ev := range snapshot {
				jc.send(ev)
			}
			go func() {
				defer cancel()
				for {
					select {
					case ev := <-ch:
						if !jc.send(ev) {
							return
						}
					case <-gone:
						return
					case <-s.stop:
						return
					}
				}
			}()

		default:
			fail(req, "unknown op")
		}
	}
}

// session is one acquire from queue to release, owned by a dinerMgr after
// being enqueued. The connection signals through release (client asked) and
// gone (client vanished); the manager replies through send.
type session struct {
	id      string
	diner   int
	gone    <-chan struct{}
	release chan struct{}
	send    func(lockproto.Event) bool
}

// dinerMgr serializes sessions onto one diner: pop an acquire, make the
// diner hungry, wait for the dining layer's grant, hand the critical section
// to the client, and exit when the client releases (or disappears). All
// diner calls go through Invoke, so they are steps of the diner's process.
type dinerMgr struct {
	srv   *server
	p     rt.ProcID
	d     dining.Diner
	queue chan *session
	grant chan struct{} // pulsed by OnChange(Eating)
	idle  chan struct{} // pulsed by OnChange(Thinking)
}

func (m *dinerMgr) run() {
	for {
		var s *session
		select {
		case s = <-m.queue:
		case <-m.srv.stop:
			return
		}
		select {
		case <-s.gone: // client left while queued
			m.srv.inFlight.Add(-1)
			continue
		default:
		}
		if !m.srv.r.Invoke(m.p, func() {
			if m.d.State() == dining.Thinking {
				m.d.Hungry()
			}
		}) {
			s.send(lockproto.Event{Ev: lockproto.EvError, Diner: s.diner, ID: s.id, Msg: "runtime stopped"})
			m.srv.inFlight.Add(-1)
			return
		}
		select {
		case <-m.grant:
		case <-m.srv.stop:
			m.srv.inFlight.Add(-1)
			return
		}
		m.srv.granted.Add(1)
		s.send(lockproto.Event{Ev: lockproto.EvGranted, Diner: s.diner, ID: s.id, T: int64(m.srv.r.Now())})
		select {
		case <-s.release:
		case <-s.gone: // auto-release: a dead client must not wedge the diner
		case <-m.srv.stop:
			m.srv.inFlight.Add(-1)
			return
		}
		m.srv.r.Invoke(m.p, func() {
			if m.d.State() == dining.Eating {
				m.d.Exit()
			}
		})
		select {
		case <-m.idle:
		case <-m.srv.stop:
			m.srv.inFlight.Add(-1)
			return
		}
		m.srv.released.Add(1)
		s.send(lockproto.Event{Ev: lockproto.EvReleased, Diner: s.diner, ID: s.id, T: int64(m.srv.r.Now())})
		m.srv.inFlight.Add(-1)
	}
}

// suspectFeed is an rt.Tracer that mirrors the extraction oracle's
// suspect/trust records into per-subscriber channels, and keeps the current
// suspicion matrix so a new watcher starts from a consistent snapshot.
// Record delivery is already serialized by the runtime's emit lock; the
// feed's own mutex makes snapshot-plus-subscribe atomic against it.
type suspectFeed struct {
	inst string

	mu      sync.Mutex
	cur     map[[2]int]bool
	subs    map[int]chan lockproto.Event
	nextID  int
	dropped int64 // events not delivered to slow watchers
}

func newSuspectFeed(inst string) *suspectFeed {
	return &suspectFeed{
		inst: inst,
		cur:  make(map[[2]int]bool),
		subs: make(map[int]chan lockproto.Event),
	}
}

// Trace implements rt.Tracer.
func (f *suspectFeed) Trace(r rt.Record) {
	if r.Inst != f.inst || (r.Kind != "suspect" && r.Kind != "trust") {
		return
	}
	ev := lockproto.Event{
		Ev: lockproto.EvSuspect,
		Of: int(r.P), Peer: int(r.Peer),
		Suspect: r.Kind == "suspect",
		T:       int64(r.T),
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.Suspect {
		f.cur[[2]int{ev.Of, ev.Peer}] = true
	} else {
		delete(f.cur, [2]int{ev.Of, ev.Peer})
	}
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			f.dropped++
		}
	}
}

// subscribe returns the current suspicion matrix as events, a channel that
// will carry every subsequent change, and a cancel function.
func (f *suspectFeed) subscribe() ([]lockproto.Event, <-chan lockproto.Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	snapshot := make([]lockproto.Event, 0, len(f.cur))
	for pq := range f.cur {
		snapshot = append(snapshot, lockproto.Event{
			Ev: lockproto.EvSuspect, Of: pq[0], Peer: pq[1], Suspect: true,
		})
	}
	id := f.nextID
	f.nextID++
	ch := make(chan lockproto.Event, 256)
	f.subs[id] = ch
	cancel := func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}
	return snapshot, ch, cancel
}

// multiTracer fans one record stream out to several tracers.
type multiTracer []rt.Tracer

// Trace implements rt.Tracer.
func (m multiTracer) Trace(r rt.Record) {
	for _, t := range m {
		t.Trace(r)
	}
}
