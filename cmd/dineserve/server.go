package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dining"
	"repro/internal/live"
	"repro/internal/lockproto"
	"repro/internal/metrics"
	"repro/internal/rt"
)

const (
	tableInst = "dine" // served dining table's trace instance
	extInst   = "ex"   // extraction oracle's trace instance
	queueCap  = 1024   // pending acquires per diner before "busy"
)

// server is the TCP front end: it owns the listener, connection handlers,
// the session registry, and one manager goroutine per diner. Protocol state
// stays inside the live runtime; the server talks to it only through
// rt.Invoke and the diner callbacks, so nothing here races with protocol
// steps.
//
// Sessions survive their connections: a client that reconnects and replays
// its acquire (same diner and id) re-attaches to the in-flight session
// instead of opening a second one, and a granted session whose client stays
// away longer than the lease is forcibly released by the janitor so a dead
// client cannot wedge a diner forever.
type server struct {
	r        *live.Runtime
	feed     *suspectFeed
	mgrs     []*dinerMgr
	sessions *lockproto.Sessions
	dur      *durable       // nil: no persistence
	m        *serverMetrics // instrument handles; always non-nil
	// clockBase offsets the runtime's tick clock so server time resumes
	// from the recovered watermark instead of restarting at zero — the
	// lease arithmetic (lastSeen vs now) only works if time never rewinds.
	clockBase int64
	// maxInflight bounds accepted-but-unfinished sessions; beyond it new
	// acquires are shed with "overloaded" (graceful degradation instead of
	// unbounded queue growth). 0 = unlimited.
	maxInflight int64

	// flushBatch/flushDelay tune each connection's coalescing writer
	// (zero: lockproto defaults).
	flushBatch int
	flushDelay time.Duration

	ln       net.Listener
	stop     chan struct{}
	draining atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	byKey sessionTable // live *session objects, sharded like the registry

	// inFlight stays a plain atomic (not a registry gauge) because it is
	// control state — the shedding comparison and the drain loop read it —
	// and the registry samples it via a GaugeFunc instead of mirroring.
	// Everything that is pure telemetry (granted/released/expired/shed,
	// wire coalescing, grant latency) lives in s.m.
	inFlight atomic.Int64 // sessions accepted but not yet finished
}

// sessionTable shards the key→*session map the same way the lockproto
// registry shards its records: by diner, so the table lookup on the acquire
// and release hot paths never serializes independent diners behind one
// mutex (the old global sesMu did exactly that).
type sessionTable struct {
	shards [16]struct {
		mu sync.Mutex
		m  map[lockproto.Key]*session
		_  [24]byte // keep neighbouring locks off one cache line
	}
}

func (t *sessionTable) shard(k lockproto.Key) (*sync.Mutex, map[lockproto.Key]*session) {
	sh := &t.shards[uint(k.Diner)%uint(len(t.shards))]
	return &sh.mu, sh.m
}

// init allocates the shard maps; newServer calls it before any traffic.
func (t *sessionTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[lockproto.Key]*session)
	}
}

func (t *sessionTable) get(k lockproto.Key) *session {
	mu, m := t.shard(k)
	mu.Lock()
	ses := m[k]
	mu.Unlock()
	return ses
}

func (t *sessionTable) put(k lockproto.Key, ses *session) {
	mu, m := t.shard(k)
	mu.Lock()
	m[k] = ses
	mu.Unlock()
}

func (t *sessionTable) del(k lockproto.Key) {
	mu, m := t.shard(k)
	mu.Lock()
	delete(m, k)
	mu.Unlock()
}

func newServer(r *live.Runtime, tbl dining.Table, feed *suspectFeed, sessions *lockproto.Sessions,
	maxInflight int64, dur *durable, clockBase int64, m *serverMetrics) *server {
	if m == nil {
		m = newServerMetrics()
	}
	s := &server{
		r:           r,
		feed:        feed,
		sessions:    sessions,
		dur:         dur,
		m:           m,
		clockBase:   clockBase,
		maxInflight: maxInflight,
		stop:        make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
	}
	s.byKey.init()
	// The feed mirrors extraction records into churn counters; wire it to
	// the same registry the managers write to.
	feed.suspects, feed.trusts, feed.droppedC = m.suspects, m.trusts, m.watchDropped
	for _, p := range tbl.Graph().Nodes() {
		m := &dinerMgr{
			srv:   s,
			p:     p,
			d:     tbl.Diner(p),
			queue: make(chan *session, queueCap),
			grant: make(chan struct{}, 1),
			idle:  make(chan struct{}, 1),
		}
		// Registered before Start: both callbacks run on p's goroutine. The
		// eating flag lets the manager distinguish a real grant from a stale
		// pulse left behind by a chaos crash/restart.
		m.d.OnChange(func(st dining.State) {
			m.eating.Store(st == dining.Eating)
			switch st {
			case dining.Eating:
				pulse(m.grant)
			case dining.Thinking:
				pulse(m.idle)
			}
		})
		s.mgrs = append(s.mgrs, m)
	}
	return s
}

// now is the server clock: runtime ticks offset by the recovered watermark.
func (s *server) now() int64 { return s.clockBase + int64(s.r.Now()) }

// resume re-enqueues the sessions a crash left in flight, in their original
// acquire order. Granted ones carry the regrant flag: they already own the
// critical section in the registry, so their manager re-wins the dining
// layer's grant without a second registry transition (and without a second
// grant journal record). Must run before the listener accepts traffic, so a
// reconnecting client always finds its session already queued.
func (s *server) resume(live []lockproto.RecoveredSession) int {
	granted := 0
	for _, rs := range live {
		ses := newSession(rs.Key)
		ses.regrant = rs.Granted
		if rs.Granted {
			granted++
		}
		s.byKey.put(rs.Key, ses)
		s.inFlight.Add(1)
		select {
		case s.mgrs[rs.Key.Diner].queue <- ses:
		default:
			// A queue this full can only come from a corrupt ledger; shed
			// the session rather than wedge the boot.
			s.inFlight.Add(-1)
			s.dropSession(rs.Key)
			s.sessions.Abort(rs.Key)
		}
	}
	return granted
}

func pulse(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

func drainPulse(ch chan struct{}) {
	select {
	case <-ch:
	default:
	}
}

func (s *server) listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	for _, m := range s.mgrs {
		go m.run()
	}
	go s.janitor()
	return ln, nil
}

// janitor periodically expires detached sessions whose lease ran out. A
// granted one gets its critical section forcibly released — the dining
// service stays wait-free even when clients die silently.
func (s *server) janitor() {
	tick := time.NewTicker(50 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
		case <-s.stop:
			return
		}
		now := s.now()
		s.dur.tick(now)
		for _, e := range s.sessions.Expire(now) {
			s.m.expired.Inc()
			if ses := s.byKey.get(e.Key); ses != nil && e.WasGranted {
				ses.finishRelease()
			}
		}
	}
}

func (s *server) dropSession(k lockproto.Key) { s.byKey.del(k) }

func (s *server) accept() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed: we are draining
		}
		s.connMu.Lock()
		s.conns[c] = struct{}{}
		s.connMu.Unlock()
		go s.handleConn(c)
	}
}

// drain stops accepting work and waits (bounded) for in-flight sessions to
// finish, then tears down connections and managers.
func (s *server) drain(timeout time.Duration) {
	s.draining.Store(true)
	s.ln.Close()
	deadline := time.Now().Add(timeout)
	for s.inFlight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if left := s.inFlight.Load(); left > 0 {
		fmt.Printf("dineserve: drain timeout with %d sessions in flight\n", left)
	}
	close(s.stop)
	s.connMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
}

// jconn is one client connection's outbound half: a coalescing flush
// writer over the socket. Writes from the connection reader, the diner
// managers, and the watch forwarder serialize on the writer's internal
// lock; a burst of events (grant acks interleaved with the suspect stream)
// rides one socket Write instead of one per event.
type jconn struct {
	c  net.Conn
	fw *lockproto.FlushWriter
}

func (j *jconn) send(ev lockproto.Event) bool { return j.fw.Send(&ev) }

func (s *server) handleConn(c net.Conn) {
	jc := &jconn{c: c, fw: lockproto.NewFlushWriter(c, s.flushBatch, s.flushDelay)}
	// Each socket write lands in the registry as it happens, so the
	// coalescing ratio is scrapeable mid-run instead of only accumulating
	// at connection teardown (the old Stats roll-up).
	jc.fw.OnFlush(func(events, bytes int64) {
		s.m.wireWrites.Inc()
		s.m.wireEvents.Add(events)
		s.m.wireBytes.Add(bytes)
	})
	attached := make(map[lockproto.Key]*session)
	defer func() {
		s.connMu.Lock()
		delete(s.conns, c)
		s.connMu.Unlock()
		// Flush anything still coalescing (the close drains), then drop the
		// socket.
		jc.fw.Close()
		c.Close()
		// Detach, don't abandon: the sessions stay in flight so the client
		// can reconnect and resume them; the lease clock starts now.
		now := s.now()
		for k, ses := range attached {
			ses.detach(jc)
			s.sessions.Detach(k, now)
		}
	}()
	gone := make(chan struct{})
	defer close(gone) // cancels the watch forwarder

	fail := func(req lockproto.Request, msg string) {
		jc.send(lockproto.Event{Ev: lockproto.EvError, Diner: req.Diner, ID: req.ID, Msg: msg})
	}

	rr := lockproto.NewRequestReader(c)
	for {
		var req lockproto.Request
		if err := rr.Read(&req); err != nil {
			return
		}
		switch req.Op {
		case lockproto.OpInfo:
			jc.send(lockproto.Event{Ev: lockproto.EvInfo, Diners: len(s.mgrs), T: s.now()})

		case lockproto.OpAcquire:
			if req.Diner < 0 || req.Diner >= len(s.mgrs) {
				fail(req, "no such diner")
				continue
			}
			if s.draining.Load() {
				fail(req, "draining")
				continue
			}
			key := lockproto.Key{Diner: req.Diner, ID: req.ID}
			now := s.now()
			switch s.sessions.Acquire(key, now) {
			case lockproto.AcquireNew:
				if s.maxInflight > 0 && s.inFlight.Load() >= s.maxInflight {
					s.sessions.Abort(key)
					s.m.shed.Inc()
					fail(req, "overloaded")
					continue
				}
				ses := newSession(key)
				s.byKey.put(key, ses)
				s.sessions.Attach(key, now)
				ses.attach(jc)
				attached[key] = ses
				s.inFlight.Add(1)
				select {
				case s.mgrs[req.Diner].queue <- ses:
				default:
					s.inFlight.Add(-1)
					ses.detach(jc)
					delete(attached, key)
					s.dropSession(key)
					s.sessions.Abort(key)
					fail(req, "busy")
				}

			case lockproto.AcquirePending, lockproto.AcquireGranted:
				// Replay after a reconnect: re-attach. attach re-sends the
				// grant notification if it was already issued; the critical
				// section itself is never granted twice. The registry counts
				// bindings, so this Attach and the dying connection's deferred
				// Detach land safely in either order.
				ses := s.byKey.get(key)
				if ses == nil {
					// Completed between the registry check and here.
					fail(req, "session expired")
					continue
				}
				if attached[key] == nil {
					s.sessions.Attach(key, now)
				}
				ses.attach(jc)
				attached[key] = ses

			case lockproto.AcquireDone:
				fail(req, "session expired")
			}

		case lockproto.OpRelease:
			key := lockproto.Key{Diner: req.Diner, ID: req.ID}
			switch s.sessions.Release(key, s.now()) {
			case lockproto.ReleaseGranted:
				if ses := s.byKey.get(key); ses != nil {
					ses.finishRelease() // the manager sends EvReleased after the exit
				}
			case lockproto.ReleasePending:
				// Released before the grant: the manager unwinds silently
				// when the grant arrives; acknowledge the client now (the
				// release record first — an acked release must survive a
				// crash).
				s.dur.barrier()
				jc.send(lockproto.Event{Ev: lockproto.EvReleased, Diner: req.Diner, ID: req.ID, T: s.now()})
			case lockproto.ReleaseDone:
				// Replayed release (the first ack was lost): re-acknowledge.
				jc.send(lockproto.Event{Ev: lockproto.EvReleased, Diner: req.Diner, ID: req.ID, T: s.now()})
			case lockproto.ReleaseUnknown:
				fail(req, "unknown session")
			}

		case lockproto.OpWatch:
			snapshot, ch, cancel := s.feed.subscribe()
			for _, ev := range snapshot {
				jc.send(ev)
			}
			go func() {
				defer cancel()
				for {
					select {
					case ev := <-ch:
						if !jc.send(ev) {
							return
						}
					case <-gone:
						return
					case <-s.stop:
						return
					}
				}
			}()

		default:
			fail(req, "unknown op")
		}
	}
}

// session is one acquire from registry entry to release, owned by a
// dinerMgr after being enqueued. Its connection binding is mutable: the
// client may vanish and re-attach from a new connection mid-session.
type session struct {
	key lockproto.Key
	// regrant marks a session recovered from the WAL in granted state; its
	// manager re-wins the dining-layer grant but must not re-run the
	// registry transition. Set before enqueue, read-only afterwards.
	regrant bool
	// start stamps the acquire's arrival; the server-side grant-latency
	// histogram observes start→grant-sent. Recovered sessions carry their
	// resume time instead, which is why regrants are not observed.
	start   time.Time
	release chan struct{}
	relOnce sync.Once

	mu      sync.Mutex
	conn    *jconn // nil while detached
	granted bool
	grantEv lockproto.Event
}

func newSession(k lockproto.Key) *session {
	return &session{key: k, start: time.Now(), release: make(chan struct{})}
}

// finishRelease signals the manager to free the critical section (or to
// unwind, if it has not granted yet). Idempotent: the client's release and
// the janitor's expiry may race.
func (s *session) finishRelease() { s.relOnce.Do(func() { close(s.release) }) }

// attach binds the session to a connection; if the grant was already issued
// the (possibly lost) notification is re-sent on the new connection.
func (s *session) attach(jc *jconn) {
	s.mu.Lock()
	s.conn = jc
	resend := s.granted
	ev := s.grantEv
	s.mu.Unlock()
	if resend {
		jc.send(ev)
	}
}

// detach unbinds the session if it is still bound to jc (a newer connection
// may have taken over).
func (s *session) detach(jc *jconn) {
	s.mu.Lock()
	if s.conn == jc {
		s.conn = nil
	}
	s.mu.Unlock()
}

// markGranted records and sends the grant notification.
func (s *session) markGranted(ev lockproto.Event) {
	s.mu.Lock()
	s.granted = true
	s.grantEv = ev
	jc := s.conn
	s.mu.Unlock()
	if jc != nil {
		jc.send(ev)
	}
}

// notify sends ev if a connection is attached.
func (s *session) notify(ev lockproto.Event) {
	s.mu.Lock()
	jc := s.conn
	s.mu.Unlock()
	if jc != nil {
		jc.send(ev)
	}
}

// dinerMgr serializes sessions onto one diner: pop an acquire, make the
// diner hungry, wait for the dining layer's grant, hand the critical section
// to the client, and exit when the client releases, disappears past its
// lease, or released while still queued. All diner calls go through Invoke,
// so they are steps of the diner's process.
type dinerMgr struct {
	srv    *server
	p      rt.ProcID
	d      dining.Diner
	queue  chan *session
	grant  chan struct{} // pulsed by OnChange(Eating)
	idle   chan struct{} // pulsed by OnChange(Thinking)
	eating atomic.Bool   // mirrors the diner's state, set in OnChange
}

// hungry best-effort requests the critical section; refused while the diner
// process is crashed (a chaos restart re-triggers via the idle pulse).
func (m *dinerMgr) hungry() {
	m.srv.r.Invoke(m.p, func() {
		if m.d.State() == dining.Thinking {
			m.d.Hungry()
		}
	})
}

// exitCS best-effort leaves the critical section.
func (m *dinerMgr) exitCS() {
	m.srv.r.Invoke(m.p, func() {
		if m.d.State() == dining.Eating {
			m.d.Exit()
		}
	})
}

// waitIdle blocks until the diner is back to thinking (or the server
// stops). Returns false on stop.
func (m *dinerMgr) waitIdle() bool {
	for {
		select {
		case <-m.idle:
			if !m.eating.Load() {
				return true
			}
		case <-m.srv.stop:
			return false
		}
	}
}

func (m *dinerMgr) run() {
	for {
		var ses *session
		select {
		case ses = <-m.queue:
		case <-m.srv.stop:
			return
		}
		// Stale pulses from a previous cycle (or a chaos restart) must not
		// satisfy this session's waits.
		drainPulse(m.grant)
		drainPulse(m.idle)
		m.hungry()
		// Wait for the dining layer's grant. A crash/restart of the diner's
		// process knocks it back to Thinking (pulsing idle); re-request
		// instead of wedging forever.
	grantWait:
		for {
			select {
			case <-m.grant:
				if m.eating.Load() {
					break grantWait
				}
				// Stale pulse (crash hit right after the transition): the
				// restart's idle pulse will re-trigger hungry below.
			case <-m.idle:
				m.hungry()
			case <-m.srv.stop:
				m.srv.inFlight.Add(-1)
				return
			}
		}
		if ses.regrant {
			// Recovered grant: the registry already shows this session in
			// the critical section — the crash just evicted it from the
			// dining layer, which we have now re-won. No second registry
			// transition, no second grant journal record.
			m.srv.m.regranted.Inc()
			m.srv.m.held.Add(1)
			select {
			case <-ses.release:
				// Released (or janitor-expired) while we were re-winning:
				// fall through to the exit without re-announcing the grant,
				// so the client never sees EvGranted after its release.
			default:
				ses.markGranted(lockproto.Event{
					Ev: lockproto.EvGranted, Diner: ses.key.Diner, ID: ses.key.ID, T: m.srv.now(),
				})
			}
		} else if !m.srv.sessions.Grant(ses.key, m.srv.now()) {
			// Released or expired while queued: hand the section straight
			// back without ever exposing it.
			m.exitCS()
			if !m.waitIdle() {
				m.srv.inFlight.Add(-1)
				return
			}
			m.srv.dropSession(ses.key)
			m.srv.inFlight.Add(-1)
			continue
		} else {
			// The grant record must be on disk before the client can act on
			// the grant — an acknowledged critical section that a crash
			// forgets would be re-granted on recovery.
			m.srv.dur.barrier()
			m.srv.m.granted.Inc()
			m.srv.m.held.Add(1)
			m.srv.m.grantLat.ObserveDuration(time.Since(ses.start))
			ses.markGranted(lockproto.Event{
				Ev: lockproto.EvGranted, Diner: ses.key.Diner, ID: ses.key.ID, T: m.srv.now(),
			})
		}
		select {
		case <-ses.release:
		case <-m.srv.stop:
			m.srv.inFlight.Add(-1)
			return
		}
		m.exitCS()
		if !m.waitIdle() {
			m.srv.inFlight.Add(-1)
			return
		}
		m.srv.m.released.Inc()
		m.srv.m.held.Add(-1)
		// Same durability rule as the grant: the release record must not be
		// lost once the client has seen the ack, or recovery would resurrect
		// a finished session.
		m.srv.dur.barrier()
		ses.notify(lockproto.Event{
			Ev: lockproto.EvReleased, Diner: ses.key.Diner, ID: ses.key.ID, T: m.srv.now(),
		})
		m.srv.dropSession(ses.key)
		m.srv.inFlight.Add(-1)
	}
}

// suspectFeed is an rt.Tracer that mirrors the extraction oracle's
// suspect/trust records into per-subscriber channels, and keeps the current
// suspicion matrix so a new watcher starts from a consistent snapshot.
// Record delivery is already serialized by the runtime's emit lock; the
// feed's own mutex makes snapshot-plus-subscribe atomic against it.
type suspectFeed struct {
	inst string

	// Churn counters, assigned once by newServer before the runtime starts
	// (nil-safe: a feed built outside a server just skips them).
	suspects *metrics.Counter
	trusts   *metrics.Counter
	droppedC *metrics.Counter

	mu      sync.Mutex
	cur     map[[2]int]bool
	subs    map[int]chan lockproto.Event
	nextID  int
	dropped int64 // events not delivered to slow watchers
}

func newSuspectFeed(inst string) *suspectFeed {
	return &suspectFeed{
		inst: inst,
		cur:  make(map[[2]int]bool),
		subs: make(map[int]chan lockproto.Event),
	}
}

// Trace implements rt.Tracer.
func (f *suspectFeed) Trace(r rt.Record) {
	if r.Inst != f.inst || (r.Kind != "suspect" && r.Kind != "trust") {
		return
	}
	ev := lockproto.Event{
		Ev: lockproto.EvSuspect,
		Of: int(r.P), Peer: int(r.Peer),
		Suspect: r.Kind == "suspect",
		T:       int64(r.T),
	}
	if ev.Suspect {
		f.suspects.Inc()
	} else {
		f.trusts.Inc()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ev.Suspect {
		f.cur[[2]int{ev.Of, ev.Peer}] = true
	} else {
		delete(f.cur, [2]int{ev.Of, ev.Peer})
	}
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
			f.dropped++
			f.droppedC.Inc()
		}
	}
}

// subscribe returns the current suspicion matrix as events, a channel that
// will carry every subsequent change, and a cancel function.
func (f *suspectFeed) subscribe() ([]lockproto.Event, <-chan lockproto.Event, func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	snapshot := make([]lockproto.Event, 0, len(f.cur))
	for pq := range f.cur {
		snapshot = append(snapshot, lockproto.Event{
			Ev: lockproto.EvSuspect, Of: pq[0], Peer: pq[1], Suspect: true,
		})
	}
	id := f.nextID
	f.nextID++
	ch := make(chan lockproto.Event, 256)
	f.subs[id] = ch
	cancel := func() {
		f.mu.Lock()
		delete(f.subs, id)
		f.mu.Unlock()
	}
	return snapshot, ch, cancel
}

// multiTracer fans one record stream out to several tracers.
type multiTracer []rt.Tracer

// Trace implements rt.Tracer.
func (m multiTracer) Trace(r rt.Record) {
	for _, t := range m {
		t.Trace(r)
	}
}
