package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// benchBaseline mirrors the slice of BENCH_serve.json this test needs.
type benchBaseline struct {
	Benchmarks []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	} `json:"benchmarks"`
}

func baselineAllocs(t *testing.T, name string) (float64, bool) {
	t.Helper()
	raw, err := os.ReadFile("../../BENCH_serve.json")
	if err != nil {
		t.Logf("no baseline: %v", err)
		return 0, false
	}
	var bl benchBaseline
	if err := json.Unmarshal(raw, &bl); err != nil {
		t.Fatalf("BENCH_serve.json: %v", err)
	}
	for _, b := range bl.Benchmarks {
		if b.Name == name {
			return b.Metrics["allocs/op"], true
		}
	}
	return 0, false
}

// TestServeGrantMetricsAllocs pins the observability tax on the request hot
// path: the instrumented grant cycle must allocate no more per op than the
// pre-metrics baseline recorded in BENCH_serve.json. Counters are sharded
// atomics behind preallocated handles, histogram observation is a bucket
// index plus three atomic adds — none of it should touch the heap. ns/op is
// deliberately not asserted here (CI machines vary); the ≤5% ns/op check
// runs offline against `go test -bench` output.
func TestServeGrantMetricsAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full server; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race runtime allocates; the baseline is a production build")
	}
	want, ok := baselineAllocs(t, "ServeGrant")
	if !ok {
		t.Skip("no ServeGrant baseline in BENCH_serve.json")
	}
	// AllocsPerOp charges the whole process: the server's heartbeat and
	// timer traffic allocates per *tick*, not per op, so a slow or loaded
	// run attributes more background allocations to each op. That noise
	// only ever inflates the count, so the minimum over a few attempts
	// converges on the true per-op cost — while a single systematic
	// allocation added by the instruments would floor every attempt above
	// the baseline.
	const attempts = 5
	best := int64(-1)
	for a := 0; a < attempts; a++ {
		res := testing.Benchmark(func(b *testing.B) {
			addr, stop := benchServer(b, 3)
			defer stop()
			cl := dialBench(b, addr)
			defer cl.c.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.session(b, 0, fmt.Sprintf("m%d-%d", a, i))
			}
			b.StopTimer()
		})
		t.Logf("attempt %d: ServeGrant with metrics: %d allocs/op (baseline %.0f), %d ns/op",
			a, res.AllocsPerOp(), want, res.NsPerOp())
		if best < 0 || res.AllocsPerOp() < best {
			best = res.AllocsPerOp()
		}
		if float64(best) <= want {
			return
		}
	}
	t.Fatalf("metrics added allocations on the grant path: best %d allocs/op over %d attempts, baseline %.0f",
		best, attempts, want)
}
