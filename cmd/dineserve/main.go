// Command dineserve exposes wait-free dining under eventual weak exclusion
// as a networked lock/session service. It hosts N diners on the live runtime
// (internal/live), arbitrated by the forks algorithm over a heartbeat ◇P;
// clients acquire and release eating sessions over TCP (newline-delimited
// JSON, see internal/lockproto — a plain `nc` session works). Alongside the
// served table, the paper's reduction (internal/core) runs the full ◇P
// extraction over the same process set, and clients can stream its suspect
// output live with the watch op.
//
// On SIGINT the server drains: new acquires are refused, granted sessions
// run to completion (bounded by -drain), and the whole run's trace is then
// validated by the ◇WX checker. The exit status reports the verdict, which
// is what `make serve-smoke` asserts.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers the profiling handlers
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/checker"
	"repro/internal/core"
	"repro/internal/detector"
	"repro/internal/dining/forks"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/lockproto"
	"repro/internal/metrics"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/wal"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7117", "listen address (use :0 for an ephemeral port)")
		n         = flag.Int("n", 5, "number of diners")
		topology  = flag.String("topology", "ring", "conflict graph: ring or clique")
		tick      = flag.Duration("tick", time.Millisecond, "wall-clock duration of one protocol tick")
		hbTimeout = flag.Int("hb-timeout", 600, "initial heartbeat suspicion timeout, in ticks")
		extract   = flag.Bool("extract", true, "run the ◇P extraction alongside the served table (feeds the watch stream)")
		drain     = flag.Duration("drain", 10*time.Second, "how long SIGINT waits for in-flight sessions")
		lease     = flag.Duration("lease", 30*time.Second, "how long a disconnected client's session survives before forced release (0: forever)")
		maxInFl   = flag.Int64("max-inflight", 4096, "max concurrent sessions before new acquires are shed with \"overloaded\" (0: unlimited)")

		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty: off)")
		metricsAddr = flag.String("metrics", "", "serve /metrics (Prometheus text) and /statusz (JSON) on this address (e.g. 127.0.0.1:9117; empty: off)")
		flushBatch  = flag.Int("flush-batch", 0, "per-connection write-coalescing batch bound in bytes (0: default 32KiB)")
		flushDelay  = flag.Duration("flush-delay", 0, "per-connection write-coalescing flush deadline (0: default 500µs)")

		dataDir    = flag.String("data-dir", "", "WAL+snapshot directory; empty disables persistence")
		fsync      = flag.String("fsync", "always", "WAL durability: always (fsync per commit), interval, or never")
		fsyncEvery = flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync cadence under -fsync interval")
		snapRecs   = flag.Int64("snap-records", 4096, "cut a snapshot after this many WAL records")

		chaosCrash   = flag.Int("chaos-crash", -1, "diner to crash and restart once (chaos injection; -1: none)")
		chaosCrashAt = flag.Duration("chaos-crash-at", 2*time.Second, "when after startup the chaos crash fires")
		chaosRestart = flag.Duration("chaos-restart-after", 500*time.Millisecond, "crash-to-restart gap (must exceed the bus's max delay)")
	)
	flag.Parse()
	if *n < 2 {
		fmt.Fprintln(os.Stderr, "dineserve: -n must be at least 2")
		os.Exit(2)
	}

	var g *graph.Graph
	switch *topology {
	case "ring":
		g = graph.Ring(*n)
	case "clique":
		g = graph.Clique(*n)
	default:
		fmt.Fprintf(os.Stderr, "dineserve: unknown -topology %q\n", *topology)
		os.Exit(2)
	}

	leaseTicks := int64(0)
	if *lease > 0 {
		leaseTicks = int64(*lease / *tick)
	}

	// The instrument inventory exists before everything else so recovery,
	// the WAL, and the runtime can be born instrumented. Instruments are
	// always live; -metrics only decides whether an HTTP listener shows them.
	m := newServerMetrics()

	// Recovery happens before anything else exists: the WAL decides the
	// session registry, the fork seeding, and the clock base the rest of the
	// boot builds on.
	sessions := lockproto.NewSessions(leaseTicks)
	var dur *durable
	var recovered *lockproto.Recovered
	clockBase := int64(0)
	if *dataDir != "" {
		pol, err := wal.ParsePolicy(*fsync)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dineserve: %v\n", err)
			os.Exit(2)
		}
		store, walRec, err := wal.Open(*dataDir, wal.Options{
			Policy: pol, Interval: *fsyncEvery,
			OnSync: func(records int64, d time.Duration) {
				m.walFsyncs.Inc()
				m.walFsyncLat.ObserveDuration(d)
				if records > 0 {
					m.walBatch.Observe(records)
				}
			},
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dineserve: wal: %v\n", err)
			os.Exit(1)
		}
		recovered, err = lockproto.Replay(leaseTicks, walRec.Snapshot, walRec.Records)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dineserve: wal replay: %v\n", err)
			os.Exit(1)
		}
		if len(recovered.Violations) > 0 {
			// The ledger proves the pre-crash run broke safety; refusing to
			// serve from it beats laundering the violation into a new run.
			for _, v := range recovered.Violations {
				fmt.Fprintf(os.Stderr, "dineserve: ledger violation: %s\n", v)
			}
			os.Exit(1)
		}
		sessions = recovered.Sessions
		clockBase = recovered.Watermark
		sessions.ResetBindings(clockBase)
		nGranted := 0
		for _, rs := range recovered.Live {
			if rs.Granted {
				nGranted++
			}
		}
		fmt.Printf("dineserve: recovered %d live sessions (%d granted), %d fork edges, watermark t=%d, torn tail %d bytes\n",
			len(recovered.Live), nGranted, len(recovered.Forks), clockBase, walRec.TornBytes)
		dur = newDurable(store, sessions, *snapRecs)
		dur.instrument(m)
		sessions.SetJournal(dur.journal)
	}

	log := &trace.Log{}
	feed := newSuspectFeed(extInst)
	// Name the bus explicitly (live.New would default to the same one) so
	// its delivery counters can be sampled by the registry.
	bus := live.NewChanBus()
	r := live.New(live.Config{
		N:      *n,
		Tick:   *tick,
		Tracer: multiTracer{log, feed},
		Bus:    bus,
	})
	m.observeRuntime(r)
	m.observeBus(bus)
	hb := detector.NewHeartbeat(r, "hb", detector.HeartbeatConfig{
		Interval: 20, Check: 10,
		Timeout: rt.Time(*hbTimeout), Bump: rt.Time(*hbTimeout) / 2,
	})
	tableCfg := forks.Config{}
	if dur != nil {
		tableCfg.OnFork = dur.onFork
		if recovered != nil && len(recovered.Forks) > 0 {
			forkSeed := recovered.Forks
			tableCfg.Seed = func(p, q rt.ProcID) bool {
				e := lockproto.Edge{P: int(p), Q: int(q)}
				lower := true
				if e.P > e.Q {
					e.P, e.Q, lower = e.Q, e.P, false
				}
				lowerHolds, ok := forkSeed[e]
				if !ok {
					return p < q // edge never journaled: default placement
				}
				return lowerHolds == lower
			}
		}
	}
	tbl := forks.New(r, g, tableInst, hb, tableCfg)
	if *chaosCrash >= 0 && *extract {
		// The extraction boxes simulate every diner inside each real process;
		// they have no restart story, so a chaos run would freeze the box of
		// the crashed process and poison the suspect stream.
		fmt.Println("dineserve: chaos crash enabled, disabling -extract")
		*extract = false
	}
	if *extract {
		procs := make([]rt.ProcID, *n)
		for i := range procs {
			procs[i] = rt.ProcID(i)
		}
		core.NewExtractor(r, procs, forks.Factory(hb, forks.Config{}), extInst)
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers via the blank import.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dineserve: pprof: %v\n", err)
			}
		}()
		fmt.Printf("dineserve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}

	srv := newServer(r, tbl, feed, sessions, *maxInFl, dur, clockBase, m)
	srv.flushBatch = *flushBatch
	srv.flushDelay = *flushDelay
	m.observeServer(srv)

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dineserve: metrics: %v\n", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(mln, metrics.Handler(m.reg)); err != nil {
				// Closed at process exit; nothing to clean up.
				_ = err
			}
		}()
		fmt.Printf("dineserve: metrics on http://%s/metrics\n", mln.Addr())
	}
	if recovered != nil && len(recovered.Live) > 0 {
		// Re-queue the crash's in-flight sessions before the listener opens:
		// granted ones re-enter the dining layer, pending ones line up again,
		// and reconnecting clients find everything where they left it.
		srv.resume(recovered.Live)
	}
	r.Start()
	ln, err := srv.listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dineserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dineserve: listening on %s (%d diners, %s)\n", ln.Addr(), *n, *topology)

	if *chaosCrash >= 0 && *chaosCrash < *n {
		p := rt.ProcID(*chaosCrash)
		go func() {
			time.Sleep(*chaosCrashAt)
			fmt.Printf("dineserve: chaos — crashing diner %d\n", p)
			r.Crash(p)
			time.Sleep(*chaosRestart)
			if r.Restart(p, func() {
				tbl.Reset(p)
				hb.Reset(p)
			}) {
				fmt.Printf("dineserve: chaos — diner %d restarted\n", p)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go srv.accept()
	<-sig
	fmt.Println("dineserve: signal received, draining")
	srv.drain(*drain)

	end := r.Now()
	r.Stop()
	dur.close()
	// Exit-time telemetry reads the same registry a -metrics scrape serves,
	// so the final numbers and a mid-run scrape can never disagree.
	fmt.Printf("dineserve: granted=%d regranted=%d released=%d expired=%d shed=%d steps=%d msgs=%d\n",
		m.granted.Value(), m.regranted.Value(), m.released.Value(), m.expired.Value(), m.shed.Value(),
		r.Counter("steps"), r.Counter("msg.delivered"))
	if ev := m.wireEvents.Value(); ev > 0 {
		fmt.Printf("dineserve: wire events=%d writes=%d (%.1f events/write)\n",
			ev, m.wireWrites.Value(), float64(ev)/float64(max64(m.wireWrites.Value(), 1)))
	}
	if calls := m.walBarriers.Value(); calls > 0 {
		fmt.Printf("dineserve: durability barriers=%d fsync-rounds=%d (%.1f barriers/fsync)\n",
			calls, m.walSyncRounds.Value(), float64(calls)/float64(max64(m.walSyncRounds.Value(), 1)))
	}

	// The service's whole life is the run; require exclusion mistakes to
	// have stopped by its midpoint. With no crashes and sane timeouts there
	// are normally no violations at all.
	rep, err := checker.EventualWeakExclusion(log, g, tableInst, end/2, end)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dineserve: exclusion check FAILED: %v (%d violations)\n", err, len(rep.Violations))
		os.Exit(1)
	}
	fmt.Printf("dineserve: exclusion check OK — %d violations, all before t=%d (run end t=%d)\n",
		len(rep.Violations), end/2, end)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
