// Command dineserve exposes wait-free dining under eventual weak exclusion
// as a networked lock/session service. All of the actual machinery lives in
// internal/dinesvc — the embeddable service kernel hosting N diners over
// -tables independent dining tables, arbitrated by the forks algorithm over
// a heartbeat ◇P; clients acquire and release eating sessions over TCP
// (newline-delimited JSON, see internal/lockproto — a plain `nc` session
// works). Alongside each served table, the paper's reduction
// (internal/core) runs the full ◇P extraction over the same process set,
// and clients can stream its suspect output live with the watch op.
//
// This file is only the shell: flag parsing, HTTP side-listeners (pprof,
// metrics), signal handling, and exit-status policy. On SIGINT the service
// drains: new acquires are refused, granted sessions run to completion
// (bounded by -drain), and every table's trace is then validated by the ◇WX
// checker. The exit status reports the verdict, which is what
// `make serve-smoke` asserts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // -pprof: registers the profiling handlers
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/dinesvc"
	"repro/internal/metrics"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7117", "listen address (use :0 for an ephemeral port)")
		n         = flag.Int("n", 5, "number of diners")
		tables    = flag.Int("tables", 1, "independent dining tables to shard the diners over")
		topology  = flag.String("topology", "ring", "per-table conflict graph: ring or clique")
		tick      = flag.Duration("tick", time.Millisecond, "wall-clock duration of one protocol tick")
		hbTimeout = flag.Int("hb-timeout", 600, "initial heartbeat suspicion timeout, in ticks")
		extract   = flag.Bool("extract", true, "run the ◇P extraction alongside each served table (feeds the watch stream)")
		drain     = flag.Duration("drain", 10*time.Second, "how long SIGINT waits for in-flight sessions")
		lease     = flag.Duration("lease", 30*time.Second, "how long a disconnected client's session survives before forced release (0: forever)")
		maxInFl   = flag.Int64("max-inflight", 4096, "max concurrent sessions before new acquires are shed with \"overloaded\" (0: unlimited)")

		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty: off)")
		metricsAddr = flag.String("metrics", "", "serve /metrics (Prometheus text) and /statusz (JSON) on this address (e.g. 127.0.0.1:9117; empty: off)")
		flushBatch  = flag.Int("flush-batch", 0, "per-connection write-coalescing batch bound in bytes (0: default 32KiB)")
		flushDelay  = flag.Duration("flush-delay", 0, "per-connection write-coalescing flush deadline (0: default 500µs)")

		dataDir    = flag.String("data-dir", "", "WAL+snapshot directory; empty disables persistence")
		fsync      = flag.String("fsync", "always", "WAL durability: always (fsync per commit), interval, or never")
		fsyncEvery = flag.Duration("fsync-interval", 50*time.Millisecond, "background fsync cadence under -fsync interval")
		snapRecs   = flag.Int64("snap-records", 4096, "cut a snapshot after this many WAL records, per table")

		chaosCrash   = flag.Int("chaos-crash", -1, "diner to crash and restart once (chaos injection; -1: none)")
		chaosCrashAt = flag.Duration("chaos-crash-at", 2*time.Second, "when after startup the chaos crash fires")
		chaosRestart = flag.Duration("chaos-restart-after", 500*time.Millisecond, "crash-to-restart gap (must exceed the bus's max delay)")
	)
	flag.Parse()

	if *chaosCrash >= 0 && *extract {
		// The extraction boxes simulate every diner inside each real process;
		// they have no restart story, so a chaos run would freeze the box of
		// the crashed process and poison the suspect stream.
		fmt.Println("dineserve: chaos crash enabled, disabling -extract")
		*extract = false
	}

	svc, err := dinesvc.New(dinesvc.Config{
		N:           *n,
		Tables:      *tables,
		Topology:    *topology,
		Tick:        *tick,
		HBTimeout:   *hbTimeout,
		Extract:     *extract,
		Lease:       *lease,
		MaxInflight: *maxInFl,
		FlushBatch:  *flushBatch,
		FlushDelay:  *flushDelay,

		DataDir:       *dataDir,
		Fsync:         *fsync,
		FsyncInterval: *fsyncEvery,
		SnapRecords:   *snapRecs,

		Logf: func(format string, args ...any) {
			fmt.Printf("dineserve: "+format+"\n", args...)
		},
		Fatalf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dineserve: "+format+"\n", args...)
			os.Exit(1)
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dineserve: %v\n", err)
		if errors.Is(err, dinesvc.ErrUsage) {
			os.Exit(2)
		}
		os.Exit(1)
	}

	if *pprofAddr != "" {
		// DefaultServeMux carries the pprof handlers via the blank import.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dineserve: pprof: %v\n", err)
			}
		}()
		fmt.Printf("dineserve: pprof on http://%s/debug/pprof/\n", *pprofAddr)
	}
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dineserve: metrics: %v\n", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(mln, metrics.Handler(svc.Registry())); err != nil {
				// Closed at process exit; nothing to clean up.
				_ = err
			}
		}()
		fmt.Printf("dineserve: metrics on http://%s/metrics\n", mln.Addr())
	}

	if _, err := svc.Listen(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "dineserve: %v\n", err)
		os.Exit(1)
	}
	if *chaosCrash >= 0 && *chaosCrash < *n {
		svc.ChaosCrash(*chaosCrash, *chaosCrashAt, *chaosRestart)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("dineserve: signal received, draining")
	svc.Drain(*drain)
	svc.Summary()
	if err := svc.Verdict(); err != nil {
		fmt.Fprintf(os.Stderr, "dineserve: exclusion check FAILED: %v\n", err)
		os.Exit(1)
	}
}
