package main

import (
	"math/bits"
	"time"
)

// latHist is a fixed-footprint log-scale latency histogram: 4 sub-buckets
// per power-of-two octave of microseconds, from 1µs up past an hour. It
// replaces the store-every-sample recorder the load generator used to carry
// — under a long run at high throughput that slice grew without bound and
// its end-of-run sort dominated shutdown; the histogram is a few KB per
// client forever, merging is bucket addition, and percentiles come from a
// cumulative scan. Quantization error is bounded by the sub-bucket width
// (≤ ~19% of the value), which is far below run-to-run noise; the maximum
// is tracked exactly because tail spikes are the one thing quantization
// would hide.
type latHist struct {
	counts [latBuckets]int64
	n      int64
	max    time.Duration
}

// latBuckets covers exponents 0..39 (1µs to ~18 hours) at 4 buckets each.
const latBuckets = 40 * 4

// latBucket maps a duration to its bucket: floor(log2(µs)) picks the
// octave, the next two bits below the leading one pick the quarter.
func latBucket(d time.Duration) int {
	v := uint64(d.Microseconds())
	if v == 0 {
		v = 1
	}
	exp := uint(bits.Len64(v) - 1)
	var sub uint64
	if exp >= 2 {
		sub = (v >> (exp - 2)) & 3
	} else {
		sub = (v << (2 - exp)) & 3
	}
	idx := int(exp)*4 + int(sub)
	if idx >= latBuckets {
		idx = latBuckets - 1
	}
	return idx
}

// latBucketUpper is the inclusive upper bound of a bucket, the value
// percentiles report: (5+sub)/4 × 2^exp microseconds, minus nothing — a
// pessimistic (never-underestimating) representative.
func latBucketUpper(idx int) time.Duration {
	exp := uint(idx / 4)
	sub := uint64(idx % 4)
	us := ((5 + sub) << exp) / 4
	return time.Duration(us) * time.Microsecond
}

func (h *latHist) add(d time.Duration) {
	h.counts[latBucket(d)]++
	h.n++
	if d > h.max {
		h.max = d
	}
}

// merge folds another histogram in (the per-client results into the total).
func (h *latHist) merge(o *latHist) {
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	if o.max > h.max {
		h.max = o.max
	}
}

// pct returns the p-th percentile (0–100) as the owning bucket's upper
// bound; the exact maximum for p ≥ 100 or when the scan runs off the end.
func (h *latHist) pct(p float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(h.n))
	if rank >= h.n {
		return h.max
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			u := latBucketUpper(i)
			if u > h.max {
				return h.max // the top bucket's bound can overshoot the real max
			}
			return u
		}
	}
	return h.max
}
